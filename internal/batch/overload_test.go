package batch_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/gen"
)

// tinyJob is a real but near-instant solve, for tests that exercise the
// queue rather than the kernel.
func tinyJob(i int) batch.Job {
	return batch.Job{In: gen.TriNecklace(3 + i%4), Opts: engine.Options{R: 2}}
}

// blockWorker wedges the pool's single worker inside a done callback and
// returns a release function. On return the worker is provably busy, so
// subsequent submissions land in the queue.
func blockWorker(t testing.TB, p *batch.Pool) (release func()) {
	t.Helper()
	started := make(chan struct{})
	releaseCh := make(chan struct{})
	err := p.Submit(context.Background(), 0, tinyJob(0), func(batch.Result) {
		close(started)
		<-releaseCh
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	return func() { close(releaseCh) }
}

// TestTrySubmitShedsOnFullQueue: with the worker wedged and the queue
// full, TrySubmit must refuse immediately with ErrQueueFull, never invoke
// done, and count the refusal as a shed — while Submit would have parked.
func TestTrySubmitShedsOnFullQueue(t *testing.T) {
	p := batch.NewPool(batch.Options{Workers: 1, Queue: 1})
	defer p.Close()
	release := blockWorker(t, p)

	queuedCh := make(chan batch.Result, 1)
	if err := p.Submit(context.Background(), 1, tinyJob(1), func(r batch.Result) { queuedCh <- r }); err != nil {
		t.Fatal(err)
	}

	var shedDone atomic.Int32
	start := time.Now()
	err := p.TrySubmit(context.Background(), 2, tinyJob(2), func(batch.Result) { shedDone.Add(1) })
	if !errors.Is(err, batch.ErrQueueFull) {
		t.Fatalf("TrySubmit on a full queue: err = %v, want ErrQueueFull", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("TrySubmit took %v; it must not block", elapsed)
	}
	if st := p.Stats(); st.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", st.Shed)
	}

	release()
	if r := <-queuedCh; r.Err != nil {
		t.Fatalf("queued job failed after release: %v", r.Err)
	}
	if shedDone.Load() != 0 {
		t.Fatal("done fired for a shed submission")
	}
	// The shed never entered the queue: offered == Jobs + Shed.
	waitFor(t, "both admitted jobs to complete", func() bool { return p.Stats().Jobs == 2 })
	if st := p.Stats(); st.Jobs+st.Shed != 3 {
		t.Fatalf("offered-load ledger broken: Jobs=%d Shed=%d, want sum 3", st.Jobs, st.Shed)
	}
}

// TestQueueExpiryIsTypedAndCounted: a job whose deadline passes while it
// waits in the queue must be reported through done with an error that is
// both ErrExpiredInQueue and context.DeadlineExceeded, counted in
// DeadlineExpired, and never touch the kernel. A plain cancellation takes
// the same path but stays untyped and uncounted.
func TestQueueExpiryIsTypedAndCounted(t *testing.T) {
	p := batch.NewPool(batch.Options{Workers: 1, Queue: 4})
	defer p.Close()
	release := blockWorker(t, p)

	// Dead on arrival: the deadline is already past at Submit time. The
	// non-blocking-first send must still enqueue it (queue has space), so
	// it is accounted by the dequeue-time expiry check rather than lost to
	// the Submit-side ctx race.
	expiredCtx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	expCh := make(chan batch.Result, 1)
	if err := p.Submit(expiredCtx, 1, tinyJob(1), func(r batch.Result) { expCh <- r }); err != nil {
		t.Fatalf("Submit with queue space must enqueue even when ctx is dead, got %v", err)
	}

	cancelledCtx, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	canCh := make(chan batch.Result, 1)
	if err := p.Submit(cancelledCtx, 2, tinyJob(2), func(r batch.Result) { canCh <- r }); err != nil {
		t.Fatal(err)
	}

	release()
	exp := <-expCh
	if !errors.Is(exp.Err, batch.ErrExpiredInQueue) {
		t.Fatalf("queue-expired job error = %v, want ErrExpiredInQueue", exp.Err)
	}
	if !errors.Is(exp.Err, context.DeadlineExceeded) {
		t.Fatalf("queue-expired job error = %v, must still match DeadlineExceeded", exp.Err)
	}
	can := <-canCh
	if !errors.Is(can.Err, context.Canceled) || errors.Is(can.Err, batch.ErrExpiredInQueue) {
		t.Fatalf("cancelled job error = %v, want plain context.Canceled", can.Err)
	}
	waitFor(t, "all three jobs accounted", func() bool { return p.Stats().Jobs == 3 })
	st := p.Stats()
	if st.DeadlineExpired != 1 {
		t.Fatalf("DeadlineExpired = %d, want 1 (cancellations don't count)", st.DeadlineExpired)
	}
	if st.Errors != 2 {
		t.Fatalf("Errors = %d, want 2 (the expired and the cancelled job)", st.Errors)
	}
}

// TestSubmitStormWithCloseAndCancel is the satellite-1 interleaving
// audit as a -race test: many submitters with racing cancellations and
// dead-on-arrival deadlines, a concurrent Close — and the exactly-once
// contract must hold for every single submission: an error from
// Submit/TrySubmit means done never fires; nil means done fires exactly
// once. No queue-slot leaks, no double delivery, no hang.
func TestSubmitStormWithCloseAndCancel(t *testing.T) {
	const n = 240
	p := batch.NewPool(batch.Options{Workers: 2, Queue: 2, CacheBytes: 4 << 20})

	var (
		wg       sync.WaitGroup
		doneFire [n]atomic.Int32
		submitOK [n]atomic.Bool
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			switch i % 4 {
			case 1: // cancelled at a racing moment
				c, cancel := context.WithCancel(ctx)
				go func() {
					time.Sleep(time.Duration(i%5) * time.Millisecond)
					cancel()
				}()
				ctx = c
			case 2: // short (possibly already-expired) deadline
				c, cancel := context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
				defer cancel()
				ctx = c
			}
			done := func(batch.Result) { doneFire[i].Add(1) }
			var err error
			if i%4 == 3 {
				err = p.TrySubmit(ctx, i, tinyJob(i), done)
			} else {
				err = p.Submit(ctx, i, tinyJob(i), done)
			}
			submitOK[i].Store(err == nil)
		}(i)
	}
	time.Sleep(3 * time.Millisecond)
	p.Close() // races the submitters by design
	wg.Wait()
	p.Close() // idempotent; all done callbacks have fired once it returns

	for i := 0; i < n; i++ {
		fired := doneFire[i].Load()
		if submitOK[i].Load() && fired != 1 {
			t.Fatalf("submission %d accepted but done fired %d times, want exactly 1", i, fired)
		}
		if !submitOK[i].Load() && fired != 0 {
			t.Fatalf("submission %d rejected but done fired %d times, want 0", i, fired)
		}
	}
}

// BenchmarkPoolTrySubmit pins the admission check itself: refusing a job
// on a full queue must be allocation-free, or load shedding would burn
// memory exactly when the process is trying to protect itself. The
// budget in BENCH_budget.json holds it at 0 allocs/op.
func BenchmarkPoolTrySubmit(b *testing.B) {
	p := batch.NewPool(batch.Options{Workers: 1, Queue: 1})
	defer p.Close()
	release := blockWorker(b, p)
	defer release()
	if err := p.Submit(context.Background(), 1, tinyJob(1), func(batch.Result) {}); err != nil {
		b.Fatal(err)
	}

	ctx := context.Background()
	job := tinyJob(2)
	done := func(batch.Result) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.TrySubmit(ctx, 2, job, done); err != batch.ErrQueueFull {
			b.Fatalf("TrySubmit = %v, want ErrQueueFull", err)
		}
	}
	// Accounting runs until the function returns, which would fold the
	// deferred teardown (worker wake-up, the parked job's solve, pool
	// close) into the measurement — at -benchtime 1x that teardown IS the
	// number. Stop explicitly so the op under test is all that's counted.
	b.StopTimer()
}
