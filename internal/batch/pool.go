package batch

import (
	"context"
	"errors"
	"sync"

	"repro/internal/engine"
)

// ErrPoolClosed is returned by Submit and Do once Close has begun.
var ErrPoolClosed = errors.New("batch: pool is closed")

// task is one queued unit of pool work.
type task struct {
	ctx   context.Context
	job   Job
	index int
	done  func(Result)
}

// Pool is a long-lived sharded solver: a fixed set of worker goroutines,
// each owning reusable scratch, pulling from a bounded queue. Create one
// with NewPool, feed it with Submit (which applies backpressure when the
// queue is full) and stop it with Close.
type Pool struct {
	opts  Options
	tasks chan task
	wg    sync.WaitGroup
	col   collector
	cache *engine.Cache // nil when Options.CacheBytes is zero

	// mu guards closed and orders Submit's channel send before Close's
	// close(tasks): Submit holds the read side across the send, so Close
	// cannot close the channel under a blocked submitter.
	mu     sync.RWMutex
	closed bool
}

// NewPool starts the workers and returns the running pool.
func NewPool(o Options) *Pool {
	workers := o.normalizedWorkers()
	queue := o.Queue
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{opts: o, tasks: make(chan task, queue), cache: o.newCache()}
	p.col.start(workers)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// worker drains the queue with its own scratch until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	sc := engine.NewScratch()
	for t := range p.tasks {
		t.done(runJob(t.ctx, t.index, t.job, p.opts.JobTimeout, sc, p.cache, &p.col))
	}
}

// Submit enqueues one job; done is invoked exactly once, on a worker
// goroutine, with the job's result. Submit blocks while the queue is full
// (backpressure) and returns ctx's error — without invoking done — when
// the context expires first. A job whose context expires while it is still
// queued is not solved; its result carries the context error. Once Close
// has begun, Submit returns ErrPoolClosed.
func (p *Pool) Submit(ctx context.Context, index int, job Job, done func(Result)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task{ctx: ctx, job: job, index: index, done: done}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do solves one job synchronously on the pool and returns its result.
func (p *Pool) Do(ctx context.Context, job Job) Result {
	ch := make(chan Result, 1)
	if err := p.Submit(ctx, 0, job, func(r Result) { ch <- r }); err != nil {
		return Result{Err: err}
	}
	return <-ch
}

// Stats snapshots the pool's aggregate activity, including the result
// cache's counters when caching is enabled.
func (p *Pool) Stats() *Stats {
	st := p.col.snapshot()
	if p.cache != nil {
		cs := p.cache.Stats()
		st.Cache = &cs
	}
	return st
}

// CacheStats snapshots the result cache's counters, nil when caching is
// disabled.
func (p *Pool) CacheStats() *engine.CacheStats {
	if p.cache == nil {
		return nil
	}
	cs := p.cache.Stats()
	return &cs
}

// Workers returns the fixed pool size.
func (p *Pool) Workers() int { return p.col.workers }

// Close stops accepting work, waits for in-flight submissions and queued
// jobs to finish and returns. Safe to call more than once. Close never
// deadlocks against blocked submitters: the workers keep draining the
// queue until Close acquires the lock, at which point no submitter holds
// it.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
