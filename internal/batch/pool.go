package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/obs"
)

// ErrPoolClosed is returned by Submit and Do once Close has begun.
var ErrPoolClosed = errors.New("batch: pool is closed")

// ErrQueueFull is returned by TrySubmit when the queue has no space; the
// caller is expected to shed the request (HTTP 429) rather than wait.
var ErrQueueFull = errors.New("batch: queue full")

// ErrExpiredInQueue marks a job whose deadline passed while it waited in
// the queue (or behind a coalesced flight): the kernel never ran. The
// error also matches context.DeadlineExceeded via errors.Is; the serving
// layer maps it to 504. The job still counts toward Jobs/Errors, so
// offered == (jobs - expired) + shed + expired holds at every scrape.
var ErrExpiredInQueue = errors.New("batch: deadline expired while queued")

// task is one queued unit of pool work.
type task struct {
	ctx   context.Context
	job   Job
	index int
	done  func(Result)
	enq   time.Time // when Submit enqueued it, for the queue-wait span
}

// Pool is a long-lived sharded solver: a fixed set of worker goroutines,
// each owning reusable scratch, pulling from a bounded queue. Create one
// with NewPool, feed it with Submit (which applies backpressure when the
// queue is full) and stop it with Close.
type Pool struct {
	opts  Options
	tasks chan task
	wg    sync.WaitGroup
	col   collector
	cache *engine.Cache // nil when Options.CacheBytes is zero

	// retryWG tracks the re-queue goroutines spawned when a subscribed
	// task's leader fails; Close waits for them after the workers, so done
	// callbacks never fire after Close returns.
	retryWG sync.WaitGroup

	// mu guards closed and orders Submit's channel send before Close's
	// close(tasks): Submit holds the read side across the send, so Close
	// cannot close the channel under a blocked submitter.
	mu     sync.RWMutex
	closed bool
}

// NewPool starts the workers and returns the running pool.
func NewPool(o Options) *Pool {
	workers := o.normalizedWorkers()
	queue := o.Queue
	if queue <= 0 {
		queue = 2 * workers
	}
	p := &Pool{opts: o, tasks: make(chan task, queue), cache: o.newCache()}
	p.col.start(workers)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// worker drains the queue with its own scratch until Close.
func (p *Pool) worker() {
	defer p.wg.Done()
	sc := engine.NewScratch()
	for t := range p.tasks {
		p.runTask(t, sc)
	}
}

// runTask executes one queued task. A task whose key is already being
// solved by another worker does not park behind it: the task subscribes to
// the in-flight solve's completion callback and the worker returns to the
// queue immediately, so a burst of duplicates on one slow cold key costs
// one worker, not W. The subscribed task is finished by deliver on the
// leader's goroutine.
func (p *Pool) runTask(t task, sc *engine.Scratch) {
	if err := t.ctx.Err(); err != nil {
		p.col.record(0, true, nil)
		t.done(Result{Index: t.index, Err: p.queueDeath(err)})
		return
	}
	ctx := t.ctx
	var cancel context.CancelFunc
	if p.opts.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.opts.JobTimeout)
	}
	start := time.Now()
	onFlight := func(sol *engine.Solution, dist *engine.DistInfo, err error) {
		if cancel != nil {
			cancel()
		}
		p.deliver(t, start, sol, dist, err)
	}
	var (
		sol                *engine.Solution
		dist               *engine.DistInfo
		dout               *engine.DeltaOutcome
		cached, subscribed bool
		err                error
	)
	switch {
	case t.job.Delta != nil:
		// Delta jobs have no detach variant: the only flight a delta can
		// coalesce onto is a centralised solve of the edited key, and the
		// plan/kernel work before that point already ran on this worker.
		sol, dout, cached, err = engine.SolveDelta(ctx, t.job.Delta.Base, t.job.Delta.Edits, sc, p.cache)
		p.col.recordDelta(cached, dout, err)
	case t.job.Canon != nil:
		sol, dist, cached, subscribed, err = engine.SolveCanonBytesDetach(ctx, t.job.Canon, sc, p.cache, onFlight)
	default:
		sol, dist, cached, subscribed, err = engine.SolveCachedDetach(ctx, t.job.In, t.job.Opts, sc, p.cache, onFlight)
	}
	if subscribed {
		return
	}
	if cancel != nil {
		cancel()
	}
	lat := time.Since(start)
	// Copy the trace out of the scratch before the worker reuses it, and
	// stamp queue-wait after the copy: the engine entry point reset the
	// trace, so setting it earlier would be wiped.
	tr := sc.Trace
	tr.Set(obs.StageQueueWait, int64(start.Sub(t.enq)))
	p.col.record(lat, err != nil, &tr)
	t.done(Result{Index: t.index, Sol: sol, Dist: dist, Delta: dout, Cached: cached, Err: err, Latency: lat, Trace: tr})
}

// deliver finishes a subscribed task once the flight it attached to
// settles; it runs on the leader's worker goroutine. A successful flight
// is the subscribed task's result (Cached, like any coalesced job; its
// latency is measured from when the task left the queue). The leader's
// failure is not inherited — it may be the leader's own cancellation — so
// the task is re-queued to run afresh, on its own goroutine so the leader
// worker is not stolen for the retry.
func (p *Pool) deliver(t task, start time.Time, sol *engine.Solution, dist *engine.DistInfo, err error) {
	if cerr := t.ctx.Err(); cerr != nil {
		p.col.record(0, true, nil)
		t.done(Result{Index: t.index, Err: p.queueDeath(cerr)})
		return
	}
	if err == nil {
		lat := time.Since(start)
		// A subscriber's life is queue wait plus the wait behind the
		// leader's flight; the latter is this job's cache-lookup span
		// (coalesced lookups are cache reads that happen to block).
		var tr obs.Trace
		tr.Set(obs.StageQueueWait, int64(start.Sub(t.enq)))
		tr.Set(obs.StageCacheLookup, int64(lat))
		p.col.record(lat, false, &tr)
		t.done(Result{Index: t.index, Sol: sol, Dist: dist, Cached: true, Latency: lat, Trace: tr})
		return
	}
	p.retryWG.Add(1)
	go func() {
		defer p.retryWG.Done()
		p.mu.RLock()
		if p.closed {
			p.mu.RUnlock()
			p.col.record(0, true, nil)
			t.done(Result{Index: t.index, Err: ErrPoolClosed})
			return
		}
		select {
		case p.tasks <- t:
			p.mu.RUnlock()
		case <-t.ctx.Done():
			p.mu.RUnlock()
			p.col.record(0, true, nil)
			t.done(Result{Index: t.index, Err: p.queueDeath(t.ctx.Err())})
		}
	}()
}

// queueDeath classifies the context error of a job that died waiting —
// in the queue, behind a coalesced flight, or during a re-queue — before
// any kernel work. A deadline death is wrapped so the serving layer can
// tell "expired while waiting" (504) apart from "expired mid-solve"
// (503), and counted; a plain cancellation passes through untouched.
func (p *Pool) queueDeath(err error) error {
	if !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	p.col.deadlineExpired.Add(1)
	return fmt.Errorf("%w: %w", ErrExpiredInQueue, err)
}

// Submit enqueues one job; done is invoked exactly once, on a worker
// goroutine, with the job's result. Submit blocks while the queue is full
// (backpressure) and returns ctx's error — without invoking done — when
// the context expires first. A job whose context expires while it is still
// queued is not solved; its result carries the context error (wrapped in
// ErrExpiredInQueue for deadline deaths). Once Close has begun, Submit
// returns ErrPoolClosed.
//
// The contract either way is exclusive: Submit returns nil and done fires
// exactly once, or Submit returns an error and done never fires. A
// submitter that loses the ctx race never leaks its queue slot — the send
// and the ctx branch are one select, so exactly one side commits.
//
// Holding mu.RLock across the (possibly blocking) send is deliberate and
// deadlock-free: the workers drain the queue without touching mu, so a
// blocked submitter always eventually sends or cancels and releases the
// lock, at which point Close's write lock can proceed. What the lock
// buys is ordering: Close can never close(tasks) under a submitter that
// has passed the closed check, so the send below never panics.
func (p *Pool) Submit(ctx context.Context, index int, job Job, done func(Result)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	t := task{ctx: ctx, job: job, index: index, done: done, enq: time.Now()}
	// Try a non-blocking send first: when there is queue space, enqueueing
	// must win deterministically even if ctx is already done (a two-way
	// select with both sides ready picks at random). A dead-on-arrival job
	// then travels the normal queue path and is reported through done by
	// the dequeue-time expiry check — which is what keeps the admission
	// ledger exact: every job offered to a shard is accounted as solved,
	// shed, or expired, never silently dropped.
	select {
	case p.tasks <- t:
		return nil
	default:
	}
	select {
	case p.tasks <- t:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit is Submit without backpressure: a full queue returns
// ErrQueueFull immediately — counted as a shed in Stats — instead of
// blocking. This is the admission-control path behind the serving
// layer's -shed flag; the caller turns ErrQueueFull into 429 with a
// Retry-After derived from QueueWaitP50. Allocation-free on both the
// accept and the shed path.
func (p *Pool) TrySubmit(ctx context.Context, index int, job Job, done func(Result)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrPoolClosed
	}
	select {
	case p.tasks <- task{ctx: ctx, job: job, index: index, done: done, enq: time.Now()}:
		return nil
	default:
		p.col.shed.Add(1)
		return ErrQueueFull
	}
}

// QueueWaitP50 reads the median queue-wait from the live stage histogram
// — the Retry-After hint for shed requests: half of recently admitted
// jobs started within this long of enqueueing. Zero when nothing has
// been dequeued yet. Allocates a snapshot; callers sit on the shed path,
// not the warm path.
func (p *Pool) QueueWaitP50() time.Duration {
	return time.Duration(p.col.stages[obs.StageQueueWait].Snapshot().QuantileNS(0.50))
}

// Do solves one job synchronously on the pool and returns its result.
func (p *Pool) Do(ctx context.Context, job Job) Result {
	ch := make(chan Result, 1)
	if err := p.Submit(ctx, 0, job, func(r Result) { ch <- r }); err != nil {
		return Result{Err: err}
	}
	return <-ch
}

// Stats snapshots the pool's aggregate activity, including the result
// cache's counters when caching is enabled.
func (p *Pool) Stats() *Stats {
	st := p.col.snapshot()
	if p.cache != nil {
		cs := p.cache.Stats()
		st.Cache = &cs
	}
	return st
}

// CacheStats snapshots the result cache's counters, nil when caching is
// disabled.
func (p *Pool) CacheStats() *engine.CacheStats {
	if p.cache == nil {
		return nil
	}
	cs := p.cache.Stats()
	return &cs
}

// Workers returns the fixed pool size.
func (p *Pool) Workers() int { return p.col.workers }

// ObserveStage feeds one externally measured span into the pool's stage
// histograms — the serving layer uses it for the response-encode stage,
// which by construction cannot be timed inside the solve it describes.
// Wait-free and allocation-free.
func (p *Pool) ObserveStage(s obs.Stage, d time.Duration) {
	if s < obs.NumStages {
		p.col.stages[s].Observe(d)
	}
}

// PruneCache removes cached results whose key fails keep and returns the
// number removed (0 when caching is disabled). The serving layer calls it
// when a ring cutover reassigns part of this process's key space.
func (p *Pool) PruneCache(keep func(canon.Key) bool) int {
	return p.cache.Prune(keep)
}

// Close stops accepting work, waits for in-flight submissions and queued
// jobs to finish and returns. Safe to call more than once. Close never
// deadlocks against blocked submitters: the workers keep draining the
// queue until Close acquires the lock, at which point no submitter holds
// it. Re-queue goroutines (subscribed tasks whose leader failed) are
// awaited after the workers: their retryWG.Add always happens on a worker
// goroutine, so it is ordered before wg.Wait returns.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.tasks)
	}
	p.mu.Unlock()
	p.wg.Wait()
	p.retryWG.Wait()
}
