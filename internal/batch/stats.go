package batch

import (
	"runtime/metrics"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// ringSize bounds the latency samples kept for the quantile estimates; the
// newest samples overwrite the oldest, so the quantiles describe recent
// traffic on a long-lived pool and the whole run on a one-shot batch.
const ringSize = 4096

// Stats aggregates a pool's (or a one-shot batch's) solving activity.
type Stats struct {
	// Workers is the fixed pool size.
	Workers int
	// Jobs counts completed jobs, Errors the subset that returned an error
	// (including jobs cancelled before they started).
	Jobs, Errors int64
	// Elapsed is the wall-clock time since the pool started; JobsPerSec is
	// Jobs/Elapsed.
	Elapsed    time.Duration
	JobsPerSec float64
	// P50 and P99 describe the solve latency of successful jobs over the
	// most recent samples (at most 4096); Max is the all-time worst. Failed
	// jobs are excluded: timeouts abort in microseconds and would drag the
	// quantiles toward zero exactly when the service is struggling.
	P50, P99, Max time.Duration
	// AllocsPerJob is the number of heap allocations per completed job,
	// measured process-wide (runtime mallocs delta / jobs); it is meaningful
	// when the pool dominates the process's activity.
	AllocsPerJob float64
	// Shed counts submissions refused by TrySubmit on a full queue; shed
	// jobs never enter the queue and are NOT part of Jobs, so the offered
	// load on a pool is Jobs + Shed. DeadlineExpired counts jobs whose
	// deadline passed while they waited (queue, coalesced flight, or
	// re-queue) — those ARE part of Jobs and Errors; the kernel never ran.
	Shed, DeadlineExpired int64
	// DeltaHits counts successful delta jobs answered from the result
	// cache (the edited instance was already solved); DeltaMisses the rest
	// — deltas that ran the splice pipeline or fell back to a cold solve.
	// DirtyAgents totals the agents re-priced across delta misses, so
	// DirtyAgents/DeltaMisses is the average edit ball size.
	DeltaHits, DeltaMisses, DirtyAgents int64
	// Cache carries the result cache's counters, nil when caching is
	// disabled.
	Cache *engine.CacheStats
	// Solve is the mergeable log-bucketed histogram of successful solve
	// latency (all-time, unlike the sampled P50/P99 window); Stages holds
	// one histogram per pipeline stage, nil where a stage was never
	// observed. Fleet aggregation merges these bucket-wise, which is what
	// makes fleet quantiles true quantiles.
	Solve  *obs.HistRaw
	Stages [obs.NumStages]*obs.HistRaw
}

// collector accumulates stats concurrently. The histograms sit outside
// the mutex: their bins are individually atomic and wait-free, so stage
// observations never contend with the sampled-window bookkeeping.
type collector struct {
	workers int

	solve  obs.Histogram
	stages [obs.NumStages]obs.Histogram

	// Overload counters, wait-free like the histograms: shed is bumped by
	// TrySubmit's refusal path, deadlineExpired by queueDeath.
	shed            atomic.Int64
	deadlineExpired atomic.Int64

	// Delta counters, bumped by recordDelta on the job runners.
	deltaHits   atomic.Int64
	deltaMisses atomic.Int64
	dirtyAgents atomic.Int64

	mu      sync.Mutex
	jobs    int64
	errors  int64
	max     time.Duration
	ring    [ringSize]time.Duration
	samples int64 // total latency samples ever recorded

	started      time.Time
	startMallocs uint64
}

// start stamps the baseline for throughput and allocation accounting.
func (c *collector) start(workers int) {
	c.workers = workers
	c.started = time.Now()
	c.startMallocs = readMallocs()
}

// readMallocs counts heap allocations via runtime/metrics, which reads a
// ready-made counter without the stop-the-world pause of ReadMemStats —
// snapshot runs on every /statsz scrape, so it must not stall the workers.
func readMallocs() uint64 {
	sample := []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// recordDelta classifies one finished delta job. Failed deltas (unknown
// base, invalid edits, cancellation) are neither hits nor misses — they
// already count toward Jobs/Errors through record.
func (c *collector) recordDelta(cached bool, out *engine.DeltaOutcome, err error) {
	if err != nil {
		return
	}
	if cached {
		c.deltaHits.Add(1)
		return
	}
	c.deltaMisses.Add(1)
	if out != nil {
		c.dirtyAgents.Add(int64(out.DirtyAgents))
	}
}

// record notes one completed job. Only successful solves become latency
// samples; failures and cancellations count toward Jobs/Errors alone. tr,
// when non-nil, feeds the per-stage histograms (zero stages are skipped:
// a cache hit has no kernel span, and recording it as 0 would drag the
// stage quantiles down).
func (c *collector) record(latency time.Duration, failed bool, tr *obs.Trace) {
	if !failed && latency > 0 {
		c.solve.Observe(latency)
		for s := obs.Stage(0); s < obs.NumStages; s++ {
			if ns := tr.NS(s); ns > 0 {
				c.stages[s].ObserveNS(ns)
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jobs++
	if failed {
		c.errors++
		return
	}
	if latency <= 0 {
		return
	}
	c.ring[c.samples%ringSize] = latency
	c.samples++
	if latency > c.max {
		c.max = latency
	}
}

// snapshot renders the current totals.
func (c *collector) snapshot() *Stats {
	c.mu.Lock()
	n := c.samples
	if n > ringSize {
		n = ringSize
	}
	lat := make([]time.Duration, n)
	copy(lat, c.ring[:n])
	st := &Stats{
		Workers:         c.workers,
		Jobs:            c.jobs,
		Errors:          c.errors,
		Max:             c.max,
		Elapsed:         time.Since(c.started),
		Shed:            c.shed.Load(),
		DeadlineExpired: c.deadlineExpired.Load(),
		DeltaHits:       c.deltaHits.Load(),
		DeltaMisses:     c.deltaMisses.Load(),
		DirtyAgents:     c.dirtyAgents.Load(),
	}
	c.mu.Unlock()

	if st.Elapsed > 0 {
		st.JobsPerSec = float64(st.Jobs) / st.Elapsed.Seconds()
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		st.P50 = quantile(lat, 0.50)
		st.P99 = quantile(lat, 0.99)
	}
	if st.Jobs > 0 {
		st.AllocsPerJob = float64(readMallocs()-c.startMallocs) / float64(st.Jobs)
	}
	st.Solve = c.solve.Snapshot()
	for s := range c.stages {
		if snap := c.stages[s].Snapshot(); snap.Count > 0 {
			st.Stages[s] = snap
		}
	}
	return st
}

// quantile reads the q-quantile from an ascending sample (nearest-rank).
// An empty window — every job in it failed or was cancelled, so no
// successful-solve sample exists — reads as 0 rather than panicking.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
