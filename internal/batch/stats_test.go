package batch

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// TestQuantileEmptyWindow: quantiles over zero samples are 0, never a
// panic — the state every pool is in while all of its recent jobs failed.
func TestQuantileEmptyWindow(t *testing.T) {
	if got := quantile(nil, 0.50); got != 0 {
		t.Fatalf("quantile(nil, 0.5) = %v, want 0", got)
	}
	if got := quantile([]time.Duration{}, 0.99); got != 0 {
		t.Fatalf("quantile(empty, 0.99) = %v, want 0", got)
	}
	if got := quantile([]time.Duration{7}, 0.99); got != 7 {
		t.Fatalf("quantile([7], 0.99) = %v, want 7", got)
	}
}

// TestSnapshotAllFailures: a collector that has only seen failures and
// zero-latency cancellations snapshots cleanly with zero quantiles.
func TestSnapshotAllFailures(t *testing.T) {
	var c collector
	c.start(2)
	for i := 0; i < 5; i++ {
		c.record(0, true, nil) // cancelled before start
	}
	c.record(0, false, nil) // successful but sub-resolution latency: no sample
	st := c.snapshot()
	if st.Jobs != 6 || st.Errors != 5 {
		t.Fatalf("jobs/errors = %d/%d, want 6/5", st.Jobs, st.Errors)
	}
	if st.P50 != 0 || st.P99 != 0 || st.Max != 0 {
		t.Fatalf("quantiles on an empty window = %v/%v/%v, want zeros", st.P50, st.P99, st.Max)
	}
	if st.Solve == nil || st.Solve.Count != 0 {
		t.Fatalf("failure-only histogram = %+v, want present and empty", st.Solve)
	}
}

// TestCollectorHistograms: successful solves land in the all-time solve
// histogram, stage spans land in their per-stage histograms, and zero
// stages are skipped rather than recorded as 0.
func TestCollectorHistograms(t *testing.T) {
	var c collector
	c.start(1)
	var tr obs.Trace
	tr.Set(obs.StageKernel, int64(2*time.Millisecond))
	tr.Set(obs.StageQueueWait, int64(time.Millisecond))
	c.record(5*time.Millisecond, false, &tr)
	c.record(7*time.Millisecond, false, nil) // no trace: solve hist only
	c.record(0, true, &tr)                   // failure: nothing observed
	st := c.snapshot()
	if st.Solve.Count != 2 {
		t.Fatalf("solve count = %d, want 2", st.Solve.Count)
	}
	if h := st.Stages[obs.StageKernel]; h == nil || h.Count != 1 {
		t.Fatalf("kernel stage hist = %+v, want count 1", h)
	}
	if h := st.Stages[obs.StageQueueWait]; h == nil || h.Count != 1 {
		t.Fatalf("queue_wait stage hist = %+v, want count 1", h)
	}
	if st.Stages[obs.StageEncode] != nil {
		t.Fatal("unobserved stage should snapshot nil")
	}
}
