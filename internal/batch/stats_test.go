package batch

import (
	"testing"
	"time"
)

// TestQuantileEmptyWindow: quantiles over zero samples are 0, never a
// panic — the state every pool is in while all of its recent jobs failed.
func TestQuantileEmptyWindow(t *testing.T) {
	if got := quantile(nil, 0.50); got != 0 {
		t.Fatalf("quantile(nil, 0.5) = %v, want 0", got)
	}
	if got := quantile([]time.Duration{}, 0.99); got != 0 {
		t.Fatalf("quantile(empty, 0.99) = %v, want 0", got)
	}
	if got := quantile([]time.Duration{7}, 0.99); got != 7 {
		t.Fatalf("quantile([7], 0.99) = %v, want 7", got)
	}
}

// TestSnapshotAllFailures: a collector that has only seen failures and
// zero-latency cancellations snapshots cleanly with zero quantiles.
func TestSnapshotAllFailures(t *testing.T) {
	var c collector
	c.start(2)
	for i := 0; i < 5; i++ {
		c.record(0, true) // cancelled before start
	}
	c.record(0, false) // successful but sub-resolution latency: no sample
	st := c.snapshot()
	if st.Jobs != 6 || st.Errors != 5 {
		t.Fatalf("jobs/errors = %d/%d, want 6/5", st.Jobs, st.Errors)
	}
	if st.P50 != 0 || st.P99 != 0 || st.Max != 0 {
		t.Fatalf("quantiles on an empty window = %v/%v/%v, want zeros", st.P50, st.P99, st.Max)
	}
}
