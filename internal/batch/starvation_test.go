package batch_test

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/gen"
)

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescedDuplicateDoesNotStarveWorkers is the regression for the
// worker-starvation bug: a duplicate of an in-flight cold key used to park
// its worker inside the cache until the leader finished, so on a 2-worker
// pool one slow solve plus one duplicate wedged the whole pool. Now the
// duplicate subscribes to the in-flight solve and the worker returns to the
// queue: a stream of other keys must keep completing while the cold key is
// still being solved.
func TestCoalescedDuplicateDoesNotStarveWorkers(t *testing.T) {
	// One deliberately heavy job (a few hundred ms: a 400-agent
	// message-passing run) against trivially small fast jobs.
	slow := batch.Job{
		In:   gen.Random(gen.RandomConfig{Agents: 400, MaxDegI: 3, MaxDegK: 3, ExtraCons: 8, ExtraObjs: 4}, 5),
		Opts: engine.Options{Engine: engine.DistributedCompact, R: 5, BinIters: 4000},
	}
	p := batch.NewPool(batch.Options{Workers: 2, Queue: 32, CacheBytes: 8 << 20})
	defer p.Close()
	ctx := context.Background()

	leaderCh := make(chan batch.Result, 1)
	if err := p.Submit(ctx, 0, slow, func(r batch.Result) { leaderCh <- r }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "leader to start solving", func() bool {
		st := p.Stats()
		return st.Cache != nil && st.Cache.Misses >= 1
	})

	var dupDone atomic.Bool
	dupCh := make(chan batch.Result, 1)
	if err := p.Submit(ctx, 1, slow, func(r batch.Result) { dupDone.Store(true); dupCh <- r }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "duplicate to coalesce onto the flight", func() bool {
		st := p.Stats()
		return st.Cache != nil && st.Cache.Coalesced >= 1
	})

	// With the leader mid-solve and the duplicate coalesced, every worker
	// must still be available: a handful of small distinct jobs has to
	// complete while the cold key is in flight.
	const fast = 6
	fastCh := make(chan batch.Result, fast)
	for i := 0; i < fast; i++ {
		job := batch.Job{In: gen.TriNecklace(3 + i), Opts: engine.Options{R: 3}}
		if err := p.Submit(ctx, 2+i, job, func(r batch.Result) { fastCh <- r }); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < fast; i++ {
		select {
		case r := <-fastCh:
			if r.Err != nil {
				t.Fatalf("fast job %d failed: %v", r.Index, r.Err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("fast jobs starved while a duplicate coalesced on a cold key")
		}
	}
	if dupDone.Load() {
		t.Fatal("duplicate finished before the fast jobs — the leader was not actually in flight, calibrate the slow job up")
	}

	leader := <-leaderCh
	dup := <-dupCh
	if leader.Err != nil || dup.Err != nil {
		t.Fatalf("slow jobs failed: leader=%v dup=%v", leader.Err, dup.Err)
	}
	if leader.Cached {
		t.Fatal("leader reported Cached")
	}
	if !dup.Cached {
		t.Fatal("duplicate did not report Cached")
	}
	if len(leader.Sol.X) != len(dup.Sol.X) {
		t.Fatalf("solution sizes differ: %d vs %d", len(leader.Sol.X), len(dup.Sol.X))
	}
	for i := range leader.Sol.X {
		if math.Float64bits(leader.Sol.X[i]) != math.Float64bits(dup.Sol.X[i]) {
			t.Fatalf("X[%d] differs between leader and coalesced duplicate", i)
		}
	}
	// The duplicate's solution is a private copy, not a view of the
	// leader's (or the cache's) backing array.
	dup.Sol.X[0] = -1
	if leader.Sol.X[0] == -1 {
		t.Fatal("duplicate shares its X backing array with the leader")
	}
}

// TestSubscribedTaskRetriesAfterLeaderFailure: when the leader's solve
// fails (here: its context times out via JobTimeout), a subscribed
// duplicate must not inherit the failure — it re-queues and solves on its
// own, under a fresh timeout window.
func TestSubscribedTaskRetriesAfterLeaderFailure(t *testing.T) {
	slow := batch.Job{
		In:   gen.Random(gen.RandomConfig{Agents: 400, MaxDegI: 3, MaxDegK: 3, ExtraCons: 8, ExtraObjs: 4}, 5),
		Opts: engine.Options{Engine: engine.DistributedCompact, R: 5, BinIters: 4000},
	}
	p := batch.NewPool(batch.Options{Workers: 2, Queue: 8, CacheBytes: 8 << 20})
	defer p.Close()

	// The leader's own context is cancelled mid-solve; the duplicate runs
	// with a live context and must succeed on retry.
	lctx, lcancel := context.WithCancel(context.Background())
	leaderCh := make(chan batch.Result, 1)
	if err := p.Submit(lctx, 0, slow, func(r batch.Result) { leaderCh <- r }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "leader to start solving", func() bool {
		st := p.Stats()
		return st.Cache != nil && st.Cache.Misses >= 1
	})
	dupCh := make(chan batch.Result, 1)
	if err := p.Submit(context.Background(), 1, slow, func(r batch.Result) { dupCh <- r }); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "duplicate to coalesce onto the flight", func() bool {
		st := p.Stats()
		return st.Cache != nil && st.Cache.Coalesced >= 1
	})
	lcancel()

	leader := <-leaderCh
	if leader.Err == nil {
		t.Fatal("cancelled leader reported success")
	}
	select {
	case dup := <-dupCh:
		if dup.Err != nil {
			t.Fatalf("duplicate inherited the leader's failure: %v", dup.Err)
		}
		if dup.Sol == nil || len(dup.Sol.X) == 0 {
			t.Fatal("duplicate retry returned no solution")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("duplicate never finished after the leader failed")
	}
}
