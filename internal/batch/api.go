package batch

import (
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/mmlp"
	"repro/internal/obs"
)

// JobFromRequest converts a validated wire request into a solver job.
// mmlp.Engine values coincide numerically with engine.Kind (the canon key
// hashes the shared integer), so ParseEngine's result converts directly.
func JobFromRequest(req *mmlp.SolveRequest) (Job, error) {
	if err := req.Validate(); err != nil {
		return Job{}, err
	}
	eng, err := mmlp.ParseEngine(req.Engine)
	if err != nil { // unreachable after Validate
		return Job{}, err
	}
	return Job{
		In: req.Instance,
		Opts: engine.Options{
			Engine:              engine.Kind(eng),
			R:                   req.R,
			BinIters:            req.BinIters,
			DisableSpecialCases: req.DisableSpecialCases,
			SelfCheck:           req.SelfCheck,
		},
	}, nil
}

// JobFromDelta converts a validated wire delta request into a pool job.
func JobFromDelta(req *mmlp.DeltaRequest) (Job, error) {
	if err := req.Validate(); err != nil {
		return Job{}, err
	}
	var key canon.Key
	if _, err := hex.Decode(key[:], []byte(req.Base)); err != nil { // unreachable after Validate
		return Job{}, fmt.Errorf("%w: base: %v", mmlp.ErrInvalid, err)
	}
	return Job{Delta: &DeltaJob{Base: key, Edits: req.Edits}}, nil
}

// JobFromCanon wraps one canon wire payload as a job. No decoding happens
// here: the payload is keyed by its hash and decoded lazily on a cache
// miss, so malformed payloads surface as job errors, exactly like invalid
// JSON instances do.
func JobFromCanon(payload []byte) Job { return Job{Canon: payload} }

// ResponseFromResult renders a successful result on the wire. The caller
// must not pass a failed result (nil Sol).
func ResponseFromResult(r Result) mmlp.SolveResponse {
	resp := mmlp.SolveResponse{
		Status:     r.Sol.Status.String(),
		X:          r.Sol.X,
		Utility:    r.Sol.Utility,
		UpperBound: r.Sol.UpperBound,
		LatencyMS:  float64(r.Latency) / float64(time.Millisecond),
		Cached:     r.Cached,
	}
	if r.Dist != nil {
		resp.Rounds = r.Dist.Rounds
		resp.Messages = r.Dist.Messages
		resp.Bytes = r.Dist.Bytes
	}
	return resp
}

// DeltaResponseFromResult renders a successful delta result on the wire.
// The caller must not pass a failed result (nil Sol or nil Delta).
func DeltaResponseFromResult(r Result) mmlp.DeltaResponse {
	return mmlp.DeltaResponse{
		Status:      r.Sol.Status.String(),
		X:           r.Sol.X,
		Utility:     r.Sol.Utility,
		UpperBound:  r.Sol.UpperBound,
		Key:         r.Delta.Key.String(),
		DirtyAgents: r.Delta.DirtyAgents,
		TotalAgents: r.Delta.TotalAgents,
		Spliced:     r.Delta.Spliced,
		Cached:      r.Cached,
		LatencyMS:   float64(r.Latency) / float64(time.Millisecond),
	}
}

// StatsRawFromStats renders pool stats as the machine-oriented wire block
// served under /statsz?raw=1 and scraped by the shard router.
func StatsRawFromStats(st *Stats) *mmlp.StatsRaw {
	raw := &mmlp.StatsRaw{
		Workers:         st.Workers,
		Jobs:            st.Jobs,
		Errors:          st.Errors,
		UptimeNS:        st.Elapsed.Nanoseconds(),
		P50NS:           st.P50.Nanoseconds(),
		P99NS:           st.P99.Nanoseconds(),
		MaxNS:           st.Max.Nanoseconds(),
		AllocsPerJob:    st.AllocsPerJob,
		Shed:            st.Shed,
		DeadlineExpired: st.DeadlineExpired,
		DeltaHits:       st.DeltaHits,
		DeltaMisses:     st.DeltaMisses,
		DirtyAgents:     st.DirtyAgents,
		Solve:           st.Solve,
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if st.Stages[s] == nil {
			continue
		}
		if raw.Stages == nil {
			raw.Stages = make(map[string]*obs.HistRaw, int(obs.NumStages))
		}
		raw.Stages[s.String()] = st.Stages[s]
	}
	if st.Cache != nil {
		raw.Cache = &mmlp.CacheStatsRaw{
			Hits:      st.Cache.Hits,
			Misses:    st.Cache.Misses,
			Coalesced: st.Cache.Coalesced,
			Evictions: st.Cache.Evictions,
			Pruned:    st.Cache.Pruned,
			Entries:   st.Cache.Entries,
			Bytes:     st.Cache.Bytes,
			MaxBytes:  st.Cache.MaxBytes,
		}
	}
	return raw
}

// ItemFromResult renders one batch NDJSON line.
func ItemFromResult(r Result) mmlp.BatchItem {
	item := mmlp.BatchItem{Index: r.Index}
	if r.Err != nil {
		item.Error = r.Err.Error()
		return item
	}
	item.SolveResponse = ResponseFromResult(r)
	return item
}
