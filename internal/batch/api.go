package batch

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/mmlp"
)

// JobFromRequest converts a validated wire request into a solver job.
func JobFromRequest(req *mmlp.SolveRequest) (Job, error) {
	if err := req.Validate(); err != nil {
		return Job{}, err
	}
	var kind engine.Kind
	switch req.Engine {
	case "", mmlp.EngineLocal:
		kind = engine.Central
	case mmlp.EngineDist:
		kind = engine.Distributed
	case mmlp.EngineDistCompact:
		kind = engine.DistributedCompact
	default: // unreachable after Validate
		return Job{}, fmt.Errorf("%w: unknown engine %q", mmlp.ErrInvalid, req.Engine)
	}
	return Job{
		In: req.Instance,
		Opts: engine.Options{
			Engine:              kind,
			R:                   req.R,
			BinIters:            req.BinIters,
			DisableSpecialCases: req.DisableSpecialCases,
			SelfCheck:           req.SelfCheck,
		},
	}, nil
}

// ResponseFromResult renders a successful result on the wire. The caller
// must not pass a failed result (nil Sol).
func ResponseFromResult(r Result) mmlp.SolveResponse {
	resp := mmlp.SolveResponse{
		Status:     r.Sol.Status.String(),
		X:          r.Sol.X,
		Utility:    r.Sol.Utility,
		UpperBound: r.Sol.UpperBound,
		LatencyMS:  float64(r.Latency) / float64(time.Millisecond),
		Cached:     r.Cached,
	}
	if r.Dist != nil {
		resp.Rounds = r.Dist.Rounds
		resp.Messages = r.Dist.Messages
		resp.Bytes = r.Dist.Bytes
	}
	return resp
}

// ItemFromResult renders one batch NDJSON line.
func ItemFromResult(r Result) mmlp.BatchItem {
	item := mmlp.BatchItem{Index: r.Index}
	if r.Err != nil {
		item.Error = r.Err.Error()
		return item
	}
	item.SolveResponse = ResponseFromResult(r)
	return item
}
