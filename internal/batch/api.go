package batch

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/mmlp"
	"repro/internal/obs"
)

// JobFromRequest converts a validated wire request into a solver job.
func JobFromRequest(req *mmlp.SolveRequest) (Job, error) {
	if err := req.Validate(); err != nil {
		return Job{}, err
	}
	var kind engine.Kind
	switch req.Engine {
	case "", mmlp.EngineLocal:
		kind = engine.Central
	case mmlp.EngineDist:
		kind = engine.Distributed
	case mmlp.EngineDistCompact:
		kind = engine.DistributedCompact
	default: // unreachable after Validate
		return Job{}, fmt.Errorf("%w: unknown engine %q", mmlp.ErrInvalid, req.Engine)
	}
	return Job{
		In: req.Instance,
		Opts: engine.Options{
			Engine:              kind,
			R:                   req.R,
			BinIters:            req.BinIters,
			DisableSpecialCases: req.DisableSpecialCases,
			SelfCheck:           req.SelfCheck,
		},
	}, nil
}

// JobFromCanon wraps one canon wire payload as a job. No decoding happens
// here: the payload is keyed by its hash and decoded lazily on a cache
// miss, so malformed payloads surface as job errors, exactly like invalid
// JSON instances do.
func JobFromCanon(payload []byte) Job { return Job{Canon: payload} }

// ResponseFromResult renders a successful result on the wire. The caller
// must not pass a failed result (nil Sol).
func ResponseFromResult(r Result) mmlp.SolveResponse {
	resp := mmlp.SolveResponse{
		Status:     r.Sol.Status.String(),
		X:          r.Sol.X,
		Utility:    r.Sol.Utility,
		UpperBound: r.Sol.UpperBound,
		LatencyMS:  float64(r.Latency) / float64(time.Millisecond),
		Cached:     r.Cached,
	}
	if r.Dist != nil {
		resp.Rounds = r.Dist.Rounds
		resp.Messages = r.Dist.Messages
		resp.Bytes = r.Dist.Bytes
	}
	return resp
}

// StatsRawFromStats renders pool stats as the machine-oriented wire block
// served under /statsz?raw=1 and scraped by the shard router.
func StatsRawFromStats(st *Stats) *mmlp.StatsRaw {
	raw := &mmlp.StatsRaw{
		Workers:         st.Workers,
		Jobs:            st.Jobs,
		Errors:          st.Errors,
		UptimeNS:        st.Elapsed.Nanoseconds(),
		P50NS:           st.P50.Nanoseconds(),
		P99NS:           st.P99.Nanoseconds(),
		MaxNS:           st.Max.Nanoseconds(),
		AllocsPerJob:    st.AllocsPerJob,
		Shed:            st.Shed,
		DeadlineExpired: st.DeadlineExpired,
		Solve:           st.Solve,
	}
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		if st.Stages[s] == nil {
			continue
		}
		if raw.Stages == nil {
			raw.Stages = make(map[string]*obs.HistRaw, int(obs.NumStages))
		}
		raw.Stages[s.String()] = st.Stages[s]
	}
	if st.Cache != nil {
		raw.Cache = &mmlp.CacheStatsRaw{
			Hits:      st.Cache.Hits,
			Misses:    st.Cache.Misses,
			Coalesced: st.Cache.Coalesced,
			Evictions: st.Cache.Evictions,
			Pruned:    st.Cache.Pruned,
			Entries:   st.Cache.Entries,
			Bytes:     st.Cache.Bytes,
			MaxBytes:  st.Cache.MaxBytes,
		}
	}
	return raw
}

// ItemFromResult renders one batch NDJSON line.
func ItemFromResult(r Result) mmlp.BatchItem {
	item := mmlp.BatchItem{Index: r.Index}
	if r.Err != nil {
		item.Error = r.Err.Error()
		return item
	}
	item.SolveResponse = ResponseFromResult(r)
	return item
}
