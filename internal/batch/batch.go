// Package batch is the throughput layer of the library: it solves many
// independent max-min LP instances concurrently on a fixed pool of workers,
// each owning reusable solver scratch (engine.Scratch — the
// canonicalization copy, the §4 transform arena and the §5 kernel buffers)
// so a warm worker solves in steady state with a handful of heap
// allocations per job. Two entry points share one job runner:
//
//   - Solve takes a slice of jobs and returns positional results — the
//     shape SolveBatch exposes on the public surface;
//   - Pool is a long-lived worker pool with a bounded queue and
//     backpressure, the shape cmd/mmlpserve serves HTTP traffic from.
//
// Every job is solved by the full engine pipeline, so batch results are
// bit-identical to the corresponding sequential solves.
package batch

import (
	"context"
	"runtime"
	"time"

	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/mmlp"
	"repro/internal/obs"
	"repro/internal/par"
)

// Job is one instance to solve with its per-job configuration. Engines may
// be mixed freely within a batch (Opts.Engine selects per job).
type Job struct {
	In   *mmlp.Instance
	Opts engine.Options
	// Canon, when non-nil, is a canon wire payload carrying the whole
	// request; In and Opts are then ignored. The job is keyed by hashing
	// the bytes and decoded only on a cache miss (engine.SolveCanonBytes).
	Canon []byte
	// Delta, when non-nil, makes this an incremental re-solve of a cached
	// base (engine.SolveDelta); In, Opts and Canon are then ignored. Delta
	// jobs share the pool's workers, queue, admission ledger and result
	// cache with full solves.
	Delta *DeltaJob
}

// DeltaJob names a cached base solve and the edits to price against it.
type DeltaJob struct {
	Base  canon.Key
	Edits []mmlp.RowEdit
}

// Result is the outcome of one job.
type Result struct {
	// Index is the job's position in the submitted batch.
	Index int
	// Sol is the solution (nil when Err is set).
	Sol *engine.Solution
	// Dist carries traffic statistics for message-passing jobs.
	Dist *engine.DistInfo
	// Err reports a failed or cancelled job.
	Err error
	// Cached reports that the result came from the result cache (or from a
	// concurrent solve of the same key it coalesced with) instead of a
	// fresh pipeline run. Always false when caching is disabled.
	Cached bool
	// Latency is the wall-clock solve time (zero when the job was cancelled
	// before it started).
	Latency time.Duration
	// Trace is the per-stage timing breakdown of this job (zero-valued on
	// failure). A fixed-size value, not a pointer: copying a Result copies
	// the record, and no per-job allocation is ever needed for it.
	Trace obs.Trace
	// Delta carries the incremental-solve accounting of a delta job (nil
	// for full solves and for failed deltas).
	Delta *engine.DeltaOutcome
}

// Options configures a pool or a one-shot batch.
type Options struct {
	// Workers is the fixed pool size (0 = GOMAXPROCS).
	Workers int
	// Queue bounds the pending-task queue of a Pool (0 = 2×Workers);
	// Submit blocks — backpressure — while the queue is full. Ignored by
	// Solve, which bounds work by the slice itself.
	Queue int
	// JobTimeout, when positive, is a per-job deadline. The solve pipeline
	// checks its context between stages (and inside the centralised
	// kernel's t_u loop), so an expired job stops promptly and reports
	// context.DeadlineExceeded.
	JobTimeout time.Duration
	// CacheBytes, when positive, fronts the workers with a result cache of
	// this byte budget, keyed by the canonical (instance, options) hash:
	// repeat solves become a lookup and concurrent solves of one key run
	// the pipeline once. Cached results are bit-identical to fresh ones.
	// Zero disables caching.
	CacheBytes int64
	// CacheShards is the cache shard count, rounded up to a power of two
	// (0 = the cache default). Ignored when CacheBytes is zero.
	CacheShards int
}

// newCache builds the configured result cache, nil when disabled.
func (o Options) newCache() *engine.Cache {
	if o.CacheBytes <= 0 {
		return nil
	}
	return engine.NewCache(engine.CacheOptions{MaxBytes: o.CacheBytes, Shards: o.CacheShards})
}

// normalizedWorkers resolves the pool size.
func (o Options) normalizedWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runJob executes one job on a worker's scratch — consulting the result
// cache first when one is configured — and records it with col. A job
// that coalesces onto an in-flight solve of the same key blocks its
// worker until the leader finishes; that is fine here because only the
// one-shot Solve path uses runJob, and its workers have nothing better to
// do than wait for results the batch needs anyway. The long-lived Pool
// must keep draining a live queue, so it uses the non-blocking
// Pool.runTask instead: duplicates subscribe to the in-flight solve and
// the worker moves on.
func runJob(ctx context.Context, index int, job Job, timeout time.Duration, sc *engine.Scratch, ca *engine.Cache, col *collector) Result {
	res := Result{Index: index}
	if err := ctx.Err(); err != nil {
		res.Err = err
		col.record(0, true, nil)
		return res
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	switch {
	case job.Delta != nil:
		res.Sol, res.Delta, res.Cached, res.Err = engine.SolveDelta(ctx, job.Delta.Base, job.Delta.Edits, sc, ca)
		col.recordDelta(res.Cached, res.Delta, res.Err)
	case job.Canon != nil:
		res.Sol, res.Dist, res.Cached, res.Err = engine.SolveCanonBytes(ctx, job.Canon, sc, ca)
	default:
		res.Sol, res.Dist, res.Cached, res.Err = engine.SolveCached(ctx, job.In, job.Opts, sc, ca)
	}
	res.Latency = time.Since(start)
	res.Trace = sc.Trace
	col.record(res.Latency, res.Err != nil, &res.Trace)
	return res
}

// Solve runs every job on a fixed pool of workers and returns positional
// results (result i belongs to jobs[i]) plus aggregate statistics. Jobs are
// handed to workers dynamically, so heterogeneous instance sizes stay
// load-balanced. Cancelling ctx stops unstarted jobs — their results carry
// the context error, which Solve also returns — while running jobs stop at
// their next pipeline-stage boundary and report the context error.
func Solve(ctx context.Context, jobs []Job, o Options) ([]Result, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := o.normalizedWorkers()
	var col collector
	col.start(workers)
	ca := o.newCache()

	scratch := make([]*engine.Scratch, workers)
	results := make([]Result, len(jobs))
	err := par.ForEachCtx(ctx, len(jobs), workers, func(w, i int) {
		if scratch[w] == nil {
			scratch[w] = engine.NewScratch()
		}
		results[i] = runJob(ctx, i, jobs[i], o.JobTimeout, scratch[w], ca, &col)
	})
	if err == nil {
		// Every job was handed out, but ForEachCtx cannot tell whether the
		// last ones aborted at a pipeline-stage boundary after a late
		// cancellation; honour the documented contract that a cancelled
		// batch returns the context error.
		err = ctx.Err()
	}
	if err != nil {
		for i := range results {
			if results[i].Sol == nil && results[i].Err == nil {
				results[i] = Result{Index: i, Err: err}
				col.record(0, true, nil) // never handed out: count it like a cancelled job
			}
		}
	}
	stats := col.snapshot()
	if ca != nil {
		cs := ca.Stats()
		stats.Cache = &cs
	}
	return results, stats, err
}
