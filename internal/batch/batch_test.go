package batch_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	maxminlp "repro"
	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// conformanceJobs builds a mixed-engine workload of varied shapes.
func conformanceJobs(t *testing.T) []batch.Job {
	t.Helper()
	var jobs []batch.Job
	for seed := int64(1); seed <= 6; seed++ {
		in := gen.Random(gen.RandomConfig{Agents: 12 + 2*int(seed), MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, seed)
		jobs = append(jobs, batch.Job{In: in, Opts: engine.Options{R: 2 + int(seed%3), DisableSpecialCases: true}})
	}
	neck := gen.TriNecklace(6)
	jobs = append(jobs,
		batch.Job{In: neck, Opts: engine.Options{Engine: engine.Distributed, R: 3}},
		batch.Job{In: neck, Opts: engine.Options{Engine: engine.DistributedCompact, R: 3}},
		// Trivial shape: exercises the ΔK=1 special-case dispatch.
		batch.Job{In: gen.Random(gen.RandomConfig{Agents: 6, MaxDegI: 2, MaxDegK: 1}, 9), Opts: engine.Options{R: 3}},
	)
	return jobs
}

// TestBatchMatchesSequential is the conformance suite of the acceptance
// criteria: for every job, the pooled solve must return bit-identical
// T (upper bound) and X to the sequential public-API call.
func TestBatchMatchesSequential(t *testing.T) {
	jobs := conformanceJobs(t)
	for _, workers := range []int{1, 3, 8} {
		res, stats, err := batch.Solve(context.Background(), jobs, batch.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Jobs != int64(len(jobs)) || stats.Errors != 0 {
			t.Fatalf("workers=%d: stats = %+v", workers, stats)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Index != i {
				t.Fatalf("workers=%d: result %d has index %d", workers, i, r.Index)
			}
			want := sequential(t, jobs[i])
			if r.Sol.Status != want.Status || r.Sol.Utility != want.Utility || r.Sol.UpperBound != want.UpperBound {
				t.Fatalf("workers=%d job %d: got (%v, %v, %v), want (%v, %v, %v)",
					workers, i, r.Sol.Status, r.Sol.Utility, r.Sol.UpperBound,
					want.Status, want.Utility, want.UpperBound)
			}
			for v := range want.X {
				if r.Sol.X[v] != want.X[v] {
					t.Fatalf("workers=%d job %d: X[%d] = %v, want %v", workers, i, v, r.Sol.X[v], want.X[v])
				}
			}
		}
	}
}

// sequential solves one job through the public sequential surface.
func sequential(t *testing.T, j batch.Job) *maxminlp.Solution {
	t.Helper()
	opts := maxminlp.LocalOptions{
		R: j.Opts.R, BinIters: j.Opts.BinIters,
		DisableSpecialCases: j.Opts.DisableSpecialCases,
		CompactProtocol:     j.Opts.Engine == engine.DistributedCompact,
	}
	if j.Opts.Engine == engine.Central {
		sol, err := maxminlp.SolveLocal(j.In, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	sol, _, err := maxminlp.SolveLocalDistributed(j.In, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// TestPoolMatchesSequential pushes jobs of different shapes through one
// pool so each worker's scratch is re-targeted across instances, and
// checks bit-identity against the sequential solve.
func TestPoolMatchesSequential(t *testing.T) {
	jobs := conformanceJobs(t)
	p := batch.NewPool(batch.Options{Workers: 2, Queue: 1})
	defer p.Close()
	for round := 0; round < 3; round++ {
		results := make([]batch.Result, len(jobs))
		var wg sync.WaitGroup
		for i, j := range jobs {
			wg.Add(1)
			i := i
			if err := p.Submit(context.Background(), i, j, func(r batch.Result) {
				results[i] = r
				wg.Done()
			}); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("round %d job %d: %v", round, i, r.Err)
			}
			want := sequential(t, jobs[i])
			for v := range want.X {
				if r.Sol.X[v] != want.X[v] {
					t.Fatalf("round %d job %d: X[%d] = %v, want %v", round, i, v, r.Sol.X[v], want.X[v])
				}
			}
		}
	}
	st := p.Stats()
	if st.Jobs != int64(3*len(conformanceJobs(t))) || st.P50 <= 0 || st.JobsPerSec <= 0 {
		t.Fatalf("pool stats = %+v", st)
	}
}

// TestPoolCloseDuringSubmit closes the pool while submitters are applying
// backpressure on a full queue: no send may panic, every accepted
// submission must complete, and later submissions must see ErrPoolClosed.
func TestPoolCloseDuringSubmit(t *testing.T) {
	p := batch.NewPool(batch.Options{Workers: 1, Queue: 1})
	job := batch.Job{In: gen.TriNecklace(3), Opts: engine.Options{R: 3}}
	var accepted, completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := p.Submit(context.Background(), i, job, func(batch.Result) { completed.Add(1) })
				if errors.Is(err, batch.ErrPoolClosed) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				accepted.Add(1)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	p.Close()
	wg.Wait()
	if completed.Load() != accepted.Load() {
		t.Fatalf("accepted %d submissions but completed %d", accepted.Load(), completed.Load())
	}
	if err := p.Submit(context.Background(), 0, job, func(batch.Result) {}); !errors.Is(err, batch.ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
}

// TestSolveCancellation cancels mid-batch: Solve must return the context
// error, every skipped job must carry it, and no result may be lost.
func TestSolveCancellation(t *testing.T) {
	in := gen.Random(gen.RandomConfig{Agents: 20, MaxDegI: 3, MaxDegK: 3, ExtraCons: 5, ExtraObjs: 2}, 1)
	jobs := make([]batch.Job, 200)
	for i := range jobs {
		jobs[i] = batch.Job{In: in, Opts: engine.Options{R: 3, DisableSpecialCases: true}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := batch.Solve(ctx, jobs, batch.Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range res {
		if r.Sol == nil && !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: Sol=nil Err=%v", i, r.Err)
		}
	}
}

// TestJobTimeout gives jobs an expired deadline; the pipeline must stop at
// a stage boundary and report context.DeadlineExceeded.
func TestJobTimeout(t *testing.T) {
	in := gen.Random(gen.RandomConfig{Agents: 24, MaxDegI: 3, MaxDegK: 3, ExtraCons: 6, ExtraObjs: 3}, 1)
	jobs := []batch.Job{{In: in, Opts: engine.Options{R: 3, DisableSpecialCases: true}}}
	res, _, err := batch.Solve(context.Background(), jobs, batch.Options{Workers: 1, JobTimeout: time.Nanosecond})
	if err != nil {
		t.Fatalf("Solve err = %v (per-job deadlines must not fail the batch)", err)
	}
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("job err = %v, want context.DeadlineExceeded", res[0].Err)
	}
}

// TestJobFromRequest covers the wire conversions.
func TestJobFromRequest(t *testing.T) {
	in := gen.TriNecklace(4)
	job, err := batch.JobFromRequest(&mmlp.SolveRequest{Instance: in, Engine: mmlp.EngineDistCompact, R: 4})
	if err != nil {
		t.Fatal(err)
	}
	if job.Opts.Engine != engine.DistributedCompact || job.Opts.R != 4 {
		t.Fatalf("job opts = %+v", job.Opts)
	}
	if _, err := batch.JobFromRequest(&mmlp.SolveRequest{Instance: in, Engine: "simplex"}); !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("unknown engine err = %v", err)
	}
	if _, err := batch.JobFromRequest(&mmlp.SolveRequest{}); !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("missing instance err = %v", err)
	}
	if _, err := batch.JobFromRequest(&mmlp.SolveRequest{Instance: in, R: 1}); !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("bad R err = %v", err)
	}
}
