package batch_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	maxminlp "repro"
	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// conformanceJobs builds a mixed-engine workload of varied shapes.
func conformanceJobs(t *testing.T) []batch.Job {
	t.Helper()
	var jobs []batch.Job
	for seed := int64(1); seed <= 6; seed++ {
		in := gen.Random(gen.RandomConfig{Agents: 12 + 2*int(seed), MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, seed)
		jobs = append(jobs, batch.Job{In: in, Opts: engine.Options{R: 2 + int(seed%3), DisableSpecialCases: true}})
	}
	neck := gen.TriNecklace(6)
	jobs = append(jobs,
		batch.Job{In: neck, Opts: engine.Options{Engine: engine.Distributed, R: 3}},
		batch.Job{In: neck, Opts: engine.Options{Engine: engine.DistributedCompact, R: 3}},
		// Trivial shape: exercises the ΔK=1 special-case dispatch.
		batch.Job{In: gen.Random(gen.RandomConfig{Agents: 6, MaxDegI: 2, MaxDegK: 1}, 9), Opts: engine.Options{R: 3}},
	)
	return jobs
}

// TestBatchMatchesSequential is the conformance suite of the acceptance
// criteria: for every job, the pooled solve must return bit-identical
// T (upper bound) and X to the sequential public-API call.
func TestBatchMatchesSequential(t *testing.T) {
	jobs := conformanceJobs(t)
	for _, workers := range []int{1, 3, 8} {
		res, stats, err := batch.Solve(context.Background(), jobs, batch.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats.Jobs != int64(len(jobs)) || stats.Errors != 0 {
			t.Fatalf("workers=%d: stats = %+v", workers, stats)
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("workers=%d job %d: %v", workers, i, r.Err)
			}
			if r.Index != i {
				t.Fatalf("workers=%d: result %d has index %d", workers, i, r.Index)
			}
			want := sequential(t, jobs[i])
			if r.Sol.Status != want.Status || r.Sol.Utility != want.Utility || r.Sol.UpperBound != want.UpperBound {
				t.Fatalf("workers=%d job %d: got (%v, %v, %v), want (%v, %v, %v)",
					workers, i, r.Sol.Status, r.Sol.Utility, r.Sol.UpperBound,
					want.Status, want.Utility, want.UpperBound)
			}
			for v := range want.X {
				if r.Sol.X[v] != want.X[v] {
					t.Fatalf("workers=%d job %d: X[%d] = %v, want %v", workers, i, v, r.Sol.X[v], want.X[v])
				}
			}
		}
	}
}

// sequential solves one job through the public sequential surface.
func sequential(t *testing.T, j batch.Job) *maxminlp.Solution {
	t.Helper()
	opts := maxminlp.LocalOptions{
		R: j.Opts.R, BinIters: j.Opts.BinIters,
		DisableSpecialCases: j.Opts.DisableSpecialCases,
		CompactProtocol:     j.Opts.Engine == engine.DistributedCompact,
	}
	if j.Opts.Engine == engine.Central {
		sol, err := maxminlp.SolveLocal(j.In, opts)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	sol, _, err := maxminlp.SolveLocalDistributed(j.In, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// TestPoolMatchesSequential pushes jobs of different shapes through one
// pool so each worker's scratch is re-targeted across instances, and
// checks bit-identity against the sequential solve.
func TestPoolMatchesSequential(t *testing.T) {
	jobs := conformanceJobs(t)
	p := batch.NewPool(batch.Options{Workers: 2, Queue: 1})
	defer p.Close()
	for round := 0; round < 3; round++ {
		results := make([]batch.Result, len(jobs))
		var wg sync.WaitGroup
		for i, j := range jobs {
			wg.Add(1)
			i := i
			if err := p.Submit(context.Background(), i, j, func(r batch.Result) {
				results[i] = r
				wg.Done()
			}); err != nil {
				t.Fatal(err)
			}
		}
		wg.Wait()
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("round %d job %d: %v", round, i, r.Err)
			}
			want := sequential(t, jobs[i])
			for v := range want.X {
				if r.Sol.X[v] != want.X[v] {
					t.Fatalf("round %d job %d: X[%d] = %v, want %v", round, i, v, r.Sol.X[v], want.X[v])
				}
			}
		}
	}
	st := p.Stats()
	if st.Jobs != int64(3*len(conformanceJobs(t))) || st.P50 <= 0 || st.JobsPerSec <= 0 {
		t.Fatalf("pool stats = %+v", st)
	}
}

// TestPoolCloseDuringSubmit closes the pool while submitters are applying
// backpressure on a full queue: no send may panic, every accepted
// submission must complete, and later submissions must see ErrPoolClosed.
func TestPoolCloseDuringSubmit(t *testing.T) {
	p := batch.NewPool(batch.Options{Workers: 1, Queue: 1})
	job := batch.Job{In: gen.TriNecklace(3), Opts: engine.Options{R: 3}}
	var accepted, completed atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := p.Submit(context.Background(), i, job, func(batch.Result) { completed.Add(1) })
				if errors.Is(err, batch.ErrPoolClosed) {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				accepted.Add(1)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	p.Close()
	wg.Wait()
	if completed.Load() != accepted.Load() {
		t.Fatalf("accepted %d submissions but completed %d", accepted.Load(), completed.Load())
	}
	if err := p.Submit(context.Background(), 0, job, func(batch.Result) {}); !errors.Is(err, batch.ErrPoolClosed) {
		t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
	}
}

// TestSolveCancellation cancels mid-batch: Solve must return the context
// error, every skipped job must carry it, and no result may be lost.
func TestSolveCancellation(t *testing.T) {
	in := gen.Random(gen.RandomConfig{Agents: 20, MaxDegI: 3, MaxDegK: 3, ExtraCons: 5, ExtraObjs: 2}, 1)
	jobs := make([]batch.Job, 200)
	for i := range jobs {
		jobs[i] = batch.Job{In: in, Opts: engine.Options{R: 3, DisableSpecialCases: true}}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := batch.Solve(ctx, jobs, batch.Options{Workers: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range res {
		if r.Sol == nil && !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d: Sol=nil Err=%v", i, r.Err)
		}
	}
}

// TestJobTimeout gives jobs an expired deadline; the pipeline must stop at
// a stage boundary and report context.DeadlineExceeded.
func TestJobTimeout(t *testing.T) {
	in := gen.Random(gen.RandomConfig{Agents: 24, MaxDegI: 3, MaxDegK: 3, ExtraCons: 6, ExtraObjs: 3}, 1)
	jobs := []batch.Job{{In: in, Opts: engine.Options{R: 3, DisableSpecialCases: true}}}
	res, _, err := batch.Solve(context.Background(), jobs, batch.Options{Workers: 1, JobTimeout: time.Nanosecond})
	if err != nil {
		t.Fatalf("Solve err = %v (per-job deadlines must not fail the batch)", err)
	}
	if !errors.Is(res[0].Err, context.DeadlineExceeded) {
		t.Fatalf("job err = %v, want context.DeadlineExceeded", res[0].Err)
	}
}

// TestSolveWithCache submits a batch full of duplicate jobs: every result
// must stay bit-identical to the sequential solve, the duplicates must be
// answered by the cache (hits + coalesced waiters), and the stats must
// carry the cache counters.
func TestSolveWithCache(t *testing.T) {
	base := conformanceJobs(t)
	var jobs []batch.Job
	for rep := 0; rep < 4; rep++ {
		jobs = append(jobs, base...)
	}
	res, stats, err := batch.Solve(context.Background(), jobs, batch.Options{Workers: 4, CacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cached := 0
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Cached {
			cached++
		}
		want := sequential(t, jobs[i])
		if r.Sol.Utility != want.Utility || r.Sol.UpperBound != want.UpperBound {
			t.Fatalf("job %d: (%v, %v), want (%v, %v)", i, r.Sol.Utility, r.Sol.UpperBound, want.Utility, want.UpperBound)
		}
		for v := range want.X {
			if r.Sol.X[v] != want.X[v] {
				t.Fatalf("job %d: X[%d] = %v, want %v", i, v, r.Sol.X[v], want.X[v])
			}
		}
	}
	if stats.Cache == nil {
		t.Fatal("stats carry no cache block")
	}
	// Each distinct job computes at most once... plus possibly coalesced
	// concurrent leaders' failures — with 4 reps of len(base) distinct
	// keys, at least 3×len(base) lookups were answered without a solve.
	if cached < 3*len(base) {
		t.Fatalf("cached results = %d, want ≥ %d (cache stats %+v)", cached, 3*len(base), stats.Cache)
	}
	if stats.Cache.Misses > int64(len(base)) {
		t.Fatalf("misses = %d, want ≤ %d distinct keys", stats.Cache.Misses, len(base))
	}
	if got := stats.Cache.Hits + stats.Cache.Coalesced; got < int64(3*len(base)) {
		t.Fatalf("hits+coalesced = %d, want ≥ %d", got, 3*len(base))
	}
}

// TestSolveWithoutCache: caching disabled means no cache block and no
// cached results, even on duplicate jobs.
func TestSolveWithoutCache(t *testing.T) {
	job := batch.Job{In: gen.TriNecklace(3), Opts: engine.Options{R: 3}}
	res, stats, err := batch.Solve(context.Background(), []batch.Job{job, job}, batch.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cache != nil {
		t.Fatalf("unexpected cache stats %+v", stats.Cache)
	}
	for i, r := range res {
		if r.Cached {
			t.Fatalf("job %d reported cached without a cache", i)
		}
	}
}

// TestPoolCacheConcurrent floods a cached pool with one hot key from many
// goroutines (run under -race in CI): the kernel must run far fewer times
// than the request count, every result must be bit-identical, and the
// counters must add up.
func TestPoolCacheConcurrent(t *testing.T) {
	const requests = 64
	in := gen.Random(gen.RandomConfig{Agents: 16, MaxDegI: 3, MaxDegK: 3, ExtraCons: 5, ExtraObjs: 2}, 11)
	job := batch.Job{In: in, Opts: engine.Options{R: 3, DisableSpecialCases: true}}
	want := sequential(t, job)

	p := batch.NewPool(batch.Options{Workers: 4, CacheBytes: 1 << 20, CacheShards: 4})
	defer p.Close()
	var wg sync.WaitGroup
	results := make([]batch.Result, requests)
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = p.Do(context.Background(), job)
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: %v", g, r.Err)
		}
		for v := range want.X {
			if r.Sol.X[v] != want.X[v] {
				t.Fatalf("request %d: X[%d] = %v, want %v", g, v, r.Sol.X[v], want.X[v])
			}
		}
	}
	cs := p.CacheStats()
	if cs == nil {
		t.Fatal("CacheStats = nil on a cached pool")
	}
	if cs.Hits+cs.Misses+cs.Coalesced != requests {
		t.Fatalf("hits+misses+coalesced = %d, want %d (stats %+v)", cs.Hits+cs.Misses+cs.Coalesced, requests, cs)
	}
	// One key: at most one solve per concurrent wave; with 4 workers the
	// kernel cannot have run more than a handful of times.
	if cs.Misses > 4 {
		t.Fatalf("misses = %d on a single hot key", cs.Misses)
	}
	if cs.Entries != 1 {
		t.Fatalf("entries = %d, want 1", cs.Entries)
	}
}

// TestJobFromRequest covers the wire conversions.
func TestJobFromRequest(t *testing.T) {
	in := gen.TriNecklace(4)
	job, err := batch.JobFromRequest(&mmlp.SolveRequest{Instance: in, Engine: mmlp.EngineDistCompact, R: 4})
	if err != nil {
		t.Fatal(err)
	}
	if job.Opts.Engine != engine.DistributedCompact || job.Opts.R != 4 {
		t.Fatalf("job opts = %+v", job.Opts)
	}
	if _, err := batch.JobFromRequest(&mmlp.SolveRequest{Instance: in, Engine: "simplex"}); !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("unknown engine err = %v", err)
	}
	if _, err := batch.JobFromRequest(&mmlp.SolveRequest{}); !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("missing instance err = %v", err)
	}
	if _, err := batch.JobFromRequest(&mmlp.SolveRequest{Instance: in, R: 1}); !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("bad R err = %v", err)
	}
}
