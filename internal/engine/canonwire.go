package engine

// This file is the binary-wire solve path: requests that arrive as canon
// payloads (Content-Type: application/x-mmlp-canon) are keyed by hashing
// the raw bytes — canon's decoder accepts exactly one byte string per
// (instance, options) class, so canon.HashBytes(payload) IS the key
// SolveKey computes for the same request arriving as JSON — and decoded
// only on a cache miss, straight into the worker Scratch's decode arena.
// The warm path of a repeated canon request is therefore one SHA-256 and
// one cache lookup: no decode, no mmlp.Instance construction at all.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/canon"
	"repro/internal/delta"
	"repro/internal/mmlp"
	"repro/internal/obs"
)

// canonOptions maps engine options onto the wire/key options. SolveKey and
// EncodeCanon both go through it, so the JSON path's cache key and the
// binary wire's payload can never disagree about what participates.
func canonOptions(o Options) canon.Options {
	return canon.Options{
		Engine:              int(o.Engine),
		R:                   o.R,
		BinIters:            o.BinIters,
		DisableSpecialCases: o.DisableSpecialCases,
		SelfCheck:           o.SelfCheck,
	}
}

// OptionsFromCanon maps decoded wire options back to engine options.
// Workers is absent on the wire (it never changes output bits); it stays
// zero, which scratch-based solving ignores anyway.
func OptionsFromCanon(co canon.Options) Options {
	return Options{
		Engine:              Kind(co.Engine),
		R:                   co.R,
		BinIters:            co.BinIters,
		DisableSpecialCases: co.DisableSpecialCases,
		SelfCheck:           co.SelfCheck,
	}
}

// EncodeCanon encodes one solve as a canon wire payload — what a binary
// client sends where a JSON client sends a SolveRequest.
func EncodeCanon(in *mmlp.Instance, o Options) []byte {
	return canon.EncodeSolve(in, canonOptions(o))
}

// decodeCanon decodes a payload into sc's arena. Wire errors wrap
// mmlp.ErrInvalid: a malformed payload is the binary twin of a JSON body
// that fails validation, and the serving layer maps both to one 400 path.
func decodeCanon(payload []byte, sc *Scratch) (*mmlp.Instance, Options, error) {
	var dsc *canon.DecodeScratch
	if sc != nil {
		dsc = &sc.dec
	}
	in, co, err := canon.DecodeSolve(payload, dsc)
	if err != nil {
		return nil, Options{}, fmt.Errorf("%w: canon request: %w", mmlp.ErrInvalid, err)
	}
	return in, OptionsFromCanon(co), nil
}

// solveCanonBytesMiss decodes, validates and solves a canon payload — the
// cache-miss (or cache-disabled) arm shared by both entry points. The
// decoded instance is already in canonical form (the decoder rejects
// anything else), so the pipeline skips re-canonicalization entirely.
// capture asks for the delta record the caching entry points store with
// the result; the cache-disabled path passes false and gets nil.
func solveCanonBytesMiss(ctx context.Context, payload []byte, sc *Scratch, capture bool) (*Solution, *DistInfo, *delta.Record, error) {
	// The wire decode is this path's twin of JSON canonicalization, so it
	// is timed under the canonicalize trace slot. The entry points reset
	// the trace; this arm only accumulates.
	td := time.Now()
	in, o, err := decodeCanon(payload, sc)
	if err != nil {
		return nil, nil, nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, nil, nil, err
	}
	coreScratch := sc != nil
	if sc == nil {
		sc = NewScratch()
	}
	sc.Trace.Add(obs.StageCanonicalize, time.Since(td))
	var rec *delta.Record
	if capture {
		// The decoded instance lives in sc's decode arena; the record
		// outlives the request, so it takes a deep copy.
		rec = &delta.Record{In: in.Clone(), Opts: canonOptions(o)}
	}
	sol, info, err := solveCanonical(ctx, in, o, sc, coreScratch, rec)
	return sol, info, rec, err
}

// SolveCanonBytes is the canon-payload counterpart of SolveCached: the key
// is the SHA-256 of the raw bytes, a hit replays the stored result without
// decoding the payload at all, and a miss decodes into sc's arena and runs
// the pipeline. Results are bit-identical to the same request sent as JSON
// — both paths cache under the same key, so either encoding warms the
// other. Failed decodes and failed solves are never stored.
func SolveCanonBytes(ctx context.Context, payload []byte, sc *Scratch, ca *Cache) (sol *Solution, info *DistInfo, cached bool, err error) {
	var tr *obs.Trace
	if sc != nil {
		tr = &sc.Trace
	}
	tr.Reset()
	if ca == nil || ca.c == nil {
		sol, info, _, err = solveCanonBytesMiss(ctx, payload, sc, false)
		return sol, info, false, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	th := time.Now()
	key := canon.HashBytes(payload)
	tr.Add(obs.StageHash, time.Since(th))
	tl := time.Now()
	v, hit, err := ca.c.Do(ctx, key, func() (any, int64, error) {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
		sol, info, rec, err := solveCanonBytesMiss(ctx, payload, sc, true)
		if err != nil {
			return nil, 0, err
		}
		res := &cachedResult{sol: sol, info: info, rec: rec}
		return res, res.bytes(), nil
	})
	if err != nil {
		return nil, nil, false, err
	}
	if hit {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
	}
	res := v.(*cachedResult)
	return res.sol.clone(), res.info.clone(), hit, nil
}

// SolveCanonBytesDetach is SolveCanonBytes with SolveCachedDetach's
// non-parking contract: when the key is already being solved, deliver is
// registered on the in-flight solve and the call returns immediately with
// subscribed=true; otherwise it behaves exactly like SolveCanonBytes and
// deliver is unused. See SolveCachedDetach for the retry semantics.
func SolveCanonBytesDetach(ctx context.Context, payload []byte, sc *Scratch, ca *Cache, deliver func(sol *Solution, info *DistInfo, err error)) (sol *Solution, info *DistInfo, cached, subscribed bool, err error) {
	var tr *obs.Trace
	if sc != nil {
		tr = &sc.Trace
	}
	tr.Reset()
	if ca == nil || ca.c == nil {
		sol, info, _, err = solveCanonBytesMiss(ctx, payload, sc, false)
		return sol, info, false, false, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	th := time.Now()
	key := canon.HashBytes(payload)
	tr.Add(obs.StageHash, time.Since(th))
	tl := time.Now()
	v, hit, done, err := ca.c.DoDetached(key, func() (any, int64, error) {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
		sol, info, rec, err := solveCanonBytesMiss(ctx, payload, sc, true)
		if err != nil {
			return nil, 0, err
		}
		res := &cachedResult{sol: sol, info: info, rec: rec}
		return res, res.bytes(), nil
	}, func(val any, derr error) {
		if derr != nil {
			deliver(nil, nil, derr)
			return
		}
		res := val.(*cachedResult)
		deliver(res.sol.clone(), res.info.clone(), nil)
	})
	if !done {
		return nil, nil, false, true, nil
	}
	if err != nil {
		return nil, nil, false, false, err
	}
	if hit {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
	}
	res := v.(*cachedResult)
	return res.sol.clone(), res.info.clone(), hit, false, nil
}
