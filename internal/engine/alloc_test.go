package engine_test

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
)

// warmSolveAllocBudget is the pinned heap budget of one warm-scratch
// centralised solve on the E1 workload: the kernel Trace, the lifted and
// strictified solution vectors, the Solution itself and ValidateStrict's
// two membership slices. Anything beyond this means an arena stopped being
// reused — fail loudly rather than drift back to allocation churn.
const warmSolveAllocBudget = 10

// TestWarmSolveAllocBudget pins the steady-state allocation count of the
// full centralised pipeline (canonicalization + §4 transforms + kernel +
// back-mapping) on a warm per-worker scratch.
func TestWarmSolveAllocBudget(t *testing.T) {
	ctx := context.Background()
	in := gen.Random(gen.RandomConfig{Agents: 24, MaxDegI: 3, MaxDegK: 3, ExtraCons: 6, ExtraObjs: 3}, 1)
	opts := engine.Options{R: 3, DisableSpecialCases: true}
	sc := engine.NewScratch()
	solve := func() {
		if _, _, err := engine.SolveScratch(ctx, in, opts, sc); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm every arena
	if avg := testing.AllocsPerRun(100, solve); avg > warmSolveAllocBudget {
		t.Fatalf("warm solve allocates %.1f objects, budget %d", avg, warmSolveAllocBudget)
	}
}

// TestWarmSolveAllocBudgetNonCanonical is the same pin for inputs that
// need the scratch canonicalization copy every solve.
func TestWarmSolveAllocBudgetNonCanonical(t *testing.T) {
	ctx := context.Background()
	in := reversedCopy(gen.Random(gen.RandomConfig{Agents: 24, MaxDegI: 3, MaxDegK: 3, ExtraCons: 6, ExtraObjs: 3}, 2))
	opts := engine.Options{R: 3, DisableSpecialCases: true}
	sc := engine.NewScratch()
	solve := func() {
		if _, _, err := engine.SolveScratch(ctx, in, opts, sc); err != nil {
			t.Fatal(err)
		}
	}
	solve()
	if avg := testing.AllocsPerRun(100, solve); avg > warmSolveAllocBudget {
		t.Fatalf("warm non-canonical solve allocates %.1f objects, budget %d", avg, warmSolveAllocBudget)
	}
}
