package engine

import (
	"context"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
	"repro/internal/delta"
	"repro/internal/mmlp"
	"repro/internal/obs"
)

// This file is the cache-aware solve path. The algorithm is deterministic
// and the pipeline canonicalizes term/row order at entry, so every member
// of a canon.Key's equivalence class produces bit-identical solutions; a
// complete, post-back-mapping Solution is therefore safe to memoise under
// the canonical hash of its inputs and replay to any later caller.

// CacheOptions sizes a result cache.
type CacheOptions struct {
	// MaxBytes is the total byte budget (0 = cache.DefaultMaxBytes).
	MaxBytes int64
	// Shards is the shard count, rounded up to a power of two
	// (0 = cache.DefaultShards).
	Shards int
}

// CacheStats re-exports the cache counters for the serving layer.
type CacheStats = cache.Stats

// Cache memoises complete solve results keyed by the canonical
// (instance, options) hash. Safe for concurrent use; a nil *Cache disables
// caching wherever one is accepted.
type Cache struct {
	c *cache.Cache
}

// NewCache builds a result cache.
func NewCache(o CacheOptions) *Cache {
	return &Cache{c: cache.New(cache.Options{MaxBytes: o.MaxBytes, Shards: o.Shards})}
}

// Stats snapshots the cache counters (zero-valued for a nil cache).
func (c *Cache) Stats() CacheStats {
	if c == nil || c.c == nil {
		return CacheStats{}
	}
	return c.c.Stats()
}

// Prune removes every cached result whose key fails keep and returns the
// number removed. The serving layer calls it after a ring cutover so each
// shard keeps only the partitions the new assignment gives it. A no-op on
// a nil cache.
func (c *Cache) Prune(keep func(canon.Key) bool) int {
	if c == nil || c.c == nil {
		return 0
	}
	return c.c.Prune(keep)
}

// cachedResult is what one key maps to: the solution, the traffic report
// of the run for the message-passing engines, and the delta record — the
// canonical instance, options and kernel t-vector SolveDelta prices edits
// against. All three are immutable once stored.
type cachedResult struct {
	sol  *Solution
	info *DistInfo
	rec  *delta.Record
}

// SolveKey canonically hashes one solve: the cache index of its result and
// — because it is invariant under row/term permutation — the routing key
// the shard layer uses to assign every spelling of one problem to one
// fleet member. Workers is excluded: it changes parallelism, never output
// bits.
func SolveKey(in *mmlp.Instance, o Options) canon.Key {
	return canon.Hash(in, canonOptions(o))
}

// bytes estimates an entry's memory cost: the X vector dominates; the
// fixed structs, the key and the map/list bookkeeping are covered by a
// flat overhead.
func (r *cachedResult) bytes() int64 {
	const overhead = 192
	n := int64(overhead) + 8*int64(len(r.sol.X))
	if r.info != nil {
		n += 48
	}
	n += r.rec.Bytes()
	return n
}

// clone returns a solution the caller owns: cached entries are shared
// across goroutines, and public callers are free to mutate X.
func (s *Solution) clone() *Solution {
	if s == nil {
		return nil
	}
	c := *s
	if s.X != nil {
		c.X = append(make([]float64, 0, len(s.X)), s.X...)
	}
	return &c
}

func (d *DistInfo) clone() *DistInfo {
	if d == nil {
		return nil
	}
	c := *d
	return &c
}

// SolveCached is SolveScratch fronted by ca: a key hit returns the stored
// result without touching the pipeline, a miss solves and stores. Stored
// results are captured after back-mapping, so a hit is bit-identical to
// the cold solve it replaces (the conformance tests assert this). Failed
// solves are never stored. Concurrent misses of one key coalesce: a single
// caller runs the pipeline, the rest share its result. The returned
// solution is a private copy — callers may mutate it freely. cached
// reports whether the result came from the cache (or a concurrent leader)
// rather than from this call's own solve.
//
// The canonical instance is computed once per request: the key is hashed
// over it (same key as hashing the original — canon.Hash is permutation
// invariant) and a miss solves it directly, instead of canonicalizing once
// for the key and a second time inside the solve.
func SolveCached(ctx context.Context, in *mmlp.Instance, o Options, sc *Scratch, ca *Cache) (sol *Solution, info *DistInfo, cached bool, err error) {
	if ca == nil || ca.c == nil {
		sol, info, err = SolveScratch(ctx, in, o, sc)
		return sol, info, false, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	coreScratch := sc != nil
	var cs *mmlp.CanonScratch
	var tr *obs.Trace
	if sc != nil {
		cs = &sc.canon
		tr = &sc.Trace
	}
	tr.Reset()
	tc := time.Now()
	cin := in.CanonicalInto(cs)
	tr.Add(obs.StageCanonicalize, time.Since(tc))
	th := time.Now()
	key := SolveKey(cin, o)
	tr.Add(obs.StageHash, time.Since(th))
	// The cache-lookup span covers the index probe plus any wait behind a
	// coalesced flight: on a miss it closes when the compute closure
	// starts, on a hit (or coalesced wait) when Do returns.
	tl := time.Now()
	v, hit, err := ca.c.Do(ctx, key, func() (any, int64, error) {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
		// Validate the original, not the canonical copy, so error messages
		// name the caller's row indices; invalid misses stay uncached.
		if err := in.Validate(); err != nil {
			return nil, 0, err
		}
		wsc := sc
		if wsc == nil {
			wsc = NewScratch()
		}
		rec := &delta.Record{In: cin.Clone(), Opts: canonOptions(o)}
		sol, info, err := solveCanonical(ctx, cin, o, wsc, coreScratch, rec)
		if err != nil {
			return nil, 0, err
		}
		res := &cachedResult{sol: sol, info: info, rec: rec}
		return res, res.bytes(), nil
	})
	if err != nil {
		return nil, nil, false, err
	}
	if hit {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
	}
	res := v.(*cachedResult)
	return res.sol.clone(), res.info.clone(), hit, nil
}

// SolveCachedDetach is SolveCached for callers that must not park behind
// another caller's in-flight solve of the same key. When no such flight
// exists it behaves exactly like SolveCached (deliver is unused) and
// returns subscribed=false. When one does, the call registers deliver on
// the flight and returns immediately with subscribed=true and every other
// result zero: deliver is later invoked exactly once, on the leading
// goroutine, with a private copy of the shared solution on success or the
// leader's error on failure. Unlike SolveCached there is no automatic
// retry after a leader failure — the subscriber decides (the batch pool
// re-queues the job, applying its own timeout afresh).
func SolveCachedDetach(ctx context.Context, in *mmlp.Instance, o Options, sc *Scratch, ca *Cache, deliver func(sol *Solution, info *DistInfo, err error)) (sol *Solution, info *DistInfo, cached, subscribed bool, err error) {
	if ca == nil || ca.c == nil {
		sol, info, err = SolveScratch(ctx, in, o, sc)
		return sol, info, false, false, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	coreScratch := sc != nil
	var cs *mmlp.CanonScratch
	var tr *obs.Trace
	if sc != nil {
		cs = &sc.canon
		tr = &sc.Trace
	}
	tr.Reset()
	tc := time.Now()
	cin := in.CanonicalInto(cs)
	tr.Add(obs.StageCanonicalize, time.Since(tc))
	th := time.Now()
	key := SolveKey(cin, o)
	tr.Add(obs.StageHash, time.Since(th))
	tl := time.Now()
	v, hit, done, err := ca.c.DoDetached(key, func() (any, int64, error) {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
		if err := in.Validate(); err != nil {
			return nil, 0, err
		}
		wsc := sc
		if wsc == nil {
			wsc = NewScratch()
		}
		rec := &delta.Record{In: cin.Clone(), Opts: canonOptions(o)}
		sol, info, err := solveCanonical(ctx, cin, o, wsc, coreScratch, rec)
		if err != nil {
			return nil, 0, err
		}
		res := &cachedResult{sol: sol, info: info, rec: rec}
		return res, res.bytes(), nil
	}, func(val any, derr error) {
		if derr != nil {
			deliver(nil, nil, derr)
			return
		}
		res := val.(*cachedResult)
		deliver(res.sol.clone(), res.info.clone(), nil)
	})
	if !done {
		return nil, nil, false, true, nil
	}
	if err != nil {
		return nil, nil, false, false, err
	}
	if hit {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
	}
	res := v.(*cachedResult)
	return res.sol.clone(), res.info.clone(), hit, false, nil
}
