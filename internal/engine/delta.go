package engine

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/mmlp"
	"repro/internal/obs"
	"repro/internal/structured"
	"repro/internal/transform"
)

// This file is the incremental re-solve path behind POST /v1/delta. A
// delta names a cached base solve by canonical key and edits a few rows;
// the pipeline re-prices exactly the agents whose radius-(4r+3)
// neighbourhood the edits touch (delta.Plan) and splices every other
// kernel value from the base's record, then re-runs the cheap derived
// stages. The result is bit-identical to a cold solve of the edited
// instance — for every engine, because the dist protocols' T and X vectors
// are bit-identical to the centralised kernel's (see internal/dist). What
// a splice cannot reproduce is a dist run's traffic report, so delta
// results are stored back into the cache only for the centralised engine:
// a stored entry must replay bit-identically to ANY later request for its
// key, including a /v1/solve that expects rounds/messages.

// ErrBaseUnknown reports that the named base key holds no delta record on
// this process — never cached here, evicted, or cached before delta
// support. The serving layer maps it to 404/base_unknown and the client
// falls back to a full solve.
var ErrBaseUnknown = errors.New("engine: base key unknown (solve the instance in full first)")

// DeltaOutcome is the accounting of one delta solve.
type DeltaOutcome struct {
	// Key is the canonical key of the edited instance (the base for a
	// follow-up delta).
	Key canon.Key
	// DirtyAgents is how many structured-form agents the kernel re-ran for;
	// TotalAgents the structured instance size. Both are zero when the
	// edited instance was answered from the cache without solving.
	DirtyAgents int
	TotalAgents int
	// Spliced reports that at least one agent's kernel value was taken from
	// the base record. False on a cache hit, on a full recompute (the dirty
	// ball covered every agent), and on the fallback paths that re-solve
	// cold (base record without a t-vector, or a structural mismatch).
	Spliced bool
}

// SolveDelta solves base-plus-edits against the result cache. The returned
// solution is a private copy; cached reports that the edited instance was
// already in the cache (empty edit set, or edits that cancel out). All
// edit failures wrap mmlp.ErrInvalid; a missing base returns
// ErrBaseUnknown. Concurrent deltas arriving at one edited key coalesce
// exactly like concurrent solves of that key.
func SolveDelta(ctx context.Context, base canon.Key, edits []mmlp.RowEdit, sc *Scratch, ca *Cache) (sol *Solution, out *DeltaOutcome, cached bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var tr *obs.Trace
	var cs *mmlp.CanonScratch
	if sc != nil {
		tr = &sc.Trace
		cs = &sc.canon
	}
	tr.Reset()
	if ca == nil || ca.c == nil {
		return nil, nil, false, ErrBaseUnknown
	}

	// Plan prologue: fetch the base record, apply the edits, canonicalize
	// and key the edited instance. The record is immutable cache state, so
	// it stays valid even if the entry is evicted between here and the
	// kernel (the eviction edge case is a 404 only when it precedes this
	// lookup).
	tp := time.Now()
	v, ok := ca.c.Get(base)
	if !ok {
		return nil, nil, false, ErrBaseUnknown
	}
	rec := v.(*cachedResult).rec
	if rec == nil || rec.In == nil {
		return nil, nil, false, ErrBaseUnknown
	}
	edited, err := delta.Apply(rec.In, edits)
	if err != nil {
		return nil, nil, false, err
	}
	if err := edited.Validate(); err != nil {
		return nil, nil, false, err
	}
	o := OptionsFromCanon(rec.Opts)
	cin := edited.CanonicalInto(cs)
	key := canon.Hash(cin, rec.Opts)
	tr.Add(obs.StageDeltaPlan, time.Since(tp))

	out = &DeltaOutcome{Key: key}
	tl := time.Now()
	if v, hit := ca.c.Get(key); hit {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
		res := v.(*cachedResult)
		return res.sol.clone(), out, true, nil
	}
	if o.Engine != Central {
		// No write-back (see the file comment), hence no coalescing either:
		// a concurrent cold solve of the same key must not find a spliced
		// entry without its traffic report.
		sol, err := solveDeltaMiss(ctx, rec, cin, o, sc, out, nil)
		return sol, out, false, err
	}
	v2, hit, err := ca.c.Do(ctx, key, func() (any, int64, error) {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
		rec2 := &delta.Record{In: cin.Clone(), Opts: rec.Opts}
		sol, err := solveDeltaMiss(ctx, rec, cin, o, sc, out, rec2)
		if err != nil {
			return nil, 0, err
		}
		res := &cachedResult{sol: sol, rec: rec2}
		return res, res.bytes(), nil
	})
	if err != nil {
		return nil, nil, false, err
	}
	if hit {
		tr.Add(obs.StageCacheLookup, time.Since(tl))
		// A concurrent flight beat us to the key: the answer is shared, the
		// delta accounting (dirty set) is the leader's, not ours.
		out.DirtyAgents, out.TotalAgents, out.Spliced = 0, 0, false
	}
	res := v2.(*cachedResult)
	return res.sol.clone(), out, hit, nil
}

// solveDeltaMiss prices the edit: it mirrors solveCanonical on the edited
// instance, with the kernel stage replaced by plan+recompute+splice
// whenever the base record carries a t-vector and the structured forms
// align. Every other shape — trivial dispatch, zero/unbounded preprocess
// outcome, a base that never ran the kernel, agent-count drift — falls
// back to solveCanonical itself, which is always bit-identical (just not
// incremental). rec2, when non-nil, receives the edited instance's
// t-vector for the stored record.
func solveDeltaMiss(ctx context.Context, rec *delta.Record, cin *mmlp.Instance, o Options, sc *Scratch, out *DeltaOutcome, rec2 *delta.Record) (*Solution, error) {
	coreScratch := sc != nil
	if sc == nil {
		sc = NewScratch()
	}
	cold := func() (*Solution, error) {
		sol, _, err := solveCanonical(ctx, cin, o, sc, coreScratch, rec2)
		if err == nil && rec2 != nil {
			out.TotalAgents = len(rec2.T)
			out.DirtyAgents = out.TotalAgents
		}
		return sol, err
	}
	if rec.T == nil {
		return cold()
	}
	if o.R == 0 {
		o.R = 3
	}
	if o.R < 2 {
		return nil, fmt.Errorf("maxminlp: R must be ≥ 2, got %d", o.R)
	}

	// Transform the edited instance. Any path that leaves the standard
	// preprocess→structure pipeline is handled by the cold solve: those
	// paths never touch the kernel, so there is nothing to splice.
	tp := time.Now()
	pp := transform.PreprocessScratch(cin, &sc.pipe)
	if pp.Outcome != transform.OK {
		return cold()
	}
	red := pp.Out
	if !o.DisableSpecialCases && (red.DegreeI() <= 1 || red.DegreeK() <= 1) {
		return cold()
	}
	pipe, err := transform.StructureScratch(red, &sc.pipe)
	if err != nil {
		return nil, err
	}
	sNew, err := structured.FromMMLPScratch(pipe.Final(), &sc.str)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Transform the base the same way — once per record, not per delta: the
	// memoised form is shared by every delta priced against this base. The
	// build uses a private arena (sc's is holding the edited side) whose
	// memory the structured instance then owns. The base reached the kernel
	// (rec.T != nil), so its pipeline must take the same shape; anything
	// else means the record cannot be aligned and the cold solve decides.
	sOld, ok := rec.BaseStructured(func() (*structured.Instance, bool) {
		osc := NewScratch()
		ppOld := transform.PreprocessScratch(rec.In, &osc.pipe)
		if ppOld.Outcome != transform.OK {
			return nil, false
		}
		pipeOld, err := transform.StructureScratch(ppOld.Out, &osc.pipe)
		if err != nil {
			return nil, false
		}
		s, err := structured.FromMMLPScratch(pipeOld.Final(), &osc.str)
		if err != nil {
			return nil, false
		}
		return s, true
	})
	if !ok {
		return cold()
	}
	if sOld.N != sNew.N || len(rec.T) != sOld.N {
		return cold()
	}
	r := o.R - 2
	dirty, err := delta.Plan(sOld, sNew, core.TRadius(r))
	if err != nil {
		return cold()
	}
	sc.Trace.Add(obs.StageDeltaPlan, time.Since(tp))

	// Kernel: re-price exactly the dirty agents against the edited form.
	tk := time.Now()
	copts := core.Options{R: o.R, Workers: o.Workers, BinIters: o.BinIters}
	t, err := core.RecomputeT(sNew, rec.T, dirty, copts)
	if err != nil {
		return nil, err
	}
	sc.Trace.Add(obs.StageDeltaKernel, time.Since(tk))
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Splice: derive the cheap stages from the merged t-vector and back-map
	// exactly as a cold solve would.
	ts := time.Now()
	ctr, err := core.DeriveFromT(sNew, t, copts)
	if err != nil {
		return nil, err
	}
	x := cin.Strictify(pp.Lift(pipe.Back(ctr.X)))
	sol := &Solution{
		Status:     StatusApproximate,
		X:          x,
		Utility:    cin.Utility(x),
		UpperBound: ctr.UpperBound,
	}
	sc.Trace.Add(obs.StageDeltaSplice, time.Since(ts))
	if rec2 != nil {
		rec2.T = t
	}
	out.DirtyAgents = len(dirty)
	out.TotalAgents = sNew.N
	out.Spliced = len(dirty) < sNew.N
	return sol, nil
}
