package engine_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/canon"
	"repro/internal/delta"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// reweightEdit builds an edit set that doubles (or scales) the
// coefficients of the base's first canonical constraint row — the
// smallest semantically meaningful edit, valid against any instance with
// at least one constraint.
func reweightEdit(in *mmlp.Instance, factor float64) []mmlp.RowEdit {
	row := in.Canonical().Cons[0].Terms
	nt := make([]mmlp.Term, len(row))
	for j, tm := range row {
		nt[j] = mmlp.Term{Agent: tm.Agent, Coef: tm.Coef * factor}
	}
	return []mmlp.RowEdit{{
		Op:    mmlp.EditReweight,
		Kind:  mmlp.EditConstraint,
		Match: append([]mmlp.Term(nil), row...),
		Terms: nt,
	}}
}

// seedBase solves in under opts so the cache holds its delta record, and
// returns the base key.
func seedBase(t *testing.T, ca *engine.Cache, in *mmlp.Instance, opts engine.Options) canon.Key {
	t.Helper()
	if _, _, _, err := engine.SolveCached(context.Background(), in, opts, engine.NewScratch(), ca); err != nil {
		t.Fatalf("base solve: %v", err)
	}
	return engine.SolveKey(in, opts)
}

// TestSolveDeltaConformance is the tentpole acceptance check: for every
// engine, a delta solve is bit-identical to a cold solve of the edited
// instance. The centralised engine additionally stores the result, so a
// repeat of the same delta must hit the cache with the same bits; the
// message-passing engines never store (a spliced entry could not replay a
// traffic report), so a repeat re-prices.
func TestSolveDeltaConformance(t *testing.T) {
	ctx := context.Background()
	cases := map[string]struct {
		in     *mmlp.Instance
		opts   engine.Options
		stored bool
	}{
		"central":      {gen.Random(gen.RandomConfig{Agents: 18, MaxDegI: 3, MaxDegK: 3, ExtraCons: 5, ExtraObjs: 2}, 1), engine.Options{R: 3, DisableSpecialCases: true}, true},
		"central-r4":   {gen.Random(gen.RandomConfig{Agents: 14, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 2), engine.Options{R: 4, DisableSpecialCases: true}, true},
		"dist":         {gen.TriNecklace(4), engine.Options{Engine: engine.Distributed, R: 3}, false},
		"dist-compact": {gen.TriNecklace(4), engine.Options{Engine: engine.DistributedCompact, R: 3}, false},
	}
	for name, c := range cases {
		ca := engine.NewCache(engine.CacheOptions{})
		base := seedBase(t, ca, c.in, c.opts)
		edits := reweightEdit(c.in, 2)

		edited, err := delta.Apply(c.in.Canonical(), edits)
		if err != nil {
			t.Fatalf("%s: apply: %v", name, err)
		}
		cold, _, err := engine.Solve(ctx, edited, c.opts)
		if err != nil {
			t.Fatalf("%s: cold solve of the edited instance: %v", name, err)
		}

		sol, out, cached, err := engine.SolveDelta(ctx, base, edits, engine.NewScratch(), ca)
		if err != nil {
			t.Fatalf("%s: delta solve: %v", name, err)
		}
		if cached {
			t.Fatalf("%s: first delta reported a cache hit", name)
		}
		equalSolutions(t, name+"/delta", sol, cold)
		if want := engine.SolveKey(edited, c.opts); out.Key != want {
			t.Fatalf("%s: delta key %s, want the edited instance's key %s", name, out.Key, want)
		}

		again, _, cached, err := engine.SolveDelta(ctx, base, edits, engine.NewScratch(), ca)
		if err != nil {
			t.Fatalf("%s: repeat delta: %v", name, err)
		}
		if cached != c.stored {
			t.Fatalf("%s: repeat delta cached = %v, want %v", name, cached, c.stored)
		}
		equalSolutions(t, name+"/repeat", again, cold)
	}
}

// TestSolveDeltaSplices pins the incremental path itself: on a large
// instance with the minimum horizon (R=2, ball radius 3), a one-row edit
// must dirty only a small neighbourhood, splice the rest from the base
// record, and still reproduce the cold solve bit for bit.
func TestSolveDeltaSplices(t *testing.T) {
	ctx := context.Background()
	in := gen.Random(gen.RandomConfig{Agents: 200, MaxDegI: 3, MaxDegK: 3, ExtraCons: 40, ExtraObjs: 10}, 11)
	opts := engine.Options{R: 2, DisableSpecialCases: true}
	ca := engine.NewCache(engine.CacheOptions{})
	base := seedBase(t, ca, in, opts)
	edits := reweightEdit(in, 3)

	edited, err := delta.Apply(in.Canonical(), edits)
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := engine.Solve(ctx, edited, opts)
	if err != nil {
		t.Fatal(err)
	}
	sol, out, cached, err := engine.SolveDelta(ctx, base, edits, engine.NewScratch(), ca)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first delta reported a cache hit")
	}
	equalSolutions(t, "spliced", sol, cold)
	if !out.Spliced {
		t.Fatalf("outcome %+v: expected a spliced solve", out)
	}
	if out.DirtyAgents <= 0 || out.DirtyAgents >= out.TotalAgents {
		t.Fatalf("dirty %d of %d agents: expected a strict subset", out.DirtyAgents, out.TotalAgents)
	}
}

// TestSolveDeltaEmptyEdits: an empty edit set is the base itself — a pure
// cache hit, no kernel work.
func TestSolveDeltaEmptyEdits(t *testing.T) {
	ctx := context.Background()
	in := gen.Random(gen.RandomConfig{Agents: 18, MaxDegI: 3, MaxDegK: 3, ExtraCons: 5, ExtraObjs: 2}, 4)
	opts := engine.Options{R: 3, DisableSpecialCases: true}
	ca := engine.NewCache(engine.CacheOptions{})

	want, _, _, err := engine.SolveCached(ctx, in, opts, engine.NewScratch(), ca)
	if err != nil {
		t.Fatal(err)
	}
	base := engine.SolveKey(in, opts)
	sol, out, cached, err := engine.SolveDelta(ctx, base, nil, engine.NewScratch(), ca)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("empty edit set missed the cache")
	}
	equalSolutions(t, "empty-edits", sol, want)
	if out.Key != base {
		t.Fatalf("empty edit set changed the key: %s vs %s", out.Key, base)
	}
	if out.DirtyAgents != 0 || out.Spliced {
		t.Fatalf("outcome %+v: a cache hit must report no kernel work", out)
	}
}

// TestSolveDeltaRemoveLastObjective: an edit set that deletes every
// objective is a typed validation failure, not a solve.
func TestSolveDeltaRemoveLastObjective(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1, 1, 1)
	opts := engine.Options{R: 3}
	ca := engine.NewCache(engine.CacheOptions{})
	base := seedBase(t, ca, in, opts)

	match := in.Canonical().Objs[0].Terms
	_, _, _, err := engine.SolveDelta(context.Background(), base, []mmlp.RowEdit{
		{Op: mmlp.EditRemove, Kind: mmlp.EditObjective, Match: match},
	}, engine.NewScratch(), ca)
	if !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("err = %v, want ErrInvalid", err)
	}
}

// TestSolveDeltaAllDirty: on a small instance the edit ball covers every
// agent — a full recompute, reported as such, and still bit-identical.
func TestSolveDeltaAllDirty(t *testing.T) {
	ctx := context.Background()
	in := gen.TriNecklace(3)
	opts := engine.Options{R: 3, DisableSpecialCases: true}
	ca := engine.NewCache(engine.CacheOptions{})
	base := seedBase(t, ca, in, opts)
	edits := reweightEdit(in, 2)

	edited, err := delta.Apply(in.Canonical(), edits)
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := engine.Solve(ctx, edited, opts)
	if err != nil {
		t.Fatal(err)
	}
	sol, out, _, err := engine.SolveDelta(ctx, base, edits, engine.NewScratch(), ca)
	if err != nil {
		t.Fatal(err)
	}
	equalSolutions(t, "all-dirty", sol, cold)
	if out.Spliced {
		t.Fatalf("outcome %+v: a full recompute must not report a splice", out)
	}
	if out.DirtyAgents != out.TotalAgents || out.TotalAgents == 0 {
		t.Fatalf("outcome %+v: expected every agent dirty", out)
	}
}

// TestSolveDeltaBaseUnknown: a key never solved here — or evicted since —
// is the typed 404, both on a cold cache and after eviction.
func TestSolveDeltaBaseUnknown(t *testing.T) {
	ctx := context.Background()
	in := gen.Random(gen.RandomConfig{Agents: 12, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 5)
	opts := engine.Options{R: 3, DisableSpecialCases: true}
	ca := engine.NewCache(engine.CacheOptions{})

	if _, _, _, err := engine.SolveDelta(ctx, engine.SolveKey(in, opts), nil, engine.NewScratch(), ca); !errors.Is(err, engine.ErrBaseUnknown) {
		t.Fatalf("cold cache: err = %v, want ErrBaseUnknown", err)
	}

	base := seedBase(t, ca, in, opts)
	ca.Prune(func(canon.Key) bool { return false }) // evict everything
	if _, _, _, err := engine.SolveDelta(ctx, base, nil, engine.NewScratch(), ca); !errors.Is(err, engine.ErrBaseUnknown) {
		t.Fatalf("after eviction: err = %v, want ErrBaseUnknown", err)
	}

	if _, _, _, err := engine.SolveDelta(ctx, base, nil, engine.NewScratch(), nil); !errors.Is(err, engine.ErrBaseUnknown) {
		t.Fatalf("nil cache: err = %v, want ErrBaseUnknown", err)
	}
}

// TestSolveDeltaChained: the delta result's key is itself a usable base —
// the centralised path stores a record for the edited instance, so a
// second edit prices against it without ever re-solving from scratch.
func TestSolveDeltaChained(t *testing.T) {
	ctx := context.Background()
	in := gen.Random(gen.RandomConfig{Agents: 18, MaxDegI: 3, MaxDegK: 3, ExtraCons: 5, ExtraObjs: 2}, 6)
	opts := engine.Options{R: 3, DisableSpecialCases: true}
	ca := engine.NewCache(engine.CacheOptions{})
	base := seedBase(t, ca, in, opts)

	first := reweightEdit(in, 2)
	_, out1, _, err := engine.SolveDelta(ctx, base, first, engine.NewScratch(), ca)
	if err != nil {
		t.Fatal(err)
	}
	once, err := delta.Apply(in.Canonical(), first)
	if err != nil {
		t.Fatal(err)
	}

	second := reweightEdit(once, 2)
	sol, out2, cached, err := engine.SolveDelta(ctx, out1.Key, second, engine.NewScratch(), ca)
	if err != nil {
		t.Fatalf("chained delta: %v", err)
	}
	if cached {
		t.Fatal("chained delta reported a cache hit")
	}
	twice, err := delta.Apply(once.Canonical(), second)
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := engine.Solve(ctx, twice, opts)
	if err != nil {
		t.Fatal(err)
	}
	equalSolutions(t, "chained", sol, cold)
	if want := engine.SolveKey(twice, opts); out2.Key != want {
		t.Fatalf("chained key %s, want %s", out2.Key, want)
	}
}
