// Package engine hosts the end-to-end solve pipeline behind the public
// maxminlp surface: validation, the §4 preamble and transformations, the
// trivial-case dispatch, the structured solve on a selectable engine
// (centralised or message-passing), and the back-mappings to the input
// instance. Factoring the pipeline out of the root package lets the batch
// and serving layers drive it directly — with per-worker scratch reuse and
// cooperative cancellation — without an import cycle through the public
// API.
//
// Error strings keep the "maxminlp:" prefix because every error escapes
// through the public surface.
package engine

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/baseline"
	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/dist"
	"repro/internal/mmlp"
	"repro/internal/obs"
	"repro/internal/structured"
	"repro/internal/transform"
)

// Kind selects the execution engine for the structured solve.
type Kind int

// Engines.
const (
	// Central is the fast centralised engine (core.Solve).
	Central Kind = iota
	// Distributed is the honest synchronous message-passing protocol with
	// anonymous view gathering (dist.SolveDistributed).
	Distributed
	// DistributedCompact is the identifier-based record-gossip protocol
	// with polynomial message sizes (dist.SolveDistributedCompact).
	DistributedCompact
)

// String names the engine kind; the names are the wire identifiers of the
// serving layer (mmlp.EngineLocal etc.).
func (k Kind) String() string {
	switch k {
	case Central:
		return mmlp.EngineLocal
	case Distributed:
		return mmlp.EngineDist
	case DistributedCompact:
		return mmlp.EngineDistCompact
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Options configures one solve.
type Options struct {
	// Engine selects the execution engine.
	Engine Kind
	// R is the shifting parameter (≥ 2, 0 means the default 3).
	R int
	// Workers bounds the parallelism of the centralised engine
	// (0 = GOMAXPROCS). Ignored when a Scratch is supplied: scratch solving
	// is single-worker by construction.
	Workers int
	// BinIters caps the per-agent binary search (0 = 100).
	BinIters int
	// DisableSpecialCases skips the optimal ΔI=1 / ΔK=1 dispatch.
	DisableSpecialCases bool
	// SelfCheck re-verifies the lemma-level invariants of a centralised run
	// before returning.
	SelfCheck bool
}

// Status classifies a Solution.
type Status int

// Solution statuses.
const (
	// StatusApproximate: the solution satisfies the local approximation
	// guarantee ΔI(1−1/ΔK)(1+1/(R−1)) but need not be optimal.
	StatusApproximate Status = iota
	// StatusOptimal: the solution is optimal (exact solver, or a trivial
	// case dispatched to the optimal local algorithms of [17]).
	StatusOptimal
	// StatusUnbounded: the utility can be made arbitrarily large.
	StatusUnbounded
	// StatusZeroOptimum: some objective is empty, so the optimum is 0.
	StatusZeroOptimum
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusApproximate:
		return "approximate"
	case StatusOptimal:
		return "optimal"
	case StatusUnbounded:
		return "unbounded"
	case StatusZeroOptimum:
		return "zero-optimum"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of any solver in the library.
type Solution struct {
	// Status classifies the outcome; X and Utility are meaningful for
	// StatusApproximate, StatusOptimal and StatusZeroOptimum.
	Status Status
	// X is a feasible assignment (length = NumAgents).
	X []float64
	// Utility is ω(X) on the input instance.
	Utility float64
	// UpperBound, when positive, certifies optimum ≤ UpperBound. The local
	// algorithm derives it from the per-agent tree optima t_v (Lemma 2);
	// exact solvers set it to the optimum.
	UpperBound float64
}

// DistInfo reports the traffic of a distributed run.
type DistInfo struct {
	// Rounds is the number of synchronous rounds (12(R−2)+8; the final
	// round carries no messages).
	Rounds int
	// Messages and Bytes total the traffic; MaxMessageBytes is the largest
	// single message (dominated by the view-gathering phase);
	// CompressedBytes re-counts view messages at their DAG-compressed size.
	Messages, Bytes, MaxMessageBytes, CompressedBytes int
}

// Scratch is the reusable per-worker working memory of the whole pipeline:
// the canonicalization copy, the §4 transform arena (intermediate
// instances, index tables and back-map arrays), the compact-form
// conversion buffers and the centralised kernel's evaluator/float buffers.
// A warm worker therefore runs the full centralised solve with a small
// constant number of heap allocations per job (see the alloc budget
// tests). The zero value is ready; see NewScratch. Not safe for concurrent
// use.
type Scratch struct {
	core  core.Scratch
	canon mmlp.CanonScratch
	dec   canon.DecodeScratch
	pipe  transform.Scratch
	str   structured.Scratch

	// Trace is the per-request stage-timing record, reset by every entry
	// point (SolveScratch, SolveCached, SolveCanonBytes, ...) and filled
	// as the pipeline runs. A fixed array inside the scratch, it adds no
	// allocations to the solve path; callers that want it must copy it
	// out before the worker reuses the scratch.
	Trace obs.Trace
}

// NewScratch returns an empty scratch for one worker.
func NewScratch() *Scratch { return &Scratch{} }

// Solve runs the full pipeline on one instance. The DistInfo result is nil
// for the centralised engine and populated for the message-passing engines
// (zero-valued when a trivial case was dispatched before any protocol ran).
//
// ctx is checked between pipeline stages and, on the centralised engine,
// between the per-agent t_u computations inside the kernel: a solve whose
// context expires returns ctx's error without starting the next stage (or
// the next agent). The message-passing engines are not preempted mid-run.
func Solve(ctx context.Context, in *mmlp.Instance, o Options) (*Solution, *DistInfo, error) {
	return SolveScratch(ctx, in, o, nil)
}

// SolveScratch is Solve reusing sc's buffers for the transform stages and
// the centralised kernel (sc may be nil: the transform stages then use a
// private arena and the centralised kernel runs its parallel allocating
// path; the message-passing engines allocate their node state regardless).
// The returned solution owns its memory — it never aliases sc.
func SolveScratch(ctx context.Context, in *mmlp.Instance, o Options, sc *Scratch) (*Solution, *DistInfo, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	coreScratch := sc != nil
	if sc == nil {
		sc = NewScratch()
	}
	sc.Trace.Reset()
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	// Canonicalize term and row order so the output is a pure function of
	// the instance's mathematical content: floating-point summation makes
	// the kernels order-sensitive, and the result cache keys on exactly
	// these equivalence classes — without this, a permuted duplicate of a
	// cached instance could hit an entry whose bits a cold solve of the
	// permutation would not reproduce.
	tc := time.Now()
	cin := in.CanonicalInto(&sc.canon)
	sc.Trace.Add(obs.StageCanonicalize, time.Since(tc))
	return solveCanonical(ctx, cin, o, sc, coreScratch, nil)
}

// solveCanonical runs the pipeline stages on a validated instance already
// in canonical form. The single canonicalization per request happens at
// the entry points (SolveScratch, SolveCached) — never twice. coreScratch
// selects the single-worker scratch kernel; the transform stages always
// build into sc's arena.
//
// rec, when non-nil, captures the kernel t-vector for the delta-solve
// record the cache-miss paths store alongside the solution (a private
// copy; the trivial and preprocess-shortcut paths leave rec.T nil — they
// have no kernel to splice from). The uncached entry points pass nil, so
// the warm SolveScratch path allocates nothing for it.
func solveCanonical(ctx context.Context, in *mmlp.Instance, o Options, sc *Scratch, coreScratch bool, rec *delta.Record) (*Solution, *DistInfo, error) {
	var info *DistInfo
	if o.Engine != Central {
		info = &DistInfo{}
	}
	if o.R == 0 {
		o.R = 3
	}
	if o.R < 2 {
		return nil, nil, fmt.Errorf("maxminlp: R must be ≥ 2, got %d", o.R)
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	// Stage windows for the request trace: transform covers preprocessing
	// through the structured-form conversion, kernel the engine proper,
	// back-map the lift/strictify/utility tail. Early returns close the
	// transform window so partial pipelines still attribute their cost.
	tt := time.Now()
	pp := transform.PreprocessScratch(in, &sc.pipe)
	switch pp.Outcome {
	case transform.ZeroOptimum:
		sc.Trace.Add(obs.StageTransform, time.Since(tt))
		return &Solution{Status: StatusZeroOptimum, X: pp.Lift(nil), Utility: 0, UpperBound: 0}, info, nil
	case transform.UnboundedOptimum:
		sc.Trace.Add(obs.StageTransform, time.Since(tt))
		return &Solution{Status: StatusUnbounded}, info, nil
	}
	red := pp.Out

	// Trivial cases: the optimal local algorithms of [17]. The dispatched
	// baseline solve is the kernel of these requests.
	if !o.DisableSpecialCases {
		if red.DegreeI() <= 1 {
			sc.Trace.Add(obs.StageTransform, time.Since(tt))
			tk := time.Now()
			x := in.Strictify(pp.Lift(baseline.SolveSingletonConstraints(red)))
			sc.Trace.Add(obs.StageKernel, time.Since(tk))
			return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: in.Utility(x)}, info, nil
		}
		if red.DegreeK() <= 1 {
			sc.Trace.Add(obs.StageTransform, time.Since(tt))
			tk := time.Now()
			x := in.Strictify(pp.Lift(baseline.SolveSingletonObjectives(red)))
			sc.Trace.Add(obs.StageKernel, time.Since(tk))
			return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: in.Utility(x)}, info, nil
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	pipe, err := transform.StructureScratch(red, &sc.pipe)
	if err != nil {
		return nil, nil, err
	}
	s, err := structured.FromMMLPScratch(pipe.Final(), &sc.str)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	sc.Trace.Add(obs.StageTransform, time.Since(tt))

	tk := time.Now()
	copts := core.Options{R: o.R, Workers: o.Workers, BinIters: o.BinIters}
	var xs []float64
	var ub float64
	switch o.Engine {
	case Central:
		var tr *core.Trace
		if coreScratch {
			tr, err = core.SolveScratchCtx(ctx, s, copts, &sc.core)
		} else {
			tr, err = core.SolveCtx(ctx, s, copts)
		}
		if err != nil {
			return nil, nil, err
		}
		if o.SelfCheck {
			if err := core.VerifyTrace(s, tr, 1e-9); err != nil {
				return nil, nil, fmt.Errorf("maxminlp: self-check failed: %w", err)
			}
		}
		xs, ub = tr.X, tr.UpperBound
		if rec != nil {
			// The scratch kernel's T aliases sc's buffers; the record outlives
			// this request, so it takes a copy.
			rec.T = append([]float64(nil), tr.T...)
		}
	case Distributed, DistributedCompact:
		solver := dist.SolveDistributed
		if o.Engine == DistributedCompact {
			solver = dist.SolveDistributedCompact
		}
		res, err := solver(s, copts)
		if err != nil {
			return nil, nil, err
		}
		info.Rounds = res.Rounds
		info.Messages = res.Stats.Messages
		info.Bytes = res.Stats.Bytes
		info.MaxMessageBytes = res.Stats.MaxMessageBytes
		info.CompressedBytes = res.Stats.CompressedBytes
		ub = math.Inf(1)
		for _, t := range res.T {
			if t < ub {
				ub = t
			}
		}
		xs = res.X
		if rec != nil {
			// The dist protocols' T is bit-identical to the centralised
			// kernel's (internal/dist), so the record splices for any engine.
			rec.T = append([]float64(nil), res.T...)
		}
	default:
		return nil, nil, fmt.Errorf("maxminlp: unknown engine %v", o.Engine)
	}
	sc.Trace.Add(obs.StageKernel, time.Since(tk))

	// The centralised kernel checks ctx in its t_u loop, but the
	// message-passing engines run to completion, so a deadline that
	// expired while one ran is detected here: better a late error than
	// reporting success long past the job's deadline.
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}

	tb := time.Now()
	x := in.Strictify(pp.Lift(pipe.Back(xs)))
	sol := &Solution{
		Status:     StatusApproximate,
		X:          x,
		Utility:    in.Utility(x),
		UpperBound: ub,
	}
	sc.Trace.Add(obs.StageBackMap, time.Since(tb))
	return sol, info, nil
}
