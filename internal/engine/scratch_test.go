package engine_test

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// scratchConformanceCases extends the cache conformance cases with the
// remaining preprocess outcome (unbounded) and a boosted-lift shape, so
// the scratch suite covers every way a solve can leave the pipeline.
func scratchConformanceCases() map[string]struct {
	in   *mmlp.Instance
	opts engine.Options
} {
	cases := conformanceCases()
	unbounded := mmlp.New(1)
	unbounded.AddObjective(0, 1)
	cases["unbounded"] = struct {
		in   *mmlp.Instance
		opts engine.Options
	}{unbounded, engine.Options{R: 3}}
	boosted := mmlp.New(2)
	boosted.AddConstraint(0, 2)
	boosted.AddObjective(0, 1)
	boosted.AddObjective(0, 1, 1, 4)
	cases["boosted-lift"] = struct {
		in   *mmlp.Instance
		opts engine.Options
	}{boosted, engine.Options{R: 3}}
	cases["trivial-di1"] = struct {
		in   *mmlp.Instance
		opts engine.Options
	}{gen.Random(gen.RandomConfig{Agents: 6, MaxDegI: 1, MaxDegK: 2}, 4), engine.Options{R: 3}}
	return cases
}

// TestSolveScratchConformance reuses ONE scratch across every case — three
// passes, so each case runs against arena state left behind by every other
// case — and demands bit-identical solutions to the fresh Solve path.
func TestSolveScratchConformance(t *testing.T) {
	ctx := context.Background()
	cases := scratchConformanceCases()
	sc := engine.NewScratch()
	for pass := 0; pass < 3; pass++ {
		for name, c := range cases {
			want, wantInfo, err := engine.Solve(ctx, c.in, c.opts)
			if err != nil {
				if _, _, err2 := engine.SolveScratch(ctx, c.in, c.opts, sc); err2 == nil || err2.Error() != err.Error() {
					t.Fatalf("pass %d %s: scratch err %v, want %v", pass, name, err2, err)
				}
				continue
			}
			got, gotInfo, err := engine.SolveScratch(ctx, c.in, c.opts, sc)
			if err != nil {
				t.Fatalf("pass %d %s: %v", pass, name, err)
			}
			equalSolutions(t, name, got, want)
			if (wantInfo == nil) != (gotInfo == nil) || (wantInfo != nil && *gotInfo != *wantInfo) {
				t.Fatalf("pass %d %s: DistInfo %+v, want %+v", pass, name, gotInfo, wantInfo)
			}
		}
	}
}

// TestSolveScratchResultsDoNotAlias: a solution handed out must be
// untouched by later solves on the same scratch.
func TestSolveScratchResultsDoNotAlias(t *testing.T) {
	ctx := context.Background()
	sc := engine.NewScratch()
	a := gen.Random(gen.RandomConfig{Agents: 22, MaxDegI: 3, MaxDegK: 3, ExtraCons: 6, ExtraObjs: 3}, 5)
	b := gen.Random(gen.RandomConfig{Agents: 9, MaxDegI: 4, MaxDegK: 2, ExtraCons: 2, ExtraObjs: 1}, 6)
	opts := engine.Options{R: 3, DisableSpecialCases: true}

	first, _, err := engine.SolveScratch(ctx, a, opts, sc)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]float64(nil), first.X...)
	for i := 0; i < 5; i++ {
		if _, _, err := engine.SolveScratch(ctx, b, opts, sc); err != nil {
			t.Fatal(err)
		}
	}
	for v := range snapshot {
		if first.X[v] != snapshot[v] {
			t.Fatalf("X[%d] changed from %v to %v: result aliases scratch memory", v, snapshot[v], first.X[v])
		}
	}
	again, _, err := engine.SolveScratch(ctx, a, opts, sc)
	if err != nil {
		t.Fatal(err)
	}
	equalSolutions(t, "resolve-after-interleave", again, first)
}

// TestSolveScratchNonCanonicalInput: the scratch canonicalization copy must
// leave the caller's instance untouched and still match the fresh path.
func TestSolveScratchNonCanonicalInput(t *testing.T) {
	ctx := context.Background()
	in := gen.Random(gen.RandomConfig{Agents: 20, MaxDegI: 3, MaxDegK: 3, ExtraCons: 6, ExtraObjs: 3}, 9)
	perm := reversedCopy(in)
	permCopy := reversedCopy(in)
	opts := engine.Options{R: 3, DisableSpecialCases: true}

	want, _, err := engine.Solve(ctx, perm, opts)
	if err != nil {
		t.Fatal(err)
	}
	sc := engine.NewScratch()
	got, _, err := engine.SolveScratch(ctx, perm, opts, sc)
	if err != nil {
		t.Fatal(err)
	}
	equalSolutions(t, "non-canonical", got, want)
	for i := range permCopy.Cons {
		for j := range permCopy.Cons[i].Terms {
			if perm.Cons[i].Terms[j] != permCopy.Cons[i].Terms[j] {
				t.Fatal("solve mutated the caller's instance")
			}
		}
	}
}
