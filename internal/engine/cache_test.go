package engine_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// conformanceCases covers every pipeline outcome a cache entry can hold:
// the general approximate path on all three engines, both trivial-case
// dispatches, and a zero-optimum instance.
func conformanceCases() map[string]struct {
	in   *mmlp.Instance
	opts engine.Options
} {
	zero := mmlp.New(2)
	zero.AddConstraint(0, 1, 1, 1)
	zero.AddObjective(0, 1)
	zero.AddObjective() // empty objective: optimum 0
	return map[string]struct {
		in   *mmlp.Instance
		opts engine.Options
	}{
		"central":      {gen.Random(gen.RandomConfig{Agents: 18, MaxDegI: 3, MaxDegK: 3, ExtraCons: 5, ExtraObjs: 2}, 1), engine.Options{R: 3, DisableSpecialCases: true}},
		"central-r4":   {gen.Random(gen.RandomConfig{Agents: 14, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 2), engine.Options{R: 4, DisableSpecialCases: true}},
		"dist":         {gen.TriNecklace(4), engine.Options{Engine: engine.Distributed, R: 3}},
		"dist-compact": {gen.TriNecklace(4), engine.Options{Engine: engine.DistributedCompact, R: 3}},
		"trivial-dk1":  {gen.Random(gen.RandomConfig{Agents: 6, MaxDegI: 2, MaxDegK: 1}, 3), engine.Options{R: 3}},
		"zero-optimum": {zero, engine.Options{R: 3}},
	}
}

// equalSolutions demands bitwise equality of every field.
func equalSolutions(t *testing.T, name string, got, want *engine.Solution) {
	t.Helper()
	if got.Status != want.Status || got.Utility != want.Utility || got.UpperBound != want.UpperBound {
		t.Fatalf("%s: got (%v, %v, %v), want (%v, %v, %v)",
			name, got.Status, got.Utility, got.UpperBound, want.Status, want.Utility, want.UpperBound)
	}
	if len(got.X) != len(want.X) {
		t.Fatalf("%s: len(X) = %d, want %d", name, len(got.X), len(want.X))
	}
	for v := range want.X {
		if got.X[v] != want.X[v] {
			t.Fatalf("%s: X[%d] = %v, want %v", name, v, got.X[v], want.X[v])
		}
	}
}

// TestSolveCachedConformance is the acceptance-criteria check: for every
// case, the cache-miss result and the subsequent cache-hit result are both
// bit-identical to a cold Solve, including the DistInfo of the
// message-passing engines.
func TestSolveCachedConformance(t *testing.T) {
	ctx := context.Background()
	ca := engine.NewCache(engine.CacheOptions{})
	for name, c := range conformanceCases() {
		cold, coldInfo, err := engine.Solve(ctx, c.in, c.opts)
		if err != nil {
			t.Fatalf("%s: cold solve: %v", name, err)
		}
		miss, missInfo, cached, err := engine.SolveCached(ctx, c.in, c.opts, engine.NewScratch(), ca)
		if err != nil {
			t.Fatalf("%s: miss solve: %v", name, err)
		}
		if cached {
			t.Fatalf("%s: first solve reported a cache hit", name)
		}
		hit, hitInfo, cached, err := engine.SolveCached(ctx, c.in, c.opts, engine.NewScratch(), ca)
		if err != nil {
			t.Fatalf("%s: hit solve: %v", name, err)
		}
		if !cached {
			t.Fatalf("%s: second solve missed the cache", name)
		}
		equalSolutions(t, name+"/miss", miss, cold)
		equalSolutions(t, name+"/hit", hit, cold)
		if (coldInfo == nil) != (hitInfo == nil) || (coldInfo != nil && *hitInfo != *coldInfo) {
			t.Fatalf("%s: hit DistInfo %+v, want %+v", name, hitInfo, coldInfo)
		}
		if missInfo != nil && *missInfo != *coldInfo {
			t.Fatalf("%s: miss DistInfo %+v, want %+v", name, missInfo, coldInfo)
		}
	}
	st := ca.Stats()
	if st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cache stats = %+v", st)
	}
}

// reversedCopy flips the row order of both sections and the term order
// within every row — the harshest semantics-preserving permutation for
// floating-point summation order.
func reversedCopy(in *mmlp.Instance) *mmlp.Instance {
	out := in.Clone()
	for l, r := 0, len(out.Cons)-1; l < r; l, r = l+1, r-1 {
		out.Cons[l], out.Cons[r] = out.Cons[r], out.Cons[l]
	}
	for l, r := 0, len(out.Objs)-1; l < r; l, r = l+1, r-1 {
		out.Objs[l], out.Objs[r] = out.Objs[r], out.Objs[l]
	}
	for i := range out.Cons {
		ts := out.Cons[i].Terms
		for l, r := 0, len(ts)-1; l < r; l, r = l+1, r-1 {
			ts[l], ts[r] = ts[r], ts[l]
		}
	}
	for k := range out.Objs {
		ts := out.Objs[k].Terms
		for l, r := 0, len(ts)-1; l < r; l, r = l+1, r-1 {
			ts[l], ts[r] = ts[r], ts[l]
		}
	}
	return out
}

// TestSolveCachedPermutationConformance: the cache key is invariant under
// term/row permutation, so the solver must be too — a permuted duplicate
// hits the original's entry, and that entry's bits must be exactly what a
// cold solve of the permutation produces. The pipeline guarantees this by
// canonicalizing order at entry.
func TestSolveCachedPermutationConformance(t *testing.T) {
	ctx := context.Background()
	// These seeds are known to produce different output bits under term/row
	// reversal when the pipeline does not canonicalize (13 of the first 300
	// diverge) — without mmlp.Canonical at pipeline entry, every one fails.
	for _, seed := range []int64{1, 42, 43, 45, 49, 83, 110, 116, 123, 158} {
		in := gen.Random(gen.RandomConfig{Agents: 40, MaxDegI: 4, MaxDegK: 4, ExtraCons: 12, ExtraObjs: 8}, seed)
		perm := reversedCopy(in)
		opts := engine.Options{R: 4, DisableSpecialCases: true}

		cold, _, err := engine.Solve(ctx, in, opts)
		if err != nil {
			t.Fatal(err)
		}
		coldPerm, _, err := engine.Solve(ctx, perm, opts)
		if err != nil {
			t.Fatal(err)
		}
		equalSolutions(t, "cold-vs-cold-permuted", coldPerm, cold)

		ca := engine.NewCache(engine.CacheOptions{})
		if _, _, _, err := engine.SolveCached(ctx, in, opts, nil, ca); err != nil {
			t.Fatal(err)
		}
		hit, _, cached, err := engine.SolveCached(ctx, perm, opts, nil, ca)
		if err != nil {
			t.Fatal(err)
		}
		if !cached {
			t.Fatalf("seed %d: permuted duplicate missed the cache", seed)
		}
		equalSolutions(t, "hit-vs-cold-permuted", hit, coldPerm)
	}
}

// TestSolveCachedIsolation: a hit hands out a private copy, so a caller
// mutating its X cannot poison later hits.
func TestSolveCachedIsolation(t *testing.T) {
	ctx := context.Background()
	ca := engine.NewCache(engine.CacheOptions{})
	in := gen.Random(gen.RandomConfig{Agents: 12, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 7)
	opts := engine.Options{R: 3, DisableSpecialCases: true}

	first, _, _, err := engine.SolveCached(ctx, in, opts, nil, ca)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]float64(nil), first.X...)
	for v := range first.X {
		first.X[v] = -1 // caller scribbles on its copy
	}
	second, _, cached, err := engine.SolveCached(ctx, in, opts, nil, ca)
	if err != nil || !cached {
		t.Fatalf("second solve: cached=%v err=%v", cached, err)
	}
	for v := range want {
		if second.X[v] != want[v] {
			t.Fatalf("X[%d] = %v, want %v: cached entry was mutated", v, second.X[v], want[v])
		}
	}
}

// TestSolveCachedKeySeparation: distinct options on one instance occupy
// distinct cache lines.
func TestSolveCachedKeySeparation(t *testing.T) {
	ctx := context.Background()
	ca := engine.NewCache(engine.CacheOptions{})
	in := gen.Random(gen.RandomConfig{Agents: 12, MaxDegI: 3, MaxDegK: 3, ExtraCons: 4, ExtraObjs: 2}, 8)

	r3, _, _, err := engine.SolveCached(ctx, in, engine.Options{R: 3, DisableSpecialCases: true}, nil, ca)
	if err != nil {
		t.Fatal(err)
	}
	r5, _, cached, err := engine.SolveCached(ctx, in, engine.Options{R: 5, DisableSpecialCases: true}, nil, ca)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("R=5 solve hit the R=3 entry")
	}
	if r3.UpperBound == r5.UpperBound && r3.Utility == r5.Utility {
		t.Log("R=3 and R=5 agree on this instance (allowed, not asserted)")
	}
	if st := ca.Stats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

// TestSolveCachedErrorsNotCached: failed solves leave the key cold and are
// re-attempted.
func TestSolveCachedErrorsNotCached(t *testing.T) {
	ctx := context.Background()
	ca := engine.NewCache(engine.CacheOptions{})
	bad := mmlp.New(1)
	bad.AddConstraint(0, -1) // negative coefficient: validation fails

	for i := 0; i < 2; i++ {
		if _, _, _, err := engine.SolveCached(ctx, bad, engine.Options{R: 3}, nil, ca); !errors.Is(err, mmlp.ErrInvalid) {
			t.Fatalf("attempt %d: err = %v, want ErrInvalid", i, err)
		}
	}
	if st := ca.Stats(); st.Misses != 2 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want two misses and no entries", st)
	}
}

// TestSolveCachedNil: a nil cache is a pass-through to SolveScratch.
func TestSolveCachedNil(t *testing.T) {
	in := gen.TriNecklace(3)
	sol, _, cached, err := engine.SolveCached(context.Background(), in, engine.Options{R: 3}, nil, nil)
	if err != nil || cached || sol == nil {
		t.Fatalf("nil-cache solve: sol=%v cached=%v err=%v", sol, cached, err)
	}
}
