package engine_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// TestCanonEngineRangeAgrees pins the cross-package constant: the wire
// decoder's engine bound must cover exactly the engine kinds that exist.
func TestCanonEngineRangeAgrees(t *testing.T) {
	if canon.MaxEngine != int(engine.DistributedCompact) {
		t.Fatalf("canon.MaxEngine = %d, last engine kind = %d", canon.MaxEngine, int(engine.DistributedCompact))
	}
}

func wireInstance(seed int64) *mmlp.Instance {
	rng := rand.New(rand.NewSource(seed))
	return gen.Random(gen.RandomConfig{
		Agents:    10 + rng.Intn(14),
		MaxDegI:   2 + rng.Intn(2),
		MaxDegK:   2 + rng.Intn(2),
		ExtraCons: rng.Intn(6),
		ExtraObjs: rng.Intn(3),
	}, seed)
}

// shuffled returns a semantics-preserving permutation of in: rows and
// in-row terms reordered.
func shuffled(in *mmlp.Instance, seed int64) *mmlp.Instance {
	rng := rand.New(rand.NewSource(seed))
	out := in.Clone()
	rng.Shuffle(len(out.Cons), func(a, b int) { out.Cons[a], out.Cons[b] = out.Cons[b], out.Cons[a] })
	rng.Shuffle(len(out.Objs), func(a, b int) { out.Objs[a], out.Objs[b] = out.Objs[b], out.Objs[a] })
	for _, c := range out.Cons {
		ts := c.Terms
		rng.Shuffle(len(ts), func(a, b int) { ts[a], ts[b] = ts[b], ts[a] })
	}
	for _, o := range out.Objs {
		ts := o.Terms
		rng.Shuffle(len(ts), func(a, b int) { ts[a], ts[b] = ts[b], ts[a] })
	}
	return out
}

func mustEqualResults(t *testing.T, tag string, s1, s2 *engine.Solution, d1, d2 *engine.DistInfo) {
	t.Helper()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("%s: solutions differ:\n json %+v\ncanon %+v", tag, s1, s2)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatalf("%s: dist info differs:\n json %+v\ncanon %+v", tag, d1, d2)
	}
}

// TestSolveCanonBytesBitIdentity: for every engine, solving a canon
// payload — encoded from a shuffled spelling of the instance — returns
// bit-identical results to the JSON path solving the original.
func TestSolveCanonBytesBitIdentity(t *testing.T) {
	ctx := context.Background()
	for _, kind := range []engine.Kind{engine.Central, engine.Distributed, engine.DistributedCompact} {
		for seed := int64(1); seed <= 6; seed++ {
			in := wireInstance(seed)
			o := engine.Options{Engine: kind, R: 3}
			jsol, jinfo, err := engine.Solve(ctx, in, o)
			if err != nil {
				t.Fatalf("%v seed %d: json path: %v", kind, seed, err)
			}
			payload := engine.EncodeCanon(shuffled(in, seed*7), o)
			csol, cinfo, cached, err := engine.SolveCanonBytes(ctx, payload, engine.NewScratch(), nil)
			if err != nil {
				t.Fatalf("%v seed %d: canon path: %v", kind, seed, err)
			}
			if cached {
				t.Fatalf("%v seed %d: cacheless canon solve reported cached", kind, seed)
			}
			mustEqualResults(t, kind.String(), jsol, csol, jinfo, cinfo)
		}
	}
}

// TestSolveCanonBytesCrossEncodingCache: the two encodings share one cache
// line in both directions — a JSON solve warms the canon request and vice
// versa — because both key on the same canonical hash.
func TestSolveCanonBytesCrossEncodingCache(t *testing.T) {
	ctx := context.Background()
	in := wireInstance(3)
	o := engine.Options{Engine: engine.Distributed, R: 3}
	payload := engine.EncodeCanon(shuffled(in, 99), o)

	// JSON first, canon second.
	ca := engine.NewCache(engine.CacheOptions{MaxBytes: 1 << 20})
	jsol, jinfo, cached, err := engine.SolveCached(ctx, in, o, nil, ca)
	if err != nil || cached {
		t.Fatalf("json solve: cached=%v err=%v", cached, err)
	}
	csol, cinfo, cached, err := engine.SolveCanonBytes(ctx, payload, nil, ca)
	if err != nil {
		t.Fatalf("canon solve: %v", err)
	}
	if !cached {
		t.Fatal("canon request missed the cache the JSON solve warmed")
	}
	mustEqualResults(t, "json→canon", jsol, csol, jinfo, cinfo)

	// Canon first, JSON second.
	ca = engine.NewCache(engine.CacheOptions{MaxBytes: 1 << 20})
	csol, cinfo, cached, err = engine.SolveCanonBytes(ctx, payload, nil, ca)
	if err != nil || cached {
		t.Fatalf("canon solve: cached=%v err=%v", cached, err)
	}
	jsol, jinfo, cached, err = engine.SolveCached(ctx, in, o, nil, ca)
	if err != nil {
		t.Fatalf("json solve: %v", err)
	}
	if !cached {
		t.Fatal("JSON request missed the cache the canon solve warmed")
	}
	mustEqualResults(t, "canon→json", jsol, csol, jinfo, cinfo)
}

// TestSolveCanonBytesInvalid: malformed payloads and valid payloads of
// invalid instances both surface as mmlp.ErrInvalid, and neither pollutes
// the cache.
func TestSolveCanonBytesInvalid(t *testing.T) {
	ctx := context.Background()
	ca := engine.NewCache(engine.CacheOptions{MaxBytes: 1 << 20})

	if _, _, _, err := engine.SolveCanonBytes(ctx, []byte("not canon at all"), nil, ca); !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("malformed payload: got %v, want mmlp.ErrInvalid", err)
	}

	// Structurally canonical payload of a semantically invalid instance
	// (negative coefficient): decodes fine, fails Validate.
	bad := mmlp.New(2)
	bad.AddConstraint(0, -1.0)
	bad.AddObjective(1, 1.0)
	payload := engine.EncodeCanon(bad, engine.Options{})
	if _, _, _, err := engine.SolveCanonBytes(ctx, payload, nil, ca); !errors.Is(err, mmlp.ErrInvalid) {
		t.Fatalf("invalid instance: got %v, want mmlp.ErrInvalid", err)
	}
	if st := ca.Stats(); st.Entries != 0 {
		t.Fatalf("failed canon solves were cached: %d entries", st.Entries)
	}
}

// TestWarmCanonSolveAllocBudget pins the canon path's steady-state
// allocations on a warm scratch with caching disabled (every run decodes
// and solves). The budget matches the JSON path's: the decode arena, like
// the canonicalization copy, is reused.
func TestWarmCanonSolveAllocBudget(t *testing.T) {
	ctx := context.Background()
	in := gen.Random(gen.RandomConfig{Agents: 24, MaxDegI: 3, MaxDegK: 3, ExtraCons: 6, ExtraObjs: 3}, 1)
	payload := engine.EncodeCanon(in, engine.Options{R: 3, DisableSpecialCases: true})
	sc := engine.NewScratch()
	solve := func() {
		if _, _, _, err := engine.SolveCanonBytes(ctx, payload, sc, nil); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm every arena
	if avg := testing.AllocsPerRun(100, solve); avg > warmSolveAllocBudget {
		t.Fatalf("warm canon solve allocates %.1f objects, budget %d", avg, warmSolveAllocBudget)
	}
}
