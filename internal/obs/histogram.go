package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// The histogram buckets are log-spaced with subBits sub-buckets per
// octave: values 0..3ns land in their own buckets, and every later octave
// [2^p, 2^(p+1)) is split into 4 equal sub-ranges. That caps the relative
// quantile error at 25% while keeping the bin array small enough to embed
// (252 * 8 bytes) and — crucially — making the bucket layout a fixed,
// versionless contract: two processes always agree on bucket i, so
// histograms merge by adding bins. The top octave (p=63) covers all
// representable int64 durations (~292 years), so no overflow bucket is
// needed.
const (
	subBits = 2
	sub     = 1 << subBits // sub-buckets per octave

	// NumBuckets = 4 exact buckets for 0..3ns + 62 octaves * 4.
	NumBuckets = sub + (63-subBits)*sub
)

// bucketOf maps a nanosecond value to its bucket index. Negative values
// clamp to bucket 0.
func bucketOf(ns int64) int {
	if ns <= 0 {
		return 0
	}
	u := uint64(ns)
	if u < sub {
		return int(u)
	}
	p := bits.Len64(u) - 1 // top set bit; p >= subBits here
	return sub + (p-subBits)*sub + int((u>>(uint(p)-subBits))&(sub-1))
}

// UpperBoundNS returns the largest nanosecond value that lands in bucket
// i (inclusive). Quantile estimates report this bound, so they err high
// by at most one sub-bucket width (≤25% relative).
func UpperBoundNS(i int) int64 {
	if i < 0 {
		return 0
	}
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	if i < sub {
		return int64(i)
	}
	g := i - sub
	p := uint(g/sub) + subBits
	m := uint64(g%sub) + 1
	ub := uint64(1)<<p + m<<(p-subBits) - 1
	if ub > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(ub)
}

// Histogram is a fixed-layout latency histogram with lock-free atomic
// bins. Observe is wait-free and allocation-free; Snapshot produces the
// sparse wire form. The zero value is ready to use.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64 // nanoseconds
	max   atomic.Int64 // nanoseconds
	bins  [NumBuckets]atomic.Int64
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveNS(int64(d))
}

// ObserveNS records one duration given in nanoseconds.
func (h *Histogram) ObserveNS(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.bins[bucketOf(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Snapshot returns the sparse wire form of the histogram's current state.
// Bins are read without a global lock, so under concurrent Observe the
// snapshot is a consistent-enough view (each bin individually atomic);
// Count is recomputed as the bin sum so count and bins always agree.
func (h *Histogram) Snapshot() *HistRaw {
	raw := &HistRaw{
		SumNS: h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	for i := range h.bins {
		if n := h.bins[i].Load(); n > 0 {
			raw.Bucket = append(raw.Bucket, i)
			raw.N = append(raw.N, n)
			raw.Count += n
		}
	}
	return raw
}

// HistRaw is the sparse JSON/merge form of a Histogram: parallel arrays
// of bucket indices (ascending) and their counts. Shards ship HistRaw in
// /statsz?raw=1; the router merges them bucket-wise, which is what makes
// fleet quantiles true quantiles rather than averages of per-shard ones.
type HistRaw struct {
	Count  int64   `json:"count"`
	SumNS  int64   `json:"sum_ns"`
	MaxNS  int64   `json:"max_ns"`
	Bucket []int   `json:"bucket,omitempty"`
	N      []int64 `json:"n,omitempty"`
}

// dense expands the sparse form, defensively skipping malformed entries
// (out-of-range indices, mismatched array lengths, non-positive counts):
// HistRaw arrives as JSON from other processes and must not panic the
// aggregator.
func (r *HistRaw) dense() [NumBuckets]int64 {
	var d [NumBuckets]int64
	if r == nil {
		return d
	}
	for i, b := range r.Bucket {
		if i >= len(r.N) {
			break
		}
		if b < 0 || b >= NumBuckets || r.N[i] <= 0 {
			continue
		}
		d[b] += r.N[i]
	}
	return d
}

// Merge adds other into r bucket-wise. Sum and count add, max takes the
// larger; r never aliases other's slices afterwards.
func (r *HistRaw) Merge(other *HistRaw) {
	if other == nil {
		return
	}
	d := r.dense()
	od := other.dense()
	var total int64
	for i := range d {
		d[i] += od[i]
		total += d[i]
	}
	r.Bucket = r.Bucket[:0]
	r.N = r.N[:0]
	for i, n := range d {
		if n > 0 {
			r.Bucket = append(r.Bucket, i)
			r.N = append(r.N, n)
		}
	}
	r.Count = total
	r.SumNS += other.SumNS
	if other.MaxNS > r.MaxNS {
		r.MaxNS = other.MaxNS
	}
}

// QuantileNS estimates the q-quantile (0 ≤ q ≤ 1) by nearest rank over
// the bucket counts, reporting the holding bucket's upper bound — the
// same convention as the per-process sampled quantiles it replaces at the
// fleet level. Returns 0 on an empty histogram.
func (r *HistRaw) QuantileNS(q float64) int64 {
	if r == nil {
		return 0
	}
	d := r.dense()
	var total int64
	for _, n := range d {
		total += n
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total-1))
	var cum int64
	for i, n := range d {
		cum += n
		if cum > rank {
			return UpperBoundNS(i)
		}
	}
	return UpperBoundNS(NumBuckets - 1)
}
