package obs

import (
	"context"
	"testing"
	"time"
)

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.Reset()
	tr.Add(StageKernel, time.Millisecond)
	tr.Set(StageEncode, 5)
	if got := tr.NS(StageKernel); got != 0 {
		t.Fatalf("nil trace NS = %d", got)
	}
}

func TestTraceRecordAndRender(t *testing.T) {
	var tr Trace
	tr.Add(StageKernel, 2*time.Millisecond)
	tr.Add(StageKernel, time.Millisecond) // spans accumulate
	tr.Set(StageQueueWait, int64(500*time.Microsecond))
	tr.Add(StageTransform, -time.Second) // negative spans ignored
	tr.Add(NumStages, time.Second)       // out of range ignored

	if got := tr.NS(StageKernel); got != int64(3*time.Millisecond) {
		t.Fatalf("kernel = %d", got)
	}
	m := tr.MSMap()
	if len(m) != 2 || m["kernel"] != 3 || m["queue_wait"] != 0.5 {
		t.Fatalf("MSMap = %v", m)
	}
	cp := tr // value copy is independent
	cp.Reset()
	if tr.NS(StageKernel) == 0 {
		t.Fatal("reset of copy mutated original")
	}

	for s := Stage(0); s < NumStages; s++ {
		if s.String() == "" || s.String() == "unknown" {
			t.Fatalf("stage %d unnamed", s)
		}
	}
	if NumStages.String() != "unknown" {
		t.Fatal("out-of-range stage name")
	}
}

func TestTraceIDContext(t *testing.T) {
	if got := TraceID(context.Background()); got != "" {
		t.Fatalf("empty ctx trace id = %q", got)
	}
	ctx := WithTraceID(context.Background(), "abc123")
	if got := TraceID(ctx); got != "abc123" {
		t.Fatalf("trace id = %q", got)
	}
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || a == b {
		t.Fatalf("trace ids %q, %q", a, b)
	}
}
