package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// Buckets must tile the int64 range: every value lands in exactly one
// bucket, bucket indices are monotone in the value, and each bucket's
// upper bound actually belongs to it.
func TestBucketLayout(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Fatalf("bucketOf(0) = %d", got)
	}
	if got := bucketOf(-5); got != 0 {
		t.Fatalf("bucketOf(-5) = %d", got)
	}
	if got := bucketOf(math.MaxInt64); got != NumBuckets-1 {
		t.Fatalf("bucketOf(MaxInt64) = %d, want %d", got, NumBuckets-1)
	}
	if got := UpperBoundNS(NumBuckets - 1); got != math.MaxInt64 {
		t.Fatalf("UpperBoundNS(last) = %d, want MaxInt64", got)
	}
	for i := 0; i < NumBuckets; i++ {
		ub := UpperBoundNS(i)
		if bucketOf(ub) != i {
			t.Fatalf("bucket %d: UpperBoundNS=%d maps to bucket %d", i, ub, bucketOf(ub))
		}
		if ub < math.MaxInt64 && bucketOf(ub+1) != i+1 {
			t.Fatalf("bucket %d: ub+1=%d maps to bucket %d, want %d", i, ub+1, bucketOf(ub+1), i+1)
		}
		if i > 0 && ub <= UpperBoundNS(i-1) {
			t.Fatalf("upper bounds not strictly increasing at %d", i)
		}
	}
	// Relative width of each octave bucket stays within the 25% design
	// error: ub/lb <= 1.5 for p >= subBits+1.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10000; trial++ {
		v := rng.Int63()
		b := bucketOf(v)
		if v > UpperBoundNS(b) {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, b, UpperBoundNS(b))
		}
		if b > 0 && v <= UpperBoundNS(b-1) {
			t.Fatalf("value %d at or below previous bucket bound", v)
		}
	}
}

// Property: merged bucket counts equal the sum of the inputs' counts,
// bucket by bucket, and count/sum/max combine exactly.
func TestMergeIsBucketwiseSum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var a, b Histogram
		for i := 0; i < 200; i++ {
			a.ObserveNS(rng.Int63n(1e9))
			b.ObserveNS(rng.Int63n(1e7))
		}
		ra, rb := a.Snapshot(), b.Snapshot()
		merged := &HistRaw{}
		merged.Merge(ra)
		merged.Merge(rb)

		da, db, dm := ra.dense(), rb.dense(), merged.dense()
		for i := range dm {
			if dm[i] != da[i]+db[i] {
				t.Fatalf("bucket %d: merged %d != %d + %d", i, dm[i], da[i], db[i])
			}
		}
		if merged.Count != ra.Count+rb.Count {
			t.Fatalf("count %d != %d + %d", merged.Count, ra.Count, rb.Count)
		}
		if merged.SumNS != ra.SumNS+rb.SumNS {
			t.Fatalf("sum mismatch")
		}
		if want := max(ra.MaxNS, rb.MaxNS); merged.MaxNS != want {
			t.Fatalf("max %d, want %d", merged.MaxNS, want)
		}
		// Merge must never alias the operands' slices: mutating the
		// merged form cannot change a shard's snapshot.
		if len(merged.Bucket) > 0 {
			merged.N[0]++
			if da2 := ra.dense(); da2 != da {
				t.Fatal("Merge aliased input slices")
			}
			merged.N[0]--
		}
	}
}

// Property: the histogram quantile is within one bucket boundary of the
// exact sample quantile — i.e. the exact value's bucket upper bound.
func TestQuantileWithinOneBucket(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 500 + rng.Intn(500)
		samples := make([]int64, n)
		for i := range samples {
			// Mix of scales so many octaves are occupied.
			samples[i] = rng.Int63n(int64(1) << (10 + uint(rng.Intn(30))))
			h.ObserveNS(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		raw := h.Snapshot()
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			exact := samples[int(q*float64(n-1))]
			got := raw.QuantileNS(q)
			// Nearest-rank over buckets returns the upper bound of the
			// bucket holding the exact sample quantile.
			if want := UpperBoundNS(bucketOf(exact)); got != want {
				t.Fatalf("q=%v: got %d, want bucket bound %d (exact %d)", q, got, want, exact)
			}
			if got < exact {
				t.Fatalf("q=%v: estimate %d below exact %d", q, got, exact)
			}
			if exact >= 4 && float64(got) > 1.5*float64(exact) {
				t.Fatalf("q=%v: estimate %d more than 1.5x exact %d", q, got, exact)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistRaw
	if got := empty.QuantileNS(0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	var nilRaw *HistRaw
	if got := nilRaw.QuantileNS(0.5); got != 0 {
		t.Fatalf("nil quantile = %d", got)
	}
	var h Histogram
	h.ObserveNS(1000)
	raw := h.Snapshot()
	if got, want := raw.QuantileNS(0.5), UpperBoundNS(bucketOf(1000)); got != want {
		t.Fatalf("single-sample quantile %d, want %d", got, want)
	}
}

// Malformed wire input (hostile or corrupted shard JSON) must be skipped,
// not panic the aggregator.
func TestMergeHostileInput(t *testing.T) {
	dst := &HistRaw{}
	dst.Merge(&HistRaw{
		Count:  5,
		Bucket: []int{-1, NumBuckets, 3, 4},
		N:      []int64{7, 7, -2, 9}, // bad index, bad index, bad count, ok
	})
	if dst.Count != 9 || len(dst.Bucket) != 1 || dst.Bucket[0] != 4 {
		t.Fatalf("hostile merge: %+v", dst)
	}
	dst.Merge(&HistRaw{Bucket: []int{1, 2, 3}, N: []int64{5}}) // truncated N
	if dst.Count != 14 {
		t.Fatalf("truncated merge: %+v", dst)
	}
}

// Concurrent Observe with concurrent Snapshot+Merge must be race-free
// (run under -race in CI) and lose no observations once writers stop.
func TestConcurrentObserveMerge(t *testing.T) {
	var h Histogram
	const writers, perWriter = 8, 2000
	stop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() { // concurrent reader: snapshots + merges while writes fly
		defer readerDone.Done()
		acc := &HistRaw{}
		for {
			select {
			case <-stop:
				return
			default:
				acc.Merge(h.Snapshot())
				acc.QuantileNS(0.99)
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(rng.Int63n(1e8)))
			}
		}(int64(w))
	}
	wg.Wait()
	close(stop)
	readerDone.Wait()

	raw := h.Snapshot()
	if raw.Count != writers*perWriter {
		t.Fatalf("count %d, want %d", raw.Count, writers*perWriter)
	}
}

func BenchmarkObsObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNS(int64(i) * 1023)
	}
	// Snapshot allocates its sparse form; keep it out of the measured
	// window so the 0 allocs/op budget pins ObserveNS alone.
	b.StopTimer()
	if h.Snapshot().Count != int64(b.N) {
		b.Fatal("lost observations")
	}
}
