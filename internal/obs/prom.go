package obs

import (
	"fmt"
	"io"
	"runtime/debug"
	"strconv"
	"sync"
)

// Prometheus text-format exposition, hand-rolled so /metrics needs no
// dependency. Conventions: counters end in _total, durations are
// histograms in seconds, HELP/TYPE appear once per family, and stage
// breakdowns share one family with a stage="" label.

// WriteHeader emits the # HELP / # TYPE pair for a metric family.
func WriteHeader(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// WriteInt emits one integer-valued series. labels is either empty or a
// comma-joined list like `stage="kernel"` (no surrounding braces).
func WriteInt(w io.Writer, name, labels string, v int64) {
	fmt.Fprintf(w, "%s%s %d\n", name, wrapLabels(labels), v)
}

// WriteFloat emits one float-valued series.
func WriteFloat(w io.Writer, name, labels string, v float64) {
	fmt.Fprintf(w, "%s%s %s\n", name, wrapLabels(labels), formatFloat(v))
}

// WriteHistogram emits the _bucket/_sum/_count series for one histogram,
// with le boundaries in seconds. Only occupied buckets get a line (plus
// the mandatory +Inf), keeping a 252-bin layout compact on the wire; the
// cumulative counts are still well-formed because le values stay
// ascending.
func WriteHistogram(w io.Writer, name, labels string, r *HistRaw) {
	d := r.dense()
	var cum int64
	for i, n := range d {
		if n == 0 {
			continue
		}
		cum += n
		le := formatFloat(float64(UpperBoundNS(i)) / 1e9)
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, joinLabels(labels), le, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, joinLabels(labels), cum)
	var sum float64
	if r != nil {
		sum = float64(r.SumNS) / 1e9
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, wrapLabels(labels), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, wrapLabels(labels), cum)
}

func wrapLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(labels string) string {
	if labels == "" {
		return ""
	}
	return labels + ","
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	buildOnce  sync.Once
	buildRev   = "unknown"
	buildDirty bool
)

// BuildInfo returns the VCS revision and dirty flag stamped into the
// binary by the Go toolchain ("unknown"/false when built without VCS
// metadata, e.g. from a source tarball or with -buildvcs=false).
func BuildInfo() (revision string, dirty bool) {
	buildOnce.Do(func() {
		info, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				if s.Value != "" {
					buildRev = s.Value
				}
			case "vcs.modified":
				buildDirty = s.Value == "true"
			}
		}
	})
	return buildRev, buildDirty
}
