// Package obs is the fleet's zero-dependency observability layer:
// per-request stage traces, mergeable log-bucketed latency histograms,
// and Prometheus text-format rendering. Everything on the hot path is
// allocation-free: a Trace is a fixed array carried inside
// engine.Scratch, and Histogram.Observe is a handful of atomic adds.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"time"
)

// Stage identifies one timed segment of the solve pipeline. The stages
// partition a request's life: front-door decode (canonicalize covers both
// JSON canonicalization and canon wire decode), key hashing, result-cache
// lookup (including coalesced-flight waits), queue wait inside the worker
// pool, the three engine phases (transform, kernel, back-map), and
// response encoding.
type Stage uint8

const (
	StageCanonicalize Stage = iota
	StageHash
	StageCacheLookup
	StageQueueWait
	StageTransform
	StageKernel
	StageBackMap
	// The three delta stages partition an incremental re-solve: planning
	// the dirty agent set (edit application, canonicalization, the BFS over
	// both topologies), re-running the kernel for exactly the dirty agents,
	// and splicing the untouched coordinates from the cached base solution
	// (the smooth/approximate/back-map tail over the merged kernel output).
	StageDeltaPlan
	StageDeltaKernel
	StageDeltaSplice
	StageEncode

	// NumStages bounds the Trace array; it is NOT a stage.
	NumStages
)

var stageNames = [NumStages]string{
	"canonicalize",
	"hash",
	"cache_lookup",
	"queue_wait",
	"transform",
	"kernel",
	"back_map",
	"delta_plan",
	"delta_kernel",
	"delta_splice",
	"encode",
}

// String returns the snake_case stage name used in trace blocks, slow-log
// attributes, and the /metrics stage label.
func (s Stage) String() string {
	if s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Trace is a fixed-size per-request stage-timing record (nanoseconds per
// stage). It is embedded by value in engine.Scratch and batch.Result so
// recording a span never allocates; copying a Trace copies the record.
// All pointer methods tolerate a nil receiver so call sites that may run
// without a scratch can record unconditionally.
type Trace struct {
	ns [NumStages]int64
}

// Reset zeroes every stage. Engine entry points call it once per request.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.ns = [NumStages]int64{}
}

// Add accumulates d into stage s (multiple spans of one stage sum).
func (t *Trace) Add(s Stage, d time.Duration) {
	if t == nil || s >= NumStages || d <= 0 {
		return
	}
	t.ns[s] += int64(d)
}

// Set overwrites stage s with ns nanoseconds.
func (t *Trace) Set(s Stage, ns int64) {
	if t == nil || s >= NumStages {
		return
	}
	t.ns[s] = ns
}

// NS returns the recorded nanoseconds for stage s.
func (t *Trace) NS(s Stage) int64 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.ns[s]
}

// MSMap renders the non-zero stages as name → milliseconds, the shape of
// the opt-in "trace" block in a ?trace=1 solve response. It allocates and
// belongs off the default path.
func (t Trace) MSMap() map[string]float64 {
	m := make(map[string]float64, NumStages)
	for s := Stage(0); s < NumStages; s++ {
		if t.ns[s] > 0 {
			m[s.String()] = float64(t.ns[s]) / 1e6
		}
	}
	return m
}

// TraceHeader is the request-ID header: the router generates an ID (or
// propagates a client-supplied one), forwards it to the owning shard, and
// echoes it on the response so one ID follows a request across the fleet.
const TraceHeader = "X-Mmlp-Trace"

// DeadlineHeader carries a request's remaining time budget, in integer
// milliseconds, across process hops: the router mints it from the client
// deadline (or its -default-deadline) and the shard turns it back into a
// context deadline, so a job that can no longer make it is abandoned at
// the earliest hop instead of computing an answer nobody is waiting for.
// The constant is already in canonical MIME form, so reading it from a
// request that doesn't carry it costs no allocation.
const DeadlineHeader = "X-Mmlp-Deadline-Ms"

type traceIDKey struct{}

// WithTraceID stashes a request ID in the context for the forward path.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceID returns the request ID stashed by WithTraceID, or "".
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// NewTraceID returns a fresh 16-hex-char request ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; a fixed ID
		// keeps the serving path alive and is still detectable in logs.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
