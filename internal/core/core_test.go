package core

import (
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/simplex"
	"repro/internal/structured"
	"repro/internal/transform"
)

// mustStructured converts an instance to the compact structured form.
func mustStructured(t *testing.T, in *mmlp.Instance) *structured.Instance {
	t.Helper()
	if err := transform.CheckStructured(in); err != nil {
		t.Fatalf("instance not structured: %v", err)
	}
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatalf("FromMMLP: %v", err)
	}
	return s
}

// twoAgents is the minimal structured instance: one objective {0,1}, one
// constraint x0 + x1 ≤ 1. Its optimum is 1.
func twoAgents() *mmlp.Instance {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1, 1, 1)
	return in
}

func TestHandComputedTwoAgentsR2(t *testing.T) {
	// Hand computation (see also §5.2): with R=2 (r=0), t_u = 2 for both
	// agents, s = 2, g+_0 = cap = 1, g−_0 = max(0, 2−1) = 1, and
	// x_v = (1+1)/(2·2) = 1/2 — which is optimal here.
	s := mustStructured(t, twoAgents())
	tr, err := Solve(s, Options{R: 2})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		if math.Abs(tr.T[u]-2) > 1e-9 {
			t.Fatalf("t[%d] = %v, want 2", u, tr.T[u])
		}
	}
	for v := 0; v < 2; v++ {
		if math.Abs(tr.X[v]-0.5) > 1e-9 {
			t.Fatalf("x[%d] = %v, want 0.5", v, tr.X[v])
		}
	}
	if math.Abs(s.Utility(tr.X)-1) > 1e-9 {
		t.Fatalf("utility = %v, want 1", s.Utility(tr.X))
	}
}

func TestHandComputedTwoAgentsR3(t *testing.T) {
	// With R=3 (r=1): t_u = 3/2, g+_0 = 1, g−_0 = 1/2, g+_1 = 1/2,
	// g−_1 = 1, x_v = (1 + 1/2 + 1/2 + 1)/6 = 1/2.
	s := mustStructured(t, twoAgents())
	tr, err := Solve(s, Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		if math.Abs(tr.T[u]-1.5) > 1e-9 {
			t.Fatalf("t[%d] = %v, want 1.5", u, tr.T[u])
		}
	}
	if math.Abs(tr.GMinus[0][0]-0.5) > 1e-9 || math.Abs(tr.GPlus[1][0]-0.5) > 1e-9 || math.Abs(tr.GMinus[1][0]-1) > 1e-9 {
		t.Fatalf("g values wrong: g-0=%v g+1=%v g-1=%v", tr.GMinus[0][0], tr.GPlus[1][0], tr.GMinus[1][0])
	}
	if math.Abs(tr.X[0]-0.5) > 1e-9 {
		t.Fatalf("x = %v, want 0.5", tr.X[0])
	}
}

func TestOptionsValidation(t *testing.T) {
	s := mustStructured(t, twoAgents())
	if _, err := Solve(s, Options{R: 1}); err == nil {
		t.Fatal("R=1 accepted")
	}
	if _, err := Solve(s, Options{R: 3, Workers: -1}); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := Solve(s, Options{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
}

// structuredOpt computes the exact optimum of a structured instance.
func structuredOpt(t *testing.T, in *mmlp.Instance) float64 {
	t.Helper()
	r := simplex.SolveMaxMin(in)
	if r.Status != simplex.Optimal {
		t.Fatalf("simplex: %v", r.Status)
	}
	return r.Value
}

// ratioBound is the structured-case guarantee 2(1−1/ΔK)(1+1/(R−1)) of §6.3.
func ratioBound(dK, R int) float64 {
	return 2 * (1 - 1/float64(dK)) * (1 + 1/float64(R-1))
}

func TestSolveFeasibilityAndRatioOnRandomStructured(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 4, MaxDegK: 4, ExtraCons: 3}, seed)
		s := mustStructured(t, in)
		opt := structuredOpt(t, in)
		for _, R := range []int{2, 3, 4} {
			tr, err := Solve(s, Options{R: R})
			if err != nil {
				t.Fatal(err)
			}
			// Lemma 11: x is feasible.
			if v := s.MaxViolation(tr.X); v > 1e-9 {
				t.Fatalf("seed %d R %d: violation %v", seed, R, v)
			}
			// Lemma 2: every t_u (and hence the upper bound) dominates opt.
			if tr.UpperBound < opt-1e-7 {
				t.Fatalf("seed %d R %d: upper bound %v < opt %v", seed, R, tr.UpperBound, opt)
			}
			// Lemma 12 + §6.3: the approximation guarantee.
			util := s.Utility(tr.X)
			bound := ratioBound(s.DegreeK(), R)
			if util*bound < opt-1e-7 {
				t.Fatalf("seed %d R %d: utility %v × bound %v < opt %v (ratio %v)",
					seed, R, util, bound, opt, opt/util)
			}
		}
	}
}

func TestLemmas5to7Invariants(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 5, MaxDegK: 3, ExtraCons: 4}, seed)
		s := mustStructured(t, in)
		tr, err := Solve(s, Options{R: 4})
		if err != nil {
			t.Fatal(err)
		}
		r := tr.SmallR
		for v := 0; v < s.N; v++ {
			// Lemma 5: g+_{v,r} ≥ 0 and g−_{v,r} ≤ cap_v.
			if tr.GPlus[r][v] < -1e-9 {
				t.Fatalf("seed %d: g+[r][%d] = %v < 0", seed, v, tr.GPlus[r][v])
			}
			if tr.GMinus[r][v] > s.Caps[v]+1e-9 {
				t.Fatalf("seed %d: g−[r][%d] = %v > cap %v", seed, v, tr.GMinus[r][v], s.Caps[v])
			}
			for d := 1; d <= r; d++ {
				// Lemma 6: g−_{v,d−1} ≤ g−_{v,d}, g+_{v,d} ≤ g+_{v,d−1}.
				if tr.GMinus[d-1][v] > tr.GMinus[d][v]+1e-9 {
					t.Fatalf("seed %d: g− not monotone at v=%d d=%d", seed, v, d)
				}
				if tr.GPlus[d][v] > tr.GPlus[d-1][v]+1e-9 {
					t.Fatalf("seed %d: g+ not antitone at v=%d d=%d", seed, v, d)
				}
			}
			for d := 0; d <= r; d++ {
				// Lemma 7: g+_{v,d} ≥ 0.
				if tr.GPlus[d][v] < -1e-9 {
					t.Fatalf("seed %d: g+[%d][%d] = %v < 0", seed, d, v, tr.GPlus[d][v])
				}
			}
		}
	}
}

func TestSmoothingEqualsBallMinimum(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 6, MaxDegK: 3, ExtraCons: 2}, seed)
		s := mustStructured(t, in)
		for _, R := range []int{2, 3, 4} {
			tr, err := Solve(s, Options{R: R})
			if err != nil {
				t.Fatal(err)
			}
			g := bipartite.FromInstance(in)
			r := tr.SmallR
			for v := 0; v < s.N; v++ {
				want := math.Inf(1)
				for _, u := range g.AgentsWithin(v, 4*r+2) {
					if tr.T[u] < want {
						want = tr.T[u]
					}
				}
				if math.Abs(tr.S[v]-want) > 1e-12 {
					t.Fatalf("seed %d R %d: s[%d] = %v, brute force %v", seed, R, v, tr.S[v], want)
				}
			}
		}
	}
}

func TestTuMatchesAuLPOptimum(t *testing.T) {
	// E10: the memoised binary search equals the LP optimum of the
	// explicitly unfolded tree (Lemma 3).
	for seed := int64(0); seed < 6; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 3, MaxDegK: 3, ExtraCons: 1}, seed)
		s := mustStructured(t, in)
		for _, R := range []int{2, 3} {
			r := R - 2
			tr, err := Solve(s, Options{R: R})
			if err != nil {
				t.Fatal(err)
			}
			for u := int32(0); u < int32(s.N); u++ {
				lp, _ := BuildAuLP(s, u, r)
				res := simplex.SolveMaxMin(lp)
				if res.Status != simplex.Optimal {
					t.Fatalf("Au LP not optimal: %v", res.Status)
				}
				if math.Abs(res.Value-tr.T[u]) > 1e-6*math.Max(1, res.Value) {
					t.Fatalf("seed %d R %d u %d: binary search %v vs LP %v",
						seed, R, u, tr.T[u], res.Value)
				}
			}
		}
	}
}

func TestAuUpperBoundsGlobalOptimum(t *testing.T) {
	// Lemma 2: t_u ≥ opt(G) for every u.
	for seed := int64(0); seed < 8; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 4, MaxDegK: 3, ExtraCons: 3}, seed)
		s := mustStructured(t, in)
		opt := structuredOpt(t, in)
		tr, err := Solve(s, Options{R: 3})
		if err != nil {
			t.Fatal(err)
		}
		for u, tu := range tr.T {
			if tu < opt-1e-7 {
				t.Fatalf("seed %d: t[%d] = %v < opt %v", seed, u, tu, opt)
			}
		}
	}
}

func TestAuStructureLemma1(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 3, MaxDegK: 3, ExtraCons: 1}, seed)
		s := mustStructured(t, in)
		for _, r := range []int{0, 1} {
			for u := int32(0); u < int32(s.N); u++ {
				_, st := BuildAuLP(s, u, r)
				if err := CheckAuStructure(st, r); err != nil {
					t.Fatalf("seed %d r %d u %d: %v", seed, r, u, err)
				}
				if st.LeafCons == 0 {
					t.Fatal("tree has no leaves")
				}
			}
		}
	}
}

func TestAnonymityRelabellingInvariance(t *testing.T) {
	// §3 remark 6: the algorithm may not depend on agent identifiers.
	// Reversing all agent indices must permute the output accordingly.
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 4, MaxDegK: 3, ExtraCons: 2}, 42)
	n := in.NumAgents
	relabel := func(v int) int { return n - 1 - v }
	perm := mmlp.New(n)
	for _, c := range in.Cons {
		perm.AddConstraint(float64(relabel(c.Terms[0].Agent)), c.Terms[0].Coef,
			float64(relabel(c.Terms[1].Agent)), c.Terms[1].Coef)
	}
	for _, o := range in.Objs {
		pairs := []float64{}
		for _, tm := range o.Terms {
			pairs = append(pairs, float64(relabel(tm.Agent)), 1)
		}
		perm.AddObjective(pairs...)
	}
	s1 := mustStructured(t, in)
	s2 := mustStructured(t, perm)
	tr1, err1 := Solve(s1, Options{R: 3})
	tr2, err2 := Solve(s2, Options{R: 3})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for v := 0; v < n; v++ {
		if math.Abs(tr1.X[v]-tr2.X[relabel(v)]) > 1e-9 {
			t.Fatalf("x[%d] = %v but relabelled %v", v, tr1.X[v], tr2.X[relabel(v)])
		}
	}
}

func TestTriNecklaceSymmetry(t *testing.T) {
	// On the fully symmetric adversarial cycle all agents of the same band
	// must receive identical values.
	in := gen.TriNecklace(8)
	s := mustStructured(t, in)
	tr, err := Solve(s, Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < 8; k++ {
		for band := 0; band < 3; band++ {
			if math.Abs(tr.X[3*k+band]-tr.X[band]) > 1e-9 {
				t.Fatalf("band %d differs at k=%d: %v vs %v", band, k, tr.X[3*k+band], tr.X[band])
			}
		}
	}
	if v := s.MaxViolation(tr.X); v > 1e-9 {
		t.Fatalf("violation %v", v)
	}
}

func TestLayeredNecklaceShiftLemmas(t *testing.T) {
	// Lemmas 9 and 10 on a family with a consistent (mod 4R) layering.
	R := 3
	m := 2 * R // R | m keeps the cycle layering consistent
	in, agentLayer, objLayer := gen.LayeredNecklace(m)
	s := mustStructured(t, in)
	tr, err := Solve(s, Options{R: R})
	if err != nil {
		t.Fatal(err)
	}
	lay := &Layering{AgentLayer: agentLayer, ObjLayer: objLayer}
	minS := func(k int) float64 {
		v := math.Inf(1)
		for _, a := range s.Objs[k] {
			if tr.S[a] < v {
				v = tr.S[a]
			}
		}
		return v
	}
	for j := 0; j < R; j++ {
		y := ShiftSolution(tr, lay, j)
		// Lemma 9 feasibility.
		if v := s.MaxViolation(y); v > 1e-9 {
			t.Fatalf("j=%d: y(j) violation %v", j, v)
		}
		for k := range s.Objs {
			val := 0.0
			for _, a := range s.Objs[k] {
				val += y[a]
			}
			if modn(lay.ObjLayer[k]-(4*j-4), 4*R) == 0 {
				if val != 0 {
					t.Fatalf("j=%d k=%d: passive objective has value %v", j, k, val)
				}
			} else if val < minS(k)-1e-9 {
				t.Fatalf("j=%d k=%d: ω_k(y(j)) = %v < min s = %v", j, k, val, minS(k))
			}
		}
	}
	// Lemma 10: the shift average is feasible with ω_k ≥ (1−1/R)·min s.
	yAvg := AverageShift(tr, lay)
	if v := s.MaxViolation(yAvg); v > 1e-9 {
		t.Fatalf("average violation %v", v)
	}
	for k := range s.Objs {
		val := 0.0
		for _, a := range s.Objs[k] {
			val += yAvg[a]
		}
		if want := (1 - 1/float64(R)) * minS(k); val < want-1e-9 {
			t.Fatalf("k=%d: ω_k(y) = %v < %v", k, val, want)
		}
	}
	// Consistency: the average of y(j) equals AverageShift.
	for v := 0; v < s.N; v++ {
		sum := 0.0
		for j := 0; j < R; j++ {
			sum += ShiftSolution(tr, lay, j)[v]
		}
		if math.Abs(sum/float64(R)-yAvg[v]) > 1e-12 {
			t.Fatalf("average mismatch at %d", v)
		}
	}
}

func TestFigure1LevelsCoincideWithLayers(t *testing.T) {
	// Figure 1's caption: if u is an up-agent then the levels in A_u
	// coincide with the layers (shifted so u sits at level −1). On the
	// layered necklace: level(occurrence of w) ≡ layer(w) − layer(u) − 1
	// … taken mod 4m (the cycle's full layer period).
	R := 3
	m := 2 * R
	in, agentLayer, _ := gen.LayeredNecklace(m)
	s := mustStructured(t, in)
	u := int32(0) // U_0, an up-agent at layer −1
	_, st := BuildAuLP(s, u, R-2)
	period := 4 * m
	for _, occ := range st.Occs {
		want := modn(agentLayer[occ.Agent]-agentLayer[u]-1, period)
		got := modn(occ.Level, period)
		// Levels of agents are −1, 1, 3, …, 4r+1 — far below the period, so
		// the mod is only needed for the negative root level.
		if got != want {
			t.Fatalf("occurrence of agent %d: level %d (mod %d = %d), want %d",
				occ.Agent, occ.Level, period, got, want)
		}
	}
}

func TestLayersDecompose(t *testing.T) {
	// decompose must reproduce layer = 4(Rc+j)+4d+e for all classes.
	R := 4
	for j := 0; j < R; j++ {
		for c := -2; c <= 2; c++ {
			for d := 0; d < R; d++ {
				for _, e := range []int{-1, 1} {
					layer := 4*(R*c+j) + 4*d + e
					gd, ge := decompose(layer, R, j)
					if gd != d || ge != e {
						t.Fatalf("decompose(%d, R=%d, j=%d) = (%d,%d), want (%d,%d)",
							layer, R, j, gd, ge, d, e)
					}
				}
			}
		}
	}
}

func TestDecomposePanicsOnEvenLayer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for even layer")
		}
	}()
	decompose(4, 3, 0)
}

func TestDisconnectedComponentsSolveIndependently(t *testing.T) {
	// Two disjoint copies of the two-agent instance: the solution must be
	// the same as solving one copy, duplicated.
	in := mmlp.New(4)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1, 1, 1)
	in.AddConstraint(2, 1, 3, 1)
	in.AddObjective(2, 1, 3, 1)
	s := mustStructured(t, in)
	tr, err := Solve(s, Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if math.Abs(tr.X[v]-0.5) > 1e-9 {
			t.Fatalf("x[%d] = %v, want 0.5", v, tr.X[v])
		}
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 5, MaxDegK: 3, ExtraCons: 3}, 7)
	s := mustStructured(t, in)
	tr1, _ := Solve(s, Options{R: 3, Workers: 1})
	tr4, _ := Solve(s, Options{R: 3, Workers: 4})
	for v := range tr1.X {
		if tr1.X[v] != tr4.X[v] {
			t.Fatalf("worker count changed output at %d: %v vs %v", v, tr1.X[v], tr4.X[v])
		}
	}
}
