package core

import (
	"fmt"
	"math/big"

	"repro/internal/simplex"
	"repro/internal/structured"
)

// ExactTrace is the algorithm's state computed entirely in exact rational
// arithmetic: t_u is the true optimum of the unfolded tree LP (solved by
// the rational simplex rather than binary search), and s, g±, x follow the
// recursions (12)–(14) and (18) over big.Rat. On small instances this
// certifies the algorithm's guarantees with zero floating-point doubt; the
// test suite uses it to verify Lemma 12 as an exact rational inequality.
//
// The construction is exponential in R (the tree LP is materialised), so
// it is a verification tool, not a production path.
type ExactTrace struct {
	R, SmallR     int
	T, S          []*big.Rat
	GPlus, GMinus [][]*big.Rat
	X             []*big.Rat
}

// SolveExactRat runs the algorithm in exact arithmetic.
func SolveExactRat(s *structured.Instance, R int) (*ExactTrace, error) {
	if R < 2 {
		return nil, fmt.Errorf("core: R must be ≥ 2, got %d", R)
	}
	r := R - 2
	et := &ExactTrace{R: R, SmallR: r}

	// t_u: the optimum of the LP associated with A_u (Lemma 3), exactly.
	et.T = make([]*big.Rat, s.N)
	for u := 0; u < s.N; u++ {
		lp, _ := BuildAuLP(s, int32(u), r)
		res := simplex.SolveMaxMinRat(lp)
		if res.Status != simplex.Optimal {
			return nil, fmt.Errorf("core: A_u LP for agent %d: %v", u, res.Status)
		}
		et.T[u] = res.Value
	}

	// s_v: minimum over the distance-(4r+2) ball via 2r+1 rounds of
	// distance-2 min-diffusion, mirroring smooth().
	cur := make([]*big.Rat, s.N)
	copy(cur, et.T)
	for round := 0; round < 2*r+1; round++ {
		next := make([]*big.Rat, s.N)
		for v := 0; v < s.N; v++ {
			m := cur[v]
			for _, i := range s.ConsOf[v] {
				w, _, _ := s.Partner(int(i), int32(v))
				if cur[w].Cmp(m) < 0 {
					m = cur[w]
				}
			}
			s.PeersDo(int32(v), func(w int32) {
				if cur[w].Cmp(m) < 0 {
					m = cur[w]
				}
			})
			next[v] = m
		}
		cur = next
	}
	et.S = cur

	// g± via (12)–(14) in rationals.
	one := big.NewRat(1, 1)
	caps := make([]*big.Rat, s.N)
	for v := 0; v < s.N; v++ {
		caps[v] = new(big.Rat).SetFloat64(s.Caps[v])
	}
	et.GPlus = make([][]*big.Rat, r+1)
	et.GMinus = make([][]*big.Rat, r+1)
	for d := 0; d <= r; d++ {
		et.GPlus[d] = make([]*big.Rat, s.N)
		et.GMinus[d] = make([]*big.Rat, s.N)
		for v := 0; v < s.N; v++ {
			if d == 0 {
				et.GPlus[d][v] = caps[v]
				continue
			}
			var best *big.Rat
			for _, i := range s.ConsOf[v] {
				w, av, aw := s.Partner(int(i), int32(v))
				ra := new(big.Rat).SetFloat64(av)
				rw := new(big.Rat).SetFloat64(aw)
				val := new(big.Rat).Mul(rw, et.GMinus[d-1][w])
				val.Sub(one, val)
				val.Quo(val, ra)
				if best == nil || val.Cmp(best) < 0 {
					best = val
				}
			}
			et.GPlus[d][v] = best
		}
		for v := 0; v < s.N; v++ {
			sum := new(big.Rat)
			s.PeersDo(int32(v), func(w int32) { sum.Add(sum, et.GPlus[d][w]) })
			g := new(big.Rat).Sub(et.S[v], sum)
			if g.Sign() < 0 {
				g = new(big.Rat)
			}
			et.GMinus[d][v] = g
		}
	}

	// x via (18).
	twoR := big.NewRat(int64(2*R), 1)
	et.X = make([]*big.Rat, s.N)
	for v := 0; v < s.N; v++ {
		sum := new(big.Rat)
		for d := 0; d <= r; d++ {
			sum.Add(sum, et.GPlus[d][v])
			sum.Add(sum, et.GMinus[d][v])
		}
		et.X[v] = sum.Quo(sum, twoR)
	}
	return et, nil
}

// Floats converts the exact trace to float64 (for comparison with Solve).
func (et *ExactTrace) Floats() []float64 {
	x := make([]float64, len(et.X))
	for v := range x {
		x[v], _ = et.X[v].Float64()
	}
	return x
}

// UtilityRat returns min_k Σ_{v∈Vk} x_v exactly.
func (et *ExactTrace) UtilityRat(s *structured.Instance) *big.Rat {
	var best *big.Rat
	for _, members := range s.Objs {
		sum := new(big.Rat)
		for _, v := range members {
			sum.Add(sum, et.X[v])
		}
		if best == nil || sum.Cmp(best) < 0 {
			best = sum
		}
	}
	return best
}

// MaxViolationRat returns the exact worst constraint overshoot of X
// (zero or negative means exactly feasible).
func (et *ExactTrace) MaxViolationRat(s *structured.Instance) *big.Rat {
	one := big.NewRat(1, 1)
	worst := new(big.Rat).Sub(new(big.Rat), one) // -1: any load is ≥ 0
	for i := range s.ConsV {
		a0 := new(big.Rat).SetFloat64(s.ConsA[i][0])
		a1 := new(big.Rat).SetFloat64(s.ConsA[i][1])
		load := new(big.Rat).Mul(a0, et.X[s.ConsV[i][0]])
		load.Add(load, new(big.Rat).Mul(a1, et.X[s.ConsV[i][1]]))
		load.Sub(load, one)
		if load.Cmp(worst) > 0 {
			worst = load
		}
	}
	return worst
}
