package core

import "repro/internal/structured"

// evaluator computes the recursions (5)–(7) for one root agent u at a given
// ω, with memoisation keyed on (agent, depth, sign).
//
// Two occurrences of the same agent at the same depth of the alternating
// tree A_u always carry the same f± value, because (6) sums over the full
// peer set N(v) and (7) minimises over the full constraint set Iv — neither
// depends on which walk reached the occurrence. Memoisation therefore
// collapses the exponentially-branching tree walk into at most
// N·(r+1) evaluations per sign without changing any value.
//
// Memo slots are invalidated in O(1) between evaluations by an epoch
// counter.
//
// Tables are normally sized N·(r+1): one row per agent of the instance.
// A scoped evaluator (newEvaluatorScoped) instead covers only a declared
// agent subset — the recursion from one root u touches only the agents
// within bipartite distance 4r+2 of u, so a caller that evaluates a single
// root can size the tables to u's neighbourhood. That is what keeps the
// simulator's N concurrent per-agent evaluators at O(N) total memory for
// bounded-degree instances instead of O(N²·r).
type evaluator struct {
	s *structured.Instance
	r int

	// width is the number of agent rows per depth: s.N, or the scope size
	// for a scoped evaluator. localIdx maps agent id → dense row index and
	// is nil for a full-instance evaluator (row index = agent id).
	width    int
	localIdx map[int32]int32

	omega float64
	ok    bool // condition (8): every evaluated f+ is ≥ 0

	plus, minus         []float64
	plusSeen, minusSeen []uint64
	epoch               uint64
}

// newEvaluator allocates the memo tables for one worker.
func newEvaluator(s *structured.Instance, r int) *evaluator {
	e := &evaluator{}
	e.reset(s, r)
	return e
}

// newEvaluatorScoped allocates memo tables covering only the given agents.
// The caller guarantees the scope is recursion-closed for the roots it will
// query: every agent within bipartite distance 4r+2 of a queried root is
// listed. Evaluating an out-of-scope agent panics — it would mean the
// caller's locality contract is broken, and returning a wrong slot would
// silently corrupt results.
func newEvaluatorScoped(s *structured.Instance, r int, agents []int32) *evaluator {
	e := &evaluator{s: s, r: r, width: len(agents), localIdx: make(map[int32]int32, len(agents))}
	for i, a := range agents {
		e.localIdx[a] = int32(i)
	}
	n := len(agents) * (r + 1)
	e.plus = make([]float64, n)
	e.minus = make([]float64, n)
	e.plusSeen = make([]uint64, n)
	e.minusSeen = make([]uint64, n)
	return e
}

// reset retargets the evaluator at a new instance and radius, reusing the
// memo tables when they are large enough. Stale Seen entries are harmless:
// the epoch counter is monotone across resets, so slots written by earlier
// runs never match a future epoch.
func (e *evaluator) reset(s *structured.Instance, r int) {
	e.s, e.r = s, r
	e.width, e.localIdx = s.N, nil
	n := s.N * (r + 1)
	if cap(e.plus) < n {
		e.plus = make([]float64, n)
		e.minus = make([]float64, n)
		e.plusSeen = make([]uint64, n)
		e.minusSeen = make([]uint64, n)
		return
	}
	e.plus = e.plus[:n]
	e.minus = e.minus[:n]
	e.plusSeen = e.plusSeen[:n]
	e.minusSeen = e.minusSeen[:n]
}

// slot maps (agent, depth) to a memo index: the agent id directly for a
// full-instance evaluator, the dense scope index for a scoped one.
func (e *evaluator) slot(v int32, d int) int {
	if e.localIdx == nil {
		return d*e.width + int(v)
	}
	li, ok := e.localIdx[v]
	if !ok {
		panic("core: scoped evaluator reached an agent outside its declared scope")
	}
	return d*e.width + int(li)
}

// fplus returns f+_{u,v,d}(ω) per (5)/(7) and records condition (8).
func (e *evaluator) fplus(v int32, d int) float64 {
	slot := e.slot(v, d)
	if e.plusSeen[slot] == e.epoch {
		return e.plus[slot]
	}
	var val float64
	if d == 0 {
		val = e.s.Caps[v] // (5)
	} else {
		for j, i := range e.s.ConsOf[v] {
			w, av, aw := e.s.Partner(int(i), v)
			cand := GPlusCandidate(av, aw, e.fminus(w, d-1))
			if j == 0 || cand < val {
				val = cand
			}
		}
	}
	if val < 0 {
		e.ok = false // condition (8) violated at this ω
	}
	e.plus[slot] = val
	e.plusSeen[slot] = e.epoch
	return val
}

// fminus returns f−_{u,v,d}(ω) per (6).
func (e *evaluator) fminus(v int32, d int) float64 {
	slot := e.slot(v, d)
	if e.minusSeen[slot] == e.epoch {
		return e.minus[slot]
	}
	sum := 0.0
	e.s.PeersDo(v, func(w int32) { sum += e.fplus(w, d) })
	val := HingePos(e.omega - sum)
	e.minus[slot] = val
	e.minusSeen[slot] = e.epoch
	return val
}

// feasible reports whether ω satisfies conditions (8) and (9) for root u.
// Both conditions are monotone in ω (f+ non-increasing, f− non-decreasing),
// so the feasible set is an interval [0, t_u].
func (e *evaluator) feasible(u int32, omega float64) bool {
	e.epoch++
	e.omega = omega
	e.ok = true
	root := e.fminus(u, e.r)
	return e.ok && root <= e.s.Caps[u] // (9)
}

// computeT binary-searches the largest feasible ω, i.e. t_u = the optimum
// of the max-min LP on A_u (Lemma 3). The search starts from the upper
// bound Σ_{w∈Vk(u)} cap_w (objective k(u) cannot exceed it) and returns the
// feasible endpoint of the final bracket, a lower bound on t_u within one
// bracket width.
func (e *evaluator) computeT(u int32, iters int) float64 {
	hi := 0.0
	for _, w := range e.s.Objs[e.s.ObjOf[u]] {
		hi += e.s.Caps[w]
	}
	return BinarySearch(hi, iters, func(omega float64) bool {
		return e.feasible(u, omega)
	})
}
