package core

import (
	"fmt"
	"math"

	"repro/internal/structured"
)

// VerifyTrace checks every lemma-level invariant of §5–§6 on a computed
// trace, with additive tolerance tol:
//
//	Lemma 5:  g+_{v,r} ≥ 0 and g−_{v,r} ≤ cap_v,
//	Lemma 6:  g− non-decreasing and g+ non-increasing in d,
//	Lemma 7:  g+_{v,d} ≥ 0 for all d,
//	(13):     g−_{v,d} = max(0, s_v − Σ_{w∈N(v)} g+_{w,d}) recomputed,
//	(18):     x matches the g-sums,
//	Lemma 11: x is feasible,
//	(21):     ω_k(x) ≥ ½ (1−1/R) |Vk|/(|Vk|−1) min_{v∈Vk} s_v,
//	s_v ≤ t_v and s_v equals some t value (smoothing sanity).
//
// A nil return certifies the run satisfied the paper's guarantees; the
// facade exposes it as LocalOptions.SelfCheck.
func VerifyTrace(s *structured.Instance, tr *Trace, tol float64) error {
	r := tr.SmallR
	if len(tr.GPlus) != r+1 || len(tr.GMinus) != r+1 {
		return fmt.Errorf("core: trace has %d g-levels, want %d", len(tr.GPlus), r+1)
	}
	for v := 0; v < s.N; v++ {
		if tr.GPlus[r][v] < -tol {
			return fmt.Errorf("core: Lemma 5 violated: g+[r][%d] = %v", v, tr.GPlus[r][v])
		}
		if tr.GMinus[r][v] > s.Caps[v]+tol {
			return fmt.Errorf("core: Lemma 5 violated: g−[r][%d] = %v > cap %v", v, tr.GMinus[r][v], s.Caps[v])
		}
		for d := 0; d <= r; d++ {
			if tr.GPlus[d][v] < -tol {
				return fmt.Errorf("core: Lemma 7 violated at d=%d v=%d", d, v)
			}
			if d > 0 {
				if tr.GMinus[d-1][v] > tr.GMinus[d][v]+tol || tr.GPlus[d][v] > tr.GPlus[d-1][v]+tol {
					return fmt.Errorf("core: Lemma 6 violated at d=%d v=%d", d, v)
				}
			}
			// Recompute (13).
			sum := 0.0
			s.PeersDo(int32(v), func(w int32) { sum += tr.GPlus[d][w] })
			want := math.Max(0, tr.S[v]-sum)
			if math.Abs(want-tr.GMinus[d][v]) > tol {
				return fmt.Errorf("core: (13) mismatch at d=%d v=%d: %v vs %v", d, v, tr.GMinus[d][v], want)
			}
		}
		// (18).
		sum := 0.0
		for d := 0; d <= r; d++ {
			sum += tr.GPlus[d][v] + tr.GMinus[d][v]
		}
		if math.Abs(sum/(2*float64(tr.R))-tr.X[v]) > tol {
			return fmt.Errorf("core: (18) mismatch at v=%d", v)
		}
		if tr.S[v] > tr.T[v]+tol {
			return fmt.Errorf("core: s[%d] = %v exceeds t[%d] = %v", v, tr.S[v], v, tr.T[v])
		}
	}
	if viol := s.MaxViolation(tr.X); viol > tol {
		return fmt.Errorf("core: Lemma 11 violated: max violation %v", viol)
	}
	// (21): the per-objective guarantee.
	for k, members := range s.Objs {
		val, minS := 0.0, math.Inf(1)
		for _, v := range members {
			val += tr.X[v]
			if tr.S[v] < minS {
				minS = tr.S[v]
			}
		}
		sz := float64(len(members))
		want := 0.5 * (1 - 1/float64(tr.R)) * sz / (sz - 1) * minS
		if val < want-tol {
			return fmt.Errorf("core: (21) violated at objective %d: ω_k = %v < %v", k, val, want)
		}
	}
	return nil
}
