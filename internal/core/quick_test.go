package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/structured"
)

func quickStructured(seed int64) (*structured.Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	in := gen.RandomStructured(gen.StructuredConfig{
		Objectives: 3 + rng.Intn(6),
		MaxDegK:    2 + rng.Intn(3),
		ExtraCons:  rng.Intn(6),
	}, seed)
	return structured.FromMMLP(in)
}

func TestQuickSolveAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		s, err := quickStructured(seed)
		if err != nil {
			return false
		}
		for _, R := range []int{2, 3, 4} {
			tr, err := Solve(s, Options{R: R})
			if err != nil {
				return false
			}
			if s.MaxViolation(tr.X) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTuDecreasesInR(t *testing.T) {
	// A_u(r+1) refines A_u(r): its constraint set is tighter and its
	// objective set larger, so the tree optimum t_u can only decrease as R
	// grows — the upper bound converges downwards to the true optimum.
	f := func(seed int64) bool {
		s, err := quickStructured(seed)
		if err != nil {
			return false
		}
		var prev []float64
		for _, R := range []int{2, 3, 4} {
			tr, err := Solve(s, Options{R: R})
			if err != nil {
				return false
			}
			if prev != nil {
				for u := range prev {
					if tr.T[u] > prev[u]+1e-9 {
						return false
					}
				}
			}
			prev = tr.T
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUpperBoundDominatesUtility(t *testing.T) {
	f := func(seed int64) bool {
		s, err := quickStructured(seed)
		if err != nil {
			return false
		}
		tr, err := Solve(s, Options{R: 3})
		if err != nil {
			return false
		}
		// UpperBound ≥ opt ≥ ω(X).
		return tr.UpperBound >= s.Utility(tr.X)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSmoothedBoundBelowTu(t *testing.T) {
	// s_v ≤ t_v always (the ball contains v), and s is monotone under
	// growing balls: every s_v equals some t_u in the ball.
	f := func(seed int64) bool {
		s, err := quickStructured(seed)
		if err != nil {
			return false
		}
		tr, err := Solve(s, Options{R: 3})
		if err != nil {
			return false
		}
		seen := map[float64]bool{}
		for _, tu := range tr.T {
			seen[tu] = true
		}
		for v := range tr.S {
			if tr.S[v] > tr.T[v] {
				return false
			}
			if !seen[tr.S[v]] {
				return false // s must be one of the t values
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
