package core

import (
	"fmt"

	"repro/internal/mmlp"
	"repro/internal/structured"
)

// AuOcc is one agent occurrence in the unfolded alternating tree.
type AuOcc struct {
	// Agent is the underlying agent of the finite graph.
	Agent int32
	// Level is the occurrence's level in A_u (−1 for the root).
	Level int
	// Var is the occurrence's variable index in the LP built by BuildAuLP.
	Var int
}

// AuStats summarises the explicitly unfolded alternating tree A_u.
type AuStats struct {
	// AgentNodes, ConsNodes, ObjNodes count tree occurrences by kind.
	AgentNodes, ConsNodes, ObjNodes int
	// LeafCons counts constraint leaves (levels −2 and 4r+2).
	LeafCons int
	// AgentLevels collects the multiset of levels at which agents occur.
	AgentLevels map[int]int
	// Occs lists every agent occurrence.
	Occs []AuOcc
}

// BuildAuLP materialises the alternating tree A_u of §5.1 as an explicit
// max-min LP: one variable per agent occurrence (walks can revisit an agent
// of the underlying finite graph; each visit is its own tree node), one
// 2-term row per internal constraint occurrence, one 1-term row per leaf
// constraint occurrence, and one objective row per objective occurrence.
//
// By Lemma 3, the optimum of the returned LP is exactly t_u. The
// construction is exponential in r and exists for cross-checking the
// memoised binary search (test E10) and for the Lemma 1 structure tests;
// the algorithm itself never builds it.
func BuildAuLP(s *structured.Instance, u int32, r int) (*mmlp.Instance, AuStats) {
	lp := mmlp.New(0)
	st := AuStats{AgentLevels: map[int]int{}}

	newAgent := func(agent int32, level int) int {
		v := lp.NumAgents
		lp.NumAgents++
		st.AgentNodes++
		st.AgentLevels[level]++
		st.Occs = append(st.Occs, AuOcc{Agent: agent, Level: level, Var: v})
		return v
	}

	maxLevel := 4*r + 2

	// buildFPlus adds the subtree under an f+ agent occurrence of v at
	// `level` (1 mod 4) and returns its variable index.
	var buildFPlus func(v int32, level int) int
	// buildFMinus adds the subtree under an f− agent occurrence of v at
	// `level` (3 mod 4, or −1 for the root) reached through constraint
	// `fromCons`, and returns its variable index.
	var buildFMinus func(v int32, level int, fromCons int32) int

	buildFPlus = func(v int32, level int) int {
		xv := newAgent(v, level)
		for _, i := range s.ConsOf[v] {
			w, av, aw := s.Partner(int(i), v)
			st.ConsNodes++
			if level+1 == maxLevel {
				// Constraint leaf: only the parent side is in A_u.
				st.LeafCons++
				lp.AddConstraint(float64(xv), av)
				continue
			}
			xw := buildFMinus(w, level+2, i)
			lp.AddConstraint(float64(xv), av, float64(xw), aw)
		}
		return xv
	}

	buildFMinus = func(v int32, level int, fromCons int32) int {
		xv := newAgent(v, level)
		st.ObjNodes++
		pairs := []float64{float64(xv), 1}
		s.PeersDo(v, func(w int32) {
			xw := buildFPlus(w, level+2)
			pairs = append(pairs, float64(xw), 1)
		})
		lp.AddObjective(pairs...)
		_ = fromCons // the objective step never backtracks into a constraint
		return xv
	}

	// Root: u at level −1 with its own constraints as leaves at level −2
	// (the "length ≤ 1" clause of §5.1), then the subtree through k(u).
	rootVar := newAgent(u, -1)
	for _, i := range s.ConsOf[u] {
		_, av, _ := s.Partner(int(i), u)
		st.ConsNodes++
		st.LeafCons++
		lp.AddConstraint(float64(rootVar), av)
	}
	st.ObjNodes++
	pairs := []float64{float64(rootVar), 1}
	s.PeersDo(u, func(w int32) {
		xw := buildFPlus(w, 1)
		pairs = append(pairs, float64(xw), 1)
	})
	lp.AddObjective(pairs...)

	return lp, st
}

// CheckAuStructure verifies the Lemma 1 invariants on the stats of an
// explicitly built A_u: agents at levels ≡ 1 or 3 (mod 4) apart from the
// root at −1.
func CheckAuStructure(st AuStats, r int) error {
	for level, count := range st.AgentLevels {
		if level == -1 {
			if count != 1 {
				return fmt.Errorf("core: %d root occurrences", count)
			}
			continue
		}
		if m := ((level % 4) + 4) % 4; m != 1 && m != 3 {
			return fmt.Errorf("core: agent occurrence at level %d (≡ %d mod 4)", level, m)
		}
		if level < 1 || level > 4*r+1 {
			return fmt.Errorf("core: agent occurrence at out-of-range level %d", level)
		}
	}
	return nil
}
