package core

import (
	"math"
	"math/big"
	"testing"

	"repro/internal/gen"
	"repro/internal/simplex"
	"repro/internal/structured"
)

func TestExactMatchesFloatSolve(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 3, MaxDegK: 3, ExtraCons: 1}, seed)
		s, err := structured.FromMMLP(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, R := range []int{2, 3} {
			et, err := SolveExactRat(s, R)
			if err != nil {
				t.Fatal(err)
			}
			fl, err := Solve(s, Options{R: R})
			if err != nil {
				t.Fatal(err)
			}
			for v := 0; v < s.N; v++ {
				exact, _ := et.T[v].Float64()
				if math.Abs(exact-fl.T[v]) > 1e-7*math.Max(1, exact) {
					t.Fatalf("seed %d R %d: t[%d] exact %v float %v", seed, R, v, exact, fl.T[v])
				}
			}
			xf := et.Floats()
			for v := range xf {
				if math.Abs(xf[v]-fl.X[v]) > 1e-7*math.Max(1, xf[v]) {
					t.Fatalf("seed %d R %d: x[%d] exact %v float %v", seed, R, v, xf[v], fl.X[v])
				}
			}
		}
	}
}

func TestExactFeasibilityIsExact(t *testing.T) {
	// Lemma 11 as an exact statement: the rational output never exceeds
	// any constraint, with zero tolerance.
	for seed := int64(0); seed < 4; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 4, MaxDegK: 3, ExtraCons: 2}, seed)
		s, err := structured.FromMMLP(in)
		if err != nil {
			t.Fatal(err)
		}
		et, err := SolveExactRat(s, 3)
		if err != nil {
			t.Fatal(err)
		}
		if v := et.MaxViolationRat(s); v.Sign() > 0 {
			t.Fatalf("seed %d: exact violation %v > 0", seed, v)
		}
		for d := 0; d <= et.SmallR; d++ {
			for v := 0; v < s.N; v++ {
				if et.GPlus[d][v].Sign() < 0 {
					t.Fatalf("seed %d: exact g+[%d][%d] negative (Lemma 7)", seed, d, v)
				}
			}
		}
	}
}

func TestExactRatioBoundLemma12(t *testing.T) {
	// The §6.3 guarantee as an exact rational inequality:
	// ω(x) · 2(1−1/ΔK) · R/(R−1) ≥ opt, verified with zero tolerance.
	for seed := int64(0); seed < 3; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 3, MaxDegK: 3, ExtraCons: 1}, seed)
		s, err := structured.FromMMLP(in)
		if err != nil {
			t.Fatal(err)
		}
		R := 3
		et, err := SolveExactRat(s, R)
		if err != nil {
			t.Fatal(err)
		}
		optRes := simplex.SolveMaxMinRat(in)
		if optRes.Status != simplex.Optimal {
			t.Fatalf("rational optimum: %v", optRes.Status)
		}
		dK := int64(s.DegreeK())
		// bound = 2 · (dK−1)/dK · R/(R−1)
		bound := new(big.Rat).Mul(big.NewRat(2*(dK-1), dK), big.NewRat(int64(R), int64(R-1)))
		lhs := new(big.Rat).Mul(et.UtilityRat(s), bound)
		if lhs.Cmp(optRes.Value) < 0 {
			t.Fatalf("seed %d: exact guarantee violated: ω·bound = %v < opt = %v",
				seed, lhs, optRes.Value)
		}
	}
}

func TestExactRejectsBadR(t *testing.T) {
	in := gen.TriNecklace(3)
	s, _ := structured.FromMMLP(in)
	if _, err := SolveExactRat(s, 1); err == nil {
		t.Fatal("R=1 accepted")
	}
}

func TestExactLayeredNecklaceThresholdExactly(t *testing.T) {
	// The E3 flagship finding, certified in exact arithmetic: on the
	// layered necklace the ratio is exactly 4/3.
	in, _, _ := gen.LayeredNecklace(6)
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	et, err := SolveExactRat(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	opt := simplex.SolveMaxMinRat(in)
	if opt.Status != simplex.Optimal {
		t.Fatal(opt.Status)
	}
	ratio := new(big.Rat).Quo(opt.Value, et.UtilityRat(s))
	if ratio.Cmp(big.NewRat(4, 3)) != 0 {
		t.Fatalf("exact ratio = %v, want exactly 4/3", ratio)
	}
}
