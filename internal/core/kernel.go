package core

import (
	"fmt"

	"repro/internal/structured"
)

// This file exports the per-node arithmetic kernels of the §5 algorithm so
// that internal/dist can execute the identical computation as a
// message-passing protocol. Bit-identical outputs between core.Solve and
// the distributed protocols rely on both sides evaluating exactly these
// expressions in exactly the same order, so the centralised engine calls
// the same functions.

// Normalized returns the options with defaults filled in (R=3,
// BinIters=100) and reports unusable parameter combinations.
func (o Options) Normalized() (Options, error) {
	o = o.withDefaults()
	if err := o.validate(); err != nil {
		return o, err
	}
	return o, nil
}

// HingePos is the positive part max{0, x}, the hinge of the recursions (6)
// and (13).
func HingePos(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// GPlusCandidate evaluates one minimand of the recursions (7) and (14):
// (1 − a_iw·g)/a_iv, where g is the partner's f−/g− value, av the caller's
// coefficient in constraint i and aw the partner's.
func GPlusCandidate(av, aw, g float64) float64 {
	return (1 - aw*g) / av
}

// CombineOutput evaluates (18) for one agent: x_v = (1/2R) Σ_d (g+_d + g−_d),
// summing in increasing depth order.
func CombineOutput(gp, gm []float64, R int) float64 {
	sum := 0.0
	for d := range gp {
		sum += gp[d] + gm[d]
	}
	return sum / (2 * float64(R))
}

// BinarySearch finds the largest feasible ω in [0, hi] for a predicate that
// is monotone (feasible on an interval [0, t]): it returns hi when hi
// itself is feasible and otherwise the feasible endpoint of the final
// bracket after at most iters halvings, stopping early when the bracket is
// exhausted at float64 resolution. The iteration sequence — and hence the
// returned bits — is a pure function of (hi, iters, feasible), which is
// what makes centralised and distributed t_u computations agree exactly.
func BinarySearch(hi float64, iters int, feasible func(omega float64) bool) float64 {
	if feasible(hi) {
		return hi
	}
	lo := 0.0
	for it := 0; it < iters; it++ {
		mid := lo + (hi-lo)/2
		if mid <= lo || mid >= hi {
			break // bracket exhausted at float64 resolution
		}
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Evaluator exposes the per-root t_u computation (recursions (5)–(7) with
// the binary search of §5.2) for callers outside the package; the dist
// package uses it to run the identifier-based record protocol on exactly
// the centralised kernel. The evaluator is not safe for concurrent use.
type Evaluator struct {
	ev *evaluator
}

// NewEvaluator allocates an evaluator for radius r = R−2 on s.
func NewEvaluator(s *structured.Instance, r int) (*Evaluator, error) {
	if r < 0 {
		return nil, fmt.Errorf("core: negative recursion radius %d", r)
	}
	return &Evaluator{ev: newEvaluator(s, r)}, nil
}

// NewEvaluatorScoped allocates an evaluator whose memo tables cover only
// the listed agents, O(len(agents)·(r+1)) memory instead of O(N·(r+1)).
// The recursion from a root u only ever touches agents within bipartite
// distance 4r+2 of u, so a caller that evaluates one root — the simulator
// runs one evaluator per agent, all concurrently — may scope the tables to
// any superset of that neighbourhood (e.g. the gossip-complete
// radius-(4r+3) ball) and the computed t_u is bit-identical to the
// full-instance evaluator's. Evaluating a root whose neighbourhood leaves
// the scope panics rather than corrupting results.
func NewEvaluatorScoped(s *structured.Instance, r int, agents []int32) (*Evaluator, error) {
	if r < 0 {
		return nil, fmt.Errorf("core: negative recursion radius %d", r)
	}
	if len(agents) == 0 {
		return nil, fmt.Errorf("core: empty evaluator scope")
	}
	for _, a := range agents {
		if a < 0 || int(a) >= s.N {
			return nil, fmt.Errorf("core: scope agent %d out of range [0, %d)", a, s.N)
		}
	}
	return &Evaluator{ev: newEvaluatorScoped(s, r, agents)}, nil
}

// ComputeT returns t_u as computed by the centralised engine: the largest ω
// feasible for root u within binIters bracket halvings (0 means the
// default of 100).
func (e *Evaluator) ComputeT(u int32, binIters int) float64 {
	if binIters == 0 {
		binIters = 100
	}
	return e.ev.computeT(u, binIters)
}
