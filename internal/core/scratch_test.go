package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/structured"
)

// TestSolveScratchMatchesSolve reuses one Scratch across instances of
// different sizes and radii and requires bit-identical traces throughout —
// a stale buffer or memo slot surviving a reset would show up here.
func TestSolveScratchMatchesSolve(t *testing.T) {
	sc := &Scratch{}
	cases := []struct {
		objs, extra int
		R           int
		seed        int64
	}{
		{40, 20, 3, 1},
		{8, 4, 2, 2},
		{25, 12, 4, 3},
		{40, 20, 3, 1}, // repeat of the first: exercises shrink-then-grow
		{3, 2, 6, 4},
	}
	for _, c := range cases {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: c.objs, MaxDegK: 3, ExtraCons: c.extra}, c.seed)
		s, err := structured.FromMMLP(in)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(s, Options{R: c.R})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveScratch(s, Options{R: c.R}, sc)
		if err != nil {
			t.Fatal(err)
		}
		if got.UpperBound != want.UpperBound {
			t.Fatalf("objs=%d R=%d: UpperBound %v != %v", c.objs, c.R, got.UpperBound, want.UpperBound)
		}
		for v := range want.X {
			if got.X[v] != want.X[v] {
				t.Fatalf("objs=%d R=%d: X[%d] = %v != %v", c.objs, c.R, v, got.X[v], want.X[v])
			}
			if got.T[v] != want.T[v] || got.S[v] != want.S[v] {
				t.Fatalf("objs=%d R=%d: T/S mismatch at agent %d", c.objs, c.R, v)
			}
		}
		for d := range want.GPlus {
			for v := range want.GPlus[d] {
				if got.GPlus[d][v] != want.GPlus[d][v] || got.GMinus[d][v] != want.GMinus[d][v] {
					t.Fatalf("objs=%d R=%d: g± mismatch at d=%d v=%d", c.objs, c.R, d, v)
				}
			}
		}
	}
}

// TestSolveScratchSteadyStateAllocs verifies the warm scratch path stops
// allocating in the kernel: after one warm-up solve, repeat solves of the
// same shape allocate only the Trace header.
func TestSolveScratchSteadyStateAllocs(t *testing.T) {
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 30, MaxDegK: 3, ExtraCons: 15}, 7)
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scratch{}
	if _, err := SolveScratch(s, Options{R: 3}, sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveScratch(s, Options{R: 3}, sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 { // the *Trace itself
		t.Fatalf("steady-state SolveScratch allocates %.1f objects per run", allocs)
	}
}
