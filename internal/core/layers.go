package core

// Layer bookkeeping for the analysis of §6. The algorithm itself never
// computes layers — that is the whole point of the up/down averaging in
// (18) — but the shifting-strategy solutions y(j) of (19) and their
// average (20) are constructible whenever a consistent layer assignment is
// known (e.g. on the generator families that ship one), and the tests use
// them to machine-check Lemmas 9–11.

// Layering is a consistent layer assignment in the sense of §6: agent
// layers are ≡ 1 (down) or ≡ 3 (up) mod 4, every constraint joins a down
// agent at layer ℓ and an up agent at ℓ+2, and every objective at layer ℓ
// has exactly one up agent at ℓ−1 with its remaining agents down at ℓ+1.
// Layers may be taken modulo 4R, which is all (19) reads.
type Layering struct {
	// AgentLayer[v] is the layer of agent v.
	AgentLayer []int
	// ObjLayer[k] is the layer of objective k.
	ObjLayer []int
}

// IsUp reports whether agent v is an up-agent (layer ≡ 3 mod 4).
func (l *Layering) IsUp(v int) bool {
	return mod4(l.AgentLayer[v]) == 3
}

func mod4(x int) int    { return ((x % 4) + 4) % 4 }
func modn(x, n int) int { return ((x % n) + n) % n }

// ShiftSolution computes y(j) of equation (19) for shift parameter
// j ∈ [0, R): writing an agent's layer as 4(Rc+j)+4d+e with 0 ≤ d < R and
// e ∈ {−1, 1}, the agent contributes 0 when d = R−1, g−_{v,r−d} when it is
// an up agent (e = −1) and g+_{v,r−d} when it is a down agent (e = 1).
func ShiftSolution(tr *Trace, lay *Layering, j int) []float64 {
	R := tr.R
	y := make([]float64, len(lay.AgentLayer))
	for v, layer := range lay.AgentLayer {
		d, e := decompose(layer, R, j)
		switch {
		case d == R-1:
			y[v] = 0
		case e == -1:
			y[v] = tr.GMinus[tr.SmallR-d][v]
		default:
			y[v] = tr.GPlus[tr.SmallR-d][v]
		}
	}
	return y
}

// decompose writes layer = 4(Rc+j) + 4d + e with 0 ≤ d ≤ R−1, e ∈ {−1,1}.
func decompose(layer, R, j int) (d, e int) {
	// Shift so that the decomposition is relative to j, then reduce mod 4R.
	rel := modn(layer-4*j, 4*R)
	// rel = 4d + e with e ∈ {−1, 1} ⇒ rel mod 4 ∈ {3 (e=−1, next d), 1}.
	switch rel % 4 {
	case 1:
		return rel / 4, 1
	case 3:
		return (rel + 1) / 4 % R, -1
	}
	panic("core: layer not ≡ ±1 mod 4")
}

// AverageShift computes y of equation (20): the average of y(j) over all
// shifts, which per the paper equals (1/R) Σ_d g−_{v,d} for up agents and
// (1/R) Σ_d g+_{v,d} for down agents.
func AverageShift(tr *Trace, lay *Layering) []float64 {
	y := make([]float64, len(lay.AgentLayer))
	for v := range y {
		sum := 0.0
		for d := 0; d <= tr.SmallR; d++ {
			if lay.IsUp(v) {
				sum += tr.GMinus[d][v]
			} else {
				sum += tr.GPlus[d][v]
			}
		}
		y[v] = sum / float64(tr.R)
	}
	return y
}
