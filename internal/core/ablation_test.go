package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/structured"
)

func TestAblationZeroEqualsSolve(t *testing.T) {
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 6, MaxDegK: 3, ExtraCons: 3}, 1)
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	a, err := SolveAblated(s, Options{R: 3}, Ablation{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(s, Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.X {
		if a.X[v] != b.X[v] {
			t.Fatalf("zero ablation differs at %d", v)
		}
	}
}

func TestAblationNoSmoothingBreaksFeasibility(t *testing.T) {
	// Find at least one instance in the family where dropping the
	// smoothing step produces an infeasible output — demonstrating that
	// §5.3 is load-bearing, not an optimisation.
	broken := false
	for seed := int64(0); seed < 30 && !broken; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 8, MaxDegK: 3, ExtraCons: 6}, seed)
		s, err := structured.FromMMLP(in)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := SolveAblated(s, Options{R: 3}, Ablation{NoSmoothing: true})
		if err != nil {
			t.Fatal(err)
		}
		if s.MaxViolation(tr.X) > 1e-6 {
			broken = true
		}
	}
	if !broken {
		t.Fatal("no-smoothing ablation never violated feasibility across 30 seeds; " +
			"either the family is too benign or smoothing is not exercised")
	}
}

func TestAblationSingleRoleBreaksFeasibility(t *testing.T) {
	// All-down role guesses overload shared constraints on symmetric
	// instances: both endpoints of a constraint claim the down-agent's
	// larger share g+.
	in := gen.TriNecklace(10)
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	down, err := SolveAblated(s, Options{R: 3}, Ablation{Role: RoleDown})
	if err != nil {
		t.Fatal(err)
	}
	if v := s.MaxViolation(down.X); v <= 1e-9 {
		t.Fatalf("all-down output unexpectedly feasible (violation %v)", v)
	}
	// All-up is feasible (g− ≤ cap by Lemma 5) but wasteful: its utility is
	// dominated by the averaged output.
	up, err := SolveAblated(s, Options{R: 3}, Ablation{Role: RoleUp})
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Solve(s, Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Utility(up.X) > s.Utility(avg.X)+1e-9 {
		t.Fatalf("all-up utility %v beats averaged %v", s.Utility(up.X), s.Utility(avg.X))
	}
}

func TestAblationBinItersAccuracy(t *testing.T) {
	// Few binary-search iterations underestimate t_u; the output remains
	// feasible (the analysis only needs t̂ ≤ t) but the utility drops.
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 8, MaxDegK: 3, ExtraCons: 4}, 3)
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, iters := range []int{3, 8, 100} {
		tr, err := Solve(s, Options{R: 3, BinIters: iters})
		if err != nil {
			t.Fatal(err)
		}
		if v := s.MaxViolation(tr.X); v > 1e-9 {
			t.Fatalf("iters=%d: infeasible (violation %v)", iters, v)
		}
		util := s.Utility(tr.X)
		if i > 0 && util < prev-1e-9 {
			t.Fatalf("utility decreased with more iterations: %v → %v", prev, util)
		}
		prev = util
	}
}
