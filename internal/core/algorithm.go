// Package core implements the paper's contribution: the local
// approximation algorithm of §5 for structured max-min LPs, achieving
// factor 2(1−1/ΔK)(1+1/(R−1)) on the structured form and therefore
// ΔI(1−1/ΔK)+ε for general max-min LPs after the §4 transformations.
//
// The implementation mirrors the paper's three stages:
//
//  1. Per-agent upper bounds t_u: the optimum of the max-min LP on the
//     alternating tree A_u (§5.1–§5.2), found by binary search over ω on
//     the monotone recursions (5)–(7) — the "simple binary search" the
//     paper prescribes for practice. Distinct occurrences of the same agent
//     at the same depth of A_u share their f± value, so the recursion is
//     memoised on (agent, depth, sign) and runs in time proportional to the
//     radius-Θ(R) neighbourhood rather than the unfolded tree.
//  2. Smoothing (§5.3): s_v = min of t_u over agents u within graph
//     distance 4r+2, computed by 2r+1 rounds of distance-2 min-diffusion.
//  3. The g± recursions (12)–(14) and the output (18).
//
// All stages are local: stage 1 reads a radius-(4r+3) view, stage 2 adds
// 4r+2 rounds, stage 3 adds ≈4r+2 more. internal/dist executes the same
// computation as an explicit message-passing protocol.
package core

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/par"
	"repro/internal/structured"
)

// Options configures a run of the local algorithm.
type Options struct {
	// R is the shifting parameter (≥ 2). The local horizon is Θ(R) and the
	// approximation factor on structured instances is
	// 2(1−1/ΔK)·(1+1/(R−1)).
	R int
	// BinIters caps the binary-search iterations for each t_u. 0 means 100,
	// which drives the bracket to float64 exhaustion.
	BinIters int
	// Workers is the parallelism for the t_u computations; 0 means
	// GOMAXPROCS.
	Workers int
}

// withDefaults fills in zero fields.
func (o Options) withDefaults() Options {
	if o.R == 0 {
		o.R = 3
	}
	if o.BinIters == 0 {
		o.BinIters = 100
	}
	return o
}

// validate rejects unusable parameter combinations.
func (o Options) validate() error {
	if o.R < 2 {
		return fmt.Errorf("core: R must be ≥ 2, got %d", o.R)
	}
	if o.BinIters < 0 || o.Workers < 0 {
		return fmt.Errorf("core: negative BinIters or Workers")
	}
	return nil
}

// Trace is the complete state of one run: the output x plus every
// intermediate quantity of §5, which the tests check against the lemmas of
// §6 and the experiments report on.
type Trace struct {
	// R and r = R−2 echo the options.
	R, SmallR int
	// T[u] is the binary-search approximation of t_u (a lower bound on t_u
	// within the bracket width, hence still a valid ingredient for s_v).
	T []float64
	// S[v] = min_{u: dist(v,u) ≤ 4r+2} T[u], the smoothed bound of §5.3.
	S []float64
	// GPlus[d][v] and GMinus[d][v] are g±_{v,d} of (12)–(14), d = 0…r.
	GPlus, GMinus [][]float64
	// X is the output (18): x_v = (1/2R) Σ_d (g+_{v,d} + g−_{v,d}).
	X []float64
	// UpperBound = min_v T[v] ≥ the optimum of the instance (Lemma 2), a
	// certificate usable when the instance is too large for an LP solve.
	UpperBound float64
}

// Solve runs the local algorithm on a structured instance and returns the
// full trace. The solution Trace.X is feasible (Lemma 11) and satisfies
// ω(X) ≥ opt / (2(1−1/ΔK)(1+1/(R−1))) (Lemma 12 with §6.3).
func Solve(s *structured.Instance, opt Options) (*Trace, error) {
	return SolveCtx(nil, s, opt)
}

// SolveCtx is Solve with cooperative cancellation threaded through the t_u
// stage — the dominant cost of a run. Workers check ctx between per-agent
// computations, so a deadline expiring mid-solve stops the run within one
// t_u evaluation instead of after the whole stage; SolveCtx then returns
// ctx's error. A nil ctx skips every check (identical to Solve).
func SolveCtx(ctx context.Context, s *structured.Instance, opt Options) (*Trace, error) {
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	r := opt.R - 2
	tr := &Trace{R: opt.R, SmallR: r}
	tr.T, err = computeAllTCtx(ctx, s, r, opt.BinIters, opt.Workers)
	if err != nil {
		return nil, err
	}
	tr.S = smooth(s, tr.T, r)
	tr.GPlus, tr.GMinus = computeG(s, tr.S, r)
	tr.X = output(s, tr.GPlus, tr.GMinus, opt.R)
	ub := 0.0
	for u, t := range tr.T {
		if u == 0 || t < ub {
			ub = t
		}
	}
	tr.UpperBound = ub
	return tr, nil
}

// computeG evaluates the recursions (12)–(14) for all agents and
// d = 0…r, in dependency order g+_0, g−_0, g+_1, …, g−_r.
func computeG(s *structured.Instance, sv []float64, r int) (gp, gm [][]float64) {
	gp = make([][]float64, r+1)
	gm = make([][]float64, r+1)
	for d := 0; d <= r; d++ {
		gp[d] = make([]float64, s.N)
		gm[d] = make([]float64, s.N)
	}
	computeGInto(s, sv, r, gp, gm)
	return gp, gm
}

// computeGInto is computeG writing into caller-provided matrices with r+1
// rows of length s.N each.
func computeGInto(s *structured.Instance, sv []float64, r int, gp, gm [][]float64) {
	for d := 0; d <= r; d++ {
		for v := 0; v < s.N; v++ {
			if d == 0 {
				gp[d][v] = s.Caps[v] // (12)
			} else {
				// (14): g+_{v,d} = min_i (1 − a_{i,n} g−_{n,d−1}) / a_iv.
				best := 0.0
				for j, i := range s.ConsOf[v] {
					n, av, aw := s.Partner(int(i), int32(v))
					val := GPlusCandidate(av, aw, gm[d-1][n])
					if j == 0 || val < best {
						best = val
					}
				}
				gp[d][v] = best
			}
		}
		for v := 0; v < s.N; v++ {
			// (13): g−_{v,d} = max{0, s_v − Σ_{w∈N(v)} g+_{w,d}}.
			sum := 0.0
			s.PeersDo(int32(v), func(w int32) { sum += gp[d][w] })
			gm[d][v] = HingePos(sv[v] - sum)
		}
	}
}

// output evaluates (18).
func output(s *structured.Instance, gp, gm [][]float64, R int) []float64 {
	x := make([]float64, s.N)
	outputInto(s, gp, gm, R, x, make([]float64, len(gp)), make([]float64, len(gm)))
	return x
}

// outputInto is output writing into x, with gps/gms as per-agent column
// scratch of length len(gp).
func outputInto(s *structured.Instance, gp, gm [][]float64, R int, x, gps, gms []float64) {
	for v := range x {
		for d := range gp {
			gps[d], gms[d] = gp[d][v], gm[d][v]
		}
		x[v] = CombineOutput(gps, gms, R)
	}
}

// smooth computes s_v = min over agents within distance 4r+2 of v, via
// 2r+1 rounds of distance-2 min-diffusion: agents at even distances are
// linked through shared constraints (partners) and shared objectives
// (peers), and every shortest agent-to-agent path passes an agent at each
// even position.
func smooth(s *structured.Instance, t []float64, r int) []float64 {
	return smoothInto(s, r, append([]float64(nil), t...), make([]float64, s.N))
}

// smoothInto is smooth operating on caller-provided buffers: cur must hold a
// copy of t on entry, next is overwritten. The returned slice is one of the
// two buffers.
func smoothInto(s *structured.Instance, r int, cur, next []float64) []float64 {
	for round := 0; round < 2*r+1; round++ {
		for v := 0; v < s.N; v++ {
			m := cur[v]
			for _, i := range s.ConsOf[v] {
				w, _, _ := s.Partner(int(i), int32(v))
				if cur[w] < m {
					m = cur[w]
				}
			}
			s.PeersDo(int32(v), func(w int32) {
				if cur[w] < m {
					m = cur[w]
				}
			})
			next[v] = m
		}
		cur, next = next, cur
	}
	return cur
}

// computeAllT evaluates t_u for every agent in parallel; each worker keeps
// its own memo tables.
func computeAllT(s *structured.Instance, r, binIters, workers int) []float64 {
	t, _ := computeAllTCtx(nil, s, r, binIters, workers)
	return t
}

// computeAllTCtx is computeAllT with a per-agent cancellation check (nil
// ctx disables it). One t_u costs at least a full binary search over the
// agent's radius-Θ(r) neighbourhood, so the per-agent nil test and
// ctx.Err() load are noise; a shared stop flag fans a detected
// cancellation out to the other workers without further ctx traffic.
func computeAllTCtx(ctx context.Context, s *structured.Instance, r, binIters, workers int) ([]float64, error) {
	t := make([]float64, s.N)
	var stop atomic.Bool
	par.ForEachChunk(s.N, workers, func(lo, hi int) {
		ev := newEvaluator(s, r)
		for u := lo; u < hi; u++ {
			if ctx != nil {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
			}
			t[u] = ev.computeT(int32(u), binIters)
		}
	})
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	return t, nil
}
