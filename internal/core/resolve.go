package core

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/structured"
)

// This file exports the two halves of an incremental re-solve for callers
// (internal/delta via internal/engine) that compute the dirty agent set
// themselves: RecomputeT re-prices exactly the named agents against the
// edited instance, and DeriveFromT re-runs the cheap derived stages
// (smoothing, the g± recursions, the output) on the merged t-vector. The
// split exists so the serving layer can time the kernel and the splice as
// separate trace stages; Update composes the same pieces with its own
// over-approximate ball.

// RecomputeT returns a copy of baseT with t_u freshly evaluated on s for
// exactly the agents in dirty. The result equals computeAllT(s, …) bit for
// bit whenever baseT came from an instance that agrees with s on the
// radius-(TRadius(r)) neighbourhood of every agent NOT in dirty — the
// caller owns that guarantee (see delta.Plan). baseT must have one entry
// per agent of s; neither baseT nor dirty is modified.
func RecomputeT(s *structured.Instance, baseT []float64, dirty []int, opt Options) ([]float64, error) {
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	if len(baseT) != s.N {
		return nil, fmt.Errorf("core: base T has %d entries, instance has %d agents", len(baseT), s.N)
	}
	for _, v := range dirty {
		if v < 0 || v >= s.N {
			return nil, fmt.Errorf("core: dirty agent %d out of range [0, %d)", v, s.N)
		}
	}
	r := opt.R - 2
	t := append([]float64(nil), baseT...)
	par.ForEachChunk(len(dirty), opt.Workers, func(lo, hi int) {
		ev := newEvaluator(s, r)
		for j := lo; j < hi; j++ {
			t[dirty[j]] = ev.computeT(int32(dirty[j]), opt.BinIters)
		}
	})
	return t, nil
}

// DeriveFromT runs the post-kernel stages of the §5 algorithm — smoothing,
// the g± recursions and the output (18) — on a complete t-vector and
// returns the full trace. Given the t-vector a full Solve of s would have
// produced, the returned trace is bit-identical to that Solve's. The
// t slice is copied, not retained.
func DeriveFromT(s *structured.Instance, t []float64, opt Options) (*Trace, error) {
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	if len(t) != s.N {
		return nil, fmt.Errorf("core: t-vector has %d entries, instance has %d agents", len(t), s.N)
	}
	r := opt.R - 2
	tr := &Trace{R: opt.R, SmallR: r}
	tr.T = append([]float64(nil), t...)
	tr.S = smooth(s, tr.T, r)
	tr.GPlus, tr.GMinus = computeG(s, tr.S, r)
	tr.X = output(s, tr.GPlus, tr.GMinus, opt.R)
	ub := 0.0
	for u, tv := range tr.T {
		if u == 0 || tv < ub {
			ub = tv
		}
	}
	tr.UpperBound = ub
	return tr, nil
}
