package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/structured"
)

// agentBall returns the agents within `hops` agent-graph hops of root,
// where two agents are adjacent when they share a constraint or an
// objective (bipartite distance 2). The t_u recursion at radius r descends
// through alternating objective- and constraint-hops to depth ≤ 2r+1, so a
// ball of 2r+2 hops is always a recursion-closed scope.
func agentBall(s *structured.Instance, root int32, hops int) []int32 {
	seen := map[int32]bool{root: true}
	order := []int32{root}
	frontier := []int32{root}
	for h := 0; h < hops && len(frontier) > 0; h++ {
		var next []int32
		add := func(w int32) {
			if !seen[w] {
				seen[w] = true
				order = append(order, w)
				next = append(next, w)
			}
		}
		for _, v := range frontier {
			s.PeersDo(v, add)
			for _, i := range s.ConsOf[v] {
				w, _, _ := s.Partner(int(i), v)
				add(w)
			}
		}
		frontier = next
	}
	return order
}

// TestScopedEvaluatorBitIdentical: a scoped evaluator over any
// recursion-closed agent subset computes the same t_u bits as the
// full-instance evaluator, for every root and several radii.
func TestScopedEvaluatorBitIdentical(t *testing.T) {
	instances := []*structured.Instance{
		mustStructured(t, gen.TriNecklace(5)),
		mustStructured(t, gen.RandomStructured(gen.StructuredConfig{Objectives: 6, MaxDegK: 3, ExtraCons: 5}, 3)),
		mustStructured(t, gen.RandomStructured(gen.StructuredConfig{Objectives: 8, MaxDegK: 4, ExtraCons: 6}, 8)),
	}
	for ii, s := range instances {
		for _, r := range []int{0, 1, 2, 3} {
			full, err := NewEvaluator(s, r)
			if err != nil {
				t.Fatal(err)
			}
			for u := int32(0); int(u) < s.N; u++ {
				scope := agentBall(s, u, 2*r+2)
				scoped, err := NewEvaluatorScoped(s, r, scope)
				if err != nil {
					t.Fatal(err)
				}
				want := full.ComputeT(u, 60)
				got := scoped.ComputeT(u, 60)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("instance %d r=%d root %d: scoped t_u = %x, full = %x",
						ii, r, u, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestScopedEvaluatorFootprint pins the memory contract that makes N
// concurrent per-agent evaluators O(N) in total: the memo tables are sized
// by the scope, not the instance, and on a bounded-degree instance the
// recursion-closed scope of one root does not grow with N.
func TestScopedEvaluatorFootprint(t *testing.T) {
	const r = 3
	maxScope := func(n int) int {
		s := mustStructured(t, gen.TriNecklace(n))
		max := 0
		for u := int32(0); int(u) < s.N; u++ {
			scope := agentBall(s, u, 2*r+2)
			ev, err := NewEvaluatorScoped(s, r, scope)
			if err != nil {
				t.Fatal(err)
			}
			// The table covers exactly scope×(r+1) slots — the budget an
			// AllocsPerRun of the old code would have charged at N×(r+1).
			if got, want := len(ev.ev.plus), len(scope)*(r+1); got != want {
				t.Fatalf("n=%d root %d: memo table %d slots, want %d", n, u, got, want)
			}
			if len(scope) > max {
				max = len(scope)
			}
		}
		return max
	}
	small, large := maxScope(40), maxScope(80)
	if small != large {
		t.Fatalf("scope grew with N on a bounded-degree instance: %d @N=40 vs %d @N=80", small, large)
	}
	s := mustStructured(t, gen.TriNecklace(80))
	if small*(r+1) >= s.N {
		t.Fatalf("scoped tables (%d slots) are no smaller than a full-instance row (%d) — the instance is too small to pin the budget", small*(r+1), s.N)
	}
}

// TestScopedEvaluatorPanicsOutsideScope: reaching beyond the declared
// scope must fail loudly, not alias another agent's memo row.
func TestScopedEvaluatorPanicsOutsideScope(t *testing.T) {
	s := mustStructured(t, gen.TriNecklace(6))
	// Scope = only the root: any r>0 recursion leaves it immediately.
	ev, err := NewEvaluatorScoped(s, 2, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-scope evaluation did not panic")
		}
	}()
	ev.ComputeT(0, 10)
}
