package core

import (
	"context"

	"repro/internal/reuse"
	"repro/internal/structured"
)

// Scratch is the reusable working memory of one solver worker: the
// evaluator memo tables of stage 1 and the float buffers of stages 2–3.
// Buffers grow on demand and are retained between solves, so a worker that
// solves a steady stream of similarly-sized instances stops allocating in
// the kernel after warm-up. A Scratch is not safe for concurrent use; the
// zero value is ready.
type Scratch struct {
	ev       evaluator
	t        []float64
	sA, sB   []float64
	gp, gm   [][]float64
	gpB, gmB []float64
	x        []float64
	gps, gms []float64
}

// grow is the shared arena-resize primitive.
func grow(buf *[]float64, n int) []float64 { return reuse.Grow(buf, n) }

// growMatrix shapes rows/backing into a matrix with rows of length n each,
// reusing the backing array across calls.
func growMatrix(rows *[][]float64, backing *[]float64, r, n int) [][]float64 {
	b := grow(backing, r*n)
	if cap(*rows) < r {
		*rows = make([][]float64, r)
	}
	*rows = (*rows)[:r]
	for d := 0; d < r; d++ {
		(*rows)[d] = b[d*n : (d+1)*n : (d+1)*n]
	}
	return *rows
}

// SolveScratch is Solve executed by a single worker that reuses sc's
// buffers. The arithmetic — and hence every output bit — is identical to
// Solve's; only the allocation behaviour differs. The returned Trace
// aliases sc and is valid only until the next SolveScratch call on the
// same scratch; callers that keep a field beyond that must copy it.
func SolveScratch(s *structured.Instance, opt Options, sc *Scratch) (*Trace, error) {
	return SolveScratchCtx(nil, s, opt, sc)
}

// SolveScratchCtx is SolveScratch with cooperative cancellation: the t_u
// loop — the dominant cost — checks ctx between per-agent computations and
// returns ctx's error as soon as a cancellation is seen. A nil ctx skips
// every check.
func SolveScratchCtx(ctx context.Context, s *structured.Instance, opt Options, sc *Scratch) (*Trace, error) {
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	r := opt.R - 2
	tr := &Trace{R: opt.R, SmallR: r}

	sc.ev.reset(s, r)
	tr.T = grow(&sc.t, s.N)
	for u := 0; u < s.N; u++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		tr.T[u] = sc.ev.computeT(int32(u), opt.BinIters)
	}

	cur, next := grow(&sc.sA, s.N), grow(&sc.sB, s.N)
	copy(cur, tr.T)
	tr.S = smoothInto(s, r, cur, next)

	tr.GPlus = growMatrix(&sc.gp, &sc.gpB, r+1, s.N)
	tr.GMinus = growMatrix(&sc.gm, &sc.gmB, r+1, s.N)
	computeGInto(s, tr.S, r, tr.GPlus, tr.GMinus)

	tr.X = grow(&sc.x, s.N)
	outputInto(s, tr.GPlus, tr.GMinus, opt.R, tr.X, grow(&sc.gps, r+1), grow(&sc.gms, r+1))

	ub := 0.0
	for u, t := range tr.T {
		if u == 0 || t < ub {
			ub = t
		}
	}
	tr.UpperBound = ub
	return tr, nil
}
