package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/structured"
)

// TestSolveCtxAlreadyCancelled: a context that is dead on arrival stops
// the solve in the t_u loop before any real work, for both the parallel
// and the scratch paths.
func TestSolveCtxAlreadyCancelled(t *testing.T) {
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 30, MaxDegK: 3, ExtraCons: 15}, 1)
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := core.SolveCtx(ctx, s, core.Options{R: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx err = %v, want context.Canceled", err)
	}
	if _, err := core.SolveScratchCtx(ctx, s, core.Options{R: 3}, &core.Scratch{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveScratchCtx err = %v, want context.Canceled", err)
	}
}

// TestSolveCtxLiveContextMatchesSolve: threading a live context through
// the kernel must not perturb a single output bit.
func TestSolveCtxLiveContextMatchesSolve(t *testing.T) {
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 20, MaxDegK: 3, ExtraCons: 10}, 2)
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Solve(s, core.Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.SolveCtx(context.Background(), s, core.Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.UpperBound != want.UpperBound {
		t.Fatalf("UpperBound %v != %v", got.UpperBound, want.UpperBound)
	}
	for v := range want.X {
		if got.X[v] != want.X[v] {
			t.Fatalf("X[%d] = %v, want %v", v, got.X[v], want.X[v])
		}
	}
}
