package core

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/structured"
)

func TestVerifyTraceAcceptsRealRuns(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 6, MaxDegK: 4, ExtraCons: 4}, seed)
		s, err := structured.FromMMLP(in)
		if err != nil {
			t.Fatal(err)
		}
		for _, R := range []int{2, 3, 4} {
			tr, err := Solve(s, Options{R: R})
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyTrace(s, tr, 1e-9); err != nil {
				t.Fatalf("seed %d R %d: %v", seed, R, err)
			}
		}
	}
}

func TestVerifyTraceRejectsTampering(t *testing.T) {
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 5, MaxDegK: 3, ExtraCons: 3}, 1)
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	fresh := func() *Trace {
		tr, err := Solve(s, Options{R: 3})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	cases := []struct {
		name    string
		corrupt func(tr *Trace)
		keyword string
	}{
		{"negative g+", func(tr *Trace) { tr.GPlus[tr.SmallR][0] = -1 }, "Lemma"},
		{"g- recomputation", func(tr *Trace) { tr.GMinus[0][0] += 0.5 }, "(13)"},
		{"x mismatch", func(tr *Trace) { tr.X[0] += 0.7 }, ""},
		{"s above t", func(tr *Trace) { tr.S[0] = tr.T[0] + 1 }, ""},
		{"wrong level count", func(tr *Trace) { tr.GPlus = tr.GPlus[:1] }, "g-levels"},
	}
	for _, tc := range cases {
		tr := fresh()
		tc.corrupt(tr)
		err := VerifyTrace(s, tr, 1e-9)
		if err == nil {
			t.Fatalf("%s: tampered trace accepted", tc.name)
		}
		if tc.keyword != "" && !strings.Contains(err.Error(), tc.keyword) {
			t.Fatalf("%s: unexpected diagnosis %v", tc.name, err)
		}
	}
}

func TestVerifyTraceRejectsAblatedRuns(t *testing.T) {
	// The verifier must catch what the ablations break.
	for seed := int64(0); seed < 30; seed++ {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: 8, MaxDegK: 3, ExtraCons: 6}, seed)
		s, err := structured.FromMMLP(in)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := SolveAblated(s, Options{R: 3}, Ablation{NoSmoothing: true})
		if err != nil {
			t.Fatal(err)
		}
		if s.MaxViolation(tr.X) > 1e-6 {
			if err := VerifyTrace(s, tr, 1e-9); err == nil {
				t.Fatal("verifier passed an infeasible ablated run")
			}
			return
		}
	}
	t.Skip("no infeasible ablated run found in 30 seeds")
}
