package core

import "repro/internal/structured"

// Ablation switches off individual design elements of the algorithm so the
// experiments can show each one is load-bearing. All combinations still
// terminate; what breaks is feasibility or the approximation guarantee.
type Ablation struct {
	// NoSmoothing replaces s_v by t_v, skipping §5.3's minimum over the
	// radius-(4r+2) ball. This invalidates inequality (17) (s_w ≤ t_u for
	// every u near w), on which Lemmas 4–5 — and hence the feasibility
	// proof — depend: the output can violate constraints.
	NoSmoothing bool
	// Role selects the output formula:
	//   RoleAveraged — the paper's (18), the average of both role guesses;
	//   RoleDown     — x_v = (1/R) Σ_d g+_{v,d}, i.e. every agent assumes
	//                  it is a down-agent;
	//   RoleUp       — x_v = (1/R) Σ_d g−_{v,d}.
	// A single fixed role is the layered solution (20) applied without
	// knowing the layers; it is feasible only when the guess happens to be
	// globally consistent, which no local algorithm can ensure (§2) — so
	// RoleDown/RoleUp generally produce infeasible points.
	Role Role
}

// Role selects an output formula for SolveAblated.
type Role int

// Output roles.
const (
	// RoleAveraged is the paper's output (18).
	RoleAveraged Role = iota
	// RoleDown pretends every agent is a down-agent.
	RoleDown
	// RoleUp pretends every agent is an up-agent.
	RoleUp
)

// SolveAblated runs the algorithm with the given pieces disabled and
// returns the trace. With the zero Ablation it equals Solve.
func SolveAblated(s *structured.Instance, opt Options, ab Ablation) (*Trace, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	r := opt.R - 2
	tr := &Trace{R: opt.R, SmallR: r}
	tr.T = computeAllT(s, r, opt.BinIters, opt.Workers)
	if ab.NoSmoothing {
		tr.S = append([]float64(nil), tr.T...)
	} else {
		tr.S = smooth(s, tr.T, r)
	}
	tr.GPlus, tr.GMinus = computeG(s, tr.S, r)
	switch ab.Role {
	case RoleAveraged:
		tr.X = output(s, tr.GPlus, tr.GMinus, opt.R)
	case RoleDown:
		tr.X = singleRoleOutput(s, tr.GPlus, opt.R)
	case RoleUp:
		tr.X = singleRoleOutput(s, tr.GMinus, opt.R)
	}
	ub := 0.0
	for u, t := range tr.T {
		if u == 0 || t < ub {
			ub = t
		}
	}
	tr.UpperBound = ub
	return tr, nil
}

// singleRoleOutput evaluates (20) for one fixed role guess:
// x_v = (1/R) Σ_d g_{v,d} for the chosen sign.
func singleRoleOutput(s *structured.Instance, g [][]float64, R int) []float64 {
	x := make([]float64, s.N)
	for v := range x {
		sum := 0.0
		for d := range g {
			sum += g[d][v]
		}
		x[v] = sum / float64(R)
	}
	return x
}
