package core

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/structured"
)

// Locality radii of the algorithm's data flow (in graph edges). These
// quantify §1.3's observation that a local algorithm is automatically a
// dynamic graph algorithm with constant-time updates: an input change can
// only influence outputs within OutputRadius.
//
//	t_u reads the instance within TRadius(r) = 4r+3 (the tree A_u),
//	s_v additionally looks 4r+2 further (the smoothing minimum),
//	x_v chains ≤ 2r+1 g-steps of distance 2 on top of that.
func TRadius(r int) int { return 4*r + 3 }

// SRadius is the input radius of s_v.
func SRadius(r int) int { return TRadius(r) + 4*r + 2 }

// OutputRadius is the input radius of the output x_v.
func OutputRadius(r int) int { return SRadius(r) + 4*r + 2 }

// UpdateStats reports how much work an incremental update performed.
type UpdateStats struct {
	// ChangedAgents is the number of agents whose local input differs.
	ChangedAgents int
	// RecomputedT is how many t_u were recomputed (the dominant cost).
	RecomputedT int
	// TotalAgents is the instance size, for comparison.
	TotalAgents int
}

// Update incrementally recomputes a trace after a local modification of
// the instance: only agents within TRadius of a changed agent get a fresh
// t_u (the dominant cost); the cheap derived quantities (s, g, x) are
// re-evaluated from the merged t-vector. The result is identical to
// Solve(sNew, opt) — bit for bit — because t_u depends only on the
// radius-(4r+3) neighbourhood, which is unchanged for every skipped agent.
//
// sOld must be the instance old was computed from (same agent count as
// sNew and the same R); constraint and objective membership and
// coefficients may differ arbitrarily.
func Update(sOld, sNew *structured.Instance, old *Trace, opt Options) (*Trace, *UpdateStats, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, nil, err
	}
	if sOld.N != sNew.N {
		return nil, nil, fmt.Errorf("core: Update requires equal agent counts (old %d, new %d)", sOld.N, sNew.N)
	}
	if opt.R-2 != old.SmallR {
		return nil, nil, fmt.Errorf("core: Update requires the same R (old r=%d, new r=%d)", old.SmallR, opt.R-2)
	}
	r := opt.R - 2
	changed := DiffAgents(sOld, sNew)
	affected := growAgentSet(sOld, sNew, changed, TRadius(r))

	tr := &Trace{R: opt.R, SmallR: r}
	tr.T = append([]float64(nil), old.T...)
	idx := make([]int, 0, len(affected))
	for v, hit := range affected {
		if hit {
			idx = append(idx, v)
		}
	}
	par.ForEachChunk(len(idx), opt.Workers, func(lo, hi int) {
		ev := newEvaluator(sNew, r)
		for j := lo; j < hi; j++ {
			tr.T[idx[j]] = ev.computeT(int32(idx[j]), opt.BinIters)
		}
	})
	tr.S = smooth(sNew, tr.T, r)
	tr.GPlus, tr.GMinus = computeG(sNew, tr.S, r)
	tr.X = output(sNew, tr.GPlus, tr.GMinus, opt.R)
	ub := 0.0
	for u, t := range tr.T {
		if u == 0 || t < ub {
			ub = t
		}
	}
	tr.UpperBound = ub
	st := &UpdateStats{ChangedAgents: len(changed), RecomputedT: len(idx), TotalAgents: sNew.N}
	return tr, st, nil
}

// DiffAgents returns the agents whose local input (objective membership,
// peer list, constraint list or any incident coefficient) differs between
// the two instances.
func DiffAgents(a, b *structured.Instance) []int {
	var changed []int
	for v := 0; v < a.N; v++ {
		if !sameLocalInput(a, b, int32(v)) {
			changed = append(changed, v)
		}
	}
	return changed
}

// sameLocalInput compares one agent's §1.1 local input across instances.
func sameLocalInput(a, b *structured.Instance, v int32) bool {
	// Peer multiset, order-sensitively: the §5 recursions iterate members
	// in order, so order changes count as changes (they can perturb float
	// summation order).
	ka, kb := a.ObjOf[v], b.ObjOf[v]
	ma, mb := a.Objs[ka], b.Objs[kb]
	if len(ma) != len(mb) {
		return false
	}
	for j := range ma {
		if ma[j] != mb[j] {
			return false
		}
	}
	if len(a.ConsOf[v]) != len(b.ConsOf[v]) {
		return false
	}
	for j := range a.ConsOf[v] {
		ia, ib := int(a.ConsOf[v][j]), int(b.ConsOf[v][j])
		wa, ava, awa := a.Partner(ia, v)
		wb, avb, awb := b.Partner(ib, v)
		if wa != wb || ava != avb || awa != awb {
			return false
		}
	}
	return true
}

// growAgentSet expands the seed set to all agents within the given radius
// in either instance's communication graph, using distance-2 agent
// adjacency (peers and constraint partners); ⌈radius/2⌉ relaxation rounds
// over-approximate the ball, which is safe (extra recomputation only).
func growAgentSet(a, b *structured.Instance, seeds []int, radius int) []bool {
	cur := make([]bool, a.N)
	for _, v := range seeds {
		cur[v] = true
	}
	rounds := (radius + 1) / 2
	for round := 0; round < rounds; round++ {
		next := append([]bool(nil), cur...)
		mark := func(s *structured.Instance) {
			for v := 0; v < s.N; v++ {
				if !cur[v] {
					continue
				}
				s.PeersDo(int32(v), func(w int32) { next[w] = true })
				for _, i := range s.ConsOf[v] {
					w, _, _ := s.Partner(int(i), int32(v))
					next[w] = true
				}
			}
		}
		mark(a)
		mark(b)
		cur = next
	}
	return cur
}
