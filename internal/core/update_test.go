package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/structured"
)

// perturb returns a copy of the necklace instance with one constraint
// coefficient changed at objective band k0.
func perturbedNecklace(t *testing.T, m, k0 int) (*structured.Instance, *structured.Instance) {
	t.Helper()
	in := gen.TriNecklace(m)
	s1, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	mod := in.Clone()
	mod.Cons[2*k0].Terms[0].Coef = 2 // R_k0 side of {R_k0, L_k0+1}
	s2, err := structured.FromMMLP(mod)
	if err != nil {
		t.Fatal(err)
	}
	return s1, s2
}

func TestUpdateMatchesFullRecompute(t *testing.T) {
	for _, R := range []int{2, 3, 4} {
		s1, s2 := perturbedNecklace(t, 40, 7)
		old, err := Solve(s1, Options{R: R})
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Update(s1, s2, old, Options{R: R})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Solve(s2, Options{R: R})
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < s2.N; v++ {
			if got.T[v] != want.T[v] {
				t.Fatalf("R=%d: t[%d] incremental %v full %v", R, v, got.T[v], want.T[v])
			}
			if got.X[v] != want.X[v] {
				t.Fatalf("R=%d: x[%d] incremental %v full %v", R, v, got.X[v], want.X[v])
			}
		}
		if st.ChangedAgents != 2 {
			// Both endpoints of the modified constraint see a new coefficient.
			t.Fatalf("R=%d: changed agents = %d, want 2", R, st.ChangedAgents)
		}
		if st.RecomputedT >= st.TotalAgents {
			t.Fatalf("R=%d: incremental update recomputed everything (%d/%d)",
				R, st.RecomputedT, st.TotalAgents)
		}
	}
}

func TestUpdateLocalityFarOutputsUnchanged(t *testing.T) {
	// §1.3: a change can only influence outputs within OutputRadius. On a
	// large necklace, agents on the far side keep bit-identical outputs.
	R := 3
	m := 60
	s1, s2 := perturbedNecklace(t, m, 0)
	old, err := Solve(s1, Options{R: R})
	if err != nil {
		t.Fatal(err)
	}
	updated, _, err := Update(s1, s2, old, Options{R: R})
	if err != nil {
		t.Fatal(err)
	}
	// The far side of the cycle: objective band m/2. Graph distance from
	// the modified constraint is ≈ 2·(m/2) edges ≫ OutputRadius(1) = 19.
	far := 3 * (m / 2)
	for v := far; v < far+3; v++ {
		if updated.X[v] != old.X[v] {
			t.Fatalf("far agent %d output changed: %v → %v", v, old.X[v], updated.X[v])
		}
		if updated.T[v] != old.T[v] {
			t.Fatalf("far agent %d t changed", v)
		}
	}
	// Near the change, outputs do move (the perturbation matters).
	moved := false
	for v := 0; v < 6; v++ {
		if updated.X[v] != old.X[v] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("perturbation had no effect near the change")
	}
}

func TestUpdateRejectsMismatches(t *testing.T) {
	s1, s2 := perturbedNecklace(t, 10, 2)
	old, err := Solve(s1, Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Update(s1, s2, old, Options{R: 4}); err == nil {
		t.Fatal("R mismatch accepted")
	}
	small, err := structured.FromMMLP(gen.TriNecklace(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Update(s1, small, old, Options{R: 3}); err == nil {
		t.Fatal("agent count mismatch accepted")
	}
}

func TestDiffAgentsOnIdenticalInstances(t *testing.T) {
	s1, err := structured.FromMMLP(gen.TriNecklace(8))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := structured.FromMMLP(gen.TriNecklace(8))
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffAgents(s1, s2); len(d) != 0 {
		t.Fatalf("identical instances diff: %v", d)
	}
	// An update over identical instances recomputes nothing.
	old, err := Solve(s1, Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := Update(s1, s2, old, Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.RecomputedT != 0 {
		t.Fatalf("recomputed %d t-values for a no-op change", st.RecomputedT)
	}
	for v := range got.X {
		if got.X[v] != old.X[v] {
			t.Fatalf("no-op update changed x[%d]", v)
		}
	}
}

func TestRadiiFormulas(t *testing.T) {
	for r := 0; r <= 4; r++ {
		if TRadius(r) != 4*r+3 {
			t.Fatalf("TRadius(%d) = %d", r, TRadius(r))
		}
		if SRadius(r) != 8*r+5 {
			t.Fatalf("SRadius(%d) = %d", r, SRadius(r))
		}
		if OutputRadius(r) != 12*r+7 {
			t.Fatalf("OutputRadius(%d) = %d", r, OutputRadius(r))
		}
	}
}
