package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
	"repro/internal/obs"
)

// DefaultCooldown is how long a member stays marked down after a transport
// failure before the client routes to it again. Long enough that a crashed
// shard is not hammered on every request, short enough that a restarted one
// rejoins within a typical health-check interval.
const DefaultCooldown = 5 * time.Second

// DefaultDialTimeout bounds connection establishment to a member. A member
// that silently drops packets (no RST — a dead host, a firewall change)
// must fail the dial quickly so Forward can mark it down and the caller
// can fail over; without this bound the kernel's connect timeout (minutes)
// would stall every request routed to the black hole. Only the dial is
// bounded: response time is not, because a solve legitimately computes for
// as long as the instance demands before the first header is written.
const DefaultDialTimeout = 2 * time.Second

// ErrCutoverInProgress is returned by Propose while a previous cutover is
// still draining. Ring changes are serialized: the drain invariant — every
// request runs against exactly one of (old, new) and the old ring empties
// monotonically — holds for one transition at a time.
var ErrCutoverInProgress = errors.New("shard: ring cutover already in progress")

// ErrRetryBudgetExhausted is returned by DoFuncOn when a retry hop is due
// but the token bucket is empty: the fleet is failing broadly enough that
// retrying would amplify the outage instead of riding it out. The serving
// layer maps it to 503 — fail fast, let the client back off.
var ErrRetryBudgetExhausted = errors.New("shard: retry budget exhausted")

// Retry-backoff defaults, used when ClientOptions enables backoff without
// overriding the shape: first retry hop waits ~DefaultRetryBackoff,
// doubling per hop up to DefaultRetryBackoffMax, each wait half fixed and
// half deterministic jitter.
const (
	DefaultRetryBackoff    = 25 * time.Millisecond
	DefaultRetryBackoffMax = time.Second
)

// DefaultRetryRefill is the fraction of a retry token returned to the
// budget per successful request. At 0.1, sustaining one retry per ten
// successes is free; anything worse eats into the burst.
const DefaultRetryRefill = 0.1

// Stats is a snapshot of the client's routing counters.
type Stats struct {
	// Routed counts key→member assignments answered (Owner calls).
	Routed int64
	// Forwarded counts HTTP forwards attempted, including retries.
	Forwarded int64
	// Retried counts forwards that were re-sent to a later replica after a
	// transport failure on an earlier one.
	Retried int64
	// ShardDown counts transitions of a member into the down state.
	ShardDown int64
	// BudgetExhausted counts requests failed fast because a retry hop was
	// due and the retry budget was empty.
	BudgetExhausted int64
}

// RingVersion is one immutable generation of the fleet topology: a ring
// plus a version number and the count of requests still pinned to it. The
// client hands every request a *RingVersion via Acquire, so a cutover can
// route new work by the new assignment while in-flight work drains on the
// old one — no request ever sees a half-applied topology.
type RingVersion struct {
	version  uint64
	ring     *Ring
	inflight atomic.Int64
}

// Version returns the generation number (the first ring is version 1).
func (rv *RingVersion) Version() uint64 { return rv.version }

// Ring returns the immutable ring of this generation.
func (rv *RingVersion) Ring() *Ring { return rv.ring }

// Inflight returns the number of requests currently pinned to this
// generation.
func (rv *RingVersion) Inflight() int64 { return rv.inflight.Load() }

// Cutover is a snapshot of an in-progress ring transition, for the admin
// surface: requests admitted before the flip drain on From while new ones
// route by To.
type Cutover struct {
	// From/To are the generation numbers of the draining and current rings.
	From, To uint64
	// FromMembers/ToMembers are the member sets of the two rings.
	FromMembers, ToMembers []string
	// Draining is the number of requests still pinned to the old ring.
	Draining int64
}

// ClientOptions configures a Client.
type ClientOptions struct {
	// Cooldown is how long a member stays down after a transport failure
	// (0 = DefaultCooldown).
	Cooldown time.Duration
	// DialTimeout bounds connection establishment to a member
	// (0 = DefaultDialTimeout). Ignored when Transport is set.
	DialTimeout time.Duration
	// Transport overrides the HTTP transport (nil = a keep-alive transport
	// with a generous idle pool per shard, so steady traffic reuses
	// connections instead of re-dialling, and a bounded dial so a
	// blackholed member fails over promptly).
	Transport http.RoundTripper
	// Replication is the number of ring successors that hold each key
	// (≤ 0 means 1, i.e. no replication). DoFunc retries target the
	// replica set first: any of the R successors can answer a key from a
	// warm cache, so a dead primary costs a hop, not a recompute.
	Replication int
	// OnCutoverDone, when set, runs (on its own goroutine) after the last
	// request pinned to an old ring drains following a Propose. The router
	// uses it to tell shards to prune cache entries they no longer own.
	OnCutoverDone func(old, new *Ring)
	// RetryBudget bounds retry amplification: a token bucket holding this
	// many tokens (the burst), where every retry hop — any dial after a
	// request's first — spends one, and every successful request deposits
	// RetryRefill back, up to the burst. When a hop is due and the bucket
	// is empty the request fails fast with ErrRetryBudgetExhausted, so a
	// fleet-wide brownout degrades into fast 503s instead of a retry storm
	// that multiplies the load on whatever is still standing. 0 disables
	// budgeting (every retry is free, the pre-budget behavior).
	RetryBudget int
	// RetryRefill is the fraction of a token deposited per success
	// (0 = DefaultRetryRefill). Only meaningful with RetryBudget > 0.
	RetryRefill float64
	// RetryBackoff enables capped exponential backoff between replica
	// attempts: retry hop n waits base<<(n-1) capped at RetryBackoffMax,
	// half fixed and half jitter drawn from a Seed-determined stream (so a
	// run replays identically). 0 disables the sleeps — retries remain
	// immediate, which is what in-process tests want.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the backoff growth (0 = DefaultRetryBackoffMax).
	RetryBackoffMax time.Duration
	// Seed seeds the backoff jitter stream (0 = seed 1).
	Seed int64
}

// Client routes keys to fleet members and forwards HTTP requests to them.
// It layers mutable health state over immutable Rings: a member that
// fails at the transport level (connection refused, reset, timeout — not an
// HTTP error status, which proves the shard is alive) is marked down for a
// cooldown and skipped by Owner and Do until it expires or a later forward
// succeeds.
//
// The topology itself is versioned: the client starts at ring version 1 and
// Propose installs version n+1 while version n drains (see RingVersion).
// Callers that make several routing decisions for one request — the router's
// batch handler groups jobs by owner, forwards, then re-forwards stragglers —
// pin a generation with Acquire/Release so all decisions agree. Safe for
// concurrent use.
type Client struct {
	hc          *http.Client
	cooldown    time.Duration
	replication int
	now         func() time.Time                          // injectable for tests
	sleep       func(context.Context, time.Duration) bool // injectable for tests; false = ctx done

	// Retry budget (milli-token accounting so fractional refills need no
	// floats on the hot path): budgetCap == 0 disables.
	budgetCap    int64 // capacity in milli-tokens
	budgetRefill int64 // milli-tokens deposited per success
	budgetTokens atomic.Int64

	// Backoff shape; backoffBase == 0 disables the sleeps.
	backoffBase, backoffMax time.Duration
	rngMu                   sync.Mutex // rand.Rand is not goroutine-safe
	rng                     *rand.Rand

	cur      atomic.Pointer[RingVersion]
	draining atomic.Pointer[RingVersion] // non-nil while a cutover drains
	cutMu    sync.Mutex                  // serializes Propose and cutover completion
	onDone   func(old, new *Ring)

	mu        sync.Mutex
	downUntil map[string]time.Time

	routed, forwarded, retried, shardDown, budgetExhausted atomic.Int64
	forwardHist                                            obs.Histogram
}

// NewClient builds a client over ring, which becomes generation 1.
func NewClient(ring *Ring, o ClientOptions) *Client {
	if o.Cooldown <= 0 {
		o.Cooldown = DefaultCooldown
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	if o.Replication <= 0 {
		o.Replication = 1
	}
	tr := o.Transport
	if tr == nil {
		tr = &http.Transport{
			DialContext:         (&net.Dialer{Timeout: o.DialTimeout, KeepAlive: 30 * time.Second}).DialContext,
			MaxIdleConns:        4 * len(ring.Members()),
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	if o.RetryRefill <= 0 {
		o.RetryRefill = DefaultRetryRefill
	}
	if o.RetryBackoffMax <= 0 {
		o.RetryBackoffMax = DefaultRetryBackoffMax
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	c := &Client{
		hc:           &http.Client{Transport: tr},
		cooldown:     o.Cooldown,
		replication:  o.Replication,
		now:          time.Now,
		sleep:        sleepCtx,
		budgetRefill: int64(o.RetryRefill * 1000),
		backoffBase:  o.RetryBackoff,
		backoffMax:   o.RetryBackoffMax,
		rng:          rand.New(rand.NewSource(o.Seed)),
		onDone:       o.OnCutoverDone,
		downUntil:    make(map[string]time.Time),
	}
	if o.RetryBudget > 0 {
		c.budgetCap = int64(o.RetryBudget) * 1000
		c.budgetTokens.Store(c.budgetCap) // the bucket starts full
	}
	c.cur.Store(&RingVersion{version: 1, ring: ring})
	return c
}

// sleepCtx is the production sleep: waits d or until ctx is done,
// reporting whether the full wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// Ring returns the current generation's ring.
func (c *Client) Ring() *Ring { return c.cur.Load().ring }

// Version returns the current generation number.
func (c *Client) Version() uint64 { return c.cur.Load().version }

// Replication returns the configured replica-set size.
func (c *Client) Replication() int { return c.replication }

// Acquire pins the caller to the current ring generation; every routing
// decision made against the returned RingVersion sees one consistent
// topology. The caller must Release exactly once — a cutover completes
// only when the old generation's pin count drains to zero.
func (c *Client) Acquire() *RingVersion {
	for {
		rv := c.cur.Load()
		rv.inflight.Add(1)
		if c.cur.Load() == rv {
			return rv
		}
		// A Propose slipped between the load and the increment; the pin
		// may have landed on a generation that is already draining (or
		// even finished). Undo it and pin the new current instead.
		c.Release(rv)
	}
}

// Release unpins a generation acquired with Acquire. Releasing the last
// pin of a draining generation completes the cutover.
func (c *Client) Release(rv *RingVersion) {
	if rv.inflight.Add(-1) == 0 && c.draining.Load() == rv {
		c.finishCutover(rv)
	}
}

// finishCutover retires old if it is still the draining generation and
// truly idle, then fires the completion callback.
func (c *Client) finishCutover(old *RingVersion) {
	c.cutMu.Lock()
	if c.draining.Load() != old || old.inflight.Load() != 0 {
		c.cutMu.Unlock()
		return
	}
	c.draining.Store(nil)
	cur := c.cur.Load()
	done := c.onDone
	c.cutMu.Unlock()
	if done != nil {
		go done(old.ring, cur.ring)
	}
}

// Propose installs a new member set as the next ring generation. New
// Acquires route by the new assignment immediately; requests pinned to the
// old generation drain on the old one, and when the last drains the
// cutover completes (OnCutoverDone fires). Returns ErrCutoverInProgress
// while a previous transition is still draining — topology changes are
// applied one at a time.
func (c *Client) Propose(members []string) (*RingVersion, error) {
	c.cutMu.Lock()
	if c.draining.Load() != nil {
		c.cutMu.Unlock()
		return nil, ErrCutoverInProgress
	}
	cur := c.cur.Load()
	ring, err := New(members, cur.ring.Replicas())
	if err != nil {
		c.cutMu.Unlock()
		return nil, err
	}
	next := &RingVersion{version: cur.version + 1, ring: ring}
	c.draining.Store(cur)
	c.cur.Store(next)
	c.cutMu.Unlock()
	if cur.inflight.Load() == 0 {
		c.finishCutover(cur)
	}
	return next, nil
}

// Draining snapshots the in-progress cutover, or nil when the topology is
// stable.
func (c *Client) Draining() *Cutover {
	old := c.draining.Load()
	if old == nil {
		return nil
	}
	cur := c.cur.Load()
	return &Cutover{
		From:        old.version,
		To:          cur.version,
		FromMembers: old.ring.Members(),
		ToMembers:   cur.ring.Members(),
		Draining:    old.inflight.Load(),
	}
}

// Stats snapshots the routing counters.
func (c *Client) Stats() Stats {
	return Stats{
		Routed:          c.routed.Load(),
		Forwarded:       c.forwarded.Load(),
		Retried:         c.retried.Load(),
		ShardDown:       c.shardDown.Load(),
		BudgetExhausted: c.budgetExhausted.Load(),
	}
}

// budgetWithdraw spends one retry token, reporting whether one was
// available. Always true when budgeting is disabled.
func (c *Client) budgetWithdraw() bool {
	if c.budgetCap == 0 {
		return true
	}
	for {
		cur := c.budgetTokens.Load()
		if cur < 1000 {
			return false
		}
		if c.budgetTokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}

// budgetDeposit returns the per-success refill to the bucket, up to the
// burst capacity.
func (c *Client) budgetDeposit() {
	if c.budgetCap == 0 {
		return
	}
	for {
		cur := c.budgetTokens.Load()
		next := cur + c.budgetRefill
		if next > c.budgetCap {
			next = c.budgetCap
		}
		if next == cur || c.budgetTokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// BudgetTokens returns the retry tokens currently available (fractional;
// the burst capacity when budgeting is disabled is 0). For tests and the
// admin surface.
func (c *Client) BudgetTokens() float64 {
	return float64(c.budgetTokens.Load()) / 1000
}

// backoff waits before retry hop n (n ≥ 1): base<<(n-1) capped at max,
// half fixed plus half deterministic jitter — full-deterministic waits
// would re-synchronize the very thundering herd the backoff is spreading
// out. Reports false when ctx expired before the wait elapsed. No-op
// when backoff is disabled.
func (c *Client) backoff(ctx context.Context, hop int) bool {
	if c.backoffBase <= 0 {
		return true
	}
	d := c.backoffMax
	if shift := uint(hop - 1); shift < 20 { // past 2^20×base it's the cap regardless
		if scaled := c.backoffBase << shift; scaled < d {
			d = scaled
		}
	}
	half := d / 2
	c.rngMu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(half) + 1))
	c.rngMu.Unlock()
	return c.sleep(ctx, half+jitter)
}

// down reports whether m is currently marked down.
func (c *Client) down(m string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	until, ok := c.downUntil[m]
	if !ok {
		return false
	}
	if c.now().After(until) {
		delete(c.downUntil, m)
		return false
	}
	return true
}

// Down reports whether member is currently marked down. Exported for
// callers that want to skip optional traffic (replica warming) to a corpse.
func (c *Client) Down(member string) bool { return c.down(member) }

// markDown records a transport failure against m. A failure observed while
// m is already inside an active cooldown window is not a new outage and
// must not slide the window forward: DoFunc's desperation passes re-probe
// cooled-down members on every request, so extending the window on each
// failed probe would keep a member that recovers on schedule routed-around
// for far longer than the configured cooldown. A failure after the window
// has lapsed (stale entry not yet swept by down) is a fresh transition and
// both restarts the window and counts in ShardDown.
func (c *Client) markDown(m string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if until, was := c.downUntil[m]; was && now.Before(until) {
		return
	}
	c.shardDown.Add(1)
	c.downUntil[m] = now.Add(c.cooldown)
}

// markUp clears m's down state after a successful forward.
func (c *Client) markUp(m string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.downUntil, m)
}

// Healthy returns the current ring's members not currently marked down, in
// canonical order.
func (c *Client) Healthy() []string {
	members := c.Ring().Members()
	out := make([]string, 0, len(members))
	for _, m := range members {
		if !c.down(m) {
			out = append(out, m)
		}
	}
	return out
}

// Owner routes k on the current generation; see OwnerOn.
func (c *Client) Owner(k canon.Key) string {
	return c.OwnerOn(c.cur.Load(), k)
}

// OwnerOn returns the healthy member that owns k on generation rv: k's
// ring owner when it is up, otherwise the first healthy successor. When
// every member is down the plain ring owner is returned — the caller's
// forward will fail fast and surface the outage. Routing around a down
// owner trades strict cache partitioning for availability: the stand-in
// replica may cache keys the owner also holds, and ownership snaps back
// when the owner recovers.
func (c *Client) OwnerOn(rv *RingVersion, k canon.Key) string {
	c.routed.Add(1)
	// Fast path: the ring owner is healthy (the steady state). Owner runs
	// once per routed job, so it must not pay the successor walk's
	// allocations just to take its first element.
	owner := rv.ring.Owner(k)
	if !c.down(owner) {
		return owner
	}
	succ := rv.ring.Successors(k, len(rv.ring.Members()))
	for _, m := range succ {
		if !c.down(m) {
			return m
		}
	}
	return succ[0]
}

// ReplicaSet returns the members that hold k on generation rv: its first
// min(Replication, fleet size) distinct ring successors, owner first. Any
// of them can answer k from a warm cache once write-through has run.
func (c *Client) ReplicaSet(rv *RingVersion, k canon.Key) []string {
	return rv.ring.Successors(k, c.replication)
}

// Forward POSTs body to one member and returns the response. A transport
// failure marks the member down; an HTTP response of any status marks it
// up. The caller owns the response body. A request ID stashed in ctx with
// obs.WithTraceID rides along as the X-Mmlp-Trace header, so one ID
// follows the request from the router into the owning shard's trace and
// slow-log; successful forwards feed the forward-latency histogram
// (sent → response headers received).
func (c *Client) Forward(ctx context.Context, member, path, contentType string, body []byte) (*http.Response, error) {
	c.forwarded.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+member+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
	// Propagate the remaining time budget so the shard can abandon work
	// that can no longer make it back in time. Clamped at 1ms: an already
	// expired ctx fails the Do below on its own, and 0 would read as "no
	// deadline" on the far side.
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		req.Header.Set(obs.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil { // the shard failed, not the caller
			c.markDown(member)
		}
		return nil, err
	}
	c.forwardHist.Observe(time.Since(start))
	c.markUp(member)
	return resp, nil
}

// ForwardHist snapshots the forward-latency histogram.
func (c *Client) ForwardHist() *obs.HistRaw {
	return c.forwardHist.Snapshot()
}

// Get fetches path from one member (health probes, /statsz scrapes). Like
// Forward it maintains the member's health state.
func (c *Client) Get(ctx context.Context, member, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+member+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.markDown(member)
		}
		return nil, err
	}
	c.markUp(member)
	return resp, nil
}

// DoFunc drives fn on the current generation; see DoFuncOn.
func (c *Client) DoFunc(ctx context.Context, k canon.Key, fn func(member string) (done bool, err error)) error {
	rv := c.Acquire()
	defer c.Release(rv)
	return c.DoFuncOn(ctx, rv, k, fn)
}

// DoFuncOn drives fn against k's members on generation rv until one
// handles the request. fn returns done=true when the request was handled
// on that member — even partially, so a broken mid-stream response is not
// replayed wholesale — and done=false with an error to advance. fn is
// expected to reach the member through Forward/Get so transport failures
// feed the health state.
//
// The walk targets the replica set first: k's first Replication distinct
// ring successors all hold k after write-through, so any of them answers
// from a warm cache. Order of passes: healthy replicas in ring order, then
// healthy non-replicas (an availability backstop that recomputes rather
// than fails), then cooled-down replicas (they may have recovered, and a
// fully-down fleet should surface its real transport error rather than a
// fabricated one), then cooled-down non-replicas. With Replication 1 this
// is exactly the classic order: healthy members in ring order, then the
// cooled-down ones. Each member is dialled at most once. Returns fn's
// terminal error, or the last per-replica error when every member failed.
func (c *Client) DoFuncOn(ctx context.Context, rv *RingVersion, k canon.Key, fn func(member string) (done bool, err error)) error {
	ring := rv.ring
	members := ring.Successors(k, len(ring.Members()))
	rep := c.replication
	if rep > len(members) {
		rep = len(members)
	}
	tried := make([]bool, len(members))
	var lastErr error
	dials := 0
	for pass := 0; pass < 4; pass++ {
		lo, hi := 0, rep
		if pass == 1 || pass == 3 {
			lo, hi = rep, len(members)
		}
		probeCooled := pass >= 2
		for i := lo; i < hi; i++ {
			if tried[i] {
				continue
			}
			if !probeCooled && c.down(members[i]) {
				continue
			}
			tried[i] = true
			if dials > 0 {
				// A retry hop: it must clear the budget, then wait out
				// the backoff. A budget refusal is terminal — retrying
				// into a broad failure amplifies it — and does not count
				// in Retried (no forward happens).
				if !c.budgetWithdraw() {
					c.budgetExhausted.Add(1)
					if lastErr != nil {
						return fmt.Errorf("%w (after %d attempts): %w", ErrRetryBudgetExhausted, dials, lastErr)
					}
					return ErrRetryBudgetExhausted
				}
				if !c.backoff(ctx, dials) {
					if lastErr != nil {
						return lastErr
					}
					return ctx.Err()
				}
				c.retried.Add(1)
			}
			dials++
			done, err := fn(members[i])
			if done {
				if err == nil {
					c.budgetDeposit()
				}
				return err
			}
			lastErr = err
			if ctx.Err() != nil {
				return lastErr
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard: no members")
	}
	return lastErr
}

// Do forwards body on the current generation; see DoOn.
func (c *Client) Do(ctx context.Context, k canon.Key, path, contentType string, body []byte) (*http.Response, string, error) {
	rv := c.Acquire()
	defer c.Release(rv)
	return c.DoOn(ctx, rv, k, path, contentType, body)
}

// DoOn forwards body to k's owner on generation rv, retrying through the
// replica set (then the rest of the ring) when a member fails at the
// transport level. The solver is a pure function of the request, so
// re-sending to a different shard is always safe. Returns the first HTTP
// response together with the member that produced it, or the last
// transport error once every member has failed.
func (c *Client) DoOn(ctx context.Context, rv *RingVersion, k canon.Key, path, contentType string, body []byte) (*http.Response, string, error) {
	var resp *http.Response
	var member string
	err := c.DoFuncOn(ctx, rv, k, func(m string) (bool, error) {
		r, err := c.Forward(ctx, m, path, contentType, body)
		if err != nil {
			return false, err
		}
		resp, member = r, m
		return true, nil
	})
	if resp == nil {
		return nil, "", err
	}
	return resp, member, nil
}
