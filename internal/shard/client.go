package shard

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/canon"
)

// DefaultCooldown is how long a member stays marked down after a transport
// failure before the client routes to it again. Long enough that a crashed
// shard is not hammered on every request, short enough that a restarted one
// rejoins within a typical health-check interval.
const DefaultCooldown = 5 * time.Second

// DefaultDialTimeout bounds connection establishment to a member. A member
// that silently drops packets (no RST — a dead host, a firewall change)
// must fail the dial quickly so Forward can mark it down and the caller
// can fail over; without this bound the kernel's connect timeout (minutes)
// would stall every request routed to the black hole. Only the dial is
// bounded: response time is not, because a solve legitimately computes for
// as long as the instance demands before the first header is written.
const DefaultDialTimeout = 2 * time.Second

// Stats is a snapshot of the client's routing counters.
type Stats struct {
	// Routed counts key→member assignments answered (Owner calls).
	Routed int64
	// Forwarded counts HTTP forwards attempted, including retries.
	Forwarded int64
	// Retried counts forwards that were re-sent to a later replica after a
	// transport failure on an earlier one.
	Retried int64
	// ShardDown counts transitions of a member into the down state.
	ShardDown int64
}

// ClientOptions configures a Client.
type ClientOptions struct {
	// Cooldown is how long a member stays down after a transport failure
	// (0 = DefaultCooldown).
	Cooldown time.Duration
	// DialTimeout bounds connection establishment to a member
	// (0 = DefaultDialTimeout). Ignored when Transport is set.
	DialTimeout time.Duration
	// Transport overrides the HTTP transport (nil = a keep-alive transport
	// with a generous idle pool per shard, so steady traffic reuses
	// connections instead of re-dialling, and a bounded dial so a
	// blackholed member fails over promptly).
	Transport http.RoundTripper
}

// Client routes keys to fleet members and forwards HTTP requests to them.
// It layers mutable health state over an immutable Ring: a member that
// fails at the transport level (connection refused, reset, timeout — not an
// HTTP error status, which proves the shard is alive) is marked down for a
// cooldown and skipped by Owner and Do until it expires or a later forward
// succeeds. Safe for concurrent use.
type Client struct {
	ring     *Ring
	hc       *http.Client
	cooldown time.Duration
	now      func() time.Time // injectable for tests

	mu        sync.Mutex
	downUntil map[string]time.Time

	routed, forwarded, retried, shardDown atomic.Int64
}

// NewClient builds a client over ring.
func NewClient(ring *Ring, o ClientOptions) *Client {
	if o.Cooldown <= 0 {
		o.Cooldown = DefaultCooldown
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = DefaultDialTimeout
	}
	tr := o.Transport
	if tr == nil {
		tr = &http.Transport{
			DialContext:         (&net.Dialer{Timeout: o.DialTimeout, KeepAlive: 30 * time.Second}).DialContext,
			MaxIdleConns:        4 * len(ring.Members()),
			MaxIdleConnsPerHost: 4,
			IdleConnTimeout:     90 * time.Second,
		}
	}
	return &Client{
		ring:      ring,
		hc:        &http.Client{Transport: tr},
		cooldown:  o.Cooldown,
		now:       time.Now,
		downUntil: make(map[string]time.Time),
	}
}

// Ring returns the client's ring.
func (c *Client) Ring() *Ring { return c.ring }

// Stats snapshots the routing counters.
func (c *Client) Stats() Stats {
	return Stats{
		Routed:    c.routed.Load(),
		Forwarded: c.forwarded.Load(),
		Retried:   c.retried.Load(),
		ShardDown: c.shardDown.Load(),
	}
}

// down reports whether m is currently marked down.
func (c *Client) down(m string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	until, ok := c.downUntil[m]
	if !ok {
		return false
	}
	if c.now().After(until) {
		delete(c.downUntil, m)
		return false
	}
	return true
}

// markDown records a transport failure against m.
func (c *Client) markDown(m string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, was := c.downUntil[m]; !was {
		c.shardDown.Add(1)
	}
	c.downUntil[m] = c.now().Add(c.cooldown)
}

// markUp clears m's down state after a successful forward.
func (c *Client) markUp(m string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.downUntil, m)
}

// Healthy returns the members not currently marked down, in canonical
// order.
func (c *Client) Healthy() []string {
	out := make([]string, 0, len(c.ring.Members()))
	for _, m := range c.ring.Members() {
		if !c.down(m) {
			out = append(out, m)
		}
	}
	return out
}

// Owner returns the healthy member that owns k: k's ring owner when it is
// up, otherwise the first healthy successor. When every member is down the
// plain ring owner is returned — the caller's forward will fail fast and
// surface the outage. Routing around a down owner trades strict cache
// partitioning for availability: the stand-in replica may cache keys the
// owner also holds, and ownership snaps back when the owner recovers.
func (c *Client) Owner(k canon.Key) string {
	c.routed.Add(1)
	// Fast path: the ring owner is healthy (the steady state). Owner runs
	// once per routed job, so it must not pay the successor walk's
	// allocations just to take its first element.
	owner := c.ring.Owner(k)
	if !c.down(owner) {
		return owner
	}
	succ := c.ring.Successors(k, len(c.ring.Members()))
	for _, m := range succ {
		if !c.down(m) {
			return m
		}
	}
	return succ[0]
}

// Forward POSTs body to one member and returns the response. A transport
// failure marks the member down; an HTTP response of any status marks it
// up. The caller owns the response body.
func (c *Client) Forward(ctx context.Context, member, path, contentType string, body []byte) (*http.Response, error) {
	c.forwarded.Add(1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+member+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil { // the shard failed, not the caller
			c.markDown(member)
		}
		return nil, err
	}
	c.markUp(member)
	return resp, nil
}

// Get fetches path from one member (health probes, /statsz scrapes). Like
// Forward it maintains the member's health state.
func (c *Client) Get(ctx context.Context, member, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+member+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			c.markDown(member)
		}
		return nil, err
	}
	c.markUp(member)
	return resp, nil
}

// DoFunc drives fn against k's replicas in ring order until one handles
// the request. fn returns done=true when the request was handled on that
// member — even partially, so a broken mid-stream response is not replayed
// wholesale — and done=false with an error to advance to the next replica.
// fn is expected to reach the member through Forward/Get so transport
// failures feed the health state. The first pass tries the healthy
// members; the second tries the ones that were in cooldown — they may have
// recovered, and a fully-down fleet should surface its real transport
// error rather than a fabricated one. Each member is dialled at most once.
// Returns fn's terminal error, or the last per-replica error when every
// member failed.
func (c *Client) DoFunc(ctx context.Context, k canon.Key, fn func(member string) (done bool, err error)) error {
	members := c.ring.Successors(k, len(c.ring.Members()))
	skipped := make([]bool, len(members))
	var lastErr error
	tried := 0
	for pass := 0; pass < 2; pass++ {
		for i, m := range members {
			if pass == 0 {
				if c.down(m) {
					skipped[i] = true
					continue
				}
			} else if !skipped[i] {
				continue // already failed in pass 0; don't re-dial the corpse
			}
			if tried > 0 {
				c.retried.Add(1)
			}
			tried++
			done, err := fn(m)
			if done {
				return err
			}
			lastErr = err
			if ctx.Err() != nil {
				return lastErr
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard: no members")
	}
	return lastErr
}

// Do forwards body to k's owner, retrying on the next replicas in ring
// order when a member fails at the transport level. The solver is a pure
// function of the request, so re-sending to a different shard is always
// safe. Returns the first HTTP response together with the member that
// produced it, or the last transport error once every member has failed.
func (c *Client) Do(ctx context.Context, k canon.Key, path, contentType string, body []byte) (*http.Response, string, error) {
	var resp *http.Response
	var member string
	err := c.DoFunc(ctx, k, func(m string) (bool, error) {
		r, err := c.Forward(ctx, m, path, contentType, body)
		if err != nil {
			return false, err
		}
		resp, member = r, m
		return true, nil
	})
	if resp == nil {
		return nil, "", err
	}
	return resp, member, nil
}
