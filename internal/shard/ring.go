// Package shard spreads a key space across a fleet of solver processes so
// that N mmlpserve shards behave like one big pool with one partitioned
// result cache. The paper's algorithm is local — each agent decides from a
// constant-radius neighbourhood — so solving parallelises across machines
// as naturally as across goroutines; what the fleet needs from this package
// is only a deterministic, stable answer to "which process owns this
// problem?".
//
// Keys are canon.Key values: the canonical (instance, options) hash the
// result cache already computes. Routing by the canonical key (rather than,
// say, a raw body hash) means every syntactic spelling of one mathematical
// problem — rows permuted, terms reordered — lands on the same shard, so
// each shard's local result cache becomes a partition of one fleet-wide
// cache with no duplicate entries across processes.
//
// The assignment is a consistent-hash ring: every member is planted at
// Replicas pseudo-random points (virtual nodes) on a 2^64 circle, a key
// sits at the point named by its leading 8 bytes, and the key's owner is
// the member whose point follows next clockwise. The construction is a
// pure function of (members, replicas) — no seeds, no map iteration — so
// every process that builds the ring from the same flag values computes the
// same assignment, across restarts and across machines. Removing a member
// reassigns only the arcs it owned (≈ 1/N of the key space); every other
// key keeps its owner, so a shard failure invalidates only that shard's
// cache partition.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"

	"repro/internal/canon"
)

// DefaultReplicas is the virtual-node count per member. 128 points per
// member keeps the expected load imbalance of a small fleet within a few
// percent while the ring stays tiny (N·128 16-byte points).
const DefaultReplicas = 128

// point is one virtual node: a position on the 2^64 circle and the member
// planted there.
type point struct {
	pos    uint64
	member int // index into Ring.members
}

// Ring is an immutable consistent-hash ring. Build one with New; health
// tracking lives in Client, so a Ring shared across goroutines needs no
// locking.
type Ring struct {
	members  []string
	replicas int
	points   []point // sorted by pos
}

// New builds the ring for the given member addresses. Members must be
// non-empty and distinct; replicas ≤ 0 selects DefaultReplicas. The member
// order given by the caller is irrelevant: points depend only on the member
// strings, so every process configured with the same set computes the same
// ring.
func New(members []string, replicas int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one member")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	ms := slices.Clone(members)
	slices.Sort(ms)
	for i, m := range ms {
		if m == "" {
			return nil, fmt.Errorf("shard: empty member address")
		}
		if i > 0 && ms[i-1] == m {
			return nil, fmt.Errorf("shard: duplicate member %q", m)
		}
	}
	r := &Ring{members: ms, replicas: replicas, points: make([]point, 0, len(ms)*replicas)}
	for mi, m := range ms {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{pos: vnodePos(m, v), member: mi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// A 64-bit collision between different members is vanishingly rare
		// but must not make the assignment depend on sort stability.
		return r.members[r.points[i].member] < r.members[r.points[j].member]
	})
	return r, nil
}

// vnodePos hashes (member, vnode) to a circle position. SHA-256 keeps the
// point distribution uniform and the construction obviously seed-free; the
// ring is built once per process, so the hash cost is irrelevant.
func vnodePos(member string, vnode int) uint64 {
	h := sha256.New()
	h.Write([]byte("mmlp-ring/v1\x00"))
	h.Write([]byte(member))
	var buf [9]byte
	buf[0] = 0
	n := binary.PutUvarint(buf[1:], uint64(vnode))
	h.Write(buf[:1+n])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return binary.BigEndian.Uint64(sum[:8])
}

// Members returns the member addresses in canonical (sorted) order. The
// slice is shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Replicas returns the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// pos places a key on the circle: its leading 8 bytes, big-endian. canon
// keys are SHA-256 outputs, so the prefix is uniform on the circle.
func pos(k canon.Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }

// successor returns the index in points of the first virtual node at or
// after p, wrapping past the top of the circle.
func (r *Ring) successor(p uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= p })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the member that owns k.
func (r *Ring) Owner(k canon.Key) string {
	return r.members[r.points[r.successor(pos(k))].member]
}

// Successors returns up to n distinct members in ring order starting at
// k's owner: the owner first, then the members that would inherit k if the
// ones before them disappeared. This is the retry order for a down shard.
func (r *Ring) Successors(k canon.Key, n int) []string {
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.successor(pos(k)); len(out) < n && i < len(r.points); i++ {
		pt := r.points[(start+i)%len(r.points)]
		if !seen[pt.member] {
			seen[pt.member] = true
			out = append(out, r.members[pt.member])
		}
	}
	return out
}
