package shard

import (
	"context"
	"testing"
	"time"
)

// clientOverFakes builds a client over a ring of addresses nothing listens
// on — fine for tests that drive DoFuncOn with a stub fn or poke the health
// state directly.
func clientOverFakes(t *testing.T, n int, o ClientOptions) *Client {
	t.Helper()
	ring, err := New(testMembers(n), 16)
	if err != nil {
		t.Fatal(err)
	}
	return NewClient(ring, o)
}

// TestMarkDownWindowDiscipline is the regression for the retry/cooldown
// double-count bug: a transport failure observed while a member is already
// inside an active cooldown window (DoFunc's desperation passes re-probe
// cooled members on every request) must neither extend the window nor count
// another ShardDown transition — otherwise a member that recovers on
// schedule stays routed-around for as long as traffic keeps probing it.
func TestMarkDownWindowDiscipline(t *testing.T) {
	const cd = 10 * time.Second
	type step struct {
		at       time.Duration // virtual clock offset
		ev       string        // "fail", "ok", "down", "up"
		wantDown int64         // expected ShardDown counter after the step
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{
			// The failed re-probe at t=5 must not slide the window to 15:
			// the member recovers at the window's original end, t=10.
			name: "probe failure does not extend active window",
			steps: []step{
				{at: 0, ev: "fail", wantDown: 1},
				{at: 5 * time.Second, ev: "fail", wantDown: 1},
				{at: 9 * time.Second, ev: "down", wantDown: 1},
				{at: 11 * time.Second, ev: "up", wantDown: 1},
			},
		},
		{
			name: "recovery then fresh failure restarts window and counts",
			steps: []step{
				{at: 0, ev: "fail", wantDown: 1},
				{at: 3 * time.Second, ev: "ok", wantDown: 1},
				{at: 4 * time.Second, ev: "fail", wantDown: 2},
				{at: 13 * time.Second, ev: "down", wantDown: 2},
				{at: 15 * time.Second, ev: "up", wantDown: 2},
			},
		},
		{
			// The entry from the first outage is stale (window lapsed at 10)
			// but was never swept; the failure at 12 is a fresh transition.
			name: "failure on stale entry counts a fresh transition",
			steps: []step{
				{at: 0, ev: "fail", wantDown: 1},
				{at: 12 * time.Second, ev: "fail", wantDown: 2},
				{at: 21 * time.Second, ev: "down", wantDown: 2},
				{at: 23 * time.Second, ev: "up", wantDown: 2},
			},
		},
		{
			name: "flap sequence counts each distinct outage once",
			steps: []step{
				{at: 0, ev: "fail", wantDown: 1},
				{at: time.Second, ev: "fail", wantDown: 1},
				{at: 2 * time.Second, ev: "ok", wantDown: 1},
				{at: 3 * time.Second, ev: "fail", wantDown: 2},
				{at: 4 * time.Second, ev: "fail", wantDown: 2},
				{at: 14 * time.Second, ev: "up", wantDown: 2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := clientOverFakes(t, 2, ClientOptions{Cooldown: cd})
			base := time.Unix(1_000_000, 0)
			var offset time.Duration
			c.now = func() time.Time { return base.Add(offset) }
			m := c.Ring().Members()[0]
			for i, s := range tc.steps {
				offset = s.at
				switch s.ev {
				case "fail":
					c.markDown(m)
				case "ok":
					c.markUp(m)
				case "down":
					if !c.down(m) {
						t.Fatalf("step %d (t=%v): member up, want down", i, s.at)
					}
				case "up":
					if c.down(m) {
						t.Fatalf("step %d (t=%v): member down, want up", i, s.at)
					}
				}
				if got := c.Stats().ShardDown; got != s.wantDown {
					t.Fatalf("step %d (t=%v): ShardDown = %d, want %d", i, s.at, got, s.wantDown)
				}
			}
		})
	}
}

// TestDoFuncReplicaSetOrder checks the walk order with replication enabled:
// healthy replicas in ring order, then healthy non-replicas, then
// cooled-down members.
func TestDoFuncReplicaSetOrder(t *testing.T) {
	c := clientOverFakes(t, 4, ClientOptions{Cooldown: time.Minute, Replication: 2})
	k := testKey(42)
	succ := c.Ring().Successors(k, 4)

	walk := func() []string {
		var order []string
		c.DoFuncOn(context.Background(), c.Acquire(), k, func(m string) (bool, error) {
			order = append(order, m)
			return false, context.DeadlineExceeded // keep advancing; any error works
		})
		return order
	}

	// All healthy: replica set first, then the rest, each in ring order.
	got := walk()
	want := []string{succ[0], succ[1], succ[2], succ[3]}
	if !equalStrings(got, want) {
		t.Fatalf("all-healthy walk = %v, want %v", got, want)
	}

	// Primary down: the second replica leads (warm cache), then the healthy
	// non-replicas (availability backstop), then the cooled-down primary.
	c.markUp(succ[0]) // reset any state from the failed walk above
	c.markUp(succ[1])
	c.markUp(succ[2])
	c.markUp(succ[3])
	c.markDown(succ[0])
	got = walk()
	want = []string{succ[1], succ[2], succ[3], succ[0]}
	if !equalStrings(got, want) {
		t.Fatalf("primary-down walk = %v, want %v", got, want)
	}

	// Whole replica set down: a live non-replica answers before any corpse
	// is probed — a recompute beats a likely-dead warm cache.
	for _, m := range succ {
		c.markUp(m)
	}
	c.markDown(succ[0])
	c.markDown(succ[1])
	got = walk()
	want = []string{succ[2], succ[3], succ[0], succ[1]}
	if !equalStrings(got, want) {
		t.Fatalf("replica-set-down walk = %v, want %v", got, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReplicaSet checks the replica set is the distinct-successor prefix.
func TestReplicaSet(t *testing.T) {
	c := clientOverFakes(t, 5, ClientOptions{Replication: 3})
	k := testKey(7)
	rv := c.Acquire()
	defer c.Release(rv)
	got := c.ReplicaSet(rv, k)
	want := c.Ring().Successors(k, 3)
	if !equalStrings(got, want) {
		t.Fatalf("ReplicaSet = %v, want %v", got, want)
	}
}

// TestCutoverDrain walks the full handover: a request pinned before the
// flip keeps the old assignment, new requests route by the new ring, and
// the cutover completes — callback fired — only when the last old pin
// releases.
func TestCutoverDrain(t *testing.T) {
	done := make(chan [2]int, 1)
	ring, err := New(testMembers(2), 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ring, ClientOptions{
		OnCutoverDone: func(old, new *Ring) {
			done <- [2]int{len(old.Members()), len(new.Members())}
		},
	})

	oldRV := c.Acquire() // an in-flight request, pinned pre-flip
	if oldRV.Version() != 1 {
		t.Fatalf("initial version = %d, want 1", oldRV.Version())
	}

	if _, err := c.Propose(testMembers(3)); err != nil {
		t.Fatal(err)
	}
	if got := c.Version(); got != 2 {
		t.Fatalf("version after propose = %d, want 2", got)
	}
	d := c.Draining()
	if d == nil {
		t.Fatal("Draining() = nil during drain")
	}
	if d.From != 1 || d.To != 2 || d.Draining != 1 {
		t.Fatalf("Draining() = %+v, want From=1 To=2 Draining=1", d)
	}
	if len(d.FromMembers) != 2 || len(d.ToMembers) != 3 {
		t.Fatalf("Draining() member sets = %d→%d, want 2→3", len(d.FromMembers), len(d.ToMembers))
	}

	// New requests pin the new generation; their release does not finish
	// the drain.
	newRV := c.Acquire()
	if newRV.Version() != 2 {
		t.Fatalf("new acquire pinned version %d, want 2", newRV.Version())
	}
	c.Release(newRV)
	if c.Draining() == nil {
		t.Fatal("drain finished while an old pin was held")
	}
	select {
	case <-done:
		t.Fatal("cutover callback fired before the old generation drained")
	default:
	}

	// A second topology change is rejected mid-drain.
	if _, err := c.Propose(testMembers(4)); err != ErrCutoverInProgress {
		t.Fatalf("Propose mid-drain = %v, want ErrCutoverInProgress", err)
	}

	// The old pin drains: the cutover completes and the callback sees the
	// old and new rings.
	c.Release(oldRV)
	if c.Draining() != nil {
		t.Fatal("Draining() non-nil after the last old pin released")
	}
	select {
	case sizes := <-done:
		if sizes != [2]int{2, 3} {
			t.Fatalf("callback rings = %v members, want [2 3]", sizes)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cutover callback never fired")
	}

	// The fleet is stable again: the next propose succeeds.
	if _, err := c.Propose(testMembers(4)); err != nil {
		t.Fatalf("Propose after drain: %v", err)
	}
	if got := c.Version(); got != 3 {
		t.Fatalf("version = %d, want 3", got)
	}
}

// TestCutoverIdleCompletesImmediately: with no in-flight requests the flip
// is instantaneous.
func TestCutoverIdleCompletesImmediately(t *testing.T) {
	done := make(chan struct{}, 1)
	ring, err := New(testMembers(2), 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ring, ClientOptions{OnCutoverDone: func(old, new *Ring) { done <- struct{}{} }})
	if _, err := c.Propose(testMembers(3)); err != nil {
		t.Fatal(err)
	}
	if c.Draining() != nil {
		t.Fatal("idle cutover left a draining generation")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cutover callback never fired")
	}
}
