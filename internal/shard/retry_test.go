package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/canon"
)

// newRetryClient builds a client over a ring of fake member names with a
// recording, non-sleeping sleep — DoFuncOn is driven with pure fns, so no
// network or wall-clock time is involved.
func newRetryClient(t *testing.T, members []string, o ClientOptions) (*Client, *sleepRecorder) {
	t.Helper()
	ring, err := New(members, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ring, o)
	rec := &sleepRecorder{}
	c.sleep = rec.sleep
	return c, rec
}

type sleepRecorder struct {
	mu     sync.Mutex
	slept  []time.Duration
	cancel int // sleeps after which to report ctx-done; 0 = never
}

func (r *sleepRecorder) sleep(ctx context.Context, d time.Duration) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.slept = append(r.slept, d)
	return r.cancel == 0 || len(r.slept) < r.cancel
}

func (r *sleepRecorder) durations() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.slept...)
}

var errMemberDown = errors.New("synthetic transport failure")

// failingFn returns a DoFuncOn fn that fails every member, counting dials.
func failingFn(dials *int) func(string) (bool, error) {
	return func(string) (bool, error) {
		*dials++
		return false, errMemberDown
	}
}

// TestBackoffScheduleIsCappedAndSeeded: the waits between replica
// attempts follow base<<(n-1) capped at max — each wait in [d/2, d] —
// and two clients with the same seed replay the identical jittered
// schedule, while a different seed diverges.
func TestBackoffScheduleIsCappedAndSeeded(t *testing.T) {
	members := []string{"m0:1", "m1:1", "m2:1", "m3:1", "m4:1", "m5:1", "m6:1", "m7:1"}
	opts := ClientOptions{RetryBackoff: 25 * time.Millisecond, RetryBackoffMax: 100 * time.Millisecond, Seed: 7}

	run := func(seed int64) []time.Duration {
		o := opts
		o.Seed = seed
		c, rec := newRetryClient(t, members, o)
		var dials int
		err := c.DoFunc(context.Background(), canon.Key{}, failingFn(&dials))
		if !errors.Is(err, errMemberDown) {
			t.Fatalf("DoFunc = %v, want the synthetic transport failure", err)
		}
		if dials != len(members) {
			t.Fatalf("dialled %d members, want all %d", dials, len(members))
		}
		return rec.durations()
	}

	sleeps := run(7)
	if len(sleeps) != len(members)-1 {
		t.Fatalf("recorded %d sleeps, want one per retry hop (%d)", len(sleeps), len(members)-1)
	}
	// Expected uncapped exponent: 25ms, 50ms, 100ms, then capped at 100ms.
	for n, got := range sleeps {
		d := 25 * time.Millisecond << uint(n)
		if d > 100*time.Millisecond {
			d = 100 * time.Millisecond
		}
		if got < d/2 || got > d {
			t.Errorf("hop %d slept %v, want within [%v, %v]", n+1, got, d/2, d)
		}
	}

	same := run(7)
	for i := range sleeps {
		if sleeps[i] != same[i] {
			t.Fatalf("hop %d: %v vs %v — same seed must replay the same schedule", i+1, sleeps[i], same[i])
		}
	}
	diverged := false
	for i, d := range run(8) {
		if d != sleeps[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seed 7 and seed 8 produced identical jitter — the seed is dead")
	}
}

// TestBackoffDisabledByDefault: the zero options never sleep.
func TestBackoffDisabledByDefault(t *testing.T) {
	c, rec := newRetryClient(t, []string{"m0:1", "m1:1", "m2:1"}, ClientOptions{})
	var dials int
	if err := c.DoFunc(context.Background(), canon.Key{}, failingFn(&dials)); !errors.Is(err, errMemberDown) {
		t.Fatalf("DoFunc = %v", err)
	}
	if dials != 3 {
		t.Fatalf("dialled %d, want 3", dials)
	}
	if got := rec.durations(); len(got) != 0 {
		t.Fatalf("backoff disabled but slept %v", got)
	}
}

// TestBackoffAbortsWhenContextExpires: a ctx that dies during the wait
// ends the walk with the last real error, not a fabricated one.
func TestBackoffAbortsWhenContextExpires(t *testing.T) {
	c, rec := newRetryClient(t, []string{"m0:1", "m1:1", "m2:1", "m3:1"}, ClientOptions{RetryBackoff: 10 * time.Millisecond})
	rec.cancel = 2 // the second sleep reports ctx-done
	var dials int
	err := c.DoFunc(context.Background(), canon.Key{}, failingFn(&dials))
	if !errors.Is(err, errMemberDown) {
		t.Fatalf("DoFunc = %v, want the last member error", err)
	}
	if dials != 2 {
		t.Fatalf("dialled %d members, want 2 (the walk must stop at the dead sleep)", dials)
	}
}

// TestRetryBudgetExhaustsAndRefills is the token-bucket table: a burst of
// failures drains the bucket to a typed fast-fail, and successes earn the
// retries back at RetryRefill per request.
func TestRetryBudgetExhaustsAndRefills(t *testing.T) {
	members := []string{"m0:1", "m1:1", "m2:1", "m3:1", "m4:1", "m5:1"}
	c, _ := newRetryClient(t, members, ClientOptions{RetryBudget: 2, RetryRefill: 0.5})

	// Request 1: every member fails. Dial 1 is free; hops 2 and 3 spend
	// the whole budget; hop 4 is refused.
	var dials int
	err := c.DoFunc(context.Background(), canon.Key{}, failingFn(&dials))
	if !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	if !errors.Is(err, errMemberDown) {
		t.Fatalf("err = %v, must still carry the underlying member error", err)
	}
	if dials != 3 {
		t.Fatalf("dialled %d members, want 3 (1 free + 2 budgeted)", dials)
	}
	if st := c.Stats(); st.BudgetExhausted != 1 {
		t.Fatalf("BudgetExhausted = %d, want 1", st.BudgetExhausted)
	}
	if got := c.BudgetTokens(); got != 0 {
		t.Fatalf("tokens = %v, want 0 after exhaustion", got)
	}

	// An empty bucket refuses even the first retry hop.
	dials = 0
	if err := c.DoFunc(context.Background(), canon.Key{}, failingFn(&dials)); !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want immediate ErrRetryBudgetExhausted", err)
	}
	if dials != 1 {
		t.Fatalf("dialled %d, want 1 (first dial is always free)", dials)
	}

	// Two successes at refill 0.5 earn one token back; the third retry
	// hop works again, and the bucket never exceeds its burst capacity.
	okFn := func(string) (bool, error) { return true, nil }
	for i := 0; i < 2; i++ {
		if err := c.DoFunc(context.Background(), canon.Key{}, okFn); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.BudgetTokens(); got != 1 {
		t.Fatalf("tokens = %v, want 1 after two successes at refill 0.5", got)
	}
	dials = 0
	if err := c.DoFunc(context.Background(), canon.Key{}, failingFn(&dials)); !errors.Is(err, ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v", err)
	}
	if dials != 2 {
		t.Fatalf("dialled %d, want 2 (one earned retry)", dials)
	}
	for i := 0; i < 100; i++ {
		if err := c.DoFunc(context.Background(), canon.Key{}, okFn); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.BudgetTokens(); got != 2 {
		t.Fatalf("tokens = %v, want the burst capacity 2 (deposits must cap)", got)
	}
}

// TestRetryBudgetDisabledIsFree: RetryBudget 0 never refuses a hop.
func TestRetryBudgetDisabledIsFree(t *testing.T) {
	members := []string{"m0:1", "m1:1", "m2:1", "m3:1", "m4:1", "m5:1"}
	c, _ := newRetryClient(t, members, ClientOptions{})
	for i := 0; i < 10; i++ {
		var dials int
		if err := c.DoFunc(context.Background(), canon.Key{}, failingFn(&dials)); !errors.Is(err, errMemberDown) {
			t.Fatalf("err = %v", err)
		}
		if dials != len(members) {
			t.Fatalf("dialled %d, want %d", dials, len(members))
		}
	}
	if st := c.Stats(); st.BudgetExhausted != 0 {
		t.Fatalf("BudgetExhausted = %d with budgeting disabled", st.BudgetExhausted)
	}
}

// TestRetryStormAgainstBrownedOutMember is the -race storm: many
// goroutines racing one flaky member, all spending and refilling one
// shared budget. Every request must end in exactly one of (success,
// typed budget refusal, member error), and the bucket must stay within
// [0, capacity].
func TestRetryStormAgainstBrownedOutMember(t *testing.T) {
	members := []string{"brown:1", "ok0:1", "ok1:1"}
	const capacity = 50
	c, _ := newRetryClient(t, members, ClientOptions{
		RetryBudget:  capacity,
		RetryBackoff: time.Millisecond, // exercises the shared jitter RNG too
	})

	const goroutines, perG = 16, 25
	var wg sync.WaitGroup
	var succeeded, refused, failed sync.Map
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// The browned-out member fails whenever the walk reaches
				// it first; any other member answers.
				err := c.DoFunc(context.Background(), canon.Key{byte(g), byte(i)}, func(m string) (bool, error) {
					if m == members[0] {
						return false, errMemberDown
					}
					return true, nil
				})
				id := fmt.Sprintf("%d/%d", g, i)
				switch {
				case err == nil:
					succeeded.Store(id, true)
				case errors.Is(err, ErrRetryBudgetExhausted):
					refused.Store(id, true)
				default:
					failed.Store(id, true)
				}
			}
		}(g)
	}
	wg.Wait()

	count := func(m *sync.Map) (n int) {
		m.Range(func(any, any) bool { n++; return true })
		return
	}
	total := count(&succeeded) + count(&refused) + count(&failed)
	if total != goroutines*perG {
		t.Fatalf("accounted %d requests, want %d", total, goroutines*perG)
	}
	if count(&failed) != 0 {
		t.Fatalf("%d requests failed with a non-budget error; with two healthy members they must succeed or be refused", count(&failed))
	}
	if got := c.BudgetTokens(); got < 0 || got > capacity {
		t.Fatalf("tokens = %v, outside [0, %d]", got, capacity)
	}
}
