package shard

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/canon"
)

// fleet starts n httptest shards whose handler echoes its shard index, and
// returns their host:port addresses plus a per-shard hit counter.
func fleet(t *testing.T, n int, handler func(i int, w http.ResponseWriter, r *http.Request)) ([]string, []*atomic.Int64) {
	t.Helper()
	addrs := make([]string, n)
	hits := make([]*atomic.Int64, n)
	for i := 0; i < n; i++ {
		i := i
		hits[i] = &atomic.Int64{}
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i].Add(1)
			handler(i, w, r)
		}))
		t.Cleanup(srv.Close)
		u, err := url.Parse(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = u.Host
	}
	return addrs, hits
}

func newTestClient(t *testing.T, addrs []string, cooldown time.Duration) *Client {
	t.Helper()
	ring, err := New(addrs, 16)
	if err != nil {
		t.Fatal(err)
	}
	return NewClient(ring, ClientOptions{Cooldown: cooldown})
}

func TestDoForwardsToOwner(t *testing.T) {
	addrs, hits := fleet(t, 3, func(i int, w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != "payload" {
			t.Errorf("shard %d got body %q", i, body)
		}
		io.WriteString(w, addrs0(r))
	})
	c := newTestClient(t, addrs, time.Second)

	k := testKey(7)
	resp, member, err := c.Do(context.Background(), k, "/v1/solve", "application/json", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if member != c.Ring().Owner(k) {
		t.Fatalf("forwarded to %q, owner is %q", member, c.Ring().Owner(k))
	}
	total := int64(0)
	for _, h := range hits {
		total += h.Load()
	}
	if total != 1 {
		t.Fatalf("%d shards were hit, want 1", total)
	}
	st := c.Stats()
	if st.Forwarded != 1 || st.Retried != 0 || st.ShardDown != 0 {
		t.Fatalf("stats = %+v, want 1 forward, 0 retries, 0 down", st)
	}
}

// addrs0 pulls the Host header so the handler can echo its own identity.
func addrs0(r *http.Request) string { return r.Host }

// TestDoRetriesNextReplica points the ring at two live shards plus one
// address nothing listens on, picks a key the dead member owns, and checks
// Do lands on the next distinct replica, marks the owner down, and
// subsequently routes straight to the stand-in without re-dialling the
// corpse.
func TestDoRetriesNextReplica(t *testing.T) {
	addrs, _ := fleet(t, 2, func(i int, w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, r.Host)
	})
	dead := "127.0.0.1:1" // reserved port, connection refused
	ring, err := New([]string{addrs[0], addrs[1], dead}, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ring, ClientOptions{Cooldown: time.Minute})

	var k canon.Key
	found := false
	for seed := uint64(0); seed < 4096; seed++ {
		if kk := testKey(seed); ring.Owner(kk) == dead {
			k, found = kk, true
			break
		}
	}
	if !found {
		t.Fatal("no key owned by the dead member in 4096 samples")
	}

	resp, member, err := c.Do(context.Background(), k, "/x", "application/json", nil)
	if err != nil {
		t.Fatalf("Do failed entirely: %v", err)
	}
	resp.Body.Close()
	if member == dead {
		t.Fatalf("Do claims the dead member %q responded", dead)
	}
	if want := ring.Successors(k, 3)[1]; member != want {
		t.Fatalf("retried onto %q, want next replica %q", member, want)
	}
	st := c.Stats()
	if st.Retried != 1 || st.ShardDown != 1 {
		t.Fatalf("stats = %+v, want 1 retry and 1 down transition", st)
	}

	// While the cooldown holds, Owner routes around the corpse directly and
	// Do needs no further retries.
	if got := c.Owner(k); got == dead {
		t.Fatalf("Owner still routes to the down member %q", got)
	}
	resp, _, err = c.Do(context.Background(), k, "/x", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := c.Stats(); st.Retried != 1 {
		t.Fatalf("second Do re-dialled the down member: %+v", st)
	}
}

// TestCooldownExpiry checks a down member rejoins once its cooldown lapses.
func TestCooldownExpiry(t *testing.T) {
	addrs, _ := fleet(t, 2, func(i int, w http.ResponseWriter, r *http.Request) {})
	c := newTestClient(t, addrs, 50*time.Millisecond)
	m := addrs[0]
	c.markDown(m)
	if !c.down(m) {
		t.Fatal("member not down after markDown")
	}
	if got := len(c.Healthy()); got != 1 {
		t.Fatalf("%d healthy members, want 1", got)
	}
	time.Sleep(60 * time.Millisecond)
	if c.down(m) {
		t.Fatal("member still down after cooldown expiry")
	}
	if got := len(c.Healthy()); got != 2 {
		t.Fatalf("%d healthy members, want 2", got)
	}
}

// TestDoFallsBackToCooledDownMembers is the regression for the
// healthy-member-fails-while-others-cool-down case: when every healthy
// member fails at the transport level, Do must still dial the members in
// cooldown — they may have recovered — instead of returning 502 for a
// fleet that is mostly up.
func TestDoFallsBackToCooledDownMembers(t *testing.T) {
	addrs, _ := fleet(t, 2, func(i int, w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, r.Host)
	})
	dead := "127.0.0.1:1"
	ring, err := New([]string{addrs[0], addrs[1], dead}, 16)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ring, ClientOptions{Cooldown: time.Minute})
	// The live members sit in cooldown (say they flapped a moment ago);
	// the only "healthy" member is the dead one.
	c.markDown(addrs[0])
	c.markDown(addrs[1])

	var k canon.Key
	found := false
	for seed := uint64(0); seed < 4096; seed++ {
		if kk := testKey(seed); ring.Owner(kk) == dead {
			k, found = kk, true
			break
		}
	}
	if !found {
		t.Fatal("no key owned by the dead member in 4096 samples")
	}
	resp, member, err := c.Do(context.Background(), k, "/x", "application/json", nil)
	if err != nil {
		t.Fatalf("Do gave up without dialling the cooled-down members: %v", err)
	}
	resp.Body.Close()
	if member == dead {
		t.Fatalf("Do claims the dead member %q responded", dead)
	}
}

// TestDoAllDown checks that a fully-down fleet yields the transport error,
// not a fabricated success, and that the second pass re-tries cooled-down
// members rather than refusing outright.
func TestDoAllDown(t *testing.T) {
	dead := []string{"127.0.0.1:1", "127.0.0.1:2"}
	ring, err := New(dead, 8)
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(ring, ClientOptions{Cooldown: time.Minute})
	for _, m := range dead {
		c.markDown(m)
	}
	_, _, err = c.Do(context.Background(), testKey(1), "/x", "application/json", nil)
	if err == nil {
		t.Fatal("Do succeeded against a fully-dead fleet")
	}
	if !strings.Contains(err.Error(), "refused") && !strings.Contains(err.Error(), "connect") {
		t.Fatalf("want a transport error, got %v", err)
	}
}
