package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/canon"
)

// testKey derives a deterministic canon.Key from a seed, mimicking the
// uniform SHA-256 keys the canonicalizer produces.
func testKey(seed uint64) canon.Key {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], seed)
	return canon.Key(sha256.Sum256(buf[:]))
}

func testMembers(n int) []string {
	ms := make([]string, n)
	for i := range ms {
		ms[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return ms
}

func TestNewRejectsBadMembers(t *testing.T) {
	if _, err := New(nil, 8); err == nil {
		t.Fatal("want error for empty member set")
	}
	if _, err := New([]string{"a:1", ""}, 8); err == nil {
		t.Fatal("want error for empty member address")
	}
	if _, err := New([]string{"a:1", "b:1", "a:1"}, 8); err == nil {
		t.Fatal("want error for duplicate member")
	}
}

// TestAssignmentDeterministicAcrossRestarts builds the ring twice — once
// from the canonical member order, once from a scrambled one, as two
// independently restarted processes would — and checks every sampled key
// agrees on its owner and its full successor order.
func TestAssignmentDeterministicAcrossRestarts(t *testing.T) {
	members := testMembers(5)
	a, err := New(members, 64)
	if err != nil {
		t.Fatal(err)
	}
	scrambled := []string{members[3], members[0], members[4], members[2], members[1]}
	b, err := New(scrambled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 2000; seed++ {
		k := testKey(seed)
		if ao, bo := a.Owner(k), b.Owner(k); ao != bo {
			t.Fatalf("key %d: owner %q (canonical order) != %q (scrambled order)", seed, ao, bo)
		}
		as, bs := a.Successors(k, 5), b.Successors(k, 5)
		for i := range as {
			if as[i] != bs[i] {
				t.Fatalf("key %d: successor[%d] %q != %q", seed, i, as[i], bs[i])
			}
		}
	}
}

// TestRemovalRemapsOneNth removes one member and checks (a) only keys it
// owned change owner, (b) the remapped fraction is close to the consistent
// hashing bound 1/N.
func TestRemovalRemapsOneNth(t *testing.T) {
	const nMembers, nKeys = 6, 20000
	members := testMembers(nMembers)
	full, err := New(members, 0) // DefaultReplicas
	if err != nil {
		t.Fatal(err)
	}
	gone := members[2]
	reduced, err := New(append(append([]string{}, members[:2]...), members[3:]...), 0)
	if err != nil {
		t.Fatal(err)
	}
	remapped := 0
	for seed := uint64(0); seed < nKeys; seed++ {
		k := testKey(seed)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == gone {
			remapped++
			continue
		}
		if before != after {
			t.Fatalf("key %d: owner %q changed to %q although %q was the removed member", seed, before, after, gone)
		}
	}
	frac := float64(remapped) / nKeys
	want := 1.0 / nMembers
	// With 128 vnodes per member the removed member's share concentrates
	// near 1/N; allow a generous band so the test is not flaky on the tail.
	if math.Abs(frac-want) > want {
		t.Fatalf("removal remapped %.3f of keys, want ≈ %.3f", frac, want)
	}
	if remapped == 0 {
		t.Fatal("removal remapped nothing; ring is ignoring the member set")
	}
}

// TestBalance checks the vnode construction spreads a key population
// roughly evenly: no member owns more than ~2× its fair share.
func TestBalance(t *testing.T) {
	const nMembers, nKeys = 4, 20000
	r, err := New(testMembers(nMembers), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for seed := uint64(0); seed < nKeys; seed++ {
		counts[r.Owner(testKey(seed))]++
	}
	fair := nKeys / nMembers
	for m, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Fatalf("member %s owns %d of %d keys (fair share %d)", m, c, nKeys, fair)
		}
	}
}

// TestSuccessorsDistinctAndComplete checks the retry order covers every
// member exactly once, starting with the owner.
func TestSuccessorsDistinctAndComplete(t *testing.T) {
	r, err := New(testMembers(5), 16)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 500; seed++ {
		k := testKey(seed)
		succ := r.Successors(k, 99)
		if len(succ) != 5 {
			t.Fatalf("key %d: %d successors, want 5", seed, len(succ))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("key %d: successor[0] = %q, owner = %q", seed, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("key %d: duplicate successor %q", seed, m)
			}
			seen[m] = true
		}
	}
}

// TestPinnedAssignments is the cross-version regression: the exact owner of
// fixed keys under a fixed member set is part of the fleet contract — a
// silent change to the hash construction would strand every existing cache
// partition — so the expected values are hard-coded, not computed.
func TestPinnedAssignments(t *testing.T) {
	r, err := New([]string{"s1:9001", "s2:9002", "s3:9003"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, 8)
	for seed := range got {
		got[seed] = r.Owner(testKey(uint64(seed)))
	}
	want := []string{
		"s1:9001", "s3:9003", "s3:9003", "s1:9001",
		"s3:9003", "s1:9001", "s2:9002", "s1:9001",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pinned assignment drifted: key %d owned by %q, want %q\nfull got: %q", i, got[i], want[i], got)
		}
	}
}
