package baseline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/simplex"
)

func optimum(t *testing.T, in *mmlp.Instance) float64 {
	t.Helper()
	r := simplex.SolveMaxMin(in)
	if r.Status != simplex.Optimal {
		t.Fatalf("simplex: %v", r.Status)
	}
	return r.Value
}

func TestSafeFeasibleAndWithinFactor(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		in := gen.Random(gen.RandomConfig{Agents: 8, MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 2}, seed)
		x := SolveSafe(in)
		if err := in.CheckFeasible(x, 1e-12); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		opt := optimum(t, in)
		dI := float64(in.DegreeI())
		if got := in.Utility(x); got*dI < opt-1e-7 {
			t.Fatalf("seed %d: safe utility %v below opt/ΔI = %v", seed, got, opt/dI)
		}
	}
}

func TestSafeExactOnSymmetricShare(t *testing.T) {
	// x0 + x1 ≤ 1 shared: safe gives 1/2 each.
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1)
	in.AddObjective(1, 1)
	x := SolveSafe(in)
	if x[0] != 0.5 || x[1] != 0.5 {
		t.Fatalf("safe = %v", x)
	}
}

func TestSingletonConstraintsOptimal(t *testing.T) {
	// ΔI = 1: caps are independently optimal.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(4)
		in := mmlp.New(n)
		for v := 0; v < n; v++ {
			in.AddConstraint(float64(v), 0.5+rng.Float64())
		}
		for r := 0; r < n; r++ {
			a, b := rng.Intn(n), (rng.Intn(n-1)+r)%n
			if a == b {
				in.AddObjective(float64(a), 0.5+rng.Float64())
			} else {
				in.AddObjective(float64(a), 0.5+rng.Float64(), float64(b), 0.5+rng.Float64())
			}
		}
		x := SolveSingletonConstraints(in)
		if err := in.CheckFeasible(x, 1e-12); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := optimum(t, in)
		if got := in.Utility(x); math.Abs(got-opt) > 1e-7*math.Max(1, opt) {
			t.Fatalf("trial %d: utility %v != opt %v", trial, got, opt)
		}
	}
}

func TestSingletonObjectivesOptimal(t *testing.T) {
	// ΔK = 1: the [17] algorithm is exactly optimal.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(4)
		in := mmlp.New(n)
		// Shared constraints of size ≤ 3.
		for v := 0; v < n; v++ {
			w := (v + 1) % n
			in.AddConstraint(float64(v), 0.5+rng.Float64(), float64(w), 0.5+rng.Float64())
		}
		for e := 0; e < 2; e++ {
			a, b, c := rng.Intn(n), rng.Intn(n), rng.Intn(n)
			if a != b && b != c && a != c {
				in.AddConstraint(float64(a), 1, float64(b), 1, float64(c), 1)
			}
		}
		// Singleton objectives, some agents twice with different coefs.
		for v := 0; v < n; v++ {
			in.AddObjective(float64(v), 0.5+rng.Float64())
		}
		in.AddObjective(0, 0.25)
		x := SolveSingletonObjectives(in)
		if err := in.CheckFeasible(x, 1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		opt := optimum(t, in)
		if got := in.Utility(x); math.Abs(got-opt) > 1e-7*math.Max(1, opt) {
			t.Fatalf("trial %d: utility %v != opt %v", trial, got, opt)
		}
	}
}

func TestSingletonObjectivesPanicsOnWideObjective(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	SolveSingletonObjectives(in)
}

func TestSingletonObjectivesZeroesUncoveredAgents(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 2)
	x := SolveSingletonObjectives(in)
	if x[1] != 0 {
		t.Fatalf("uncovered agent got %v", x[1])
	}
	if err := in.CheckFeasible(x, 1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestUniformFeasible(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		in := gen.Random(gen.RandomConfig{Agents: 7, MaxDegI: 3, MaxDegK: 2, ExtraCons: 2}, seed)
		x := SolveUniform(in)
		if err := in.CheckFeasible(x, 1e-12); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
