// Package baseline implements the comparison algorithms of the paper's
// prior-work discussion (§1.3): the safe algorithm of [8, 16], which is a
// factor-ΔI local approximation and was the best known local algorithm for
// general max-min LPs before this paper, and the optimal local algorithms
// for the trivial cases ΔI = 1 and ΔK = 1 from [17].
package baseline

import (
	"math"

	"repro/internal/mmlp"
)

// SolveSafe runs the safe algorithm of [8, 16]:
//
//	x_v = min_{i∈Iv} 1 / (|Vi| · a_iv).
//
// Feasibility is immediate (each constraint's load is at most
// Σ_{v∈Vi} 1/|Vi| = 1), and since any feasible y has
// y_v ≤ min_i 1/a_iv ≤ ΔI · x_v, the utility is within factor ΔI of the
// optimum. The local horizon is 2 rounds (each agent needs |Vi| from its
// constraints). Agents with no constraints keep x_v = +Inf capped to the
// trivial bound via their objectives — callers should preprocess degenerate
// instances first; for strictly valid instances every x_v is finite.
func SolveSafe(in *mmlp.Instance) []float64 {
	x := make([]float64, in.NumAgents)
	for v := range x {
		x[v] = math.Inf(1)
	}
	for _, c := range in.Cons {
		size := float64(len(c.Terms))
		for _, t := range c.Terms {
			if cand := 1 / (size * t.Coef); cand < x[t.Agent] {
				x[t.Agent] = cand
			}
		}
	}
	return x
}

// SolveSingletonConstraints is the optimal local algorithm for ΔI = 1
// ([17]): with every constraint private to one agent, the caps are
// independent, objectives are monotone in every variable, and x_v = cap_v
// is optimal. Horizon: 1 round.
func SolveSingletonConstraints(in *mmlp.Instance) []float64 {
	return in.Caps()
}

// SolveSingletonObjectives is the optimal local algorithm for ΔK = 1
// ([17]): every objective k reads a single agent v(k), so after
// normalising, the instance asks to maximise min_v γ_v x_v for the agents
// that appear in objectives. Setting
//
//	x_v = ω_v / γ_v,  ω_v = min_{i∈Iv} 1 / Σ_{w∈Vi} a_iw/γ_w
//
// is feasible (inside constraint i every member uses ω ≤ ω_i of the
// capacity profile) and attains utility min_v ω_v, which equals the global
// optimum min_i ω_i. Agents outside every objective are set to 0; an agent
// in several singleton objectives takes γ_v as the smallest coefficient
// among them, since the smallest-coefficient objective is the binding one.
//
// The function requires ΔK ≤ 1 (it panics otherwise) and a strictly valid
// instance (every agent constrained).
func SolveSingletonObjectives(in *mmlp.Instance) []float64 {
	gamma := make([]float64, in.NumAgents)
	for _, o := range in.Objs {
		if len(o.Terms) != 1 {
			panic("baseline: SolveSingletonObjectives requires ΔK = 1")
		}
		t := o.Terms[0]
		if gamma[t.Agent] == 0 || t.Coef < gamma[t.Agent] {
			gamma[t.Agent] = t.Coef
		}
	}
	// Per-constraint level: the largest ω such that every member of the
	// constraint can afford x_w = ω/γ_w simultaneously.
	x := make([]float64, in.NumAgents)
	omega := make([]float64, in.NumAgents)
	for v := range omega {
		omega[v] = math.Inf(1)
	}
	for _, c := range in.Cons {
		demand := 0.0
		for _, t := range c.Terms {
			if gamma[t.Agent] > 0 {
				demand += t.Coef / gamma[t.Agent]
			}
		}
		if demand == 0 {
			continue
		}
		level := 1 / demand
		for _, t := range c.Terms {
			if level < omega[t.Agent] {
				omega[t.Agent] = level
			}
		}
	}
	for v := range x {
		if gamma[v] == 0 || math.IsInf(omega[v], 1) {
			x[v] = 0
			continue
		}
		x[v] = omega[v] / gamma[v]
	}
	return x
}

// SolveUniform is a naive non-adaptive heuristic used as a reference floor
// in the experiments: every agent takes an equal 1/|Vi|-style share,
// x_v = cap_v / maxLoad where maxLoad = max_i |Vi|. It is feasible but can
// be a factor ≈ ΔI·cap-spread worse than optimal.
func SolveUniform(in *mmlp.Instance) []float64 {
	maxLoad := 1
	for _, c := range in.Cons {
		if len(c.Terms) > maxLoad {
			maxLoad = len(c.Terms)
		}
	}
	caps := in.Caps()
	x := make([]float64, in.NumAgents)
	for v := range x {
		if math.IsInf(caps[v], 1) {
			x[v] = 0
			continue
		}
		x[v] = caps[v] / float64(maxLoad)
	}
	return x
}
