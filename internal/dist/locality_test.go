package dist_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/structured"
)

func necklace(t *testing.T, m int) *structured.Instance {
	t.Helper()
	s, err := structured.FromMMLP(gen.TriNecklace(m))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDistRoundsFormula asserts the defining locality property: the round
// count is 12(R−2)+8, a function of R alone, for every protocol and every
// instance size.
func TestDistRoundsFormula(t *testing.T) {
	for _, pr := range protocols {
		for _, R := range []int{2, 3, 4} {
			want := 12*(R-2) + 8
			for _, m := range []int{4, 8, 16} {
				res, err := pr.run(necklace(t, m), core.Options{R: R})
				if err != nil {
					t.Fatal(err)
				}
				if res.Rounds != want {
					t.Fatalf("%s m=%d R=%d: rounds = %d, want %d", pr.name, m, R, res.Rounds, want)
				}
				if len(res.Stats.PerRound) != want {
					t.Fatalf("%s m=%d R=%d: %d per-round entries, want %d",
						pr.name, m, R, len(res.Stats.PerRound), want)
				}
			}
		}
	}
}

// TestDistMaxMessageLocality asserts the second locality property: the
// largest message grows with R (the views deepen) but not with the
// instance size m — on the band-symmetric necklace family the
// view-gathering traffic is exactly identical for every m.
func TestDistMaxMessageLocality(t *testing.T) {
	for _, pr := range protocols {
		t.Run(pr.name, func(t *testing.T) {
			prev := 0
			for _, R := range []int{2, 3, 4} {
				// The necklace wraps radius-Θ(R) neighbourhoods only below
				// m=8, so the records protocol's frontier batches saturate
				// from there; views are band-symmetric for every m.
				sizes := []int{8, 16, 24}
				var base int
				for i, m := range sizes {
					res, err := pr.run(necklace(t, m), core.Options{R: R})
					if err != nil {
						t.Fatal(err)
					}
					if i == 0 {
						base = res.Stats.MaxMessageBytes
					} else if res.Stats.MaxMessageBytes != base {
						t.Fatalf("R=%d: max message %d B at m=%d but %d B at m=%d",
							R, base, sizes[0], res.Stats.MaxMessageBytes, m)
					}
				}
				// Views deepen with R, so their largest message strictly
				// grows; record batches are bounded by the gossip frontier,
				// which saturates.
				if pr.name == "views" && base <= prev {
					t.Fatalf("R=%d: max message %d B did not grow from %d B at the previous R", R, base, prev)
				}
				prev = base
			}
		})
	}
}

// TestDistPerRoundAccounting asserts the traffic bookkeeping invariants:
// per-round statistics sum to the totals, the maximum message is the
// maximum over rounds, and the final round carries no messages.
func TestDistPerRoundAccounting(t *testing.T) {
	for _, pr := range protocols {
		for _, R := range []int{2, 3} {
			t.Run(fmt.Sprintf("%s/R=%d", pr.name, R), func(t *testing.T) {
				res, err := pr.run(necklace(t, 6), core.Options{R: R})
				if err != nil {
					t.Fatal(err)
				}
				var msgs, bytes, comp, max int
				for _, rs := range res.Stats.PerRound {
					msgs += rs.Messages
					bytes += rs.Bytes
					comp += rs.CompressedBytes
					if rs.MaxBytes > max {
						max = rs.MaxBytes
					}
					if (rs.Messages == 0) != (rs.Bytes == 0) {
						t.Fatalf("inconsistent round stats: %+v", rs)
					}
				}
				if msgs != res.Stats.Messages || bytes != res.Stats.Bytes ||
					comp != res.Stats.CompressedBytes || max != res.Stats.MaxMessageBytes {
					t.Fatalf("per-round sums (%d, %d, %d, max %d) do not match totals %+v",
						msgs, bytes, comp, max, res.Stats)
				}
				last := res.Stats.PerRound[len(res.Stats.PerRound)-1]
				if last.Messages != 0 || last.Bytes != 0 {
					t.Fatalf("final round carries traffic: %+v", last)
				}
				if res.Stats.Messages == 0 || res.Stats.Bytes == 0 {
					t.Fatal("no traffic recorded")
				}
			})
		}
	}
}

// TestDistTrafficScalesLinearly asserts total traffic grows linearly in m
// on the necklace (constant per-node work, m-proportional node count).
func TestDistTrafficScalesLinearly(t *testing.T) {
	res8, err := dist.SolveDistributed(necklace(t, 8), core.Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	res16, err := dist.SolveDistributed(necklace(t, 16), core.Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res16.Stats.Messages != 2*res8.Stats.Messages {
		t.Fatalf("messages: %d at m=16, want exactly double %d", res16.Stats.Messages, res8.Stats.Messages)
	}
	if res16.Stats.Bytes != 2*res8.Stats.Bytes {
		t.Fatalf("bytes: %d at m=16, want exactly double %d", res16.Stats.Bytes, res8.Stats.Bytes)
	}
}
