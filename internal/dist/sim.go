package dist

import (
	"sync"

	"repro/internal/bipartite"
	"repro/internal/structured"
)

// The synchronous simulator: one goroutine per node of the communication
// graph, one barrier per round. In round t every node first reads the
// messages delivered at the end of round t−1 (its per-port inbox), then
// writes at most one message per port into its outbox. The coordinator
// waits for all nodes at the barrier, moves outboxes to the matching
// inboxes (port p of node n feeds port PortTo(m,n) of the neighbour m
// behind p), accounts the traffic, and releases the next round.

// message is one payload travelling over one edge in one round.
type message struct {
	has  bool
	kind msgKind
	view int32   // interned view id (view-gathering rounds)
	recs []int32 // record node ids (record-gossip rounds)
	val  float64 // scalar payload (smoothing and g± rounds)
}

// msgKind tags the wire format of a message for size accounting.
type msgKind uint8

const (
	mkNone msgKind = iota
	mkView
	mkRecords
	mkScalar
)

// scalarBytes is the wire size of a scalar message: a 1-byte phase tag and
// a float64 payload.
const scalarBytes = 1 + 8

// engine owns the mailboxes, the port topology and the traffic statistics
// of one protocol run.
type engine struct {
	g   *bipartite.Graph
	s   *structured.Instance // local inputs: constraint coefficients
	rev [][]int              // rev[n][p] = port of Neighbor(n,p) that leads back to n

	in, out [][]message // [node][port]

	store    *viewStore // nil for the record protocol
	perRound []RoundStats
}

// newEngine allocates mailboxes for every node of g and pre-resolves the
// reverse ports.
func newEngine(g *bipartite.Graph, store *viewStore) *engine {
	n := g.NumNodes()
	e := &engine{
		g:     g,
		rev:   make([][]int, n),
		in:    make([][]message, n),
		out:   make([][]message, n),
		store: store,
	}
	for v := 0; v < n; v++ {
		node := bipartite.Node(v)
		deg := g.Degree(node)
		e.rev[v] = make([]int, deg)
		e.in[v] = make([]message, deg)
		e.out[v] = make([]message, deg)
		for p := 0; p < deg; p++ {
			e.rev[v][p] = g.PortTo(g.Neighbor(node, p), node)
		}
	}
	return e
}

// send queues a message from node n through port p for delivery at the end
// of the current round.
func (e *engine) send(n bipartite.Node, p int, m message) {
	m.has = true
	e.out[n][p] = m
}

// recv returns the message delivered to port p of node n at the end of the
// previous round (has == false when the port was silent).
func (e *engine) recv(n bipartite.Node, p int) message {
	return e.in[n][p]
}

// run executes the protocol for total rounds: steps[n] is invoked once per
// round per node, concurrently across nodes, with a delivery barrier in
// between. Per-round traffic is recorded in e.perRound.
func (e *engine) run(steps []func(round int), total int) {
	n := len(steps)
	e.perRound = make([]RoundStats, total)

	start := make([]chan int, n)
	done := make(chan struct{}, n)
	var wg sync.WaitGroup
	for i := range steps {
		start[i] = make(chan int)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := range start[i] {
				steps[i](round)
				done <- struct{}{}
			}
		}(i)
	}
	for round := 1; round <= total; round++ {
		for i := range start {
			start[i] <- round
		}
		for i := 0; i < n; i++ {
			<-done
		}
		e.deliver(round)
	}
	for i := range start {
		close(start[i])
	}
	wg.Wait()
}

// deliver moves every outbox message to the matching inbox and accounts
// the round's traffic.
func (e *engine) deliver(round int) {
	rs := &e.perRound[round-1]
	// Clear inboxes first: a silent port must not replay stale messages.
	for v := range e.in {
		for p := range e.in[v] {
			e.in[v][p] = message{}
		}
	}
	for v := range e.out {
		for p := range e.out[v] {
			m := e.out[v][p]
			if !m.has {
				continue
			}
			e.out[v][p] = message{}
			wire, packed := e.sizeOf(m)
			rs.Messages++
			rs.Bytes += wire
			if wire > rs.MaxBytes {
				rs.MaxBytes = wire
			}
			rs.CompressedBytes += packed
			node := bipartite.Node(v)
			e.in[e.g.Neighbor(node, p)][e.rev[v][p]] = m
		}
	}
}

// sizeOf returns the wire size of a message and its DAG-compressed size
// (identical except for view messages, whose repeated subtrees the
// compressed encoding stores once).
func (e *engine) sizeOf(m message) (wire, packed int) {
	switch m.kind {
	case mkView:
		return e.store.treeBytes(m.view), e.store.dagBytes(m.view)
	case mkRecords:
		w := recordBatchBytes(e.g, m.recs)
		return w, w
	default:
		return scalarBytes, scalarBytes
	}
}

// totals folds the per-round statistics into a Stats value.
func (e *engine) totals() Stats {
	st := Stats{PerRound: e.perRound}
	for _, rs := range e.perRound {
		st.Messages += rs.Messages
		st.Bytes += rs.Bytes
		st.CompressedBytes += rs.CompressedBytes
		if rs.MaxBytes > st.MaxMessageBytes {
			st.MaxMessageBytes = rs.MaxBytes
		}
	}
	return st
}
