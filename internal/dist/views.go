package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/structured"
)

// The anonymous view-gathering protocol (§1.2, §3 of the paper; the model
// of the companion papers arXiv:0710.1499 and arXiv:0804.4815): nodes have
// no identifiers, only port numbers. In round 1 every node sends, through
// every port p, a one-node description of itself ("I reach you through my
// port p"). In round t it sends through port p the combination of its own
// description with the round-(t−1) messages of all other ports. After
// round t the receiver behind port p holds the depth-(t−1) truncated
// unfolding rooted at the sender, with the branch towards the receiver
// removed — assembling the root's own description with the final messages
// of all its ports yields exactly unfold.Truncated(g, root, t).
//
// Messages are trees, so their wire size grows exponentially with the
// radius; Stats.Bytes counts that tree encoding. The standard fix re-codes
// a view as a DAG with repeated subtrees stored once (every subtree is
// determined by its structure, so equal subtrees collapse);
// Stats.CompressedBytes counts that encoding. The simulator hash-conses
// view trees for the same reason, which keeps the simulation polynomial
// while remaining observationally identical to shipping the full trees.

// viewNode is one interned view tree. fromPort is the sender's port toward
// the recipient (−1 for a view assembled at its root); children holds the
// interned subtrees of every other port in increasing port order, and is
// shorter than deg−1 only at the truncation frontier (where it is empty).
type viewNode struct {
	kind     bipartite.Kind
	deg      int
	fromPort int
	coefs    [2]float64 // constraint nodes: a_iv per port
	children []int32
	tree     int // encoded size of the full tree, in bytes
}

// viewHdrBytes is the per-node encoding overhead: kind (1), degree (2),
// fromPort (2), plus the two coefficients for constraint nodes.
func (n *viewNode) hdrBytes() int {
	if n.kind == bipartite.KindConstraint {
		return 5 + 16
	}
	return 5
}

// viewStore hash-conses view trees. Interning runs concurrently from the
// node goroutines under the mutex; node lookups go through an atomic
// snapshot of the id table, which is safe lock-free because interned
// nodes are immutable and an id only reaches a reader after the intern
// that created it (the round barrier orders the two).
type viewStore struct {
	mu    sync.Mutex
	byKey map[string]int32
	nodes []viewNode
	snap  atomic.Value  // []viewNode, updated on every intern
	dag   map[int32]int // memoised DAG-encoded sizes
}

func newViewStore() *viewStore {
	vs := &viewStore{byKey: map[string]int32{}, dag: map[int32]int{}}
	vs.snap.Store([]viewNode(nil))
	return vs
}

// intern returns the id of the described view tree, allocating it on first
// sight.
func (vs *viewStore) intern(kind bipartite.Kind, deg, fromPort int, coefs [2]float64, children []int32) int32 {
	key := make([]byte, 0, 13+16+4*len(children))
	key = append(key, byte(kind))
	key = binary.BigEndian.AppendUint16(key, uint16(deg))
	key = binary.BigEndian.AppendUint16(key, uint16(int16(fromPort)))
	if kind == bipartite.KindConstraint {
		key = binary.BigEndian.AppendUint64(key, math.Float64bits(coefs[0]))
		key = binary.BigEndian.AppendUint64(key, math.Float64bits(coefs[1]))
	}
	for _, c := range children {
		key = binary.BigEndian.AppendUint32(key, uint32(c))
	}
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if id, ok := vs.byKey[string(key)]; ok {
		return id
	}
	nd := viewNode{kind: kind, deg: deg, fromPort: fromPort, coefs: coefs, children: append([]int32(nil), children...)}
	nd.tree = nd.hdrBytes()
	for _, c := range children {
		nd.tree += vs.nodes[c].tree
	}
	id := int32(len(vs.nodes))
	vs.nodes = append(vs.nodes, nd)
	vs.snap.Store(vs.nodes)
	vs.byKey[string(key)] = id
	return id
}

// node returns the interned view; ids are never handed out before the node
// exists, so the snapshot a reader loads always contains id.
func (vs *viewStore) node(id int32) *viewNode {
	arr := vs.snap.Load().([]viewNode)
	return &arr[id]
}

// treeBytes is the wire size of the view sent as a plain tree.
func (vs *viewStore) treeBytes(id int32) int { return vs.node(id).tree }

// dagBytes is the wire size of the view sent as a deduplicated DAG: every
// distinct subtree is encoded once (header plus a 4-byte reference per
// child).
func (vs *viewStore) dagBytes(id int32) int {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if b, ok := vs.dag[id]; ok {
		return b
	}
	seen := map[int32]bool{}
	var walk func(int32) int
	walk = func(id int32) int {
		if seen[id] {
			return 0
		}
		seen[id] = true
		nd := &vs.nodes[id]
		b := nd.hdrBytes() + 4*len(nd.children)
		for _, c := range nd.children {
			b += walk(c)
		}
		return b
	}
	b := walk(id)
	vs.dag[id] = b
	return b
}

// viewGatherStep is the per-round behaviour of every node during the
// view-gathering phase.
func (e *engine) viewGatherStep(n bipartite.Node, round int) {
	deg := e.g.Degree(n)
	kind := e.g.Kind(n)
	var coefs [2]float64
	if kind == bipartite.KindConstraint {
		coefs = e.s.ConsA[e.g.Index(n)]
	}
	children := make([]int32, 0, deg)
	for p := 0; p < deg; p++ {
		children = children[:0]
		if round > 1 {
			for q := 0; q < deg; q++ {
				if q == p {
					continue
				}
				m := e.recv(n, q)
				if !m.has || m.kind != mkView {
					panic("dist: missing view message during gathering")
				}
				children = append(children, m.view)
			}
		}
		id := e.store.intern(kind, deg, p, coefs, children)
		e.send(n, p, message{kind: mkView, view: id})
	}
}

// assembleRootView combines a node's own description with the final
// gathering messages of all its ports; the result is the truncated
// unfolding rooted at n with depth equal to the number of gathering
// rounds.
func (e *engine) assembleRootView(n bipartite.Node, depth int) int32 {
	deg := e.g.Degree(n)
	kind := e.g.Kind(n)
	var coefs [2]float64
	if kind == bipartite.KindConstraint {
		coefs = e.s.ConsA[e.g.Index(n)]
	}
	children := make([]int32, 0, deg)
	if depth > 0 {
		for p := 0; p < deg; p++ {
			m := e.recv(n, p)
			if !m.has || m.kind != mkView {
				panic("dist: missing view message at assembly")
			}
			children = append(children, m.view)
		}
	}
	return e.store.intern(kind, deg, -1, coefs, children)
}

// viewEval evaluates the recursions (5)–(7) on an anonymous view, exactly
// mirroring the iteration orders of the centralised evaluator (core/tu.go):
// constraint minimisations run over the constraint children in port order
// (= the ConsOf row order) and peer summations over the objective child's
// members in port order (= the Objs row order), so every float64 operation
// sequence — and hence every bit — matches the centralised run. Values are
// memoised on (view id, depth): occurrences with equal subviews are merged,
// which keeps the evaluation polynomial in the DAG size.
type viewEval struct {
	vs      *viewStore
	r       int
	rootID  int32
	capRoot float64

	omega       float64
	ok          bool
	plus, minus map[[2]int32]float64
}

func newViewEval(vs *viewStore, rootID int32, r int) *viewEval {
	ve := &viewEval{
		vs: vs, r: r, rootID: rootID,
		plus:  map[[2]int32]float64{},
		minus: map[[2]int32]float64{},
	}
	ve.capRoot = ve.capOf(rootID)
	return ve
}

// capOf evaluates (5): min over the agent occurrence's constraint children
// of 1/a, in port order.
func (ve *viewEval) capOf(id int32) float64 {
	nd := ve.vs.node(id)
	val, j := 0.0, 0
	for _, cid := range nd.children {
		c := ve.vs.node(cid)
		if c.kind != bipartite.KindConstraint {
			continue
		}
		a := c.coefs[c.fromPort]
		if j == 0 || 1/a < val {
			val = 1 / a
		}
		j++
	}
	if j == 0 {
		panic("dist: view truncated before the constraints of an agent occurrence")
	}
	return val
}

// fplus evaluates f+ per (5)/(7) at an agent occurrence reached through its
// objective (or at the root), recording condition (8).
func (ve *viewEval) fplus(id int32, d int) float64 {
	key := [2]int32{id, int32(d)}
	if v, ok := ve.plus[key]; ok {
		return v
	}
	nd := ve.vs.node(id)
	var val float64
	if d == 0 {
		val = ve.capOf(id)
	} else {
		j := 0
		for _, cid := range nd.children {
			c := ve.vs.node(cid)
			if c.kind != bipartite.KindConstraint {
				continue
			}
			if len(c.children) != 1 {
				panic("dist: view truncated before a constraint partner")
			}
			av := c.coefs[c.fromPort]
			aw := c.coefs[1-c.fromPort]
			cand := core.GPlusCandidate(av, aw, ve.fminus(c.children[0], d-1))
			if j == 0 || cand < val {
				val = cand
			}
			j++
		}
		if j == 0 {
			panic("dist: view truncated before the constraints of an agent occurrence")
		}
	}
	if val < 0 {
		ve.ok = false // condition (8) violated at this ω
	}
	ve.plus[key] = val
	return val
}

// fminus evaluates f− per (6): the hinge of ω minus the peer sum, the
// peers being the objective child's members in port order.
func (ve *viewEval) fminus(id int32, d int) float64 {
	key := [2]int32{id, int32(d)}
	if v, ok := ve.minus[key]; ok {
		return v
	}
	sum := 0.0
	for _, pid := range ve.peersOf(id) {
		sum += ve.fplus(pid, d)
	}
	val := core.HingePos(ve.omega - sum)
	ve.minus[key] = val
	return val
}

// peersOf returns the members of the occurrence's objective child in port
// order; the branch back to the occurrence itself is absent by
// construction (the unfolding never backtracks), so these are exactly
// N(v) = Vk(v) \ {v}.
func (ve *viewEval) peersOf(id int32) []int32 {
	nd := ve.vs.node(id)
	for _, cid := range nd.children {
		c := ve.vs.node(cid)
		if c.kind == bipartite.KindObjective {
			return c.children
		}
	}
	panic("dist: view truncated before the objective of an agent occurrence")
}

// feasible reports conditions (8) and (9) for the root at ω, exactly as
// the centralised evaluator does.
func (ve *viewEval) feasible(omega float64) bool {
	ve.omega = omega
	ve.ok = true
	clear(ve.plus)
	clear(ve.minus)
	root := ve.fminus(ve.rootID, ve.r)
	return ve.ok && root <= ve.capRoot
}

// upperBound reconstructs the binary-search start Σ_{w∈Vk(u)} cap_w in the
// objective's port order: the root occupies its own port position (the
// objective child's fromPort), the remaining positions are the child
// views.
func (ve *viewEval) upperBound() float64 {
	nd := ve.vs.node(ve.rootID)
	for _, cid := range nd.children {
		o := ve.vs.node(cid)
		if o.kind != bipartite.KindObjective {
			continue
		}
		hi, idx := 0.0, 0
		for p := 0; p < o.deg; p++ {
			if p == o.fromPort {
				hi += ve.capRoot
				continue
			}
			if idx >= len(o.children) {
				panic("dist: view truncated before the peers of the root")
			}
			hi += ve.capOf(o.children[idx])
			idx++
		}
		return hi
	}
	panic("dist: root view has no objective child")
}

// computeT runs the binary search of §5.2 on the assembled view.
func (ve *viewEval) computeT(binIters int) float64 {
	return core.BinarySearch(ve.upperBound(), binIters, ve.feasible)
}

// GatherView runs the anonymous view-gathering protocol alone for depth
// rounds on the communication graph of s and returns the canonical
// encoding of the view assembled at root: per node, kind, degree, the port
// toward the parent (−1 at the root), the two coefficients for constraint
// nodes, followed by the encodings of the children in increasing port
// order. This is byte-for-byte the encoding of unfold.Truncated(g, root,
// depth), which the cross-check tests assert.
func GatherView(s *structured.Instance, root bipartite.Node, depth int) ([]byte, error) {
	g := bipartite.FromInstance(s.ToMMLP())
	if int(root) < 0 || int(root) >= g.NumNodes() {
		return nil, fmt.Errorf("dist: root %d outside the communication graph", root)
	}
	store := newViewStore()
	e := newEngine(g, store)
	e.s = s
	steps := make([]func(int), g.NumNodes())
	for v := range steps {
		n := bipartite.Node(v)
		steps[v] = func(round int) { e.viewGatherStep(n, round) }
	}
	e.run(steps, depth)
	return store.encodeCanonical(e.assembleRootView(root, depth)), nil
}

// encodeCanonical serialises a view tree in the canonical port-order
// format documented on GatherView.
func (vs *viewStore) encodeCanonical(id int32) []byte {
	var out []byte
	var walk func(int32)
	walk = func(id int32) {
		nd := vs.node(id)
		out = append(out, byte(nd.kind))
		out = binary.BigEndian.AppendUint16(out, uint16(nd.deg))
		out = binary.BigEndian.AppendUint16(out, uint16(int16(nd.fromPort)))
		if nd.kind == bipartite.KindConstraint {
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(nd.coefs[0]))
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(nd.coefs[1]))
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(id)
	return out
}
