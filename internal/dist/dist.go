package dist

import (
	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/structured"
)

// RoundStats is the traffic of one synchronous round.
type RoundStats struct {
	// Messages and Bytes total the round's traffic; MaxBytes is its
	// largest single message.
	Messages, Bytes, MaxBytes int
	// CompressedBytes re-counts view messages at their DAG-compressed
	// size (equal to Bytes in rounds without view messages).
	CompressedBytes int
}

// Stats aggregates the traffic of a protocol run.
type Stats struct {
	// Messages and Bytes total the traffic of all rounds.
	Messages, Bytes int
	// MaxMessageBytes is the largest single message of the run, dominated
	// by the view-gathering phase: it grows with R but not with the
	// network size.
	MaxMessageBytes int
	// CompressedBytes totals the DAG-compressed message sizes.
	CompressedBytes int
	// PerRound holds one entry per round; the final round carries no
	// messages (the output (18) is evaluated locally).
	PerRound []RoundStats
}

// Result is the outcome of a distributed run.
type Result struct {
	// Rounds is the number of synchronous rounds, 12(R−2)+8 — a function
	// of R only, independent of the instance.
	Rounds int
	// T[u] is the per-agent bound t_u of §5.2 (min_u T[u] certifies the
	// optimum from above, Lemma 2); X is the output (18). Both are
	// bit-identical to the corresponding fields of core.Solve's Trace.
	T, X []float64
	// Stats reports the communication volume.
	Stats Stats
}

// SolveDistributed runs the §5 algorithm as the anonymous view-gathering
// protocol: nodes carry no identifiers, and stage 1 ships radius-(4r+3)
// views as trees (counted tree-encoded in Stats.Bytes and DAG-compressed
// in Stats.CompressedBytes). Options.Workers is ignored — the parallelism
// is one goroutine per network node.
func SolveDistributed(s *structured.Instance, opt core.Options) (*Result, error) {
	return solve(s, opt, false)
}

// SolveDistributedCompact runs the same algorithm as the identifier-based
// record-gossip protocol: polynomial message sizes, identical outputs.
func SolveDistributedCompact(s *structured.Instance, opt core.Options) (*Result, error) {
	return solve(s, opt, true)
}

func solve(s *structured.Instance, opt core.Options, compact bool) (*Result, error) {
	opt, err := opt.Normalized()
	if err != nil {
		return nil, err
	}
	sch := newSchedule(opt.R - 2)
	g := bipartite.FromInstance(s.ToMMLP())
	var store *viewStore
	if !compact {
		store = newViewStore()
	}
	e := newEngine(g, store)
	e.s = s

	newGossip := func() *gossip {
		if !compact {
			return nil
		}
		return &gossip{known: make([]bool, g.NumNodes())}
	}
	steps := make([]func(int), g.NumNodes())
	agents := make([]*agentNode, s.N)
	for v := 0; v < s.N; v++ {
		a := &agentNode{
			e: e, sch: sch, id: g.AgentNode(v),
			deg: g.Degree(g.AgentNode(v)), R: opt.R, binIters: opt.BinIters,
			gp: make([]float64, sch.r+1), gm: make([]float64, sch.r+1),
			gs: newGossip(),
		}
		a.objPort = a.deg - 1
		agents[v] = a
		steps[a.id] = a.step
	}
	for i := range s.ConsV {
		c := &consNode{e: e, sch: sch, id: g.ConstraintNode(i), coefs: s.ConsA[i], gs: newGossip()}
		steps[c.id] = c.step
	}
	for k := range s.Objs {
		o := &objNode{e: e, sch: sch, id: g.ObjectiveNode(k), gs: newGossip()}
		o.deg = g.Degree(o.id)
		o.vals = make([]float64, o.deg)
		steps[o.id] = o.step
	}

	e.run(steps, sch.total)

	res := &Result{Rounds: sch.total, T: make([]float64, s.N), X: make([]float64, s.N)}
	for v, a := range agents {
		if a.err != nil {
			return nil, a.err
		}
		res.T[v] = a.t
		res.X[v] = a.x
	}
	res.Stats = e.totals()
	return res, nil
}
