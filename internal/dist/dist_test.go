package dist_test

import (
	"fmt"
	"testing"

	maxminlp "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/structured"
	"repro/internal/transform"
)

// protocols names the two stage-1 variants under test.
var protocols = []struct {
	name string
	run  func(*structured.Instance, core.Options) (*dist.Result, error)
}{
	{"views", dist.SolveDistributed},
	{"records", dist.SolveDistributedCompact},
}

// structuredFamilies builds the structured-form instances of the
// conformance sweep: the adversarial necklace, a random structured
// instance, and a random general instance pushed through the §4
// transformation pipeline.
func structuredFamilies(t *testing.T) map[string]*structured.Instance {
	t.Helper()
	out := map[string]*structured.Instance{}
	add := func(name string, in *mmlp.Instance) {
		s, err := structured.FromMMLP(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = s
	}
	add("TriNecklace", gen.TriNecklace(5))
	add("Structured", gen.RandomStructured(gen.StructuredConfig{Objectives: 8, MaxDegK: 3, ExtraCons: 4}, 7))

	in := gen.Random(gen.RandomConfig{Agents: 10, MaxDegI: 3, MaxDegK: 3, ExtraCons: 3, ExtraObjs: 1}, 11)
	pp := transform.Preprocess(in)
	if pp.Outcome != transform.OK {
		t.Fatalf("Random: unexpected preprocess outcome %v", pp.Outcome)
	}
	pipe, err := transform.Structure(pp.Out)
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	s, err := structured.FromMMLP(pipe.Final())
	if err != nil {
		t.Fatalf("Random: %v", err)
	}
	out["Random"] = s
	return out
}

// TestDistConformance asserts that both protocols return T and X
// bit-identical to the centralised engine on every family and every
// R ∈ {2, 3, 4}.
func TestDistConformance(t *testing.T) {
	for name, s := range structuredFamilies(t) {
		for _, R := range []int{2, 3, 4} {
			want, err := core.Solve(s, core.Options{R: R})
			if err != nil {
				t.Fatalf("%s R=%d: core: %v", name, R, err)
			}
			for _, pr := range protocols {
				t.Run(fmt.Sprintf("%s/%s/R=%d", name, pr.name, R), func(t *testing.T) {
					got, err := pr.run(s, core.Options{R: R})
					if err != nil {
						t.Fatal(err)
					}
					for u := range want.T {
						if got.T[u] != want.T[u] {
							t.Fatalf("T[%d] = %v, centralised %v", u, got.T[u], want.T[u])
						}
					}
					for v := range want.X {
						if got.X[v] != want.X[v] {
							t.Fatalf("X[%d] = %v, centralised %v", v, got.X[v], want.X[v])
						}
					}
				})
			}
		}
	}
}

// TestDistProtocolsAgree asserts the two protocols agree bit-for-bit with
// each other (a consequence of conformance, checked directly for the
// statistic fields too: rounds and message counts of the shared phases
// must coincide).
func TestDistProtocolsAgree(t *testing.T) {
	s, err := structured.FromMMLP(gen.TriNecklace(6))
	if err != nil {
		t.Fatal(err)
	}
	a, err := dist.SolveDistributed(s, core.Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := dist.SolveDistributedCompact(s, core.Options{R: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds {
		t.Fatalf("rounds differ: %d vs %d", a.Rounds, b.Rounds)
	}
	for v := range a.X {
		if a.X[v] != b.X[v] || a.T[v] != b.T[v] {
			t.Fatalf("protocols disagree at agent %d", v)
		}
	}
	// The scalar phases (everything after gathering) are identical
	// protocols, so their per-round message counts must match.
	gather := 4*(3-2) + 3
	for i := gather; i < len(a.Stats.PerRound); i++ {
		if a.Stats.PerRound[i].Messages != b.Stats.PerRound[i].Messages {
			t.Fatalf("round %d: %d vs %d messages", i+1,
				a.Stats.PerRound[i].Messages, b.Stats.PerRound[i].Messages)
		}
	}
}

// TestDistPublicAPIAgreement asserts SolveLocalDistributed ==
// SolveLocal through the public library surface, for both protocols, on a
// general (unstructured) instance.
func TestDistPublicAPIAgreement(t *testing.T) {
	in := maxminlp.GenerateRandom(maxminlp.RandomConfig{
		Agents: 9, MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1,
	}, 3)
	for _, R := range []int{2, 3, 4} {
		central, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: R, DisableSpecialCases: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, compact := range []bool{false, true} {
			sol, info, err := maxminlp.SolveLocalDistributed(in, maxminlp.LocalOptions{
				R: R, DisableSpecialCases: true, CompactProtocol: compact,
			})
			if err != nil {
				t.Fatal(err)
			}
			for v := range central.X {
				if sol.X[v] != central.X[v] {
					t.Fatalf("R=%d compact=%v: X[%d] = %v, central %v", R, compact, v, sol.X[v], central.X[v])
				}
			}
			if sol.Utility != central.Utility || sol.UpperBound != central.UpperBound {
				t.Fatalf("R=%d compact=%v: utility/bound differ", R, compact)
			}
			if info.Rounds != 12*(R-2)+8 {
				t.Fatalf("R=%d: rounds = %d", R, info.Rounds)
			}
		}
	}
}
