// Package dist executes the §5 local algorithm as an honest synchronous
// message-passing protocol on the bipartite communication graph
// G = (V ∪ I ∪ K, E) of a structured max-min LP: one goroutine per agent,
// constraint and objective node, one barrier per round, messages travelling
// only along edges, and per-round traffic accounting. A run takes exactly
// 12(R−2)+8 rounds regardless of the network size — the defining property
// of a local algorithm — and its T and X vectors are bit-identical to the
// centralised engine's (core.Solve), because both sides evaluate the same
// exported per-node kernels in the same order.
//
// Two stage-1 protocols are provided:
//
//   - SolveDistributed — anonymous view gathering (the port-numbering
//     model of §1.2 and of arXiv:0710.1499, arXiv:0804.4815): in 4r+3
//     rounds every node assembles the truncated unfolding of §3 rooted at
//     itself, then runs the t_u binary search on it. View messages are
//     trees, so Stats.Bytes grows exponentially with R;
//     Stats.CompressedBytes re-counts them in the standard DAG encoding
//     (equal subtrees stored once), and Stats.MaxMessageBytes grows with R
//     but not with the instance size.
//
//   - SolveDistributedCompact — identifier-based record gossip: nodes
//     flood O(degree)-byte records of their local rows, reconstruct their
//     radius-(4r+3) neighbourhood exactly, and reuse the centralised
//     kernel (core.Evaluator) on it. Message sizes stay polynomial;
//     outputs are bit-identical to the anonymous protocol.
//
// The remaining phases are shared: 2r+1 min-diffusion iterations (two
// rounds each) for the smoothing of §5.3, one objective round trip for
// g−_0 plus a constraint and an objective round trip per depth d = 1…r for
// the recursions (12)–(14), and a final message-free round in which every
// agent evaluates the output (18).
package dist
