package dist

import (
	"fmt"
	"sort"

	"repro/internal/bipartite"
	"repro/internal/core"
)

// The compact protocol trades anonymity for polynomial messages: every
// node carries a unique identifier and gossips *records* — its own local
// description, keyed by its id — instead of anonymous view trees. An agent
// record lists the ids of the agent's constraints (in port order) and its
// objective; a constraint record lists its two agent ids and coefficients;
// an objective record lists its member ids in port order. A record is
// forwarded on every port the round after it is first learned, so after
// 4r+3 rounds a node knows exactly the records of its radius-(4r+3)
// neighbourhood. Because records carry the original row orderings, the
// reconstructed neighbourhood is literally the local restriction of the
// structured instance, and t_u can be computed with the centralised
// kernel (core.Evaluator) unchanged — outputs are bit-identical to both
// core.Solve and the anonymous-view protocol.
//
// Message sizes are polynomial: a record is O(degree) bytes and each of
// the O(radius · |E|) record transfers ships a record at most once per
// edge direction.

// recordBytes is the wire size of one record: kind (1), id (4), neighbour
// count (2), 4 bytes per neighbour id, plus the two coefficients for
// constraint records.
func recordBytes(g *bipartite.Graph, id int32) int {
	b := 1 + 4 + 2 + 4*g.Degree(bipartite.Node(id))
	if g.Kind(bipartite.Node(id)) == bipartite.KindConstraint {
		b += 16
	}
	return b
}

// recordBatchBytes is the wire size of a gossip message: a 2-byte count
// plus its records.
func recordBatchBytes(g *bipartite.Graph, recs []int32) int {
	b := 2
	for _, id := range recs {
		b += recordBytes(g, id)
	}
	return b
}

// gossip is the per-node record state.
type gossip struct {
	known []bool // by node id
}

// gossipStep forwards newly learned records on every port. Round 1 seeds
// the flood with the node's own record; later rounds forward what arrived
// in the previous round, deduplicated and id-sorted for determinism.
func (e *engine) gossipStep(gs *gossip, n bipartite.Node, round int) {
	var fresh []int32
	if round == 1 {
		gs.known[n] = true
		fresh = []int32{int32(n)}
	} else {
		fresh = e.collectFresh(gs, n)
	}
	if len(fresh) == 0 {
		return
	}
	for p := 0; p < e.g.Degree(n); p++ {
		e.send(n, p, message{kind: mkRecords, recs: fresh})
	}
}

// collectFresh drains the node's inbox and returns the ids not seen
// before, sorted ascending.
func (e *engine) collectFresh(gs *gossip, n bipartite.Node) []int32 {
	var fresh []int32
	for p := 0; p < e.g.Degree(n); p++ {
		m := e.recv(n, p)
		if !m.has || m.kind != mkRecords {
			continue
		}
		for _, id := range m.recs {
			if !gs.known[id] {
				gs.known[id] = true
				fresh = append(fresh, id)
			}
		}
	}
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	return fresh
}

// checkCoverage verifies the locality contract of the gossip phase: every
// node within graph distance radius of n — everything the t_u recursion
// can touch — has delivered its record.
func (e *engine) checkCoverage(gs *gossip, n bipartite.Node, radius int) error {
	depth := map[bipartite.Node]int{n: 0}
	queue := []bipartite.Node{n}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if !gs.known[v] {
			return fmt.Errorf("dist: node %d at distance %d from %d has no record after %d rounds",
				v, depth[v], n, radius)
		}
		if depth[v] == radius {
			continue
		}
		for _, w := range e.g.Neighbors(v) {
			if _, ok := depth[w]; !ok {
				depth[w] = depth[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return nil
}

// recComputeT finishes the gossip (folding the final round's batches),
// checks coverage, and computes t_u on the reconstructed neighbourhood —
// which is the local restriction of the structured instance, so the
// centralised kernel applies verbatim.
//
// The evaluator is scoped to the agents whose records this node gossiped:
// the checked radius-(4r+3) ball strictly contains everything the t_u
// recursion can reach (bipartite distance ≤ 4r+2), and for bounded-degree
// instances it is O(1) agents. Every agent runs its evaluator in the same
// simulated round, so full-instance tables would put O(N²·(r+1)) words in
// flight at the barrier; scoped tables keep the whole round at O(N).
func (a *agentNode) recComputeT() (float64, error) {
	e := a.e
	e.collectFresh(a.gs, a.id)
	if err := e.checkCoverage(a.gs, a.id, a.sch.gather); err != nil {
		return 0, err
	}
	// Agents occupy node ids [0, s.N); their records double as the
	// evaluator scope.
	agents := make([]int32, 0, 16)
	for id := 0; id < e.s.N; id++ {
		if a.gs.known[id] {
			agents = append(agents, int32(id))
		}
	}
	ev, err := core.NewEvaluatorScoped(e.s, a.sch.r, agents)
	if err != nil {
		return 0, err
	}
	return ev.ComputeT(int32(a.id), a.binIters), nil
}
