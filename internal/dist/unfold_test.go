package dist_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/structured"
	"repro/internal/unfold"
)

// encodeUnfolding serialises a truncated unfolding in the canonical
// port-order format of dist.GatherView: per node, kind, degree, the port
// toward the parent (−1 at the root), the two coefficients for constraint
// nodes, then the children in increasing port order.
func encodeUnfolding(s *structured.Instance, g *bipartite.Graph, t *unfold.Tree) []byte {
	children := make([][]int, t.Size())
	for i := 1; i < t.Size(); i++ {
		p := t.Parent[i]
		children[p] = append(children[p], i) // BFS order == port order per parent
	}
	var out []byte
	var walk func(node int)
	walk = func(node int) {
		v := t.Vertex[node]
		out = append(out, byte(g.Kind(v)))
		out = binary.BigEndian.AppendUint16(out, uint16(g.Degree(v)))
		toParent := -1
		if p := t.Parent[node]; p != -1 {
			toParent = g.PortTo(v, t.Vertex[p])
		}
		out = binary.BigEndian.AppendUint16(out, uint16(int16(toParent)))
		if g.Kind(v) == bipartite.KindConstraint {
			a := s.ConsA[g.Index(v)]
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(a[0]))
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(a[1]))
		}
		for _, c := range children[node] {
			walk(c)
		}
	}
	walk(0)
	return out
}

// TestDistViewEqualsUnfolding asserts the cross-check of §3: the anonymous
// view a node gathers in d message-passing rounds is exactly the truncated
// unfolding unfold.Truncated(g, root, d), byte-for-byte in the canonical
// port-order encoding — for agent, constraint and objective roots alike.
func TestDistViewEqualsUnfolding(t *testing.T) {
	instances := map[string]*structured.Instance{}
	for name, in := range map[string]func() *structured.Instance{
		"necklace": func() *structured.Instance {
			s, err := structured.FromMMLP(gen.TriNecklace(4))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"structured": func() *structured.Instance {
			s, err := structured.FromMMLP(gen.RandomStructured(gen.StructuredConfig{
				Objectives: 6, MaxDegK: 3, ExtraCons: 3,
			}, 5))
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	} {
		instances[name] = in()
	}
	for name, s := range instances {
		g := bipartite.FromInstance(s.ToMMLP())
		roots := []bipartite.Node{
			g.AgentNode(0), g.AgentNode(s.N - 1),
			g.ConstraintNode(0), g.ObjectiveNode(0),
		}
		for _, root := range roots {
			for _, depth := range []int{0, 1, 3, 7} {
				t.Run(fmt.Sprintf("%s/root=%d/d=%d", name, root, depth), func(t *testing.T) {
					got, err := dist.GatherView(s, root, depth)
					if err != nil {
						t.Fatal(err)
					}
					tree := unfold.Truncated(g, root, depth)
					if err := tree.Verify(g); err != nil {
						t.Fatal(err)
					}
					want := encodeUnfolding(s, g, tree)
					if !bytes.Equal(got, want) {
						t.Fatalf("gathered view differs from the truncated unfolding: %d vs %d bytes",
							len(got), len(want))
					}
				})
			}
		}
	}
}
