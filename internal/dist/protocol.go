package dist

import (
	"repro/internal/bipartite"
	"repro/internal/core"
)

// The round schedule. With r = R−2, the protocol spends
//
//	rounds 1 … 4r+3            view gathering / record gossip,
//	rounds 4r+4 … 8r+5         smoothing: 2r+1 min-diffusion iterations,
//	                           each an agent broadcast plus a relay reply,
//	rounds 8r+6 … 12r+7        the g± recursions: one objective round trip
//	                           for g−_0, then per depth d = 1…r a
//	                           constraint round trip for g+_d and an
//	                           objective round trip for g−_d,
//	round  12r+8               output: every agent evaluates (18) locally;
//	                           no messages.
//
// The total, 12(R−2)+8, depends only on R — the defining property of a
// local algorithm. Nodes act on the round counter alone; all control flow
// below is a function of (round, R), never of the instance.
type schedule struct {
	r         int // R−2
	gather    int // 4r+3
	smoothEnd int // 8r+5
	total     int // 12r+8
}

func newSchedule(r int) schedule {
	gather := 4*r + 3
	return schedule{r: r, gather: gather, smoothEnd: gather + 4*r + 2, total: 12*r + 8}
}

// agentNode is the state of one agent's virtual processor.
type agentNode struct {
	e        *engine
	sch      schedule
	id       bipartite.Node
	deg      int
	objPort  int // the objective is the last port (constraints come first)
	R        int
	binIters int
	gs       *gossip // non-nil in the compact protocol

	t      float64   // t_u from the gathering phase
	cur    float64   // running smoothing value, ends as s_v
	cap    float64   // cap_v = g+_{v,0}
	gp, gm []float64 // g±_{v,d} for d = 0…r
	x      float64   // the output (18)
	err    error
}

func (a *agentNode) step(round int) {
	if a.err != nil {
		return
	}
	e := a.e
	switch {
	case round <= a.sch.gather:
		if a.gs != nil {
			e.gossipStep(a.gs, a.id, round)
		} else {
			e.viewGatherStep(a.id, round)
		}
	case round <= a.sch.smoothEnd:
		k := round - a.sch.gather
		if k == 1 {
			a.computeT()
			if a.err != nil {
				return
			}
			a.cur = a.t
		} else if k%2 == 1 {
			a.foldSmoothing()
		}
		if k%2 == 1 {
			for p := 0; p < a.deg; p++ {
				e.send(a.id, p, message{kind: mkScalar, val: a.cur})
			}
		}
	default:
		gk := round - a.sch.smoothEnd
		switch {
		case round == a.sch.total:
			// (13) at depth r, then the output (18); no messages leave.
			a.gm[a.sch.r] = core.HingePos(a.cur - e.recv(a.id, a.objPort).val)
			a.x = core.CombineOutput(a.gp, a.gm, a.R)
		case gk == 1:
			a.foldSmoothing() // the last smoothing replies: cur is now s_v
			a.gp[0] = a.cap   // (12)
			e.send(a.id, a.objPort, message{kind: mkScalar, val: a.gp[0]})
		case gk%4 == 3: // gk = 4d−1: finish g−_{d−1}, start the g+_d trip
			d := (gk + 1) / 4
			a.gm[d-1] = core.HingePos(a.cur - e.recv(a.id, a.objPort).val)
			for p := 0; p < a.objPort; p++ {
				e.send(a.id, p, message{kind: mkScalar, val: a.gm[d-1]})
			}
		case gk%4 == 1: // gk = 4d+1: finish g+_d, start the g−_d trip
			d := gk / 4
			a.gp[d] = a.minCandidates()
			e.send(a.id, a.objPort, message{kind: mkScalar, val: a.gp[d]})
		}
	}
}

// computeT runs the protocol-specific stage-1 computation at the start of
// the first post-gathering round.
func (a *agentNode) computeT() {
	if a.gs != nil {
		t, err := a.recComputeT()
		if err != nil {
			a.err = err
			return
		}
		// cap_v from the agent's own record and its constraints' records:
		// the same min over the same port order as structured.FromMMLP.
		a.cap = a.e.s.Caps[a.id]
		a.t = t
		return
	}
	rootID := a.e.assembleRootView(a.id, a.sch.gather)
	ve := newViewEval(a.e.store, rootID, a.sch.r)
	a.cap = ve.capRoot
	a.t = ve.computeT(a.binIters)
}

// foldSmoothing applies one min-diffusion iteration: the constraint
// replies carry the partners' values, the objective reply the member
// minimum — together exactly the distance-2 neighbourhood of §5.3.
func (a *agentNode) foldSmoothing() {
	m := a.cur
	for p := 0; p < a.deg; p++ {
		if v := a.e.recv(a.id, p); v.has && v.val < m {
			m = v.val
		}
	}
	a.cur = m
}

// minCandidates evaluates the outer minimisation of (14) over the
// constraint replies in port order (= the ConsOf row order of the
// centralised engine).
func (a *agentNode) minCandidates() float64 {
	best := 0.0
	for p := 0; p < a.objPort; p++ {
		v := a.e.recv(a.id, p).val
		if p == 0 || v < best {
			best = v
		}
	}
	return best
}

// consNode is the state of one constraint's virtual processor: a pure
// relay that knows its two coefficients.
type consNode struct {
	e     *engine
	sch   schedule
	id    bipartite.Node
	coefs [2]float64
	gs    *gossip
}

func (c *consNode) step(round int) {
	e := c.e
	switch {
	case round <= c.sch.gather:
		if c.gs != nil {
			e.gossipStep(c.gs, c.id, round)
		} else {
			e.viewGatherStep(c.id, round)
		}
	case round <= c.sch.smoothEnd:
		if (round-c.sch.gather)%2 == 0 {
			// Swap the agents' smoothing values.
			v0, v1 := e.recv(c.id, 0), e.recv(c.id, 1)
			e.send(c.id, 0, message{kind: mkScalar, val: v1.val})
			e.send(c.id, 1, message{kind: mkScalar, val: v0.val})
		}
	default:
		gk := round - c.sch.smoothEnd
		if gk%4 == 0 && gk <= 4*c.sch.r {
			// The inner expression of (14) for each endpoint: the
			// constraint knows both coefficients and computes the
			// candidate its agent will minimise over.
			gm0, gm1 := e.recv(c.id, 0).val, e.recv(c.id, 1).val
			e.send(c.id, 0, message{kind: mkScalar, val: core.GPlusCandidate(c.coefs[0], c.coefs[1], gm1)})
			e.send(c.id, 1, message{kind: mkScalar, val: core.GPlusCandidate(c.coefs[1], c.coefs[0], gm0)})
		}
	}
}

// objNode is the state of one objective's virtual processor: it relays
// member minima during smoothing and leave-one-out sums during the g±
// phase.
type objNode struct {
	e    *engine
	sch  schedule
	id   bipartite.Node
	deg  int
	gs   *gossip
	vals []float64
}

func (o *objNode) step(round int) {
	e := o.e
	switch {
	case round <= o.sch.gather:
		if o.gs != nil {
			e.gossipStep(o.gs, o.id, round)
		} else {
			e.viewGatherStep(o.id, round)
		}
	case round <= o.sch.smoothEnd:
		if (round-o.sch.gather)%2 == 0 {
			m := e.recv(o.id, 0).val
			for p := 1; p < o.deg; p++ {
				if v := e.recv(o.id, p).val; v < m {
					m = v
				}
			}
			for p := 0; p < o.deg; p++ {
				e.send(o.id, p, message{kind: mkScalar, val: m})
			}
		}
	default:
		gk := round - o.sch.smoothEnd
		if gk%4 == 2 {
			// Leave-one-out peer sums for (13), each in increasing port
			// order — the PeersDo order of the centralised engine.
			for p := 0; p < o.deg; p++ {
				o.vals[p] = e.recv(o.id, p).val
			}
			for p := 0; p < o.deg; p++ {
				sum := 0.0
				for q := 0; q < o.deg; q++ {
					if q != p {
						sum += o.vals[q]
					}
				}
				e.send(o.id, p, message{kind: mkScalar, val: sum})
			}
		}
	}
}
