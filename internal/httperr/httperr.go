// Package httperr renders the fleet's unified JSON error envelope. Every
// non-2xx response from mmlpserve and mmlprouter carries the same body —
// {"error":{"code":"…","message":"…"}} — with a stable machine code from
// the mmlp.ErrCode* vocabulary, so clients and the router branch on the
// code instead of parsing English. The package also wraps an http.Handler
// so the net/http mux's own plain-text fallbacks (404 page not found,
// 405 method not allowed) speak the envelope too.
package httperr

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/mmlp"
)

// Write emits one enveloped error response.
func Write(w http.ResponseWriter, status int, code string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(mmlp.ErrorResponse{
		Error: mmlp.ErrorDetail{Code: code, Message: err.Error()},
	})
}

// CodeForStatus maps an HTTP status onto its default machine code — for
// call sites whose status is computed (body-size limits, decode failures)
// rather than chosen alongside a specific code.
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return mmlp.ErrCodeInvalidArgument
	case http.StatusNotFound:
		return mmlp.ErrCodeNotFound
	case http.StatusMethodNotAllowed:
		return mmlp.ErrCodeMethodNotAllowed
	case http.StatusConflict:
		return mmlp.ErrCodeConflict
	case http.StatusRequestEntityTooLarge:
		return mmlp.ErrCodeBodyTooLarge
	case http.StatusTooManyRequests:
		return mmlp.ErrCodeOverloaded
	case http.StatusBadGateway:
		return mmlp.ErrCodeBadGateway
	case http.StatusServiceUnavailable:
		return mmlp.ErrCodeUnavailable
	case http.StatusGatewayTimeout:
		return mmlp.ErrCodeDeadlineExceeded
	default:
		return mmlp.ErrCodeInternal
	}
}

// Envelope wraps h so 404/405 responses h did not author itself — the
// mux's plain-text "404 page not found" and "405 method not allowed"
// fallbacks — are rewritten into the envelope. Responses that already
// carry a JSON content type (every handler-authored error goes through
// Write) pass through untouched, as does everything else: streaming,
// flushing and status codes are preserved.
func Envelope(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&envelopeWriter{rw: w, req: r}, r)
	})
}

// envelopeWriter intercepts the first WriteHeader: a non-JSON 404/405 at
// that point can only be the mux fallback (handlers write the envelope
// with the JSON content type already set), so its body is replaced and
// the original plain-text body swallowed.
type envelopeWriter struct {
	rw      http.ResponseWriter
	req     *http.Request
	swallow bool
	wrote   bool
}

func (w *envelopeWriter) Header() http.Header { return w.rw.Header() }

func (w *envelopeWriter) WriteHeader(status int) {
	if w.wrote {
		w.rw.WriteHeader(status)
		return
	}
	w.wrote = true
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		!strings.HasPrefix(w.rw.Header().Get("Content-Type"), "application/json") {
		w.swallow = true
		w.rw.Header().Set("Content-Type", "application/json")
		err := fmt.Errorf("%s %s: %s", w.req.Method, w.req.URL.Path,
			strings.ToLower(http.StatusText(status)))
		w.rw.WriteHeader(status)
		json.NewEncoder(w.rw).Encode(mmlp.ErrorResponse{
			Error: mmlp.ErrorDetail{Code: CodeForStatus(status), Message: err.Error()},
		})
		return
	}
	w.rw.WriteHeader(status)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.wrote = true // implicit 200: nothing to rewrite
	}
	if w.swallow {
		return len(b), nil
	}
	return w.rw.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers (batch
// NDJSON) keep their per-record flushes through the wrapper.
func (w *envelopeWriter) Flush() {
	if f, ok := w.rw.(http.Flusher); ok {
		f.Flush()
	}
}
