package simplex

import (
	"fmt"
	"math"

	"repro/internal/mmlp"
)

// SolveWithDuals runs the float64 simplex and additionally extracts the
// optimal dual values, one per row. For a maximisation problem the duals
// satisfy (when Status == Optimal):
//
//	strong duality:      Σ_i y_i b_i = optimum,
//	dual feasibility:    Σ_i y_i a_ij ≥ c_j for every variable j,
//	sign conventions:    y_i ≥ 0 for ≤ rows, y_i ≤ 0 for ≥ rows, free for =.
//
// Duals are read off the final reduced-cost row: the slack column of row i
// prices to exactly y_i (cost 0, unit coefficient), a surplus column to
// −y_i, and an artificial column (equality rows) to y_i.
func SolveWithDuals(p *Problem) (Result, []float64) {
	// Re-run build bookkeeping to locate each row's private column.
	// (This duplicates the column plan of build; kept in sync by tests.)
	r, duals := solveDuals(p, 1e-9)
	return r, duals
}

func solveDuals(p *Problem, eps float64) (Result, []float64) {
	ar := floatArith{eps: eps}
	t := build[float64](ar, p)
	if t.artStart < t.ncols {
		st := t.iterate(t.obj1, t.ncols)
		if st == Stalled {
			return Result{Status: Stalled}, nil
		}
		if ar.sign(t.obj1[t.ncols]) != 0 {
			return Result{Status: Infeasible}, nil
		}
		t.evictArtificials()
	}
	st := t.iterate(t.obj2, t.artStart)
	if st != Optimal {
		return Result{Status: st}, nil
	}
	xs := make([]float64, t.nStruct)
	for i, b := range t.basis {
		if b < t.nStruct {
			xs[b] = t.a[i][t.ncols]
		}
	}
	res := Result{Status: Optimal, X: xs, Value: t.obj2[t.ncols]}

	// Column plan reconstruction: which column belongs to which row.
	duals := make([]float64, len(p.Rows))
	col := p.NumVars
	type owner struct {
		row  int
		sign float64 // +1 slack, −1 surplus
	}
	owners := make([]owner, 0, len(p.Rows))
	flips := make([]float64, len(p.Rows))
	for i, row := range p.Rows {
		rel, rhs := row.Rel, row.RHS
		flips[i] = 1
		if rhs < 0 {
			flips[i] = -1
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		if rel == LE {
			owners = append(owners, owner{i, 1})
			col++
		} else if rel == GE {
			owners = append(owners, owner{i, -1})
			col++
		}
	}
	artCol := col
	for i, row := range p.Rows {
		rel := row.Rel
		if flips[i] < 0 {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		if rel == GE || rel == EQ {
			// For GE the surplus already identifies the dual; equality rows
			// need their artificial column.
			if rel == EQ {
				duals[i] = flips[i] * t.obj2[artCol]
			}
			artCol++
		}
	}
	colAt := p.NumVars
	for _, ow := range owners {
		duals[ow.row] = flips[ow.row] * ow.sign * t.obj2[colAt]
		colAt++
	}
	return res, duals
}

// MaxMinCertificate is a self-contained upper-bound proof for a max-min
// LP, extracted from the optimal duals of the FromMaxMin reduction. With
// yCons ≥ 0 (one weight per constraint row) and yObjs ≥ 0 (one per
// objective row) satisfying
//
//	Σ_k yObjs_k ≥ 1                                (ω is covered)
//	Σ_i yCons_i a_iv ≥ Σ_k yObjs_k c_kv  ∀ agent v (agents priced out)
//
// every feasible solution has ω ≤ Σ_i yCons_i =: Bound. Verify re-checks
// the inequalities from scratch, so a certificate can be validated without
// trusting the solver.
type MaxMinCertificate struct {
	YCons []float64
	YObjs []float64
	Bound float64
}

// CertifyMaxMin solves the instance and returns the optimal solution
// together with a dual certificate of its optimality.
func CertifyMaxMin(in *mmlp.Instance) (Result, *MaxMinCertificate, error) {
	if len(in.Objs) == 0 {
		return Result{Status: Unbounded}, nil, fmt.Errorf("simplex: no objectives")
	}
	p := FromMaxMin(in)
	res, duals := solveDuals(p, 1e-9)
	if res.Status != Optimal {
		return res, nil, fmt.Errorf("simplex: %v", res.Status)
	}
	cert := &MaxMinCertificate{
		YCons: make([]float64, len(in.Cons)),
		YObjs: make([]float64, len(in.Objs)),
	}
	for i := range in.Cons {
		y := duals[i]
		if y < 0 {
			y = 0 // clip float noise; Verify re-checks soundness
		}
		cert.YCons[i] = y
		cert.Bound += y
	}
	for k := range in.Objs {
		y := duals[len(in.Cons)+k]
		if y < 0 {
			y = 0
		}
		cert.YObjs[k] = y
	}
	res.X = res.X[:in.NumAgents]
	return res, cert, nil
}

// Verify checks the certificate inequalities directly against the
// instance, with additive tolerance tol, and confirms Bound = Σ yCons.
func (c *MaxMinCertificate) Verify(in *mmlp.Instance, tol float64) error {
	if len(c.YCons) != len(in.Cons) || len(c.YObjs) != len(in.Objs) {
		return fmt.Errorf("simplex: certificate shape mismatch")
	}
	sumY := 0.0
	for i, y := range c.YCons {
		if y < -tol {
			return fmt.Errorf("simplex: negative constraint weight %d", i)
		}
		sumY += y
	}
	if math.Abs(sumY-c.Bound) > tol*math.Max(1, c.Bound) {
		return fmt.Errorf("simplex: bound %v != Σ y = %v", c.Bound, sumY)
	}
	cover := 0.0
	for k, y := range c.YObjs {
		if y < -tol {
			return fmt.Errorf("simplex: negative objective weight %d", k)
		}
		cover += y
	}
	if cover < 1-tol {
		return fmt.Errorf("simplex: objective weights cover only %v < 1", cover)
	}
	// Agents priced out: Σ_i y_i a_iv − Σ_k y_k c_kv ≥ 0.
	price := make([]float64, in.NumAgents)
	for i, cRow := range in.Cons {
		for _, t := range cRow.Terms {
			price[t.Agent] += c.YCons[i] * t.Coef
		}
	}
	for k, o := range in.Objs {
		for _, t := range o.Terms {
			price[t.Agent] -= c.YObjs[k] * t.Coef
		}
	}
	for v, pv := range price {
		if pv < -tol {
			return fmt.Errorf("simplex: agent %d priced at %v < 0", v, pv)
		}
	}
	return nil
}
