package simplex

import (
	"math"
	"math/big"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestSolveBasicLE(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → opt 36 at (2,6).
	p := New(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 5)
	p.AddRow(LE, 4, 0, 1)
	p.AddRow(LE, 12, 1, 2)
	p.AddRow(LE, 18, 0, 3, 1, 2)
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	approx(t, r.Value, 36, 1e-9, "value")
	approx(t, r.X[0], 2, 1e-9, "x")
	approx(t, r.X[1], 6, 1e-9, "y")
}

func TestSolveWithGEAndEQ(t *testing.T) {
	// max x + y s.t. x + y ≤ 10, x ≥ 2, y = 3 → opt at (7,3) value 10.
	p := New(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(LE, 10, 0, 1, 1, 1)
	p.AddRow(GE, 2, 0, 1)
	p.AddRow(EQ, 3, 1, 1)
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	approx(t, r.Value, 10, 1e-9, "value")
	approx(t, r.X[1], 3, 1e-9, "y pinned by equality")
}

func TestSolveNegativeRHS(t *testing.T) {
	// max -x s.t. -x ≤ -2  (i.e. x ≥ 2) → opt -2 at x=2.
	p := New(1)
	p.SetObjective(0, -1)
	p.AddRow(LE, -2, 0, -1)
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	approx(t, r.Value, -2, 1e-9, "value")
	approx(t, r.X[0], 2, 1e-9, "x")
}

func TestSolveInfeasible(t *testing.T) {
	p := New(1)
	p.AddRow(LE, 1, 0, 1)
	p.AddRow(GE, 5, 0, 1)
	if r := Solve(p); r.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", r.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := New(2)
	p.SetObjective(0, 1)
	p.AddRow(LE, 5, 1, 1) // only y bounded
	if r := Solve(p); r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classic degenerate LP; Bland's rule must terminate.
	// max 10x1 - 57x2 - 9x3 - 24x4 (Kuhn's cycling example without Bland).
	p := New(4)
	for j, c := range []float64{10, -57, -9, -24} {
		p.SetObjective(j, c)
	}
	p.AddRow(LE, 0, 0, 0.5, 1, -5.5, 2, -2.5, 3, 9)
	p.AddRow(LE, 0, 0, 0.5, 1, -1.5, 2, -0.5, 3, 1)
	p.AddRow(LE, 1, 0, 1)
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v, want optimal", r.Status)
	}
	approx(t, r.Value, 1, 1e-9, "Kuhn example optimum")
}

func TestSolveZeroObjective(t *testing.T) {
	p := New(2)
	p.AddRow(LE, 1, 0, 1, 1, 1)
	r := Solve(p)
	if r.Status != Optimal || r.Value != 0 {
		t.Fatalf("zero objective: %v value %v", r.Status, r.Value)
	}
}

func TestSolveEqualityOnlySystem(t *testing.T) {
	// x + y = 4, x - y = 0 … but x-y=0 with x,y≥0 → x=y=2; maximize x.
	p := New(2)
	p.SetObjective(0, 1)
	p.AddRow(EQ, 4, 0, 1, 1, 1)
	p.AddRow(EQ, 0, 0, 1, 1, -1)
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	approx(t, r.X[0], 2, 1e-9, "x")
	approx(t, r.X[1], 2, 1e-9, "y")
}

func TestSolveRedundantRows(t *testing.T) {
	// Duplicate equalities leave a basic artificial in a redundant row;
	// evictArtificials must cope.
	p := New(2)
	p.SetObjective(0, 1)
	p.AddRow(EQ, 2, 0, 1, 1, 1)
	p.AddRow(EQ, 2, 0, 1, 1, 1)
	p.AddRow(LE, 3, 0, 1)
	r := Solve(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	approx(t, r.Value, 2, 1e-9, "value")
}

func TestSolveRatExactness(t *testing.T) {
	// max x + y s.t. 3x + y ≤ 1, x + 3y ≤ 1 → x = y = 1/4, value 1/2.
	p := New(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(LE, 1, 0, 3, 1, 1)
	p.AddRow(LE, 1, 0, 1, 1, 3)
	r := SolveRat(p)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if r.Value.Cmp(big.NewRat(1, 2)) != 0 {
		t.Fatalf("value = %v, want exactly 1/2", r.Value)
	}
	if r.X[0].Cmp(big.NewRat(1, 4)) != 0 {
		t.Fatalf("x = %v, want exactly 1/4", r.X[0])
	}
}

func TestSolveRatInfeasibleAndUnbounded(t *testing.T) {
	p := New(1)
	p.AddRow(LE, 1, 0, 1)
	p.AddRow(GE, 2, 0, 1)
	if r := SolveRat(p); r.Status != Infeasible {
		t.Fatalf("status = %v", r.Status)
	}
	q := New(1)
	q.SetObjective(0, 1)
	if r := SolveRat(q); r.Status != Unbounded {
		t.Fatalf("status = %v", r.Status)
	}
}

func TestValidate(t *testing.T) {
	p := New(1)
	p.AddRow(LE, 1, 5, 1)
	if err := p.Validate(); err == nil {
		t.Fatal("bad var index accepted")
	}
	q := New(2)
	q.Objective = q.Objective[:1]
	if err := q.Validate(); err == nil {
		t.Fatal("short objective accepted")
	}
	if err := New(3).Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestAddRowPanicsOnOddPairs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New(1).AddRow(LE, 1, 0)
}

func TestRelationAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || EQ.String() != "==" || GE.String() != ">=" {
		t.Fatal("relation strings wrong")
	}
	if Relation(9).String() == "" {
		t.Fatal("unknown relation should render")
	}
	for s, want := range map[Status]string{Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded", Stalled: "stalled"} {
		if s.String() != want {
			t.Fatalf("Status(%d).String() = %q", s, s.String())
		}
	}
	if Status(9).String() == "" {
		t.Fatal("unknown status should render")
	}
}

func TestFeasible(t *testing.T) {
	p := New(1)
	p.AddRow(GE, 1, 0, 1)
	p.AddRow(LE, 2, 0, 1)
	if !Feasible(p, 1e-9) {
		t.Fatal("feasible system rejected")
	}
	p.AddRow(LE, 0.5, 0, 1)
	if Feasible(p, 1e-9) {
		t.Fatal("infeasible system accepted")
	}
}
