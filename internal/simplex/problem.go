// Package simplex is the linear-programming substrate of the repository: a
// from-scratch, dependency-free two-phase primal simplex solver with Bland's
// anti-cycling rule, available both in float64 and in exact rational
// arithmetic (math/big.Rat).
//
// The paper needs an LP solver in two places: as the reference that computes
// exact optima of max-min LPs (so experiments can measure true approximation
// ratios), and as the cross-check for the per-agent optimum t_u of the
// alternating-tree LP of §5.2, which the local algorithm otherwise obtains
// by binary search.
package simplex

import "fmt"

// Relation is the sense of one LP row.
type Relation int8

// Row senses.
const (
	LE Relation = iota // Σ a_j x_j ≤ b
	EQ                 // Σ a_j x_j = b
	GE                 // Σ a_j x_j ≥ b
)

// String names the relation.
func (r Relation) String() string {
	switch r {
	case LE:
		return "<="
	case EQ:
		return "=="
	case GE:
		return ">="
	}
	return fmt.Sprintf("Relation(%d)", int8(r))
}

// Entry is one nonzero coefficient of a row.
type Entry struct {
	Var  int
	Coef float64
}

// Row is one linear constraint.
type Row struct {
	Entries []Entry
	Rel     Relation
	RHS     float64
}

// Problem is an LP in the form
//
//	maximise  Σ c_j x_j
//	subject to the rows, and x ≥ 0.
//
// Build it with New, AddRow and SetObjective.
type Problem struct {
	NumVars   int
	Objective []float64
	Rows      []Row
}

// New returns an empty problem with n nonnegative variables and an all-zero
// objective.
func New(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// SetObjective sets the coefficient of variable j in the maximisation
// objective.
func (p *Problem) SetObjective(j int, c float64) { p.Objective[j] = c }

// AddRow appends a constraint given as alternating (var, coef) pairs,
// a relation and a right-hand side, and returns the row index.
func (p *Problem) AddRow(rel Relation, rhs float64, pairs ...float64) int {
	if len(pairs)%2 != 0 {
		panic("simplex: odd (var, coef) pair list")
	}
	row := Row{Rel: rel, RHS: rhs}
	for j := 0; j < len(pairs); j += 2 {
		row.Entries = append(row.Entries, Entry{Var: int(pairs[j]), Coef: pairs[j+1]})
	}
	p.Rows = append(p.Rows, row)
	return len(p.Rows) - 1
}

// Validate checks variable indices and finiteness of coefficients.
func (p *Problem) Validate() error {
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("simplex: objective has %d entries for %d variables", len(p.Objective), p.NumVars)
	}
	for r, row := range p.Rows {
		for _, e := range row.Entries {
			if e.Var < 0 || e.Var >= p.NumVars {
				return fmt.Errorf("simplex: row %d references variable %d outside [0,%d)", r, e.Var, p.NumVars)
			}
		}
	}
	return nil
}

// Status is the outcome of a solve.
type Status int

// Solver outcomes.
const (
	// Optimal: an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible: the constraint set is empty.
	Infeasible
	// Unbounded: the objective can be made arbitrarily large.
	Unbounded
	// Stalled: the iteration limit was exceeded (should not occur with
	// Bland's rule; kept as a defensive outcome for the float path).
	Stalled
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Stalled:
		return "stalled"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}
