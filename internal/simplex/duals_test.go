package simplex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDualsStrongDualityKnownLP(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → 36.
	// Known duals: y1 = 0, y2 = 3/2, y3 = 1.
	p := New(2)
	p.SetObjective(0, 3)
	p.SetObjective(1, 5)
	p.AddRow(LE, 4, 0, 1)
	p.AddRow(LE, 12, 1, 2)
	p.AddRow(LE, 18, 0, 3, 1, 2)
	r, duals := SolveWithDuals(p)
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	want := []float64{0, 1.5, 1}
	for i := range want {
		if math.Abs(duals[i]-want[i]) > 1e-9 {
			t.Fatalf("dual %d = %v, want %v", i, duals[i], want[i])
		}
	}
	// Strong duality.
	if got := 4*duals[0] + 12*duals[1] + 18*duals[2]; math.Abs(got-r.Value) > 1e-9 {
		t.Fatalf("yᵀb = %v vs optimum %v", got, r.Value)
	}
}

func TestDualsWithGEAndEQ(t *testing.T) {
	// max x + y s.t. x + y ≤ 10, x ≥ 2, y = 3.
	p := New(2)
	p.SetObjective(0, 1)
	p.SetObjective(1, 1)
	p.AddRow(LE, 10, 0, 1, 1, 1)
	p.AddRow(GE, 2, 0, 1)
	p.AddRow(EQ, 3, 1, 1)
	r, duals := SolveWithDuals(p)
	if r.Status != Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if got := 10*duals[0] + 2*duals[1] + 3*duals[2]; math.Abs(got-r.Value) > 1e-9 {
		t.Fatalf("strong duality: yᵀb = %v vs %v", got, r.Value)
	}
	if duals[0] < -1e-12 {
		t.Fatalf("≤ row has negative dual %v", duals[0])
	}
	if duals[1] > 1e-12 {
		t.Fatalf("≥ row has positive dual %v", duals[1])
	}
}

func TestQuickStrongDualityRandomLPs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		p := New(n)
		for j := 0; j < n; j++ {
			p.SetObjective(j, rng.Float64()*3)
			p.AddRow(LE, 1+rng.Float64()*3, float64(j), 0.5+rng.Float64())
		}
		for r := 0; r < rng.Intn(3); r++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			p.AddRow(LE, 1+rng.Float64()*2, float64(a), 0.5+rng.Float64(), float64(b), 0.5+rng.Float64())
		}
		res, duals := SolveWithDuals(p)
		if res.Status != Optimal {
			return false
		}
		yb := 0.0
		for i, row := range p.Rows {
			yb += duals[i] * row.RHS
		}
		if math.Abs(yb-res.Value) > 1e-6*math.Max(1, math.Abs(res.Value)) {
			return false
		}
		// Dual feasibility: Σ_i y_i a_ij ≥ c_j.
		price := make([]float64, n)
		for i, row := range p.Rows {
			for _, e := range row.Entries {
				price[e.Var] += duals[i] * e.Coef
			}
		}
		for j := 0; j < n; j++ {
			if price[j] < p.Objective[j]-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCertifyMaxMin(t *testing.T) {
	in := twoAgentShared()
	res, cert, err := CertifyMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 1e-9 {
		t.Fatalf("optimum %v", res.Value)
	}
	if err := cert.Verify(in, 1e-9); err != nil {
		t.Fatalf("certificate rejected: %v", err)
	}
	if math.Abs(cert.Bound-res.Value) > 1e-7 {
		t.Fatalf("certificate bound %v vs optimum %v", cert.Bound, res.Value)
	}
}

func TestQuickCertifyMaxMinRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMaxMin(rng)
		res, cert, err := CertifyMaxMin(in)
		if err != nil {
			return false
		}
		if cert.Verify(in, 1e-6) != nil {
			return false
		}
		// The certified bound matches the optimum (strong duality), and it
		// really bounds the primal value.
		return math.Abs(cert.Bound-res.Value) < 1e-5*math.Max(1, res.Value) &&
			in.Utility(res.X) <= cert.Bound+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCertificateVerifyRejectsBogus(t *testing.T) {
	in := twoAgentShared()
	_, cert, err := CertifyMaxMin(in)
	if err != nil {
		t.Fatal(err)
	}
	bogus := *cert
	bogus.YObjs = append([]float64(nil), cert.YObjs...)
	bogus.YObjs[0] = 0 // breaks the ω cover
	bogus.YObjs[1] = 0
	if err := bogus.Verify(in, 1e-9); err == nil {
		t.Fatal("uncovered ω accepted")
	}
	bogus2 := *cert
	bogus2.Bound = cert.Bound * 2
	if err := bogus2.Verify(in, 1e-9); err == nil {
		t.Fatal("inflated bound accepted")
	}
	bogus3 := *cert
	bogus3.YCons = []float64{}
	if err := bogus3.Verify(in, 1e-9); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
