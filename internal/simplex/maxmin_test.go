package simplex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mmlp"
)

// twoAgentShared: x0 + x1 ≤ 1, objectives x0 and x1 → optimum 1/2 each.
func twoAgentShared() *mmlp.Instance {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1)
	in.AddObjective(1, 1)
	return in
}

func TestSolveMaxMinTwoAgent(t *testing.T) {
	r := SolveMaxMin(twoAgentShared())
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	approx(t, r.Value, 0.5, 1e-9, "omega*")
	if len(r.X) != 2 {
		t.Fatalf("len(X) = %d", len(r.X))
	}
	approx(t, r.X[0], 0.5, 1e-9, "x0")
}

func TestSolveMaxMinRatExact(t *testing.T) {
	r := SolveMaxMinRat(twoAgentShared())
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if got := RatFloat(r.Value); got != 0.5 {
		t.Fatalf("omega* = %v, want 1/2", got)
	}
}

func TestSolveMaxMinUnbalancedCoefs(t *testing.T) {
	// x0 ≤ 1/2 via 2x0 ≤ 1; objective1 = 4 x0 → 2; objective2 = x1 with
	// x1 ≤ 1 → 1. Optimum min is 1 (both achievable independently).
	in := mmlp.New(2)
	in.AddConstraint(0, 2)
	in.AddConstraint(1, 1)
	in.AddObjective(0, 4)
	in.AddObjective(1, 1)
	r := SolveMaxMin(in)
	approx(t, r.Value, 1, 1e-9, "omega*")
}

func TestSolveMaxMinNoObjectives(t *testing.T) {
	in := mmlp.New(1)
	in.AddConstraint(0, 1)
	if r := SolveMaxMin(in); r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
	if r := SolveMaxMinRat(in); r.Status != Unbounded {
		t.Fatalf("rat status = %v, want unbounded", r.Status)
	}
	if r := SolveMaxMinBisect(in, 1e-9); r.Status != Unbounded {
		t.Fatalf("bisect status = %v, want unbounded", r.Status)
	}
}

func TestSolveMaxMinUnboundedObjective(t *testing.T) {
	// The only objective consists of an unconstrained agent → unbounded.
	in := mmlp.New(2)
	in.AddConstraint(0, 1)
	in.AddObjective(1, 1)
	if r := SolveMaxMin(in); r.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", r.Status)
	}
	if r := SolveMaxMinBisect(in, 1e-9); r.Status != Unbounded {
		t.Fatalf("bisect status = %v, want unbounded", r.Status)
	}
}

func TestSolveMaxMinOneUnboundedObjectiveAmongTwo(t *testing.T) {
	// ω = min over objectives; an unconstrained objective does not lift the
	// bound imposed by a constrained one.
	in := mmlp.New(2)
	in.AddConstraint(0, 1)
	in.AddObjective(0, 1)
	in.AddObjective(1, 1)
	r := SolveMaxMin(in)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	approx(t, r.Value, 1, 1e-9, "omega*")
}

// randMaxMin builds a random strictly valid, fully constrained instance.
func randMaxMin(rng *rand.Rand) *mmlp.Instance {
	n := 2 + rng.Intn(5)
	in := mmlp.New(n)
	for v := 0; v < n; v++ {
		in.AddConstraint(float64(v), 0.5+rng.Float64())
	}
	for r := 0; r < 1+rng.Intn(4); r++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		in.AddConstraint(float64(a), 0.5+rng.Float64(), float64(b), 0.5+rng.Float64())
	}
	for v := 0; v < n; v++ {
		// objective over v and a partner
		w := (v + 1) % n
		in.AddObjective(float64(v), 0.5+rng.Float64(), float64(w), 0.5+rng.Float64())
	}
	return in
}

func TestQuickMaxMinSolutionFeasibleAndTight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMaxMin(rng)
		r := SolveMaxMin(in)
		if r.Status != Optimal {
			return false
		}
		if in.CheckFeasible(r.X, 1e-7) != nil {
			return false
		}
		// Utility of the returned x matches the reported value.
		return math.Abs(in.Utility(r.X)-r.Value) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxMinFloatMatchesRational(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMaxMin(rng)
		rf := SolveMaxMin(in)
		rr := SolveMaxMinRat(in)
		if rf.Status != Optimal || rr.Status != Optimal {
			return false
		}
		return math.Abs(rf.Value-RatFloat(rr.Value)) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxMinBisectMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMaxMin(rng)
		direct := SolveMaxMin(in)
		bis := SolveMaxMinBisect(in, 1e-9)
		if direct.Status != Optimal || bis.Status != Optimal {
			return false
		}
		return math.Abs(direct.Value-bis.Value) < 1e-6*math.Max(1, direct.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMaxMinOptimumBelowTrivialBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randMaxMin(rng)
		r := SolveMaxMin(in)
		return r.Status == Optimal && r.Value <= in.TrivialUpperBound()+1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
