package simplex

import "math/big"

// maxPivots bounds the number of pivots per phase. Bland's rule guarantees
// termination in exact arithmetic; the cap protects the float path against
// tolerance-induced cycling.
const maxPivots = 200000

// Result is the outcome of a float64 solve.
type Result struct {
	Status Status
	X      []float64
	Value  float64
}

// RatResult is the outcome of an exact rational solve.
type RatResult struct {
	Status Status
	X      []*big.Rat
	Value  *big.Rat
}

// Solve runs two-phase primal simplex in float64 arithmetic with Bland's
// rule. The default tolerance of 1e-9 suits coefficients of moderate
// magnitude; see SolveTol for control.
func Solve(p *Problem) Result { return SolveTol(p, 1e-9) }

// SolveTol is Solve with an explicit absolute tolerance for zero tests.
func SolveTol(p *Problem, eps float64) Result {
	st, xs, val := run[float64](floatArith{eps: eps}, p)
	return Result{Status: st, X: xs, Value: val}
}

// SolveRat runs the identical algorithm in exact rational arithmetic.
// Coefficients are converted from float64 exactly. Exponentially slower than
// the float path; intended for cross-checks on small instances.
func SolveRat(p *Problem) RatResult {
	st, xs, val := run[*big.Rat](ratArith{}, p)
	return RatResult{Status: st, X: xs, Value: val}
}

// tableau holds the dense simplex tableau over an arbitrary field T.
//
// Layout: columns 0..nStruct-1 are the problem's variables, then slack and
// surplus columns, then artificial columns; column ncols is the RHS.
// rows 0..m-1 are constraints; obj1 and obj2 are the phase-1 and phase-2
// reduced-cost rows, updated through every pivot.
type tableau[T any] struct {
	ar       arith[T]
	m        int
	ncols    int
	nStruct  int
	artStart int   // first artificial column; ncols when none
	a        [][]T // m rows × (ncols+1)
	obj1     []T   // phase-1 reduced costs (maximise −Σ artificials)
	obj2     []T   // phase-2 reduced costs (maximise c·x)
	basis    []int
}

// run executes the two-phase algorithm and extracts the solution.
func run[T any](ar arith[T], p *Problem) (Status, []T, T) {
	t := build(ar, p)
	if t.artStart < t.ncols { // phase 1 needed
		st := t.iterate(t.obj1, t.ncols) // artificials may enter in phase 1
		if st == Stalled {
			return Stalled, nil, ar.zero()
		}
		// Phase-1 optimum must be 0 (the stored value is −Σ artificials).
		if ar.sign(t.obj1[t.ncols]) != 0 {
			return Infeasible, nil, ar.zero()
		}
		t.evictArtificials()
	}
	st := t.iterate(t.obj2, t.artStart) // artificials barred from entering
	if st != Optimal {
		return st, nil, ar.zero()
	}
	xs := make([]T, t.nStruct)
	for j := range xs {
		xs[j] = ar.zero()
	}
	for i, b := range t.basis {
		if b < t.nStruct {
			xs[b] = ar.clone(t.a[i][t.ncols])
		}
	}
	return Optimal, xs, ar.clone(t.obj2[t.ncols])
}

// build assembles the initial tableau with a feasible slack/artificial basis.
func build[T any](ar arith[T], p *Problem) *tableau[T] {
	m := len(p.Rows)
	n := p.NumVars

	// Column accounting pass: one slack or surplus per inequality row, one
	// artificial per row whose initial basic variable would be infeasible.
	// RHS signs are normalised to ≥ 0 first by flipping rows.
	type rowPlan struct {
		flip     bool
		slackCol int // -1 if none
		slackSgn int // +1 slack, -1 surplus
		artCol   int // -1 if none
	}
	plans := make([]rowPlan, m)
	col := n
	for i, row := range p.Rows {
		rel, rhs := row.Rel, row.RHS
		pl := rowPlan{slackCol: -1, artCol: -1}
		if rhs < 0 {
			pl.flip = true
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		switch rel {
		case LE:
			pl.slackCol, pl.slackSgn = col, 1
			col++
		case GE:
			pl.slackCol, pl.slackSgn = col, -1
			col++
		}
		plans[i] = pl
	}
	artStart := col
	for i, row := range p.Rows {
		rel := row.Rel
		if plans[i].flip {
			switch rel {
			case LE:
				rel = GE
			case GE:
				rel = LE
			}
		}
		if rel == GE || rel == EQ {
			plans[i].artCol = col
			col++
		}
	}
	ncols := col

	t := &tableau[T]{ar: ar, m: m, ncols: ncols, nStruct: n, artStart: artStart}
	t.a = make([][]T, m)
	t.basis = make([]int, m)
	for i := range t.a {
		t.a[i] = make([]T, ncols+1)
		for j := range t.a[i] {
			t.a[i][j] = ar.zero()
		}
	}
	for i, row := range p.Rows {
		sgn := 1.0
		if plans[i].flip {
			sgn = -1
		}
		for _, e := range row.Entries {
			t.a[i][e.Var] = ar.add(t.a[i][e.Var], ar.fromFloat(sgn*e.Coef))
		}
		t.a[i][ncols] = ar.fromFloat(sgn * row.RHS)
		if c := plans[i].slackCol; c >= 0 {
			t.a[i][c] = ar.fromFloat(float64(plans[i].slackSgn))
		}
		if c := plans[i].artCol; c >= 0 {
			t.a[i][c] = ar.fromFloat(1)
			t.basis[i] = c
		} else {
			t.basis[i] = plans[i].slackCol
		}
	}

	// Reduced-cost rows. obj2[j] starts at −c_j (so that a negative entry
	// marks an improving column for maximisation); the initial basis has
	// zero phase-2 cost, so no pricing-out is needed. obj1 prices out the
	// artificial basics: start from Σ over artificial columns of −1·(−1)=+1
	// … equivalently obj1 = Σ_{rows with artificial} −(row), because each
	// artificial has phase-1 cost −1 and is basic.
	t.obj1 = make([]T, ncols+1)
	t.obj2 = make([]T, ncols+1)
	for j := 0; j <= ncols; j++ {
		t.obj1[j] = ar.zero()
		t.obj2[j] = ar.zero()
	}
	for j := 0; j < n; j++ {
		t.obj2[j] = ar.fromFloat(-p.Objective[j])
	}
	for i := range p.Rows {
		if plans[i].artCol < 0 {
			continue
		}
		for j := 0; j <= ncols; j++ {
			t.obj1[j] = ar.sub(t.obj1[j], t.a[i][j])
		}
	}
	// The artificial columns themselves must price to zero in obj1: each
	// appears in exactly one row with coefficient 1, so obj1[art] is now
	// −1; adding the cost −(−1) = 1 restores 0.
	for i := range p.Rows {
		if c := plans[i].artCol; c >= 0 {
			t.obj1[c] = ar.add(t.obj1[c], ar.fromFloat(1))
		}
	}
	return t
}

// iterate runs simplex pivots with Bland's rule on the given reduced-cost
// row until optimality, unboundedness or the pivot cap. Columns ≥ colLimit
// may not enter the basis (used to bar artificials in phase 2).
func (t *tableau[T]) iterate(obj []T, colLimit int) Status {
	ar := t.ar
	for pivots := 0; pivots < maxPivots; pivots++ {
		// Bland entering rule: smallest improving column index.
		enter := -1
		for j := 0; j < colLimit; j++ {
			if ar.sign(obj[j]) < 0 {
				enter = j
				break
			}
		}
		if enter == -1 {
			return Optimal
		}
		// Ratio test; Bland tie-break on the smallest basis variable.
		leave := -1
		var best T
		for i := 0; i < t.m; i++ {
			piv := t.a[i][enter]
			if ar.sign(piv) <= 0 {
				continue
			}
			ratio := ar.div(t.a[i][t.ncols], piv)
			if leave == -1 || ar.less(ratio, best) ||
				(!ar.less(best, ratio) && t.basis[i] < t.basis[leave]) {
				leave, best = i, ratio
			}
		}
		if leave == -1 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return Stalled
}

// pivot makes column enter basic in row leave, updating all rows and both
// reduced-cost rows.
func (t *tableau[T]) pivot(leave, enter int) {
	ar := t.ar
	prow := t.a[leave]
	inv := ar.div(ar.fromFloat(1), prow[enter])
	for j := 0; j <= t.ncols; j++ {
		prow[j] = ar.mul(prow[j], inv)
	}
	prow[enter] = ar.fromFloat(1) // exact, clears float residue
	elim := func(row []T) {
		f := row[enter]
		if ar.sign(f) == 0 && ar.toFloat(f) == 0 {
			return
		}
		for j := 0; j <= t.ncols; j++ {
			row[j] = ar.sub(row[j], ar.mul(f, prow[j]))
		}
		row[enter] = ar.zero() // exact
	}
	for i := 0; i < t.m; i++ {
		if i != leave {
			elim(t.a[i])
		}
	}
	elim(t.obj1)
	elim(t.obj2)
	t.basis[leave] = enter
}

// evictArtificials pivots any artificial variable that is still basic (at
// value zero after a feasible phase 1) out of the basis when a structural or
// slack column with a nonzero coefficient exists in its row. Rows that admit
// no such pivot are redundant and remain inert.
func (t *tableau[T]) evictArtificials() {
	ar := t.ar
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		for j := 0; j < t.artStart; j++ {
			if ar.sign(t.a[i][j]) != 0 {
				t.pivot(i, j)
				break
			}
		}
	}
}

// Feasible reports whether the problem has any feasible point, using
// phase 1 only (float64 arithmetic, tolerance eps).
func Feasible(p *Problem, eps float64) bool {
	q := &Problem{NumVars: p.NumVars, Objective: make([]float64, p.NumVars), Rows: p.Rows}
	r := SolveTol(q, eps)
	return r.Status == Optimal
}
