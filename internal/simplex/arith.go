package simplex

import "math/big"

// arith abstracts the field operations the tableau needs, so one simplex
// implementation serves both float64 (fast, tolerance-based) and *big.Rat
// (exact) arithmetic.
type arith[T any] interface {
	add(a, b T) T
	sub(a, b T) T
	mul(a, b T) T
	div(a, b T) T
	zero() T
	fromFloat(f float64) T
	toFloat(a T) float64
	// sign returns -1, 0, +1; the float implementation treats |a| ≤ eps as 0.
	sign(a T) int
	// less reports a < b exactly (no tolerance); used only for ratio tests.
	less(a, b T) bool
	// clone returns a value safe to store (rationals are pointers).
	clone(a T) T
}

// floatArith implements arith over float64 with an absolute tolerance.
type floatArith struct{ eps float64 }

func (floatArith) add(a, b float64) float64    { return a + b }
func (floatArith) sub(a, b float64) float64    { return a - b }
func (floatArith) mul(a, b float64) float64    { return a * b }
func (floatArith) div(a, b float64) float64    { return a / b }
func (floatArith) zero() float64               { return 0 }
func (floatArith) fromFloat(f float64) float64 { return f }
func (floatArith) toFloat(a float64) float64   { return a }
func (fa floatArith) sign(a float64) int {
	switch {
	case a > fa.eps:
		return 1
	case a < -fa.eps:
		return -1
	default:
		return 0
	}
}
func (floatArith) less(a, b float64) bool  { return a < b }
func (floatArith) clone(a float64) float64 { return a }

// ratArith implements arith over *big.Rat; all results are fresh values.
type ratArith struct{}

func (ratArith) add(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }
func (ratArith) sub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }
func (ratArith) mul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }
func (ratArith) div(a, b *big.Rat) *big.Rat { return new(big.Rat).Quo(a, b) }
func (ratArith) zero() *big.Rat             { return new(big.Rat) }
func (ratArith) fromFloat(f float64) *big.Rat {
	r := new(big.Rat)
	r.SetFloat64(f) // exact: every finite float64 is rational
	return r
}
func (ratArith) toFloat(a *big.Rat) float64 {
	f, _ := a.Float64()
	return f
}
func (ratArith) sign(a *big.Rat) int       { return a.Sign() }
func (ratArith) less(a, b *big.Rat) bool   { return a.Cmp(b) < 0 }
func (ratArith) clone(a *big.Rat) *big.Rat { return new(big.Rat).Set(a) }
