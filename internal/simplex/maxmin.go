package simplex

import (
	"math"
	"math/big"

	"repro/internal/mmlp"
)

// FromMaxMin encodes a max-min LP as a plain LP:
//
//	maximise ω  subject to  Ax ≤ 1,  ω − Cx ≤ 0,  x ≥ 0, ω ≥ 0.
//
// Variables 0..NumAgents-1 are the agents' x_v; variable NumAgents is ω.
// Written with ≤ rows and nonnegative right-hand sides throughout, the LP
// has a feasible all-slack basis, so the solver skips phase 1 entirely.
func FromMaxMin(in *mmlp.Instance) *Problem {
	n := in.NumAgents
	p := New(n + 1)
	p.SetObjective(n, 1)
	for _, c := range in.Cons {
		row := Row{Rel: LE, RHS: 1}
		for _, t := range c.Terms {
			row.Entries = append(row.Entries, Entry{Var: t.Agent, Coef: t.Coef})
		}
		p.Rows = append(p.Rows, row)
	}
	for _, o := range in.Objs {
		row := Row{Rel: LE, RHS: 0, Entries: []Entry{{Var: n, Coef: 1}}}
		for _, t := range o.Terms {
			row.Entries = append(row.Entries, Entry{Var: t.Agent, Coef: -t.Coef})
		}
		p.Rows = append(p.Rows, row)
	}
	return p
}

// SolveMaxMin computes an optimal solution of the max-min LP with the
// float64 simplex. The returned X has length NumAgents and Value is the
// optimum utility ω*. An instance with no objectives is reported Unbounded.
func SolveMaxMin(in *mmlp.Instance) Result {
	if len(in.Objs) == 0 {
		return Result{Status: Unbounded}
	}
	r := Solve(FromMaxMin(in))
	if r.Status != Optimal {
		return r
	}
	return Result{Status: Optimal, X: r.X[:in.NumAgents], Value: r.Value}
}

// SolveMaxMinRat computes the exact rational optimum of the max-min LP.
func SolveMaxMinRat(in *mmlp.Instance) RatResult {
	if len(in.Objs) == 0 {
		return RatResult{Status: Unbounded}
	}
	r := SolveRat(FromMaxMin(in))
	if r.Status != Optimal {
		return r
	}
	return RatResult{Status: Optimal, X: r.X[:in.NumAgents], Value: r.Value}
}

// SolveMaxMinBisect solves the max-min LP by bisection on ω with a phase-1
// feasibility test per step: the largest ω with {Ax ≤ 1, Cx ≥ ω1} nonempty.
// It stops when the bracket is narrower than tol·max(1, ω). Exists as an
// independent method to cross-check the direct reduction, and as the model
// for the binary search the local algorithm uses for t_u (§5.2).
func SolveMaxMinBisect(in *mmlp.Instance, tol float64) Result {
	if len(in.Objs) == 0 {
		return Result{Status: Unbounded}
	}
	hi := in.TrivialUpperBound()
	if math.IsInf(hi, 1) {
		// Some objective is made of unconstrained agents only; ω is
		// unbounded unless another objective pins it. Fall back on the
		// direct reduction which detects this case exactly.
		return SolveMaxMin(in)
	}
	feasibleAt := func(w float64) bool {
		p := New(in.NumAgents)
		for _, c := range in.Cons {
			row := Row{Rel: LE, RHS: 1}
			for _, t := range c.Terms {
				row.Entries = append(row.Entries, Entry{Var: t.Agent, Coef: t.Coef})
			}
			p.Rows = append(p.Rows, row)
		}
		for _, o := range in.Objs {
			row := Row{Rel: GE, RHS: w}
			for _, t := range o.Terms {
				row.Entries = append(row.Entries, Entry{Var: t.Agent, Coef: t.Coef})
			}
			p.Rows = append(p.Rows, row)
		}
		return Feasible(p, 1e-9)
	}
	lo := 0.0
	if !feasibleAt(0) {
		return Result{Status: Infeasible}
	}
	for hi-lo > tol*math.Max(1, lo) {
		mid := lo + (hi-lo)/2
		if feasibleAt(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return Result{Status: Optimal, Value: lo}
}

// RatFloat converts a rational to float64, a convenience for reporting.
func RatFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
