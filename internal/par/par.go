// Package par provides the small, deterministic parallel-iteration helper
// the computational kernels share. Work is split into contiguous chunks so
// results are written to disjoint index ranges without synchronisation.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(i) for every i in [0, n) using up to workers
// goroutines (GOMAXPROCS when workers ≤ 0). fn must be safe to call
// concurrently for distinct indices; iteration order within a chunk is
// ascending. ForEach returns when all calls have completed.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	ForEachChunk(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachCtx invokes fn(worker, i) for indices in [0, n) on a fixed pool of
// `workers` goroutines (GOMAXPROCS when workers ≤ 0, capped at n). Unlike
// ForEachChunk, indices are handed out dynamically from a shared counter, so
// items of wildly different cost stay load-balanced; `worker` identifies the
// goroutine (0 ≤ worker < pool size) so callers can keep per-worker scratch.
//
// Cancelling ctx stops workers from picking up further indices; calls
// already in flight run to completion. ForEachCtx returns ctx.Err() when it
// stopped early and nil when every index was processed.
func ForEachCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var nextIdx atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(nextIdx.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if int(nextIdx.Load()) < n { // at least one index was never handed out
		return ctx.Err()
	}
	return nil
}

// ForEachChunk splits [0, n) into at most `workers` contiguous chunks and
// invokes fn(lo, hi) for each chunk on its own goroutine. Use it when the
// worker needs per-goroutine scratch state that should be allocated once
// per chunk rather than once per item.
func ForEachChunk(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
