package par

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 53
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachSingleWorkerOrdered(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker order = %v", order)
		}
	}
}

func TestForEachMoreWorkersThanItems(t *testing.T) {
	var count int64
	ForEach(3, 64, func(int) { atomic.AddInt64(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestForEachCtxCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 53
		hits := make([]int32, n)
		maxWorker := int32(-1)
		err := ForEachCtx(context.Background(), n, workers, func(w, i int) {
			atomic.AddInt32(&hits[i], 1)
			for {
				old := atomic.LoadInt32(&maxWorker)
				if int32(w) <= old || atomic.CompareAndSwapInt32(&maxWorker, old, int32(w)) {
					break
				}
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
		if workers >= 1 && int(maxWorker) >= workers {
			t.Fatalf("workers=%d: saw worker id %d", workers, maxWorker)
		}
	}
}

func TestForEachCtxCancelStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count int64
	err := ForEachCtx(ctx, 1000, 2, func(_, i int) {
		if atomic.AddInt64(&count, 1) == 10 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := atomic.LoadInt64(&count); c >= 1000 {
		t.Fatalf("processed %d items after cancellation", c)
	}
}

func TestForEachCtxEmpty(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEachCtx(ctx, 0, 4, func(int, int) { t.Fatal("fn called") }); err != nil {
		t.Fatalf("err = %v for empty range", err)
	}
}
