package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		n := 53
		hits := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachSingleWorkerOrdered(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("single worker order = %v", order)
		}
	}
}

func TestForEachMoreWorkersThanItems(t *testing.T) {
	var count int64
	ForEach(3, 64, func(int) { atomic.AddInt64(&count, 1) })
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}
