package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/structured"
)

// E10Ablation shows that the design elements of §5 are load-bearing: the
// smoothing step and the up/down averaging each protect feasibility, and
// the binary-search depth trades utility for work.
func E10Ablation(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "ablations of the §5 design choices (structured instances, R=3)",
		Headers: []string{"variant", "seeds", "worst violation", "mean utility / full",
			"feasible everywhere"},
		Notes: []string{
			"no-smoothing drops s_v = min t (§5.3); single-role drops the averaging of (18)",
			"violations > 0 confirm the corresponding lemma chain is necessary, not conservative",
		},
	}
	seeds := 20
	objs := 10
	if scale == Quick {
		seeds, objs = 6, 6
	}
	type variant struct {
		name string
		ab   core.Ablation
	}
	variants := []variant{
		{"full algorithm", core.Ablation{}},
		{"no smoothing", core.Ablation{NoSmoothing: true}},
		{"all-down role", core.Ablation{Role: core.RoleDown}},
		{"all-up role", core.Ablation{Role: core.RoleUp}},
	}
	fullUtil := make([]float64, seeds)
	for _, vr := range variants {
		worstViol := 0.0
		utilSum, fullSum := 0.0, 0.0
		feasible := true
		for seed := 0; seed < seeds; seed++ {
			in := gen.RandomStructured(gen.StructuredConfig{Objectives: objs, MaxDegK: 3, ExtraCons: objs / 2}, int64(seed))
			s, err := structured.FromMMLP(in)
			if err != nil {
				return nil, err
			}
			tr, err := core.SolveAblated(s, core.Options{R: 3}, vr.ab)
			if err != nil {
				return nil, err
			}
			if vr.name == "full algorithm" {
				fullUtil[seed] = s.Utility(tr.X)
			}
			if v := s.MaxViolation(tr.X); v > worstViol {
				worstViol = v
			}
			if s.MaxViolation(tr.X) > 1e-9 {
				feasible = false
			}
			utilSum += s.Utility(tr.X)
			fullSum += fullUtil[seed]
		}
		rel := utilSum / fullSum
		t.AddRow(vr.name, seeds, worstViol, rel, feasible)
		if vr.name == "full algorithm" && !feasible {
			return t, fmt.Errorf("E10: the full algorithm must be feasible")
		}
	}
	return t, nil
}

// E11Dynamic measures the constant-time-update property of §1.3: after a
// single coefficient change on a large cycle, the incremental update
// recomputes a constant number of t-values and finishes much faster than a
// full solve, with bit-identical output.
func E11Dynamic(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "dynamic updates after one coefficient change (tri-necklace, R=3)",
		Headers: []string{"agents", "recomputed t", "full solve ms", "update ms", "speedup", "output identical"},
		Notes:   []string{"recomputed-t is constant in the instance size: the radius-(4r+3) ball of the change"},
	}
	sizes := []int{200, 400, 800}
	if scale == Quick {
		sizes = []int{100, 200}
	}
	for _, m := range sizes {
		in := gen.TriNecklace(m)
		s1, err := structured.FromMMLP(in)
		if err != nil {
			return nil, err
		}
		mod := in.Clone()
		mod.Cons[0].Terms[0].Coef = 2
		s2, err := structured.FromMMLP(mod)
		if err != nil {
			return nil, err
		}
		old, err := core.Solve(s1, core.Options{R: 3})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		full, err := core.Solve(s2, core.Options{R: 3})
		if err != nil {
			return nil, err
		}
		fullMS := float64(time.Since(start).Microseconds()) / 1000
		start = time.Now()
		inc, st, err := core.Update(s1, s2, old, core.Options{R: 3})
		if err != nil {
			return nil, err
		}
		incMS := float64(time.Since(start).Microseconds()) / 1000
		same := true
		for v := range full.X {
			if full.X[v] != inc.X[v] {
				same = false
			}
		}
		t.AddRow(3*m, st.RecomputedT, fmt.Sprintf("%.2f", fullMS), fmt.Sprintf("%.2f", incMS),
			fmt.Sprintf("%.1fx", fullMS/incMS), same)
		if !same {
			return t, fmt.Errorf("E11: incremental update diverged from full recompute")
		}
	}
	return t, nil
}
