package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestAllQuick(t *testing.T) {
	tables, err := All(Quick)
	if err != nil {
		t.Fatalf("experiment failed: %v", err)
	}
	if len(tables) != 10 {
		t.Fatalf("got %d tables, want 10", len(tables))
	}
	ids := map[string]bool{}
	for _, tb := range tables {
		ids[tb.ID] = true
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: no rows", tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Headers) {
				t.Fatalf("%s: row width %d vs %d headers", tb.ID, len(r), len(tb.Headers))
			}
		}
	}
	for _, want := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E8", "E9", "E10", "E11"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Headers: []string{"a", "bb"}, Notes: []string{"hello"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", "y")
	var txt bytes.Buffer
	tb.Render(&txt)
	out := txt.String()
	for _, want := range []string{"T — demo", "a", "bb", "2.5000", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	var md bytes.Buffer
	tb.Markdown(&md)
	for _, want := range []string{"### T — demo", "| a | bb |", "| --- | --- |", "| 1 | 2.5000 |", "_hello_"} {
		if !strings.Contains(md.String(), want) {
			t.Fatalf("markdown missing %q:\n%s", want, md.String())
		}
	}
}
