// Package expt is the experiment harness behind cmd/mmlpbench and
// EXPERIMENTS.md: it sweeps the workload generators, measures approximation
// ratios against the exact simplex optimum (or against the algorithm's own
// certified upper bound when an instance is too large to solve exactly),
// and renders the result tables the repository reports.
package expt

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (E1…E9) from DESIGN.md.
	ID string
	// Title describes the experiment.
	Title string
	// Headers labels the columns.
	Headers []string
	// Rows holds the formatted cells.
	Rows [][]string
	// Notes carries interpretation guidance printed under the table.
	Notes []string
}

// AddRow appends a formatted row; values are rendered with %v, floats
// with 4 significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown writes the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | "))
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | "))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	fmt.Fprintln(w)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "_%s_\n\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
