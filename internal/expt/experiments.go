package expt

import (
	"fmt"
	"math"
	"time"

	maxminlp "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/simplex"
	"repro/internal/structured"
	"repro/internal/transform"
)

// Scale selects how much work the experiment suite does.
type Scale int

// Experiment scales.
const (
	// Quick runs reduced sweeps suitable for tests (a few seconds).
	Quick Scale = iota
	// Full runs the sweeps EXPERIMENTS.md reports.
	Full
)

// ratioAgainstExact runs SolveLocal and the exact solver and returns
// opt / ω(x) together with the utilities.
func ratioAgainstExact(in *mmlp.Instance, R int) (ratio, opt, util float64, err error) {
	sol, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: R, DisableSpecialCases: true})
	if err != nil {
		return 0, 0, 0, err
	}
	exact, err := maxminlp.SolveExact(in)
	if err != nil {
		return 0, 0, 0, err
	}
	if exact.Status != maxminlp.StatusOptimal {
		return 0, 0, 0, fmt.Errorf("expt: exact solve %v", exact.Status)
	}
	return exact.Utility / sol.Utility, exact.Utility, sol.Utility, nil
}

// E1RatioSweep measures Theorem 1's upper bound across (ΔI, ΔK, R) on
// random general instances.
func E1RatioSweep(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "approximation ratio vs. Theorem 1 bound, random general instances",
		Headers: []string{"ΔI", "ΔK", "R", "seeds", "worst ratio", "mean ratio", "bound ΔI(1−1/ΔK)(1+1/(R−1))"},
		Notes:   []string{"PASS requires worst ratio ≤ bound for every row"},
	}
	seeds := 25
	agents := 24
	if scale == Quick {
		seeds, agents = 5, 12
	}
	for _, dI := range []int{2, 3, 4} {
		for _, dK := range []int{2, 3, 4} {
			for _, R := range []int{2, 3, 5} {
				worst, sum := 0.0, 0.0
				for seed := 0; seed < seeds; seed++ {
					in := gen.Random(gen.RandomConfig{
						Agents: agents, MaxDegI: dI, MaxDegK: dK,
						ExtraCons: agents / 4, ExtraObjs: agents / 8,
					}, int64(seed))
					ratio, _, _, err := ratioAgainstExact(in, R)
					if err != nil {
						return nil, err
					}
					if ratio > worst {
						worst = ratio
					}
					sum += ratio
				}
				bound := maxminlp.RatioBound(dI, dK, R)
				t.AddRow(dI, dK, R, seeds, worst, sum/float64(seeds), bound)
				if worst > bound+1e-7 {
					return t, fmt.Errorf("E1: worst ratio %v exceeds bound %v at ΔI=%d ΔK=%d R=%d", worst, bound, dI, dK, R)
				}
			}
		}
	}
	return t, nil
}

// E2Structured measures the structured-case guarantee 2(1−1/ΔK)(1+1/(R−1))
// without any transformations.
func E2Structured(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "structured instances (§5 form): ratio vs. 2(1−1/ΔK)(1+1/(R−1))",
		Headers: []string{"ΔK", "R", "seeds", "worst ratio", "mean ratio", "bound"},
		Notes:   []string{"instances already satisfy |Vi|=2, |Kv|=1, c=1; no ΔI/2 cost"},
	}
	seeds := 25
	objs := 12
	if scale == Quick {
		seeds, objs = 5, 6
	}
	for _, dK := range []int{2, 3, 4} {
		for _, R := range []int{2, 3, 5} {
			worst, sum := 0.0, 0.0
			for seed := 0; seed < seeds; seed++ {
				in := gen.RandomStructured(gen.StructuredConfig{
					Objectives: objs, MaxDegK: dK, ExtraCons: objs / 2,
				}, int64(seed))
				ratio, _, _, err := ratioAgainstExact(in, R)
				if err != nil {
					return nil, err
				}
				if ratio > worst {
					worst = ratio
				}
				sum += ratio
			}
			bound := 2 * (1 - 1/float64(dK)) * (1 + 1/float64(R-1))
			t.AddRow(dK, R, seeds, worst, sum/float64(seeds), bound)
			if worst > bound+1e-7 {
				return t, fmt.Errorf("E2: worst ratio %v exceeds bound %v", worst, bound)
			}
		}
	}
	return t, nil
}

// E3Adversarial measures the ratio on symmetric families designed to
// stress the up/down ambiguity that drives the Theorem 1 lower bound.
func E3Adversarial(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "adversarial symmetric families (ΔI=2, ΔK=3): ratio vs. threshold 4/3",
		Headers: []string{"family", "m", "R", "ratio", "bound 4/3·(1+1/(R−1))", "threshold 4/3"},
		Notes: []string{
			"threshold ΔI(1−1/ΔK) = 4/3 is unreachable by any local algorithm (Theorem 1 lower bound)",
			"tri-necklace: the symmetric solution is optimal, so the algorithm is exact (ratio 1)",
			"layered-necklace: the up/down averaging pays exactly the threshold 4/3 for every m and R —",
			"the hedging cost the lower bound proves unavoidable, demonstrating Theorem 1 is tight",
			"layered-tree: anchored finite trees are benign — the boundary breaks the symmetry and the",
			"ratio decays towards 1 as R grows; only orientation-free topologies pay the threshold",
		},
	}
	ms := []int{4, 8, 16, 32}
	Rs := []int{3, 5}
	if scale == Quick {
		ms, Rs = []int{4, 8}, []int{3}
	}
	threshold := maxminlp.LocalityThreshold(2, 3)
	for _, family := range []string{"tri-necklace", "layered-necklace", "layered-tree"} {
		for _, m := range ms {
			for _, R := range Rs {
				var in *mmlp.Instance
				switch family {
				case "tri-necklace":
					in = gen.TriNecklace(m)
				case "layered-necklace":
					in, _, _ = gen.LayeredNecklace(m)
				default:
					// Interpret m as ≈ agents/5: depth grows logarithmically.
					depth := 2
					for (1 << (depth + 1)) < m {
						depth++
					}
					in = gen.LayeredTree(depth)
				}
				ratio, _, _, err := ratioAgainstExact(in, R)
				if err != nil {
					return nil, err
				}
				bound := maxminlp.RatioBound(2, 3, R)
				t.AddRow(family, m, R, ratio, bound, threshold)
				if ratio > bound+1e-7 {
					return t, fmt.Errorf("E3: ratio %v exceeds bound %v", ratio, bound)
				}
			}
		}
	}
	return t, nil
}

// E4Baseline compares the paper's algorithm against the safe algorithm
// (factor ΔI) on the same instances.
func E4Baseline(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "this paper (R=3) vs. safe algorithm [8,16] — mean utilities and ratios",
		Headers: []string{"ΔI", "ΔK", "seeds", "mean ratio local", "mean ratio safe", "safe/local utility"},
		Notes:   []string{"ratios are opt/ω(x); smaller is better; the paper's guarantee beats safe's ΔI whenever ΔK ≥ 2"},
	}
	seeds := 25
	agents := 24
	if scale == Quick {
		seeds, agents = 5, 12
	}
	for _, dI := range []int{2, 3, 4} {
		for _, dK := range []int{2, 3} {
			sumL, sumS, sumSpeed := 0.0, 0.0, 0.0
			for seed := 0; seed < seeds; seed++ {
				in := gen.Random(gen.RandomConfig{
					Agents: agents, MaxDegI: dI, MaxDegK: dK,
					ExtraCons: agents / 4, ExtraObjs: agents / 8, ZeroOne: true,
				}, int64(seed))
				local, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: 3, DisableSpecialCases: true})
				if err != nil {
					return nil, err
				}
				safe, err := maxminlp.SolveSafe(in)
				if err != nil {
					return nil, err
				}
				exact, err := maxminlp.SolveExact(in)
				if err != nil {
					return nil, err
				}
				sumL += exact.Utility / local.Utility
				sumS += exact.Utility / safe.Utility
				sumSpeed += safe.Utility / local.Utility
			}
			n := float64(seeds)
			t.AddRow(dI, dK, seeds, sumL/n, sumS/n, sumSpeed/n)
		}
	}
	return t, nil
}

// E5Rounds demonstrates locality: the round count depends on R only, while
// traffic scales linearly in the network size.
func E5Rounds(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "distributed protocol: rounds and traffic (tri-necklace instances)",
		Headers: []string{"protocol", "m", "agents", "R", "rounds", "messages", "bytes", "compressed B", "max message B"},
		Notes: []string{
			"rounds = 12(R−2)+8 independent of m: the defining property of a local algorithm",
			"max message grows with R (view gathering) but not with m",
			"compressed = views deduplicated into DAGs: the standard polynomial-size encoding",
			"the record protocol trades anonymity (unique ids) for polynomial messages; outputs are bit-identical",
		},
	}
	ms := []int{6, 12, 24}
	Rs := []int{2, 3, 4}
	if scale == Quick {
		ms, Rs = []int{4, 8}, []int{2, 3}
	}
	type proto struct {
		name string
		run  func(*structured.Instance, core.Options) (*dist.Result, error)
	}
	protos := []proto{
		{"views (anonymous)", dist.SolveDistributed},
		{"records (ids)", dist.SolveDistributedCompact},
	}
	for _, pr := range protos {
		for _, R := range Rs {
			for _, m := range ms {
				in := gen.TriNecklace(m)
				sIn, err := toStructured(in)
				if err != nil {
					return nil, err
				}
				res, err := pr.run(sIn, core.Options{R: R})
				if err != nil {
					return nil, err
				}
				t.AddRow(pr.name, m, in.NumAgents, R, res.Rounds, res.Stats.Messages, res.Stats.Bytes, res.Stats.CompressedBytes, res.Stats.MaxMessageBytes)
			}
		}
	}
	return t, nil
}

// E6Transforms audits the §4 pipeline: the optimum may only move in the
// documented directions, and the back-mapped utility obeys the ΔI/2 rule.
func E6Transforms(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "§4 transformation audit on random instances",
		Headers: []string{"seeds", "max |opt′−opt| (opt-preserving steps)", "min opt′−opt (§4.3)", "worst ω(back)/ (2ω′/ΔI)"},
		Notes:   []string{"§4.2/§4.4/§4.5/§4.6 must preserve the optimum; §4.3 may only increase it; the back-map keeps ≥ 2ω′/ΔI"},
	}
	seeds := 20
	if scale == Quick {
		seeds = 6
	}
	maxDrift := 0.0
	minGain := math.Inf(1)
	worstBack := math.Inf(1)
	for seed := 0; seed < seeds; seed++ {
		in := gen.Random(gen.RandomConfig{Agents: 10, MaxDegI: 4, MaxDegK: 3, ExtraCons: 3, ExtraObjs: 2}, int64(seed))
		opt := simplex.SolveMaxMin(in).Value

		// Apply the pipeline step by step (each step's preconditions are
		// established by its predecessors), recording the optimum drift of
		// the preserving steps and the one-sided move of §4.3.
		s1, _ := transform.AugmentSingletonConstraints(in)
		opt1 := simplex.SolveMaxMin(s1).Value
		if d := math.Abs(opt1 - opt); d > maxDrift {
			maxDrift = d
		}
		s2, back2 := transform.ReduceConstraintDegree(s1)
		r2 := simplex.SolveMaxMin(s2)
		if g := r2.Value - opt1; g < minGain {
			minGain = g
		}
		// Back-map guarantee of (4): ω(back(x')) ≥ 2ω'/ΔI.
		x := back2.Apply(r2.X)
		dI := math.Max(2, float64(s1.DegreeI()))
		if q := s1.Utility(x) / (2 * r2.Value / dI); q < worstBack {
			worstBack = q
		}
		s3, _ := transform.SplitAgentsPerObjective(s2)
		opt3 := simplex.SolveMaxMin(s3).Value
		if d := math.Abs(opt3 - r2.Value); d > maxDrift {
			maxDrift = d
		}
		s4, _ := transform.AugmentSingletonObjectives(s3)
		opt4 := simplex.SolveMaxMin(s4).Value
		if d := math.Abs(opt4 - opt3); d > maxDrift {
			maxDrift = d
		}
		s5, _ := transform.NormalizeCoefficients(s4)
		opt5 := simplex.SolveMaxMin(s5).Value
		if d := math.Abs(opt5 - opt4); d > maxDrift {
			maxDrift = d
		}
	}
	t.AddRow(seeds, maxDrift, minGain, worstBack)
	if maxDrift > 1e-6 || minGain < -1e-6 || worstBack < 1-1e-5 {
		return t, fmt.Errorf("E6: transformation audit failed: drift %v gain %v back %v", maxDrift, minGain, worstBack)
	}
	return t, nil
}

// E8Scaling times the centralised engine on growing structured instances:
// per-agent cost is flat (the algorithm is local), so total time is linear.
func E8Scaling(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "runtime scaling of the centralised engine (R=3)",
		Headers: []string{"agents", "total ms", "µs/agent"},
		Notes:   []string{"µs/agent flat ⇒ linear total time: constant per-node work"},
	}
	sizes := []int{1000, 2000, 4000, 8000}
	if scale == Quick {
		sizes = []int{500, 1000}
	}
	for _, objs := range sizes {
		in := gen.RandomStructured(gen.StructuredConfig{Objectives: objs, MaxDegK: 3, ExtraCons: objs / 2}, 1)
		s, err := toStructured(in)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := core.Solve(s, core.Options{R: 3}); err != nil {
			return nil, err
		}
		el := time.Since(start)
		t.AddRow(in.NumAgents, fmt.Sprintf("%.1f", float64(el.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(el.Microseconds())/float64(in.NumAgents)))
	}
	return t, nil
}

// E9RSweep shows convergence of the ratio in R towards the locality
// threshold on a fixed instance family.
func E9RSweep(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "ratio vs. R on fixed random general instances (ΔI=3, ΔK=3)",
		Headers: []string{"R", "seeds", "worst ratio", "mean ratio", "bound", "threshold ΔI(1−1/ΔK)"},
		Notes:   []string{"the bound converges to the threshold 2.0 as R grows; measured ratios stay below it"},
	}
	Rs := []int{2, 3, 4, 6, 8}
	seeds := 15
	if scale == Quick {
		Rs, seeds = []int{2, 3, 4}, 4
	}
	for _, R := range Rs {
		worst, sum := 0.0, 0.0
		for seed := 0; seed < seeds; seed++ {
			in := gen.Random(gen.RandomConfig{Agents: 18, MaxDegI: 3, MaxDegK: 3, ExtraCons: 5, ExtraObjs: 2}, int64(seed))
			ratio, _, _, err := ratioAgainstExact(in, R)
			if err != nil {
				return nil, err
			}
			if ratio > worst {
				worst = ratio
			}
			sum += ratio
		}
		t.AddRow(R, seeds, worst, sum/float64(seeds), maxminlp.RatioBound(3, 3, R), maxminlp.LocalityThreshold(3, 3))
	}
	return t, nil
}

// toStructured converts a structured-form mmlp instance.
func toStructured(in *mmlp.Instance) (*structured.Instance, error) {
	if err := transform.CheckStructured(in); err != nil {
		return nil, err
	}
	return structured.FromMMLP(in)
}

// All runs every experiment at the given scale.
func All(scale Scale) ([]*Table, error) {
	type runner struct {
		name string
		fn   func(Scale) (*Table, error)
	}
	var tables []*Table
	for _, r := range []runner{
		{"E1", E1RatioSweep}, {"E2", E2Structured}, {"E3", E3Adversarial},
		{"E4", E4Baseline}, {"E5", E5Rounds}, {"E6", E6Transforms},
		{"E8", E8Scaling}, {"E9", E9RSweep}, {"E10", E10Ablation},
		{"E11", E11Dynamic},
	} {
		tb, err := r.fn(scale)
		if err != nil {
			return tables, fmt.Errorf("%s: %w", r.name, err)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}
