// Package structured holds the compact representation of a max-min LP in
// the special form the algorithm of §5 operates on, as produced by the §4
// transformations:
//
//	|Vi| = 2   every constraint couples exactly two agents,
//	|Kv| = 1   every agent belongs to exactly one objective k(v),
//	|Vk| ≥ 2   every objective has at least two agents,
//	c_kv = 1   all objective coefficients are 1,
//	|Iv| ≥ 1   every agent has at least one constraint.
//
// The representation stores, per agent, its objective k(v), its constraint
// list Iv and its cap min_{i∈Iv} 1/a_iv, and per constraint the agent pair
// with coefficients, so the recursions (5)–(7) and (12)–(14) read their
// inputs in O(1).
package structured

import (
	"fmt"

	"repro/internal/mmlp"
	"repro/internal/reuse"
)

// Instance is a structured max-min LP.
type Instance struct {
	// N is the number of agents.
	N int
	// ObjOf[v] is k(v), the unique objective of agent v.
	ObjOf []int32
	// Objs[k] lists Vk, the agents of objective k (length ≥ 2).
	Objs [][]int32
	// ConsV[i] is the agent pair of constraint i.
	ConsV [][2]int32
	// ConsA[i] holds the matching coefficients a_iv.
	ConsA [][2]float64
	// ConsOf[v] lists Iv, the constraints containing agent v.
	ConsOf [][]int32
	// Caps[v] = min_{i∈Iv} 1/a_iv, the value f+_{u,v,0} of equation (5).
	Caps []float64
}

// Scratch is the reusable conversion memory of FromMMLPScratch: the
// compact instance itself plus the flat backings its member and incidence
// lists are carved from. The zero value is ready. Not safe for concurrent
// use.
type Scratch struct {
	inst    Instance
	objIdx  []int32
	consIdx []int32
	count   []int32
}

// grow is the shared arena-resize primitive.
func grow[T any](buf *[]T, n int) []T { return reuse.Grow(buf, n) }

// FromMMLP converts a structured mmlp.Instance (see transform.CheckStructured)
// into the compact form. It re-verifies the structural preconditions.
func FromMMLP(in *mmlp.Instance) (*Instance, error) {
	return FromMMLPScratch(in, nil)
}

// FromMMLPScratch is FromMMLP building the compact form into sc's reusable
// memory (nil sc allocates a private one), so a warm worker converts
// similarly-sized instances without allocating. The result aliases sc and
// is valid until its next use.
func FromMMLPScratch(in *mmlp.Instance, sc *Scratch) (*Instance, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	s := &sc.inst
	s.N = in.NumAgents
	s.ObjOf = grow(&s.ObjOf, in.NumAgents)
	for v := range s.ObjOf {
		s.ObjOf[v] = -1
	}
	totalObj := 0
	for _, o := range in.Objs {
		totalObj += len(o.Terms)
	}
	// Presize the flat member backing so the per-objective carves below
	// stay stable.
	objIdx := grow(&sc.objIdx, totalObj)
	s.Objs = grow(&s.Objs, len(in.Objs))
	pos := 0
	for k, o := range in.Objs {
		if len(o.Terms) < 2 {
			return nil, fmt.Errorf("structured: objective %d has %d agents, want ≥ 2", k, len(o.Terms))
		}
		row := objIdx[pos : pos+len(o.Terms) : pos+len(o.Terms)]
		pos += len(o.Terms)
		s.Objs[k] = row
		for j, t := range o.Terms {
			if t.Coef != 1 {
				return nil, fmt.Errorf("structured: objective %d agent %d has coefficient %v, want 1", k, t.Agent, t.Coef)
			}
			if s.ObjOf[t.Agent] != -1 {
				return nil, fmt.Errorf("structured: agent %d belongs to objectives %d and %d", t.Agent, s.ObjOf[t.Agent], k)
			}
			s.ObjOf[t.Agent] = int32(k)
			row[j] = int32(t.Agent)
		}
	}
	for v := range s.ObjOf {
		if s.ObjOf[v] == -1 {
			return nil, fmt.Errorf("structured: agent %d has no objective", v)
		}
	}
	s.ConsV = grow(&s.ConsV, len(in.Cons))
	s.ConsA = grow(&s.ConsA, len(in.Cons))
	count := grow(&sc.count, in.NumAgents)
	for v := range count {
		count[v] = 0
	}
	for i, c := range in.Cons {
		if len(c.Terms) != 2 {
			return nil, fmt.Errorf("structured: constraint %d has %d agents, want 2", i, len(c.Terms))
		}
		for j, t := range c.Terms {
			s.ConsV[i][j] = int32(t.Agent)
			s.ConsA[i][j] = t.Coef
			count[t.Agent]++
		}
	}
	// ConsOf as carved-up CSR: each agent's list gets exactly its counted
	// capacity, so the appends below never reallocate and constraint order
	// matches the append-per-term order of the allocating construction.
	consIdx := grow(&sc.consIdx, 2*len(in.Cons))
	s.ConsOf = grow(&s.ConsOf, in.NumAgents)
	pos = 0
	for v := 0; v < in.NumAgents; v++ {
		s.ConsOf[v] = consIdx[pos : pos : pos+int(count[v])]
		pos += int(count[v])
	}
	for i, c := range in.Cons {
		for _, t := range c.Terms {
			s.ConsOf[t.Agent] = append(s.ConsOf[t.Agent], int32(i))
		}
	}
	s.Caps = grow(&s.Caps, in.NumAgents)
	for v := 0; v < s.N; v++ {
		if len(s.ConsOf[v]) == 0 {
			return nil, fmt.Errorf("structured: agent %d has no constraints", v)
		}
		cap := 0.0
		for j, i := range s.ConsOf[v] {
			a := s.CoefOf(int(i), int32(v))
			if j == 0 || 1/a < cap {
				cap = 1 / a
			}
		}
		s.Caps[v] = cap
	}
	return s, nil
}

// CoefOf returns a_iv for agent v in constraint i; v must be in the pair.
func (s *Instance) CoefOf(i int, v int32) float64 {
	if s.ConsV[i][0] == v {
		return s.ConsA[i][0]
	}
	if s.ConsV[i][1] == v {
		return s.ConsA[i][1]
	}
	panic(fmt.Sprintf("structured: agent %d not in constraint %d", v, i))
}

// Partner returns n(v,i): the other agent of constraint i, together with
// a_iv (the caller's coefficient) and a_i,n(v,i) (the partner's).
func (s *Instance) Partner(i int, v int32) (w int32, av, aw float64) {
	if s.ConsV[i][0] == v {
		return s.ConsV[i][1], s.ConsA[i][0], s.ConsA[i][1]
	}
	if s.ConsV[i][1] == v {
		return s.ConsV[i][0], s.ConsA[i][1], s.ConsA[i][0]
	}
	panic(fmt.Sprintf("structured: agent %d not in constraint %d", v, i))
}

// PeersDo invokes fn for every w ∈ N(v) = Vk(v) \ {v}.
func (s *Instance) PeersDo(v int32, fn func(w int32)) {
	for _, w := range s.Objs[s.ObjOf[v]] {
		if w != v {
			fn(w)
		}
	}
}

// DegreeK returns ΔK, the largest objective size.
func (s *Instance) DegreeK() int {
	d := 0
	for _, m := range s.Objs {
		if len(m) > d {
			d = len(m)
		}
	}
	return d
}

// MaxConsPerAgent returns max_v |Iv|, the branching factor of the
// alternating-tree recursion.
func (s *Instance) MaxConsPerAgent() int {
	d := 0
	for _, c := range s.ConsOf {
		if len(c) > d {
			d = len(c)
		}
	}
	return d
}

// ToMMLP converts back to the row representation (for LP solving, JSON, …).
func (s *Instance) ToMMLP() *mmlp.Instance {
	out := mmlp.New(s.N)
	for i := range s.ConsV {
		out.AddConstraint(float64(s.ConsV[i][0]), s.ConsA[i][0], float64(s.ConsV[i][1]), s.ConsA[i][1])
	}
	for _, members := range s.Objs {
		pairs := make([]float64, 0, 2*len(members))
		for _, v := range members {
			pairs = append(pairs, float64(v), 1)
		}
		out.AddObjective(pairs...)
	}
	return out
}

// Utility returns ω(x) on the structured instance: the smallest objective
// sum Σ_{v∈Vk} x_v.
func (s *Instance) Utility(x []float64) float64 {
	best := 0.0
	for k, members := range s.Objs {
		sum := 0.0
		for _, v := range members {
			sum += x[v]
		}
		if k == 0 || sum < best {
			best = sum
		}
	}
	return best
}

// MaxViolation returns the worst constraint overshoot max_i (Σ a x − 1),
// clamped at 0, plus any negativity of x.
func (s *Instance) MaxViolation(x []float64) float64 {
	worst := 0.0
	for _, xv := range x {
		if -xv > worst {
			worst = -xv
		}
	}
	for i := range s.ConsV {
		load := s.ConsA[i][0]*x[s.ConsV[i][0]] + s.ConsA[i][1]*x[s.ConsV[i][1]]
		if load-1 > worst {
			worst = load - 1
		}
	}
	return worst
}
