package structured

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/mmlp"
)

// sample: objective {0,1,2}, constraints {0,1} a=(1,2) and {1,2} a=(0.5,1),
// plus objective {3,4} with constraint {3,4} — two components.
func sample() *mmlp.Instance {
	in := mmlp.New(5)
	in.AddObjective(0, 1, 1, 1, 2, 1)
	in.AddObjective(3, 1, 4, 1)
	in.AddConstraint(0, 1, 1, 2)
	in.AddConstraint(1, 0.5, 2, 1)
	in.AddConstraint(3, 1, 4, 1)
	return in
}

func TestFromMMLPBuildsArrays(t *testing.T) {
	s, err := FromMMLP(sample())
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 {
		t.Fatalf("N = %d", s.N)
	}
	if s.ObjOf[0] != 0 || s.ObjOf[4] != 1 {
		t.Fatalf("ObjOf wrong: %v", s.ObjOf)
	}
	if len(s.Objs[0]) != 3 || len(s.Objs[1]) != 2 {
		t.Fatalf("Objs sizes wrong")
	}
	if len(s.ConsOf[1]) != 2 {
		t.Fatalf("agent 1 should be in 2 constraints, got %d", len(s.ConsOf[1]))
	}
	// Caps: agent 1 has a = 2 and 0.5 → cap = 1/2.
	if s.Caps[1] != 0.5 {
		t.Fatalf("cap[1] = %v", s.Caps[1])
	}
	if s.Caps[0] != 1 || s.Caps[2] != 1 {
		t.Fatalf("caps wrong: %v", s.Caps)
	}
}

func TestFromMMLPRejects(t *testing.T) {
	// Objective too small.
	a := mmlp.New(1)
	a.AddObjective(0, 1)
	if _, err := FromMMLP(a); err == nil {
		t.Fatal("singleton objective accepted")
	}
	// Non-unit coefficient.
	b := mmlp.New(2)
	b.AddObjective(0, 1, 1, 2)
	b.AddConstraint(0, 1, 1, 1)
	if _, err := FromMMLP(b); err == nil {
		t.Fatal("non-unit coefficient accepted")
	}
	// Agent in two objectives.
	c := mmlp.New(3)
	c.AddObjective(0, 1, 1, 1)
	c.AddObjective(0, 1, 2, 1)
	c.AddConstraint(0, 1, 1, 1)
	c.AddConstraint(2, 1, 0, 1)
	if _, err := FromMMLP(c); err == nil {
		t.Fatal("doubly covered agent accepted")
	}
	// Agent without objective.
	d := mmlp.New(3)
	d.AddObjective(0, 1, 1, 1)
	d.AddConstraint(1, 1, 2, 1)
	if _, err := FromMMLP(d); err == nil {
		t.Fatal("uncovered agent accepted")
	}
	// Constraint with wrong arity.
	e := mmlp.New(2)
	e.AddObjective(0, 1, 1, 1)
	e.AddConstraint(0, 1)
	if _, err := FromMMLP(e); err == nil {
		t.Fatal("singleton constraint accepted")
	}
	// Agent without constraint.
	f := mmlp.New(2)
	f.AddObjective(0, 1, 1, 1)
	f.AddConstraint(0, 1, 0, 1) // invalid duplicate… use a valid pair on one agent twice
	if _, err := FromMMLP(f); err == nil {
		t.Fatal("expected rejection (agent 1 unconstrained or duplicate pair)")
	}
}

func TestPartnerAndCoef(t *testing.T) {
	s, err := FromMMLP(sample())
	if err != nil {
		t.Fatal(err)
	}
	w, av, aw := s.Partner(0, 0)
	if w != 1 || av != 1 || aw != 2 {
		t.Fatalf("Partner(0,0) = %d %v %v", w, av, aw)
	}
	w, av, aw = s.Partner(0, 1)
	if w != 0 || av != 2 || aw != 1 {
		t.Fatalf("Partner(0,1) = %d %v %v", w, av, aw)
	}
	if got := s.CoefOf(1, 1); got != 0.5 {
		t.Fatalf("CoefOf(1,1) = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("CoefOf on absent agent should panic")
		}
	}()
	s.CoefOf(0, 4)
}

func TestPartnerPanicsOnAbsentAgent(t *testing.T) {
	s, _ := FromMMLP(sample())
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	s.Partner(0, 4)
}

func TestPeersDo(t *testing.T) {
	s, _ := FromMMLP(sample())
	var peers []int32
	s.PeersDo(1, func(w int32) { peers = append(peers, w) })
	if len(peers) != 2 || peers[0] != 0 || peers[1] != 2 {
		t.Fatalf("peers of 1 = %v", peers)
	}
	peers = nil
	s.PeersDo(3, func(w int32) { peers = append(peers, w) })
	if len(peers) != 1 || peers[0] != 4 {
		t.Fatalf("peers of 3 = %v", peers)
	}
}

func TestDegreesAndBranching(t *testing.T) {
	s, _ := FromMMLP(sample())
	if s.DegreeK() != 3 {
		t.Fatalf("DegreeK = %d", s.DegreeK())
	}
	if s.MaxConsPerAgent() != 2 {
		t.Fatalf("MaxConsPerAgent = %d", s.MaxConsPerAgent())
	}
}

func TestToMMLPRoundTrip(t *testing.T) {
	in := sample()
	s, _ := FromMMLP(in)
	back := s.ToMMLP()
	if back.NumAgents != in.NumAgents || len(back.Cons) != len(in.Cons) || len(back.Objs) != len(in.Objs) {
		t.Fatalf("round trip changed shape: %v vs %v", back.Stats(), in.Stats())
	}
	s2, err := FromMMLP(back)
	if err != nil {
		t.Fatalf("round trip not structured: %v", err)
	}
	for v := 0; v < s.N; v++ {
		if s2.Caps[v] != s.Caps[v] {
			t.Fatalf("caps changed at %d", v)
		}
	}
}

func TestUtilityAndViolation(t *testing.T) {
	s, _ := FromMMLP(sample())
	x := []float64{0.2, 0.3, 0.4, 0.5, 0.5}
	// Objective sums: 0.9 and 1.0 → utility 0.9.
	if got := s.Utility(x); math.Abs(got-0.9) > 1e-12 {
		t.Fatalf("utility = %v", got)
	}
	if v := s.MaxViolation(x); v != 0 {
		t.Fatalf("violation = %v for feasible x", v)
	}
	bad := []float64{1, 1, 0, 0, 0}
	// Constraint 0: 1 + 2 = 3 → violation 2.
	if v := s.MaxViolation(bad); math.Abs(v-2) > 1e-12 {
		t.Fatalf("violation = %v, want 2", v)
	}
	neg := []float64{-0.5, 0, 0, 0, 0}
	if v := s.MaxViolation(neg); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("violation = %v, want 0.5", v)
	}
}

// TestFromMMLPScratchBitIdentical reuses one conversion scratch across a
// stream of differently-sized structured instances and demands the compact
// form match the fresh conversion exactly, with results that stay intact
// only until the scratch's next use (hence the comparison happens before
// the next conversion).
func TestFromMMLPScratchBitIdentical(t *testing.T) {
	sc := &Scratch{}
	for trial := 0; trial < 20; trial++ {
		in := gen.RandomStructured(gen.StructuredConfig{
			Objectives: 5 + trial*3,
			MaxDegK:    2 + trial%3,
			ExtraCons:  trial * 2,
		}, int64(trial+1))
		want, err := FromMMLP(in)
		if err != nil {
			t.Fatalf("trial %d: fresh: %v", trial, err)
		}
		got, err := FromMMLPScratch(in, sc)
		if err != nil {
			t.Fatalf("trial %d: scratch: %v", trial, err)
		}
		if got.N != want.N ||
			!reflect.DeepEqual(got.ObjOf, want.ObjOf) ||
			!reflect.DeepEqual(got.Objs, want.Objs) ||
			!reflect.DeepEqual(got.ConsV, want.ConsV) ||
			!reflect.DeepEqual(got.ConsA, want.ConsA) ||
			!reflect.DeepEqual(got.ConsOf, want.ConsOf) ||
			!reflect.DeepEqual(got.Caps, want.Caps) {
			t.Fatalf("trial %d: scratch conversion diverged", trial)
		}
	}
}

// TestFromMMLPScratchErrors: the scratch path reports the same structural
// errors as the fresh path, and a failed conversion leaves the scratch
// usable.
func TestFromMMLPScratchErrors(t *testing.T) {
	sc := &Scratch{}
	bad := mmlp.New(2)
	bad.AddConstraint(0, 1, 1, 1)
	bad.AddObjective(0, 1) // singleton objective
	_, wantErr := FromMMLP(bad)
	_, gotErr := FromMMLPScratch(bad, sc)
	if wantErr == nil || gotErr == nil || wantErr.Error() != gotErr.Error() {
		t.Fatalf("error mismatch: %v vs %v", gotErr, wantErr)
	}
	good := gen.RandomStructured(gen.StructuredConfig{Objectives: 4, MaxDegK: 2, ExtraCons: 2}, 7)
	if _, err := FromMMLPScratch(good, sc); err != nil {
		t.Fatalf("scratch unusable after error: %v", err)
	}
}

// TestFromMMLPScratchWarmAllocFree pins the conversion's steady-state heap
// behaviour.
func TestFromMMLPScratchWarmAllocFree(t *testing.T) {
	in := gen.RandomStructured(gen.StructuredConfig{Objectives: 30, MaxDegK: 3, ExtraCons: 15}, 3)
	sc := &Scratch{}
	if _, err := FromMMLPScratch(in, sc); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := FromMMLPScratch(in, sc); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Fatalf("warm FromMMLPScratch allocates %.1f objects", avg)
	}
}
