package bipartite

import (
	"testing"

	"repro/internal/mmlp"
)

// pathInstance builds a genuine path: consecutive agents joined
// alternately by a constraint and an objective, V0 -I- V1 -K- V2 -I- V3 …
func pathInstance(n int) *mmlp.Instance {
	in := mmlp.New(n)
	for v := 0; v+1 < n; v++ {
		if v%2 == 0 {
			in.AddConstraint(float64(v), 1, float64(v+1), 1)
		} else {
			in.AddObjective(float64(v), 1, float64(v+1), 1)
		}
	}
	return in
}

// ladderInstance joins every consecutive agent pair with both a constraint
// and an objective, so agent j has ports to two constraints and two
// objectives; contains 4-cycles by construction.
func ladderInstance(n int) *mmlp.Instance {
	in := mmlp.New(n)
	for v := 0; v+1 < n; v++ {
		in.AddConstraint(float64(v), 1, float64(v+1), 1)
		in.AddObjective(float64(v), 1, float64(v+1), 1)
	}
	return in
}

// cycleInstance joins n agents into a ring with constraints and objectives
// alternating between consecutive agents.
func cycleInstance(n int) *mmlp.Instance {
	in := mmlp.New(n)
	for v := 0; v < n; v++ {
		w := (v + 1) % n
		if v%2 == 0 {
			in.AddConstraint(float64(v), 1, float64(w), 1)
		} else {
			in.AddObjective(float64(v), 1, float64(w), 1)
		}
	}
	return in
}

func TestFromInstanceCountsAndKinds(t *testing.T) {
	in := ladderInstance(3)
	g := FromInstance(in)
	if g.NumNodes() != 3+2+2 {
		t.Fatalf("NumNodes = %d, want 7", g.NumNodes())
	}
	if g.NumAgents() != 3 || g.NumConstraints() != 2 || g.NumObjectives() != 2 {
		t.Fatalf("counts wrong: %d %d %d", g.NumAgents(), g.NumConstraints(), g.NumObjectives())
	}
	if g.Kind(g.AgentNode(0)) != KindAgent {
		t.Fatal("agent node misclassified")
	}
	if g.Kind(g.ConstraintNode(1)) != KindConstraint {
		t.Fatal("constraint node misclassified")
	}
	if g.Kind(g.ObjectiveNode(1)) != KindObjective {
		t.Fatal("objective node misclassified")
	}
	for _, n := range []Node{g.AgentNode(2), g.ConstraintNode(0), g.ObjectiveNode(1)} {
		if g.Kind(n) == KindAgent && g.Index(n) != 2 {
			t.Fatalf("Index(%d) = %d", n, g.Index(n))
		}
	}
	if g.Index(g.ConstraintNode(1)) != 1 || g.Index(g.ObjectiveNode(1)) != 1 {
		t.Fatal("Index does not invert typed constructors")
	}
}

func TestKindString(t *testing.T) {
	if KindAgent.String() != "agent" || KindConstraint.String() != "constraint" || KindObjective.String() != "objective" {
		t.Fatal("Kind.String names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestPortOrderIsDeterministic(t *testing.T) {
	in := ladderInstance(3)
	g := FromInstance(in)
	// Agent 1 sits in constraints 0 and 1 and objectives 0 and 1; ports must
	// list constraints first in row order, then objectives in row order.
	v1 := g.AgentNode(1)
	want := []Node{g.ConstraintNode(0), g.ConstraintNode(1), g.ObjectiveNode(0), g.ObjectiveNode(1)}
	got := g.Neighbors(v1)
	if len(got) != len(want) {
		t.Fatalf("agent 1 degree = %d, want %d", len(got), len(want))
	}
	for p := range want {
		if got[p] != want[p] {
			t.Fatalf("port %d of agent 1 = %v, want %v", p, got[p], want[p])
		}
	}
	// Constraint 0 lists its agents in term order: 0 then 1.
	c0 := g.ConstraintNode(0)
	if g.Neighbor(c0, 0) != g.AgentNode(0) || g.Neighbor(c0, 1) != g.AgentNode(1) {
		t.Fatalf("constraint 0 ports wrong: %v", g.Neighbors(c0))
	}
}

func TestPortTo(t *testing.T) {
	g := FromInstance(ladderInstance(3))
	v1 := g.AgentNode(1)
	if p := g.PortTo(v1, g.ObjectiveNode(1)); p != 3 {
		t.Fatalf("PortTo = %d, want 3", p)
	}
	if p := g.PortTo(g.AgentNode(0), g.AgentNode(2)); p != -1 {
		t.Fatalf("non-adjacent PortTo = %d, want -1", p)
	}
}

func TestBallAndDist(t *testing.T) {
	g := FromInstance(pathInstance(5))
	v0 := g.AgentNode(0)
	nodes, dist := g.Ball(v0, 2)
	// radius 2 from V0 on the alternating path: V0, I0, V1.
	if len(nodes) != 3 {
		t.Fatalf("ball size = %d, want 3: %v", len(nodes), nodes)
	}
	for j, n := range nodes {
		if want := g.Dist(v0, n); want != dist[j] {
			t.Fatalf("dist mismatch for node %v: ball %d, Dist %d", n, dist[j], want)
		}
	}
	if d := g.Dist(v0, g.AgentNode(4)); d != 8 {
		t.Fatalf("Dist(V0,V4) = %d, want 8", d)
	}
	if d := g.Dist(v0, v0); d != 0 {
		t.Fatalf("Dist(v,v) = %d", d)
	}
}

func TestDistAcrossComponents(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1)
	in.AddConstraint(1, 1)
	g := FromInstance(in)
	if d := g.Dist(g.AgentNode(0), g.AgentNode(1)); d != -1 {
		t.Fatalf("cross-component Dist = %d, want -1", d)
	}
}

func TestAgentsWithin(t *testing.T) {
	g := FromInstance(pathInstance(5))
	got := g.AgentsWithin(2, 2)
	want := map[int]bool{1: true, 2: true, 3: true}
	if len(got) != 3 {
		t.Fatalf("AgentsWithin = %v, want 3 agents", got)
	}
	for _, v := range got {
		if !want[v] {
			t.Fatalf("AgentsWithin contains unexpected agent %d", v)
		}
	}
	if g.AgentsWithin(0, 0)[0] != 0 {
		t.Fatal("radius-0 ball should contain only the center")
	}
}

func TestComponentsAndConnected(t *testing.T) {
	g := FromInstance(pathInstance(4))
	if !g.Connected() {
		t.Fatal("path should be connected")
	}
	in := mmlp.New(3)
	in.AddConstraint(0, 1, 1, 1)
	// agent 2 is isolated
	g2 := FromInstance(in)
	comps := g2.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if g2.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestGirth(t *testing.T) {
	if g := FromInstance(pathInstance(4)); g.Girth() != -1 {
		t.Fatalf("path girth = %d, want -1", g.Girth())
	}
	if g := FromInstance(ladderInstance(3)); g.Girth() != 4 {
		t.Fatalf("ladder girth = %d, want 4", g.Girth())
	}
	// Ring of 6 agents alternating constraint/objective → cycle length 12.
	g := FromInstance(cycleInstance(6))
	if got := g.Girth(); got != 12 {
		t.Fatalf("cycle girth = %d, want 12", got)
	}
	// Two agents sharing two different constraints → 4-cycle.
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddConstraint(0, 1, 1, 2)
	if got := FromInstance(in).Girth(); got != 4 {
		t.Fatalf("doubled constraint girth = %d, want 4", got)
	}
}

func TestIsTree(t *testing.T) {
	if !FromInstance(pathInstance(4)).IsTree() {
		t.Fatal("path should be a tree")
	}
	if FromInstance(cycleInstance(6)).IsTree() {
		t.Fatal("cycle should not be a tree")
	}
	in := mmlp.New(2) // two isolated agents: forest, not tree
	if FromInstance(in).IsTree() {
		t.Fatal("forest with two components reported as tree")
	}
}
