// Package bipartite models the communication graph G = (V ∪ I ∪ K, E) of a
// distributed max-min LP (paper §1.1): one node per agent, per constraint
// and per objective, with an edge {v,i} whenever a_iv > 0 and {v,k} whenever
// c_kv > 0.
//
// Nodes carry no identifiers visible to the algorithms; what the package
// exposes is *port numbering* (§1.2, §3): every node has an ordered list of
// incident edges. The order is deterministic, derived from the instance:
// agents list their constraints first (in increasing row order) and then
// their objectives; constraints and objectives list their agents in row-term
// order.
package bipartite

import (
	"fmt"

	"repro/internal/mmlp"
)

// Kind classifies a node of the communication graph.
type Kind uint8

// The three node classes of the bipartite communication graph.
const (
	KindAgent Kind = iota
	KindConstraint
	KindObjective
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindAgent:
		return "agent"
	case KindConstraint:
		return "constraint"
	case KindObjective:
		return "objective"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Node is a graph-wide node identifier. Agents occupy [0, NumAgents),
// constraints the next NumConstraints ids, objectives the rest.
type Node int32

// Graph is the communication graph of one max-min LP instance. It is
// immutable after construction.
type Graph struct {
	numAgents int
	numCons   int
	numObjs   int
	adj       [][]Node
}

// FromInstance builds the communication graph of in. The instance must be
// structurally valid (mmlp.Validate); rows with no terms become isolated
// nodes.
func FromInstance(in *mmlp.Instance) *Graph {
	g := &Graph{
		numAgents: in.NumAgents,
		numCons:   len(in.Cons),
		numObjs:   len(in.Objs),
	}
	g.adj = make([][]Node, g.NumNodes())
	// Agents: constraints first, then objectives, each in row order. Build
	// by scanning rows in order, which yields exactly that port order.
	for i, c := range in.Cons {
		ci := g.ConstraintNode(i)
		for _, t := range c.Terms {
			av := g.AgentNode(t.Agent)
			g.adj[av] = append(g.adj[av], ci)
			g.adj[ci] = append(g.adj[ci], av)
		}
	}
	for k, o := range in.Objs {
		ck := g.ObjectiveNode(k)
		for _, t := range o.Terms {
			av := g.AgentNode(t.Agent)
			g.adj[av] = append(g.adj[av], ck)
			g.adj[ck] = append(g.adj[ck], av)
		}
	}
	return g
}

// NumNodes returns the total node count |V| + |I| + |K|.
func (g *Graph) NumNodes() int { return g.numAgents + g.numCons + g.numObjs }

// NumAgents returns |V|.
func (g *Graph) NumAgents() int { return g.numAgents }

// NumConstraints returns |I|.
func (g *Graph) NumConstraints() int { return g.numCons }

// NumObjectives returns |K|.
func (g *Graph) NumObjectives() int { return g.numObjs }

// AgentNode returns the node id of agent v.
func (g *Graph) AgentNode(v int) Node { return Node(v) }

// ConstraintNode returns the node id of constraint i.
func (g *Graph) ConstraintNode(i int) Node { return Node(g.numAgents + i) }

// ObjectiveNode returns the node id of objective k.
func (g *Graph) ObjectiveNode(k int) Node { return Node(g.numAgents + g.numCons + k) }

// Kind reports the class of node n.
func (g *Graph) Kind(n Node) Kind {
	switch {
	case int(n) < g.numAgents:
		return KindAgent
	case int(n) < g.numAgents+g.numCons:
		return KindConstraint
	default:
		return KindObjective
	}
}

// Index converts a node id back to its index within its class: the agent,
// constraint or objective number.
func (g *Graph) Index(n Node) int {
	switch g.Kind(n) {
	case KindAgent:
		return int(n)
	case KindConstraint:
		return int(n) - g.numAgents
	default:
		return int(n) - g.numAgents - g.numCons
	}
}

// Degree returns the number of ports of node n.
func (g *Graph) Degree(n Node) int { return len(g.adj[n]) }

// Neighbors returns n's adjacency list in port order. The slice is shared
// with the graph and must not be mutated.
func (g *Graph) Neighbors(n Node) []Node { return g.adj[n] }

// Neighbor returns the node behind port p of n (ports count from 0).
func (g *Graph) Neighbor(n Node, p int) Node { return g.adj[n][p] }

// PortTo returns the port of from that leads to to, or -1 when the nodes are
// not adjacent. Parallel edges do not occur: an agent appears at most once
// per row.
func (g *Graph) PortTo(from, to Node) int {
	for p, m := range g.adj[from] {
		if m == to {
			return p
		}
	}
	return -1
}
