package bipartite

// Ball returns every node within the given number of edges of from
// (inclusive of from itself), in BFS order, together with a parallel slice
// of distances. Radius 0 yields only from.
func (g *Graph) Ball(from Node, radius int) (nodes []Node, dist []int) {
	seen := make(map[Node]int, 16)
	seen[from] = 0
	nodes = append(nodes, from)
	dist = append(dist, 0)
	for head := 0; head < len(nodes); head++ {
		n, d := nodes[head], dist[head]
		if d == radius {
			continue
		}
		for _, m := range g.adj[n] {
			if _, ok := seen[m]; ok {
				continue
			}
			seen[m] = d + 1
			nodes = append(nodes, m)
			dist = append(dist, d+1)
		}
	}
	return nodes, dist
}

// AgentsWithin returns the agents whose graph distance from agent v is at
// most radius, in BFS order (v itself first). This is the set the smoothing
// step of §5.3 takes a minimum over.
func (g *Graph) AgentsWithin(v int, radius int) []int {
	nodes, _ := g.Ball(g.AgentNode(v), radius)
	var agents []int
	for _, n := range nodes {
		if g.Kind(n) == KindAgent {
			agents = append(agents, g.Index(n))
		}
	}
	return agents
}

// Dist returns the graph distance in edges between two nodes, or -1 when
// they lie in different connected components.
func (g *Graph) Dist(a, b Node) int {
	if a == b {
		return 0
	}
	seen := map[Node]int{a: 0}
	queue := []Node{a}
	for head := 0; head < len(queue); head++ {
		n := queue[head]
		for _, m := range g.adj[n] {
			if _, ok := seen[m]; ok {
				continue
			}
			seen[m] = seen[n] + 1
			if m == b {
				return seen[m]
			}
			queue = append(queue, m)
		}
	}
	return -1
}

// Components returns the connected components of the graph as slices of
// node ids, each in BFS order, ordered by their smallest node id.
func (g *Graph) Components() [][]Node {
	visited := make([]bool, g.NumNodes())
	var comps [][]Node
	for start := 0; start < g.NumNodes(); start++ {
		if visited[start] {
			continue
		}
		comp := []Node{Node(start)}
		visited[start] = true
		for head := 0; head < len(comp); head++ {
			for _, m := range g.adj[comp[head]] {
				if !visited[m] {
					visited[m] = true
					comp = append(comp, m)
				}
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

// Connected reports whether the graph has at most one connected component.
func (g *Graph) Connected() bool { return len(g.Components()) <= 1 }

// Girth returns the length of a shortest cycle, or -1 for a forest. The
// graph is bipartite, so any girth returned is even and at least 4.
func (g *Graph) Girth() int {
	best := -1
	// BFS from every node; a cross or back edge at depths d1, d2 closes a
	// cycle of length d1+d2+1. For bipartite graphs cross edges at equal
	// depth cannot occur, but the general formula keeps the routine honest.
	for start := 0; start < g.NumNodes(); start++ {
		dist := make(map[Node]int, 16)
		parent := make(map[Node]Node, 16)
		dist[Node(start)] = 0
		parent[Node(start)] = -1
		queue := []Node{Node(start)}
		for head := 0; head < len(queue); head++ {
			n := queue[head]
			if best != -1 && dist[n]*2 >= best {
				break
			}
			for _, m := range g.adj[n] {
				if m == parent[n] {
					continue
				}
				if dm, ok := dist[m]; ok {
					if c := dist[n] + dm + 1; best == -1 || c < best {
						best = c
					}
					continue
				}
				dist[m] = dist[n] + 1
				parent[m] = n
				queue = append(queue, m)
			}
		}
	}
	return best
}

// IsTree reports whether the graph is a connected forest with exactly one
// component (a tree), the situation in which the unfolding of §3 is finite.
func (g *Graph) IsTree() bool {
	edges := 0
	for _, a := range g.adj {
		edges += len(a)
	}
	edges /= 2
	return g.Connected() && edges == g.NumNodes()-1
}
