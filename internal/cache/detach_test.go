package cache_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
)

// TestDoDetachedHitAndLeader: outside of a coalescing race DoDetached is
// exactly Do — the caller leads on a miss and reads the entry on a hit.
func TestDoDetachedHitAndLeader(t *testing.T) {
	c := cache.New(cache.Options{})
	k := key(1)
	v, hit, done, err := c.DoDetached(k, func() (any, int64, error) { return "fresh", 8, nil },
		func(any, error) { t.Error("deliver called without a competing flight") })
	if err != nil || !done || hit || v != "fresh" {
		t.Fatalf("leader DoDetached = (%v, %v, %v, %v), want (fresh, false, true, nil)", v, hit, done, err)
	}
	v, hit, done, err = c.DoDetached(k, func() (any, int64, error) {
		t.Error("compute ran on a warm key")
		return nil, 0, nil
	}, func(any, error) { t.Error("deliver called on a hit") })
	if err != nil || !done || !hit || v != "fresh" {
		t.Fatalf("hit DoDetached = (%v, %v, %v, %v), want (fresh, true, true, nil)", v, hit, done, err)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Coalesced != 0 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 0 coalesced", st)
	}
}

// TestDoDetachedSubscribes: a DoDetached that lands on an in-flight key
// returns immediately (done=false) and its callback fires exactly once with
// the leader's value.
func TestDoDetachedSubscribes(t *testing.T) {
	c := cache.New(cache.Options{})
	k := key(2)
	enter, release := make(chan struct{}), make(chan struct{})
	go func() {
		c.Do(nil, k, func() (any, int64, error) {
			close(enter)
			<-release
			return "led", 8, nil
		})
	}()
	<-enter

	got := make(chan any, 1)
	v, hit, done, err := c.DoDetached(k, func() (any, int64, error) {
		t.Error("subscriber ran compute")
		return nil, 0, nil
	}, func(val any, err error) {
		if err != nil {
			t.Errorf("deliver got error %v", err)
		}
		got <- val
	})
	if err != nil || done || hit || v != nil {
		t.Fatalf("subscribing DoDetached = (%v, %v, %v, %v), want (nil, false, false, nil)", v, hit, done, err)
	}
	select {
	case <-got:
		t.Fatal("deliver fired before the leader settled")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case val := <-got:
		if val != "led" {
			t.Fatalf("delivered %v, want led", val)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deliver never fired")
	}
	if st := c.Stats(); st.Coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", st.Coalesced)
	}
}

// TestDoDetachedLeaderFailure: subscribers see the leader's error, exactly
// once, and nothing is cached.
func TestDoDetachedLeaderFailure(t *testing.T) {
	c := cache.New(cache.Options{})
	k := key(3)
	boom := errors.New("boom")
	enter, release := make(chan struct{}), make(chan struct{})
	go func() {
		c.DoDetached(k, func() (any, int64, error) {
			close(enter)
			<-release
			return nil, 0, boom
		}, nil)
	}()
	<-enter

	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		_, _, done, err := c.DoDetached(k, nil, func(val any, err error) { errs <- err })
		if done || err != nil {
			t.Fatalf("subscriber %d: done=%v err=%v, want pending", i, done, err)
		}
	}
	close(release)
	for i := 0; i < 3; i++ {
		select {
		case err := <-errs:
			if !errors.Is(err, boom) {
				t.Fatalf("subscriber saw %v, want boom", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("subscriber never notified")
		}
	}
	if _, ok := c.Get(k); ok {
		t.Fatal("failed computation was cached")
	}
}

// TestPrune drops exactly the entries the keep predicate rejects and counts
// them apart from evictions.
func TestPrune(t *testing.T) {
	c := cache.New(cache.Options{})
	for i := 0; i < 20; i++ {
		c.Put(key(i), i, 100)
	}
	keepEven := func(k canon.Key) bool { return k[2]%2 == 0 }
	if n := c.Prune(keepEven); n != 10 {
		t.Fatalf("pruned %d entries, want 10", n)
	}
	for i := 0; i < 20; i++ {
		_, ok := c.Get(key(i))
		if want := i%2 == 0; ok != want {
			t.Fatalf("key %d present=%v after prune, want %v", i, ok, want)
		}
	}
	st := c.Stats()
	if st.Pruned != 10 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want Pruned=10 Evictions=0", st)
	}
	if st.Entries != 10 || st.Bytes != 1000 {
		t.Fatalf("contents = %d entries / %d bytes, want 10 / 1000", st.Entries, st.Bytes)
	}
	// Pruning everything empties the cache.
	if n := c.Prune(func(canon.Key) bool { return false }); n != 10 {
		t.Fatalf("second prune removed %d, want 10", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("cache not empty after full prune: %+v", st)
	}
}

// TestPruneConcurrentTraffic: prune under concurrent Do traffic neither
// deadlocks nor corrupts the byte accounting.
func TestPruneConcurrentTraffic(t *testing.T) {
	c := cache.New(cache.Options{MaxBytes: 1 << 20})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := key(w*1000 + i%50)
				c.Do(nil, k, func() (any, int64, error) { return i, 64, nil })
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		c.Prune(func(k canon.Key) bool { return k[2]%2 == 0 })
	}
	close(stop)
	wg.Wait()
	st := c.Stats()
	var wantBytes int64 = int64(st.Entries) * 64
	if st.Bytes != wantBytes {
		t.Fatalf("byte accounting drifted: %d entries but %d bytes", st.Entries, st.Bytes)
	}
}
