// Package cache is a sharded, byte-budgeted LRU with singleflight
// semantics, keyed by canon.Key. It fronts the solve pipeline in the batch
// and serving layers: repeat solves of a slowly-changing topology become a
// map lookup, and K concurrent solves of the same key run the computation
// once while the other K−1 callers wait for the shared result.
//
// The key space is split across N shards (N rounded up to a power of two)
// selected by the key's leading bytes, so the batch pool's workers contend
// on N mutexes instead of one. Each shard owns an equal slice of the byte
// budget and evicts its own least-recently-used entries when inserts push
// it over; hits, misses, evictions and coalesced waiters are counted
// globally with atomics.
package cache

import (
	"container/list"
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/canon"
)

// Default sizing: a 64 MiB budget holds tens of thousands of typical solve
// results, and 16 shards keep mutex contention negligible at the pool
// concurrencies the serving layer runs (≤ a few dozen workers).
const (
	DefaultMaxBytes = 64 << 20
	DefaultShards   = 16
)

// Options sizes a Cache.
type Options struct {
	// MaxBytes is the total byte budget across all shards
	// (0 = DefaultMaxBytes). Entries are charged their caller-declared
	// cost; an entry larger than a whole shard's budget is not stored.
	MaxBytes int64
	// Shards is the shard count, rounded up to a power of two
	// (0 = DefaultShards).
	Shards int
}

// Stats is a point-in-time snapshot of the cache's activity.
type Stats struct {
	// Hits counts lookups answered from a stored entry; Misses counts
	// lookups that ran the computation. Coalesced counts Do callers that
	// attached to another caller's in-flight computation (at most once per
	// call, however often it retries) — they receive the shared result and
	// are counted here, not under Hits. While every flight succeeds,
	// Hits + Misses + Coalesced equals the number of lookups; a call that
	// waits on a flight that then fails retries and is additionally
	// counted by its final outcome.
	Hits, Misses, Coalesced int64
	// Evictions counts entries removed to honour the byte budget.
	Evictions int64
	// Pruned counts entries removed by Prune (ring cutovers); kept apart
	// from Evictions so budget pressure and ownership changes stay
	// distinguishable in fleet stats.
	Pruned int64
	// Entries and Bytes describe the current contents; MaxBytes echoes the
	// configured budget.
	Entries  int
	Bytes    int64
	MaxBytes int64
}

// entry is one cached value with its LRU bookkeeping.
type entry struct {
	key   canon.Key
	val   any
	bytes int64
}

// flight is one in-progress computation other callers can wait on (Do) or
// subscribe to (DoDetached).
type flight struct {
	done chan struct{} // closed when val/err are final
	val  any
	err  error
	// subs are DoDetached subscribers; appended under the shard lock while
	// the flight is registered, collected by the leader when it settles.
	subs []func(val any, err error)
}

// shard is one lock domain: a map, an LRU list (front = most recent) and a
// slice of the byte budget.
type shard struct {
	mu       sync.Mutex
	entries  map[canon.Key]*list.Element // of *entry
	flights  map[canon.Key]*flight
	lru      list.List
	bytes    int64
	maxBytes int64
}

// Cache is safe for concurrent use.
type Cache struct {
	shards []shard
	mask   uint32

	hits, misses, coalesced, evictions, pruned atomic.Int64
	maxBytes                                   int64
}

// New builds a cache; the zero-valued Options give the defaults.
func New(o Options) *Cache {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint32(n - 1), maxBytes: o.MaxBytes}
	per := o.MaxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[canon.Key]*list.Element)
		c.shards[i].flights = make(map[canon.Key]*flight)
		c.shards[i].maxBytes = per
	}
	return c
}

// shardOf selects the lock domain from the key's leading bytes; SHA-256
// keys are uniform, so shards fill evenly.
func (c *Cache) shardOf(key canon.Key) *shard {
	return &c.shards[binary.BigEndian.Uint32(key[:4])&c.mask]
}

// get returns the stored value and refreshes its recency. Caller holds
// sh.mu.
func (sh *shard) get(key canon.Key) (any, bool) {
	el, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// put inserts or replaces an entry and evicts from the cold end until the
// shard is back under budget. Values larger than the whole shard are not
// stored — they would evict everything and then still not fit. Caller
// holds sh.mu; returns the number of evictions.
func (sh *shard) put(key canon.Key, val any, bytes int64) int64 {
	if bytes > sh.maxBytes {
		return 0
	}
	if el, ok := sh.entries[key]; ok {
		e := el.Value.(*entry)
		sh.bytes += bytes - e.bytes
		e.val, e.bytes = val, bytes
		sh.lru.MoveToFront(el)
	} else {
		sh.entries[key] = sh.lru.PushFront(&entry{key: key, val: val, bytes: bytes})
		sh.bytes += bytes
	}
	var evicted int64
	for sh.bytes > sh.maxBytes {
		el := sh.lru.Back()
		e := el.Value.(*entry)
		sh.lru.Remove(el)
		delete(sh.entries, e.key)
		sh.bytes -= e.bytes
		evicted++
	}
	return evicted
}

// Get reports the cached value for key, counting a hit or a miss.
func (c *Cache) Get(key canon.Key) (any, bool) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	val, ok := sh.get(key)
	sh.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return val, ok
}

// Put stores val under key at the declared byte cost.
func (c *Cache) Put(key canon.Key, val any, bytes int64) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	evicted := sh.put(key, val, bytes)
	sh.mu.Unlock()
	c.evictions.Add(evicted)
}

// Do returns the value for key, computing it with compute on a miss.
// compute returns the value and its byte cost; errors are returned to the
// caller and never cached. Concurrent Do calls for the same key coalesce:
// one caller (the leader) runs compute, the rest wait and share its value.
// hit reports whether the value came from the cache or a leader (false
// only for the caller that ran compute itself). A waiter whose ctx expires
// stops waiting and returns ctx's error; a waiter whose leader fails
// retries from the top — its own context may still be live even when the
// leader's was the reason for the failure.
func (c *Cache) Do(ctx context.Context, key canon.Key, compute func() (any, int64, error)) (val any, hit bool, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sh := c.shardOf(key)
	attached := false
	for {
		sh.mu.Lock()
		if val, ok := sh.get(key); ok {
			sh.mu.Unlock()
			c.hits.Add(1)
			return val, true, nil
		}
		if f, ok := sh.flights[key]; ok {
			sh.mu.Unlock()
			if !attached {
				attached = true
				c.coalesced.Add(1)
			}
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if f.err == nil {
				return f.val, true, nil
			}
			continue
		}
		f := &flight{done: make(chan struct{})}
		sh.flights[key] = f
		sh.mu.Unlock()
		c.misses.Add(1)

		var bytes int64
		f.val, bytes, f.err = compute()
		c.settle(sh, key, f, bytes)
		return f.val, false, f.err
	}
}

// settle finalizes a flight the caller led: the entry is stored (on
// success) and the flight unregistered in one critical section, so no new
// waiter or subscriber can attach afterwards; then the waiters are released
// and the subscribers delivered, on the leader's goroutine. Delivery order
// is subscription order.
func (c *Cache) settle(sh *shard, key canon.Key, f *flight, bytes int64) {
	sh.mu.Lock()
	delete(sh.flights, key)
	var evicted int64
	if f.err == nil {
		evicted = sh.put(key, f.val, bytes)
	}
	subs := f.subs
	f.subs = nil
	sh.mu.Unlock()
	c.evictions.Add(evicted)
	close(f.done)
	for _, deliver := range subs {
		deliver(f.val, f.err)
	}
}

// DoDetached is Do for callers that must not block on someone else's
// computation. A cache hit, or a miss that makes the caller the leader,
// behaves exactly like Do and returns done=true. But when another caller's
// flight for key is already in progress, DoDetached registers deliver on it
// and returns immediately with done=false: deliver will be invoked exactly
// once, on the leader's goroutine after the flight settles, with the shared
// value or the leader's error. There is no automatic retry on leader
// failure — the subscriber sees the error and decides (the batch pool
// re-queues the job). A subscription cannot be cancelled; deliver must be
// safe to call even if the subscriber has since lost interest.
// hit reports (as in Do) whether the value came from a stored entry rather
// than this call's own compute.
func (c *Cache) DoDetached(key canon.Key, compute func() (any, int64, error), deliver func(val any, err error)) (val any, hit, done bool, err error) {
	sh := c.shardOf(key)
	sh.mu.Lock()
	if val, ok := sh.get(key); ok {
		sh.mu.Unlock()
		c.hits.Add(1)
		return val, true, true, nil
	}
	if f, ok := sh.flights[key]; ok {
		f.subs = append(f.subs, deliver)
		sh.mu.Unlock()
		c.coalesced.Add(1)
		return nil, false, false, nil
	}
	f := &flight{done: make(chan struct{})}
	sh.flights[key] = f
	sh.mu.Unlock()
	c.misses.Add(1)

	var bytes int64
	f.val, bytes, f.err = compute()
	c.settle(sh, key, f, bytes)
	return f.val, false, true, f.err
}

// Prune removes every stored entry whose key fails keep and returns the
// number removed. The serving layer calls it after a ring cutover so a
// shard drops the partitions it no longer owns — keeping the fleet-wide
// "every key cached exactly once" invariant — without disturbing entries it
// still owns. In-flight computations are not affected; their results are
// stored as usual and, if now unwanted, removed by the next Prune.
func (c *Cache) Prune(keep func(canon.Key) bool) int {
	total := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for el := sh.lru.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			if !keep(e.key) {
				sh.lru.Remove(el)
				delete(sh.entries, e.key)
				sh.bytes -= e.bytes
				total++
			}
			el = next
		}
		sh.mu.Unlock()
	}
	c.pruned.Add(int64(total))
	return total
}

// Stats snapshots the counters and contents. The counters are read with
// atomics and the per-shard contents under each shard's lock, so the
// snapshot is cheap but only loosely consistent under concurrent traffic.
func (c *Cache) Stats() Stats {
	st := Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Coalesced: c.coalesced.Load(),
		Evictions: c.evictions.Load(),
		Pruned:    c.pruned.Load(),
		MaxBytes:  c.maxBytes,
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return st
}
