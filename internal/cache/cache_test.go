package cache_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/canon"
)

// key derives a distinct canon.Key from an integer.
func key(i int) canon.Key {
	var k canon.Key
	k[0] = byte(i >> 16)
	k[1] = byte(i >> 8)
	k[2] = byte(i)
	k[12] = byte(i * 31)
	return k
}

func TestGetPut(t *testing.T) {
	c := cache.New(cache.Options{MaxBytes: 1 << 20, Shards: 4})
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key(1), "a", 10)
	if v, ok := c.Get(key(1)); !ok || v != "a" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	c.Put(key(1), "b", 12) // replace in place
	if v, _ := c.Get(key(1)); v != "b" {
		t.Fatalf("after replace Get = %v", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 12 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestEviction fills a single shard past its budget and checks the byte
// accounting, the eviction counter and the LRU order (a recently touched
// entry survives over a colder one).
func TestEviction(t *testing.T) {
	// One shard so all keys share one budget and recency list.
	c := cache.New(cache.Options{MaxBytes: 100, Shards: 1})
	for i := 0; i < 5; i++ {
		c.Put(key(i), i, 25) // 4 fit
	}
	c.Get(key(1)) // refresh 1 so it is the warmest of the survivors
	c.Put(key(5), 5, 25)
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("coldest entry survived eviction")
	}
	if v, ok := c.Get(key(1)); !ok || v != 1 {
		t.Fatal("recently-used entry was evicted")
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Fatalf("bytes %d exceed the budget", st.Bytes)
	}
	if st.Evictions < 2 {
		t.Fatalf("evictions = %d, want ≥ 2", st.Evictions)
	}
}

// TestOversizeEntry: a value larger than a whole shard is not stored.
func TestOversizeEntry(t *testing.T) {
	c := cache.New(cache.Options{MaxBytes: 64, Shards: 2}) // 32 per shard
	c.Put(key(1), "big", 1000)
	if _, ok := c.Get(key(1)); ok {
		t.Fatal("oversize entry was stored")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDoSingleflight: K concurrent Do calls for one key run the
// computation once; the waiters are counted as coalesced and every caller
// receives the same value.
func TestDoSingleflight(t *testing.T) {
	const waiters = 7
	c := cache.New(cache.Options{})
	var computes atomic.Int64
	release := make(chan struct{})

	results := make(chan string, waiters+1)
	var wg sync.WaitGroup
	for g := 0; g < waiters+1; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
				computes.Add(1)
				<-release
				return "value", 8, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results <- v.(string)
		}()
	}
	// Wait until every non-leader has attached to the leader's flight,
	// then let the leader finish.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d", c.Stats().Coalesced, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(results)
	for v := range results {
		if v != "value" {
			t.Fatalf("got %q", v)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times", got)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != waiters {
		t.Fatalf("stats = %+v", st)
	}
	// The stored value now answers straight hits.
	if _, hit, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
		t.Fatal("compute ran on a warm key")
		return nil, 0, nil
	}); err != nil || !hit {
		t.Fatalf("warm Do = hit %v, err %v", hit, err)
	}
}

// TestDoErrorNotCached: a failed computation leaves the key cold, so the
// next Do recomputes.
func TestDoErrorNotCached(t *testing.T) {
	c := cache.New(cache.Options{})
	boom := errors.New("boom")
	if _, _, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
		return "ok", 4, nil
	})
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry Do = %v, %v, %v", v, hit, err)
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Fatalf("misses = %d, want 2", st.Misses)
	}
}

// TestDoWaiterRetriesAfterLeaderFailure: when the leader fails, a waiter
// takes over and computes for itself instead of inheriting the error.
func TestDoWaiterRetriesAfterLeaderFailure(t *testing.T) {
	c := cache.New(cache.Options{})
	release := make(chan struct{})
	leaderErr := errors.New("leader died")

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
			<-release
			return nil, 0, leaderErr
		})
		leaderDone <- err
	}()
	// Make sure the failing leader owns the flight before the waiter joins,
	// or the "waiter" would win the race and lead a successful flight.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Misses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	waiterDone := make(chan string, 1)
	go func() {
		v, _, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
			return "recovered", 8, nil
		})
		if err != nil {
			t.Error(err)
			waiterDone <- ""
			return
		}
		waiterDone <- v.(string)
	}()
	deadline = time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced < 1 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never attached")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-leaderDone; !errors.Is(err, leaderErr) {
		t.Fatalf("leader err = %v", err)
	}
	if v := <-waiterDone; v != "recovered" {
		t.Fatalf("waiter got %q", v)
	}
}

// TestDoWaiterCancellation: a waiter whose context expires stops waiting
// with the context error while the leader keeps computing.
func TestDoWaiterCancellation(t *testing.T) {
	c := cache.New(cache.Options{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), key(1), func() (any, int64, error) {
			<-release
			return "late", 8, nil
		})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Misses < 1 {
		if time.Now().After(deadline) {
			t.Fatal("leader never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, key(1), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	close(release)
}

// TestConcurrentDo hammers a small cache from many goroutines (exercised
// under -race in CI): values must always be consistent with their key and
// the byte budget must hold afterwards.
func TestConcurrentDo(t *testing.T) {
	c := cache.New(cache.Options{MaxBytes: 512, Shards: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 32
				v, _, err := c.Do(context.Background(), key(k), func() (any, int64, error) {
					return fmt.Sprintf("v%d", k), 40, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if v.(string) != fmt.Sprintf("v%d", k) {
					t.Errorf("key %d returned %v", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 512 {
		t.Fatalf("bytes %d exceed the budget", st.Bytes)
	}
	if st.Hits+st.Misses+st.Coalesced != 8*200 {
		t.Fatalf("counter sum %d != %d lookups (stats %+v)", st.Hits+st.Misses+st.Coalesced, 8*200, st)
	}
}
