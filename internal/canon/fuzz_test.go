package canon_test

// Fuzz targets for every parser the wire format added. Each asserts the
// two safety properties the serving stack relies on: hostile bytes never
// panic, and any accepted input re-encodes bit-identically (one byte
// string per message — the injectivity the router's hash-and-forward
// routing rests on). Seed corpora live under testdata/fuzz/, so the plain
// `go test` run replays them deterministically; the CI fuzz job explores
// beyond them.

import (
	"bytes"
	"testing"

	"repro/internal/canon"
	"repro/internal/mmlp"
)

// FuzzDecodeSolve: DecodeSolve never panics, and whenever it accepts a
// payload, re-encoding the decoded pair reproduces the input exactly —
// so HashBytes(payload) is THE key of the decoded request.
func FuzzDecodeSolve(f *testing.F) {
	for _, seed := range solveSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		in, o, err := canon.DecodeSolve(payload, nil)
		if err != nil {
			return
		}
		re := canon.EncodeSolve(in, o)
		if !bytes.Equal(re, payload) {
			t.Fatalf("accepted payload is not canonical:\n in %x\nout %x", payload, re)
		}
		if canon.HashBytes(payload) != canon.Hash(in, o) {
			t.Fatal("HashBytes(payload) != Hash(decoded)")
		}
	})
}

// FuzzSplitBatch: SplitBatch never panics, and any accepted frame is
// exactly the frame its payloads re-assemble into.
func FuzzSplitBatch(f *testing.F) {
	for _, seed := range batchSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		payloads, err := canon.SplitBatch(frame)
		if err != nil {
			return
		}
		if re := canon.AppendBatch(nil, payloads); !bytes.Equal(re, frame) {
			t.Fatalf("accepted frame is not canonical:\n in %x\nout %x", frame, re)
		}
	})
}

// FuzzDecodeResults: DecodeResults never panics, and accepted frames
// re-encode bit-identically from the decoded items.
func FuzzDecodeResults(f *testing.F) {
	for _, seed := range resultSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, frame []byte) {
		items, err := canon.DecodeResults(frame)
		if err != nil {
			return
		}
		re := canon.AppendResultsHeader(nil)
		for i := range items {
			re = canon.AppendResult(re, &items[i])
		}
		if !bytes.Equal(re, frame) {
			t.Fatalf("accepted frame is not canonical:\n in %x\nout %x", frame, re)
		}
	})
}

// solveSeeds returns well-formed and near-well-formed solve payloads as
// in-code seeds (the committed corpus under testdata/fuzz/ extends these).
func solveSeeds() [][]byte {
	var seeds [][]byte
	for s := int64(1); s <= 3; s++ {
		seeds = append(seeds, canon.EncodeSolve(randomInstance(s), canon.Options{Engine: int(s) % 3}))
	}
	seeds = append(seeds,
		nil,
		[]byte(canon.SolveMagic),
		validPayload(),
		append(validPayload(), 0),
		validPayload()[:len(validPayload())-1],
	)
	return seeds
}

func batchSeeds() [][]byte {
	one := canon.EncodeSolve(randomInstance(1), canon.Options{})
	two := canon.EncodeSolve(randomInstance(2), canon.Options{Engine: 1})
	return [][]byte{
		nil,
		[]byte(canon.BatchMagic),
		canon.AppendBatch(nil, nil),
		canon.AppendBatch(nil, [][]byte{one}),
		canon.AppendBatch(nil, [][]byte{one, two}),
		canon.AppendBatch(nil, [][]byte{one, two})[:30],
	}
}

var resultSeedItems = []mmlp.BatchItem{
	{Index: 1, SolveResponse: mmlp.SolveResponse{
		Status: "approximate", X: []float64{0.5, 0.25}, Utility: 0.75, UpperBound: 1, LatencyMS: 0.2, Cached: true,
	}},
	{Index: 0, Error: "boom"},
	{Index: 2, SolveResponse: mmlp.SolveResponse{
		Status: "optimal", Utility: 2, UpperBound: 2, Rounds: 3, Messages: 9, Bytes: 128,
	}},
}

func resultSeeds() [][]byte {
	ok := canon.AppendResultsHeader(nil)
	for i := range resultSeedItems {
		ok = canon.AppendResult(ok, &resultSeedItems[i])
	}
	return [][]byte{
		nil,
		[]byte(canon.ResultsMagic),
		canon.AppendResultsHeader(nil),
		ok,
		ok[:len(ok)-2],
	}
}
