package canon_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/canon"
	"repro/internal/mmlp"
)

// optionVariants covers every field of the options header.
func optionVariants() []canon.Options {
	return []canon.Options{
		{},
		{Engine: 1},
		{Engine: 2, R: 4},
		{R: 2, BinIters: 37},
		{DisableSpecialCases: true},
		{SelfCheck: true, BinIters: 7},
	}
}

// TestWireRoundTrip: encode → decode → encode is the identity on bytes,
// the decoded instance is exactly the pipeline's canonical form, decoded
// options are the normalized originals, and hashing the payload equals
// hashing the pair — the equation the router's decode-free routing and the
// cross-encoding cache residency both rest on.
func TestWireRoundTrip(t *testing.T) {
	var sc canon.DecodeScratch
	for seed := int64(1); seed <= 20; seed++ {
		in := randomInstance(seed)
		rng := rand.New(rand.NewSource(seed * 17))
		for _, o := range optionVariants() {
			payload := canon.EncodeSolve(permute(in, rng), o)
			dec, gotOpts, err := canon.DecodeSolve(payload, &sc)
			if err != nil {
				t.Fatalf("seed %d opts %+v: decode: %v", seed, o, err)
			}
			want := in.Canonical()
			if dec.NumAgents != want.NumAgents ||
				!reflect.DeepEqual(dec.Cons, want.Cons) ||
				!reflect.DeepEqual(dec.Objs, want.Objs) {
				t.Fatalf("seed %d: decoded instance differs from Canonical()", seed)
			}
			wantOpts := o
			if wantOpts.R == 0 {
				wantOpts.R = 3
			}
			if wantOpts.BinIters == 0 {
				wantOpts.BinIters = 100
			}
			if gotOpts != wantOpts {
				t.Fatalf("seed %d: options %+v != normalized %+v", seed, gotOpts, wantOpts)
			}
			if re := canon.EncodeSolve(dec, gotOpts); !bytes.Equal(re, payload) {
				t.Fatalf("seed %d: re-encode is not bit-identical", seed)
			}
			if canon.HashBytes(payload) != canon.Hash(in, o) {
				t.Fatalf("seed %d: HashBytes(payload) != Hash(instance, options)", seed)
			}
		}
	}
}

// wireHelpers for handcrafting payloads in the layout and hostility tests.
func uv(vs ...uint64) []byte {
	var b []byte
	for _, v := range vs {
		b = binary.AppendUvarint(b, v)
	}
	return b
}

func term(agent int64, coef float64) []byte {
	var b []byte
	b = binary.BigEndian.AppendUint64(b, uint64(agent)^(1<<63))
	return binary.BigEndian.AppendUint64(b, math.Float64bits(coef))
}

func row(terms ...[]byte) []byte {
	b := binary.BigEndian.AppendUint32(nil, uint32(len(terms)))
	return append(b, bytes.Join(terms, nil)...)
}

func cat(parts ...[]byte) []byte { return bytes.Join(parts, nil) }

// TestWireLayout pins the byte layout by building a small payload by hand
// and checking the encoder emits exactly those bytes. If the format
// changes, this test — not just a hash somewhere — says where.
func TestWireLayout(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(1, 2.0, 0, 1.0) // terms arrive unsorted on purpose
	in.AddObjective(0, 1.5)
	want := cat(
		[]byte(canon.SolveMagic),
		uv(0, 3, 100),                          // engine, normalized R, normalized BinIters
		[]byte{0},                              // flags
		uv(2),                                  // num_agents
		uv(1), row(term(0, 1.0), term(1, 2.0)), // constraints, term-sorted
		uv(1), row(term(0, 1.5)), // objectives
	)
	if got := canon.EncodeSolve(in, canon.Options{}); !bytes.Equal(got, want) {
		t.Fatalf("encoded layout drifted:\n got %x\nwant %x", got, want)
	}
}

// TestWireRowOrderMatchesCanonical: the encoded byte order of rows must
// coincide with mmlp.Canonical's row order even for agent indices whose
// varint encodings would sort differently — the bug class the fixed-width
// v2 row format exists to rule out.
func TestWireRowOrderMatchesCanonical(t *testing.T) {
	in := mmlp.New(300)
	// Agents 70 and 299 straddle varint length boundaries; rows are
	// deliberately inserted in non-canonical order.
	in.AddConstraint(299, 1.0)
	in.AddConstraint(70, 1.0)
	in.AddConstraint(3, 1.0)
	in.AddObjective(299, 2.0, 70, 1.0)
	in.AddObjective(3, 1.0, 5, 1.0)
	payload := canon.EncodeSolve(in, canon.Options{})
	dec, _, err := canon.DecodeSolve(payload, nil)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want := in.Canonical()
	if !reflect.DeepEqual(dec.Cons, want.Cons) || !reflect.DeepEqual(dec.Objs, want.Objs) {
		t.Fatalf("decoded row order differs from Canonical():\n got %+v\nwant %+v", dec, want)
	}
}

// validPayload is the handcrafted base the hostility cases mutate.
func validPayload() []byte {
	return cat(
		[]byte(canon.SolveMagic),
		uv(0, 3, 100), []byte{0},
		uv(2),
		uv(1), row(term(0, 1.0), term(1, 2.0)),
		uv(1), row(term(0, 1.5)),
	)
}

// TestDecodeHostility: every malformed-input class returns its typed
// error — and nothing panics.
func TestDecodeHostility(t *testing.T) {
	opts := func(engine, r, iters uint64, flags byte) []byte {
		return cat([]byte(canon.SolveMagic), uv(engine, r, iters), []byte{flags})
	}
	body := func(parts ...[]byte) []byte { // instance section after a valid header
		return cat(opts(0, 3, 100, 0), cat(parts...))
	}
	cases := []struct {
		name    string
		payload []byte
		want    error
	}{
		{"empty", nil, canon.ErrMagic},
		{"short-magic", []byte("mmlp-ca"), canon.ErrMagic},
		{"old-version", []byte("mmlp-canon/v1\n\x00\x03\x64\x00\x02\x00\x00"), canon.ErrMagic},
		{"magic-only", []byte(canon.SolveMagic), canon.ErrTruncated},
		{"engine-too-big", opts(3, 3, 100, 0), canon.ErrRange},
		{"r-zero-unnormalized", opts(0, 0, 100, 0), canon.ErrRange},
		{"r-one", opts(0, 1, 100, 0), canon.ErrRange},
		{"r-above-cap", opts(0, mmlp.MaxWireR+1, 100, 0), canon.ErrRange},
		{"bin-iters-zero", opts(0, 3, 0, 0), canon.ErrRange},
		{"bin-iters-above-cap", opts(0, 3, mmlp.MaxWireBinIters+1, 0), canon.ErrRange},
		{"reserved-flags", opts(0, 3, 100, 0x80), canon.ErrRange},
		{"missing-agents", opts(0, 3, 100, 0), canon.ErrTruncated},
		{"agents-above-cap", body(uv(mmlp.MaxWireAgents + 1)), canon.ErrRange},
		{"non-minimal-varint", body([]byte{0x82, 0x00}), canon.ErrNotCanonical},
		{"varint-overflow", body([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}), canon.ErrOverflow},
		{"row-count-overflow", body(uv(2), uv(1000)), canon.ErrOverflow},
		{"term-count-overflow", body(uv(2), uv(1), []byte{0xff, 0xff, 0xff, 0xff}), canon.ErrOverflow},
		{"row-truncated", body(uv(2), uv(1), row(term(0, 1.0))[:10]), canon.ErrOverflow},
		{"missing-objs-section", body(uv(2), uv(1), row(term(0, 1.0))), canon.ErrTruncated},
		{"agent-negative", body(uv(2), uv(1), row(term(-1, 1.0)), uv(0)), canon.ErrRange},
		{"agent-beyond-count", body(uv(2), uv(1), row(term(2, 1.0)), uv(0)), canon.ErrRange},
		{"terms-out-of-order", body(uv(2), uv(1), row(term(1, 1.0), term(0, 1.0)), uv(0)), canon.ErrNotCanonical},
		{"dup-term-coef-order", body(uv(2), uv(1), row(term(0, 2.0), term(0, 1.0)), uv(0)), canon.ErrNotCanonical},
		{"rows-out-of-order", body(uv(2), uv(2), row(term(1, 1.0)), row(term(0, 1.0)), uv(0)), canon.ErrNotCanonical},
		{"rows-length-order", body(uv(2), uv(2), row(term(0, 1.0), term(1, 1.0)), row(term(0, 1.0)), uv(0)), canon.ErrNotCanonical},
		{"trailing-byte", append(validPayload(), 0x00), canon.ErrTrailing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := canon.DecodeSolve(tc.payload, nil)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
	if _, _, err := canon.DecodeSolve(validPayload(), nil); err != nil {
		t.Fatalf("base payload must decode cleanly, got %v", err)
	}
}

// TestDecodeEveryPrefixFails: no truncation point of a valid payload
// decodes successfully or panics.
func TestDecodeEveryPrefixFails(t *testing.T) {
	payload := canon.EncodeSolve(randomInstance(9), canon.Options{Engine: 1})
	for n := 0; n < len(payload); n++ {
		if _, _, err := canon.DecodeSolve(payload[:n], nil); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded successfully", n, len(payload))
		}
	}
}

// TestDecodeScratchReuse: warm decodes into a reused scratch allocate
// nothing — the property SolveCanonBytes' warm path depends on.
func TestDecodeScratchReuse(t *testing.T) {
	payload := canon.EncodeSolve(randomInstance(11), canon.Options{})
	var sc canon.DecodeScratch
	if _, _, err := canon.DecodeSolve(payload, &sc); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, _, err := canon.DecodeSolve(payload, &sc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm decode allocates %.1f times per run, want 0", allocs)
	}
}

// TestBatchFrame: split inverts append, payloads alias the frame (no
// copying on the router), and framing damage returns typed errors.
func TestBatchFrame(t *testing.T) {
	var payloads [][]byte
	for seed := int64(1); seed <= 4; seed++ {
		payloads = append(payloads, canon.EncodeSolve(randomInstance(seed), canon.Options{Engine: int(seed) % 3}))
	}
	frame := canon.AppendBatch(nil, payloads)
	got, err := canon.SplitBatch(frame)
	if err != nil {
		t.Fatalf("split: %v", err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("split %d payloads, want %d", len(got), len(payloads))
	}
	for i := range got {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d differs after framing", i)
		}
		if &got[i][0] != &frame[cap(frame)-cap(got[i])] {
			// Aliasing check: the subslice must point into the frame.
			t.Fatalf("payload %d was copied out of the frame", i)
		}
	}

	short := canon.EncodeSolve(randomInstance(1), canon.Options{})
	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, canon.ErrMagic},
		{"solve-not-batch", short, canon.ErrMagic},
		{"count-overflow", cat([]byte(canon.BatchMagic), uv(1000)), canon.ErrOverflow},
		{"length-overflow", cat([]byte(canon.BatchMagic), uv(1, 1<<40), short), canon.ErrOverflow},
		{"payload-truncated", canon.AppendBatch(nil, [][]byte{short})[:len(canon.BatchMagic)+2+len(short)/2], canon.ErrOverflow},
		{"inner-magic", cat([]byte(canon.BatchMagic), uv(1, uint64(len(short))), bytes.Repeat([]byte{0}, len(short))), canon.ErrMagic},
		{"trailing", append(canon.AppendBatch(nil, [][]byte{short}), 0xff), canon.ErrTrailing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := canon.SplitBatch(tc.frame); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestResultFrame: records round-trip every field bit-exactly, including
// the float payloads, in completion (non-index) order.
func TestResultFrame(t *testing.T) {
	items := []mmlp.BatchItem{
		{Index: 2, SolveResponse: mmlp.SolveResponse{
			Status: "approximate", X: []float64{0.1, 0.25, math.Nextafter(1, 2)},
			Utility: 1.0 / 3.0, UpperBound: 0.5000000000000001, LatencyMS: 0.125, Cached: true,
		}},
		{Index: 0, Error: "engine exploded"},
		{Index: 1, SolveResponse: mmlp.SolveResponse{
			Status: "optimal", X: []float64{}, Utility: 2, UpperBound: 2,
			Rounds: 7, Messages: 123, Bytes: 4096,
		}},
		{Index: 3, SolveResponse: mmlp.SolveResponse{Status: "unbounded", Utility: math.Inf(1)}},
	}
	frame := canon.AppendResultsHeader(nil)
	for i := range items {
		frame = canon.AppendResult(frame, &items[i])
	}
	got, err := canon.DecodeResults(frame)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, items) {
		t.Fatalf("round trip differs:\n got %+v\nwant %+v", got, items)
	}

	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, canon.ErrMagic},
		{"record-cut", frame[:len(frame)-3], canon.ErrTruncated},
		{"reserved-flags", cat([]byte(canon.ResultsMagic), []byte{0x40}, uv(0)), canon.ErrRange},
		{"error-plus-flags", cat([]byte(canon.ResultsMagic), []byte{0x03}, uv(0)), canon.ErrRange},
		{"string-overflow", cat([]byte(canon.ResultsMagic), []byte{0x01}, uv(0, 1<<20)), canon.ErrOverflow},
		{"x-overflow", cat([]byte(canon.ResultsMagic), []byte{0x08}, uv(0, 0), make([]byte, 24), uv(1<<30)), canon.ErrOverflow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := canon.DecodeResults(tc.frame); !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

// TestSniff: the router's classification helpers read only the prefix.
func TestSniff(t *testing.T) {
	if !canon.SniffSolve(canon.EncodeSolve(randomInstance(1), canon.Options{})) {
		t.Fatal("SniffSolve rejects an encoded solve")
	}
	if canon.SniffSolve([]byte(canon.BatchMagic)) || canon.SniffSolve(nil) {
		t.Fatal("SniffSolve accepts non-solve bytes")
	}
	if !canon.SniffBatch(canon.AppendBatch(nil, nil)) {
		t.Fatal("SniffBatch rejects an empty batch frame")
	}
	if canon.SniffBatch([]byte(canon.SolveMagic)) {
		t.Fatal("SniffBatch accepts a solve payload")
	}
	if canon.SniffSolve([]byte(strings.TrimSuffix(canon.SolveMagic, "\n"))) {
		t.Fatal("SniffSolve accepts a truncated magic")
	}
}
