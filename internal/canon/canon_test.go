package canon_test

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/canon"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// randomInstance draws a varied-shape instance for the property tests.
func randomInstance(seed int64) *mmlp.Instance {
	rng := rand.New(rand.NewSource(seed))
	return gen.Random(gen.RandomConfig{
		Agents:    8 + rng.Intn(24),
		MaxDegI:   2 + rng.Intn(3),
		MaxDegK:   2 + rng.Intn(3),
		ExtraCons: rng.Intn(8),
		ExtraObjs: rng.Intn(4),
	}, seed)
}

// permute shuffles the row order of both sections and the term order
// within every row — all semantics-preserving rewrites.
func permute(in *mmlp.Instance, rng *rand.Rand) *mmlp.Instance {
	out := in.Clone()
	rng.Shuffle(len(out.Cons), func(a, b int) { out.Cons[a], out.Cons[b] = out.Cons[b], out.Cons[a] })
	rng.Shuffle(len(out.Objs), func(a, b int) { out.Objs[a], out.Objs[b] = out.Objs[b], out.Objs[a] })
	for _, c := range out.Cons {
		ts := c.Terms
		rng.Shuffle(len(ts), func(a, b int) { ts[a], ts[b] = ts[b], ts[a] })
	}
	for _, o := range out.Objs {
		ts := o.Terms
		rng.Shuffle(len(ts), func(a, b int) { ts[a], ts[b] = ts[b], ts[a] })
	}
	return out
}

// TestHashPermutationInvariance: reordering rows and terms never moves the
// key, and Hash never mutates its argument.
func TestHashPermutationInvariance(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		in := randomInstance(seed)
		before := in.Clone()
		key := canon.Hash(in, canon.Options{})
		if !reflect.DeepEqual(in, before) {
			t.Fatalf("seed %d: Hash mutated the instance", seed)
		}
		rng := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 8; trial++ {
			if got := canon.Hash(permute(in, rng), canon.Options{}); got != key {
				t.Fatalf("seed %d trial %d: permuted key %s != %s", seed, trial, got, key)
			}
		}
	}
}

// TestHashCoefficientSensitivity: flipping the low bit of any single
// coefficient, or moving any single agent index, changes the key.
func TestHashCoefficientSensitivity(t *testing.T) {
	in := randomInstance(3)
	key := canon.Hash(in, canon.Options{})
	mutate := func(f func(*mmlp.Instance)) canon.Key {
		m := in.Clone()
		f(m)
		return canon.Hash(m, canon.Options{})
	}
	for i := range in.Cons {
		for j := range in.Cons[i].Terms {
			i, j := i, j
			if got := mutate(func(m *mmlp.Instance) {
				m.Cons[i].Terms[j].Coef = math.Float64frombits(math.Float64bits(m.Cons[i].Terms[j].Coef) ^ 1)
			}); got == key {
				t.Fatalf("constraint %d term %d: coefficient bit-flip kept the key", i, j)
			}
			if got := mutate(func(m *mmlp.Instance) {
				m.Cons[i].Terms[j].Agent += m.NumAgents
			}); got == key {
				t.Fatalf("constraint %d term %d: agent change kept the key", i, j)
			}
		}
	}
	for k := range in.Objs {
		for j := range in.Objs[k].Terms {
			k, j := k, j
			if got := mutate(func(m *mmlp.Instance) {
				m.Objs[k].Terms[j].Coef = math.Float64frombits(math.Float64bits(m.Objs[k].Terms[j].Coef) ^ 1)
			}); got == key {
				t.Fatalf("objective %d term %d: coefficient bit-flip kept the key", k, j)
			}
		}
	}
}

// TestHashStructureSensitivity: changes to the instance shape — the agent
// count, a row added or dropped, a row moved between sections — all change
// the key.
func TestHashStructureSensitivity(t *testing.T) {
	in := randomInstance(4)
	key := canon.Hash(in, canon.Options{})
	cases := map[string]func(*mmlp.Instance){
		"agents":     func(m *mmlp.Instance) { m.NumAgents++ },
		"drop-cons":  func(m *mmlp.Instance) { m.Cons = m.Cons[1:] },
		"drop-objs":  func(m *mmlp.Instance) { m.Objs = m.Objs[1:] },
		"empty-cons": func(m *mmlp.Instance) { m.Cons = append(m.Cons, mmlp.Constraint{}) },
		"cons-to-objs": func(m *mmlp.Instance) {
			m.Objs = append(m.Objs, mmlp.Objective{Terms: m.Cons[0].Terms})
			m.Cons = m.Cons[1:]
		},
	}
	for name, f := range cases {
		m := in.Clone()
		f(m)
		if got := canon.Hash(m, canon.Options{}); got == key {
			t.Fatalf("%s: structural change kept the key", name)
		}
	}
}

// TestHashOptionSensitivity: every option field participates in the key,
// and all single-field variations are mutually distinct.
func TestHashOptionSensitivity(t *testing.T) {
	in := randomInstance(5)
	base := canon.Options{R: 3, BinIters: 100}
	variants := map[string]canon.Options{
		"base":          base,
		"engine":        {Engine: 1, R: 3, BinIters: 100},
		"r":             {R: 4, BinIters: 100},
		"bin-iters":     {R: 3, BinIters: 50},
		"special-cases": {R: 3, BinIters: 100, DisableSpecialCases: true},
		"self-check":    {R: 3, BinIters: 100, SelfCheck: true},
	}
	seen := make(map[canon.Key]string)
	for name, o := range variants {
		k := canon.Hash(in, o)
		if prev, dup := seen[k]; dup {
			t.Fatalf("options %q and %q share a key", name, prev)
		}
		seen[k] = name
	}
}

// TestHashNormalization: zero-valued options hash like their defaults, so
// equivalent spellings of one configuration share a cache line.
func TestHashNormalization(t *testing.T) {
	in := randomInstance(6)
	if canon.Hash(in, canon.Options{}) != canon.Hash(in, canon.Options{R: 3, BinIters: 100}) {
		t.Fatal("zero options do not hash like the defaults")
	}
	if canon.Hash(in, canon.Options{R: 2}) == canon.Hash(in, canon.Options{R: 3}) {
		t.Fatal("explicit non-default R aliased the default")
	}
}

// TestHashDistinguishesInstances: a quick birthday check — distinct random
// instances get distinct keys.
func TestHashDistinguishesInstances(t *testing.T) {
	seen := make(map[canon.Key]int64)
	for seed := int64(1); seed <= 50; seed++ {
		k := canon.Hash(randomInstance(seed), canon.Options{})
		if prev, dup := seen[k]; dup {
			t.Fatalf("seeds %d and %d collide", prev, seed)
		}
		seen[k] = seed
	}
}

// FuzzHashPermutationInvariance drives the permutation property from the
// fuzzer: any seed pair must keep the key stable under reordering.
func FuzzHashPermutationInvariance(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(7), int64(11))
	f.Add(int64(42), int64(1))
	f.Fuzz(func(t *testing.T, seed, shuffleSeed int64) {
		in := randomInstance(seed)
		key := canon.Hash(in, canon.Options{})
		rng := rand.New(rand.NewSource(shuffleSeed))
		if got := canon.Hash(permute(in, rng), canon.Options{}); got != key {
			t.Fatalf("permuted key %s != %s", got, key)
		}
	})
}
