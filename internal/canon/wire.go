package canon

// This file is the decode side of the canon wire format, plus the two
// frames that ride it: the length-prefixed batch frame and the streaming
// result frame. The encoding in canon.go was designed so that one byte
// string corresponds to one canonical (instance, options) pair; the
// decoders here enforce that injectivity on input — canonical varints
// only, normalized options only, canonical term and row order only, no
// trailing bytes — so for every accepted payload
//
//	payload == AppendSolve(nil, decodedInstance, decodedOptions)
//
// holds bit-for-bit, and therefore HashBytes(payload) equals the cache
// key the JSON path computes for the same request. That equation is what
// lets the shard router route canon traffic by hashing raw bytes and what
// makes cache entries land on the same shard regardless of the encoding a
// client chose.
//
// Every malformed-input class maps to one of the sentinel errors below;
// decoders never panic on hostile input (the fuzz targets in fuzz_test.go
// pin that down).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/mmlp"
)

// Wire decode errors. Each sentinel names one malformed-input class;
// returned errors wrap exactly one of them, so callers dispatch with
// errors.Is.
var (
	// ErrMagic: the payload does not start with the expected magic string
	// (wrong format, wrong version, or not canon at all).
	ErrMagic = errors.New("canon: bad magic")
	// ErrTruncated: the payload ends inside a field a length or count said
	// would be there.
	ErrTruncated = errors.New("canon: truncated payload")
	// ErrOverflow: a length or count field exceeds what the remaining bytes
	// could possibly hold (or a varint exceeds 64 bits) — the resource-
	// exhaustion class: such a payload can never be completed to a valid
	// one, so it is rejected before any allocation is sized from it.
	ErrOverflow = errors.New("canon: length overflow")
	// ErrRange: a well-formed field carries a value outside its domain
	// (unknown engine, R or num_agents beyond the wire caps, reserved flag
	// bits set, un-normalized zero options, agent outside the instance).
	ErrRange = errors.New("canon: value out of range")
	// ErrNotCanonical: the payload is structurally valid but is not the
	// canonical encoding of its content — non-minimal varints, unsorted
	// terms, or unsorted rows. Accepting such a payload would give one
	// instance two keys (its bytes hash differently from the canonical
	// spelling), so it is rejected outright.
	ErrNotCanonical = errors.New("canon: payload not in canonical form")
	// ErrTrailing: bytes remain after a complete message.
	ErrTrailing = errors.New("canon: trailing bytes")
)

// MaxEngine is the largest engine value accepted on the wire. It must
// equal the last engine.Kind constant; engine's tests assert agreement
// (canon cannot import engine — the dependency runs the other way).
const MaxEngine = 2

// bytesPerTerm is the fixed wire width of one term: the sign-flipped
// agent pattern and the coefficient bits, 8 bytes each.
const bytesPerTerm = 16

// rowHeaderBytes is the fixed width of a row's term-count prefix.
const rowHeaderBytes = 4

// SniffSolve reports whether p begins with the canon solve magic. It
// reads nothing else: the router uses it to classify payloads without
// decoding them.
func SniffSolve(p []byte) bool {
	return len(p) >= len(SolveMagic) && string(p[:len(SolveMagic)]) == SolveMagic
}

// SniffBatch reports whether p begins with the canon batch-frame magic.
func SniffBatch(p []byte) bool {
	return len(p) >= len(BatchMagic) && string(p[:len(BatchMagic)]) == BatchMagic
}

// reader walks a payload, enforcing canonical varint encodings.
type reader struct {
	p   []byte
	off int
}

func (r *reader) remaining() int { return len(r.p) - r.off }

// uvarint reads one canonically-encoded unsigned varint. Non-minimal
// encodings (a shorter spelling of the same value exists) are rejected:
// they would give one message two byte representations and so two keys.
func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.p[r.off:])
	if n == 0 {
		return 0, fmt.Errorf("%w: varint at offset %d", ErrTruncated, r.off)
	}
	if n < 0 {
		return 0, fmt.Errorf("%w: varint at offset %d exceeds 64 bits", ErrOverflow, r.off)
	}
	if n > 1 && v < 1<<(7*(n-1)) {
		return 0, fmt.Errorf("%w: non-minimal varint at offset %d", ErrNotCanonical, r.off)
	}
	r.off += n
	return v, nil
}

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("%w: byte at offset %d", ErrTruncated, r.off)
	}
	b := r.p[r.off]
	r.off++
	return b, nil
}

func (r *reader) take(n int) ([]byte, error) {
	if r.remaining() < n {
		return nil, fmt.Errorf("%w: need %d bytes at offset %d, have %d",
			ErrTruncated, n, r.off, r.remaining())
	}
	b := r.p[r.off : r.off+n]
	r.off += n
	return b, nil
}

// DecodeOptions decodes the solve magic and the options header from the
// front of payload, returning the remainder (the instance section). The
// options on the wire must already be normalized — the encoder writes
// them that way, and accepting R=0 alongside R=3 would alias two byte
// strings to one configuration.
func DecodeOptions(payload []byte) (Options, []byte, error) {
	if !SniffSolve(payload) {
		return Options{}, nil, fmt.Errorf("%w: want %q", ErrMagic, SolveMagic)
	}
	r := &reader{p: payload, off: len(SolveMagic)}
	var o Options
	eng, err := r.uvarint()
	if err != nil {
		return Options{}, nil, err
	}
	if eng > MaxEngine {
		return Options{}, nil, fmt.Errorf("%w: engine %d (max %d)", ErrRange, eng, MaxEngine)
	}
	o.Engine = int(eng)
	rv, err := r.uvarint()
	if err != nil {
		return Options{}, nil, err
	}
	if rv < 2 || rv > mmlp.MaxWireR {
		return Options{}, nil, fmt.Errorf("%w: r %d outside [2, %d]", ErrRange, rv, mmlp.MaxWireR)
	}
	o.R = int(rv)
	bi, err := r.uvarint()
	if err != nil {
		return Options{}, nil, err
	}
	if bi < 1 || bi > mmlp.MaxWireBinIters {
		return Options{}, nil, fmt.Errorf("%w: bin_iters %d outside [1, %d]",
			ErrRange, bi, mmlp.MaxWireBinIters)
	}
	o.BinIters = int(bi)
	flags, err := r.byte()
	if err != nil {
		return Options{}, nil, err
	}
	if flags&flagsReservedMask != 0 {
		return Options{}, nil, fmt.Errorf("%w: reserved flag bits %#x set", ErrRange, flags&flagsReservedMask)
	}
	o.DisableSpecialCases = flags&flagDisableSpecialCases != 0
	o.SelfCheck = flags&flagSelfCheck != 0
	return o, payload[r.off:], nil
}

// DecodeScratch is the reusable working memory of DecodeInstance: row
// headers and one flat term arena, mirroring mmlp.CanonScratch so warm
// decoding of similarly-shaped payloads does not allocate. The zero value
// is ready. Not safe for concurrent use.
type DecodeScratch struct {
	inst  mmlp.Instance
	terms []mmlp.Term
}

// DecodeInstance decodes the instance section from the front of p (the
// remainder returned by DecodeOptions) into sc's arena, returning the
// instance and any bytes that follow it. A nil sc falls back to fresh
// memory; with a non-nil sc the instance aliases sc and is valid only
// until sc's next use — treat it as read-only either way.
//
// The decode is two-pass: a structural scan sizes the arena while
// bounding every length against the bytes actually present, then the
// fill pass decodes terms and enforces canonical order — terms within a
// row non-decreasing under mmlp.CompareTerm, rows within a section
// non-decreasing under byte comparison (the same order, by the
// fixed-width encoding). An accepted instance is therefore already in
// the exact canonical form mmlp.Canonical produces, and the solve
// pipeline can skip re-canonicalization entirely.
func DecodeInstance(p []byte, sc *DecodeScratch) (*mmlp.Instance, []byte, error) {
	if sc == nil {
		sc = &DecodeScratch{}
	}
	r := &reader{p: p}
	na, err := r.uvarint()
	if err != nil {
		return nil, nil, err
	}
	if na > mmlp.MaxWireAgents {
		return nil, nil, fmt.Errorf("%w: num_agents %d exceeds the wire limit %d",
			ErrRange, na, mmlp.MaxWireAgents)
	}
	numAgents := int(na)

	// Pass 1: structural scan from the same offset, walking row headers
	// only. After it succeeds, every count the fill pass re-reads is known
	// to be backed by real bytes.
	scan := *r
	nCons, consTerms, err := scanSection(&scan)
	if err != nil {
		return nil, nil, err
	}
	nObjs, objsTerms, err := scanSection(&scan)
	if err != nil {
		return nil, nil, err
	}
	rest := scan.p[scan.off:]

	// Pass 2: decode into the exactly-sized arena; the per-row carves
	// below never reallocate the flat backing.
	out := &sc.inst
	out.NumAgents = numAgents
	if total := consTerms + objsTerms; cap(sc.terms) < total {
		sc.terms = make([]mmlp.Term, total)
	}
	buf := sc.terms[:0]
	if cap(out.Cons) < nCons {
		out.Cons = make([]mmlp.Constraint, nCons)
	}
	out.Cons = out.Cons[:nCons]
	if cap(out.Objs) < nObjs {
		out.Objs = make([]mmlp.Objective, nObjs)
	}
	out.Objs = out.Objs[:nObjs]

	if _, err := r.uvarint(); err != nil { // cons row count, already scanned
		return nil, nil, err
	}
	var prevRow []byte
	for i := 0; i < nCons; i++ {
		row, raw, next, err := decodeRow(r, numAgents, buf)
		if err != nil {
			return nil, nil, fmt.Errorf("constraint %d: %w", i, err)
		}
		if i > 0 && bytes.Compare(prevRow, raw) > 0 {
			return nil, nil, fmt.Errorf("constraint %d: %w: row out of order", i, ErrNotCanonical)
		}
		buf, prevRow = next, raw
		out.Cons[i] = mmlp.Constraint{Terms: row}
	}
	if _, err := r.uvarint(); err != nil { // objs row count, already scanned
		return nil, nil, err
	}
	prevRow = nil
	for k := 0; k < nObjs; k++ {
		row, raw, next, err := decodeRow(r, numAgents, buf)
		if err != nil {
			return nil, nil, fmt.Errorf("objective %d: %w", k, err)
		}
		if k > 0 && bytes.Compare(prevRow, raw) > 0 {
			return nil, nil, fmt.Errorf("objective %d: %w: row out of order", k, ErrNotCanonical)
		}
		buf, prevRow = next, raw
		out.Objs[k] = mmlp.Objective{Terms: row}
	}
	return out, rest, nil
}

// scanSection reads one section's row count and skips its rows, returning
// the row count and total term count. Every count is bounded by the bytes
// actually remaining before it is trusted, so a hostile header cannot
// force a large allocation.
func scanSection(r *reader) (rows, totalTerms int, err error) {
	rc, err := r.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if rc > uint64(r.remaining()/rowHeaderBytes) {
		return 0, 0, fmt.Errorf("%w: %d rows declared, %d bytes remain", ErrOverflow, rc, r.remaining())
	}
	rows = int(rc)
	for i := 0; i < rows; i++ {
		hdr, err := r.take(rowHeaderBytes)
		if err != nil {
			return 0, 0, err
		}
		tc := binary.BigEndian.Uint32(hdr)
		if uint64(tc) > uint64(r.remaining()/bytesPerTerm) {
			return 0, 0, fmt.Errorf("%w: %d terms declared, %d bytes remain", ErrOverflow, tc, r.remaining())
		}
		if _, err := r.take(int(tc) * bytesPerTerm); err != nil {
			return 0, 0, err
		}
		totalTerms += int(tc)
	}
	return rows, totalTerms, nil
}

// decodeRow decodes one row, carving its terms from buf. It returns the
// carved row, the row's raw wire bytes (for the caller's cross-row order
// check) and the extended arena. Within-row term order is enforced here.
func decodeRow(r *reader, numAgents int, buf []mmlp.Term) (row []mmlp.Term, raw []byte, next []mmlp.Term, err error) {
	rowStart := r.off
	hdr, err := r.take(rowHeaderBytes)
	if err != nil {
		return nil, nil, buf, err
	}
	tc := int(binary.BigEndian.Uint32(hdr))
	body, err := r.take(tc * bytesPerTerm)
	if err != nil {
		return nil, nil, buf, err
	}
	start := len(buf)
	var prev mmlp.Term
	for j := 0; j < tc; j++ {
		agentBits := binary.BigEndian.Uint64(body[j*bytesPerTerm:])
		coefBits := binary.BigEndian.Uint64(body[j*bytesPerTerm+8:])
		agent := int64(agentBits ^ (1 << 63))
		if agent < 0 || agent >= int64(numAgents) {
			return nil, nil, buf, fmt.Errorf("%w: agent %d outside [0, %d)", ErrRange, agent, numAgents)
		}
		t := mmlp.Term{Agent: int(agent), Coef: math.Float64frombits(coefBits)}
		if j > 0 && mmlp.CompareTerm(prev, t) > 0 {
			return nil, nil, buf, fmt.Errorf("%w: term %d out of order", ErrNotCanonical, j)
		}
		prev = t
		buf = append(buf, t)
	}
	return buf[start:len(buf):len(buf)], r.p[rowStart:r.off], buf, nil
}

// DecodeSolve decodes one complete canon solve message: options header,
// instance, and nothing after. It is the exact inverse of AppendSolve on
// the set of payloads it accepts.
func DecodeSolve(payload []byte, sc *DecodeScratch) (*mmlp.Instance, Options, error) {
	o, rest, err := DecodeOptions(payload)
	if err != nil {
		return nil, Options{}, err
	}
	in, rest, err := DecodeInstance(rest, sc)
	if err != nil {
		return nil, Options{}, err
	}
	if len(rest) != 0 {
		return nil, Options{}, fmt.Errorf("%w: %d bytes after instance", ErrTrailing, len(rest))
	}
	return in, o, nil
}

// ---------------------------------------------------------------------------
// Batch frame: a length-prefixed sequence of solve payloads.

// BatchMagic opens a canon batch frame.
const BatchMagic = "mmlp-canon-batch/v1\n"

// minSolveBytes is the smallest well-formed solve payload: magic, three
// one-byte varints, flags, num_agents and two zero row counts. SplitBatch
// uses it to bound a frame's declared job count by the bytes present.
const minSolveBytes = len(SolveMagic) + 7

// AppendBatch appends a batch frame containing the given solve payloads
// to dst. Payload contents are not inspected; SplitBatch checks each one
// starts with the solve magic.
func AppendBatch(dst []byte, payloads [][]byte) []byte {
	dst = append(dst, BatchMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(payloads)))
	for _, p := range payloads {
		dst = binary.AppendUvarint(dst, uint64(len(p)))
		dst = append(dst, p...)
	}
	return dst
}

// SplitBatch splits a batch frame into its solve payloads without copying:
// each element aliases frame. Only the framing and each payload's leading
// magic are checked here — full decoding is the executing shard's job, so
// a router can split and route a batch in O(bytes).
func SplitBatch(frame []byte) ([][]byte, error) {
	if !SniffBatch(frame) {
		return nil, fmt.Errorf("%w: want %q", ErrMagic, BatchMagic)
	}
	r := &reader{p: frame, off: len(BatchMagic)}
	count, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(r.remaining()/(1+minSolveBytes)) {
		return nil, fmt.Errorf("%w: %d jobs declared, %d bytes remain", ErrOverflow, count, r.remaining())
	}
	payloads := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		n, err := r.uvarint()
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
		if n > uint64(r.remaining()) {
			return nil, fmt.Errorf("job %d: %w: length %d, %d bytes remain", i, ErrOverflow, n, r.remaining())
		}
		p, err := r.take(int(n))
		if err != nil {
			return nil, fmt.Errorf("job %d: %w", i, err)
		}
		if !SniffSolve(p) {
			return nil, fmt.Errorf("job %d: %w: payload does not start with %q", i, ErrMagic, SolveMagic)
		}
		payloads = append(payloads, p)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d bytes after %d jobs", ErrTrailing, r.remaining(), count)
	}
	return payloads, nil
}

// ---------------------------------------------------------------------------
// Result frame: the binary form of the batch NDJSON stream. The frame is
// a magic header followed by self-delimiting records in completion order,
// so a server can stream records as jobs finish exactly like it streams
// NDJSON lines, and a proxy can convert line-by-line without buffering.

// ResultsMagic opens a canon result frame.
const ResultsMagic = "mmlp-canon-results/v1\n"

// Result record flag bits.
const (
	resError  = 1 << 0 // record carries an error string, nothing else
	resCached = 1 << 1 // result was served from the result cache
	resDist   = 1 << 2 // record carries rounds/messages/bytes traffic
	resX      = 1 << 3 // record carries the assignment vector
)

// AppendResultsHeader appends the result-frame magic to dst. Write it
// once, before the first record.
func AppendResultsHeader(dst []byte) []byte { return append(dst, ResultsMagic...) }

// AppendResult appends one batch item as a self-delimiting binary record.
// Floats travel as their IEEE-754 bit patterns, so a record round-trips
// the solution bits exactly — the conformance suite leans on that.
func AppendResult(dst []byte, it *mmlp.BatchItem) []byte {
	var flags byte
	if it.Error != "" {
		dst = append(dst, resError)
		dst = binary.AppendUvarint(dst, uint64(it.Index))
		dst = binary.AppendUvarint(dst, uint64(len(it.Error)))
		return append(dst, it.Error...)
	}
	if it.Cached {
		flags |= resCached
	}
	if it.Rounds != 0 || it.Messages != 0 || it.Bytes != 0 {
		flags |= resDist
	}
	if it.X != nil {
		flags |= resX
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(it.Index))
	dst = binary.AppendUvarint(dst, uint64(len(it.Status)))
	dst = append(dst, it.Status...)
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(it.Utility))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(it.UpperBound))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(it.LatencyMS))
	if flags&resX != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(it.X)))
		for _, x := range it.X {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(x))
		}
	}
	if flags&resDist != 0 {
		dst = binary.AppendUvarint(dst, uint64(it.Rounds))
		dst = binary.AppendUvarint(dst, uint64(it.Messages))
		dst = binary.AppendUvarint(dst, uint64(it.Bytes))
	}
	return dst
}

// maxWireString bounds string lengths in result records (status names and
// error messages) — far above anything the servers emit, small enough
// that a hostile length cannot size a big allocation.
const maxWireString = 1 << 16

// DecodeResults parses a complete result frame into batch items. Records
// arrive in completion order; Index ties each back to its request slot.
func DecodeResults(frame []byte) ([]mmlp.BatchItem, error) {
	if len(frame) < len(ResultsMagic) || string(frame[:len(ResultsMagic)]) != ResultsMagic {
		return nil, fmt.Errorf("%w: want %q", ErrMagic, ResultsMagic)
	}
	r := &reader{p: frame, off: len(ResultsMagic)}
	var items []mmlp.BatchItem
	for r.remaining() > 0 {
		it, err := decodeResult(r)
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", len(items), err)
		}
		items = append(items, it)
	}
	return items, nil
}

func decodeResult(r *reader) (mmlp.BatchItem, error) {
	var it mmlp.BatchItem
	flags, err := r.byte()
	if err != nil {
		return it, err
	}
	if flags&resError != 0 && flags != resError {
		return it, fmt.Errorf("%w: error record with extra flag bits %#x", ErrRange, flags)
	}
	if flags&^byte(resError|resCached|resDist|resX) != 0 {
		return it, fmt.Errorf("%w: reserved result flag bits %#x", ErrRange, flags)
	}
	idx, err := r.uvarint()
	if err != nil {
		return it, err
	}
	if idx > math.MaxInt32 {
		return it, fmt.Errorf("%w: index %d", ErrRange, idx)
	}
	it.Index = int(idx)
	if flags&resError != 0 {
		msg, err := r.string()
		if err != nil {
			return it, err
		}
		if msg == "" {
			// An empty message would re-encode as a success record, giving
			// the frame two spellings; the servers never emit one.
			return it, fmt.Errorf("%w: empty error message", ErrRange)
		}
		it.Error = msg
		return it, nil
	}
	if it.Status, err = r.string(); err != nil {
		return it, err
	}
	fields, err := r.take(24)
	if err != nil {
		return it, err
	}
	it.Utility = math.Float64frombits(binary.BigEndian.Uint64(fields[0:]))
	it.UpperBound = math.Float64frombits(binary.BigEndian.Uint64(fields[8:]))
	it.LatencyMS = math.Float64frombits(binary.BigEndian.Uint64(fields[16:]))
	it.Cached = flags&resCached != 0
	if flags&resX != 0 {
		n, err := r.uvarint()
		if err != nil {
			return it, err
		}
		if n > uint64(r.remaining()/8) {
			return it, fmt.Errorf("%w: %d assignment values declared, %d bytes remain",
				ErrOverflow, n, r.remaining())
		}
		it.X = make([]float64, n)
		for j := range it.X {
			b, err := r.take(8)
			if err != nil {
				return it, err
			}
			it.X[j] = math.Float64frombits(binary.BigEndian.Uint64(b))
		}
	}
	if flags&resDist != 0 {
		vals := [3]int{}
		for j := range vals {
			v, err := r.uvarint()
			if err != nil {
				return it, err
			}
			if v > math.MaxInt32 {
				return it, fmt.Errorf("%w: traffic counter %d", ErrRange, v)
			}
			vals[j] = int(v)
		}
		it.Rounds, it.Messages, it.Bytes = vals[0], vals[1], vals[2]
	}
	return it, nil
}

// string reads a uvarint-length-prefixed string, bounded by maxWireString
// and by the bytes present.
func (r *reader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxWireString {
		return "", fmt.Errorf("%w: string length %d exceeds %d", ErrOverflow, n, maxWireString)
	}
	b, err := r.take(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
