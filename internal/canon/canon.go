// Package canon assigns every (instance, solve options) pair a canonical
// cryptographic key. The paper's algorithm is deterministic — identical
// instance and options always yield bit-identical solutions — so the key is
// a sound cache index for complete solve results (internal/cache fronts the
// batch and serving layers with exactly that).
//
// The key is the SHA-256 of a canonical binary encoding:
//
//   - terms within a row are ordered by agent index (the semantics of
//     mmlp.SortTerms, applied to a scratch copy so the caller's instance is
//     never mutated);
//   - rows within each section are ordered lexicographically by their
//     encoded bytes — a constraint system and an objective set are sets of
//     rows, so row order must not influence the key;
//   - options are normalized (R 0→3, BinIters 0→100, matching the solver's
//     defaults) so spellings of the same configuration collide;
//   - coefficients are encoded as their exact IEEE-754 bit patterns, so any
//     representable change — however small — changes the key.
//
// The encoding is self-delimiting (every list is preceded by its length),
// hence injective up to the canonical reordering: two pairs share a key
// only by SHA-256 collision or by describing the same mathematical
// problem under the same options.
//
// Hashing sits on the cache-hit path of the serving layer, so the encoder
// state (hash, row buffers, term scratch) is pooled: steady-state hashing
// of similarly-shaped instances does not allocate.
package canon

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"slices"
	"sync"

	"repro/internal/mmlp"
)

// Key identifies a canonical (instance, options) pair.
type Key [sha256.Size]byte

// String renders the key in hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Options are the solve parameters that participate in the key: everything
// that can influence the output bits. Workers is deliberately absent — the
// per-agent computations are independent and the binary search is a pure
// function of its inputs, so results are bit-identical across parallelism.
type Options struct {
	// Engine is the execution engine (the integer value of engine.Kind).
	Engine int
	// R is the shifting parameter (0 is normalized to the default 3).
	R int
	// BinIters caps the per-agent binary search (0 is normalized to 100).
	BinIters int
	// DisableSpecialCases skips the optimal ΔI=1 / ΔK=1 dispatch.
	DisableSpecialCases bool
	// SelfCheck re-verifies the run's invariants. It never changes the
	// output bits, but it changes which runs can fail, so it keys
	// separately rather than aliasing checked and unchecked solves.
	SelfCheck bool
}

// normalized fills the zero-value defaults the solver itself applies.
func (o Options) normalized() Options {
	if o.R == 0 {
		o.R = 3
	}
	if o.BinIters == 0 {
		o.BinIters = 100
	}
	return o
}

// hasher is the reusable encoder state.
type hasher struct {
	h     hash.Hash
	buf   [binary.MaxVarintLen64]byte
	rows  [][]byte    // per-row encodings; backings are reused across calls
	terms []mmlp.Term // scratch copy, so callers' rows stay untouched
}

var hasherPool = sync.Pool{New: func() any { return &hasher{h: sha256.New()} }}

// Hash computes the canonical key of (in, o). The instance is read, never
// mutated; invalid instances hash fine (they simply never acquire a cached
// value, because failed solves are not stored).
func Hash(in *mmlp.Instance, o Options) Key {
	s := hasherPool.Get().(*hasher)
	defer hasherPool.Put(s)
	s.h.Reset()

	s.h.Write([]byte("mmlp-canon/v1\n"))
	o = o.normalized()
	s.uvarint(uint64(o.Engine))
	s.uvarint(uint64(o.R))
	s.uvarint(uint64(o.BinIters))
	flags := byte(0)
	if o.DisableSpecialCases {
		flags |= 1
	}
	if o.SelfCheck {
		flags |= 2
	}
	s.buf[0] = flags
	s.h.Write(s.buf[:1])

	s.uvarint(uint64(in.NumAgents))
	s.uvarint(uint64(len(in.Cons)))
	s.rows = s.rows[:0]
	for _, c := range in.Cons {
		s.addRow(c.Terms)
	}
	s.writeSortedRows()
	s.uvarint(uint64(len(in.Objs)))
	s.rows = s.rows[:0]
	for _, oj := range in.Objs {
		s.addRow(oj.Terms)
	}
	s.writeSortedRows()

	var k Key
	s.h.Sum(k[:0])
	return k
}

func (s *hasher) uvarint(v uint64) {
	s.h.Write(s.buf[:binary.PutUvarint(s.buf[:], v)])
}

// addRow encodes one row: term count, then per term the agent as a signed
// varint (robust to out-of-range indices in not-yet-validated instances)
// and the coefficient as its big-endian IEEE-754 bits. Terms are ordered
// by mmlp.CompareTerm — the one definition this ordering shares with
// mmlp.Canonical, so key equality and pipeline canonicalization can never
// drift apart. The row buffer is recycled from a previous call when one
// is available.
func (s *hasher) addRow(terms []mmlp.Term) {
	s.terms = append(s.terms[:0], terms...)
	slices.SortFunc(s.terms, mmlp.CompareTerm)
	var row []byte
	if n := len(s.rows); n < cap(s.rows) {
		row = s.rows[:n+1][n][:0] // recycle the backing parked in this slot
	}
	row = binary.AppendUvarint(row, uint64(len(s.terms)))
	for _, t := range s.terms {
		row = binary.AppendVarint(row, int64(t.Agent))
		row = binary.BigEndian.AppendUint64(row, math.Float64bits(t.Coef))
	}
	s.rows = append(s.rows, row)
}

// writeSortedRows emits the section's rows in canonical (lexicographic)
// order. Each row is self-delimiting, so plain concatenation is injective.
func (s *hasher) writeSortedRows() {
	slices.SortFunc(s.rows, bytes.Compare)
	for _, row := range s.rows {
		s.h.Write(row)
	}
}
