// Package canon defines the canonical binary encoding of every
// (instance, solve options) pair, the cryptographic key derived from it,
// and — since the encoding became the fleet's binary wire format — the
// decoders and frames of that wire surface (see wire.go).
//
// The paper's algorithm is deterministic: identical instance and options
// always yield bit-identical solutions, so the SHA-256 of the canonical
// encoding is a sound cache index for complete solve results
// (internal/cache fronts the batch and serving layers with exactly that)
// and a sound routing key for the shard layer.
//
// The encoding (version 2, magic "mmlp-canon/v2\n"):
//
//   - options are normalized (R 0→3, BinIters 0→100, matching the solver's
//     defaults) so spellings of the same configuration collide, and are
//     written as uvarints plus one flags byte;
//   - terms within a row are ordered by mmlp.CompareTerm (the semantics of
//     mmlp.SortTerms, applied to a scratch copy so the caller's instance is
//     never mutated) and written fixed-width: the agent as its sign-flipped
//     big-endian 64-bit pattern, the coefficient as its big-endian IEEE-754
//     bits — so any representable coefficient change, however small,
//     changes the bytes;
//   - rows within each section are ordered lexicographically by their
//     encoded bytes. Because every row field is fixed-width big-endian,
//     byte order IS canonical order: it coincides exactly with the
//     (length, then termwise CompareTerm) order of mmlp.Canonical. A
//     decoded wire message is therefore already in the pipeline's canonical
//     form — no re-canonicalization, no second hashing.
//
// The encoding is self-delimiting (every list is preceded by its length)
// and the decoder rejects non-canonical term or row order, hence each
// equivalence class of (instance, options) pairs has exactly one wire
// representation: two pairs share an encoding — or a key — only by
// describing the same mathematical problem under the same options. That
// injectivity is what lets the shard router route a canon payload by
// hashing its raw bytes, without decoding: HashBytes(AppendSolve(in, o))
// == Hash(in, o) by construction.
//
// Hashing sits on the cache-hit path of the serving layer, so the encoder
// state (hash, message buffer, row buffers, term scratch) is pooled:
// steady-state hashing of similarly-shaped instances does not allocate.
package canon

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"slices"
	"sync"

	"repro/internal/mmlp"
)

// SolveMagic opens every canon solve message. The version is part of the
// hashed bytes, so an encoding change can never alias keys across versions.
const SolveMagic = "mmlp-canon/v2\n"

// Key identifies a canonical (instance, options) pair.
type Key [sha256.Size]byte

// String renders the key in hex.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Options are the solve parameters that participate in the key: everything
// that can influence the output bits. Workers is deliberately absent — the
// per-agent computations are independent and the binary search is a pure
// function of its inputs, so results are bit-identical across parallelism.
type Options struct {
	// Engine is the execution engine (the integer value of engine.Kind).
	Engine int
	// R is the shifting parameter (0 is normalized to the default 3).
	R int
	// BinIters caps the per-agent binary search (0 is normalized to 100).
	BinIters int
	// DisableSpecialCases skips the optimal ΔI=1 / ΔK=1 dispatch.
	DisableSpecialCases bool
	// SelfCheck re-verifies the run's invariants. It never changes the
	// output bits, but it changes which runs can fail, so it keys
	// separately rather than aliasing checked and unchecked solves.
	SelfCheck bool
}

// normalized fills the zero-value defaults the solver itself applies.
func (o Options) normalized() Options {
	if o.R == 0 {
		o.R = 3
	}
	if o.BinIters == 0 {
		o.BinIters = 100
	}
	return o
}

// Option flag bits (the flags byte after the varint option fields).
const (
	flagDisableSpecialCases = 1 << 0
	flagSelfCheck           = 1 << 1
	flagsReservedMask       = ^byte(flagDisableSpecialCases | flagSelfCheck)
)

// hasher is the reusable encoder state.
type hasher struct {
	h     hash.Hash
	msg   []byte      // whole-message scratch, reused by Hash
	rows  [][]byte    // per-row encodings; backings are reused across calls
	terms []mmlp.Term // scratch copy, so callers' rows stay untouched
}

var hasherPool = sync.Pool{New: func() any { return &hasher{h: sha256.New()} }}

// Hash computes the canonical key of (in, o): the SHA-256 of its canonical
// wire encoding. The instance is read, never mutated; invalid instances
// hash fine (they simply never acquire a cached value, because failed
// solves are not stored).
func Hash(in *mmlp.Instance, o Options) Key {
	s := hasherPool.Get().(*hasher)
	defer hasherPool.Put(s)
	s.msg = s.appendSolve(s.msg[:0], in, o)
	s.h.Reset()
	s.h.Write(s.msg)
	var k Key
	s.h.Sum(k[:0])
	return k
}

// HashBytes computes the key of an already-encoded canon payload. For
// payloads produced by AppendSolve this equals Hash of the encoded pair —
// the invariant the shard router's decode-free routing rests on.
func HashBytes(payload []byte) Key { return Key(sha256.Sum256(payload)) }

// AppendSolve appends the canonical wire encoding of (in, o) to dst and
// returns the extended buffer. The result is exactly the byte string Hash
// hashes, and DecodeSolve inverts it.
func AppendSolve(dst []byte, in *mmlp.Instance, o Options) []byte {
	s := hasherPool.Get().(*hasher)
	defer hasherPool.Put(s)
	return s.appendSolve(dst, in, o)
}

// EncodeSolve is AppendSolve into a fresh buffer.
func EncodeSolve(in *mmlp.Instance, o Options) []byte { return AppendSolve(nil, in, o) }

// appendSolve writes magic, normalized options and the canonicalized
// instance into dst using the pooled row/term scratch.
func (s *hasher) appendSolve(dst []byte, in *mmlp.Instance, o Options) []byte {
	dst = append(dst, SolveMagic...)
	o = o.normalized()
	dst = binary.AppendUvarint(dst, uint64(o.Engine))
	dst = binary.AppendUvarint(dst, uint64(o.R))
	dst = binary.AppendUvarint(dst, uint64(o.BinIters))
	flags := byte(0)
	if o.DisableSpecialCases {
		flags |= flagDisableSpecialCases
	}
	if o.SelfCheck {
		flags |= flagSelfCheck
	}
	dst = append(dst, flags)

	dst = binary.AppendUvarint(dst, uint64(in.NumAgents))
	dst = binary.AppendUvarint(dst, uint64(len(in.Cons)))
	s.rows = s.rows[:0]
	for _, c := range in.Cons {
		s.addRow(c.Terms)
	}
	dst = s.appendSortedRows(dst)
	dst = binary.AppendUvarint(dst, uint64(len(in.Objs)))
	s.rows = s.rows[:0]
	for _, oj := range in.Objs {
		s.addRow(oj.Terms)
	}
	return s.appendSortedRows(dst)
}

// orderAgent maps a (possibly negative, in not-yet-validated instances)
// agent index to a big-endian-comparable 64-bit pattern: flipping the sign
// bit makes unsigned byte comparison agree with signed numeric order.
func orderAgent(agent int) uint64 { return uint64(int64(agent)) ^ (1 << 63) }

// addRow encodes one row: a 4-byte big-endian term count, then per term the
// sign-flipped agent pattern and the coefficient bits, 8 bytes each, all
// big-endian. Terms are ordered by mmlp.CompareTerm — the one definition
// this ordering shares with mmlp.Canonical, so key equality and pipeline
// canonicalization can never drift apart. Fixed-width fields make
// lexicographic byte order of whole rows coincide with mmlp.Canonical's
// (length, then termwise CompareTerm) row order. The row buffer is recycled
// from a previous call when one is available.
func (s *hasher) addRow(terms []mmlp.Term) {
	s.terms = append(s.terms[:0], terms...)
	slices.SortFunc(s.terms, mmlp.CompareTerm)
	var row []byte
	if n := len(s.rows); n < cap(s.rows) {
		row = s.rows[:n+1][n][:0] // recycle the backing parked in this slot
	}
	row = binary.BigEndian.AppendUint32(row, uint32(len(s.terms)))
	for _, t := range s.terms {
		row = binary.BigEndian.AppendUint64(row, orderAgent(t.Agent))
		row = binary.BigEndian.AppendUint64(row, math.Float64bits(t.Coef))
	}
	s.rows = append(s.rows, row)
}

// appendSortedRows emits the section's rows in canonical (lexicographic ==
// mmlp.Canonical) order. Each row is self-delimiting, so plain
// concatenation is injective.
func (s *hasher) appendSortedRows(dst []byte) []byte {
	slices.SortFunc(s.rows, bytes.Compare)
	for _, row := range s.rows {
		dst = append(dst, row...)
	}
	return dst
}
