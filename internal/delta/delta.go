// Package delta implements incremental re-solving for slowly-changing
// instances, the dynamic-graph corollary of the paper's locality result
// (§1.3): because every kernel value t_u reads only the radius-(4r+3)
// neighbourhood of u, an edit to a few rows of a solved instance can only
// change t_u for agents whose ball touches an edited row. The package
// provides the three ingredients the engine's SolveDelta composes:
//
//   - Record, the per-key cache payload a base solve leaves behind (the
//     canonical instance, the solve options, the kernel t-vector);
//   - Apply, which materialises the edited instance from a base plus a
//     content-addressed edit set;
//   - Plan, the hop-exact multi-source BFS that turns the positionally
//     changed rows of the structured forms into the dirty agent set.
//
// The correctness contract is exact: for every agent Plan does NOT mark
// dirty, the radius-(4r+3) ball is positionally identical in the old and
// new structured instances, so recomputing t_u only for dirty agents and
// splicing the rest from the record reproduces a cold solve bit for bit.
package delta

import (
	"fmt"
	"slices"
	"sync"

	"repro/internal/canon"
	"repro/internal/mmlp"
	"repro/internal/structured"
)

// Record is what a base solve leaves in the result cache for later deltas:
// everything needed to price an edit without re-solving from scratch.
type Record struct {
	// In is the canonical instance the base solve ran on. It is immutable —
	// cache values are shared across requests.
	In *mmlp.Instance
	// Opts are the canonical solve options (engine, R, BinIters, flags) the
	// base was keyed under; a delta inherits them, so the edited key is
	// computed under the same options.
	Opts canon.Options
	// T is the kernel t-vector over the base's structured form. It is nil
	// when the pipeline never ran the kernel on the structured form (zero
	// optimum, unbounded, or a trivial-case dispatch): a delta against such
	// a base falls back to a cold solve of the edited instance.
	T []float64

	// once guards sOld/sOK: Plan needs the structured form of In, and
	// rebuilding it means re-running preprocess+structure on the whole base
	// — O(n) work per delta that would dwarf the small-edit pricing it
	// enables. The first delta against this record builds it; every later
	// one reuses it.
	once sync.Once
	sOld *structured.Instance
	sOK  bool
}

// BaseStructured returns the structured form of the base instance,
// building it with build on the first call and memoising the result —
// including failure: a base whose pipeline leaves the standard
// preprocess→structure shape can never be spliced against, so rebuilding
// would not change the answer. Safe for concurrent use; build runs at
// most once and must return an instance that owns its memory (no shared
// scratch arenas).
func (r *Record) BaseStructured(build func() (*structured.Instance, bool)) (*structured.Instance, bool) {
	r.once.Do(func() { r.sOld, r.sOK = build() })
	return r.sOld, r.sOK
}

// Bytes estimates the record's heap footprint for cache accounting.
func (r *Record) Bytes() int64 {
	if r == nil {
		return 0
	}
	n := int64(96) // struct + slice headers
	if r.In != nil {
		rows := int64(len(r.In.Cons) + len(r.In.Objs))
		terms := int64(0)
		for i := range r.In.Cons {
			terms += int64(len(r.In.Cons[i].Terms))
		}
		for k := range r.In.Objs {
			terms += int64(len(r.In.Objs[k].Terms))
		}
		n += 48*rows + 16*terms
	}
	n += 8 * int64(len(r.T))
	return n
}

// Apply materialises the edited instance: a fresh deep copy of base with
// every edit applied in order. base must be in canonical form (terms
// sorted within rows) and is not modified. Edits address rows by content:
// Match is sorted and compared termwise against the base's rows, so the
// client does not need to know the canonical row order. All failures —
// unknown rows, agents outside the base's agent set, ambiguity-free
// semantic violations like deleting the last objective — wrap
// mmlp.ErrInvalid, so the serving layer answers them with a typed 400.
func Apply(base *mmlp.Instance, edits []mmlp.RowEdit) (*mmlp.Instance, error) {
	out := base.Clone()
	for j := range edits {
		if err := applyOne(out, &edits[j]); err != nil {
			return nil, fmt.Errorf("edit %d: %w", j, err)
		}
	}
	if len(out.Objs) == 0 {
		return nil, fmt.Errorf("%w: edits removed every objective; a max-min LP needs at least one", mmlp.ErrInvalid)
	}
	return out, nil
}

func applyOne(in *mmlp.Instance, e *mmlp.RowEdit) error {
	if err := e.Validate(); err != nil {
		return err
	}
	for _, t := range e.Match {
		if t.Agent >= in.NumAgents {
			return fmt.Errorf("%w: match agent %d outside the base's %d agents", mmlp.ErrInvalid, t.Agent, in.NumAgents)
		}
	}
	for _, t := range e.Terms {
		if t.Agent >= in.NumAgents {
			return fmt.Errorf("%w: agent %d outside the base's %d agents (deltas cannot grow the agent set)",
				mmlp.ErrInvalid, t.Agent, in.NumAgents)
		}
	}
	terms := sortedTerms(e.Terms)
	if dup := firstDuplicateAgent(terms); dup >= 0 {
		return fmt.Errorf("%w: agent %d appears twice in terms", mmlp.ErrInvalid, dup)
	}
	switch e.Op {
	case mmlp.EditAdd:
		addRow(in, e.Kind, terms)
		return nil
	case mmlp.EditRemove:
		_, err := takeRow(in, e.Kind, e.Match)
		return err
	case mmlp.EditReweight:
		old, err := takeRow(in, e.Kind, e.Match)
		if err != nil {
			return err
		}
		if !sameAgentSet(old, terms) {
			return fmt.Errorf("%w: reweight must keep the row's agent set (use remove+add to change membership)", mmlp.ErrInvalid)
		}
		addRow(in, e.Kind, terms)
		return nil
	}
	return fmt.Errorf("%w: unknown edit op %q", mmlp.ErrInvalid, e.Op) // unreachable after Validate
}

// sortedTerms returns a copy of ts in canonical term order.
func sortedTerms(ts []mmlp.Term) []mmlp.Term {
	out := append([]mmlp.Term(nil), ts...)
	slices.SortFunc(out, mmlp.CompareTerm)
	return out
}

func firstDuplicateAgent(sorted []mmlp.Term) int {
	for j := 1; j < len(sorted); j++ {
		if sorted[j].Agent == sorted[j-1].Agent {
			return sorted[j].Agent
		}
	}
	return -1
}

func sameAgentSet(a, b []mmlp.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if a[j].Agent != b[j].Agent {
			return false
		}
	}
	return true
}

func equalTerms(a, b []mmlp.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for j := range a {
		if mmlp.CompareTerm(a[j], b[j]) != 0 {
			return false
		}
	}
	return true
}

// addRow appends a row with the given (already sorted) terms.
func addRow(in *mmlp.Instance, kind string, terms []mmlp.Term) {
	if kind == mmlp.EditConstraint {
		in.Cons = append(in.Cons, mmlp.Constraint{Terms: terms})
	} else {
		in.Objs = append(in.Objs, mmlp.Objective{Terms: terms})
	}
}

// takeRow removes the first row whose content equals match (compared in
// canonical term order) and returns its terms.
func takeRow(in *mmlp.Instance, kind string, match []mmlp.Term) ([]mmlp.Term, error) {
	m := sortedTerms(match)
	if kind == mmlp.EditConstraint {
		for i := range in.Cons {
			if equalTerms(in.Cons[i].Terms, m) {
				terms := in.Cons[i].Terms
				in.Cons = slices.Delete(in.Cons, i, i+1)
				return terms, nil
			}
		}
		return nil, fmt.Errorf("%w: no constraint row matches %v", mmlp.ErrInvalid, m)
	}
	for k := range in.Objs {
		if equalTerms(in.Objs[k].Terms, m) {
			terms := in.Objs[k].Terms
			in.Objs = slices.Delete(in.Objs, k, k+1)
			return terms, nil
		}
	}
	return nil, fmt.Errorf("%w: no objective row matches %v", mmlp.ErrInvalid, m)
}
