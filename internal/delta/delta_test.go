package delta_test

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/mmlp"
	"repro/internal/structured"
)

// pathBase builds the canonical 4-agent path instance used throughout:
//
//	agents  0 —c0— 1 —c1— 2 —c2— 3
//	objectives {0,1} and {2,3}
//
// It is already in structured form (every constraint couples two agents,
// every agent sits in exactly one objective), so the same instance drives
// both the Apply tests (via mmlp) and the Plan tests (via structured).
func pathBase() *mmlp.Instance {
	in := mmlp.New(4)
	in.AddConstraint(0, 1, 1, 1)
	in.AddConstraint(1, 1, 2, 1)
	in.AddConstraint(2, 1, 3, 1)
	in.AddObjective(0, 1, 1, 1)
	in.AddObjective(2, 1, 3, 1)
	return in.Canonical()
}

func terms(pairs ...float64) []mmlp.Term {
	ts := make([]mmlp.Term, 0, len(pairs)/2)
	for j := 0; j+1 < len(pairs); j += 2 {
		ts = append(ts, mmlp.Term{Agent: int(pairs[j]), Coef: pairs[j+1]})
	}
	return ts
}

func TestApplyAddSortsAndAppends(t *testing.T) {
	base := pathBase()
	// Terms deliberately out of canonical order: Apply must sort them.
	out, err := delta.Apply(base, []mmlp.RowEdit{
		{Op: mmlp.EditAdd, Kind: mmlp.EditConstraint, Terms: terms(3, 2, 0, 2)},
		{Op: mmlp.EditAdd, Kind: mmlp.EditObjective, Terms: terms(2, 1, 1, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cons) != 4 || len(out.Objs) != 3 {
		t.Fatalf("got %d cons, %d objs, want 4 and 3", len(out.Cons), len(out.Objs))
	}
	added := out.Cons[3].Terms
	if len(added) != 2 || added[0].Agent != 0 || added[1].Agent != 3 {
		t.Fatalf("added constraint terms not in canonical order: %v", added)
	}
	if len(base.Cons) != 3 || len(base.Objs) != 2 {
		t.Fatalf("base was modified: %d cons, %d objs", len(base.Cons), len(base.Objs))
	}
}

func TestApplyRemoveByContent(t *testing.T) {
	base := pathBase()
	// Match in reverse term order: content addressing is order-insensitive.
	out, err := delta.Apply(base, []mmlp.RowEdit{
		{Op: mmlp.EditRemove, Kind: mmlp.EditConstraint, Match: terms(2, 1, 1, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cons) != 2 {
		t.Fatalf("got %d constraints, want 2", len(out.Cons))
	}
	for i, c := range out.Cons {
		if len(c.Terms) == 2 && c.Terms[0].Agent == 1 && c.Terms[1].Agent == 2 {
			t.Fatalf("row %d still matches the removed content", i)
		}
	}
}

func TestApplyReweight(t *testing.T) {
	base := pathBase()
	out, err := delta.Apply(base, []mmlp.RowEdit{
		{Op: mmlp.EditReweight, Kind: mmlp.EditConstraint, Match: terms(1, 1, 2, 1), Terms: terms(1, 4, 2, 0.5)},
	})
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, c := range out.Cons {
		if c.Terms[0].Agent == 1 && c.Terms[1].Agent == 2 {
			hit = true
			if c.Terms[0].Coef != 4 || c.Terms[1].Coef != 0.5 {
				t.Fatalf("reweighted row has coefs (%v, %v), want (4, 0.5)", c.Terms[0].Coef, c.Terms[1].Coef)
			}
		}
	}
	if !hit {
		t.Fatal("reweighted row vanished")
	}
	// The base row (1,1)-(2,1) must still be there, untouched.
	var baseHit bool
	for _, c := range base.Cons {
		if c.Terms[0].Agent == 1 && c.Terms[1].Agent == 2 && c.Terms[0].Coef == 1 && c.Terms[1].Coef == 1 {
			baseHit = true
		}
	}
	if !baseHit {
		t.Fatal("base row was mutated by the reweight")
	}
}

func TestApplyErrors(t *testing.T) {
	cases := map[string]struct {
		edits   []mmlp.RowEdit
		wantSub string
	}{
		"unknown-row": {
			[]mmlp.RowEdit{{Op: mmlp.EditRemove, Kind: mmlp.EditConstraint, Match: terms(0, 1, 3, 1)}},
			"no constraint row matches",
		},
		"unknown-objective": {
			[]mmlp.RowEdit{{Op: mmlp.EditRemove, Kind: mmlp.EditObjective, Match: terms(0, 1, 2, 1)}},
			"no objective row matches",
		},
		"agent-set-growth": {
			[]mmlp.RowEdit{{Op: mmlp.EditAdd, Kind: mmlp.EditConstraint, Terms: terms(0, 1, 4, 1)}},
			"cannot grow the agent set",
		},
		"match-agent-out-of-range": {
			[]mmlp.RowEdit{{Op: mmlp.EditRemove, Kind: mmlp.EditConstraint, Match: terms(7, 1)}},
			"outside the base",
		},
		"duplicate-agent": {
			[]mmlp.RowEdit{{Op: mmlp.EditAdd, Kind: mmlp.EditConstraint, Terms: terms(2, 1, 2, 3)}},
			"appears twice",
		},
		"reweight-changes-agents": {
			[]mmlp.RowEdit{{Op: mmlp.EditReweight, Kind: mmlp.EditConstraint, Match: terms(1, 1, 2, 1), Terms: terms(1, 1, 3, 1)}},
			"must keep the row's agent set",
		},
		"bad-op": {
			[]mmlp.RowEdit{{Op: "replace", Kind: mmlp.EditConstraint, Terms: terms(0, 1)}},
			"unknown edit op",
		},
		"remove-every-objective": {
			[]mmlp.RowEdit{
				{Op: mmlp.EditRemove, Kind: mmlp.EditObjective, Match: terms(0, 1, 1, 1)},
				{Op: mmlp.EditRemove, Kind: mmlp.EditObjective, Match: terms(2, 1, 3, 1)},
			},
			"removed every objective",
		},
	}
	for name, c := range cases {
		_, err := delta.Apply(pathBase(), c.edits)
		if !errors.Is(err, mmlp.ErrInvalid) {
			t.Fatalf("%s: err = %v, want ErrInvalid", name, err)
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Fatalf("%s: err %q does not mention %q", name, err, c.wantSub)
		}
	}
}

func TestApplyErrorNamesEditIndex(t *testing.T) {
	_, err := delta.Apply(pathBase(), []mmlp.RowEdit{
		{Op: mmlp.EditAdd, Kind: mmlp.EditConstraint, Terms: terms(0, 2, 1, 2)},
		{Op: mmlp.EditRemove, Kind: mmlp.EditConstraint, Match: terms(0, 9)},
	})
	if err == nil || !strings.HasPrefix(err.Error(), "edit 1:") {
		t.Fatalf("err = %v, want an %q prefix", err, "edit 1:")
	}
}

func TestApplyEmptyEditSetIsIdentity(t *testing.T) {
	base := pathBase()
	out, err := delta.Apply(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Cons) != len(base.Cons) || len(out.Objs) != len(base.Objs) {
		t.Fatalf("identity edit changed the shape: %d/%d cons, %d/%d objs",
			len(out.Cons), len(base.Cons), len(out.Objs), len(base.Objs))
	}
}

// sInst converts an instance already in structured form.
func sInst(t *testing.T, in *mmlp.Instance) *structured.Instance {
	t.Helper()
	s, err := structured.FromMMLP(in)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPlanNoChanges(t *testing.T) {
	sOld := sInst(t, pathBase())
	sNew := sInst(t, pathBase())
	dirty, err := delta.Plan(sOld, sNew, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 0 {
		t.Fatalf("dirty = %v, want empty", dirty)
	}
}

// TestPlanRadiusSemantics walks the path instance hop by hop: an edit to
// the middle constraint c1 = (1,2) reaches agents {1,2} at distance 1 and
// agents {0,3} at distance 3 (through c0/c2 or the objectives).
func TestPlanRadiusSemantics(t *testing.T) {
	edited, err := delta.Apply(pathBase(), []mmlp.RowEdit{
		{Op: mmlp.EditReweight, Kind: mmlp.EditConstraint, Match: terms(1, 1, 2, 1), Terms: terms(1, 4, 2, 4)},
	})
	if err != nil {
		t.Fatal(err)
	}
	sOld, sNew := sInst(t, pathBase()), sInst(t, edited.Canonical())
	for radius, want := range map[int][]int{
		1: {1, 2},
		2: {1, 2}, // next agents sit at distance 3
		3: {0, 1, 2, 3},
	} {
		dirty, err := delta.Plan(sOld, sNew, radius)
		if err != nil {
			t.Fatal(err)
		}
		if len(dirty) != len(want) {
			t.Fatalf("radius %d: dirty = %v, want %v", radius, dirty, want)
		}
		for j := range want {
			if dirty[j] != want[j] {
				t.Fatalf("radius %d: dirty = %v, want %v", radius, dirty, want)
			}
		}
	}
}

// TestPlanTrailingRow: a row present in only one instance counts as
// changed at its position. The row is appended by hand (canonicalizing
// would re-sort the section and shift every position).
func TestPlanTrailingRow(t *testing.T) {
	edited := pathBase()
	edited.Cons = append(edited.Cons, mmlp.Constraint{Terms: terms(0, 2, 1, 2)})
	sOld, sNew := sInst(t, pathBase()), sInst(t, edited)
	dirty, err := delta.Plan(sOld, sNew, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 2 || dirty[0] != 0 || dirty[1] != 1 {
		t.Fatalf("dirty = %v, want [0 1]", dirty)
	}
}

// TestPlanUnionTopology: when an edit moves a row to a different agent
// pair, the ball must grow over BOTH endpoints' neighbourhoods — the old
// pair's values lose the row, the new pair's gain it.
func TestPlanUnionTopology(t *testing.T) {
	moved := pathBase()
	// Replace c1 = (1,2) with (1,3) by hand: positionally row 1 changes and
	// the union of old/new endpoints is {1, 2, 3}.
	for i := range moved.Cons {
		ts := moved.Cons[i].Terms
		if ts[0].Agent == 1 && ts[1].Agent == 2 {
			moved.Cons[i].Terms = terms(1, 1, 3, 1)
		}
	}
	sOld, sNew := sInst(t, pathBase()), sInst(t, moved.Canonical())
	dirty, err := delta.Plan(sOld, sNew, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 3 || dirty[0] != 1 || dirty[1] != 2 || dirty[2] != 3 {
		t.Fatalf("dirty = %v, want [1 2 3]", dirty)
	}
}

// TestPlanObjectiveMemberOrder: objective member order is positional
// kernel input (it perturbs summation order), so a pure reordering counts
// as a change.
func TestPlanObjectiveMemberOrder(t *testing.T) {
	reordered := pathBase()
	m := reordered.Objs[0].Terms
	m[0], m[1] = m[1], m[0]
	sOld, sNew := sInst(t, pathBase()), sInst(t, reordered) // no Canonical: keep the reorder
	dirty, err := delta.Plan(sOld, sNew, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirty) != 2 || dirty[0] != 0 || dirty[1] != 1 {
		t.Fatalf("dirty = %v, want [0 1]", dirty)
	}
}

func TestPlanAgentCountMismatch(t *testing.T) {
	bigger := mmlp.New(5)
	bigger.AddConstraint(0, 1, 1, 1)
	bigger.AddConstraint(1, 1, 2, 1)
	bigger.AddConstraint(2, 1, 3, 1)
	bigger.AddConstraint(3, 1, 4, 1)
	bigger.AddObjective(0, 1, 1, 1)
	bigger.AddObjective(2, 1, 3, 1, 4, 1)
	if _, err := delta.Plan(sInst(t, pathBase()), sInst(t, bigger.Canonical()), 3); err == nil {
		t.Fatal("agent-count mismatch was accepted")
	}
}

// fullT computes the kernel t-vector cold: RecomputeT with every agent
// dirty evaluates computeT for all of them, which is exactly what a full
// solve does.
func fullT(t *testing.T, s *structured.Instance, opt core.Options) []float64 {
	t.Helper()
	all := make([]int, s.N)
	for v := range all {
		all[v] = v
	}
	tv, err := core.RecomputeT(s, make([]float64, s.N), all, opt)
	if err != nil {
		t.Fatal(err)
	}
	return tv
}

// TestPlanRadiusRegression pins the exact locality radius: t_u reads the
// radius-(4r+3) ball of u, no less. On the path instance with R=2 (r=0,
// TRadius(0)=3), agent 0 sits at bipartite distance exactly 3 from the
// edited constraint c1 — and its t genuinely changes under the edit. A
// plan one hop short misses agent 0, and the resulting splice is wrong;
// the exact plan reproduces the cold kernel bit for bit. If Plan (or
// TRadius) ever under-counts by one hop, this test fails.
func TestPlanRadiusRegression(t *testing.T) {
	edited, err := delta.Apply(pathBase(), []mmlp.RowEdit{
		{Op: mmlp.EditReweight, Kind: mmlp.EditConstraint, Match: terms(1, 1, 2, 1), Terms: terms(1, 4, 2, 0.25)},
	})
	if err != nil {
		t.Fatal(err)
	}
	sOld, sNew := sInst(t, pathBase()), sInst(t, edited.Canonical())
	opt := core.Options{R: 2, Workers: 1}
	r := opt.R - 2
	tOld, tNew := fullT(t, sOld, opt), fullT(t, sNew, opt)

	if tOld[0] == tNew[0] {
		t.Fatalf("t[0] did not change under the edit (%v); the regression construction is broken", tOld[0])
	}

	exact, err := delta.Plan(sOld, sNew, core.TRadius(r))
	if err != nil {
		t.Fatal(err)
	}
	short, err := delta.Plan(sOld, sNew, core.TRadius(r)-1)
	if err != nil {
		t.Fatal(err)
	}
	has := func(dirty []int, v int) bool {
		for _, d := range dirty {
			if d == v {
				return true
			}
		}
		return false
	}
	if !has(exact, 0) {
		t.Fatalf("exact plan %v misses agent 0 at distance exactly 4r+3", exact)
	}
	if has(short, 0) {
		t.Fatalf("one-hop-short plan %v contains agent 0; the distance-3 construction is broken", short)
	}

	spliceExact, err := core.RecomputeT(sNew, tOld, exact, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range tNew {
		if spliceExact[v] != tNew[v] {
			t.Fatalf("exact splice diverges at agent %d: %v vs cold %v", v, spliceExact[v], tNew[v])
		}
	}
	spliceShort, err := core.RecomputeT(sNew, tOld, short, opt)
	if err != nil {
		t.Fatal(err)
	}
	if spliceShort[0] == tNew[0] {
		t.Fatal("one-hop-short splice still matched the cold kernel; the radius bound is not tight on this instance")
	}
}
