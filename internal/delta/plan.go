package delta

import (
	"fmt"

	"repro/internal/structured"
)

// Plan computes the dirty agent set of an edit: every agent within the
// given bipartite radius (in hops of the agent↔row incidence graph) of a
// positionally changed row, measured over the UNION of the old and new
// topologies. radius must be core.TRadius(r) = 4r+3 — the input radius of
// the kernel value t_u — for the splice to be exact: an agent outside
// every changed row's (4r+3)-ball has a positionally identical ball in
// both instances, so its t_u is bit-identical and can be spliced from the
// base record. One hop too small misses agents whose t_u reads an edited
// row at exactly distance 4r+3 (the regression tests pin this).
//
// Rows are compared positionally — position i of sOld against position i
// of sNew — because the kernel reads the structured form positionally:
// iteration order over ConsOf lists and objective members is part of an
// agent's local input (it perturbs float summation order). Trailing rows
// present in only one instance count as changed. The instances must have
// the same agent count; the caller falls back to a cold solve otherwise.
//
// The returned agent indices are sorted ascending. The BFS is hop-exact
// (one edge per level), unlike core.Update's distance-2 round
// over-approximation, so callers can rely on the radius semantics exactly.
func Plan(sOld, sNew *structured.Instance, radius int) ([]int, error) {
	if sOld.N != sNew.N {
		return nil, fmt.Errorf("delta: agent counts differ (old %d, new %d)", sOld.N, sNew.N)
	}
	nCons := max(len(sOld.ConsV), len(sNew.ConsV))
	nObjs := max(len(sOld.Objs), len(sNew.Objs))
	consSeen := make([]bool, nCons)
	objSeen := make([]bool, nObjs)
	agentSeen := make([]bool, sOld.N)

	// Level 0: the positionally changed rows.
	var consF, objF []int32
	for i := 0; i < nCons; i++ {
		if consRowChanged(sOld, sNew, i) {
			consSeen[i] = true
			consF = append(consF, int32(i))
		}
	}
	for k := 0; k < nObjs; k++ {
		if objRowChanged(sOld, sNew, k) {
			objSeen[k] = true
			objF = append(objF, int32(k))
		}
	}

	// Alternating frontier expansion: rows at even levels, agents at odd
	// levels. An agent is dirty when first reached, i.e. at its true hop
	// distance from the nearest changed row; expansion stops as soon as no
	// further agent could still be within radius.
	var agentsF []int32
	dist := 0
	for len(consF)+len(objF) > 0 && dist < radius {
		agentsF = agentsF[:0]
		visit := func(v int32) {
			if !agentSeen[v] {
				agentSeen[v] = true
				agentsF = append(agentsF, v)
			}
		}
		for _, i := range consF {
			if int(i) < len(sOld.ConsV) {
				visit(sOld.ConsV[i][0])
				visit(sOld.ConsV[i][1])
			}
			if int(i) < len(sNew.ConsV) {
				visit(sNew.ConsV[i][0])
				visit(sNew.ConsV[i][1])
			}
		}
		for _, k := range objF {
			if int(k) < len(sOld.Objs) {
				for _, v := range sOld.Objs[k] {
					visit(v)
				}
			}
			if int(k) < len(sNew.Objs) {
				for _, v := range sNew.Objs[k] {
					visit(v)
				}
			}
		}
		dist++ // agentsF sits at distance dist ≤ radius
		// The next agents would sit at dist+2; stop if they cannot qualify.
		if dist+2 > radius || len(agentsF) == 0 {
			break
		}
		consF, objF = consF[:0], objF[:0]
		for _, v := range agentsF {
			for _, i := range sOld.ConsOf[v] {
				if !consSeen[i] {
					consSeen[i] = true
					consF = append(consF, i)
				}
			}
			for _, i := range sNew.ConsOf[v] {
				if !consSeen[i] {
					consSeen[i] = true
					consF = append(consF, i)
				}
			}
			if k := sOld.ObjOf[v]; !objSeen[k] {
				objSeen[k] = true
				objF = append(objF, k)
			}
			if k := sNew.ObjOf[v]; !objSeen[k] {
				objSeen[k] = true
				objF = append(objF, k)
			}
		}
		dist++ // consF/objF sit at distance dist
	}

	dirty := make([]int, 0, 16)
	for v, hit := range agentSeen {
		if hit {
			dirty = append(dirty, v)
		}
	}
	return dirty, nil
}

// consRowChanged reports a positional difference of constraint row i.
func consRowChanged(a, b *structured.Instance, i int) bool {
	if i >= len(a.ConsV) || i >= len(b.ConsV) {
		return true
	}
	return a.ConsV[i] != b.ConsV[i] || a.ConsA[i] != b.ConsA[i]
}

// objRowChanged reports a positional difference of objective row k.
func objRowChanged(a, b *structured.Instance, k int) bool {
	if k >= len(a.Objs) || k >= len(b.Objs) {
		return true
	}
	ma, mb := a.Objs[k], b.Objs[k]
	if len(ma) != len(mb) {
		return true
	}
	for j := range ma {
		if ma[j] != mb[j] {
			return true
		}
	}
	return false
}
