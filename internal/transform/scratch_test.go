package transform

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mmlp"
)

// sameInstance demands exact structural and bitwise equality.
func sameInstance(t *testing.T, tag string, got, want *mmlp.Instance) {
	t.Helper()
	if got.NumAgents != want.NumAgents {
		t.Fatalf("%s: NumAgents = %d, want %d", tag, got.NumAgents, want.NumAgents)
	}
	if len(got.Cons) != len(want.Cons) || len(got.Objs) != len(want.Objs) {
		t.Fatalf("%s: shape (%d cons, %d objs), want (%d, %d)",
			tag, len(got.Cons), len(got.Objs), len(want.Cons), len(want.Objs))
	}
	for i := range want.Cons {
		sameTerms(t, tag, "constraint", i, got.Cons[i].Terms, want.Cons[i].Terms)
	}
	for k := range want.Objs {
		sameTerms(t, tag, "objective", k, got.Objs[k].Terms, want.Objs[k].Terms)
	}
}

func sameTerms(t *testing.T, tag, kind string, row int, got, want []mmlp.Term) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %s %d has %d terms, want %d", tag, kind, row, len(got), len(want))
	}
	for j := range want {
		if got[j].Agent != want[j].Agent ||
			math.Float64bits(got[j].Coef) != math.Float64bits(want[j].Coef) {
			t.Fatalf("%s: %s %d term %d = %+v, want %+v", tag, kind, row, j, got[j], want[j])
		}
	}
}

func sameVector(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: len = %d, want %d", tag, len(got), len(want))
	}
	for v := range want {
		if math.Float64bits(got[v]) != math.Float64bits(want[v]) {
			t.Fatalf("%s: [%d] = %v, want %v", tag, v, got[v], want[v])
		}
	}
}

// TestStructureScratchBitIdentical reuses ONE warm arena across a stream
// of differently-shaped instances and demands that every intermediate
// instance, the final instance, and the composed back-mapping are
// bit-identical to a fresh-arena Structure of the same input. This is the
// scratch-vs-fresh conformance suite for all five §4 steps.
func TestStructureScratchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	sc := NewScratch()
	for trial := 0; trial < 60; trial++ {
		in := randGeneral(rng)
		pp := Preprocess(in)
		if pp.Outcome != OK {
			continue
		}
		fresh, err := Structure(pp.Out)
		if err != nil {
			t.Fatalf("trial %d: fresh Structure: %v", trial, err)
		}
		warm, err := StructureScratch(pp.Out, sc)
		if err != nil {
			t.Fatalf("trial %d: scratch Structure: %v", trial, err)
		}
		if len(warm.Steps) != len(fresh.Steps) {
			t.Fatalf("trial %d: %d steps, want %d", trial, len(warm.Steps), len(fresh.Steps))
		}
		for s := range fresh.Steps {
			sameInstance(t, fresh.Steps[s].Name, warm.Steps[s].Out, fresh.Steps[s].Out)
		}
		x := randFeasible(rng, fresh.Final())
		want := fresh.Back(x)
		got := warm.Back(x)
		sameVector(t, "composed back-map", got, want)
		// Per-step back-maps agree too (each applied to a point of its own
		// output instance).
		for s := len(fresh.Steps) - 1; s >= 0; s-- {
			sameVector(t, fresh.Steps[s].Name+" back-map",
				warm.Steps[s].Back.Apply(x), fresh.Steps[s].Back.Apply(x))
			x = fresh.Steps[s].Back.Apply(x)
		}
	}
}

// TestPreprocessScratchBitIdentical runs every preprocess outcome through
// one warm arena — interleaved so stale state from a big OK instance sits
// in the arena when the degenerate ones arrive — and compares outcome,
// reduced instance and lifted solutions against the fresh path bit for bit.
func TestPreprocessScratchBitIdentical(t *testing.T) {
	zero := mmlp.New(2)
	zero.AddConstraint(0, 1, 1, 1)
	zero.AddObjective(0, 1)
	zero.Objs = append(zero.Objs, mmlp.Objective{})

	unbounded := mmlp.New(2)
	unbounded.AddObjective(0, 1, 1, 2)

	boosted := mmlp.New(2)
	boosted.AddConstraint(0, 2)
	boosted.AddObjective(0, 1)
	boosted.AddObjective(0, 1, 1, 4)

	rng := rand.New(rand.NewSource(103))
	sc := NewScratch()
	for trial := 0; trial < 30; trial++ {
		for _, in := range []*mmlp.Instance{randGeneral(rng), zero, unbounded, boosted} {
			fresh := Preprocess(in)
			warm := PreprocessScratch(in, sc)
			if warm.Outcome != fresh.Outcome {
				t.Fatalf("trial %d: outcome = %v, want %v", trial, warm.Outcome, fresh.Outcome)
			}
			if fresh.Outcome == OK {
				sameInstance(t, "reduced", warm.Out, fresh.Out)
				x := randFeasible(rng, fresh.Out)
				sameVector(t, "lift", warm.Lift(x), fresh.Lift(x))
			} else {
				sameVector(t, "degenerate lift", warm.Lift(nil), fresh.Lift(nil))
			}
		}
	}
}

// TestBackMapApplyIntoDirtyBuffer: ApplyInto must ignore whatever a reused
// output buffer holds — in particular the max-kind maps must not take the
// maximum against stale values.
func TestBackMapApplyIntoDirtyBuffer(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1)
	in.AddObjective(0, 2, 1, 1)
	_, back := SplitAgentsPerObjective(in)

	x := []float64{0.3, 0.6, 0.2}
	want := back.Apply(x)
	dirty := []float64{1e9, 1e9, 1e9}
	got := back.ApplyInto(x, dirty)
	sameVector(t, "dirty buffer", got, want)
	// Undersized and oversized reuse.
	sameVector(t, "undersized", back.ApplyInto(x, make([]float64, 1)), want)
	sameVector(t, "oversized", back.ApplyInto(x, make([]float64, 16)), want)
}

// TestAugmentSingletonObjectivesEmitCombinations is the regression test
// for the §4.5 constraint-duplication recursion (the ISSUE 4 audit). The
// earlier encoding passed append(acc, …) to both recursive branches, so
// with capacity left over after the first branch the second branch wrote
// into the same backing array — safe only because leaves copied acc before
// the overwrite. The arena version pushes and pops one accumulator and
// copies at the leaf; this test forces the aliasing shape (a row with two
// split agents, then one with three) and asserts every combination row
// comes out distinct and correct.
func TestAugmentSingletonObjectivesEmitCombinations(t *testing.T) {
	// Two split agents: both live in singleton objectives.
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 2)
	in.AddObjective(1, 3)
	out, _ := AugmentSingletonObjectives(in)
	// Agent 0 → copies {0,1}, agent 1 → copies {2,3}; the four combination
	// rows appear in t-before-u order.
	wantRows := [][]mmlp.Term{
		{{Agent: 0, Coef: 1}, {Agent: 2, Coef: 1}},
		{{Agent: 0, Coef: 1}, {Agent: 3, Coef: 1}},
		{{Agent: 1, Coef: 1}, {Agent: 2, Coef: 1}},
		{{Agent: 1, Coef: 1}, {Agent: 3, Coef: 1}},
	}
	if len(out.Cons) != len(wantRows) {
		t.Fatalf("constraints = %d, want %d", len(out.Cons), len(wantRows))
	}
	for i, want := range wantRows {
		sameTerms(t, "two-split", "constraint", i, out.Cons[i].Terms, want)
	}

	// Three split agents in one row: 8 combinations, deep recursion with
	// leftover accumulator capacity after each first branch.
	in3 := mmlp.New(3)
	in3.AddConstraint(0, 1, 1, 2, 2, 4)
	in3.AddObjective(0, 1)
	in3.AddObjective(1, 1)
	in3.AddObjective(2, 1)
	out3, _ := AugmentSingletonObjectives(in3)
	if len(out3.Cons) != 8 {
		t.Fatalf("constraints = %d, want 8", len(out3.Cons))
	}
	seen := map[[3]int]bool{}
	for i, c := range out3.Cons {
		if len(c.Terms) != 3 {
			t.Fatalf("row %d has %d terms, want 3", i, len(c.Terms))
		}
		var key [3]int
		for j, tm := range c.Terms {
			key[j] = tm.Agent
			// Agent j's copies are {2j, 2j+1} and keep coefficient 2^j.
			if tm.Agent/2 != j || tm.Coef != float64(int(1)<<j) {
				t.Fatalf("row %d term %d = %+v", i, j, tm)
			}
		}
		if seen[key] {
			t.Fatalf("row %d duplicates combination %v: branches clobbered each other", i, key)
		}
		seen[key] = true
	}
}

// TestStructureScratchAllocFree pins the §4 stage's steady-state heap
// behaviour: with a warm arena, Preprocess + Structure allocate (almost)
// nothing per solve. The small budget covers ValidateStrict's two
// membership slices.
func TestStructureScratchAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	in := randGeneral(rng)
	sc := NewScratch()
	solve := func() {
		pp := PreprocessScratch(in, sc)
		if pp.Outcome != OK {
			t.Fatal("unexpected outcome")
		}
		if _, err := StructureScratch(pp.Out, sc); err != nil {
			t.Fatal(err)
		}
	}
	solve() // warm the arena
	const budget = 4
	if avg := testing.AllocsPerRun(100, solve); avg > budget {
		t.Fatalf("warm transform stage allocates %.1f objects/solve, budget %d", avg, budget)
	}
}
