package transform

import (
	"math"

	"repro/internal/mmlp"
)

// The exported step functions apply one §4 rewrite on a private arena, so
// their results are independently owned; StructureScratch runs the same
// implementations against a caller-supplied Scratch so a warm worker
// rebuilds the whole pipeline without allocating.

// AugmentSingletonConstraints implements §4.2: every constraint with a
// single agent v is augmented with a six-node gadget (agents s, t, u;
// objectives h, ℓ; constraint j) so that afterwards |Vi| ≥ 2 everywhere.
// The gadget never constrains the original instance: setting x_s = 0 and
// x_t = x_u = 1/2 satisfies the new rows at utility at least the optimum,
// because the gadget's large coefficient M is twice the trivial bound of an
// objective adjacent to v. Optima coincide; back-mapping truncates to the
// original agents.
func AugmentSingletonConstraints(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	sc := NewScratch()
	return augmentSingletonConstraints(in, sc, &sc.outs[0])
}

func augmentSingletonConstraints(in *mmlp.Instance, sc *Scratch, a *instArena) (*mmlp.Instance, BackMap) {
	caps := capsInto(in, &sc.caps)
	sc.inc.build(in)
	origAgents := in.NumAgents
	a.reset(origAgents)
	gadgets := sc.gadgets[:0]
	next := origAgents
	for _, c := range in.Cons {
		if len(c.Terms) != 1 {
			a.cons.copyRow(c.Terms)
			continue
		}
		v := c.Terms[0].Agent
		if v >= origAgents {
			a.cons.copyRow(c.Terms) // gadget agents are already fine (their rows have 2 terms)
			continue
		}
		// M = 2 Σ_{w∈Vk} c_kw cap_w for the first objective k adjacent to v.
		k := sc.inc.objsOf(v)[0]
		m := 0.0
		for _, t := range in.Objs[k].Terms {
			m += t.Coef * caps[t.Agent]
		}
		m *= 2
		if m <= 0 || math.IsInf(m, 1) {
			// Defensive: strictly valid inputs have positive finite caps.
			m = 1
		}
		s := next
		next += 3
		a.cons.addTerm(c.Terms[0])
		a.cons.add(s, 1)
		a.cons.endRow()
		gadgets = append(gadgets, gadget{s: int32(s), m: m})
	}
	sc.gadgets = gadgets
	for _, g := range gadgets {
		a.cons.add(int(g.s)+1, 1) // j: x_t + x_u ≤ 1
		a.cons.add(int(g.s)+2, 1)
		a.cons.endRow()
	}
	for _, o := range in.Objs {
		a.objs.copyRow(o.Terms)
	}
	for _, g := range gadgets {
		a.objs.add(int(g.s), 1) // h: x_s + M x_t
		a.objs.add(int(g.s)+1, g.m)
		a.objs.endRow()
		a.objs.add(int(g.s), 1) // ℓ: x_s + M x_u
		a.objs.add(int(g.s)+2, g.m)
		a.objs.endRow()
	}
	a.inst.NumAgents = next
	return a.finish(), BackMap{kind: backTruncate, n: origAgents}
}

// ReduceConstraintDegree implements §4.3: every constraint with |Vi| > 2 is
// replaced by the C(|Vi|,2) pairwise constraints (3). The back-mapping (4)
// scales each agent by 2 / max_{i∈Iv} |Vi| computed on the step's input, so
// a feasible transformed solution maps to a feasible original one. This is
// the only step that costs approximation ratio: a factor ΔI/2.
func ReduceConstraintDegree(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	sc := NewScratch()
	return reduceConstraintDegree(in, sc, &sc.outs[1])
}

func reduceConstraintDegree(in *mmlp.Instance, sc *Scratch, a *instArena) (*mmlp.Instance, BackMap) {
	a.reset(in.NumAgents)
	divisor := grow(&sc.divisor, in.NumAgents)
	for v := range divisor {
		divisor[v] = 2
	}
	for _, o := range in.Objs {
		a.objs.copyRow(o.Terms)
	}
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			if d := float64(len(c.Terms)); d > divisor[t.Agent] {
				divisor[t.Agent] = d
			}
		}
		if len(c.Terms) <= 2 {
			a.cons.copyRow(c.Terms)
			continue
		}
		for x := 0; x < len(c.Terms); x++ {
			for y := x + 1; y < len(c.Terms); y++ {
				a.cons.addTerm(c.Terms[x])
				a.cons.addTerm(c.Terms[y])
				a.cons.endRow()
			}
		}
	}
	return a.finish(), BackMap{kind: backScaleHalf, n: in.NumAgents, scale: divisor}
}

// SplitAgentsPerObjective implements §4.4: each agent v with |Kv| = q is
// split into q copies, one per adjacent objective; every constraint {v,w}
// is replaced by the |Kv|·|Kw| combinations of copies. Afterwards
// |Kv| = 1 everywhere. Optima coincide; the back-mapping takes the maximum
// over the copies of each original agent, which remains feasible because
// every combination of copies is constrained.
//
// The step requires |Vi| ≤ 2 (guaranteed by ReduceConstraintDegree).
func SplitAgentsPerObjective(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	sc := NewScratch()
	return splitAgentsPerObjective(in, sc, &sc.outs[2])
}

func splitAgentsPerObjective(in *mmlp.Instance, sc *Scratch, a *instArena) (*mmlp.Instance, BackMap) {
	sc.inc.build(in)
	n := in.NumAgents
	// Copies are dedicated to v's objectives in ObjsOf order, so the copy
	// of v for the objective at position p is copyStart[v]+p — an index
	// computation where the allocating era kept per-agent maps.
	copyStart := grow(&sc.idxA, n+1)
	parent := sc.parentSplit[:0]
	total := 0
	for v := 0; v < n; v++ {
		copyStart[v] = int32(total)
		for range sc.inc.objsOf(v) {
			parent = append(parent, int32(v))
			total++
		}
	}
	copyStart[n] = int32(total)
	sc.parentSplit = parent
	a.reset(total)
	for _, c := range in.Cons {
		switch len(c.Terms) {
		case 1:
			t := c.Terms[0]
			for p := range sc.inc.objsOf(t.Agent) {
				a.cons.add(int(copyStart[t.Agent])+p, t.Coef)
				a.cons.endRow()
			}
		case 2:
			ta, tb := c.Terms[0], c.Terms[1]
			for pa := range sc.inc.objsOf(ta.Agent) {
				for pb := range sc.inc.objsOf(tb.Agent) {
					a.cons.add(int(copyStart[ta.Agent])+pa, ta.Coef)
					a.cons.add(int(copyStart[tb.Agent])+pb, tb.Coef)
					a.cons.endRow()
				}
			}
		default:
			panic("transform: SplitAgentsPerObjective requires |Vi| ≤ 2; run ReduceConstraintDegree first")
		}
	}
	// cursor[v] is the next unconsumed position in ObjsOf(v); objectives
	// are visited in increasing k, the order ObjsOf lists them in.
	cursor := grow(&sc.countA, n)
	for v := range cursor {
		cursor[v] = 0
	}
	for _, o := range in.Objs {
		for _, t := range o.Terms {
			a.objs.add(int(copyStart[t.Agent]+cursor[t.Agent]), t.Coef)
			cursor[t.Agent]++
		}
		a.objs.endRow()
	}
	return a.finish(), BackMap{kind: backMax, n: n, parent: parent}
}

// emitState is the explicit recursion state of §4.5's constraint
// duplication. The accumulator is pushed and popped around each recursive
// call and leaves are copied into the row buffer, so — unlike the earlier
// encoding that passed append(acc, …) to both branches — no two branches
// ever share an accumulator backing array (see the aliasing regression
// test). Living in the Scratch, it also spares the per-call closure
// allocation of the recursive-function-value form.
type emitState struct {
	cons     *rowBuf
	terms    []mmlp.Term
	splitT   []int32
	newIndex []int32
	acc      []mmlp.Term
}

// emit appends, for the constraint row e.terms, one output row per
// combination of copies of its split agents (t-copy before u-copy, the
// original emission order).
func (e *emitState) emit(idx int) {
	if idx == len(e.terms) {
		for _, t := range e.acc {
			e.cons.addTerm(t)
		}
		e.cons.endRow()
		return
	}
	t := e.terms[idx]
	if st := e.splitT[t.Agent]; st >= 0 {
		e.acc = append(e.acc, mmlp.Term{Agent: int(st), Coef: t.Coef})
		e.emit(idx + 1)
		e.acc[len(e.acc)-1].Agent = int(st) + 1
		e.emit(idx + 1)
		e.acc = e.acc[:len(e.acc)-1]
		return
	}
	e.acc = append(e.acc, mmlp.Term{Agent: int(e.newIndex[t.Agent]), Coef: t.Coef})
	e.emit(idx + 1)
	e.acc = e.acc[:len(e.acc)-1]
}

// AugmentSingletonObjectives implements §4.5: every objective with a single
// agent v splits v into two copies t, u; every constraint containing v is
// duplicated, once per copy; the objective becomes c/2 · (x_t + x_u).
// Afterwards |Vk| ≥ 2 everywhere. Optima coincide; back-mapping takes the
// maximum of the two copies.
//
// The step requires |Kv| = 1 (guaranteed by SplitAgentsPerObjective).
func AugmentSingletonObjectives(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	sc := NewScratch()
	return augmentSingletonObjectives(in, sc, &sc.outs[3])
}

func augmentSingletonObjectives(in *mmlp.Instance, sc *Scratch, a *instArena) (*mmlp.Instance, BackMap) {
	sc.inc.build(in)
	n := in.NumAgents
	// splitT[v] is the t-copy of a split agent (its u-copy is splitT[v]+1),
	// -1 otherwise; newIndex[v] is the output index of an unsplit agent.
	splitT := grow(&sc.idxB, n)
	newIndex := grow(&sc.idxA, n)
	parent := sc.parentAug[:0]
	out := 0
	for v := 0; v < n; v++ {
		needsSplit := false
		for _, k := range sc.inc.objsOf(v) {
			if len(in.Objs[k].Terms) == 1 {
				needsSplit = true
			}
		}
		if needsSplit {
			splitT[v] = int32(out)
			newIndex[v] = -1
			parent = append(parent, int32(v), int32(v))
			out += 2
		} else {
			splitT[v] = -1
			newIndex[v] = int32(out)
			parent = append(parent, int32(v))
			out++
		}
	}
	sc.parentAug = parent
	a.reset(out)
	// Constraints: rows containing a split agent are duplicated per copy
	// (independently for each split member, so a row with two split agents
	// yields four rows — each combination must hold for max-feasibility).
	e := &sc.emit
	*e = emitState{cons: &a.cons, splitT: splitT, newIndex: newIndex, acc: sc.acc[:0]}
	for _, c := range in.Cons {
		e.terms = c.Terms
		e.emit(0)
	}
	sc.acc = e.acc[:0]
	for _, o := range in.Objs {
		if len(o.Terms) == 1 {
			t := o.Terms[0]
			st := splitT[t.Agent]
			a.objs.add(int(st), t.Coef/2)
			a.objs.add(int(st)+1, t.Coef/2)
			a.objs.endRow()
			continue
		}
		for _, t := range o.Terms {
			if st := splitT[t.Agent]; st >= 0 {
				// A split agent appearing in a multi-agent objective cannot
				// occur when |Kv| = 1, but handle it by charging copy t.
				a.objs.add(int(st), t.Coef)
				continue
			}
			a.objs.add(int(newIndex[t.Agent]), t.Coef)
		}
		a.objs.endRow()
	}
	return a.finish(), BackMap{kind: backMax, n: n, parent: parent}
}

// NormalizeCoefficients implements §4.6: with |Kv| = 1, each agent's
// objective coefficient γ_v = c_{k(v)v} is divided out, i.e. the instance
// is rewritten in the variables x'_v = γ_v x_v, making every objective
// coefficient 1 and rescaling a_iv to a_iv/γ_v. Back-mapping divides by
// γ_v. Optima coincide.
func NormalizeCoefficients(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	sc := NewScratch()
	return normalizeCoefficients(in, sc, &sc.outs[4])
}

func normalizeCoefficients(in *mmlp.Instance, sc *Scratch, a *instArena) (*mmlp.Instance, BackMap) {
	gamma := grow(&sc.gamma, in.NumAgents)
	for v := range gamma {
		gamma[v] = 1
	}
	for _, o := range in.Objs {
		for _, t := range o.Terms {
			gamma[t.Agent] = t.Coef
		}
	}
	a.reset(in.NumAgents)
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			a.cons.add(t.Agent, t.Coef/gamma[t.Agent])
		}
		a.cons.endRow()
	}
	for _, o := range in.Objs {
		for _, t := range o.Terms {
			a.objs.add(t.Agent, 1)
		}
		a.objs.endRow()
	}
	return a.finish(), BackMap{kind: backDivide, n: in.NumAgents, scale: gamma}
}
