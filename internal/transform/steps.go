package transform

import (
	"math"

	"repro/internal/mmlp"
)

// AugmentSingletonConstraints implements §4.2: every constraint with a
// single agent v is augmented with a six-node gadget (agents s, t, u;
// objectives h, ℓ; constraint j) so that afterwards |Vi| ≥ 2 everywhere.
// The gadget never constrains the original instance: setting x_s = 0 and
// x_t = x_u = 1/2 satisfies the new rows at utility at least the optimum,
// because the gadget's large coefficient M is twice the trivial bound of an
// objective adjacent to v. Optima coincide; back-mapping truncates to the
// original agents.
func AugmentSingletonConstraints(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	out := in.Clone()
	caps := in.Caps()
	inc := in.Incidence()
	origAgents := in.NumAgents
	for i := range out.Cons {
		if len(out.Cons[i].Terms) != 1 {
			continue
		}
		v := out.Cons[i].Terms[0].Agent
		if v >= origAgents {
			continue // gadget agents are already fine (their rows have 2 terms)
		}
		// M = 2 Σ_{w∈Vk} c_kw cap_w for the first objective k adjacent to v.
		k := inc.ObjsOf[v][0]
		m := 0.0
		for _, t := range in.Objs[k].Terms {
			m += t.Coef * caps[t.Agent]
		}
		m *= 2
		if m <= 0 || math.IsInf(m, 1) {
			// Defensive: strictly valid inputs have positive finite caps.
			m = 1
		}
		s := out.NumAgents
		tt := s + 1
		u := s + 2
		out.NumAgents += 3
		out.Cons[i].Terms = append(out.Cons[i].Terms, mmlp.Term{Agent: s, Coef: 1})
		out.AddConstraint(float64(tt), 1, float64(u), 1) // j: x_t + x_u ≤ 1
		out.AddObjective(float64(s), 1, float64(tt), m)  // h: x_s + M x_t
		out.AddObjective(float64(s), 1, float64(u), m)   // ℓ: x_s + M x_u
	}
	back := func(x []float64) []float64 {
		return append([]float64(nil), x[:origAgents]...)
	}
	return out, back
}

// ReduceConstraintDegree implements §4.3: every constraint with |Vi| > 2 is
// replaced by the C(|Vi|,2) pairwise constraints (3). The back-mapping (4)
// scales each agent by 2 / max_{i∈Iv} |Vi| computed on the step's input, so
// a feasible transformed solution maps to a feasible original one. This is
// the only step that costs approximation ratio: a factor ΔI/2.
func ReduceConstraintDegree(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	out := mmlp.New(in.NumAgents)
	out.Objs = in.Clone().Objs
	divisor := make([]float64, in.NumAgents)
	for v := range divisor {
		divisor[v] = 2
	}
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			if d := float64(len(c.Terms)); d > divisor[t.Agent] {
				divisor[t.Agent] = d
			}
		}
		if len(c.Terms) <= 2 {
			out.Cons = append(out.Cons, mmlp.Constraint{Terms: append([]mmlp.Term(nil), c.Terms...)})
			continue
		}
		for a := 0; a < len(c.Terms); a++ {
			for b := a + 1; b < len(c.Terms); b++ {
				out.Cons = append(out.Cons, mmlp.Constraint{
					Terms: []mmlp.Term{c.Terms[a], c.Terms[b]},
				})
			}
		}
	}
	back := func(x []float64) []float64 {
		y := make([]float64, len(x))
		for v := range x {
			y[v] = 2 * x[v] / divisor[v]
		}
		return y
	}
	return out, back
}

// SplitAgentsPerObjective implements §4.4: each agent v with |Kv| = q is
// split into q copies, one per adjacent objective; every constraint {v,w}
// is replaced by the |Kv|·|Kw| combinations of copies. Afterwards
// |Kv| = 1 everywhere. Optima coincide; the back-mapping takes the maximum
// over the copies of each original agent, which remains feasible because
// every combination of copies is constrained.
//
// The step requires |Vi| ≤ 2 (guaranteed by ReduceConstraintDegree).
func SplitAgentsPerObjective(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	inc := in.Incidence()
	// copyIndex[v] maps objective k → the copy of v dedicated to k.
	copyIndex := make([]map[int]int, in.NumAgents)
	parent := []int{}
	out := mmlp.New(0)
	for v := 0; v < in.NumAgents; v++ {
		copyIndex[v] = make(map[int]int, len(inc.ObjsOf[v]))
		for _, k := range inc.ObjsOf[v] {
			copyIndex[v][k] = out.NumAgents
			parent = append(parent, v)
			out.NumAgents++
		}
	}
	for _, c := range in.Cons {
		switch len(c.Terms) {
		case 1:
			t := c.Terms[0]
			for _, k := range inc.ObjsOf[t.Agent] {
				out.Cons = append(out.Cons, mmlp.Constraint{Terms: []mmlp.Term{
					{Agent: copyIndex[t.Agent][k], Coef: t.Coef},
				}})
			}
		case 2:
			ta, tb := c.Terms[0], c.Terms[1]
			for _, ka := range inc.ObjsOf[ta.Agent] {
				for _, kb := range inc.ObjsOf[tb.Agent] {
					out.Cons = append(out.Cons, mmlp.Constraint{Terms: []mmlp.Term{
						{Agent: copyIndex[ta.Agent][ka], Coef: ta.Coef},
						{Agent: copyIndex[tb.Agent][kb], Coef: tb.Coef},
					}})
				}
			}
		default:
			panic("transform: SplitAgentsPerObjective requires |Vi| ≤ 2; run ReduceConstraintDegree first")
		}
	}
	for k, o := range in.Objs {
		terms := make([]mmlp.Term, 0, len(o.Terms))
		for _, t := range o.Terms {
			terms = append(terms, mmlp.Term{Agent: copyIndex[t.Agent][k], Coef: t.Coef})
		}
		out.Objs = append(out.Objs, mmlp.Objective{Terms: terms})
	}
	nOrig := in.NumAgents
	back := func(x []float64) []float64 {
		y := make([]float64, nOrig)
		for c, v := range parent {
			if x[c] > y[v] {
				y[v] = x[c]
			}
		}
		return y
	}
	return out, back
}

// AugmentSingletonObjectives implements §4.5: every objective with a single
// agent v splits v into two copies t, u; every constraint containing v is
// duplicated, once per copy; the objective becomes c/2 · (x_t + x_u).
// Afterwards |Vk| ≥ 2 everywhere. Optima coincide; back-mapping takes the
// maximum of the two copies.
//
// The step requires |Kv| = 1 (guaranteed by SplitAgentsPerObjective).
func AugmentSingletonObjectives(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	inc := in.Incidence()
	// split[v] holds the two copies for agents that get split, else nil.
	type pair struct{ t, u int }
	split := make([]*pair, in.NumAgents)
	// firstCopy[v] is v's index in the output for unsplit agents.
	newIndex := make([]int, in.NumAgents)
	out := mmlp.New(0)
	parent := []int{}
	for v := 0; v < in.NumAgents; v++ {
		needsSplit := false
		for _, k := range inc.ObjsOf[v] {
			if len(in.Objs[k].Terms) == 1 {
				needsSplit = true
			}
		}
		if needsSplit {
			split[v] = &pair{t: out.NumAgents, u: out.NumAgents + 1}
			newIndex[v] = -1
			parent = append(parent, v, v)
			out.NumAgents += 2
		} else {
			newIndex[v] = out.NumAgents
			parent = append(parent, v)
			out.NumAgents++
		}
	}
	// Constraints: rows containing a split agent are duplicated per copy
	// (independently for each split member, so a row with two split agents
	// yields four rows — each combination must hold for max-feasibility).
	var emit func(terms []mmlp.Term, idx int, acc []mmlp.Term)
	emit = func(terms []mmlp.Term, idx int, acc []mmlp.Term) {
		if idx == len(terms) {
			out.Cons = append(out.Cons, mmlp.Constraint{Terms: append([]mmlp.Term(nil), acc...)})
			return
		}
		t := terms[idx]
		if sp := split[t.Agent]; sp != nil {
			emit(terms, idx+1, append(acc, mmlp.Term{Agent: sp.t, Coef: t.Coef}))
			emit(terms, idx+1, append(acc, mmlp.Term{Agent: sp.u, Coef: t.Coef}))
			return
		}
		emit(terms, idx+1, append(acc, mmlp.Term{Agent: newIndex[t.Agent], Coef: t.Coef}))
	}
	for _, c := range in.Cons {
		emit(c.Terms, 0, nil)
	}
	for _, o := range in.Objs {
		if len(o.Terms) == 1 {
			t := o.Terms[0]
			sp := split[t.Agent]
			out.AddObjective(float64(sp.t), t.Coef/2, float64(sp.u), t.Coef/2)
			continue
		}
		terms := make([]mmlp.Term, 0, len(o.Terms))
		for _, t := range o.Terms {
			if sp := split[t.Agent]; sp != nil {
				// A split agent appearing in a multi-agent objective cannot
				// occur when |Kv| = 1, but handle it by charging copy t.
				terms = append(terms, mmlp.Term{Agent: sp.t, Coef: t.Coef})
				continue
			}
			terms = append(terms, mmlp.Term{Agent: newIndex[t.Agent], Coef: t.Coef})
		}
		out.Objs = append(out.Objs, mmlp.Objective{Terms: terms})
	}
	nOrig := in.NumAgents
	back := func(x []float64) []float64 {
		y := make([]float64, nOrig)
		for c, v := range parent {
			if x[c] > y[v] {
				y[v] = x[c]
			}
		}
		return y
	}
	return out, back
}

// NormalizeCoefficients implements §4.6: with |Kv| = 1, each agent's
// objective coefficient γ_v = c_{k(v)v} is divided out, i.e. the instance
// is rewritten in the variables x'_v = γ_v x_v, making every objective
// coefficient 1 and rescaling a_iv to a_iv/γ_v. Back-mapping divides by
// γ_v. Optima coincide.
func NormalizeCoefficients(in *mmlp.Instance) (*mmlp.Instance, BackMap) {
	gamma := make([]float64, in.NumAgents)
	for v := range gamma {
		gamma[v] = 1
	}
	for _, o := range in.Objs {
		for _, t := range o.Terms {
			gamma[t.Agent] = t.Coef
		}
	}
	out := in.Clone()
	for i := range out.Cons {
		for j := range out.Cons[i].Terms {
			t := &out.Cons[i].Terms[j]
			t.Coef /= gamma[t.Agent]
		}
	}
	for k := range out.Objs {
		for j := range out.Objs[k].Terms {
			out.Objs[k].Terms[j].Coef = 1
		}
	}
	g := gamma
	back := func(x []float64) []float64 {
		y := make([]float64, len(x))
		for v := range x {
			y[v] = x[v] / g[v]
		}
		return y
	}
	return out, back
}
