package transform

// BackMap converts a feasible solution of a transformed instance into a
// feasible solution of the instance the transformation started from.
//
// A BackMap is a data-driven record — an operation kind plus the
// divisor/parent/γ array it needs — rather than a closure, so a pipeline
// built into a Scratch stores its back-mappings in reusable arena memory
// and applies them through one shared routine instead of capturing (and
// re-allocating) per-solve state. The zero value is the truncation map of
// length 0. Records built by a scratch pipeline alias the arena and are
// valid until its next use.
type BackMap struct {
	kind backKind
	// n is the agent count of the step's input, i.e. the output length.
	n int
	// parent maps each transformed agent (copy) to its original agent for
	// backMax.
	parent []int32
	// scale holds the per-agent divisors: the §4.3 degree divisor for
	// backScaleHalf, γ for backDivide.
	scale []float64
}

type backKind uint8

const (
	// backTruncate keeps the first n entries (§4.2: gadget agents drop).
	backTruncate backKind = iota
	// backScaleHalf maps y_v = 2 x_v / scale_v (§4.3, equation (4)).
	backScaleHalf
	// backMax maps y_v = max over copies c with parent_c = v of x_c
	// (§4.4 and §4.5: copies collapse to their original agent).
	backMax
	// backDivide maps y_v = x_v / scale_v (§4.6: undo the γ rescaling).
	backDivide
)

// Apply maps a feasible solution x of the step's output instance to a
// freshly allocated feasible solution of its input instance.
func (m BackMap) Apply(x []float64) []float64 { return m.ApplyInto(x, nil) }

// ApplyInto is Apply writing into y's backing array when its capacity
// suffices (y's previous contents are ignored); x and y must not overlap.
// Every kind reproduces the arithmetic of the original closure back-maps
// bit for bit.
func (m BackMap) ApplyInto(x, y []float64) []float64 {
	if cap(y) < m.n {
		y = make([]float64, m.n)
	}
	y = y[:m.n]
	switch m.kind {
	case backTruncate:
		copy(y, x[:m.n])
	case backScaleHalf:
		for v := range y {
			y[v] = 2 * x[v] / m.scale[v]
		}
	case backMax:
		for v := range y {
			y[v] = 0
		}
		for c, v := range m.parent {
			if x[c] > y[v] {
				y[v] = x[c]
			}
		}
	case backDivide:
		for v := range y {
			y[v] = x[v] / m.scale[v]
		}
	}
	return y
}
