// Package transform implements the locally computable reductions of §4 of
// the paper, which turn an arbitrary max-min LP into the structured form
// required by the algorithm of §5:
//
//	|Vi| = 2  for every constraint,
//	|Kv| = 1  for every agent,
//	|Vk| ≥ 2  for every objective,
//	c_kv = 1  for every objective coefficient.
//
// Each step produces a transformed instance together with a back-mapping
// that converts any feasible solution of the transformed instance into a
// feasible solution of the original whose utility is no smaller (up to the
// deliberate ΔI/2 scaling of the degree-reduction step §4.3). Steps compose
// into a Pipeline.
//
// The paper performs these rewrites inside each node's local view to keep
// the algorithm distributed; the rewrite rules themselves are deterministic
// and local (each looks only at a constant-radius neighbourhood), so
// applying them to the whole instance — as this package does — produces the
// same transformed network that the per-node views would stitch together.
package transform

import (
	"fmt"

	"repro/internal/mmlp"
)

// BackMap converts a feasible solution of a transformed instance into a
// feasible solution of the instance the transformation started from.
type BackMap func(x []float64) []float64

// Step is one applied transformation.
type Step struct {
	// Name identifies the paper section, e.g. "§4.3 degree reduction".
	Name string
	// Out is the instance after the step.
	Out *mmlp.Instance
	// Back maps a solution of Out to a solution of the step's input.
	Back BackMap
}

// Pipeline is a composed sequence of transformation steps.
type Pipeline struct {
	// Input is the original instance handed to Structure.
	Input *mmlp.Instance
	// Steps lists the applied transformations in application order.
	Steps []Step
}

// Final returns the instance after the last step (Input when no steps ran).
func (p *Pipeline) Final() *mmlp.Instance {
	if len(p.Steps) == 0 {
		return p.Input
	}
	return p.Steps[len(p.Steps)-1].Out
}

// Back maps a feasible solution of Final() back to the original instance by
// applying the step back-maps in reverse order.
func (p *Pipeline) Back(x []float64) []float64 {
	for s := len(p.Steps) - 1; s >= 0; s-- {
		x = p.Steps[s].Back(x)
	}
	return x
}

// Structure applies the full §4 pipeline (after Preprocess has removed
// degenerate nodes — see Preprocess; Structure requires a strictly valid
// input) and returns the composed pipeline. The final instance satisfies
// CheckStructured.
func Structure(in *mmlp.Instance) (*Pipeline, error) {
	if err := in.ValidateStrict(); err != nil {
		return nil, fmt.Errorf("transform: input must be strictly valid (run Preprocess first): %w", err)
	}
	p := &Pipeline{Input: in}
	cur := in
	apply := func(name string, f func(*mmlp.Instance) (*mmlp.Instance, BackMap)) {
		out, back := f(cur)
		p.Steps = append(p.Steps, Step{Name: name, Out: out, Back: back})
		cur = out
	}
	apply("§4.2 augment singleton constraints", AugmentSingletonConstraints)
	apply("§4.3 reduce constraint degree", ReduceConstraintDegree)
	apply("§4.4 one objective per agent", SplitAgentsPerObjective)
	apply("§4.5 augment singleton objectives", AugmentSingletonObjectives)
	apply("§4.6 normalise coefficients", NormalizeCoefficients)
	if err := CheckStructured(cur); err != nil {
		return nil, fmt.Errorf("transform: pipeline did not reach structured form: %w", err)
	}
	return p, nil
}

// CheckStructured verifies the §5 preconditions: every constraint has
// exactly two agents, every agent exactly one objective and at least one
// constraint, every objective at least two agents, and all objective
// coefficients equal 1.
func CheckStructured(in *mmlp.Instance) error {
	for i, c := range in.Cons {
		if len(c.Terms) != 2 {
			return fmt.Errorf("constraint %d has %d agents, want 2", i, len(c.Terms))
		}
	}
	for k, o := range in.Objs {
		if len(o.Terms) < 2 {
			return fmt.Errorf("objective %d has %d agents, want ≥ 2", k, len(o.Terms))
		}
		for _, t := range o.Terms {
			if t.Coef != 1 {
				return fmt.Errorf("objective %d has coefficient %v for agent %d, want 1", k, t.Coef, t.Agent)
			}
		}
	}
	inc := in.Incidence()
	for v := 0; v < in.NumAgents; v++ {
		if len(inc.ObjsOf[v]) != 1 {
			return fmt.Errorf("agent %d belongs to %d objectives, want 1", v, len(inc.ObjsOf[v]))
		}
		if len(inc.ConsOf[v]) == 0 {
			return fmt.Errorf("agent %d has no constraints", v)
		}
	}
	return nil
}
