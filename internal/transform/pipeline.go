// Package transform implements the locally computable reductions of §4 of
// the paper, which turn an arbitrary max-min LP into the structured form
// required by the algorithm of §5:
//
//	|Vi| = 2  for every constraint,
//	|Kv| = 1  for every agent,
//	|Vk| ≥ 2  for every objective,
//	c_kv = 1  for every objective coefficient.
//
// Each step produces a transformed instance together with a back-mapping
// that converts any feasible solution of the transformed instance into a
// feasible solution of the original whose utility is no smaller (up to the
// deliberate ΔI/2 scaling of the degree-reduction step §4.3). Steps compose
// into a Pipeline.
//
// The pipeline is built to run allocation-free in steady state: Preprocess
// and the five steps write their intermediate instances, index tables and
// back-map arrays into a per-worker Scratch arena (see PreprocessScratch
// and StructureScratch), and back-mappings are data-driven BackMap records
// applied through one shared routine rather than per-solve closures.
//
// The paper performs these rewrites inside each node's local view to keep
// the algorithm distributed; the rewrite rules themselves are deterministic
// and local (each looks only at a constant-radius neighbourhood), so
// applying them to the whole instance — as this package does — produces the
// same transformed network that the per-node views would stitch together.
package transform

import (
	"fmt"

	"repro/internal/mmlp"
)

// Step is one applied transformation.
type Step struct {
	// Name identifies the paper section, e.g. "§4.3 degree reduction".
	Name string
	// Out is the instance after the step.
	Out *mmlp.Instance
	// Back maps a solution of Out to a solution of the step's input.
	Back BackMap
}

// Pipeline is a composed sequence of transformation steps. A pipeline
// built by StructureScratch aliases the arena it was built in and is valid
// until the arena's next use.
type Pipeline struct {
	// Input is the original instance handed to Structure.
	Input *mmlp.Instance
	// Steps lists the applied transformations in application order.
	Steps []Step

	// bufA, bufB are the ping-pong buffers of Back, retained across calls.
	bufA, bufB []float64
}

// Final returns the instance after the last step (Input when no steps ran).
func (p *Pipeline) Final() *mmlp.Instance {
	if len(p.Steps) == 0 {
		return p.Input
	}
	return p.Steps[len(p.Steps)-1].Out
}

// Back maps a feasible solution of Final() back to the original instance by
// applying the step back-maps in reverse order. The result aliases the
// pipeline's reusable buffers (or x itself for an empty pipeline) and is
// valid until the next Back call; callers that keep it must copy it.
func (p *Pipeline) Back(x []float64) []float64 {
	for s := len(p.Steps) - 1; s >= 0; s-- {
		p.bufA = p.Steps[s].Back.ApplyInto(x, p.bufA)
		x = p.bufA
		p.bufA, p.bufB = p.bufB, p.bufA
	}
	return x
}

// Structure applies the full §4 pipeline (after Preprocess has removed
// degenerate nodes — see Preprocess; Structure requires a strictly valid
// input) and returns the composed pipeline. The final instance satisfies
// CheckStructured.
func Structure(in *mmlp.Instance) (*Pipeline, error) {
	return StructureScratch(in, nil)
}

// StructureScratch is Structure building every intermediate instance and
// back-map into sc's reusable arena (nil sc allocates a private one). The
// returned pipeline aliases sc and is valid until its next use; warm
// arenas make the whole §4 stage allocation-free.
func StructureScratch(in *mmlp.Instance, sc *Scratch) (*Pipeline, error) {
	if sc == nil {
		sc = NewScratch()
	}
	if err := in.ValidateStrict(); err != nil {
		return nil, fmt.Errorf("transform: input must be strictly valid (run Preprocess first): %w", err)
	}
	p := &sc.pl
	p.Input = in
	p.Steps = p.Steps[:0]
	cur := in
	var back BackMap
	cur, back = augmentSingletonConstraints(cur, sc, &sc.outs[0])
	p.Steps = append(p.Steps, Step{Name: "§4.2 augment singleton constraints", Out: cur, Back: back})
	cur, back = reduceConstraintDegree(cur, sc, &sc.outs[1])
	p.Steps = append(p.Steps, Step{Name: "§4.3 reduce constraint degree", Out: cur, Back: back})
	cur, back = splitAgentsPerObjective(cur, sc, &sc.outs[2])
	p.Steps = append(p.Steps, Step{Name: "§4.4 one objective per agent", Out: cur, Back: back})
	cur, back = augmentSingletonObjectives(cur, sc, &sc.outs[3])
	p.Steps = append(p.Steps, Step{Name: "§4.5 augment singleton objectives", Out: cur, Back: back})
	cur, back = normalizeCoefficients(cur, sc, &sc.outs[4])
	p.Steps = append(p.Steps, Step{Name: "§4.6 normalise coefficients", Out: cur, Back: back})
	if err := checkStructured(cur, sc); err != nil {
		return nil, fmt.Errorf("transform: pipeline did not reach structured form: %w", err)
	}
	return p, nil
}

// CheckStructured verifies the §5 preconditions: every constraint has
// exactly two agents, every agent exactly one objective and at least one
// constraint, every objective at least two agents, and all objective
// coefficients equal 1.
func CheckStructured(in *mmlp.Instance) error {
	return checkStructured(in, NewScratch())
}

// checkStructured is CheckStructured counting row memberships in sc's
// reusable arrays instead of materialising an Incidence.
func checkStructured(in *mmlp.Instance, sc *Scratch) error {
	for i, c := range in.Cons {
		if len(c.Terms) != 2 {
			return fmt.Errorf("constraint %d has %d agents, want 2", i, len(c.Terms))
		}
	}
	for k, o := range in.Objs {
		if len(o.Terms) < 2 {
			return fmt.Errorf("objective %d has %d agents, want ≥ 2", k, len(o.Terms))
		}
		for _, t := range o.Terms {
			if t.Coef != 1 {
				return fmt.Errorf("objective %d has coefficient %v for agent %d, want 1", k, t.Coef, t.Agent)
			}
		}
	}
	objCount := grow(&sc.countA, in.NumAgents)
	consCount := grow(&sc.countB, in.NumAgents)
	for v := 0; v < in.NumAgents; v++ {
		objCount[v], consCount[v] = 0, 0
	}
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			consCount[t.Agent]++
		}
	}
	for _, o := range in.Objs {
		for _, t := range o.Terms {
			objCount[t.Agent]++
		}
	}
	for v := 0; v < in.NumAgents; v++ {
		if objCount[v] != 1 {
			return fmt.Errorf("agent %d belongs to %d objectives, want 1", v, objCount[v])
		}
		if consCount[v] == 0 {
			return fmt.Errorf("agent %d has no constraints", v)
		}
	}
	return nil
}
