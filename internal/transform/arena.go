package transform

import (
	"math"

	"repro/internal/mmlp"
	"repro/internal/reuse"
)

// This file is the working-memory arena of the §4 pipeline. Every
// transformation step and Preprocess builds its output instance, its index
// tables and its back-map arrays into buffers owned by a per-worker
// Scratch, so a warm worker solving a steady stream of similarly-sized
// instances performs no heap allocations in the transform stage (the
// "Transform-stage scratch" ROADMAP item).

// grow is the shared arena-resize primitive.
func grow[T any](buf *[]T, n int) []T { return reuse.Grow(buf, n) }

// rowBuf accumulates rows of terms in one flat backing array: terms are
// appended, endRow seals the pending terms into the next row, and row
// carves the i-th row as a capacity-clamped subslice. Rows are only carved
// after all appends (see instArena.finish), so a mid-build reallocation of
// the backing can never strand a previously built row.
type rowBuf struct {
	terms []mmlp.Term
	off   []int32
}

func (b *rowBuf) reset() {
	b.terms = b.terms[:0]
	b.off = append(b.off[:0], 0)
}

// add appends one pending term to the row under construction.
func (b *rowBuf) add(agent int, coef float64) {
	b.terms = append(b.terms, mmlp.Term{Agent: agent, Coef: coef})
}

// addTerm is add for a prebuilt term.
func (b *rowBuf) addTerm(t mmlp.Term) { b.terms = append(b.terms, t) }

// copyRow appends ts as one complete row.
func (b *rowBuf) copyRow(ts []mmlp.Term) {
	b.terms = append(b.terms, ts...)
	b.endRow()
}

// endRow seals the pending terms into one row.
func (b *rowBuf) endRow() { b.off = append(b.off, int32(len(b.terms))) }

// pending reports how many terms have been added since the last seal.
func (b *rowBuf) pending() int { return len(b.terms) - int(b.off[len(b.off)-1]) }

func (b *rowBuf) rows() int { return len(b.off) - 1 }

func (b *rowBuf) row(i int) []mmlp.Term {
	return b.terms[b.off[i]:b.off[i+1]:b.off[i+1]]
}

// instArena builds one mmlp.Instance into reusable memory: the row headers
// and the flat term backings survive across solves, so rebuilding a
// similarly-shaped instance allocates nothing.
type instArena struct {
	inst mmlp.Instance
	cons rowBuf
	objs rowBuf
}

func (a *instArena) reset(numAgents int) {
	a.inst.NumAgents = numAgents
	a.cons.reset()
	a.objs.reset()
}

// finish carves the accumulated rows into the arena instance and returns
// it. The result aliases the arena: it is valid until the next reset.
func (a *instArena) finish() *mmlp.Instance {
	cons := grow(&a.inst.Cons, a.cons.rows())
	for i := range cons {
		cons[i] = mmlp.Constraint{Terms: a.cons.row(i)}
	}
	objs := grow(&a.inst.Objs, a.objs.rows())
	for k := range objs {
		objs[k] = mmlp.Objective{Terms: a.objs.row(k)}
	}
	return &a.inst
}

// incidence is a compact CSR encoding of mmlp.Incidence rebuilt per step
// into reusable arrays: row indices of agent v occupy idx[off[v]:off[v+1]],
// in increasing row order — the same order the allocating Incidence lists.
type incidence struct {
	consOff, consIdx []int32
	objsOff, objsIdx []int32
}

func (ic *incidence) build(in *mmlp.Instance) {
	n := in.NumAgents

	off := grow(&ic.consOff, n+1)
	for v := range off {
		off[v] = 0
	}
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			off[t.Agent+1]++
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	idx := grow(&ic.consIdx, int(off[n]))
	for i, c := range in.Cons {
		for _, t := range c.Terms {
			idx[off[t.Agent]] = int32(i)
			off[t.Agent]++
		}
	}
	// The fill advanced off[v] to the end of v's range; shift right to
	// restore starts (copy is overlap-safe).
	copy(off[1:], off[:n])
	off[0] = 0

	off = grow(&ic.objsOff, n+1)
	for v := range off {
		off[v] = 0
	}
	for _, o := range in.Objs {
		for _, t := range o.Terms {
			off[t.Agent+1]++
		}
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	idx = grow(&ic.objsIdx, int(off[n]))
	for k, o := range in.Objs {
		for _, t := range o.Terms {
			idx[off[t.Agent]] = int32(k)
			off[t.Agent]++
		}
	}
	copy(off[1:], off[:n])
	off[0] = 0
}

func (ic *incidence) consOf(v int) []int32 {
	return ic.consIdx[ic.consOff[v]:ic.consOff[v+1]]
}

func (ic *incidence) objsOf(v int) []int32 {
	return ic.objsIdx[ic.objsOff[v]:ic.objsOff[v+1]]
}

// capsInto is Instance.Caps into a reusable buffer.
func capsInto(in *mmlp.Instance, buf *[]float64) []float64 {
	caps := grow(buf, in.NumAgents)
	for v := range caps {
		caps[v] = math.Inf(1)
	}
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			if cap := 1 / t.Coef; cap < caps[t.Agent] {
				caps[t.Agent] = cap
			}
		}
	}
	return caps
}

// gadget records one §4.2 augmentation: the first of its three agents
// (s; t = s+1, u = s+2) and the coefficient M of its two objectives.
type gadget struct {
	s int32
	m float64
}

// Scratch is the reusable per-worker arena of the §4 pipeline: the
// intermediate instances of Preprocess and the five Structure steps, the
// incidence/counter tables the steps consult, and the divisor/parent/γ
// arrays backing the data-driven BackMaps. The zero value is ready; see
// NewScratch. Not safe for concurrent use.
//
// Everything returned by PreprocessScratch and StructureScratch — the
// Preprocessed record, the Pipeline, every Step.Out instance and every
// BackMap — aliases the arena and is valid only until the arena's next
// use. Callers that hand results out must copy them first (the engine
// does: solutions are lifted into fresh memory before they escape).
type Scratch struct {
	// Shared per-step work tables, freely reused between phases.
	inc     incidence
	caps    []float64
	countA  []int32
	countB  []int32
	boolV   []bool
	boolK   []bool
	idxA    []int32
	idxB    []int32
	acc     []mmlp.Term
	gadgets []gadget
	emit    emitState

	// Output instances: one arena per pipeline stage, so every stage's
	// input (the previous stage's output) stays alive while it builds.
	pre  instArena
	outs [5]instArena
	pp   Preprocessed
	pl   Pipeline

	// Back-map arrays live as long as the pipeline they belong to, so the
	// owning step has a dedicated slot rather than a shared work table.
	divisor     []float64
	parentSplit []int32
	parentAug   []int32
	gamma       []float64
}

// NewScratch returns an empty arena for one worker.
func NewScratch() *Scratch { return &Scratch{} }
