package transform

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mmlp"
	"repro/internal/simplex"
)

// randGeneral builds a random strictly valid instance with singleton and
// wide constraints, multi-objective agents and singleton objectives, i.e.
// everything the §4 pipeline has to clean up.
func randGeneral(rng *rand.Rand) *mmlp.Instance {
	n := 2 + rng.Intn(5)
	in := mmlp.New(n)
	// Guarantee strict validity: a private constraint and objective per agent.
	for v := 0; v < n; v++ {
		in.AddConstraint(float64(v), 0.5+rng.Float64())
		in.AddObjective(float64(v), 0.5+rng.Float64())
	}
	// Wide constraints.
	for r := 0; r < rng.Intn(3); r++ {
		size := 2 + rng.Intn(3)
		if size > n {
			size = n
		}
		perm := rng.Perm(n)[:size]
		pairs := make([]float64, 0, 2*size)
		for _, v := range perm {
			pairs = append(pairs, float64(v), 0.5+rng.Float64())
		}
		in.AddConstraint(pairs...)
	}
	// Multi-agent objectives (creating multi-objective agents).
	for r := 0; r < rng.Intn(3); r++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		in.AddObjective(float64(a), 0.5+rng.Float64(), float64(b), 0.5+rng.Float64())
	}
	return in
}

func optOf(t *testing.T, in *mmlp.Instance) float64 {
	t.Helper()
	r := simplex.SolveMaxMin(in)
	if r.Status != simplex.Optimal {
		t.Fatalf("simplex status %v", r.Status)
	}
	return r.Value
}

func TestPreprocessKeepsCleanInstance(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1)
	in.AddObjective(1, 1)
	pp := Preprocess(in)
	if pp.Outcome != OK {
		t.Fatalf("outcome = %v", pp.Outcome)
	}
	if pp.Out.NumAgents != 2 || len(pp.Out.Cons) != 1 || len(pp.Out.Objs) != 2 {
		t.Fatalf("clean instance was altered: %v", pp.Out.Stats())
	}
}

func TestPreprocessEmptyObjective(t *testing.T) {
	in := mmlp.New(1)
	in.AddConstraint(0, 1)
	in.Objs = append(in.Objs, mmlp.Objective{})
	pp := Preprocess(in)
	if pp.Outcome != ZeroOptimum {
		t.Fatalf("outcome = %v, want ZeroOptimum", pp.Outcome)
	}
	x := pp.Lift(nil)
	if len(x) != 1 || x[0] != 0 {
		t.Fatalf("lift = %v, want zeros", x)
	}
}

func TestPreprocessUnbounded(t *testing.T) {
	in := mmlp.New(1) // one unconstrained agent, one objective on it
	in.AddObjective(0, 1)
	pp := Preprocess(in)
	if pp.Outcome != UnboundedOptimum {
		t.Fatalf("outcome = %v, want UnboundedOptimum", pp.Outcome)
	}
}

func TestPreprocessDropsUnconstrainedObjectiveAndBoosts(t *testing.T) {
	// Agent 0 constrained with objective; agent 1 unconstrained, shares an
	// objective with agent 0 → that objective is dropped and agent 1 boosted.
	in := mmlp.New(2)
	in.AddConstraint(0, 2) // x0 ≤ 1/2
	in.AddObjective(0, 1)
	in.AddObjective(0, 1, 1, 4)
	pp := Preprocess(in)
	if pp.Outcome != OK {
		t.Fatalf("outcome = %v", pp.Outcome)
	}
	if pp.Out.NumAgents != 1 || len(pp.Out.Objs) != 1 {
		t.Fatalf("reduced shape wrong: %v", pp.Out.Stats())
	}
	x := pp.Lift([]float64{0.5})
	if err := in.CheckFeasible(x, 1e-12); err != nil {
		t.Fatalf("lifted infeasible: %v", err)
	}
	if got := in.Utility(x); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("lifted utility = %v, want 0.5", got)
	}
}

func TestPreprocessRemovesEmptyConstraint(t *testing.T) {
	in := mmlp.New(1)
	in.Cons = append(in.Cons, mmlp.Constraint{})
	in.AddConstraint(0, 1)
	in.AddObjective(0, 1)
	pp := Preprocess(in)
	if pp.Outcome != OK || len(pp.Out.Cons) != 1 {
		t.Fatalf("empty constraint not removed: %+v", pp)
	}
}

func TestPreprocessZeroesNonContributing(t *testing.T) {
	// Agent 1 has a constraint but no objective → dropped, x=0.
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1)
	pp := Preprocess(in)
	if pp.Outcome != OK || pp.Out.NumAgents != 1 {
		t.Fatalf("non-contributing agent kept: %+v", pp.Out.Stats())
	}
	x := pp.Lift([]float64{1})
	if x[1] != 0 {
		t.Fatalf("dropped agent got %v, want 0", x[1])
	}
	if err := in.CheckFeasible(x, 1e-12); err != nil {
		t.Fatalf("lift infeasible: %v", err)
	}
}

func TestAugmentSingletonConstraintsShape(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1)       // singleton → gadget
	in.AddConstraint(0, 1, 1, 1) // fine
	in.AddObjective(0, 1, 1, 1)
	out, back := AugmentSingletonConstraints(in)
	if out.NumAgents != 5 {
		t.Fatalf("agents = %d, want 5", out.NumAgents)
	}
	for i, c := range out.Cons {
		if len(c.Terms) < 2 {
			t.Fatalf("constraint %d still singleton", i)
		}
	}
	if len(out.Objs) != 3 {
		t.Fatalf("objectives = %d, want 3", len(out.Objs))
	}
	x := back.Apply([]float64{0.25, 0.5, 0, 0.5, 0.5})
	if len(x) != 2 || x[0] != 0.25 || x[1] != 0.5 {
		t.Fatalf("back = %v", x)
	}
}

func TestAugmentSingletonConstraintsPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		in := randGeneral(rng)
		out, back := AugmentSingletonConstraints(in)
		a, b := optOf(t, in), optOf(t, out)
		if math.Abs(a-b) > 1e-6*math.Max(1, a) {
			t.Fatalf("optimum changed: %v -> %v", a, b)
		}
		// Back-mapped optimal solution is feasible with utility ≥ opt'.
		r := simplex.SolveMaxMin(out)
		x := back.Apply(r.X)
		if err := in.CheckFeasible(x, 1e-7); err != nil {
			t.Fatalf("back-mapped infeasible: %v", err)
		}
		if got := in.Utility(x); got < b-1e-6 {
			t.Fatalf("utility dropped: %v < %v", got, b)
		}
	}
}

func TestReduceConstraintDegreeShape(t *testing.T) {
	in := mmlp.New(3)
	in.AddConstraint(0, 1, 1, 2, 2, 3) // size 3 → 3 pairs
	in.AddObjective(0, 1, 1, 1, 2, 1)
	out, _ := ReduceConstraintDegree(in)
	if len(out.Cons) != 3 {
		t.Fatalf("constraints = %d, want 3", len(out.Cons))
	}
	for i, c := range out.Cons {
		if len(c.Terms) != 2 {
			t.Fatalf("constraint %d has %d terms", i, len(c.Terms))
		}
	}
}

func TestReduceConstraintDegreeBackMapFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		in := randGeneral(rng)
		out, back := ReduceConstraintDegree(in)
		// Transformed optimum is at least the original optimum…
		a, b := optOf(t, in), optOf(t, out)
		if b < a-1e-6 {
			t.Fatalf("opt' = %v < opt = %v", b, a)
		}
		// …and the back-mapped solution is feasible with utility ≥ 2/ΔI · ω'.
		r := simplex.SolveMaxMin(out)
		x := back.Apply(r.X)
		if err := in.CheckFeasible(x, 1e-7); err != nil {
			t.Fatalf("back-mapped infeasible: %v", err)
		}
		dI := float64(in.DegreeI())
		if dI < 2 {
			dI = 2
		}
		if got := in.Utility(x); got < 2*b/dI-1e-6 {
			t.Fatalf("utility %v below 2ω'/ΔI = %v", got, 2*b/dI)
		}
	}
}

func TestSplitAgentsPerObjectiveShape(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 1)
	in.AddObjective(0, 2, 1, 1)
	out, back := SplitAgentsPerObjective(in)
	// Agent 0 has 2 objectives → 2 copies; agent 1 has 1 → 1 copy.
	if out.NumAgents != 3 {
		t.Fatalf("agents = %d, want 3", out.NumAgents)
	}
	// Constraint {0,1} → 2×1 copies.
	if len(out.Cons) != 2 {
		t.Fatalf("constraints = %d, want 2", len(out.Cons))
	}
	inc := out.Incidence()
	for v := 0; v < out.NumAgents; v++ {
		if len(inc.ObjsOf[v]) != 1 {
			t.Fatalf("copy %d has %d objectives", v, len(inc.ObjsOf[v]))
		}
	}
	x := back.Apply([]float64{0.3, 0.6, 0.2})
	if x[0] != 0.6 {
		t.Fatalf("back did not take max: %v", x)
	}
}

func TestSplitAgentsPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		in := randGeneral(rng)
		pre, _ := ReduceConstraintDegree(in)
		out, back := SplitAgentsPerObjective(pre)
		a, b := optOf(t, pre), optOf(t, out)
		if math.Abs(a-b) > 1e-6*math.Max(1, a) {
			t.Fatalf("optimum changed: %v -> %v", a, b)
		}
		r := simplex.SolveMaxMin(out)
		x := back.Apply(r.X)
		if err := pre.CheckFeasible(x, 1e-7); err != nil {
			t.Fatalf("back-mapped infeasible: %v", err)
		}
		if got := pre.Utility(x); got < b-1e-6 {
			t.Fatalf("utility dropped: %v < %v", got, b)
		}
	}
}

func TestAugmentSingletonObjectivesShape(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 2) // singleton → split agent 0
	in.AddObjective(1, 1, 0, 1)
	// |Kv|=1 violated for agent 0 here, but the step only requires it for
	// correctness of the "charge copy t" branch; build a conforming input:
	in = mmlp.New(2)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(0, 2)
	in.AddObjective(1, 1)
	out, back := AugmentSingletonObjectives(in)
	// Both agents are in singleton objectives → both split → 4 agents.
	if out.NumAgents != 4 {
		t.Fatalf("agents = %d, want 4", out.NumAgents)
	}
	// Constraint {0,1} → 4 combinations.
	if len(out.Cons) != 4 {
		t.Fatalf("constraints = %d, want 4", len(out.Cons))
	}
	for k, o := range out.Objs {
		if len(o.Terms) != 2 {
			t.Fatalf("objective %d still singleton", k)
		}
	}
	// Halved coefficients.
	if out.Objs[0].Terms[0].Coef != 1 {
		t.Fatalf("coef = %v, want 1", out.Objs[0].Terms[0].Coef)
	}
	x := back.Apply([]float64{0.1, 0.4, 0.2, 0.3})
	if x[0] != 0.4 || x[1] != 0.3 {
		t.Fatalf("back = %v", x)
	}
}

func TestAugmentSingletonObjectivesPreservesOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		in := randGeneral(rng)
		pre1, _ := ReduceConstraintDegree(in)
		pre2, _ := SplitAgentsPerObjective(pre1)
		out, back := AugmentSingletonObjectives(pre2)
		a, b := optOf(t, pre2), optOf(t, out)
		if math.Abs(a-b) > 1e-6*math.Max(1, a) {
			t.Fatalf("optimum changed: %v -> %v", a, b)
		}
		r := simplex.SolveMaxMin(out)
		x := back.Apply(r.X)
		if err := pre2.CheckFeasible(x, 1e-7); err != nil {
			t.Fatalf("back-mapped infeasible: %v", err)
		}
		if got := pre2.Utility(x); got < b-1e-6 {
			t.Fatalf("utility dropped: %v < %v", got, b)
		}
	}
}

func TestNormalizeCoefficients(t *testing.T) {
	in := mmlp.New(2)
	in.AddConstraint(0, 3, 1, 1)
	in.AddObjective(0, 2, 1, 4)
	out, back := NormalizeCoefficients(in)
	for _, o := range out.Objs {
		for _, tm := range o.Terms {
			if tm.Coef != 1 {
				t.Fatalf("objective coef = %v, want 1", tm.Coef)
			}
		}
	}
	// a'_00 = 3/2, a'_01 = 1/4.
	if out.Cons[0].Terms[0].Coef != 1.5 || out.Cons[0].Terms[1].Coef != 0.25 {
		t.Fatalf("constraint coefs = %+v", out.Cons[0].Terms)
	}
	// Back-map divides by γ.
	x := back.Apply([]float64{1, 1})
	if x[0] != 0.5 || x[1] != 0.25 {
		t.Fatalf("back = %v", x)
	}
	a, b := optOf(t, in), optOf(t, out)
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("optimum changed: %v -> %v", a, b)
	}
}

func TestStructureReachesStructuredForm(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		in := randGeneral(rng)
		p, err := Structure(in)
		if err != nil {
			t.Fatalf("Structure: %v", err)
		}
		if err := CheckStructured(p.Final()); err != nil {
			t.Fatalf("not structured: %v", err)
		}
	}
}

func TestStructureEndToEndRatio(t *testing.T) {
	// The composed pipeline must satisfy: for any feasible x' of the final
	// instance, back(x') is feasible and
	// ω(back(x')) ≥ (2/ΔI) ω'(x'). With x' optimal and opt' ≥ opt this is
	// the α → α·ΔI/2 guarantee of §4.3.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 15; trial++ {
		in := randGeneral(rng)
		p, err := Structure(in)
		if err != nil {
			t.Fatalf("Structure: %v", err)
		}
		final := p.Final()
		r := simplex.SolveMaxMin(final)
		if r.Status != simplex.Optimal {
			t.Fatalf("simplex on final: %v", r.Status)
		}
		x := p.Back(r.X)
		if err := in.CheckFeasible(x, 1e-6); err != nil {
			t.Fatalf("end-to-end back-map infeasible: %v", err)
		}
		dI := math.Max(2, float64(in.DegreeI()))
		opt := optOf(t, in)
		got := in.Utility(x)
		if got < 2*opt/dI-1e-6 {
			t.Fatalf("end-to-end utility %v below 2·opt/ΔI = %v (opt=%v)", got, 2*opt/dI, opt)
		}
		// The final instance's optimum upper-bounds the original's.
		if r.Value < opt-1e-6 {
			t.Fatalf("opt(final) = %v < opt = %v", r.Value, opt)
		}
	}
}

func TestStructureRejectsDegenerateInput(t *testing.T) {
	in := mmlp.New(1)
	in.AddObjective(0, 1) // unconstrained agent
	if _, err := Structure(in); err == nil {
		t.Fatal("degenerate input accepted")
	}
}

func TestPipelineFinalOnEmptyPipeline(t *testing.T) {
	in := mmlp.New(1)
	p := &Pipeline{Input: in}
	if p.Final() != in {
		t.Fatal("Final on empty pipeline should return the input")
	}
	x := p.Back([]float64{1})
	if len(x) != 1 || x[0] != 1 {
		t.Fatalf("Back on empty pipeline = %v", x)
	}
}

func TestCheckStructuredDiagnoses(t *testing.T) {
	bad := mmlp.New(1)
	bad.AddConstraint(0, 1)
	bad.AddObjective(0, 1)
	if err := CheckStructured(bad); err == nil {
		t.Fatal("singleton constraint accepted")
	}
	bad2 := mmlp.New(2)
	bad2.AddConstraint(0, 1, 1, 1)
	bad2.AddObjective(0, 1, 1, 2) // coef ≠ 1
	if err := CheckStructured(bad2); err == nil {
		t.Fatal("non-unit objective coefficient accepted")
	}
	bad3 := mmlp.New(2)
	bad3.AddConstraint(0, 1, 1, 1)
	bad3.AddObjective(0, 1, 1, 1)
	bad3.AddObjective(0, 1, 1, 1) // agent in two objectives
	if err := CheckStructured(bad3); err == nil {
		t.Fatal("multi-objective agent accepted")
	}
}

// Figure 2 golden tests: the four graph rewrites shown in the paper.
func TestFigure2SingletonConstraintGadget(t *testing.T) {
	// Left-most panel: v—i with |Vi|=1 grows the 6-node gadget.
	in := mmlp.New(1)
	in.AddConstraint(0, 1)
	in.AddObjective(0, 1)
	out, _ := AugmentSingletonConstraints(in)
	// Nodes: v + {s,t,u}; rows: i (now {v,s}), j ({t,u}); objectives: k, h, ℓ.
	if out.NumAgents != 4 || len(out.Cons) != 2 || len(out.Objs) != 3 {
		t.Fatalf("gadget shape wrong: %v", out.Stats())
	}
	if len(out.Cons[0].Terms) != 2 || len(out.Cons[1].Terms) != 2 {
		t.Fatalf("gadget constraint sizes wrong")
	}
	// Setting x_s=0, x_t=x_u=1/2 keeps the gadget objectives ≥ M ≥ opt and
	// leaves the original untouched (the paper's argument for opt'=opt).
	x := []float64{1, 0, 0.5, 0.5}
	if err := out.CheckFeasible(x, 1e-12); err != nil {
		t.Fatalf("paper's canonical completion infeasible: %v", err)
	}
}

func TestFigure2DegreeReductionTriangle(t *testing.T) {
	// Second panel: |Vi| = 3 becomes a triangle of three pairwise rows.
	in := mmlp.New(3)
	in.AddConstraint(0, 1, 1, 1, 2, 1)
	in.AddObjective(0, 1, 1, 1, 2, 1)
	out, _ := ReduceConstraintDegree(in)
	if len(out.Cons) != 3 {
		t.Fatalf("triangle has %d rows, want 3", len(out.Cons))
	}
	seen := map[[2]int]bool{}
	for _, c := range out.Cons {
		seen[[2]int{c.Terms[0].Agent, c.Terms[1].Agent}] = true
	}
	for _, want := range [][2]int{{0, 1}, {0, 2}, {1, 2}} {
		if !seen[want] {
			t.Fatalf("missing pair %v; have %v", want, seen)
		}
	}
}
