package transform

import (
	"math"

	"repro/internal/mmlp"
)

// Outcome classifies what preprocessing discovered about an instance.
type Outcome int

// Preprocessing outcomes.
const (
	// OK: the reduced instance is strictly valid and the optimum of the
	// original equals the optimum of the reduced instance.
	OK Outcome = iota
	// ZeroOptimum: some objective row is empty, so ω(x) = 0 for every x;
	// the all-zero vector is optimal and no reduced instance is produced.
	ZeroOptimum
	// UnboundedOptimum: every objective can be pushed arbitrarily high by
	// unconstrained agents; no reduced instance is produced.
	UnboundedOptimum
)

// Preprocessed is the result of Preprocess: a strictly valid reduced
// instance plus the bookkeeping to lift solutions back to the original.
// A record produced by PreprocessScratch aliases the arena it was built
// in and is valid until the arena's next use.
type Preprocessed struct {
	// Outcome tells whether a reduced instance exists.
	Outcome Outcome
	// Out is the reduced instance (nil unless Outcome == OK).
	Out *mmlp.Instance
	// origAgents is the original agent count.
	origAgents int
	// keepAgent maps reduced agent index → original agent index.
	keepAgent []int
	// boost lists, per removed objective, one unconstrained original agent
	// and the objective coefficient tying it to that objective; the lift
	// sets the agent high enough to cover the achieved utility.
	boost []boostEntry
}

type boostEntry struct {
	agent int
	coef  float64
}

// Preprocess removes the degenerate structures enumerated at the start of
// §4: empty constraints are dropped; an empty objective forces the optimum
// to zero; agents with no constraints ("unconstrained") let every objective
// containing them reach any value, so those objectives are dropped; agents
// that then contribute to no objective are fixed to zero and removed. The
// reduced instance, when one exists, is strictly valid and has the same
// optimum as the original.
func Preprocess(in *mmlp.Instance) *Preprocessed {
	return PreprocessScratch(in, nil)
}

// PreprocessScratch is Preprocess building the reduced instance and the
// lift bookkeeping into sc's reusable arena (nil sc allocates a private
// one). The returned record aliases sc and is valid until its next use.
func PreprocessScratch(in *mmlp.Instance, sc *Scratch) *Preprocessed {
	if sc == nil {
		sc = NewScratch()
	}
	pp := &sc.pp
	pp.Outcome = OK
	pp.Out = nil
	pp.origAgents = in.NumAgents
	pp.keepAgent = pp.keepAgent[:0]
	pp.boost = pp.boost[:0]

	for _, o := range in.Objs {
		if len(o.Terms) == 0 {
			pp.Outcome = ZeroOptimum
			return pp
		}
	}

	// consCount[v] == 0 ⇔ v is unconstrained.
	consCount := grow(&sc.countA, in.NumAgents)
	for v := range consCount {
		consCount[v] = 0
	}
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			consCount[t.Agent]++
		}
	}

	// Objectives containing an unconstrained agent can reach any value.
	keepObj := grow(&sc.boolK, len(in.Objs))
	kept := 0
	for k, o := range in.Objs {
		keepObj[k] = true
		for _, t := range o.Terms {
			if consCount[t.Agent] == 0 {
				keepObj[k] = false
				pp.boost = append(pp.boost, boostEntry{agent: t.Agent, coef: t.Coef})
				break
			}
		}
		if keepObj[k] {
			kept++
		}
	}
	if kept == 0 {
		pp.Outcome = UnboundedOptimum
		return pp
	}

	// Agents contributing to no kept objective are fixed to zero; dropping
	// them only relaxes constraints.
	contributes := grow(&sc.boolV, in.NumAgents)
	for v := range contributes {
		contributes[v] = false
	}
	for k, o := range in.Objs {
		if !keepObj[k] {
			continue
		}
		for _, t := range o.Terms {
			contributes[t.Agent] = true
		}
	}

	newIndex := grow(&sc.idxA, in.NumAgents)
	na := 0
	for v := 0; v < in.NumAgents; v++ {
		if contributes[v] {
			newIndex[v] = int32(na)
			pp.keepAgent = append(pp.keepAgent, v)
			na++
		} else {
			newIndex[v] = -1
		}
	}
	a := &sc.pre
	a.reset(na)
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			if newIndex[t.Agent] >= 0 {
				a.cons.add(int(newIndex[t.Agent]), t.Coef)
			}
		}
		if a.cons.pending() > 0 {
			a.cons.endRow()
		}
	}
	for k, o := range in.Objs {
		if !keepObj[k] {
			continue
		}
		for _, t := range o.Terms {
			a.objs.add(int(newIndex[t.Agent]), t.Coef)
		}
		a.objs.endRow()
	}
	pp.Outcome = OK
	pp.Out = a.finish()
	return pp
}

// Lift converts a feasible solution of the reduced instance into a feasible
// solution of the original with at least the same utility: kept agents copy
// their values, dropped agents are zero, and one unconstrained agent per
// dropped objective is raised so that the dropped objective matches the
// utility the reduced solution achieves. For ZeroOptimum the all-zero
// vector is returned (x may be nil in that case). The result is freshly
// allocated — it never aliases the arena the record was built in.
func (pp *Preprocessed) Lift(x []float64) []float64 {
	full := make([]float64, pp.origAgents)
	if pp.Outcome != OK {
		return full
	}
	for r, v := range pp.keepAgent {
		full[v] = x[r]
	}
	util := pp.Out.Utility(x)
	if math.IsInf(util, 1) || util <= 0 {
		return full
	}
	for _, b := range pp.boost {
		if need := util / b.coef; full[b.agent] < need {
			full[b.agent] = need
		}
	}
	return full
}
