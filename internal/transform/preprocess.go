package transform

import (
	"math"

	"repro/internal/mmlp"
)

// Outcome classifies what preprocessing discovered about an instance.
type Outcome int

// Preprocessing outcomes.
const (
	// OK: the reduced instance is strictly valid and the optimum of the
	// original equals the optimum of the reduced instance.
	OK Outcome = iota
	// ZeroOptimum: some objective row is empty, so ω(x) = 0 for every x;
	// the all-zero vector is optimal and no reduced instance is produced.
	ZeroOptimum
	// UnboundedOptimum: every objective can be pushed arbitrarily high by
	// unconstrained agents; no reduced instance is produced.
	UnboundedOptimum
)

// Preprocessed is the result of Preprocess: a strictly valid reduced
// instance plus the bookkeeping to lift solutions back to the original.
type Preprocessed struct {
	// Outcome tells whether a reduced instance exists.
	Outcome Outcome
	// Out is the reduced instance (nil unless Outcome == OK).
	Out *mmlp.Instance
	// origAgents is the original agent count.
	origAgents int
	// keepAgent maps reduced agent index → original agent index.
	keepAgent []int
	// boost lists, per removed objective, one unconstrained original agent
	// and the objective coefficient tying it to that objective; the lift
	// sets the agent high enough to cover the achieved utility.
	boost []boostEntry
}

type boostEntry struct {
	agent int
	coef  float64
}

// Preprocess removes the degenerate structures enumerated at the start of
// §4: empty constraints are dropped; an empty objective forces the optimum
// to zero; agents with no constraints ("unconstrained") let every objective
// containing them reach any value, so those objectives are dropped; agents
// that then contribute to no objective are fixed to zero and removed. The
// reduced instance, when one exists, is strictly valid and has the same
// optimum as the original.
func Preprocess(in *mmlp.Instance) *Preprocessed {
	pp := &Preprocessed{origAgents: in.NumAgents}

	for _, o := range in.Objs {
		if len(o.Terms) == 0 {
			pp.Outcome = ZeroOptimum
			return pp
		}
	}

	inc := in.Incidence()
	unconstrained := make([]bool, in.NumAgents)
	for v := 0; v < in.NumAgents; v++ {
		unconstrained[v] = len(inc.ConsOf[v]) == 0
	}

	// Objectives containing an unconstrained agent can reach any value.
	keepObj := make([]bool, len(in.Objs))
	kept := 0
	for k, o := range in.Objs {
		keepObj[k] = true
		for _, t := range o.Terms {
			if unconstrained[t.Agent] {
				keepObj[k] = false
				pp.boost = append(pp.boost, boostEntry{agent: t.Agent, coef: t.Coef})
				break
			}
		}
		if keepObj[k] {
			kept++
		}
	}
	if kept == 0 {
		pp.Outcome = UnboundedOptimum
		return pp
	}

	// Agents contributing to no kept objective are fixed to zero; dropping
	// them only relaxes constraints.
	contributes := make([]bool, in.NumAgents)
	for k, o := range in.Objs {
		if !keepObj[k] {
			continue
		}
		for _, t := range o.Terms {
			contributes[t.Agent] = true
		}
	}

	newIndex := make([]int, in.NumAgents)
	for v := range newIndex {
		newIndex[v] = -1
	}
	out := mmlp.New(0)
	for v := 0; v < in.NumAgents; v++ {
		if contributes[v] {
			newIndex[v] = out.NumAgents
			pp.keepAgent = append(pp.keepAgent, v)
			out.NumAgents++
		}
	}
	for _, c := range in.Cons {
		var terms []mmlp.Term
		for _, t := range c.Terms {
			if newIndex[t.Agent] >= 0 {
				terms = append(terms, mmlp.Term{Agent: newIndex[t.Agent], Coef: t.Coef})
			}
		}
		if len(terms) > 0 {
			out.Cons = append(out.Cons, mmlp.Constraint{Terms: terms})
		}
	}
	for k, o := range in.Objs {
		if !keepObj[k] {
			continue
		}
		terms := make([]mmlp.Term, 0, len(o.Terms))
		for _, t := range o.Terms {
			terms = append(terms, mmlp.Term{Agent: newIndex[t.Agent], Coef: t.Coef})
		}
		out.Objs = append(out.Objs, mmlp.Objective{Terms: terms})
	}
	pp.Outcome = OK
	pp.Out = out
	return pp
}

// Lift converts a feasible solution of the reduced instance into a feasible
// solution of the original with at least the same utility: kept agents copy
// their values, dropped agents are zero, and one unconstrained agent per
// dropped objective is raised so that the dropped objective matches the
// utility the reduced solution achieves. For ZeroOptimum the all-zero
// vector is returned (x may be nil in that case).
func (pp *Preprocessed) Lift(x []float64) []float64 {
	full := make([]float64, pp.origAgents)
	if pp.Outcome != OK {
		return full
	}
	for r, v := range pp.keepAgent {
		full[v] = x[r]
	}
	util := pp.Out.Utility(x)
	if math.IsInf(util, 1) || util <= 0 {
		return full
	}
	for _, b := range pp.boost {
		if need := util / b.coef; full[b.agent] < need {
			full[b.agent] = need
		}
	}
	return full
}
