package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mmlp"
)

// randFeasible produces a random feasible point of in.
func randFeasible(rng *rand.Rand, in *mmlp.Instance) []float64 {
	x := make([]float64, in.NumAgents)
	for v := range x {
		x[v] = rng.Float64() * 2
	}
	return in.Strictify(x)
}

func TestQuickPipelineBackMapsFeasiblePoints(t *testing.T) {
	// For ANY feasible point of the structured instance — not only optimal
	// ones — the composed back-map yields a feasible point of the original
	// with ω ≥ 2ω′/max(2,ΔI). This is the pointwise version of §4.3's
	// approximation accounting.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randGeneral(rng)
		p, err := Structure(in)
		if err != nil {
			return false
		}
		final := p.Final()
		xp := randFeasible(rng, final)
		x := p.Back(xp)
		if in.CheckFeasible(x, 1e-7) != nil {
			return false
		}
		dI := math.Max(2, float64(in.DegreeI()))
		return in.Utility(x) >= 2*final.Utility(xp)/dI-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPreprocessLiftKeepsUtility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Possibly degenerate: drop some rows from a valid instance.
		in := randGeneral(rng)
		if len(in.Cons) > 1 && rng.Intn(2) == 0 {
			in.Cons = in.Cons[:len(in.Cons)-1]
		}
		pp := Preprocess(in)
		if pp.Outcome != OK {
			return true // nothing to lift
		}
		x := randFeasible(rng, pp.Out)
		lifted := pp.Lift(x)
		if in.CheckFeasible(lifted, 1e-7) != nil {
			return false
		}
		return in.Utility(lifted) >= pp.Out.Utility(x)-1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStructuredInstanceInvariants(t *testing.T) {
	// The pipeline's output always satisfies the §5 preconditions, and its
	// ΔK never exceeds max(2, ΔK of the input).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randGeneral(rng)
		p, err := Structure(in)
		if err != nil {
			return false
		}
		final := p.Final()
		if CheckStructured(final) != nil {
			return false
		}
		maxK := in.DegreeK()
		if maxK < 2 {
			maxK = 2
		}
		return final.DegreeK() <= maxK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
