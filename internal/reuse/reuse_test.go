package reuse

import "testing"

func TestGrowReusesCapacity(t *testing.T) {
	var buf []int
	a := Grow(&buf, 4)
	if len(a) != 4 || len(buf) != 4 {
		t.Fatalf("len = %d/%d, want 4", len(a), len(buf))
	}
	a[3] = 7
	b := Grow(&buf, 2)
	if len(b) != 2 || &b[0] != &a[0] {
		t.Fatal("shrinking reallocated")
	}
	c := Grow(&buf, 4)
	if &c[0] != &a[0] || c[3] != 7 {
		t.Fatal("regrow within capacity reallocated or cleared")
	}
	d := Grow(&buf, 8)
	if len(d) != 8 {
		t.Fatalf("len = %d, want 8", len(d))
	}
	if avg := testing.AllocsPerRun(50, func() { Grow(&buf, 8) }); avg > 0 {
		t.Fatalf("warm Grow allocates %.1f objects", avg)
	}
}
