// Package reuse holds the one slice-recycling primitive every scratch
// arena in the repository is built on, so the resize-without-reallocating
// semantics live in exactly one place.
package reuse

// Grow returns *buf resized to n with unspecified contents, reallocating
// only when capacity is short. The resized slice is also stored back into
// *buf, so the caller's arena keeps the grown backing for the next use.
func Grow[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
