package unfold

import (
	"testing"

	"repro/internal/bipartite"
	"repro/internal/gen"
	"repro/internal/mmlp"
)

// pathGraph: V0 -I- V1 -K- V2 (alternating path), a tree.
func pathGraph() *bipartite.Graph {
	in := mmlp.New(3)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(1, 1, 2, 1)
	return bipartite.FromInstance(in)
}

func TestUnfoldingOfTreeIsTheTree(t *testing.T) {
	// §3 remark 2: the unfolding is finite iff G is a tree — and then it
	// is G itself (from any root).
	g := pathGraph()
	for root := 0; root < g.NumNodes(); root++ {
		tr := Truncated(g, bipartite.Node(root), 10)
		if tr.Size() != g.NumNodes() {
			t.Fatalf("root %d: unfolding size %d, want %d", root, tr.Size(), g.NumNodes())
		}
		if err := tr.Verify(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnfoldingOfCycleIsAPath(t *testing.T) {
	// A cycle unfolds into an infinite path; the truncation at depth d has
	// exactly 2d+1 nodes (two arms from the root).
	in := mmlp.New(4)
	in.AddConstraint(0, 1, 1, 1)
	in.AddObjective(1, 1, 2, 1)
	in.AddConstraint(2, 1, 3, 1)
	in.AddObjective(3, 1, 0, 1)
	g := bipartite.FromInstance(in)
	for _, d := range []int{1, 3, 7} {
		tr := Truncated(g, g.AgentNode(0), d)
		if tr.Size() != 2*d+1 {
			t.Fatalf("depth %d: size %d, want %d", d, tr.Size(), 2*d+1)
		}
		if err := tr.Verify(g); err != nil {
			t.Fatal(err)
		}
		counts := tr.CountAtDepth()
		for depth := 1; depth <= d; depth++ {
			if counts[depth] != 2 {
				t.Fatalf("depth %d has %d nodes, want 2 (a path)", depth, counts[depth])
			}
		}
	}
}

func TestUnfoldingGrowsWithBranching(t *testing.T) {
	// On the tri-necklace (agents of degree 2, objectives of degree 3) the
	// unfolding grows strictly with depth and verifies structurally.
	g := bipartite.FromInstance(gen.TriNecklace(6))
	prev := 0
	for _, d := range []int{1, 2, 4, 6} {
		tr := Truncated(g, g.AgentNode(0), d)
		if tr.Size() <= prev {
			t.Fatalf("depth %d: size %d did not grow from %d", d, tr.Size(), prev)
		}
		prev = tr.Size()
		if err := tr.Verify(g); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUnfoldingInheritsPortsDeterministically(t *testing.T) {
	// §3 remark 4: same graph, same root → identical unfolding (children
	// in port order).
	g := bipartite.FromInstance(gen.TriNecklace(4))
	a := Truncated(g, g.AgentNode(2), 5)
	b := Truncated(g, g.AgentNode(2), 5)
	if a.Size() != b.Size() {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Vertex {
		if a.Vertex[i] != b.Vertex[i] || a.PortFromParent[i] != b.PortFromParent[i] {
			t.Fatalf("non-deterministic node %d", i)
		}
	}
}

func TestProjectSolution(t *testing.T) {
	// §3 remark 7: a feasible solution of G lifts to the unfolding by
	// inheritance; every occurrence of an agent carries its value.
	g := bipartite.FromInstance(gen.TriNecklace(4))
	x := make([]float64, g.NumAgents())
	for v := range x {
		x[v] = float64(v) / 10
	}
	tr := Truncated(g, g.AgentNode(0), 6)
	y := tr.ProjectSolution(g, x)
	for i, v := range tr.Vertex {
		if g.Kind(v) == bipartite.KindAgent {
			if y[i] != x[g.Index(v)] {
				t.Fatalf("occurrence %d of agent %d has %v, want %v", i, g.Index(v), y[i], x[g.Index(v)])
			}
		} else if y[i] != 0 {
			t.Fatalf("non-agent occurrence %d has %v", i, y[i])
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	g := bipartite.FromInstance(gen.TriNecklace(4))
	tr := Truncated(g, g.AgentNode(0), 3)
	tr.Depth[2] = 9
	if err := tr.Verify(g); err == nil {
		t.Fatal("corrupted depth accepted")
	}
}
