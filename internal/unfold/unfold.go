// Package unfold materialises the unfolding of §3 of the paper: the tree
// whose nodes are the non-backtracking walks of a finite communication
// graph starting at a root. The algorithm itself never builds this tree —
// the core package walks it implicitly and the dist package gathers it as
// anonymous views — but the explicit construction lets the tests check the
// remarks of §3 (the unfolding is a tree; it is finite iff the graph is a
// tree; types, ports and coefficients are inherited; solutions transfer).
package unfold

import (
	"fmt"

	"repro/internal/bipartite"
)

// Tree is a truncated unfolding: node 0 is the root walk (just the root
// vertex); every other node extends its parent's walk by one edge.
type Tree struct {
	// Parent[i] is the tree parent of node i (-1 for the root).
	Parent []int
	// Vertex[i] is the underlying graph vertex (the walk's end node).
	Vertex []bipartite.Node
	// Depth[i] is the walk length.
	Depth []int
	// PortFromParent[i] is the port of Parent's vertex through which the
	// walk was extended (-1 for the root); the unfolding inherits the port
	// numbering this way (§3, remark 4).
	PortFromParent []int
}

// Truncated builds the unfolding of g rooted at root, keeping walks of
// length at most depth. Children are generated in port order, so the tree
// is canonical for a given port numbering.
func Truncated(g *bipartite.Graph, root bipartite.Node, depth int) *Tree {
	t := &Tree{
		Parent:         []int{-1},
		Vertex:         []bipartite.Node{root},
		Depth:          []int{0},
		PortFromParent: []int{-1},
	}
	// BFS over walks; lastEdge identifies the edge to the parent as the
	// (min endpoint, max endpoint, parent port) triple — non-backtracking
	// forbids reusing exactly that edge.
	type frame struct {
		node     int
		fromPort int // port of Vertex[node] that leads back to the parent, -1 at root
	}
	queue := []frame{{0, -1}}
	for head := 0; head < len(queue); head++ {
		f := queue[head]
		if t.Depth[f.node] == depth {
			continue
		}
		v := t.Vertex[f.node]
		for p := 0; p < g.Degree(v); p++ {
			if p == f.fromPort {
				continue // backtracking
			}
			w := g.Neighbor(v, p)
			child := len(t.Vertex)
			t.Parent = append(t.Parent, f.node)
			t.Vertex = append(t.Vertex, w)
			t.Depth = append(t.Depth, t.Depth[f.node]+1)
			t.PortFromParent = append(t.PortFromParent, p)
			queue = append(queue, frame{child, g.PortTo(w, v)})
		}
	}
	return t
}

// Size returns the number of tree nodes.
func (t *Tree) Size() int { return len(t.Vertex) }

// CountAtDepth returns how many tree nodes sit at each depth 0..max.
func (t *Tree) CountAtDepth() []int {
	max := 0
	for _, d := range t.Depth {
		if d > max {
			max = d
		}
	}
	counts := make([]int, max+1)
	for _, d := range t.Depth {
		counts[d]++
	}
	return counts
}

// Verify checks the structural invariants of an unfolding against its
// graph: parent/child vertices are adjacent, ports match, walks never
// backtrack, and node 0 is the only root.
func (t *Tree) Verify(g *bipartite.Graph) error {
	for i := 1; i < t.Size(); i++ {
		p := t.Parent[i]
		if p < 0 || p >= t.Size() {
			return fmt.Errorf("unfold: node %d has bad parent %d", i, p)
		}
		if t.Depth[i] != t.Depth[p]+1 {
			return fmt.Errorf("unfold: node %d depth %d under parent depth %d", i, t.Depth[i], t.Depth[p])
		}
		port := t.PortFromParent[i]
		if g.Neighbor(t.Vertex[p], port) != t.Vertex[i] {
			return fmt.Errorf("unfold: node %d is not behind port %d of its parent", i, port)
		}
		// Non-backtracking: the parent's walk must not have arrived through
		// the same edge.
		if gp := t.Parent[p]; gp != -1 {
			backPort := g.PortTo(t.Vertex[p], t.Vertex[gp])
			// Arriving edge of p is (Vertex[gp] → Vertex[p]); the child may
			// not use the reverse of that same edge.
			if t.Vertex[i] == t.Vertex[gp] && port == backPort {
				return fmt.Errorf("unfold: node %d backtracks", i)
			}
		}
	}
	return nil
}

// ProjectSolution lifts a per-agent solution of the finite graph onto the
// unfolding (§3, remark 7): every occurrence of an agent inherits its
// value. Non-agent occurrences get 0.
func (t *Tree) ProjectSolution(g *bipartite.Graph, x []float64) []float64 {
	y := make([]float64, t.Size())
	for i, v := range t.Vertex {
		if g.Kind(v) == bipartite.KindAgent {
			y[i] = x[g.Index(v)]
		}
	}
	return y
}
