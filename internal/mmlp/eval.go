package mmlp

import (
	"fmt"
	"math"
)

// ConstraintValue returns Σ_{v∈Vi} a_iv x_v for constraint i.
func (in *Instance) ConstraintValue(i int, x []float64) float64 {
	s := 0.0
	for _, t := range in.Cons[i].Terms {
		s += t.Coef * x[t.Agent]
	}
	return s
}

// ObjectiveValue returns ω_k(x) = Σ_{v∈Vk} c_kv x_v for objective k.
func (in *Instance) ObjectiveValue(k int, x []float64) float64 {
	s := 0.0
	for _, t := range in.Objs[k].Terms {
		s += t.Coef * x[t.Agent]
	}
	return s
}

// Utility returns ω(x) = min_k ω_k(x), the quantity a max-min LP maximises.
// An instance without objectives has utility +Inf.
func (in *Instance) Utility(x []float64) float64 {
	u := math.Inf(1)
	for k := range in.Objs {
		if w := in.ObjectiveValue(k, x); w < u {
			u = w
		}
	}
	return u
}

// MaxViolation returns the largest amount by which x violates feasibility:
// the maximum over max_i (Σ a_iv x_v − 1) and max_v (−x_v), clamped below at
// zero. A feasible point has MaxViolation 0.
func (in *Instance) MaxViolation(x []float64) float64 {
	worst := 0.0
	for _, xv := range x {
		if -xv > worst {
			worst = -xv
		}
	}
	for i := range in.Cons {
		if over := in.ConstraintValue(i, x) - 1; over > worst {
			worst = over
		}
	}
	return worst
}

// CheckFeasible returns nil when x is feasible up to the additive tolerance
// tol, and a descriptive error naming the first offending constraint or
// negative variable otherwise. The vector length must equal NumAgents.
func (in *Instance) CheckFeasible(x []float64, tol float64) error {
	if len(x) != in.NumAgents {
		return fmt.Errorf("mmlp: solution has %d entries, instance has %d agents", len(x), in.NumAgents)
	}
	for v, xv := range x {
		if xv < -tol || math.IsNaN(xv) {
			return fmt.Errorf("mmlp: x[%d] = %v is negative beyond tolerance %v", v, xv, tol)
		}
	}
	for i := range in.Cons {
		if s := in.ConstraintValue(i, x); s > 1+tol {
			return fmt.Errorf("mmlp: constraint %d has load %v > 1 beyond tolerance %v", i, s, tol)
		}
	}
	return nil
}

// Strictify returns a copy of x scaled so that it is exactly feasible:
// negative entries are clamped to zero and the whole vector is divided by
// the worst constraint load when that load exceeds 1. The utility shrinks by
// at most the same factor. Useful to convert a numerically ε-infeasible
// float solution into a certifiably feasible one.
func (in *Instance) Strictify(x []float64) []float64 {
	y := make([]float64, len(x))
	for v, xv := range x {
		if xv > 0 {
			y[v] = xv
		}
	}
	// Rescaling by the worst load may itself round a hair above 1, so repeat
	// until the point is exactly feasible; each pass shrinks the load.
	for {
		worst := 1.0
		for i := range in.Cons {
			if s := in.ConstraintValue(i, y); s > worst {
				worst = s
			}
		}
		if worst <= 1 {
			return y
		}
		worst = math.Nextafter(worst, math.Inf(1))
		for v := range y {
			y[v] /= worst
		}
	}
}
