package mmlp

import (
	"errors"
	"fmt"
)

// Engine is the typed form of a wire engine name. Its numeric values are
// stable — they are what the canon key encoder hashes — so they must never
// be reordered.
type Engine int

// Typed engines, in wire-name order (see ParseEngine).
const (
	// EngineCentral is the fast centralised engine ("local", the default).
	EngineCentral Engine = iota
	// EngineDistributed is the synchronous message-passing protocol with
	// anonymous view gathering ("dist").
	EngineDistributed
	// EngineDistributedCompact is the identifier-based record-gossip
	// protocol ("dist-compact").
	EngineDistributedCompact
)

// ErrUnknownEngine reports an engine name outside the wire vocabulary. It
// wraps ErrInvalid so the serving layers map it to a 400 like every other
// request-shape error.
var ErrUnknownEngine = fmt.Errorf("%w: unknown engine", ErrInvalid)

// ParseEngine maps a wire engine name to its typed form. The empty string
// selects EngineCentral, matching the request default. Unknown names
// return an error wrapping ErrUnknownEngine (and hence ErrInvalid) that
// spells out the accepted vocabulary.
func ParseEngine(name string) (Engine, error) {
	switch name {
	case "", EngineLocal:
		return EngineCentral, nil
	case EngineDist:
		return EngineDistributed, nil
	case EngineDistCompact:
		return EngineDistributedCompact, nil
	}
	return 0, fmt.Errorf("%w %q (want %q, %q or %q)",
		ErrUnknownEngine, name, EngineLocal, EngineDist, EngineDistCompact)
}

// IsUnknownEngine reports whether err came from ParseEngine rejecting a
// name.
func IsUnknownEngine(err error) bool { return errors.Is(err, ErrUnknownEngine) }

// String returns the wire name of the engine.
func (e Engine) String() string {
	switch e {
	case EngineCentral:
		return EngineLocal
	case EngineDistributed:
		return EngineDist
	case EngineDistributedCompact:
		return EngineDistCompact
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// EngineNames lists the accepted wire engine names, in parse order.
func EngineNames() []string {
	return []string{EngineLocal, EngineDist, EngineDistCompact}
}
