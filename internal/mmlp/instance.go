// Package mmlp defines the max-min linear program instance model used
// throughout the repository.
//
// A max-min LP asks to
//
//	maximise   ω(x) = min_{k∈K} Σ_{v∈Vk} c_kv x_v
//	subject to Σ_{v∈Vi} a_iv x_v ≤ 1  for all i ∈ I
//	           x_v ≥ 0                for all v ∈ V
//
// where all coefficients a_iv and c_kv are strictly positive, every
// constraint row has at most ΔI terms and every objective row has at most
// ΔK terms. Agents, constraints and objectives are the three node classes of
// the bipartite communication graph in the distributed setting (Floréen,
// Kaasinen, Kaski, Suomela, SPAA 2009, §1.1).
package mmlp

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// Term couples an agent index with a strictly positive coefficient. A term
// in a constraint row carries a_iv; a term in an objective row carries c_kv.
type Term struct {
	Agent int     `json:"agent"`
	Coef  float64 `json:"coef"`
}

// Constraint is one packing row Σ_{v∈Vi} a_iv x_v ≤ 1.
type Constraint struct {
	Terms []Term `json:"terms"`
}

// Objective is one covering row Σ_{v∈Vk} c_kv x_v, whose minimum over all
// objectives is the utility ω(x) to be maximised.
type Objective struct {
	Terms []Term `json:"terms"`
}

// Instance is a complete max-min LP. Agents are identified by the integers
// 0..NumAgents-1; constraints and objectives by their position in Cons and
// Objs. The zero value is an empty, valid instance with no agents.
type Instance struct {
	NumAgents int          `json:"num_agents"`
	Cons      []Constraint `json:"constraints"`
	Objs      []Objective  `json:"objectives"`
}

// New returns an empty instance with n agents.
func New(n int) *Instance {
	return &Instance{NumAgents: n}
}

// AddConstraint appends the packing row Σ a_iv x_v ≤ 1 given as alternating
// (agent, coefficient) pairs and returns its index. It panics if the
// argument list has odd length; use Validate to vet the resulting instance.
func (in *Instance) AddConstraint(pairs ...float64) int {
	in.Cons = append(in.Cons, Constraint{Terms: termsOf(pairs)})
	return len(in.Cons) - 1
}

// AddObjective appends the covering row Σ c_kv x_v given as alternating
// (agent, coefficient) pairs and returns its index.
func (in *Instance) AddObjective(pairs ...float64) int {
	in.Objs = append(in.Objs, Objective{Terms: termsOf(pairs)})
	return len(in.Objs) - 1
}

func termsOf(pairs []float64) []Term {
	if len(pairs)%2 != 0 {
		panic("mmlp: odd number of values in (agent, coef) pair list")
	}
	ts := make([]Term, 0, len(pairs)/2)
	for j := 0; j < len(pairs); j += 2 {
		ts = append(ts, Term{Agent: int(pairs[j]), Coef: pairs[j+1]})
	}
	return ts
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		NumAgents: in.NumAgents,
		Cons:      make([]Constraint, len(in.Cons)),
		Objs:      make([]Objective, len(in.Objs)),
	}
	for i, c := range in.Cons {
		out.Cons[i] = Constraint{Terms: append([]Term(nil), c.Terms...)}
	}
	for k, o := range in.Objs {
		out.Objs[k] = Objective{Terms: append([]Term(nil), o.Terms...)}
	}
	return out
}

// DegreeI returns ΔI, the maximum number of terms in any constraint row.
// An instance without constraints has DegreeI 0.
func (in *Instance) DegreeI() int {
	d := 0
	for _, c := range in.Cons {
		if len(c.Terms) > d {
			d = len(c.Terms)
		}
	}
	return d
}

// DegreeK returns ΔK, the maximum number of terms in any objective row.
func (in *Instance) DegreeK() int {
	d := 0
	for _, o := range in.Objs {
		if len(o.Terms) > d {
			d = len(o.Terms)
		}
	}
	return d
}

// Incidence captures, for every agent, the constraint rows Iv and objective
// rows Kv it appears in. It is the per-agent "local input" of §1.1.
type Incidence struct {
	// ConsOf[v] lists the indices of constraints containing agent v.
	ConsOf [][]int
	// ObjsOf[v] lists the indices of objectives containing agent v.
	ObjsOf [][]int
}

// Incidence computes the agent→row incidence lists. Row indices appear in
// increasing order.
func (in *Instance) Incidence() *Incidence {
	inc := &Incidence{
		ConsOf: make([][]int, in.NumAgents),
		ObjsOf: make([][]int, in.NumAgents),
	}
	for i, c := range in.Cons {
		for _, t := range c.Terms {
			inc.ConsOf[t.Agent] = append(inc.ConsOf[t.Agent], i)
		}
	}
	for k, o := range in.Objs {
		for _, t := range o.Terms {
			inc.ObjsOf[t.Agent] = append(inc.ObjsOf[t.Agent], k)
		}
	}
	return inc
}

// Caps returns, for every agent v, the largest value x_v may take if all
// other variables are zero: cap_v = min_{i∈Iv} 1/a_iv, or +Inf when v has no
// constraints. Caps appear as f+_{u,v,0} in equation (5) of the paper.
func (in *Instance) Caps() []float64 {
	caps := make([]float64, in.NumAgents)
	for v := range caps {
		caps[v] = math.Inf(1)
	}
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			if cap := 1 / t.Coef; cap < caps[t.Agent] {
				caps[t.Agent] = cap
			}
		}
	}
	return caps
}

// TrivialUpperBound returns min_k Σ_{v∈Vk} c_kv cap_v, a cheap upper bound
// on the optimum: no objective can exceed the value it attains when every
// member agent is at its individual cap. Returns +Inf for an instance
// without objectives.
func (in *Instance) TrivialUpperBound() float64 {
	caps := in.Caps()
	ub := math.Inf(1)
	for _, o := range in.Objs {
		s := 0.0
		for _, t := range o.Terms {
			s += t.Coef * caps[t.Agent]
		}
		if s < ub {
			ub = s
		}
	}
	return ub
}

// Stats summarises the shape of an instance.
type Stats struct {
	Agents          int
	Constraints     int
	Objectives      int
	DegreeI         int // ΔI
	DegreeK         int // ΔK
	MaxConsPerAgent int
	MaxObjsPerAgent int
	Edges           int
}

// Stats computes summary statistics for the instance.
func (in *Instance) Stats() Stats {
	st := Stats{
		Agents:      in.NumAgents,
		Constraints: len(in.Cons),
		Objectives:  len(in.Objs),
		DegreeI:     in.DegreeI(),
		DegreeK:     in.DegreeK(),
	}
	inc := in.Incidence()
	for v := 0; v < in.NumAgents; v++ {
		if d := len(inc.ConsOf[v]); d > st.MaxConsPerAgent {
			st.MaxConsPerAgent = d
		}
		if d := len(inc.ObjsOf[v]); d > st.MaxObjsPerAgent {
			st.MaxObjsPerAgent = d
		}
		st.Edges += len(inc.ConsOf[v]) + len(inc.ObjsOf[v])
	}
	return st
}

// String renders the stats in a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf("agents=%d constraints=%d objectives=%d ΔI=%d ΔK=%d edges=%d",
		s.Agents, s.Constraints, s.Objectives, s.DegreeI, s.DegreeK, s.Edges)
}

// SortTerms orders every row's terms by agent index. Row semantics are
// unchanged; a sorted instance has a canonical representation, which the
// tests and the JSON golden files rely on.
func (in *Instance) SortTerms() {
	for i := range in.Cons {
		ts := in.Cons[i].Terms
		sort.Slice(ts, func(a, b int) bool { return ts[a].Agent < ts[b].Agent })
	}
	for k := range in.Objs {
		ts := in.Objs[k].Terms
		sort.Slice(ts, func(a, b int) bool { return ts[a].Agent < ts[b].Agent })
	}
}

// CompareTerm totally orders terms by (agent, then coefficient bits — a
// tie only invalid instances can reach). This is THE term ordering of the
// canonical form: Instance.Canonical and the canon package's key encoder
// both sort with it, which is what keeps the cache key's equivalence
// classes and the pipeline's canonicalization in exact agreement.
func CompareTerm(a, b Term) int {
	if a.Agent != b.Agent {
		if a.Agent < b.Agent {
			return -1
		}
		return 1
	}
	ab, bb := math.Float64bits(a.Coef), math.Float64bits(b.Coef)
	switch {
	case ab < bb:
		return -1
	case ab > bb:
		return 1
	}
	return 0
}

// Canonical returns the instance in canonical form: within every row the
// terms are ordered by CompareTerm, and within each section the rows are
// ordered by a deterministic total order. Term and row order are encoding
// artifacts of a max-min LP, yet floating-point summation makes the
// solvers sensitive to them; canonicalizing at pipeline entry makes every
// output a pure function of the instance's mathematical content — the
// same equivalence classes the canon package keys the result cache on.
// An already-canonical instance is returned as-is (a linear scan, no
// copy), so steady-state serving of sorted instances stays cheap; the
// caller must treat the result as read-only either way.
func (in *Instance) Canonical() *Instance { return in.CanonicalInto(nil) }

// CanonScratch is the reusable working memory of CanonicalInto: the copied
// instance's row headers and one flat term backing. The zero value is
// ready. Not safe for concurrent use.
type CanonScratch struct {
	inst  Instance
	terms []Term
}

// CanonicalInto is Canonical building any needed copy into sc's reusable
// memory, so steady-state canonicalization of similarly-sized instances
// does not allocate (nil sc falls back to fresh memory). Like Canonical,
// an already-canonical instance is returned as-is. When a copy was made
// into a non-nil sc it is valid only until sc's next use; the caller must
// treat the result as read-only either way.
func (in *Instance) CanonicalInto(sc *CanonScratch) *Instance {
	if in.isCanonical() {
		return in
	}
	if sc == nil {
		sc = &CanonScratch{}
	}
	out := &sc.inst
	out.NumAgents = in.NumAgents
	total := 0
	for i := range in.Cons {
		total += len(in.Cons[i].Terms)
	}
	for k := range in.Objs {
		total += len(in.Objs[k].Terms)
	}
	// Presize the flat backing so the per-row carves below stay stable.
	if cap(sc.terms) < total {
		sc.terms = make([]Term, total)
	}
	buf := sc.terms[:0]
	if cap(out.Cons) < len(in.Cons) {
		out.Cons = make([]Constraint, len(in.Cons))
	}
	out.Cons = out.Cons[:len(in.Cons)]
	for i, c := range in.Cons {
		start := len(buf)
		buf = append(buf, c.Terms...)
		row := buf[start:len(buf):len(buf)]
		slices.SortFunc(row, CompareTerm)
		out.Cons[i] = Constraint{Terms: row}
	}
	if cap(out.Objs) < len(in.Objs) {
		out.Objs = make([]Objective, len(in.Objs))
	}
	out.Objs = out.Objs[:len(in.Objs)]
	for k, o := range in.Objs {
		start := len(buf)
		buf = append(buf, o.Terms...)
		row := buf[start:len(buf):len(buf)]
		slices.SortFunc(row, CompareTerm)
		out.Objs[k] = Objective{Terms: row}
	}
	slices.SortFunc(out.Cons, func(a, b Constraint) int { return compareTerms(a.Terms, b.Terms) })
	slices.SortFunc(out.Objs, func(a, b Objective) int { return compareTerms(a.Terms, b.Terms) })
	return out
}

// isCanonical reports whether every row's terms and both sections' rows
// are already in canonical order.
func (in *Instance) isCanonical() bool {
	for i := range in.Cons {
		if !termsSorted(in.Cons[i].Terms) {
			return false
		}
	}
	for k := range in.Objs {
		if !termsSorted(in.Objs[k].Terms) {
			return false
		}
	}
	for i := 1; i < len(in.Cons); i++ {
		if compareTerms(in.Cons[i-1].Terms, in.Cons[i].Terms) > 0 {
			return false
		}
	}
	for k := 1; k < len(in.Objs); k++ {
		if compareTerms(in.Objs[k-1].Terms, in.Objs[k].Terms) > 0 {
			return false
		}
	}
	return true
}

func termsSorted(ts []Term) bool {
	for j := 1; j < len(ts); j++ {
		if CompareTerm(ts[j-1], ts[j]) > 0 {
			return false
		}
	}
	return true
}

// compareTerms totally orders canonical rows: by length, then termwise by
// CompareTerm.
func compareTerms(a, b []Term) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if c := CompareTerm(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}
