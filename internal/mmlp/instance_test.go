package mmlp

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"
)

// triangle returns a small instance with three agents, three pairwise
// constraints and two objectives; used by several tests.
func triangle() *Instance {
	in := New(3)
	in.AddConstraint(0, 1, 1, 1)   // x0 + x1 ≤ 1
	in.AddConstraint(1, 1, 2, 1)   // x1 + x2 ≤ 1
	in.AddConstraint(0, 2, 2, 0.5) // 2 x0 + 0.5 x2 ≤ 1
	in.AddObjective(0, 1, 1, 1)    // x0 + x1
	in.AddObjective(1, 1, 2, 3)    // x1 + 3 x2
	return in
}

func TestAddersBuildRows(t *testing.T) {
	in := triangle()
	if len(in.Cons) != 3 || len(in.Objs) != 2 {
		t.Fatalf("got %d cons, %d objs", len(in.Cons), len(in.Objs))
	}
	if in.Cons[2].Terms[0].Coef != 2 || in.Cons[2].Terms[1].Coef != 0.5 {
		t.Fatalf("constraint 2 coefficients wrong: %+v", in.Cons[2])
	}
}

func TestAddConstraintOddPairsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for odd pair list")
		}
	}()
	New(1).AddConstraint(0, 1, 2)
}

func TestValidateAccepts(t *testing.T) {
	if err := triangle().Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	if err := triangle().ValidateStrict(); err != nil {
		t.Fatalf("strictly valid instance rejected: %v", err)
	}
}

func TestValidateRejectsBadAgent(t *testing.T) {
	in := New(2)
	in.AddConstraint(5, 1)
	if err := in.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
}

func TestValidateRejectsNonPositiveCoef(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		in := New(1)
		in.AddObjective(0, bad)
		if err := in.Validate(); !errors.Is(err, ErrInvalid) {
			t.Fatalf("coef %v: want ErrInvalid, got %v", bad, err)
		}
	}
}

func TestValidateRejectsDuplicateAgent(t *testing.T) {
	in := New(2)
	in.Cons = append(in.Cons, Constraint{Terms: []Term{{0, 1}, {0, 2}}})
	if err := in.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
}

func TestValidateRejectsNegativeAgentCount(t *testing.T) {
	in := &Instance{NumAgents: -1}
	if err := in.Validate(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
}

func TestValidateStrictRejectsDegenerates(t *testing.T) {
	empty := New(1)
	empty.Cons = append(empty.Cons, Constraint{})
	empty.AddObjective(0, 1)
	if err := empty.ValidateStrict(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty constraint: want ErrInvalid, got %v", err)
	}

	unconstrained := New(1)
	unconstrained.AddObjective(0, 1)
	if err := unconstrained.ValidateStrict(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unconstrained agent: want ErrInvalid, got %v", err)
	}

	noObj := New(1)
	noObj.AddConstraint(0, 1)
	if err := noObj.ValidateStrict(); !errors.Is(err, ErrInvalid) {
		t.Fatalf("non-contributing agent: want ErrInvalid, got %v", err)
	}
}

func TestDegrees(t *testing.T) {
	in := triangle()
	if got := in.DegreeI(); got != 2 {
		t.Fatalf("DegreeI = %d, want 2", got)
	}
	if got := in.DegreeK(); got != 2 {
		t.Fatalf("DegreeK = %d, want 2", got)
	}
	if got := New(0).DegreeI(); got != 0 {
		t.Fatalf("empty DegreeI = %d, want 0", got)
	}
}

func TestIncidence(t *testing.T) {
	inc := triangle().Incidence()
	wantCons := [][]int{{0, 2}, {0, 1}, {1, 2}}
	for v, want := range wantCons {
		got := inc.ConsOf[v]
		if len(got) != len(want) {
			t.Fatalf("ConsOf[%d] = %v, want %v", v, got, want)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("ConsOf[%d] = %v, want %v", v, got, want)
			}
		}
	}
	if len(inc.ObjsOf[1]) != 2 {
		t.Fatalf("ObjsOf[1] = %v, want two entries", inc.ObjsOf[1])
	}
}

func TestCaps(t *testing.T) {
	caps := triangle().Caps()
	// Agent 0: constraints with a=1 and a=2 → cap 1/2.
	if caps[0] != 0.5 {
		t.Fatalf("caps[0] = %v, want 0.5", caps[0])
	}
	// Agent 2: a=1 and a=0.5 → cap 1.
	if caps[2] != 1 {
		t.Fatalf("caps[2] = %v, want 1", caps[2])
	}
	free := New(1)
	free.AddObjective(0, 1)
	if !math.IsInf(free.Caps()[0], 1) {
		t.Fatal("unconstrained agent should have infinite cap")
	}
}

func TestTrivialUpperBound(t *testing.T) {
	in := triangle()
	// caps = [0.5, 1, 1]; objective 0: 0.5+1 = 1.5; objective 1: 1+3 = 4.
	if got := in.TrivialUpperBound(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("TrivialUpperBound = %v, want 1.5", got)
	}
	if !math.IsInf(New(1).TrivialUpperBound(), 1) {
		t.Fatal("no objectives should give +Inf bound")
	}
}

func TestEvaluation(t *testing.T) {
	in := triangle()
	x := []float64{0.25, 0.5, 0.25}
	if got := in.ConstraintValue(0, x); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ConstraintValue(0) = %v", got)
	}
	if got := in.ObjectiveValue(1, x); math.Abs(got-1.25) > 1e-12 {
		t.Fatalf("ObjectiveValue(1) = %v", got)
	}
	if got := in.Utility(x); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("Utility = %v, want 0.75", got)
	}
	if got := New(2).Utility([]float64{1, 1}); !math.IsInf(got, 1) {
		t.Fatalf("utility without objectives = %v, want +Inf", got)
	}
}

func TestMaxViolationAndCheckFeasible(t *testing.T) {
	in := triangle()
	ok := []float64{0.25, 0.5, 0.25}
	if v := in.MaxViolation(ok); v != 0 {
		t.Fatalf("feasible point has violation %v", v)
	}
	if err := in.CheckFeasible(ok, 0); err != nil {
		t.Fatalf("feasible point rejected: %v", err)
	}
	bad := []float64{1, 1, 0}
	if v := in.MaxViolation(bad); math.Abs(v-1) > 1e-12 {
		t.Fatalf("violation = %v, want 1", v)
	}
	if err := in.CheckFeasible(bad, 1e-9); err == nil {
		t.Fatal("infeasible point accepted")
	}
	neg := []float64{-0.1, 0, 0}
	if err := in.CheckFeasible(neg, 1e-9); err == nil {
		t.Fatal("negative point accepted")
	}
	if err := in.CheckFeasible([]float64{0}, 0); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
}

func TestStrictify(t *testing.T) {
	in := triangle()
	x := []float64{1.2, 0.9, -0.3}
	y := in.Strictify(x)
	if err := in.CheckFeasible(y, 0); err != nil {
		t.Fatalf("strictified point infeasible: %v", err)
	}
	// A feasible point must come back unchanged.
	ok := []float64{0.25, 0.5, 0.25}
	z := in.Strictify(ok)
	for v := range ok {
		if z[v] != ok[v] {
			t.Fatalf("Strictify changed a feasible point: %v -> %v", ok, z)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	in := triangle()
	cp := in.Clone()
	cp.Cons[0].Terms[0].Coef = 99
	cp.Objs[0].Terms[0].Coef = 99
	if in.Cons[0].Terms[0].Coef == 99 || in.Objs[0].Terms[0].Coef == 99 {
		t.Fatal("Clone shares term storage with the original")
	}
}

func TestStats(t *testing.T) {
	st := triangle().Stats()
	if st.Agents != 3 || st.Constraints != 3 || st.Objectives != 2 {
		t.Fatalf("stats counts wrong: %+v", st)
	}
	if st.Edges != 6+4 {
		t.Fatalf("edges = %d, want 10", st.Edges)
	}
	if st.MaxConsPerAgent != 2 || st.MaxObjsPerAgent != 2 {
		t.Fatalf("per-agent maxima wrong: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("Stats.String is empty")
	}
}

func TestSortTerms(t *testing.T) {
	in := New(3)
	in.Cons = append(in.Cons, Constraint{Terms: []Term{{2, 1}, {0, 1}, {1, 1}}})
	in.Objs = append(in.Objs, Objective{Terms: []Term{{1, 1}, {0, 1}}})
	in.SortTerms()
	for j, want := range []int{0, 1, 2} {
		if in.Cons[0].Terms[j].Agent != want {
			t.Fatalf("constraint terms not sorted: %+v", in.Cons[0].Terms)
		}
	}
	if in.Objs[0].Terms[0].Agent != 0 {
		t.Fatalf("objective terms not sorted: %+v", in.Objs[0].Terms)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := triangle()
	var buf bytes.Buffer
	if err := in.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if out.NumAgents != in.NumAgents || len(out.Cons) != len(in.Cons) || len(out.Objs) != len(in.Objs) {
		t.Fatalf("round trip changed shape: %+v", out.Stats())
	}
	if out.Cons[2].Terms[1].Coef != 0.5 {
		t.Fatalf("round trip changed coefficients: %+v", out.Cons[2])
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString(`{"num_agents":1,"constraints":[{"terms":[{"agent":7,"coef":1}]}]}`)); err == nil {
		t.Fatal("invalid instance decoded without error")
	}
	if _, err := Decode(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	in := triangle()
	if err := in.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if out.Stats() != in.Stats() {
		t.Fatalf("file round trip changed stats: %v vs %v", out.Stats(), in.Stats())
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read without error")
	}
}
