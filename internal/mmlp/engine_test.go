package mmlp

import (
	"errors"
	"testing"
)

func TestParseEngine(t *testing.T) {
	cases := map[string]Engine{
		"":                EngineCentral,
		EngineLocal:       EngineCentral,
		EngineDist:        EngineDistributed,
		EngineDistCompact: EngineDistributedCompact,
	}
	for name, want := range cases {
		got, err := ParseEngine(name)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseEngine(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestParseEngineUnknown(t *testing.T) {
	for _, name := range []string{"LOCAL", "central", "dist-compact ", "simplex"} {
		_, err := ParseEngine(name)
		if !IsUnknownEngine(err) {
			t.Fatalf("ParseEngine(%q): err = %v, want ErrUnknownEngine", name, err)
		}
		if !errors.Is(err, ErrInvalid) {
			t.Fatalf("ParseEngine(%q): error does not wrap ErrInvalid", name)
		}
	}
}

// TestEngineRoundTrip: String inverts ParseEngine over the whole wire
// vocabulary, and EngineNames lists exactly that vocabulary.
func TestEngineRoundTrip(t *testing.T) {
	names := EngineNames()
	if len(names) != 3 {
		t.Fatalf("EngineNames() = %v, want 3 names", names)
	}
	for _, name := range names {
		e, err := ParseEngine(name)
		if err != nil {
			t.Fatal(err)
		}
		if e.String() != name {
			t.Fatalf("ParseEngine(%q).String() = %q", name, e.String())
		}
	}
	if s := Engine(99).String(); s != "Engine(99)" {
		t.Fatalf("out-of-range String() = %q", s)
	}
}

// TestEngineValuesStable pins the numeric values: they are hashed into
// canon keys, so reordering them would silently invalidate every cache
// and re-route every key in a fleet.
func TestEngineValuesStable(t *testing.T) {
	if EngineCentral != 0 || EngineDistributed != 1 || EngineDistributedCompact != 2 {
		t.Fatalf("engine values moved: %d %d %d", EngineCentral, EngineDistributed, EngineDistributedCompact)
	}
}
