package mmlp

// Capabilities is the body of GET /v1/capabilities on both binaries: a
// static description of what the process serves, so clients discover delta
// support, negotiated content types and the wire limits instead of probing
// endpoints with requests that 404.
type Capabilities struct {
	// Service is "mmlpserve" or "mmlprouter".
	Service string `json:"service"`
	// Endpoints lists the served "METHOD /path" pairs.
	Endpoints []string `json:"endpoints"`
	// Engines lists the accepted wire engine names.
	Engines []string `json:"engines"`
	// ContentTypes lists the negotiable request/response content types.
	ContentTypes []string `json:"content_types"`
	// MaxWireR / MaxWireBinIters / MaxWireAgents / MaxWireEdits echo the
	// wire limits of this package.
	MaxWireR        int `json:"max_wire_r"`
	MaxWireBinIters int `json:"max_wire_bin_iters"`
	MaxWireAgents   int `json:"max_wire_agents"`
	MaxWireEdits    int `json:"max_wire_edits"`
	// MaxBodyBytes is the configured request-body limit.
	MaxBodyBytes int64 `json:"max_body_bytes"`
	// Delta reports whether POST /v1/delta can succeed here: it requires
	// the result cache (the base record lives there), so a shard running
	// with -cache-bytes 0 answers every delta with 404.
	Delta bool `json:"delta"`
	// Shed reports whether admission control refuses overflow with 429
	// instead of queueing it (mmlpserve -shed).
	Shed bool `json:"shed,omitempty"`
	// Replication is the router's replica-set size (mmlprouter only;
	// omitted by mmlpserve).
	Replication int `json:"replication,omitempty"`
}
