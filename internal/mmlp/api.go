package mmlp

import (
	"fmt"

	"repro/internal/obs"
)

// This file defines the wire format of the serving layer (cmd/mmlpserve).
// The types are purely syntactic — engine names and statuses travel as
// strings — so the package stays free of solver dependencies; the batch
// package converts them to solver inputs and outputs.

// Engine names accepted on the wire.
const (
	// EngineLocal is the fast centralised engine (the default).
	EngineLocal = "local"
	// EngineDist is the synchronous message-passing protocol with
	// anonymous view gathering.
	EngineDist = "dist"
	// EngineDistCompact is the identifier-based record-gossip protocol.
	EngineDistCompact = "dist-compact"
)

// Content types negotiated on /v1/solve and /v1/batch. JSON is the
// default; the canon types carry the binary wire format defined in
// internal/canon (solve payloads, batch frames, result frames).
const (
	ContentTypeJSON         = "application/json"
	ContentTypeCanon        = "application/x-mmlp-canon"
	ContentTypeCanonBatch   = "application/x-mmlp-canon-batch"
	ContentTypeCanonResults = "application/x-mmlp-canon-results"
	ContentTypeNDJSON       = "application/x-ndjson"
)

// SolveRequest is the body of POST /v1/solve and one element of a
// BatchRequest.
type SolveRequest struct {
	// Instance is the max-min LP to solve.
	Instance *Instance `json:"instance"`
	// Engine selects the execution engine ("" means EngineLocal).
	Engine string `json:"engine,omitempty"`
	// R is the shifting parameter (0 means the default 3). The wire layer
	// caps it at MaxWireR: solver memory and rounds grow with R, so an
	// unbounded value in a small request could exhaust the server.
	R int `json:"r,omitempty"`
	// BinIters caps the per-agent binary search (0 means the default 100).
	BinIters int `json:"bin_iters,omitempty"`
	// DisableSpecialCases skips the optimal ΔI=1 / ΔK=1 dispatch.
	DisableSpecialCases bool `json:"disable_special_cases,omitempty"`
	// SelfCheck re-verifies the lemma-level invariants before responding.
	// Only the centralised engine supports it; it is a no-op for the dist
	// engines (their conformance is asserted by the test suite instead).
	SelfCheck bool `json:"self_check,omitempty"`
}

// MaxWireR bounds the shifting parameter accepted over HTTP. R=64 already
// gives a guarantee within 1.6% of the locality threshold — far beyond any
// practical setting (the experiments use R ≤ 6) — while keeping the Θ(R)
// per-request memory and rounds small.
const MaxWireR = 64

// MaxWireBinIters bounds bin_iters accepted over HTTP. The binary search
// converges to the last representable bit in well under 100 iterations;
// a million is absurd headroom, while still capping the per-agent work a
// small request can demand.
const MaxWireBinIters = 1 << 20

// MaxWireAgents bounds num_agents accepted over HTTP. The solver allocates
// several O(NumAgents) slices before any row is read, so the count must be
// capped independently of the body size: a ~100-byte request could
// otherwise declare billions of agents. Useful agents appear in rows (the
// rest are preprocessed away), and the body limit keeps row counts far
// below this.
const MaxWireAgents = 1 << 20

// Validate vets the request envelope: the instance must be present, the
// engine name known, and the parameters in range. Instance contents are
// deliberately not checked here — the solve pipeline validates them
// exactly once, and its failures also wrap ErrInvalid.
func (r *SolveRequest) Validate() error {
	if r.Instance == nil {
		return fmt.Errorf("%w: missing instance", ErrInvalid)
	}
	if r.Instance.NumAgents > MaxWireAgents {
		return fmt.Errorf("%w: num_agents %d exceeds the serving limit %d",
			ErrInvalid, r.Instance.NumAgents, MaxWireAgents)
	}
	if _, err := ParseEngine(r.Engine); err != nil {
		return err
	}
	if r.R != 0 && (r.R < 2 || r.R > MaxWireR) {
		return fmt.Errorf("%w: r must be in [2, %d], got %d", ErrInvalid, MaxWireR, r.R)
	}
	if r.BinIters < 0 || r.BinIters > MaxWireBinIters {
		return fmt.Errorf("%w: bin_iters must be in [0, %d], got %d", ErrInvalid, MaxWireBinIters, r.BinIters)
	}
	return nil
}

// SolveResponse is the body of a successful POST /v1/solve and the payload
// of one batch NDJSON line.
type SolveResponse struct {
	// Status is the solution status ("approximate", "optimal", "unbounded",
	// "zero-optimum").
	Status string `json:"status"`
	// X is the feasible assignment (omitted for unbounded instances).
	X []float64 `json:"x,omitempty"`
	// Utility is ω(X) on the input instance.
	Utility float64 `json:"utility"`
	// UpperBound certifies optimum ≤ UpperBound when positive.
	UpperBound float64 `json:"upper_bound"`
	// Rounds/Messages/Bytes report the traffic of a distributed run and are
	// omitted for the centralised engine.
	Rounds   int `json:"rounds,omitempty"`
	Messages int `json:"messages,omitempty"`
	Bytes    int `json:"bytes,omitempty"`
	// LatencyMS is the server-side solve time in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Cached reports that the result was answered from the server's result
	// cache (bit-identical to a fresh solve); omitted when false.
	Cached bool `json:"cached,omitempty"`
	// Trace is the opt-in per-stage latency breakdown (?trace=1 on
	// /v1/solve): stage name → milliseconds. The encode stage cannot
	// appear in its own response; it is observed into the histograms and
	// the slow-log instead.
	Trace map[string]float64 `json:"trace,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Jobs lists the instances to solve; engines may be mixed.
	Jobs []SolveRequest `json:"jobs"`
}

// BatchItem is one NDJSON line of the POST /v1/batch response stream.
// Lines are emitted as jobs complete, so they arrive in completion order;
// Index ties each line back to its position in the request.
type BatchItem struct {
	// Index is the job's position in BatchRequest.Jobs.
	Index int `json:"index"`
	// Error is set when this job failed; the other fields are then zero.
	Error string `json:"error,omitempty"`
	SolveResponse
}

// Machine-readable error codes, one per failure class. Every non-2xx
// response from mmlpserve and mmlprouter carries exactly one of these, so
// clients can branch on the code instead of parsing English.
const (
	// ErrCodeInvalidArgument (400): the request body or parameters are
	// malformed or out of range.
	ErrCodeInvalidArgument = "invalid_argument"
	// ErrCodeBaseUnknown (404): a delta request named a base key no shard
	// holds; the client should fall back to a full solve.
	ErrCodeBaseUnknown = "base_unknown"
	// ErrCodeNotFound (404): no handler is registered for the path.
	ErrCodeNotFound = "not_found"
	// ErrCodeMethodNotAllowed (405): the path exists but not for this verb.
	ErrCodeMethodNotAllowed = "method_not_allowed"
	// ErrCodeConflict (409): an admin operation collided with one in
	// progress (e.g. a ring cutover still draining); Retry-After hints when
	// to retry.
	ErrCodeConflict = "conflict"
	// ErrCodeBodyTooLarge (413): the body exceeds the configured limit.
	ErrCodeBodyTooLarge = "body_too_large"
	// ErrCodeOverloaded (429): admission control shed the request;
	// Retry-After carries the backoff hint.
	ErrCodeOverloaded = "overloaded"
	// ErrCodeInternal (500): the solve failed for a reason that is not the
	// client's fault.
	ErrCodeInternal = "internal"
	// ErrCodeBadGateway (502): the router could not obtain an answer from
	// any replica of the owning shard.
	ErrCodeBadGateway = "bad_gateway"
	// ErrCodeUnavailable (503): the process is shutting down, the retry
	// budget is exhausted, or the deadline expired before work started.
	ErrCodeUnavailable = "unavailable"
	// ErrCodeDeadlineExceeded (504): the propagated deadline expired while
	// the job was queued or running.
	ErrCodeDeadlineExceeded = "deadline_exceeded"
)

// ErrorDetail is the payload of the unified error envelope.
type ErrorDetail struct {
	// Code is one of the ErrCode constants; stable across releases.
	Code string `json:"code"`
	// Message is the human-readable detail; not stable.
	Message string `json:"message"`
}

// ErrorResponse is the body of every non-2xx serving response, from both
// mmlpserve and mmlprouter: {"error":{"code":"…","message":"…"}}.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// StatsRaw is the body of GET /statsz?raw=1 on one mmlpserve process: the
// machine-oriented stats block the shard router scrapes and aggregates.
// Counters are exact integers and latencies are nanoseconds, so fleet
// totals can be summed without rounding drift; the human /statsz view
// derives its milliseconds from the same numbers.
type StatsRaw struct {
	// Workers is the process's fixed pool size.
	Workers int `json:"workers"`
	// Jobs counts completed jobs, Errors the subset that failed.
	Jobs   int64 `json:"jobs"`
	Errors int64 `json:"errors"`
	// UptimeNS is the pool's age. P50NS/P99NS are PER-PROCESS quantiles
	// over the process's recent sample window (see batch.Stats); they are
	// not summable and are meaningful only on a single shard's block. The
	// fleet aggregate recomputes them from the merged Solve histogram
	// (StatsRaw.DeriveQuantiles). MaxNS is an exact maximum and does
	// combine.
	UptimeNS int64 `json:"uptime_ns"`
	P50NS    int64 `json:"p50_ns"`
	P99NS    int64 `json:"p99_ns"`
	MaxNS    int64 `json:"max_ns"`
	// AllocsPerJob is the process-wide heap allocation rate per job.
	AllocsPerJob float64 `json:"allocs_per_job"`
	// Shed counts submissions refused at admission (full queue under
	// -shed; answered 429 and never queued — not part of Jobs), and
	// DeadlineExpired the jobs whose propagated deadline passed while they
	// waited in the queue (answered 504; part of Jobs and Errors). The
	// offered load on a shard is therefore Jobs + Shed.
	Shed            int64 `json:"shed,omitempty"`
	DeadlineExpired int64 `json:"deadline_expired,omitempty"`
	// DeltaHits counts delta jobs answered from the result cache (the
	// edited instance was already solved), DeltaMisses the ones that priced
	// the edit. DirtyAgents totals the agents whose kernel value was
	// recomputed across all priced deltas, so DirtyAgents/DeltaMisses is
	// the fleet's average edit ball size.
	DeltaHits   int64 `json:"delta_hits,omitempty"`
	DeltaMisses int64 `json:"delta_misses,omitempty"`
	DirtyAgents int64 `json:"dirty_agents,omitempty"`
	// FaultsInjected counts faults fired by the -fault-spec chaos layer;
	// always zero in production (the layer is off by default).
	FaultsInjected int64 `json:"faults_injected,omitempty"`
	// Cache carries the result-cache counters; nil when caching is disabled.
	Cache *CacheStatsRaw `json:"cache,omitempty"`
	// Solve is the all-time histogram of successful solve latency; Stages
	// maps pipeline stage names (canonicalize, hash, cache_lookup,
	// queue_wait, transform, kernel, back_map, encode) to their
	// histograms. The bucket layout is fixed fleet-wide, so Add merges
	// them bucket-wise and fleet quantiles are true quantiles.
	Solve  *obs.HistRaw            `json:"solve_hist,omitempty"`
	Stages map[string]*obs.HistRaw `json:"stage_hist,omitempty"`
}

// CacheStatsRaw is the machine form of one process's result-cache counters.
// Entries counts live cached results: summed across a routed fleet it
// equals the number of distinct canonical keys solved, because consistent
// hashing stores every key on exactly one shard.
type CacheStatsRaw struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	// Pruned counts entries dropped because a ring cutover moved their key
	// to another shard (distinct from budget-pressure evictions).
	Pruned   int64 `json:"pruned"`
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// Add accumulates other into s (fleet aggregation). Exact counters sum
// and MaxNS takes the true fleet maximum; UptimeNS keeps the oldest
// shard's age. The per-process sampled quantiles P50NS/P99NS are NOT
// combined — no function of per-shard quantiles is a fleet quantile —
// the Solve/Stages histograms merge bucket-wise instead, and the caller
// derives fleet quantiles from them with DeriveQuantiles. s never
// aliases other's histogram memory afterwards, so merging scraped blocks
// into a zero StatsRaw is safe.
func (s *StatsRaw) Add(other *StatsRaw) {
	// Allocs-per-job averages job-weighted, so the fleet figure matches
	// what one process doing all the work would have reported.
	if total := s.Jobs + other.Jobs; total > 0 {
		s.AllocsPerJob = (s.AllocsPerJob*float64(s.Jobs) + other.AllocsPerJob*float64(other.Jobs)) / float64(total)
	}
	s.Workers += other.Workers
	s.Jobs += other.Jobs
	s.Errors += other.Errors
	s.Shed += other.Shed
	s.DeadlineExpired += other.DeadlineExpired
	s.DeltaHits += other.DeltaHits
	s.DeltaMisses += other.DeltaMisses
	s.DirtyAgents += other.DirtyAgents
	s.FaultsInjected += other.FaultsInjected
	if other.UptimeNS > s.UptimeNS {
		s.UptimeNS = other.UptimeNS
	}
	if other.MaxNS > s.MaxNS {
		s.MaxNS = other.MaxNS
	}
	if other.Solve != nil {
		if s.Solve == nil {
			s.Solve = &obs.HistRaw{}
		}
		s.Solve.Merge(other.Solve)
	}
	for name, h := range other.Stages {
		if h == nil {
			continue
		}
		if s.Stages == nil {
			s.Stages = make(map[string]*obs.HistRaw, len(other.Stages))
		}
		dst := s.Stages[name]
		if dst == nil {
			dst = &obs.HistRaw{}
			s.Stages[name] = dst
		}
		dst.Merge(h)
	}
	if other.Cache != nil {
		if s.Cache == nil {
			s.Cache = &CacheStatsRaw{}
		}
		s.Cache.Hits += other.Cache.Hits
		s.Cache.Misses += other.Cache.Misses
		s.Cache.Coalesced += other.Cache.Coalesced
		s.Cache.Evictions += other.Cache.Evictions
		s.Cache.Pruned += other.Cache.Pruned
		s.Cache.Entries += other.Cache.Entries
		s.Cache.Bytes += other.Cache.Bytes
		s.Cache.MaxBytes += other.Cache.MaxBytes
	}
}

// DeriveQuantiles overwrites P50NS/P99NS with true quantiles of the
// merged Solve histogram. The router calls it on the fleet aggregate
// after summing every shard's block; on a StatsRaw without a histogram it
// leaves the fields untouched.
func (s *StatsRaw) DeriveQuantiles() {
	if s.Solve == nil || s.Solve.Count == 0 {
		return
	}
	s.P50NS = s.Solve.QuantileNS(0.50)
	s.P99NS = s.Solve.QuantileNS(0.99)
}

// RouterStats is the router's own activity block inside FleetStats.
type RouterStats struct {
	// Shards is the configured fleet size, Healthy the members not
	// currently marked down.
	Shards  int `json:"shards"`
	Healthy int `json:"healthy"`
	// RingVersion is the current topology generation (1 at boot, bumped by
	// every accepted POST /admin/ring). Draining reports that a cutover is
	// still waiting for requests pinned to the previous generation.
	RingVersion uint64 `json:"ring_version"`
	Draining    bool   `json:"draining,omitempty"`
	// Replication is the configured replica-set size R: each key lives on
	// its first R distinct ring successors.
	Replication int `json:"replication"`
	// Routed counts key→shard assignments, Forwarded the HTTP forwards
	// attempted (batch jobs forward per owning shard, not per job),
	// Retried the forwards re-sent to a later replica, ShardDown the
	// transitions of a member into the down state. Replicated counts the
	// write-through warms sent to backup replicas after a solve.
	Routed     int64 `json:"routed"`
	Forwarded  int64 `json:"forwarded"`
	Retried    int64 `json:"retried"`
	ShardDown  int64 `json:"shard_down"`
	Replicated int64 `json:"replicated"`
	// RetryBudgetExhausted counts requests failed fast (503) because a
	// retry hop was due and the router's retry token bucket was empty.
	RetryBudgetExhausted int64 `json:"retry_budget_exhausted,omitempty"`
	// CanonPassthrough counts canon-typed jobs the router keyed by hashing
	// the raw payload and forwarded verbatim — zero decodes on the router.
	CanonPassthrough int64 `json:"canon_passthrough"`
	// Forward is the histogram of successful forward round-trip times
	// (request sent to response headers received, per HTTP forward).
	Forward *obs.HistRaw `json:"forward_hist,omitempty"`
}

// RingProposal is the body of POST /admin/ring on mmlprouter: the member
// set of the next topology generation.
type RingProposal struct {
	Members []string `json:"members"`
}

// DrainStatus describes the in-progress half of a ring cutover.
type DrainStatus struct {
	// FromVersion/FromMembers identify the generation being drained.
	FromVersion uint64   `json:"from_version"`
	FromMembers []string `json:"from_members"`
	// Inflight is the number of requests still pinned to it.
	Inflight int64 `json:"inflight"`
}

// RingStatus is the body of GET /admin/ring (and the response of an
// accepted proposal): the current topology generation plus drain progress.
type RingStatus struct {
	Version     uint64       `json:"version"`
	Members     []string     `json:"members"`
	Replication int          `json:"replication"`
	Draining    *DrainStatus `json:"draining,omitempty"`
}

// ShardRingUpdate is the body of POST /admin/ring on mmlpserve: the router
// tells one shard the assignment changed so it prunes cache entries it no
// longer owns. Self is the receiving shard's own member address — a key is
// kept iff Self is among its first Replication distinct successors on the
// ring built from Members/Replicas.
type ShardRingUpdate struct {
	Members []string `json:"members"`
	// Replicas is the ring's virtual-node count per member (0 = the ring
	// default); it must match the router's flag for the assignments to
	// agree.
	Replicas    int    `json:"replicas,omitempty"`
	Replication int    `json:"replication,omitempty"`
	Self        string `json:"self"`
}

// PruneResponse reports how many cache entries a ShardRingUpdate removed.
type PruneResponse struct {
	Pruned int `json:"pruned"`
}

// ShardStats is one member's block inside FleetStats.
type ShardStats struct {
	// Addr is the member's host:port.
	Addr string `json:"addr"`
	// OK reports whether the /statsz?raw=1 scrape succeeded; Error carries
	// the failure when it did not (Stats is then nil).
	OK    bool      `json:"ok"`
	Error string    `json:"error,omitempty"`
	Stats *StatsRaw `json:"stats,omitempty"`
}

// FleetStats is the body of GET /statsz on mmlprouter: the router's own
// counters, the fleet-wide aggregate, and the per-shard raw blocks it was
// computed from.
type FleetStats struct {
	Router RouterStats  `json:"router"`
	Fleet  StatsRaw     `json:"fleet"`
	Shards []ShardStats `json:"shards"`
}
