package mmlp

import "fmt"

// This file defines the wire format of the serving layer (cmd/mmlpserve).
// The types are purely syntactic — engine names and statuses travel as
// strings — so the package stays free of solver dependencies; the batch
// package converts them to solver inputs and outputs.

// Engine names accepted on the wire.
const (
	// EngineLocal is the fast centralised engine (the default).
	EngineLocal = "local"
	// EngineDist is the synchronous message-passing protocol with
	// anonymous view gathering.
	EngineDist = "dist"
	// EngineDistCompact is the identifier-based record-gossip protocol.
	EngineDistCompact = "dist-compact"
)

// SolveRequest is the body of POST /v1/solve and one element of a
// BatchRequest.
type SolveRequest struct {
	// Instance is the max-min LP to solve.
	Instance *Instance `json:"instance"`
	// Engine selects the execution engine ("" means EngineLocal).
	Engine string `json:"engine,omitempty"`
	// R is the shifting parameter (0 means the default 3). The wire layer
	// caps it at MaxWireR: solver memory and rounds grow with R, so an
	// unbounded value in a small request could exhaust the server.
	R int `json:"r,omitempty"`
	// BinIters caps the per-agent binary search (0 means the default 100).
	BinIters int `json:"bin_iters,omitempty"`
	// DisableSpecialCases skips the optimal ΔI=1 / ΔK=1 dispatch.
	DisableSpecialCases bool `json:"disable_special_cases,omitempty"`
	// SelfCheck re-verifies the lemma-level invariants before responding.
	// Only the centralised engine supports it; it is a no-op for the dist
	// engines (their conformance is asserted by the test suite instead).
	SelfCheck bool `json:"self_check,omitempty"`
}

// MaxWireR bounds the shifting parameter accepted over HTTP. R=64 already
// gives a guarantee within 1.6% of the locality threshold — far beyond any
// practical setting (the experiments use R ≤ 6) — while keeping the Θ(R)
// per-request memory and rounds small.
const MaxWireR = 64

// MaxWireAgents bounds num_agents accepted over HTTP. The solver allocates
// several O(NumAgents) slices before any row is read, so the count must be
// capped independently of the body size: a ~100-byte request could
// otherwise declare billions of agents. Useful agents appear in rows (the
// rest are preprocessed away), and the body limit keeps row counts far
// below this.
const MaxWireAgents = 1 << 20

// Validate vets the request envelope: the instance must be present, the
// engine name known, and the parameters in range. Instance contents are
// deliberately not checked here — the solve pipeline validates them
// exactly once, and its failures also wrap ErrInvalid.
func (r *SolveRequest) Validate() error {
	if r.Instance == nil {
		return fmt.Errorf("%w: missing instance", ErrInvalid)
	}
	if r.Instance.NumAgents > MaxWireAgents {
		return fmt.Errorf("%w: num_agents %d exceeds the serving limit %d",
			ErrInvalid, r.Instance.NumAgents, MaxWireAgents)
	}
	switch r.Engine {
	case "", EngineLocal, EngineDist, EngineDistCompact:
	default:
		return fmt.Errorf("%w: unknown engine %q (want %q, %q or %q)",
			ErrInvalid, r.Engine, EngineLocal, EngineDist, EngineDistCompact)
	}
	if r.R != 0 && (r.R < 2 || r.R > MaxWireR) {
		return fmt.Errorf("%w: r must be in [2, %d], got %d", ErrInvalid, MaxWireR, r.R)
	}
	if r.BinIters < 0 {
		return fmt.Errorf("%w: bin_iters must be ≥ 0, got %d", ErrInvalid, r.BinIters)
	}
	return nil
}

// SolveResponse is the body of a successful POST /v1/solve and the payload
// of one batch NDJSON line.
type SolveResponse struct {
	// Status is the solution status ("approximate", "optimal", "unbounded",
	// "zero-optimum").
	Status string `json:"status"`
	// X is the feasible assignment (omitted for unbounded instances).
	X []float64 `json:"x,omitempty"`
	// Utility is ω(X) on the input instance.
	Utility float64 `json:"utility"`
	// UpperBound certifies optimum ≤ UpperBound when positive.
	UpperBound float64 `json:"upper_bound"`
	// Rounds/Messages/Bytes report the traffic of a distributed run and are
	// omitted for the centralised engine.
	Rounds   int `json:"rounds,omitempty"`
	Messages int `json:"messages,omitempty"`
	Bytes    int `json:"bytes,omitempty"`
	// LatencyMS is the server-side solve time in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Cached reports that the result was answered from the server's result
	// cache (bit-identical to a fresh solve); omitted when false.
	Cached bool `json:"cached,omitempty"`
}

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	// Jobs lists the instances to solve; engines may be mixed.
	Jobs []SolveRequest `json:"jobs"`
}

// BatchItem is one NDJSON line of the POST /v1/batch response stream.
// Lines are emitted as jobs complete, so they arrive in completion order;
// Index ties each line back to its position in the request.
type BatchItem struct {
	// Index is the job's position in BatchRequest.Jobs.
	Index int `json:"index"`
	// Error is set when this job failed; the other fields are then zero.
	Error string `json:"error,omitempty"`
	SolveResponse
}

// ErrorResponse is the body of every non-2xx serving response.
type ErrorResponse struct {
	Error string `json:"error"`
}
