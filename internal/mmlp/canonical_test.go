package mmlp

import (
	"math/rand"
	"reflect"
	"testing"
)

// randPermuted builds a valid instance with deliberately shuffled term and
// row order.
func randPermuted(rng *rand.Rand) *Instance {
	n := 2 + rng.Intn(6)
	in := New(n)
	for r := 0; r < 1+rng.Intn(4); r++ {
		size := min(1+rng.Intn(3), n)
		perm := rng.Perm(n)[:size]
		pairs := make([]float64, 0, 2*size)
		for _, v := range perm {
			pairs = append(pairs, float64(v), 0.25+rng.Float64())
		}
		in.AddConstraint(pairs...)
	}
	for r := 0; r < 1+rng.Intn(4); r++ {
		size := min(1+rng.Intn(3), n)
		perm := rng.Perm(n)[:size]
		pairs := make([]float64, 0, 2*size)
		for _, v := range perm {
			pairs = append(pairs, float64(v), 0.25+rng.Float64())
		}
		in.AddObjective(pairs...)
	}
	rng.Shuffle(len(in.Cons), func(a, b int) { in.Cons[a], in.Cons[b] = in.Cons[b], in.Cons[a] })
	rng.Shuffle(len(in.Objs), func(a, b int) { in.Objs[a], in.Objs[b] = in.Objs[b], in.Objs[a] })
	return in
}

// TestCanonicalIntoMatchesCanonical: the scratch path must produce exactly
// the rows of the allocating path, reusing one scratch across many shapes,
// and must never mutate its input.
func TestCanonicalIntoMatchesCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sc := &CanonScratch{}
	for trial := 0; trial < 80; trial++ {
		in := randPermuted(rng)
		orig := in.Clone()
		want := in.Canonical()
		got := in.CanonicalInto(sc)
		if got.NumAgents != want.NumAgents ||
			!reflect.DeepEqual(got.Cons, want.Cons) || !reflect.DeepEqual(got.Objs, want.Objs) {
			t.Fatalf("trial %d: scratch canonical diverged:\n got %+v\nwant %+v", trial, got, want)
		}
		if !reflect.DeepEqual(in, orig) {
			t.Fatalf("trial %d: CanonicalInto mutated its input", trial)
		}
		if !got.isCanonical() {
			t.Fatalf("trial %d: result is not canonical", trial)
		}
	}
}

// TestCanonicalIntoReturnsSameWhenCanonical: like Canonical, an
// already-canonical instance comes back as the identical pointer, with no
// scratch copy.
func TestCanonicalIntoReturnsSameWhenCanonical(t *testing.T) {
	in := New(3)
	in.AddConstraint(0, 1, 1, 2)
	in.AddConstraint(0, 2, 2, 1)
	in.AddObjective(1, 1, 2, 1)
	if got := in.CanonicalInto(&CanonScratch{}); got != in {
		t.Fatal("canonical instance was copied")
	}
	if got := in.CanonicalInto(nil); got != in {
		t.Fatal("canonical instance was copied on the nil-scratch path")
	}
}

// TestCanonicalIntoWarmAllocFree: re-canonicalizing similarly-sized
// instances into a warm scratch does not allocate.
func TestCanonicalIntoWarmAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	in := randPermuted(rng)
	if in.isCanonical() {
		t.Skip("random instance happened to be canonical")
	}
	sc := &CanonScratch{}
	in.CanonicalInto(sc)
	if avg := testing.AllocsPerRun(100, func() { in.CanonicalInto(sc) }); avg > 0 {
		t.Fatalf("warm CanonicalInto allocates %.1f objects", avg)
	}
}

// TestValidateWideRowDuplicate exercises the map fallback of the hybrid
// duplicate detector (rows wider than the pairwise-scan cutoff).
func TestValidateWideRowDuplicate(t *testing.T) {
	in := New(40)
	pairs := make([]float64, 0, 2*(wideRowTerms+2))
	for v := 0; v <= wideRowTerms; v++ {
		pairs = append(pairs, float64(v), 1)
	}
	pairs = append(pairs, 3, 1) // duplicate of agent 3
	in.AddConstraint(pairs...)
	if err := in.Validate(); err == nil {
		t.Fatal("wide-row duplicate accepted")
	}
	// Same width without the duplicate passes.
	in2 := New(40)
	in2.AddConstraint(pairs[:2*(wideRowTerms+1)]...)
	if err := in2.Validate(); err != nil {
		t.Fatalf("wide row rejected: %v", err)
	}
}

// TestValidateWarmAllocFree: validating steady-state-shaped instances
// (narrow rows) does not allocate.
func TestValidateWarmAllocFree(t *testing.T) {
	in := New(4)
	in.AddConstraint(0, 1, 1, 1)
	in.AddConstraint(2, 1, 3, 2)
	in.AddObjective(0, 1, 2, 1)
	in.AddObjective(1, 1, 3, 1)
	if avg := testing.AllocsPerRun(100, func() {
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Fatalf("Validate allocates %.1f objects on narrow rows", avg)
	}
}
