package mmlp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randInstance builds a random strictly valid instance from a seed.
func randInstance(rng *rand.Rand) *Instance {
	n := 2 + rng.Intn(8)
	in := New(n)
	// Every agent gets one private constraint so the instance is strictly
	// valid; extra shared rows are layered on top.
	for v := 0; v < n; v++ {
		in.AddConstraint(float64(v), 0.5+rng.Float64())
		in.AddObjective(float64(v), 0.5+rng.Float64())
	}
	for r := 0; r < rng.Intn(6); r++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		in.AddConstraint(float64(a), 0.5+rng.Float64(), float64(b), 0.5+rng.Float64())
	}
	return in
}

func TestQuickStrictifyAlwaysFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng)
		x := make([]float64, in.NumAgents)
		for v := range x {
			x[v] = rng.Float64()*4 - 1 // may be negative or far too large
		}
		y := in.Strictify(x)
		return in.CheckFeasible(y, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUtilityBelowTrivialBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng)
		// Any feasible point's utility is at most the trivial bound.
		x := make([]float64, in.NumAgents)
		for v := range x {
			x[v] = rng.Float64() * 3
		}
		x = in.Strictify(x)
		return in.Utility(x) <= in.TrivialUpperBound()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCapsAreFeasiblePerAgent(t *testing.T) {
	// Setting a single agent to its cap and all others to zero is feasible.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng)
		caps := in.Caps()
		v := rng.Intn(in.NumAgents)
		x := make([]float64, in.NumAgents)
		if math.IsInf(caps[v], 1) {
			return true
		}
		x[v] = caps[v]
		return in.CheckFeasible(x, 1e-12) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickValidateRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := randInstance(rng)
		return in.Validate() == nil && in.ValidateStrict() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
