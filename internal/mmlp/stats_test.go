package mmlp

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// shardRaw fabricates one shard's stats block: jobs solves all at the
// given latency, so its histogram and sampled quantiles agree exactly.
func shardRaw(jobs int, lat time.Duration) *StatsRaw {
	var h obs.Histogram
	for i := 0; i < jobs; i++ {
		h.Observe(lat)
	}
	return &StatsRaw{
		Jobs:  int64(jobs),
		P50NS: int64(lat),
		P99NS: int64(lat),
		MaxNS: int64(lat),
		Solve: h.Snapshot(),
	}
}

// Regression for the fleet-quantile bug: two shards reporting p99s of 5ms
// and 50ms must not yield a fleet "p99" that is neither (nor, as the old
// max-of-quantiles did, 50ms regardless of how little traffic the slow
// shard saw). With 900 jobs at 5ms and 100 at 50ms the exact fleet p99 is
// a 50ms sample and the exact p50 a 5ms one; the merged histogram must
// land each within one bucket of its exact value.
func TestFleetQuantilesFromMergedHistograms(t *testing.T) {
	fast := shardRaw(900, 5*time.Millisecond)
	slow := shardRaw(100, 50*time.Millisecond)

	var fleet StatsRaw
	fleet.Add(fast)
	fleet.Add(slow)
	fleet.DeriveQuantiles()

	if fleet.Solve == nil || fleet.Solve.Count != 1000 {
		t.Fatalf("merged solve histogram = %+v, want count 1000", fleet.Solve)
	}
	// Histogram quantiles report the holding bucket's upper bound: the
	// estimate lives within one bucket (≤25% relative) of the exact value.
	if fleet.P50NS < int64(5*time.Millisecond) || fleet.P50NS > int64(7*time.Millisecond) {
		t.Fatalf("fleet p50 = %v, want within one bucket of 5ms", time.Duration(fleet.P50NS))
	}
	if fleet.P99NS < int64(50*time.Millisecond) || fleet.P99NS > int64(63*time.Millisecond) {
		t.Fatalf("fleet p99 = %v, want within one bucket of 50ms", time.Duration(fleet.P99NS))
	}
	if fleet.MaxNS != int64(50*time.Millisecond) {
		t.Fatalf("fleet max = %v", time.Duration(fleet.MaxNS))
	}

	// The inverse weighting — 100 fast jobs, 900 slow — must drag the
	// fleet p50 up to 50ms. The old code reported identical "fleet"
	// numbers for both traffic mixes.
	var fleet2 StatsRaw
	fleet2.Add(shardRaw(100, 5*time.Millisecond))
	fleet2.Add(shardRaw(900, 50*time.Millisecond))
	fleet2.DeriveQuantiles()
	if fleet2.P50NS < int64(50*time.Millisecond) {
		t.Fatalf("inverted fleet p50 = %v, want ≥ 50ms", time.Duration(fleet2.P50NS))
	}

	// Merging must not alias a shard's histogram: the per-shard blocks are
	// republished verbatim next to the fleet aggregate.
	before := fast.Solve.Count
	fleet.Solve.Merge(slow.Solve)
	if fast.Solve.Count != before {
		t.Fatal("fleet merge aliased a shard's histogram")
	}
}

// Stage histograms merge per stage name, and per-process sampled
// quantiles stay per-process (untouched by Add).
func TestStatsRawAddStages(t *testing.T) {
	a := shardRaw(2, time.Millisecond)
	a.Stages = map[string]*obs.HistRaw{"kernel": shardRaw(2, time.Millisecond).Solve}
	b := shardRaw(3, 2*time.Millisecond)
	b.Stages = map[string]*obs.HistRaw{
		"kernel":     shardRaw(3, 2*time.Millisecond).Solve,
		"queue_wait": shardRaw(1, time.Microsecond).Solve,
	}
	var fleet StatsRaw
	fleet.Add(a)
	fleet.Add(b)
	if got := fleet.Stages["kernel"].Count; got != 5 {
		t.Fatalf("merged kernel count = %d, want 5", got)
	}
	if got := fleet.Stages["queue_wait"].Count; got != 1 {
		t.Fatalf("merged queue_wait count = %d, want 1", got)
	}
	if fleet.P50NS != 0 || fleet.P99NS != 0 {
		t.Fatalf("Add must not fabricate fleet quantiles: p50=%d p99=%d", fleet.P50NS, fleet.P99NS)
	}
}
