package mmlp

import (
	"fmt"
	"math"
)

// This file defines the wire format of the incremental re-solve surface
// (POST /v1/delta). A delta request names a cached base solve by its
// canonical key and describes an edit set against the base instance; the
// server re-runs the kernel only for the agents whose radius-(4r+3)
// neighbourhood the edits touch and splices everything else from the
// cached base solution. The types are purely syntactic, like the rest of
// this package: the base key travels as a hex string and rows as plain
// term lists, so the package stays free of solver dependencies.

// Row-edit operations.
const (
	// EditAdd appends a new row (Terms) to the named section.
	EditAdd = "add"
	// EditRemove deletes the row whose content matches Match.
	EditRemove = "remove"
	// EditReweight replaces the coefficients of the row matching Match with
	// Terms; both must cover exactly the same agent set.
	EditReweight = "reweight"
)

// Row kinds an edit can target.
const (
	// EditConstraint targets a packing row Σ a_iv x_v ≤ 1.
	EditConstraint = "constraint"
	// EditObjective targets a covering row of the max-min objective.
	EditObjective = "objective"
)

// MaxWireEdits bounds the edit set accepted over HTTP. A delta is by
// definition small relative to its base; a client holding more edits than
// this should re-submit the instance as a full solve.
const MaxWireEdits = 4096

// RowEdit is one edit against the base instance. Rows are addressed by
// content, not index: the base is stored in canonical form, where row
// order is an artifact of sorting, so Match lists the terms of the row to
// edit (order-insensitive) and the server locates it in the base.
type RowEdit struct {
	// Op is the operation: EditAdd, EditRemove or EditReweight.
	Op string `json:"op"`
	// Kind names the section: EditConstraint or EditObjective.
	Kind string `json:"kind"`
	// Match identifies the target row by its exact term content (agent and
	// coefficient, any order). Required for remove and reweight; must be
	// absent for add.
	Match []Term `json:"match,omitempty"`
	// Terms is the new row content. Required for add and reweight; must be
	// absent for remove. A reweight must keep the agent set of Match.
	Terms []Term `json:"terms,omitempty"`
}

// DeltaRequest is the body of POST /v1/delta.
type DeltaRequest struct {
	// Base is the canonical key of the cached base solve (64 hex chars, as
	// returned by the serving layer's key rendering and computed by
	// internal/canon). The delta is priced against this base: if no shard
	// holds it any more the request fails with 404/base_unknown and the
	// client falls back to a full solve.
	Base string `json:"base"`
	// Edits is the edit set. An empty set is legal and answers from the
	// cache directly (the edited instance is the base).
	Edits []RowEdit `json:"edits,omitempty"`
}

// validTerm vets one wire term the same way instance validation does:
// agent indices are checked against the base instance server-side, so here
// only the coefficient is vetted.
func validTerm(t Term) error {
	if t.Agent < 0 {
		return fmt.Errorf("%w: negative agent %d", ErrInvalid, t.Agent)
	}
	if !(t.Coef > 0) || math.IsInf(t.Coef, 1) {
		return fmt.Errorf("%w: coefficient %v for agent %d (want strictly positive and finite)",
			ErrInvalid, t.Coef, t.Agent)
	}
	return nil
}

// Validate vets the request envelope: the base key must be 64 hex chars
// and every edit must be syntactically complete for its operation. Whether
// the edits apply to the base (rows exist, agents in range, an objective
// survives) is checked server-side against the cached instance; those
// failures also wrap ErrInvalid.
func (r *DeltaRequest) Validate() error {
	if len(r.Base) != 64 {
		return fmt.Errorf("%w: base key must be 64 hex chars, got %d", ErrInvalid, len(r.Base))
	}
	for _, c := range []byte(r.Base) {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return fmt.Errorf("%w: base key must be lowercase hex", ErrInvalid)
		}
	}
	if len(r.Edits) > MaxWireEdits {
		return fmt.Errorf("%w: %d edits exceed the serving limit %d", ErrInvalid, len(r.Edits), MaxWireEdits)
	}
	for j, e := range r.Edits {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("edit %d: %w", j, err)
		}
	}
	return nil
}

// Validate vets one edit's shape.
func (e *RowEdit) Validate() error {
	switch e.Kind {
	case EditConstraint, EditObjective:
	default:
		return fmt.Errorf("%w: unknown row kind %q (want %q or %q)",
			ErrInvalid, e.Kind, EditConstraint, EditObjective)
	}
	switch e.Op {
	case EditAdd:
		if len(e.Match) != 0 {
			return fmt.Errorf("%w: add must not carry a match", ErrInvalid)
		}
		if len(e.Terms) == 0 {
			return fmt.Errorf("%w: add requires terms", ErrInvalid)
		}
	case EditRemove:
		if len(e.Match) == 0 {
			return fmt.Errorf("%w: remove requires a match", ErrInvalid)
		}
		if len(e.Terms) != 0 {
			return fmt.Errorf("%w: remove must not carry terms", ErrInvalid)
		}
	case EditReweight:
		if len(e.Match) == 0 || len(e.Terms) == 0 {
			return fmt.Errorf("%w: reweight requires both match and terms", ErrInvalid)
		}
	default:
		return fmt.Errorf("%w: unknown edit op %q (want %q, %q or %q)",
			ErrInvalid, e.Op, EditAdd, EditRemove, EditReweight)
	}
	for _, t := range e.Match {
		if err := validTerm(t); err != nil {
			return err
		}
	}
	for _, t := range e.Terms {
		if err := validTerm(t); err != nil {
			return err
		}
	}
	return nil
}

// DeltaResponse is the body of a successful POST /v1/delta. It carries the
// same solution fields as SolveResponse — the solution is bit-identical to
// a cold solve of the edited instance — plus the delta accounting. The
// distributed engines' traffic counters (rounds/messages/bytes) are never
// present: a spliced solve runs no protocol, so only a full solve can
// report them.
type DeltaResponse struct {
	// Status/X/Utility/UpperBound are as in SolveResponse.
	Status     string    `json:"status"`
	X          []float64 `json:"x,omitempty"`
	Utility    float64   `json:"utility"`
	UpperBound float64   `json:"upper_bound"`
	// Key is the canonical key of the edited instance: the base key for the
	// next delta in a chain of edits.
	Key string `json:"key"`
	// DirtyAgents is how many agents the edit's radius-(4r+3) ball covered
	// (the kernel re-ran exactly for those); TotalAgents is the structured
	// instance size, for comparison. Spliced reports that the remaining
	// agents were taken from the cached base; it is false when the ball
	// covered everything or the pipeline took a path that needs no kernel.
	DirtyAgents int  `json:"dirty_agents"`
	TotalAgents int  `json:"total_agents"`
	Spliced     bool `json:"spliced,omitempty"`
	// Cached reports that the edited instance itself was already cached (an
	// empty edit set, or edits that cancel out).
	Cached bool `json:"cached,omitempty"`
	// LatencyMS is the server-side time in milliseconds.
	LatencyMS float64 `json:"latency_ms"`
	// Trace is the opt-in per-stage breakdown (?trace=1), including the
	// delta_plan/delta_kernel/delta_splice stages.
	Trace map[string]float64 `json:"trace,omitempty"`
}
