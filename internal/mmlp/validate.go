package mmlp

import (
	"errors"
	"fmt"
	"math"
)

// ErrInvalid is wrapped by every error returned from Validate, so callers
// can test with errors.Is(err, mmlp.ErrInvalid).
var ErrInvalid = errors.New("invalid max-min LP instance")

// Validate checks structural well-formedness:
//
//   - agent indices are within [0, NumAgents),
//   - all coefficients are finite and strictly positive,
//   - no row mentions the same agent twice.
//
// Validate does not require every agent to appear in a constraint and an
// objective; degenerate agents are handled by transform.Preprocess, mirroring
// the assumptions spelled out at the start of §4 in the paper.
func (in *Instance) Validate() error {
	if in.NumAgents < 0 {
		return fmt.Errorf("%w: negative agent count %d", ErrInvalid, in.NumAgents)
	}
	// The duplicate-detection map is created lazily for wide rows only:
	// typical rows (ΔI, ΔK small constants) use the pairwise scan below, so
	// validating steady-state traffic does not allocate.
	var seen map[int]int
	for i, c := range in.Cons {
		if err := in.validateRow("constraint", i, c.Terms, &seen); err != nil {
			return err
		}
	}
	for k, o := range in.Objs {
		if err := in.validateRow("objective", k, o.Terms, &seen); err != nil {
			return err
		}
	}
	return nil
}

// wideRowTerms is the row width above which duplicate detection switches
// from the allocation-free quadratic scan to a map.
const wideRowTerms = 16

func (in *Instance) validateRow(kind string, row int, ts []Term, seen *map[int]int) error {
	wide := len(ts) > wideRowTerms
	if wide {
		if *seen == nil {
			*seen = make(map[int]int, 64)
		} else {
			clear(*seen)
		}
	}
	for j, t := range ts {
		if t.Agent < 0 || t.Agent >= in.NumAgents {
			return fmt.Errorf("%w: %s %d references agent %d outside [0,%d)",
				ErrInvalid, kind, row, t.Agent, in.NumAgents)
		}
		if !(t.Coef > 0) || math.IsInf(t.Coef, 0) || math.IsNaN(t.Coef) {
			return fmt.Errorf("%w: %s %d has non-positive or non-finite coefficient %v for agent %d",
				ErrInvalid, kind, row, t.Coef, t.Agent)
		}
		if wide {
			if prev, dup := (*seen)[t.Agent]; dup {
				return fmt.Errorf("%w: %s %d mentions agent %d twice (terms %d and %d)",
					ErrInvalid, kind, row, t.Agent, prev, j)
			}
			(*seen)[t.Agent] = j
			continue
		}
		for p := 0; p < j; p++ {
			if ts[p].Agent == t.Agent {
				return fmt.Errorf("%w: %s %d mentions agent %d twice (terms %d and %d)",
					ErrInvalid, kind, row, t.Agent, p, j)
			}
		}
	}
	return nil
}

// ValidateStrict additionally enforces the non-degeneracy assumptions of §4:
// every constraint and objective has at least one agent, and every agent
// appears in at least one constraint and at least one objective. Instances
// that fail ValidateStrict but pass Validate can be repaired with
// transform.Preprocess.
func (in *Instance) ValidateStrict() error {
	if err := in.Validate(); err != nil {
		return err
	}
	for i, c := range in.Cons {
		if len(c.Terms) == 0 {
			return fmt.Errorf("%w: constraint %d has no agents", ErrInvalid, i)
		}
	}
	for k, o := range in.Objs {
		if len(o.Terms) == 0 {
			return fmt.Errorf("%w: objective %d has no agents", ErrInvalid, k)
		}
	}
	// Membership flags replace the full Incidence: ValidateStrict runs once
	// per solve, so only the row *presence* matters here.
	inCons := make([]bool, in.NumAgents)
	inObjs := make([]bool, in.NumAgents)
	for _, c := range in.Cons {
		for _, t := range c.Terms {
			inCons[t.Agent] = true
		}
	}
	for _, o := range in.Objs {
		for _, t := range o.Terms {
			inObjs[t.Agent] = true
		}
	}
	for v := 0; v < in.NumAgents; v++ {
		if !inCons[v] {
			return fmt.Errorf("%w: agent %d is unconstrained", ErrInvalid, v)
		}
		if !inObjs[v] {
			return fmt.Errorf("%w: agent %d contributes to no objective", ErrInvalid, v)
		}
	}
	return nil
}
