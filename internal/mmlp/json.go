package mmlp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Encode writes the instance as indented JSON.
func (in *Instance) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(in); err != nil {
		return fmt.Errorf("mmlp: encode: %w", err)
	}
	return nil
}

// Decode reads a JSON-encoded instance and validates it.
func Decode(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("mmlp: decode: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// WriteFile stores the instance as JSON at path.
func (in *Instance) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mmlp: write %s: %w", path, err)
	}
	defer f.Close()
	if err := in.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadFile loads a JSON instance from path.
func ReadFile(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mmlp: read %s: %w", path, err)
	}
	defer f.Close()
	return Decode(f)
}
