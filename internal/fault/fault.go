// Package fault is a deterministic fault-injection layer for chaos
// testing the serving fleet. An Injector is parsed from a compact
// scenario spec and wraps either an http.Handler (shard side) or an
// http.RoundTripper (client side), injecting latency, error statuses,
// blackholes, slow response bodies, and mid-stream truncation. All
// randomness comes from a single seeded source, so a given spec replays
// the same fault sequence on every run. The zero Injector (nil, or a
// spec with no rules) wraps to the original handler untouched, so the
// layer costs nothing when disabled.
package fault

import (
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Rule is one parsed fault clause: which requests it matches (path
// prefix + probability) and what it does to them. At most one action
// fires per request — the first matching rule wins.
type Rule struct {
	// Path is a request-path prefix; empty matches every path.
	Path string
	// Rate is the match probability in (0, 1]; 1 means always.
	Rate float64

	// Latency is added before the request is handled.
	Latency time.Duration
	// ErrorCode, when non-zero, short-circuits the request with this
	// HTTP status (after Latency, if any).
	ErrorCode int
	// Blackhole holds the request open without responding until the
	// client gives up, then aborts the connection.
	Blackhole bool
	// Slow delays every response-body write by this much.
	Slow time.Duration
	// Truncate cuts the response body after this many bytes and aborts
	// the connection mid-stream (the NDJSON-truncation fault).
	Truncate int
}

// Injector applies parsed rules to requests. Safe for concurrent use.
type Injector struct {
	rules []Rule

	mu  sync.Mutex // guards rng: rand.Rand is not goroutine-safe
	rng *rand.Rand

	injected atomic.Int64
}

// Parse builds an Injector from a scenario spec. Grammar: rules are
// separated by ';', fields within a rule by spaces, each field is
// key=value (or a bare flag):
//
//	latency=800ms                     add 800ms to every request
//	path=/v1/ latency=800ms           ... only under /v1/
//	error=503 rate=0.2                fail 20% of requests with 503
//	blackhole path=/v1/solve          hold solves open forever
//	slow=5ms path=/v1/batch           drip the batch stream
//	truncate=2048 path=/v1/batch      cut the stream after 2 KiB
//	seed=7                            seed the shared RNG (default 1)
//
// Each rule must carry exactly one action (latency, error, blackhole,
// slow, truncate); path, rate and seed are modifiers. An empty spec
// yields a nil Injector, which is valid and injects nothing.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{}
	seed := int64(1)
	for _, clause := range strings.Split(spec, ";") {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		r := Rule{Rate: 1}
		actions := 0
		for _, f := range fields {
			key, val, hasVal := strings.Cut(f, "=")
			var err error
			switch key {
			case "path":
				r.Path = val
			case "rate":
				r.Rate, err = strconv.ParseFloat(val, 64)
				if err == nil && (r.Rate <= 0 || r.Rate > 1) {
					err = fmt.Errorf("rate %v outside (0, 1]", r.Rate)
				}
			case "seed":
				seed, err = strconv.ParseInt(val, 10, 64)
			case "latency":
				r.Latency, err = time.ParseDuration(val)
				actions++
			case "error":
				r.ErrorCode, err = strconv.Atoi(val)
				if err == nil && (r.ErrorCode < 100 || r.ErrorCode > 599) {
					err = fmt.Errorf("status %d outside 100..599", r.ErrorCode)
				}
				actions++
			case "blackhole":
				if hasVal {
					err = fmt.Errorf("blackhole takes no value")
				}
				r.Blackhole = true
				actions++
			case "slow":
				r.Slow, err = time.ParseDuration(val)
				actions++
			case "truncate":
				r.Truncate, err = strconv.Atoi(val)
				if err == nil && r.Truncate < 0 {
					err = fmt.Errorf("truncate %d is negative", r.Truncate)
				}
				actions++
			default:
				err = fmt.Errorf("unknown field")
			}
			if err != nil {
				return nil, fmt.Errorf("fault: bad field %q in rule %q: %v", f, strings.TrimSpace(clause), err)
			}
		}
		if actions == 0 {
			// A clause of pure modifiers (e.g. a lone "seed=7") is a
			// directive, not a rule.
			continue
		}
		if actions > 1 {
			return nil, fmt.Errorf("fault: rule %q has %d actions, want exactly one", strings.TrimSpace(clause), actions)
		}
		in.rules = append(in.rules, r)
	}
	if len(in.rules) == 0 {
		return nil, nil
	}
	in.rng = rand.New(rand.NewSource(seed))
	return in, nil
}

// Count reports how many faults have fired. Zero on a nil Injector.
func (in *Injector) Count() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// match returns the first rule matching path whose rate roll passes,
// or nil. Rolls consume the shared deterministic RNG in rule order.
func (in *Injector) match(path string) *Rule {
	for i := range in.rules {
		r := &in.rules[i]
		if r.Path != "" && !strings.HasPrefix(path, r.Path) {
			continue
		}
		if r.Rate < 1 {
			in.mu.Lock()
			roll := in.rng.Float64()
			in.mu.Unlock()
			if roll >= r.Rate {
				continue
			}
		}
		return r
	}
	return nil
}

// Wrap returns a handler that applies the injector's rules before (and
// during) next. A nil or empty Injector returns next unchanged — the
// disabled path adds zero indirection.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	if in == nil || len(in.rules) == 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rule := in.match(r.URL.Path)
		if rule == nil {
			next.ServeHTTP(w, r)
			return
		}
		in.injected.Add(1)
		if rule.Latency > 0 {
			select {
			case <-time.After(rule.Latency):
			case <-r.Context().Done():
				panic(http.ErrAbortHandler)
			}
		}
		switch {
		case rule.Blackhole:
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		case rule.ErrorCode != 0:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(rule.ErrorCode)
			fmt.Fprintf(w, "{\"error\":\"injected fault (status %d)\"}\n", rule.ErrorCode)
		case rule.Slow > 0 || rule.Truncate > 0:
			next.ServeHTTP(&faultWriter{ResponseWriter: w, slow: rule.Slow, truncate: rule.Truncate, limited: rule.Truncate > 0}, r)
		default:
			// Pure-latency rule: the delay already happened.
			next.ServeHTTP(w, r)
		}
	})
}

// faultWriter is a ResponseWriter that drips and/or truncates the body.
// It forwards Flush so streaming handlers keep streaming.
type faultWriter struct {
	http.ResponseWriter
	slow     time.Duration
	truncate int // remaining byte allowance when limited
	limited  bool
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	if fw.slow > 0 {
		time.Sleep(fw.slow)
	}
	if !fw.limited {
		return fw.ResponseWriter.Write(p)
	}
	if fw.truncate <= 0 {
		// Allowance exhausted: kill the connection mid-stream. The
		// panic is http's sanctioned abort — the server drops the
		// connection without a graceful close, so the client sees a
		// truncated body, exactly the partial-failure being simulated.
		panic(http.ErrAbortHandler)
	}
	if len(p) > fw.truncate {
		fw.ResponseWriter.Write(p[:fw.truncate])
		fw.truncate = 0
		panic(http.ErrAbortHandler)
	}
	fw.truncate -= len(p)
	return fw.ResponseWriter.Write(p)
}

func (fw *faultWriter) Flush() {
	if f, ok := fw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// RoundTripper returns a client-side transport applying the injector's
// rules before delegating to base (http.DefaultTransport when nil).
// Latency delays the request, error synthesizes a response without
// touching the network, and blackhole blocks until the request context
// is done. Slow/truncate are server-side-only and act as latency here.
func (in *Injector) RoundTripper(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if in == nil || len(in.rules) == 0 {
		return base
	}
	return &roundTripper{in: in, base: base}
}

type roundTripper struct {
	in   *Injector
	base http.RoundTripper
}

func (rt *roundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	rule := rt.in.match(req.URL.Path)
	if rule == nil {
		return rt.base.RoundTrip(req)
	}
	rt.in.injected.Add(1)
	if d := rule.Latency + rule.Slow; d > 0 {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	switch {
	case rule.Blackhole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case rule.ErrorCode != 0:
		body := fmt.Sprintf("{\"error\":\"injected fault (status %d)\"}\n", rule.ErrorCode)
		return &http.Response{
			StatusCode:    rule.ErrorCode,
			Status:        fmt.Sprintf("%d %s", rule.ErrorCode, http.StatusText(rule.ErrorCode)),
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          nopCloser{strings.NewReader(body)},
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	default:
		return rt.base.RoundTrip(req)
	}
}

type nopCloser struct{ *strings.Reader }

func (nopCloser) Close() error { return nil }
