package fault

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseEmptyAndDirectiveOnly(t *testing.T) {
	for _, spec := range []string{"", "   ", "seed=7", "path=/v1/ rate=0.5"} {
		in, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if in != nil {
			t.Fatalf("Parse(%q) = %+v, want nil injector", spec, in)
		}
		// A nil injector must be transparent in both wrap directions.
		h := http.NotFoundHandler()
		if got := in.Wrap(h); got == nil {
			t.Fatalf("nil injector Wrap returned nil")
		}
		if got := in.RoundTripper(http.DefaultTransport); got != http.DefaultTransport {
			t.Fatalf("nil injector RoundTripper did not return base")
		}
		if in.Count() != 0 {
			t.Fatalf("nil injector Count = %d", in.Count())
		}
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	bad := []string{
		"bogus=1",
		"latency=800ms error=503", // two actions in one rule
		"error=42",                // status out of range
		"error=xyz",
		"latency=fast",
		"rate=1.5 latency=1ms",
		"rate=0 latency=1ms",
		"truncate=-1",
		"blackhole=yes",
		"seed=abc latency=1ms",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
}

func TestParseRules(t *testing.T) {
	in, err := Parse("path=/v1/ latency=800ms; error=503 rate=0.25; seed=9")
	if err != nil {
		t.Fatal(err)
	}
	if len(in.rules) != 2 {
		t.Fatalf("got %d rules, want 2", len(in.rules))
	}
	if r := in.rules[0]; r.Path != "/v1/" || r.Latency != 800*time.Millisecond || r.Rate != 1 {
		t.Errorf("rule 0 = %+v", r)
	}
	if r := in.rules[1]; r.ErrorCode != 503 || r.Rate != 0.25 || r.Path != "" {
		t.Errorf("rule 1 = %+v", r)
	}
}

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
}

func TestErrorRuleAndPathScope(t *testing.T) {
	in, err := Parse("path=/v1/solve error=418")
	if err != nil {
		t.Fatal(err)
	}
	h := in.Wrap(okHandler())

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/solve", nil))
	if rec.Code != 418 {
		t.Fatalf("matched path: status %d, want 418", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "injected fault") {
		t.Fatalf("matched path: body %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || rec.Body.String() != "ok" {
		t.Fatalf("unmatched path: status %d body %q", rec.Code, rec.Body.String())
	}
	if in.Count() != 1 {
		t.Fatalf("Count = %d, want 1 (only the matched request)", in.Count())
	}
}

func TestRateRollsAreDeterministic(t *testing.T) {
	sequence := func() []bool {
		in, err := Parse("error=500 rate=0.5; seed=42")
		if err != nil {
			t.Fatal(err)
		}
		h := in.Wrap(okHandler())
		var fired []bool
		for i := 0; i < 64; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
			fired = append(fired, rec.Code == 500)
		}
		return fired
	}
	a, b := sequence(), sequence()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at request %d: same spec must replay the same faults", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("rate=0.5 fired %d/%d times; the roll is not happening", hits, len(a))
	}
}

func TestLatencyRuleDelays(t *testing.T) {
	in, err := Parse("latency=50ms")
	if err != nil {
		t.Fatal(err)
	}
	h := in.Wrap(okHandler())
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("request took %v, want >= 50ms", elapsed)
	}
	if rec.Code != 200 || rec.Body.String() != "ok" {
		t.Fatalf("latency rule altered the response: %d %q", rec.Code, rec.Body.String())
	}
}

func TestTruncateAbortsMidStream(t *testing.T) {
	in, err := Parse("truncate=5")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < 10; i++ {
			io.WriteString(w, "abcd\n")
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
		}
	})))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		return // connection died before headers — also a valid truncation
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil && len(body) >= 50 {
		t.Fatalf("read full %d-byte body, want truncation after ~5 bytes", len(body))
	}
	if len(body) > 5 {
		t.Fatalf("read %d bytes past the 5-byte allowance", len(body))
	}
}

func TestSlowRuleDripsBody(t *testing.T) {
	in, err := Parse("slow=20ms")
	if err != nil {
		t.Fatal(err)
	}
	h := in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for i := 0; i < 3; i++ {
			io.WriteString(w, "line\n")
		}
	}))
	start := time.Now()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("3 writes took %v, want >= 60ms at 20ms/write", elapsed)
	}
	if got := rec.Body.String(); got != "line\nline\nline\n" {
		t.Fatalf("slow rule corrupted the body: %q", got)
	}
}

func TestBlackholeHoldsUntilClientGivesUp(t *testing.T) {
	in, err := Parse("blackhole")
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(in.Wrap(okHandler()))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL, nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("blackholed request got a response (status %d)", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 90*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("blackholed request failed after %v, want ~the client deadline", elapsed)
	}
}

func TestRoundTripperErrorSynthesis(t *testing.T) {
	in, err := Parse("error=503")
	if err != nil {
		t.Fatal(err)
	}
	rt := in.RoundTripper(failingTransport{}) // base must never be reached
	req := httptest.NewRequest("POST", "http://shard/v1/solve", nil)
	resp, err := rt.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "injected fault") {
		t.Fatalf("body %q", body)
	}
	if in.Count() != 1 {
		t.Fatalf("Count = %d, want 1", in.Count())
	}
}

func TestRoundTripperBlackholeRespectsContext(t *testing.T) {
	in, err := Parse("blackhole")
	if err != nil {
		t.Fatal(err)
	}
	rt := in.RoundTripper(failingTransport{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://shard/x", nil)
	if _, err := rt.RoundTrip(req); err == nil {
		t.Fatal("blackholed round trip returned nil error")
	}
}

type failingTransport struct{}

func (failingTransport) RoundTrip(*http.Request) (*http.Response, error) {
	panic("base transport reached through a short-circuiting fault rule")
}
