package gen

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/simplex"
	"repro/internal/transform"
)

func TestRandomStrictlyValidAndBounded(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := RandomConfig{Agents: 10, MaxDegI: 3, MaxDegK: 4, ExtraCons: 3, ExtraObjs: 2}
		in := Random(cfg, seed)
		if err := in.ValidateStrict(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if in.DegreeI() > cfg.MaxDegI || in.DegreeK() > cfg.MaxDegK {
			t.Fatalf("seed %d: degrees %d/%d exceed bounds", seed, in.DegreeI(), in.DegreeK())
		}
	}
}

func TestRandomZeroOne(t *testing.T) {
	in := Random(RandomConfig{Agents: 8, MaxDegI: 2, MaxDegK: 2, ZeroOne: true}, 3)
	for _, c := range in.Cons {
		for _, tm := range c.Terms {
			if tm.Coef != 1 {
				t.Fatalf("non-unit coefficient %v", tm.Coef)
			}
		}
	}
	for _, o := range in.Objs {
		for _, tm := range o.Terms {
			if tm.Coef != 1 {
				t.Fatalf("non-unit objective coefficient %v", tm.Coef)
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	cfg := RandomConfig{Agents: 12, MaxDegI: 3, MaxDegK: 3, ExtraCons: 2}
	a := Random(cfg, 99)
	b := Random(cfg, 99)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different instances")
	}
	c := Random(cfg, 100)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestRandomConnected(t *testing.T) {
	in := Random(RandomConfig{Agents: 15, MaxDegI: 3, MaxDegK: 3}, 5)
	if !bipartite.FromInstance(in).Connected() {
		t.Fatal("covering rows should chain the graph connected")
	}
}

func TestRandomStructuredIsStructured(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		in := RandomStructured(StructuredConfig{Objectives: 5, MaxDegK: 4, ExtraCons: 3}, seed)
		if err := transform.CheckStructured(in); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRandomStructuredUnitCoefs(t *testing.T) {
	in := RandomStructured(StructuredConfig{Objectives: 3, MaxDegK: 3, UnitCoefs: true}, 1)
	for _, c := range in.Cons {
		for _, tm := range c.Terms {
			if tm.Coef != 1 {
				t.Fatalf("non-unit constraint coefficient %v", tm.Coef)
			}
		}
	}
}

func TestTriNecklaceShapeAndGirth(t *testing.T) {
	m := 6
	in := TriNecklace(m)
	if err := transform.CheckStructured(in); err != nil {
		t.Fatalf("not structured: %v", err)
	}
	if in.NumAgents != 3*m || len(in.Cons) != 2*m || len(in.Objs) != m {
		t.Fatalf("shape wrong: %v", in.Stats())
	}
	if in.DegreeK() != 3 || in.DegreeI() != 2 {
		t.Fatalf("degrees: ΔK=%d ΔI=%d", in.DegreeK(), in.DegreeI())
	}
	// C_k–K_k–R_k–I–L_{k+1}–K_{k+1}–C_{k+1}–I–C_k closes an 8-cycle for
	// every m; the band symmetry, not the girth, is the adversarial property.
	if g := bipartite.FromInstance(in).Girth(); g != 8 {
		t.Fatalf("girth = %d, want 8", g)
	}
}

func TestTriNecklaceOptimum(t *testing.T) {
	in := TriNecklace(6)
	r := simplex.SolveMaxMin(in)
	if r.Status != simplex.Optimal {
		t.Fatalf("status %v", r.Status)
	}
	// l + r ≤ 1 around the ring and 2c ≤ 1 at the symmetric point give
	// opt = 3/2 (l = 1, r = 0 alternating also achieves 3/2).
	if math.Abs(r.Value-1.5) > 1e-9 {
		t.Fatalf("optimum = %v, want 1.5", r.Value)
	}
}

func TestLayeredNecklaceShapeAndLayers(t *testing.T) {
	m := 6
	in, agentLayer, objLayer := LayeredNecklace(m)
	if err := transform.CheckStructured(in); err != nil {
		t.Fatalf("not structured: %v", err)
	}
	if len(agentLayer) != 3*m || len(objLayer) != m {
		t.Fatal("layer slices wrong length")
	}
	// Layer classes: objectives ≡ 0, down ≡ 1, up ≡ 3 (mod 4) — Lemma 8.
	for k, l := range objLayer {
		if ((l%4)+4)%4 != 0 {
			t.Fatalf("objective %d layer %d not ≡ 0 mod 4", k, l)
		}
	}
	ups, downs := 0, 0
	for v, l := range agentLayer {
		switch ((l % 4) + 4) % 4 {
		case 1:
			downs++
		case 3:
			ups++
		default:
			t.Fatalf("agent %d layer %d not ≡ ±1 mod 4", v, l)
		}
	}
	if ups != m || downs != 2*m {
		t.Fatalf("ups=%d downs=%d, want %d/%d", ups, downs, m, 2*m)
	}
	// Every constraint joins a down agent at ℓ and an up agent at ℓ+2
	// (mod 4m around the cycle).
	period := 4 * m
	for i, c := range in.Cons {
		l0 := agentLayer[c.Terms[0].Agent]
		l1 := agentLayer[c.Terms[1].Agent]
		d := ((l1-l0)%period + period) % period
		if d != 2 && d != period-2 {
			t.Fatalf("constraint %d joins layers %d and %d", i, l0, l1)
		}
	}
	// Every objective has exactly one up agent.
	for k, o := range in.Objs {
		ups := 0
		for _, tm := range o.Terms {
			if ((agentLayer[tm.Agent]%4)+4)%4 == 3 {
				ups++
			}
		}
		if ups != 1 {
			t.Fatalf("objective %d has %d up agents", k, ups)
		}
	}
}

func TestSensorGridBipartiteForm(t *testing.T) {
	in := SensorGrid(SensorGridConfig{Width: 4, Height: 4, Sensors: 6, Fan: 3}, 11)
	if err := in.ValidateStrict(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	inc := in.Incidence()
	for v := 0; v < in.NumAgents; v++ {
		if len(inc.ConsOf[v]) != 1 || len(inc.ObjsOf[v]) != 1 {
			t.Fatalf("agent %d not bipartite: %d cons, %d objs",
				v, len(inc.ConsOf[v]), len(inc.ObjsOf[v]))
		}
	}
	if len(in.Objs) != 6 {
		t.Fatalf("objectives = %d, want one per sensor", len(in.Objs))
	}
	// Energy coefficients grow with distance: all ≥ 1.
	for _, c := range in.Cons {
		for _, tm := range c.Terms {
			if tm.Coef < 1 {
				t.Fatalf("energy coefficient %v < 1", tm.Coef)
			}
		}
	}
}

func TestBandwidthShape(t *testing.T) {
	cfg := BandwidthConfig{Links: 12, Customers: 5, PathsPerCustomer: 3, MaxPathLen: 4}
	in := Bandwidth(cfg, 13)
	if err := in.ValidateStrict(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if len(in.Objs) != cfg.Customers {
		t.Fatalf("objectives = %d", len(in.Objs))
	}
	if in.NumAgents != cfg.Customers*cfg.PathsPerCustomer {
		t.Fatalf("agents = %d", in.NumAgents)
	}
	// Paths of length > 1 put agents in several constraints.
	inc := in.Incidence()
	multi := 0
	for v := 0; v < in.NumAgents; v++ {
		if len(inc.ConsOf[v]) > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-link path generated; ΔI structure untested")
	}
}

func TestLayeredTreeIsAStructuredTree(t *testing.T) {
	for _, depth := range []int{1, 2, 3} {
		in := LayeredTree(depth)
		if err := transform.CheckStructured(in); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		g := bipartite.FromInstance(in)
		// All cycles live inside the anchor gadgets: girth 4, and the
		// cyclomatic number E − V + C equals the number of anchors.
		if got := g.Girth(); got != 4 {
			t.Fatalf("depth %d: girth %d, want 4 (anchor gadgets only)", depth, got)
		}
		edges := 0
		for n := 0; n < g.NumNodes(); n++ {
			edges += g.Degree(bipartite.Node(n))
		}
		edges /= 2
		comps := len(g.Components())
		anchors := 1 + 2*(1<<(depth-1)) // root + leaf down-agents
		if cyc := edges - g.NumNodes() + comps; cyc != anchors {
			t.Fatalf("depth %d: %d independent cycles, want %d (one per anchor)", depth, cyc, anchors)
		}
	}
	// depth 2: tiers of 1+2 objectives (9 agents) + anchors for the root's
	// up-agent and 4 leaf down-agents (5 gadgets × 2 agents).
	in := LayeredTree(2)
	if in.NumAgents != 9+10 {
		t.Fatalf("agents = %d, want 19", in.NumAgents)
	}
	if len(in.Objs) != 3+5 {
		t.Fatalf("objectives = %d, want 8", len(in.Objs))
	}
}

func TestLayeredTreeSolvable(t *testing.T) {
	in := LayeredTree(3)
	r := simplex.SolveMaxMin(in)
	if r.Status != simplex.Optimal {
		t.Fatalf("status %v", r.Status)
	}
	if r.Value <= 0 {
		t.Fatalf("optimum %v not positive", r.Value)
	}
}

func TestEquationsOptimumIsOne(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		in := Equations(EquationsConfig{Vars: 4, Rows: 4, Density: 0.5}, seed)
		if err := in.ValidateStrict(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := simplex.SolveMaxMin(in)
		if r.Status != simplex.Optimal {
			t.Fatalf("seed %d: %v", seed, r.Status)
		}
		if math.Abs(r.Value-1) > 1e-7 {
			t.Fatalf("seed %d: optimum %v, want 1 (solvable system)", seed, r.Value)
		}
		if d := Opt1Distance(in, r.X); d > 1e-7 {
			t.Fatalf("seed %d: optimal solution at distance %v", seed, d)
		}
	}
}
