package gen

import (
	"slices"

	"repro/internal/mmlp"
)

// Permuted respells an instance without changing the problem: rows and the
// terms within them are reversed, so the JSON body (and any raw hash of
// it) differs while the canonical key — and therefore the solution — is
// identical. The sharding layer's tests and the fleet-smoke harness both
// use it to prove that routing and caching are keyed on the canonical
// problem, not on its spelling.
func Permuted(in *mmlp.Instance) *mmlp.Instance {
	out := &mmlp.Instance{NumAgents: in.NumAgents}
	for i := len(in.Cons) - 1; i >= 0; i-- {
		terms := slices.Clone(in.Cons[i].Terms)
		slices.Reverse(terms)
		out.Cons = append(out.Cons, mmlp.Constraint{Terms: terms})
	}
	for i := len(in.Objs) - 1; i >= 0; i-- {
		terms := slices.Clone(in.Objs[i].Terms)
		slices.Reverse(terms)
		out.Objs = append(out.Objs, mmlp.Objective{Terms: terms})
	}
	return out
}
