// Package gen builds max-min LP instances: random families with bounded
// degrees, the structured families the core algorithm runs on directly,
// adversarial symmetric cycles for the lower-bound experiments, and the
// application topologies the paper's introduction motivates (balanced data
// gathering in sensor networks, fair bandwidth allocation) plus the
// mixed packing/covering connection of [20] (nonnegative linear equation
// systems). All generators are deterministic in their seed.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/mmlp"
)

// RandomConfig shapes Random.
type RandomConfig struct {
	// Agents is the number of variables (≥ 2).
	Agents int
	// MaxDegI bounds constraint row size ΔI (≥ 1).
	MaxDegI int
	// MaxDegK bounds objective row size ΔK (≥ 1).
	MaxDegK int
	// ExtraCons and ExtraObjs add rows beyond the covering minimum.
	ExtraCons, ExtraObjs int
	// ZeroOne forces all coefficients to 1 (the paper's {0,1} case);
	// otherwise coefficients are uniform in [0.5, 2).
	ZeroOne bool
}

// Random builds a strictly valid instance: every agent is covered by at
// least one constraint and one objective, row sizes respect the configured
// degree bounds, and the communication graph is connected whenever the
// covering rows make it so (they chain agents cyclically).
func Random(cfg RandomConfig, seed int64) *mmlp.Instance {
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Agents
	in := mmlp.New(n)
	coef := func() float64 {
		if cfg.ZeroOne {
			return 1
		}
		return 0.5 + 1.5*rng.Float64()
	}
	// Cover all agents with chained rows: row t covers agents
	// [start, start+size) mod n, with start advancing size−1 so consecutive
	// rows overlap in one agent (keeping the graph connected).
	cover := func(maxSize int, add func(pairs ...float64) int) {
		if maxSize < 1 {
			maxSize = 1
		}
		start := 0
		for covered := 0; covered < n; {
			size := 1
			if maxSize > 1 {
				size = 2 + rng.Intn(maxSize-1)
			}
			if size > n {
				size = n
			}
			pairs := make([]float64, 0, 2*size)
			for j := 0; j < size; j++ {
				pairs = append(pairs, float64((start+j)%n), coef())
			}
			add(pairs...)
			adv := size - 1
			if adv < 1 {
				adv = 1
			}
			start = (start + adv) % n
			covered += adv
		}
	}
	cover(cfg.MaxDegI, in.AddConstraint)
	cover(cfg.MaxDegK, in.AddObjective)
	// Extra random rows.
	randomRow := func(maxSize int) []float64 {
		size := 1
		if maxSize > 1 {
			size = 1 + rng.Intn(maxSize)
		}
		if size > n {
			size = n
		}
		perm := rng.Perm(n)[:size]
		pairs := make([]float64, 0, 2*size)
		for _, v := range perm {
			pairs = append(pairs, float64(v), coef())
		}
		return pairs
	}
	for e := 0; e < cfg.ExtraCons; e++ {
		in.AddConstraint(randomRow(cfg.MaxDegI)...)
	}
	for e := 0; e < cfg.ExtraObjs; e++ {
		in.AddObjective(randomRow(cfg.MaxDegK)...)
	}
	return in
}

// StructuredConfig shapes RandomStructured.
type StructuredConfig struct {
	// Objectives is the number of objectives (≥ 1).
	Objectives int
	// MaxDegK bounds the agents per objective, ≥ 2 (sizes are uniform in
	// [2, MaxDegK]).
	MaxDegK int
	// ExtraCons adds random constraints beyond the covering matching.
	ExtraCons int
	// UnitCoefs forces a_iv = 1; otherwise uniform in [0.5, 2).
	UnitCoefs bool
}

// RandomStructured builds an instance already in the structured form of §5:
// every agent in exactly one objective (sizes ≥ 2, unit coefficients),
// every constraint over exactly two agents, every agent in at least one
// constraint. Returned instances satisfy transform.CheckStructured.
func RandomStructured(cfg StructuredConfig, seed int64) *mmlp.Instance {
	rng := rand.New(rand.NewSource(seed))
	if cfg.MaxDegK < 2 {
		cfg.MaxDegK = 2
	}
	in := mmlp.New(0)
	for k := 0; k < cfg.Objectives; k++ {
		size := 2 + rng.Intn(cfg.MaxDegK-1)
		pairs := make([]float64, 0, 2*size)
		for j := 0; j < size; j++ {
			pairs = append(pairs, float64(in.NumAgents), 1)
			in.NumAgents++
		}
		in.AddObjective(pairs...)
	}
	coef := func() float64 {
		if cfg.UnitCoefs {
			return 1
		}
		return 0.5 + 1.5*rng.Float64()
	}
	// Constraint cover: random permutation paired up; with an odd count the
	// leftover agent pairs with a random other agent.
	perm := rng.Perm(in.NumAgents)
	for j := 0; j+1 < len(perm); j += 2 {
		in.AddConstraint(float64(perm[j]), coef(), float64(perm[j+1]), coef())
	}
	if len(perm)%2 == 1 {
		last := perm[len(perm)-1]
		other := perm[rng.Intn(len(perm)-1)]
		in.AddConstraint(float64(last), coef(), float64(other), coef())
	}
	for e := 0; e < cfg.ExtraCons; e++ {
		a := rng.Intn(in.NumAgents)
		b := rng.Intn(in.NumAgents)
		if a == b {
			continue
		}
		in.AddConstraint(float64(a), coef(), float64(b), coef())
	}
	return in
}

// TriNecklace builds a symmetric cycle family used by experiment E3:
// m objectives K_k = {L_k, C_k, R_k} (ΔK = 3, unit coefficients) joined by
// constraints {R_k, L_{k+1}} and {C_k, C_{k+1}} around a cycle (ΔI = 2).
// The construction is vertex-transitive per band: every L agent (and every
// C, and every R) has the same view at every radius, so any deterministic
// local algorithm must output the same value per band — the symmetry the
// Theorem 1 lower bound exploits. Agents are numbered L_k = 3k, C_k = 3k+1,
// R_k = 3k+2. The girth is 8 for every m ≥ 3.
func TriNecklace(m int) *mmlp.Instance {
	in := mmlp.New(3 * m)
	l := func(k int) float64 { return float64(3 * (((k % m) + m) % m)) }
	c := func(k int) float64 { return l(k) + 1 }
	r := func(k int) float64 { return l(k) + 2 }
	for k := 0; k < m; k++ {
		in.AddObjective(l(k), 1, c(k), 1, r(k), 1)
		in.AddConstraint(r(k), 1, l(k+1), 1)
		in.AddConstraint(c(k), 1, c(k+1), 1)
	}
	return in
}

// LayeredNecklace builds the layer-consistent cycle family used by the
// Lemma 9–11 tests: m objectives K_k = {U_k, D_k1, D_k2} with constraints
// {D_k1, U_{k+1}} and {D_k2, U_{k+1}} around a cycle. When R divides m the
// assignment ObjLayer[k] = 4k, U_k ↦ 4k−1, D_ki ↦ 4k+1 is consistent
// modulo 4R. Agents are numbered U_k = 3k, D_k1 = 3k+1, D_k2 = 3k+2.
// The second return values are the agent and objective layers.
func LayeredNecklace(m int) (*mmlp.Instance, []int, []int) {
	in := mmlp.New(3 * m)
	u := func(k int) float64 { return float64(3 * (((k % m) + m) % m)) }
	agentLayer := make([]int, 3*m)
	objLayer := make([]int, m)
	for k := 0; k < m; k++ {
		in.AddObjective(u(k), 1, u(k)+1, 1, u(k)+2, 1)
		in.AddConstraint(u(k)+1, 1, u(k+1), 1)
		in.AddConstraint(u(k)+2, 1, u(k+1), 1)
		objLayer[k] = 4 * k
		agentLayer[3*k] = 4*k - 1
		agentLayer[3*k+1] = 4*k + 1
		agentLayer[3*k+2] = 4*k + 1
	}
	return in, agentLayer, objLayer
}

// LayeredTree builds a finite chunk of the infinite layered tree of
// Figure 1: `depth` tiers of objectives, each with one up-agent above and
// two down-agents below; every down-agent's constraint leads to the
// up-agent of a child objective. The boundary (the root's up-agent and the
// deepest tier's down-agents) is closed with 4-node anchor gadgets
// (agents z1, z2 with objective {z1,z2} and constraints {boundary, z1},
// {z1, z2}) so the instance stays structured. A finite structured
// instance can never be an actual tree — agents, constraints and
// objectives all have degree ≥ 2, so a finite communication graph must
// contain cycles (which is exactly why §5's G is countably infinite) —
// but here every cycle is confined to a 4-cycle inside an anchor gadget:
// the interior is genuinely tree-shaped, making the family the closest
// finite realisation of Figure 1.
//
// Agents are numbered tier by tier: tier t (0-based) starts at offset
// Σ_{j<t} 3·2^j, with the up-agent first and its two down-agents after it,
// repeated for the 2^t objectives of the tier; anchor agents follow all
// tiers.
func LayeredTree(depth int) *mmlp.Instance {
	in := mmlp.New(0)
	newAgent := func() float64 {
		v := float64(in.NumAgents)
		in.NumAgents++
		return v
	}
	anchor := func(boundary float64) {
		z1 := newAgent()
		z2 := newAgent()
		in.AddObjective(z1, 1, z2, 1)
		in.AddConstraint(boundary, 1, z1, 1)
		in.AddConstraint(z1, 1, z2, 1)
	}
	type objNode struct{ up, d1, d2 float64 }
	var tier []objNode
	var anchors []float64 // boundary agents to anchor at the end
	for t := 0; t < depth; t++ {
		var next []objNode
		count := 1 << t
		for j := 0; j < count; j++ {
			up := newAgent()
			d1 := newAgent()
			d2 := newAgent()
			in.AddObjective(up, 1, d1, 1, d2, 1)
			next = append(next, objNode{up, d1, d2})
		}
		if t == 0 {
			anchors = append(anchors, next[0].up)
		} else {
			// Wire the previous tier's down-agents to this tier's up-agents.
			for j, parent := range tier {
				in.AddConstraint(parent.d1, 1, next[2*j].up, 1)
				in.AddConstraint(parent.d2, 1, next[2*j+1].up, 1)
			}
		}
		tier = next
	}
	for _, leaf := range tier {
		anchors = append(anchors, leaf.d1, leaf.d2)
	}
	for _, b := range anchors {
		anchor(b)
	}
	return in
}

// SensorGridConfig shapes SensorGrid.
type SensorGridConfig struct {
	// Width and Height size the relay grid (relays at integer coordinates).
	Width, Height int
	// Sensors is the number of data sources scattered in the grid.
	Sensors int
	// Fan is how many nearby relays each sensor can route through (≥ 1).
	Fan int
}

// SensorGrid builds the balanced data-gathering workload of the paper's
// introduction: sensor k splits its data stream across its Fan nearest
// relays; routing one unit through relay i costs energy proportional to
// 1 + d² (d the sensor-relay distance), and every relay has one unit of
// battery (the packing row). Objectives count delivered data, so the
// max-min optimum is the best worst-case per-sensor throughput. Each agent
// is a (sensor, relay) route: a bipartite max-min LP.
func SensorGrid(cfg SensorGridConfig, seed int64) *mmlp.Instance {
	rng := rand.New(rand.NewSource(seed))
	if cfg.Fan < 1 {
		cfg.Fan = 1
	}
	type pt struct{ x, y float64 }
	relays := make([]pt, 0, cfg.Width*cfg.Height)
	for gx := 0; gx < cfg.Width; gx++ {
		for gy := 0; gy < cfg.Height; gy++ {
			relays = append(relays, pt{float64(gx), float64(gy)})
		}
	}
	in := mmlp.New(0)
	relayRows := make([][]float64, len(relays)) // (agent, coef) pair lists
	for s := 0; s < cfg.Sensors; s++ {
		sx := rng.Float64() * float64(cfg.Width-1)
		sy := rng.Float64() * float64(cfg.Height-1)
		// Pick the Fan nearest relays by scanning (grids are small).
		type cand struct {
			idx int
			d2  float64
		}
		best := make([]cand, 0, cfg.Fan)
		for ri, rp := range relays {
			dx, dy := rp.x-sx, rp.y-sy
			c := cand{ri, dx*dx + dy*dy}
			pos := len(best)
			for pos > 0 && best[pos-1].d2 > c.d2 {
				pos--
			}
			if pos < cfg.Fan {
				best = append(best, cand{})
				copy(best[pos+1:], best[pos:])
				best[pos] = c
				if len(best) > cfg.Fan {
					best = best[:cfg.Fan]
				}
			}
		}
		objPairs := make([]float64, 0, 2*len(best))
		for _, c := range best {
			v := float64(in.NumAgents)
			in.NumAgents++
			objPairs = append(objPairs, v, 1)
			relayRows[c.idx] = append(relayRows[c.idx], v, 1+c.d2)
		}
		in.AddObjective(objPairs...)
	}
	for _, row := range relayRows {
		if len(row) > 0 {
			in.AddConstraint(row...)
		}
	}
	return in
}

// BandwidthConfig shapes Bandwidth.
type BandwidthConfig struct {
	// Links is the number of links on the ring backbone.
	Links int
	// Customers is the number of customers requesting bandwidth.
	Customers int
	// PathsPerCustomer is how many alternative routes each customer has.
	PathsPerCustomer int
	// MaxPathLen bounds the hop count of a route.
	MaxPathLen int
}

// Bandwidth builds the fair bandwidth-allocation workload of the paper's
// introduction on a ring backbone: each customer owns a few candidate
// routes (contiguous arcs of links); a route consumes capacity on every
// link it crosses (a_iv = 1) and delivers its rate to the customer
// (c_kv = 1). Links have unit capacity. Maximising the minimum customer
// rate is the max-min LP; typical instances have ΔI well above 2, so the
// full §4 pipeline is exercised.
func Bandwidth(cfg BandwidthConfig, seed int64) *mmlp.Instance {
	rng := rand.New(rand.NewSource(seed))
	if cfg.MaxPathLen < 1 {
		cfg.MaxPathLen = 1
	}
	in := mmlp.New(0)
	linkRows := make([][]float64, cfg.Links)
	for c := 0; c < cfg.Customers; c++ {
		objPairs := []float64{}
		for p := 0; p < cfg.PathsPerCustomer; p++ {
			start := rng.Intn(cfg.Links)
			length := 1 + rng.Intn(cfg.MaxPathLen)
			v := float64(in.NumAgents)
			in.NumAgents++
			objPairs = append(objPairs, v, 1)
			for h := 0; h < length; h++ {
				li := (start + h) % cfg.Links
				linkRows[li] = append(linkRows[li], v, 1)
			}
		}
		in.AddObjective(objPairs...)
	}
	for _, row := range linkRows {
		if len(row) > 0 {
			in.AddConstraint(row...)
		}
	}
	return in
}

// EquationsConfig shapes Equations.
type EquationsConfig struct {
	// Vars and Rows size the nonnegative system Bx = b.
	Vars, Rows int
	// Density is the probability of a nonzero B entry (clamped to ensure
	// every row and column has one).
	Density float64
}

// Equations builds the mixed packing/covering connection of [20]: a
// nonnegative linear system Bx = b (with b = Bx* for a hidden nonnegative
// witness x*, so the system is exactly solvable) encoded as the max-min LP
//
//	maximise min_k Σ_j (B_kj/b_k) x_j   s.t.  Σ_j (B_kj/b_k) x_j ≤ 1 ∀k.
//
// Row k appears both as a constraint and as an objective; the optimum is 1
// exactly when the system is solvable, and a factor-α approximation
// produces x with B x ∈ [b/α, b] componentwise.
func Equations(cfg EquationsConfig, seed int64) *mmlp.Instance {
	rng := rand.New(rand.NewSource(seed))
	b := make([][]float64, cfg.Rows) // B entries
	for k := range b {
		b[k] = make([]float64, cfg.Vars)
	}
	for k := 0; k < cfg.Rows; k++ {
		for j := 0; j < cfg.Vars; j++ {
			if rng.Float64() < cfg.Density {
				b[k][j] = 0.5 + rng.Float64()
			}
		}
		// Ensure a nonzero per row.
		if allZero(b[k]) {
			b[k][rng.Intn(cfg.Vars)] = 0.5 + rng.Float64()
		}
	}
	// Ensure a nonzero per column.
	for j := 0; j < cfg.Vars; j++ {
		has := false
		for k := 0; k < cfg.Rows; k++ {
			if b[k][j] != 0 {
				has = true
				break
			}
		}
		if !has {
			b[rng.Intn(cfg.Rows)][j] = 0.5 + rng.Float64()
		}
	}
	// Hidden witness and right-hand side.
	xstar := make([]float64, cfg.Vars)
	for j := range xstar {
		xstar[j] = 0.25 + rng.Float64()
	}
	in := mmlp.New(cfg.Vars)
	for k := 0; k < cfg.Rows; k++ {
		rhs := 0.0
		for j := 0; j < cfg.Vars; j++ {
			rhs += b[k][j] * xstar[j]
		}
		pairs := []float64{}
		for j := 0; j < cfg.Vars; j++ {
			if b[k][j] != 0 {
				pairs = append(pairs, float64(j), b[k][j]/rhs)
			}
		}
		in.AddConstraint(pairs...)
		in.AddObjective(pairs...)
	}
	return in
}

func allZero(xs []float64) bool {
	for _, x := range xs {
		if x != 0 {
			return false
		}
	}
	return true
}

// Opt1Distance reports how far an equation-system solution is from exact:
// for the Equations family, ‖Bx/b − 1‖∞ = max(1 − ω(x), maxViolation).
func Opt1Distance(in *mmlp.Instance, x []float64) float64 {
	return math.Max(1-in.Utility(x), in.MaxViolation(x))
}
