// Package maxminlp is a library for solving max-min linear programs with
// local (constant-round distributed) algorithms. It reproduces, end to end,
// the algorithm of
//
//	Floréen, Kaasinen, Kaski, Suomela:
//	"An Optimal Local Approximation Algorithm for Max-Min Linear Programs",
//	SPAA 2009,
//
// which achieves the optimal local approximation ratio ΔI(1−1/ΔK)+ε for
// max-min LPs whose constraints touch at most ΔI agents and objectives at
// most ΔK agents.
//
// A max-min LP asks to
//
//	maximise  ω(x) = min_k Σ_v c_kv x_v
//	s.t.      Σ_v a_iv x_v ≤ 1 for every constraint i,  x ≥ 0,
//
// with positive coefficients. Build an *Instance (or generate one with the
// Generate* functions), then call:
//
//   - SolveLocal — the paper's local algorithm (§4 transformations + §5
//     algorithm) executed by the fast centralised engine,
//   - SolveLocalDistributed — the identical algorithm executed as an honest
//     synchronous message-passing protocol (one goroutine per network
//     node), returning traffic statistics,
//   - SolveExact / SolveExactRational — the built-in simplex reference
//     (float64 / exact rational arithmetic),
//   - SolveSafe — the factor-ΔI safe algorithm of prior work [8, 16].
//
// SolveLocal automatically dispatches the trivial cases ΔI = 1 and
// ΔK = 1 to the optimal local algorithms of [17].
package maxminlp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/mmlp"
	"repro/internal/simplex"
	"repro/internal/structured"
	"repro/internal/transform"
)

// Instance is a max-min linear program; see the mmlp package for the row
// and evaluation API (AddConstraint, AddObjective, Utility, CheckFeasible,
// …). The alias keeps one concrete type across the library surface.
type Instance = mmlp.Instance

// Term, Constraint and Objective re-export the instance building blocks.
type (
	Term       = mmlp.Term
	Constraint = mmlp.Constraint
	Objective  = mmlp.Objective
)

// NewInstance returns an empty instance with n agents.
func NewInstance(n int) *Instance { return mmlp.New(n) }

// ReadInstanceFile loads a JSON instance.
func ReadInstanceFile(path string) (*Instance, error) { return mmlp.ReadFile(path) }

// Status classifies a Solution.
type Status int

// Solution statuses.
const (
	// StatusApproximate: the solution satisfies the local approximation
	// guarantee ΔI(1−1/ΔK)(1+1/(R−1)) but need not be optimal.
	StatusApproximate Status = iota
	// StatusOptimal: the solution is optimal (exact solver, or a trivial
	// case dispatched to the optimal local algorithms of [17]).
	StatusOptimal
	// StatusUnbounded: the utility can be made arbitrarily large.
	StatusUnbounded
	// StatusZeroOptimum: some objective is empty, so the optimum is 0.
	StatusZeroOptimum
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusApproximate:
		return "approximate"
	case StatusOptimal:
		return "optimal"
	case StatusUnbounded:
		return "unbounded"
	case StatusZeroOptimum:
		return "zero-optimum"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of any solver in this package.
type Solution struct {
	// Status classifies the outcome; X and Utility are meaningful for
	// StatusApproximate, StatusOptimal and StatusZeroOptimum.
	Status Status
	// X is a feasible assignment (length = NumAgents).
	X []float64
	// Utility is ω(X) on the input instance.
	Utility float64
	// UpperBound, when positive, certifies optimum ≤ UpperBound. The local
	// algorithm derives it from the per-agent tree optima t_v (Lemma 2);
	// exact solvers set it to the optimum.
	UpperBound float64
}

// LocalOptions configures SolveLocal and SolveLocalDistributed.
type LocalOptions struct {
	// R is the shifting parameter (≥ 2, default 3). Larger R tightens the
	// guarantee to ΔI(1−1/ΔK)(1+1/(R−1)) at the cost of a Θ(R) horizon.
	R int
	// Workers bounds the parallelism of the centralised engine
	// (0 = GOMAXPROCS).
	Workers int
	// BinIters caps the per-agent binary search (0 = 100).
	BinIters int
	// DisableSpecialCases skips the optimal ΔI=1 / ΔK=1 dispatch (used by
	// the experiments to exercise the general pipeline on trivial shapes).
	DisableSpecialCases bool
	// CompactProtocol makes SolveLocalDistributed use identifier-based
	// record gossip instead of anonymous view gathering: polynomial message
	// sizes, identical outputs. Ignored by SolveLocal.
	CompactProtocol bool
	// SelfCheck re-verifies every lemma-level invariant of the run
	// (Lemmas 5–7, 11, the recursions and the per-objective guarantee (21))
	// before returning; a failure is reported as an error. Costs one extra
	// pass over the trace.
	SelfCheck bool
}

// ErrInvalid wraps instance validation failures.
var ErrInvalid = mmlp.ErrInvalid

// DistInfo reports the traffic of a distributed run.
type DistInfo struct {
	// Rounds is the number of synchronous rounds (12(R−2)+8; the final
	// round carries no messages).
	Rounds int
	// Messages and Bytes total the traffic; MaxMessageBytes is the largest
	// single message (dominated by the view-gathering phase);
	// CompressedBytes re-counts view messages at their DAG-compressed size.
	Messages, Bytes, MaxMessageBytes, CompressedBytes int
}

// SolveLocal runs the paper's local approximation algorithm: degenerate
// structures are stripped (§4 preamble), the §4.2–§4.6 transformations
// produce the structured form, the §5 algorithm computes the solution, and
// the back-mappings lift it to the input instance. The result is feasible
// and within factor max(2,ΔI)·(1−1/max(2,ΔK))·(1+1/(R−1)) of the optimum.
func SolveLocal(in *Instance, opts LocalOptions) (*Solution, error) {
	run := func(s *structured.Instance, o core.Options) ([]float64, float64, error) {
		tr, err := core.Solve(s, o)
		if err != nil {
			return nil, 0, err
		}
		if opts.SelfCheck {
			if err := core.VerifyTrace(s, tr, 1e-9); err != nil {
				return nil, 0, fmt.Errorf("maxminlp: self-check failed: %w", err)
			}
		}
		return tr.X, tr.UpperBound, nil
	}
	return solveLocalWith(in, opts, run)
}

// SolveLocalDistributed is SolveLocal executed as the synchronous
// message-passing protocol of the dist package. The solution is identical
// to SolveLocal's; the second result reports the communication volume.
func SolveLocalDistributed(in *Instance, opts LocalOptions) (*Solution, *DistInfo, error) {
	info := &DistInfo{}
	run := func(s *structured.Instance, o core.Options) ([]float64, float64, error) {
		solver := dist.SolveDistributed
		if opts.CompactProtocol {
			solver = dist.SolveDistributedCompact
		}
		res, err := solver(s, o)
		if err != nil {
			return nil, 0, err
		}
		info.Rounds = res.Rounds
		info.Messages = res.Stats.Messages
		info.Bytes = res.Stats.Bytes
		info.MaxMessageBytes = res.Stats.MaxMessageBytes
		info.CompressedBytes = res.Stats.CompressedBytes
		ub := math.Inf(1)
		for _, t := range res.T {
			if t < ub {
				ub = t
			}
		}
		return res.X, ub, nil
	}
	sol, err := solveLocalWith(in, opts, run)
	if err != nil {
		return nil, nil, err
	}
	return sol, info, nil
}

// solveLocalWith factors the shared pipeline around the structured-solver
// callback.
func solveLocalWith(in *Instance, opts LocalOptions,
	run func(*structured.Instance, core.Options) ([]float64, float64, error)) (*Solution, error) {

	if err := in.Validate(); err != nil {
		return nil, err
	}
	if opts.R == 0 {
		opts.R = 3
	}
	if opts.R < 2 {
		return nil, fmt.Errorf("maxminlp: R must be ≥ 2, got %d", opts.R)
	}

	pp := transform.Preprocess(in)
	switch pp.Outcome {
	case transform.ZeroOptimum:
		return &Solution{Status: StatusZeroOptimum, X: pp.Lift(nil), Utility: 0, UpperBound: 0}, nil
	case transform.UnboundedOptimum:
		return &Solution{Status: StatusUnbounded}, nil
	}
	red := pp.Out

	// Trivial cases: the optimal local algorithms of [17].
	if !opts.DisableSpecialCases {
		if red.DegreeI() <= 1 {
			x := in.Strictify(pp.Lift(baseline.SolveSingletonConstraints(red)))
			return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: in.Utility(x)}, nil
		}
		if red.DegreeK() <= 1 {
			x := in.Strictify(pp.Lift(baseline.SolveSingletonObjectives(red)))
			return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: in.Utility(x)}, nil
		}
	}

	pipe, err := transform.Structure(red)
	if err != nil {
		return nil, err
	}
	s, err := structured.FromMMLP(pipe.Final())
	if err != nil {
		return nil, err
	}
	xs, ub, err := run(s, core.Options{R: opts.R, Workers: opts.Workers, BinIters: opts.BinIters})
	if err != nil {
		return nil, err
	}
	x := in.Strictify(pp.Lift(pipe.Back(xs)))
	return &Solution{
		Status:     StatusApproximate,
		X:          x,
		Utility:    in.Utility(x),
		UpperBound: ub,
	}, nil
}

// SolveExact computes an optimal solution with the built-in float64
// simplex.
func SolveExact(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	r := simplex.SolveMaxMin(in)
	switch r.Status {
	case simplex.Optimal:
		x := in.Strictify(r.X)
		return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: r.Value}, nil
	case simplex.Unbounded:
		return &Solution{Status: StatusUnbounded}, nil
	default:
		return nil, fmt.Errorf("maxminlp: simplex returned %v", r.Status)
	}
}

// SolveExactRational computes the optimum in exact rational arithmetic and
// returns it converted to float64 (the X vector is exact at conversion).
// Exponentially slower than SolveExact; intended for small instances and
// verification.
func SolveExactRational(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	r := simplex.SolveMaxMinRat(in)
	switch r.Status {
	case simplex.Optimal:
		x := make([]float64, in.NumAgents)
		for v := range x {
			x[v] = simplex.RatFloat(r.X[v])
		}
		x = in.Strictify(x)
		return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: simplex.RatFloat(r.Value)}, nil
	case simplex.Unbounded:
		return &Solution{Status: StatusUnbounded}, nil
	default:
		return nil, fmt.Errorf("maxminlp: rational simplex returned %v", r.Status)
	}
}

// SolveSafe runs the factor-ΔI safe algorithm of [8, 16] (2-round local
// horizon), the strongest general local algorithm known before the paper.
func SolveSafe(in *Instance) (*Solution, error) {
	if err := in.ValidateStrict(); err != nil {
		return nil, err
	}
	x := in.Strictify(baseline.SolveSafe(in))
	return &Solution{Status: StatusApproximate, X: x, Utility: in.Utility(x)}, nil
}

// Certificate is a self-contained dual proof that the optimum of an
// instance is at most Bound; Verify re-checks it from scratch without
// trusting the solver (see simplex.MaxMinCertificate).
type Certificate = simplex.MaxMinCertificate

// SolveExactCertified computes the optimum together with an independently
// verifiable dual certificate of optimality. The certificate is validated
// before it is returned.
func SolveExactCertified(in *Instance) (*Solution, *Certificate, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	res, cert, err := simplex.CertifyMaxMin(in)
	if err != nil {
		return nil, nil, err
	}
	if err := cert.Verify(in, 1e-6); err != nil {
		return nil, nil, fmt.Errorf("maxminlp: solver produced an invalid certificate: %w", err)
	}
	x := in.Strictify(res.X)
	return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: cert.Bound}, cert, nil
}

// RatioBound returns the approximation guarantee of SolveLocal for an
// instance with the given degrees and shifting parameter:
// max(2,ΔI) · (1 − 1/max(2,ΔK)) · (1 + 1/(R−1)).
func RatioBound(degI, degK, R int) float64 {
	if degI < 2 {
		degI = 2
	}
	if degK < 2 {
		degK = 2
	}
	return float64(degI) * (1 - 1/float64(degK)) * (1 + 1/float64(R-1))
}

// LocalityThreshold returns ΔI(1−1/ΔK), the exact approximability
// threshold of Theorem 1: achievable within any ε, unachievable exactly.
func LocalityThreshold(degI, degK int) float64 {
	return float64(degI) * (1 - 1/float64(degK))
}

// ErrNotOptimal is returned by helpers that require an exact solve.
var ErrNotOptimal = errors.New("maxminlp: instance has no finite optimum")
