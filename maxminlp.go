// Package maxminlp is a library for solving max-min linear programs with
// local (constant-round distributed) algorithms. It reproduces, end to end,
// the algorithm of
//
//	Floréen, Kaasinen, Kaski, Suomela:
//	"An Optimal Local Approximation Algorithm for Max-Min Linear Programs",
//	SPAA 2009,
//
// which achieves the optimal local approximation ratio ΔI(1−1/ΔK)+ε for
// max-min LPs whose constraints touch at most ΔI agents and objectives at
// most ΔK agents.
//
// A max-min LP asks to
//
//	maximise  ω(x) = min_k Σ_v c_kv x_v
//	s.t.      Σ_v a_iv x_v ≤ 1 for every constraint i,  x ≥ 0,
//
// with positive coefficients. Build an *Instance (or generate one with the
// Generate* functions), then call:
//
//   - SolveLocal — the paper's local algorithm (§4 transformations + §5
//     algorithm) executed by the fast centralised engine,
//   - SolveLocalDistributed — the identical algorithm executed as an honest
//     synchronous message-passing protocol (one goroutine per network
//     node), returning traffic statistics,
//   - SolveBatch — many independent instances solved concurrently on a
//     fixed worker pool with per-worker scratch reuse,
//   - SolveExact / SolveExactRational — the built-in simplex reference
//     (float64 / exact rational arithmetic),
//   - SolveSafe — the factor-ΔI safe algorithm of prior work [8, 16].
//
// SolveLocal automatically dispatches the trivial cases ΔI = 1 and
// ΔK = 1 to the optimal local algorithms of [17].
//
// The solve pipeline itself lives in internal/engine; this package is the
// stable public surface over it.
package maxminlp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/batch"
	"repro/internal/engine"
	"repro/internal/mmlp"
	"repro/internal/simplex"
)

// Instance is a max-min linear program; see the mmlp package for the row
// and evaluation API (AddConstraint, AddObjective, Utility, CheckFeasible,
// …). The alias keeps one concrete type across the library surface.
type Instance = mmlp.Instance

// Term, Constraint and Objective re-export the instance building blocks.
type (
	Term       = mmlp.Term
	Constraint = mmlp.Constraint
	Objective  = mmlp.Objective
)

// NewInstance returns an empty instance with n agents.
func NewInstance(n int) *Instance { return mmlp.New(n) }

// ReadInstanceFile loads a JSON instance.
func ReadInstanceFile(path string) (*Instance, error) { return mmlp.ReadFile(path) }

// Status classifies a Solution; see the engine package for the String
// method.
type Status = engine.Status

// Solution statuses.
const (
	// StatusApproximate: the solution satisfies the local approximation
	// guarantee ΔI(1−1/ΔK)(1+1/(R−1)) but need not be optimal.
	StatusApproximate = engine.StatusApproximate
	// StatusOptimal: the solution is optimal (exact solver, or a trivial
	// case dispatched to the optimal local algorithms of [17]).
	StatusOptimal = engine.StatusOptimal
	// StatusUnbounded: the utility can be made arbitrarily large.
	StatusUnbounded = engine.StatusUnbounded
	// StatusZeroOptimum: some objective is empty, so the optimum is 0.
	StatusZeroOptimum = engine.StatusZeroOptimum
)

// Solution is the result of any solver in this package: a status, a
// feasible assignment X with its utility, and (when available) a certified
// upper bound on the optimum.
type Solution = engine.Solution

// LocalOptions configures SolveLocal and SolveLocalDistributed.
type LocalOptions struct {
	// R is the shifting parameter (≥ 2, default 3). Larger R tightens the
	// guarantee to ΔI(1−1/ΔK)(1+1/(R−1)) at the cost of a Θ(R) horizon.
	R int
	// Workers bounds the parallelism of the centralised engine
	// (0 = GOMAXPROCS).
	Workers int
	// BinIters caps the per-agent binary search (0 = 100).
	BinIters int
	// DisableSpecialCases skips the optimal ΔI=1 / ΔK=1 dispatch (used by
	// the experiments to exercise the general pipeline on trivial shapes).
	DisableSpecialCases bool
	// CompactProtocol makes SolveLocalDistributed use identifier-based
	// record gossip instead of anonymous view gathering: polynomial message
	// sizes, identical outputs. Ignored by SolveLocal.
	CompactProtocol bool
	// SelfCheck re-verifies every lemma-level invariant of the run
	// (Lemmas 5–7, 11, the recursions and the per-objective guarantee (21))
	// before returning; a failure is reported as an error. Costs one extra
	// pass over the trace.
	SelfCheck bool
}

// engineOptions converts the public options for the given engine kind.
func (o LocalOptions) engineOptions(kind engine.Kind) engine.Options {
	return engine.Options{
		Engine:              kind,
		R:                   o.R,
		Workers:             o.Workers,
		BinIters:            o.BinIters,
		DisableSpecialCases: o.DisableSpecialCases,
		SelfCheck:           o.SelfCheck,
	}
}

// distKind picks the message-passing engine selected by the options.
func (o LocalOptions) distKind() engine.Kind {
	if o.CompactProtocol {
		return engine.DistributedCompact
	}
	return engine.Distributed
}

// ErrInvalid wraps instance validation failures.
var ErrInvalid = mmlp.ErrInvalid

// DistInfo reports the traffic of a distributed run: the synchronous round
// count 12(R−2)+8 and the message/byte volume of the protocol.
type DistInfo = engine.DistInfo

// SolveLocal runs the paper's local approximation algorithm: degenerate
// structures are stripped (§4 preamble), the §4.2–§4.6 transformations
// produce the structured form, the §5 algorithm computes the solution, and
// the back-mappings lift it to the input instance. The result is feasible
// and within factor max(2,ΔI)·(1−1/max(2,ΔK))·(1+1/(R−1)) of the optimum.
func SolveLocal(in *Instance, opts LocalOptions) (*Solution, error) {
	sol, _, err := engine.Solve(context.Background(), in, opts.engineOptions(engine.Central))
	return sol, err
}

// SolveLocalDistributed is SolveLocal executed as the synchronous
// message-passing protocol of the dist package. The solution is identical
// to SolveLocal's; the second result reports the communication volume.
func SolveLocalDistributed(in *Instance, opts LocalOptions) (*Solution, *DistInfo, error) {
	return engine.Solve(context.Background(), in, opts.engineOptions(opts.distKind()))
}

// BatchJob is one unit of work for SolveBatch.
type BatchJob struct {
	// In is the instance to solve.
	In *Instance
	// Opts configures the solve exactly as for SolveLocal /
	// SolveLocalDistributed (CompactProtocol selects the record protocol
	// when Distributed is set). Workers is ignored: a centralised job runs
	// single-threaded on its pool worker, and a distributed job spawns the
	// simulator's goroutine-per-node regardless.
	Opts LocalOptions
	// Distributed runs this job on the message-passing engine instead of
	// the centralised one. Engines may be mixed freely within a batch.
	Distributed bool
}

// BatchResult is the outcome of one BatchJob.
type BatchResult struct {
	// Sol is the solution (nil when Err is set).
	Sol *Solution
	// Dist carries the traffic statistics of a distributed job (nil for
	// centralised jobs).
	Dist *DistInfo
	// Err reports a failed or cancelled job; jobs never fail each other.
	Err error
	// Cached reports that the result came from the result cache enabled by
	// BatchOptions.CacheBytes; cached results are bit-identical to fresh
	// ones.
	Cached bool
	// Latency is the wall-clock solve time of this job (zero when the job
	// was cancelled before it started).
	Latency time.Duration
}

// BatchOptions configures SolveBatch.
type BatchOptions struct {
	// Workers is the fixed pool size (0 = GOMAXPROCS). Each worker owns
	// reusable scratch, so steady-state solving stays allocation-light.
	Workers int
	// JobTimeout, when positive, bounds each job individually; a job whose
	// deadline expires reports context.DeadlineExceeded in its result.
	JobTimeout time.Duration
	// CacheBytes, when positive, fronts the batch with a result cache of
	// this byte budget keyed by the canonical (instance, options) hash:
	// duplicate jobs in the batch are solved once and answered from the
	// cache thereafter, bit-identically to a fresh solve. The cache lives
	// for this SolveBatch call; BatchStats.Cache reports its activity.
	CacheBytes int64
	// CacheShards splits the cache across this many lock domains, rounded
	// up to a power of two (0 = the cache default of 16). Ignored when
	// CacheBytes is zero.
	CacheShards int
}

// BatchStats aggregates throughput and latency over a batch or a serving
// pool.
type BatchStats = batch.Stats

// CacheStats reports the result cache's activity (hits, misses, coalesced
// waiters, evictions, current entries/bytes); BatchStats.Cache carries one
// when BatchOptions.CacheBytes enables caching.
type CacheStats = engine.CacheStats

// SolveBatch solves many independent instances concurrently on a fixed
// worker pool. Results are positional: result i belongs to jobs[i], and
// each is bit-identical to the corresponding sequential SolveLocal /
// SolveLocalDistributed call. Cancelling ctx stops unstarted jobs (their
// results carry the context error) and returns the context error; jobs
// already running stop at their next pipeline-stage boundary and report
// the context error in their result.
func SolveBatch(ctx context.Context, jobs []BatchJob, o BatchOptions) ([]BatchResult, *BatchStats, error) {
	bjobs := make([]batch.Job, len(jobs))
	for i, j := range jobs {
		kind := engine.Central
		if j.Distributed {
			kind = j.Opts.distKind()
		}
		bjobs[i] = batch.Job{In: j.In, Opts: j.Opts.engineOptions(kind)}
	}
	res, stats, err := batch.Solve(ctx, bjobs, batch.Options{
		Workers: o.Workers, JobTimeout: o.JobTimeout,
		CacheBytes: o.CacheBytes, CacheShards: o.CacheShards,
	})
	out := make([]BatchResult, len(res))
	for i, r := range res {
		out[i] = BatchResult{Sol: r.Sol, Dist: r.Dist, Err: r.Err, Cached: r.Cached, Latency: r.Latency}
	}
	return out, stats, err
}

// SolveExact computes an optimal solution with the built-in float64
// simplex.
func SolveExact(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	r := simplex.SolveMaxMin(in)
	switch r.Status {
	case simplex.Optimal:
		x := in.Strictify(r.X)
		return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: r.Value}, nil
	case simplex.Unbounded:
		return &Solution{Status: StatusUnbounded}, nil
	default:
		return nil, fmt.Errorf("maxminlp: simplex returned %v", r.Status)
	}
}

// SolveExactRational computes the optimum in exact rational arithmetic and
// returns it converted to float64 (the X vector is exact at conversion).
// Exponentially slower than SolveExact; intended for small instances and
// verification.
func SolveExactRational(in *Instance) (*Solution, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	r := simplex.SolveMaxMinRat(in)
	switch r.Status {
	case simplex.Optimal:
		x := make([]float64, in.NumAgents)
		for v := range x {
			x[v] = simplex.RatFloat(r.X[v])
		}
		x = in.Strictify(x)
		return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: simplex.RatFloat(r.Value)}, nil
	case simplex.Unbounded:
		return &Solution{Status: StatusUnbounded}, nil
	default:
		return nil, fmt.Errorf("maxminlp: rational simplex returned %v", r.Status)
	}
}

// SolveSafe runs the factor-ΔI safe algorithm of [8, 16] (2-round local
// horizon), the strongest general local algorithm known before the paper.
func SolveSafe(in *Instance) (*Solution, error) {
	if err := in.ValidateStrict(); err != nil {
		return nil, err
	}
	x := in.Strictify(baseline.SolveSafe(in))
	return &Solution{Status: StatusApproximate, X: x, Utility: in.Utility(x)}, nil
}

// Certificate is a self-contained dual proof that the optimum of an
// instance is at most Bound; Verify re-checks it from scratch without
// trusting the solver (see simplex.MaxMinCertificate).
type Certificate = simplex.MaxMinCertificate

// SolveExactCertified computes the optimum together with an independently
// verifiable dual certificate of optimality. The certificate is validated
// before it is returned.
func SolveExactCertified(in *Instance) (*Solution, *Certificate, error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	res, cert, err := simplex.CertifyMaxMin(in)
	if err != nil {
		return nil, nil, err
	}
	if err := cert.Verify(in, 1e-6); err != nil {
		return nil, nil, fmt.Errorf("maxminlp: solver produced an invalid certificate: %w", err)
	}
	x := in.Strictify(res.X)
	return &Solution{Status: StatusOptimal, X: x, Utility: in.Utility(x), UpperBound: cert.Bound}, cert, nil
}

// RatioBound returns the approximation guarantee of SolveLocal for an
// instance with the given degrees and shifting parameter:
// max(2,ΔI) · (1 − 1/max(2,ΔK)) · (1 + 1/(R−1)).
func RatioBound(degI, degK, R int) float64 {
	if degI < 2 {
		degI = 2
	}
	if degK < 2 {
		degK = 2
	}
	return float64(degI) * (1 - 1/float64(degK)) * (1 + 1/float64(R-1))
}

// LocalityThreshold returns ΔI(1−1/ΔK), the exact approximability
// threshold of Theorem 1: achievable within any ε, unachievable exactly.
func LocalityThreshold(degI, degK int) float64 {
	return float64(degI) * (1 - 1/float64(degK))
}

// ErrNotOptimal is returned by helpers that require an exact solve.
var ErrNotOptimal = errors.New("maxminlp: instance has no finite optimum")
