// Lowerbound: why no local algorithm can beat ΔI(1−1/ΔK).
//
// Theorem 1's lower bound rests on symmetry: on a vertex-transitive
// instance, every agent of the same "band" has exactly the same local view
// at every radius, so a deterministic anonymous algorithm must give all of
// them the same value. The example runs the paper's algorithm on the
// tri-necklace family (ΔI = 2, ΔK = 3, threshold 4/3), prints the
// per-band outputs to exhibit the forced symmetry, and reports the measured
// ratio against the R-dependent guarantee and the asymptotic threshold.
package main

import (
	"fmt"
	"log"

	maxminlp "repro"
)

func main() {
	const m = 24
	in := maxminlp.GenerateTriNecklace(m)

	exact, err := maxminlp.SolveExact(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tri-necklace, m=%d (%d agents): optimum ω* = %.4f\n", m, in.NumAgents, exact.Utility)
	fmt.Printf("locality threshold ΔI(1−1/ΔK) = %.4f — no local algorithm reaches below it\n\n",
		maxminlp.LocalityThreshold(2, 3))

	for _, R := range []int{2, 3, 5, 8} {
		sol, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: R})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("R=%d: per-band output (L, C, R) = (%.4f, %.4f, %.4f)  utility %.4f  ratio %.4f  bound %.4f\n",
			R, sol.X[0], sol.X[1], sol.X[2], sol.Utility,
			exact.Utility/sol.Utility, maxminlp.RatioBound(2, 3, R))
	}

	fmt.Println("\nevery band is constant across the whole cycle — the symmetry that")
	fmt.Println("drives the impossibility half of Theorem 1.")

	// On the layered necklace the cost is not hypothetical: the algorithm's
	// up/down hedging pays exactly the threshold 4/3, for every m and R.
	layered, _, _ := maxminlp.GenerateLayeredNecklace(m)
	exact2, err := maxminlp.SolveExact(layered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlayered necklace, m=%d: optimum ω* = %.4f\n", m, exact2.Utility)
	for _, R := range []int{3, 6} {
		sol, err := maxminlp.SolveLocal(layered, maxminlp.LocalOptions{R: R})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("R=%d: utility %.4f  ratio %.4f — exactly the threshold %.4f\n",
			R, sol.Utility, exact2.Utility/sol.Utility, maxminlp.LocalityThreshold(2, 3))
	}
}
