// Dynamic: local algorithms are dynamic graph algorithms with
// constant-time updates (§1.3 of the paper). A coefficient change can only
// influence outputs within the algorithm's locality radius, so after a
// local modification only a constant-size neighbourhood needs recomputing —
// no matter how large the network is.
//
// This example perturbs one constraint of a large cycle instance and
// compares a full re-solve against the library's incremental Update: the
// outputs are bit-identical, the recomputed region is constant, and agents
// on the far side of the cycle keep their exact old values.
package main

import (
	"fmt"
	"log"
	"time"

	maxminlp "repro"
	"repro/internal/core"
	"repro/internal/structured"
)

func main() {
	const m = 500 // 1500 agents on the cycle
	const R = 3

	in := maxminlp.GenerateTriNecklace(m)
	s1, err := structured.FromMMLP(in)
	if err != nil {
		log.Fatal(err)
	}

	mod := in.Clone()
	mod.Cons[0].Terms[0].Coef = 2 // one local change
	s2, err := structured.FromMMLP(mod)
	if err != nil {
		log.Fatal(err)
	}

	old, err := core.Solve(s1, core.Options{R: R})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	full, err := core.Solve(s2, core.Options{R: R})
	if err != nil {
		log.Fatal(err)
	}
	fullTime := time.Since(start)

	start = time.Now()
	inc, st, err := core.Update(s1, s2, old, core.Options{R: R})
	if err != nil {
		log.Fatal(err)
	}
	incTime := time.Since(start)

	same := 0
	for v := range full.X {
		if full.X[v] == inc.X[v] {
			same++
		}
	}
	unchanged := 0
	for v := range old.X {
		if old.X[v] == inc.X[v] {
			unchanged++
		}
	}

	fmt.Printf("network: %d agents on a cycle, one constraint coefficient changed\n", s1.N)
	fmt.Printf("full re-solve:      %8v\n", fullTime)
	fmt.Printf("incremental update: %8v (recomputed %d/%d t-values)\n",
		incTime, st.RecomputedT, st.TotalAgents)
	fmt.Printf("incremental output matches full recompute on %d/%d agents (bit-exact)\n",
		same, len(full.X))
	fmt.Printf("agents keeping their exact pre-change output: %d/%d\n", unchanged, len(old.X))
	fmt.Printf("locality radius at R=%d: %d edges — everything beyond is provably untouched\n",
		R, core.OutputRadius(R-2))
}
