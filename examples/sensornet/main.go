// Sensornet: balanced data gathering in a wireless sensor network, the
// first motivating application of the paper's introduction.
//
// Sensors scatter over a field of battery-powered relays; each sensor
// splits its data stream across its nearest relays, and routing one unit of
// data through a relay costs energy growing with distance. Relays have unit
// batteries. Maximising the minimum delivered data rate over sensors is a
// max-min LP, and because every (sensor, relay) route touches exactly one
// relay constraint and one sensor objective, it is a *bipartite* max-min LP
// in the paper's terminology.
//
// The example solves the instance three ways — the paper's local algorithm,
// the safe baseline and the exact simplex — and prints the per-sensor rates.
package main

import (
	"fmt"
	"log"

	maxminlp "repro"
)

func main() {
	cfg := maxminlp.SensorGridConfig{Width: 6, Height: 6, Sensors: 10, Fan: 3}
	in := maxminlp.GenerateSensorGrid(cfg, 42)
	fmt.Printf("sensor grid: %v\n", in.Stats())

	local, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: 3})
	if err != nil {
		log.Fatal(err)
	}
	safe, err := maxminlp.SolveSafe(in)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := maxminlp.SolveExact(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nworst-case sensor rate:\n")
	fmt.Printf("  local (R=3): %.4f\n", local.Utility)
	fmt.Printf("  safe  [8,16]: %.4f\n", safe.Utility)
	fmt.Printf("  exact optimum: %.4f\n", exact.Utility)
	fmt.Printf("\nlocal algorithm ratio: %.3f (Theorem 1 bound %.3f)\n",
		exact.Utility/local.Utility,
		maxminlp.RatioBound(in.DegreeI(), in.DegreeK(), 3))

	fmt.Printf("\nper-sensor delivered rate (local / optimal):\n")
	for k := range in.Objs {
		fmt.Printf("  sensor %2d: %.4f / %.4f\n", k,
			in.ObjectiveValue(k, local.X), in.ObjectiveValue(k, exact.X))
	}
}
