// Equations: approximately solving a nonnegative system of linear
// equations with a local algorithm — the mixed packing/covering connection
// the paper inherits from Young [20].
//
// A solvable system Bx = b (B ≥ 0, b > 0) becomes the max-min LP
//
//	maximise min_k Σ_j (B_kj/b_k) x_j   s.t.  Σ_j (B_kj/b_k) x_j ≤ 1,
//
// whose optimum is exactly 1. An α-approximation x then satisfies
// b/α ≤ Bx ≤ b componentwise, i.e. every equation is met within factor α —
// computed in a constant number of communication rounds regardless of the
// system's size.
package main

import (
	"fmt"
	"log"

	maxminlp "repro"
)

func main() {
	cfg := maxminlp.EquationsConfig{Vars: 12, Rows: 10, Density: 0.3}
	in := maxminlp.GenerateEquations(cfg, 5)
	fmt.Printf("system: %v\n", in.Stats())

	local, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: 5})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := maxminlp.SolveExact(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noptimum ω* = %.6f (1 ⇔ the system is exactly solvable)\n", exact.Utility)
	fmt.Printf("local ω(x) = %.6f at R=5\n", local.Utility)
	fmt.Printf("⇒ every equation is satisfied within factor %.4f\n", 1/local.Utility)
	fmt.Printf("Theorem 1 bound for ΔI=%d, ΔK=%d: %.4f\n",
		in.DegreeI(), in.DegreeK(), maxminlp.RatioBound(in.DegreeI(), in.DegreeK(), 5))

	fmt.Printf("\nper-equation residual Bx/b (local solution):\n")
	for k := range in.Objs {
		fmt.Printf("  equation %2d: %.4f (want ∈ [ω, 1])\n", k, in.ObjectiveValue(k, local.X))
	}
}
