// Quickstart: build a tiny max-min LP by hand, solve it with the paper's
// local algorithm and compare against the exact optimum.
//
// The instance models two transmitters (agents) sharing a unit channel
// (one constraint) while two receivers (objectives) each listen to both:
//
//	maximise min( x0 + 2·x1 , 2·x0 + x1 )
//	s.t.     x0 + x1 ≤ 1,  x ≥ 0.
package main

import (
	"fmt"
	"log"

	maxminlp "repro"
)

func main() {
	in := maxminlp.NewInstance(2)
	in.AddConstraint(0, 1, 1, 1) // x0 + x1 ≤ 1
	in.AddObjective(0, 1, 1, 2)  // receiver A: x0 + 2 x1
	in.AddObjective(0, 2, 1, 1)  // receiver B: 2 x0 + x1

	local, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: 4})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := maxminlp.SolveExact(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("local  (R=4): x = [%.4f %.4f], utility %.4f\n", local.X[0], local.X[1], local.Utility)
	fmt.Printf("exact       : x = [%.4f %.4f], utility %.4f\n", exact.X[0], exact.X[1], exact.Utility)
	fmt.Printf("measured ratio: %.4f (guarantee: %.4f)\n",
		exact.Utility/local.Utility,
		maxminlp.RatioBound(in.DegreeI(), in.DegreeK(), 4))
}
