// Bandwidth: fair bandwidth allocation in a communication network, the
// second motivating application of the paper's introduction.
//
// Customers request bandwidth over a ring backbone; each customer owns a
// few alternative routes (contiguous arcs of unit-capacity links), and a
// route consumes capacity on every link it crosses. Maximising the minimum
// customer rate is a max-min LP with ΔI > 2 (links carry many routes), so
// this example exercises the full §4 transformation pipeline in front of
// the §5 algorithm. It also runs the algorithm as a real message-passing
// protocol and prints the locality profile.
package main

import (
	"fmt"
	"log"

	maxminlp "repro"
)

func main() {
	cfg := maxminlp.BandwidthConfig{Links: 24, Customers: 8, PathsPerCustomer: 3, MaxPathLen: 5}
	in := maxminlp.GenerateBandwidth(cfg, 7)
	fmt.Printf("backbone: %v\n", in.Stats())

	local, err := maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: 3})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := maxminlp.SolveExact(in)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nminimum customer rate: local %.4f vs optimal %.4f (ratio %.3f, bound %.3f)\n",
		local.Utility, exact.Utility, exact.Utility/local.Utility,
		maxminlp.RatioBound(in.DegreeI(), in.DegreeK(), 3))
	fmt.Printf("certified upper bound from the algorithm itself: %.4f\n", local.UpperBound)

	fmt.Printf("\nper-customer rates (local):\n")
	for k := range in.Objs {
		fmt.Printf("  customer %d: %.4f\n", k, in.ObjectiveValue(k, local.X))
	}

	// The same computation as an honest distributed protocol.
	_, info, err := maxminlp.SolveLocalDistributed(in, maxminlp.LocalOptions{R: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistributed run: %d rounds, %d messages, %d bytes (max message %d B)\n",
		info.Rounds, info.Messages, info.Bytes, info.MaxMessageBytes)
	fmt.Println("rounds depend only on R — the network could be arbitrarily large.")
}
