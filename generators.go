package maxminlp

import "repro/internal/gen"

// Generator configurations, re-exported so applications can build the
// built-in workload families through the public API.
type (
	// RandomConfig shapes GenerateRandom.
	RandomConfig = gen.RandomConfig
	// StructuredConfig shapes GenerateStructured.
	StructuredConfig = gen.StructuredConfig
	// SensorGridConfig shapes GenerateSensorGrid.
	SensorGridConfig = gen.SensorGridConfig
	// BandwidthConfig shapes GenerateBandwidth.
	BandwidthConfig = gen.BandwidthConfig
	// EquationsConfig shapes GenerateEquations.
	EquationsConfig = gen.EquationsConfig
)

// GenerateRandom builds a random strictly valid instance with bounded
// degrees; see gen.Random.
func GenerateRandom(cfg RandomConfig, seed int64) *Instance { return gen.Random(cfg, seed) }

// GenerateStructured builds a random instance already in the structured
// form of §5 (|Vi| = 2, |Kv| = 1, |Vk| ≥ 2, unit objective coefficients).
func GenerateStructured(cfg StructuredConfig, seed int64) *Instance {
	return gen.RandomStructured(cfg, seed)
}

// GenerateSensorGrid builds the balanced data-gathering workload of the
// paper's introduction: sensors splitting data across nearby
// battery-limited relays.
func GenerateSensorGrid(cfg SensorGridConfig, seed int64) *Instance {
	return gen.SensorGrid(cfg, seed)
}

// GenerateBandwidth builds the fair bandwidth-allocation workload of the
// paper's introduction: customers with alternative routes over shared
// unit-capacity links.
func GenerateBandwidth(cfg BandwidthConfig, seed int64) *Instance {
	return gen.Bandwidth(cfg, seed)
}

// GenerateEquations builds a solvable nonnegative linear equation system
// encoded as a max-min LP (the mixed packing/covering connection of [20]);
// its optimum is exactly 1.
func GenerateEquations(cfg EquationsConfig, seed int64) *Instance {
	return gen.Equations(cfg, seed)
}

// GenerateTriNecklace builds the symmetric ΔK=3 cycle family of experiment
// E3 (m objectives, 3m agents, girth 8, fully band-symmetric).
func GenerateTriNecklace(m int) *Instance { return gen.TriNecklace(m) }

// GenerateLayeredTree builds a finite, anchored chunk of Figure 1's
// infinite layered tree (depth tiers of objectives, one up-agent and two
// down-agents each); see gen.LayeredTree.
func GenerateLayeredTree(depth int) *Instance { return gen.LayeredTree(depth) }

// GenerateLayeredNecklace builds the layer-consistent ΔK=3 cycle family on
// which the algorithm's up/down averaging pays exactly the locality
// threshold ΔI(1−1/ΔK) = 4/3 (experiment E3): one up-agent and two
// down-agents per objective. The second and third results are the agent and
// objective layers (consistent modulo 4R whenever R divides m).
func GenerateLayeredNecklace(m int) (*Instance, []int, []int) { return gen.LayeredNecklace(m) }
