package main

import (
	"os"
	"path/filepath"
	"testing"

	maxminlp "repro"
)

func TestGenAllFamilies(t *testing.T) {
	dir := t.TempDir()
	for _, family := range []string{"random", "structured", "sensor", "bandwidth", "equations", "necklace"} {
		out := filepath.Join(dir, family+".json")
		if err := cmdGen([]string{"-family", family, "-out", out, "-m", "6", "-agents", "10"}); err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		in, err := maxminlp.ReadInstanceFile(out)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if in.NumAgents == 0 {
			t.Fatalf("%s: empty instance", family)
		}
	}
	if err := cmdGen([]string{"-family", "nope"}); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestInfoAndSolve(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "inst.json")
	if err := cmdGen([]string{"-family", "random", "-out", path, "-agents", "8"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInfo([]string{"-in", path}); err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"local", "dist", "exact", "rational", "safe"} {
		if err := cmdSolve([]string{"-in", path, "-algo", algo}); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
	if err := cmdSolve([]string{"-in", path, "-algo", "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	sol := filepath.Join(dir, "sol.json")
	if err := cmdSolve([]string{"-in", path, "-algo", "local", "-sol", sol}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(sol); err != nil || st.Size() == 0 {
		t.Fatalf("solution file missing or empty: %v", err)
	}
}

func TestSolveMissingFile(t *testing.T) {
	if err := cmdSolve([]string{"-in", "/nonexistent.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := cmdInfo([]string{"-in", "/nonexistent.json"}); err == nil {
		t.Fatal("missing file accepted")
	}
}
