// Command mmlp generates, inspects and solves max-min LP instances.
//
// Usage:
//
//	mmlp gen   -family random|structured|sensor|bandwidth|equations|necklace \
//	           -out inst.json [-agents N] [-degi D] [-degk D] [-seed S] [-m M]
//	mmlp info  -in inst.json
//	mmlp solve -in inst.json -algo local|dist|exact|rational|safe [-R 3] [-sol out.json]
//
// Instances are JSON files in the library's schema (see the mmlp package).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	maxminlp "repro"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "solve":
		err = cmdSolve(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmlp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mmlp {gen|info|solve} [flags]  (run a subcommand with -h for details)")
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	family := fs.String("family", "random", "random|structured|sensor|bandwidth|equations|necklace")
	out := fs.String("out", "", "output file (default stdout)")
	agents := fs.Int("agents", 20, "agent count (random)")
	degI := fs.Int("degi", 3, "max constraint degree ΔI (random)")
	degK := fs.Int("degk", 3, "max objective degree ΔK (random/structured)")
	seed := fs.Int64("seed", 1, "random seed")
	m := fs.Int("m", 8, "size parameter (structured objectives / necklace m / sensors / customers)")
	fs.Parse(args)

	var in *maxminlp.Instance
	switch *family {
	case "random":
		in = maxminlp.GenerateRandom(maxminlp.RandomConfig{
			Agents: *agents, MaxDegI: *degI, MaxDegK: *degK,
			ExtraCons: *agents / 4, ExtraObjs: *agents / 8,
		}, *seed)
	case "structured":
		in = maxminlp.GenerateStructured(maxminlp.StructuredConfig{
			Objectives: *m, MaxDegK: *degK, ExtraCons: *m / 2,
		}, *seed)
	case "sensor":
		in = maxminlp.GenerateSensorGrid(maxminlp.SensorGridConfig{
			Width: 6, Height: 6, Sensors: *m, Fan: 3,
		}, *seed)
	case "bandwidth":
		in = maxminlp.GenerateBandwidth(maxminlp.BandwidthConfig{
			Links: 4 * *m, Customers: *m, PathsPerCustomer: 3, MaxPathLen: 5,
		}, *seed)
	case "equations":
		in = maxminlp.GenerateEquations(maxminlp.EquationsConfig{
			Vars: *m, Rows: *m, Density: 0.4,
		}, *seed)
	case "necklace":
		in = maxminlp.GenerateTriNecklace(*m)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if *out == "" {
		return in.Encode(os.Stdout)
	}
	return in.WriteFile(*out)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("in", "", "instance file")
	fs.Parse(args)
	in, err := maxminlp.ReadInstanceFile(*path)
	if err != nil {
		return err
	}
	st := in.Stats()
	fmt.Println(st)
	fmt.Printf("trivial upper bound: %.6g\n", in.TrivialUpperBound())
	fmt.Printf("theorem-1 bound at R=3: %.4f (threshold %.4f)\n",
		maxminlp.RatioBound(st.DegreeI, st.DegreeK, 3),
		maxminlp.LocalityThreshold(st.DegreeI, st.DegreeK))
	return nil
}

func cmdSolve(args []string) error {
	fs := flag.NewFlagSet("solve", flag.ExitOnError)
	path := fs.String("in", "", "instance file")
	algo := fs.String("algo", "local", "local|dist|exact|rational|safe")
	rParam := fs.Int("R", 3, "shifting parameter (local/dist)")
	solOut := fs.String("sol", "", "write the solution vector as JSON to this file")
	fs.Parse(args)
	in, err := maxminlp.ReadInstanceFile(*path)
	if err != nil {
		return err
	}
	var sol *maxminlp.Solution
	switch *algo {
	case "local":
		sol, err = maxminlp.SolveLocal(in, maxminlp.LocalOptions{R: *rParam})
	case "dist":
		var info *maxminlp.DistInfo
		sol, info, err = maxminlp.SolveLocalDistributed(in, maxminlp.LocalOptions{R: *rParam})
		if err == nil {
			fmt.Printf("distributed: rounds=%d messages=%d bytes=%d maxMessage=%dB\n",
				info.Rounds, info.Messages, info.Bytes, info.MaxMessageBytes)
		}
	case "exact":
		sol, err = maxminlp.SolveExact(in)
	case "rational":
		sol, err = maxminlp.SolveExactRational(in)
	case "safe":
		sol, err = maxminlp.SolveSafe(in)
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	fmt.Printf("status: %v\n", sol.Status)
	if sol.Status == maxminlp.StatusUnbounded {
		return nil
	}
	fmt.Printf("utility: %.6g\n", sol.Utility)
	if sol.UpperBound > 0 {
		fmt.Printf("certified optimum upper bound: %.6g (gap ≤ %.3fx)\n",
			sol.UpperBound, sol.UpperBound/sol.Utility)
	}
	if *solOut != "" {
		f, err := os.Create(*solOut)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		if err := enc.Encode(sol.X); err != nil {
			return err
		}
		return f.Close()
	}
	return nil
}
