// Command mmlpbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	mmlpbench [-e all|e1|e2|e3|e4|e5|e6|e8|e9] [-scale quick|full] [-md]
//
// With -md the tables are emitted as GitHub-flavoured markdown (the format
// EXPERIMENTS.md embeds); the default is aligned text.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/expt"
)

func main() {
	exp := flag.String("e", "all", "experiment id (all, e1…e6, e8…e11)")
	scaleName := flag.String("scale", "full", "quick|full")
	md := flag.Bool("md", false, "emit markdown tables")
	flag.Parse()

	var scale expt.Scale
	switch *scaleName {
	case "quick":
		scale = expt.Quick
	case "full":
		scale = expt.Full
	default:
		fmt.Fprintf(os.Stderr, "mmlpbench: unknown scale %q (want quick or full)\n", *scaleName)
		os.Exit(2)
	}

	runners := map[string]func(expt.Scale) (*expt.Table, error){
		"e1":  expt.E1RatioSweep,
		"e2":  expt.E2Structured,
		"e3":  expt.E3Adversarial,
		"e4":  expt.E4Baseline,
		"e5":  expt.E5Rounds,
		"e6":  expt.E6Transforms,
		"e8":  expt.E8Scaling,
		"e9":  expt.E9RSweep,
		"e10": expt.E10Ablation,
		"e11": expt.E11Dynamic,
	}

	var tables []*expt.Table
	if *exp == "all" {
		ts, err := expt.All(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmlpbench:", err)
			os.Exit(1)
		}
		tables = ts
	} else {
		fn, ok := runners[strings.ToLower(*exp)]
		if !ok {
			fmt.Fprintf(os.Stderr, "mmlpbench: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		tb, err := fn(scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mmlpbench:", err)
			os.Exit(1)
		}
		tables = append(tables, tb)
	}

	for _, tb := range tables {
		if *md {
			tb.Markdown(os.Stdout)
		} else {
			tb.Render(os.Stdout)
		}
	}
}
