// Command mmlpdist runs the synchronous message-passing protocol on a
// generated instance and reports the locality profile: rounds, message
// counts, byte volume and the largest message per round.
//
// Usage:
//
//	mmlpdist [-family necklace|structured] [-m 8] [-R 3] [-seed 1] [-perround]
package main

import (
	"flag"
	"fmt"
	"os"

	maxminlp "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/structured"
	"repro/internal/transform"
)

func main() {
	family := flag.String("family", "necklace", "necklace|structured")
	m := flag.Int("m", 8, "instance size parameter")
	rParam := flag.Int("R", 3, "shifting parameter")
	seed := flag.Int64("seed", 1, "random seed (structured family)")
	perRound := flag.Bool("perround", false, "print per-round traffic")
	protocol := flag.String("protocol", "views", "views (anonymous) | records (id-based, compact)")
	flag.Parse()

	if *m < 1 {
		fmt.Fprintf(os.Stderr, "mmlpdist: -m must be ≥ 1, got %d\n", *m)
		os.Exit(2)
	}
	var solver func(*structured.Instance, core.Options) (*dist.Result, error)
	switch *protocol {
	case "views":
		solver = dist.SolveDistributed
	case "records":
		solver = dist.SolveDistributedCompact
	default:
		fmt.Fprintf(os.Stderr, "mmlpdist: unknown protocol %q (want views or records)\n", *protocol)
		os.Exit(2)
	}
	var in *maxminlp.Instance
	switch *family {
	case "necklace":
		in = maxminlp.GenerateTriNecklace(*m)
	case "structured":
		in = maxminlp.GenerateStructured(maxminlp.StructuredConfig{
			Objectives: *m, MaxDegK: 3, ExtraCons: *m / 2,
		}, *seed)
	default:
		fmt.Fprintf(os.Stderr, "mmlpdist: unknown family %q\n", *family)
		os.Exit(2)
	}
	if err := in.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "mmlpdist: invalid instance:", err)
		os.Exit(1)
	}
	if err := transform.CheckStructured(in); err != nil {
		fmt.Fprintln(os.Stderr, "mmlpdist: instance not structured:", err)
		os.Exit(1)
	}
	s, err := structured.FromMMLP(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmlpdist:", err)
		os.Exit(1)
	}
	res, err := solver(s, core.Options{R: *rParam})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmlpdist:", err)
		os.Exit(1)
	}
	fmt.Printf("family=%s m=%d agents=%d R=%d protocol=%s\n", *family, *m, s.N, *rParam, *protocol)
	fmt.Printf("rounds: %d (= 12(R−2)+8, independent of the network size)\n", res.Rounds)
	fmt.Printf("messages: %d   bytes: %d (DAG-compressed %d)   max message: %d B\n",
		res.Stats.Messages, res.Stats.Bytes, res.Stats.CompressedBytes, res.Stats.MaxMessageBytes)
	fmt.Printf("utility ω(x) = %.6g   certified upper bound = %.6g\n",
		s.Utility(res.X), minOf(res.T))
	if *perRound {
		for i, rr := range res.Stats.PerRound {
			fmt.Printf("  round %2d: %5d msgs %8d B (max %d B)\n", i+1, rr.Messages, rr.Bytes, rr.MaxBytes)
		}
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
