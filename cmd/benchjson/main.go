// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable benchmark summary the CI pipeline archives as
// BENCH_ci.json: a map from benchmark name to its measured ns/op, B/op,
// allocs/op and any custom metrics (e.g. jobs/s). Lines that are not
// benchmark results are ignored, so the full `go test` output can be piped
// in unfiltered.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is the parsed measurement of one benchmark.
type Result struct {
	// Iterations is b.N of the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror the standard columns
	// (zero when the benchmark did not report the column).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra collects non-standard metrics by unit, e.g. "jobs/s".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkE1LocalGeneral-8   100   987 ns/op   123 B/op   4 allocs/op
//
// and reports ok=false for any other line. The trailing -GOMAXPROCS
// suffix is stripped from the name so that keys stay comparable across
// runners with different core counts.
func parseLine(line string) (name string, r Result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	return stripProcs(fields[0]), r, true
}

// stripProcs removes the trailing -N GOMAXPROCS marker, if present.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// convert reads bench output from in and writes the JSON summary to out.
func convert(in io.Reader, out io.Writer) error {
	results := map[string]Result{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := convert(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
