// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable benchmark summary the CI pipeline archives as
// BENCH_ci.json: a map from benchmark name to its measured ns/op, B/op,
// allocs/op and any custom metrics (e.g. jobs/s). Lines that are not
// benchmark results are ignored, so the full `go test` output can be piped
// in unfiltered.
//
// With -budget, the parsed results are additionally checked against a
// checked-in budget file mapping benchmark names to allocation ceilings
// (max_allocs_per_op, max_bytes_per_op) and custom-metric floors
// (min_extra, e.g. the delta path's cold/delta speedup ratio); the summary
// is still written, and
// the command exits non-zero listing every violation — including budgeted
// benchmarks missing from the run, so a renamed benchmark cannot silently
// disable its gate. This is how CI pins the warm-path allocation behaviour
// of the solve pipeline.
//
// Usage:
//
//	go test -bench . -benchmem -benchtime 1x -run '^$' ./... | benchjson -budget BENCH_budget.json > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is the parsed measurement of one benchmark.
type Result struct {
	// Iterations is b.N of the recorded run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp mirror the standard columns
	// (zero when the benchmark did not report the column).
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Extra collects non-standard metrics by unit, e.g. "jobs/s".
	Extra map[string]float64 `json:"extra,omitempty"`
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkE1LocalGeneral-8   100   987 ns/op   123 B/op   4 allocs/op
//
// and reports ok=false for any other line. The trailing -GOMAXPROCS
// suffix is stripped from the name so that keys stay comparable across
// runners with different core counts.
func parseLine(line string) (name string, r Result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", Result{}, false
	}
	r.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = val
		case "B/op":
			r.BytesPerOp = val
		case "allocs/op":
			r.AllocsPerOp = val
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[unit] = val
		}
	}
	return stripProcs(fields[0]), r, true
}

// stripProcs removes the trailing -N GOMAXPROCS marker, if present.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

// convert reads bench output from in, writes the JSON summary to out and
// returns the parsed results.
func convert(in io.Reader, out io.Writer) (map[string]Result, error) {
	results := map[string]Result{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if name, r, ok := parseLine(sc.Text()); ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return results, enc.Encode(results)
}

// Budget is one benchmark's allocation ceiling. A zero (or omitted) field
// is not checked.
type Budget struct {
	// MaxAllocsPerOp caps the benchmark's allocs/op column.
	MaxAllocsPerOp float64 `json:"max_allocs_per_op,omitempty"`
	// MaxBytesPerOp caps the benchmark's B/op column.
	MaxBytesPerOp float64 `json:"max_bytes_per_op,omitempty"`
	// MinExtra floors custom b.ReportMetric columns by unit — e.g.
	// {"cold/delta": 5} demands the benchmark report a cold/delta ratio of
	// at least 5. A floored unit missing from the run is a violation.
	MinExtra map[string]float64 `json:"min_extra,omitempty"`
}

// checkBudget compares results against budgets and returns one message per
// violation, in deterministic (sorted) order. A budgeted benchmark that
// did not run is a violation: silence must not pass the gate.
func checkBudget(results map[string]Result, budgets map[string]Budget) []string {
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations []string
	for _, name := range names {
		b := budgets[name]
		r, ok := results[name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: budgeted benchmark missing from the run", name))
			continue
		}
		if b.MaxAllocsPerOp > 0 && r.AllocsPerOp > b.MaxAllocsPerOp {
			violations = append(violations, fmt.Sprintf("%s: %.0f allocs/op exceeds budget %.0f", name, r.AllocsPerOp, b.MaxAllocsPerOp))
		}
		if b.MaxBytesPerOp > 0 && r.BytesPerOp > b.MaxBytesPerOp {
			violations = append(violations, fmt.Sprintf("%s: %.0f B/op exceeds budget %.0f", name, r.BytesPerOp, b.MaxBytesPerOp))
		}
		units := make([]string, 0, len(b.MinExtra))
		for unit := range b.MinExtra {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			got, reported := r.Extra[unit]
			if !reported {
				violations = append(violations, fmt.Sprintf("%s: floored metric %q missing from the run", name, unit))
				continue
			}
			if got < b.MinExtra[unit] {
				violations = append(violations, fmt.Sprintf("%s: %g %s is below the floor %g", name, got, unit, b.MinExtra[unit]))
			}
		}
	}
	return violations
}

// loadBudget reads a budget file: {"BenchmarkName": {"max_allocs_per_op": N,
// "max_bytes_per_op": M}, ...}.
func loadBudget(path string) (map[string]Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var budgets map[string]Budget
	if err := json.Unmarshal(data, &budgets); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return budgets, nil
}

func main() {
	budgetPath := flag.String("budget", "", "JSON budget file; exceeding (or missing) a budgeted benchmark fails the run")
	flag.Parse()
	results, err := convert(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *budgetPath == "" {
		return
	}
	budgets, err := loadBudget(*budgetPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if violations := checkBudget(results, budgets); len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "benchjson: budget violation:", v)
		}
		os.Exit(1)
	}
}
