package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine("BenchmarkE1LocalGeneral-8   \t 100\t   987.5 ns/op\t  123 B/op\t       4 allocs/op")
	if !ok || name != "BenchmarkE1LocalGeneral" {
		t.Fatalf("ok=%v name=%q", ok, name)
	}
	if r.Iterations != 100 || r.NsPerOp != 987.5 || r.BytesPerOp != 123 || r.AllocsPerOp != 4 {
		t.Fatalf("r = %+v", r)
	}

	name, r, ok = parseLine("BenchmarkBatchThroughput/workers=8-8 1 51234 ns/op 1249.8 jobs/s")
	if !ok || name != "BenchmarkBatchThroughput/workers=8" || r.Extra["jobs/s"] != 1249.8 {
		t.Fatalf("ok=%v name=%q r=%+v", ok, name, r)
	}

	// No GOMAXPROCS suffix (benchmarks run with -cpu flags omit it rarely,
	// but custom harnesses may): the name passes through untouched.
	if name, _, ok := parseLine("BenchmarkPlain 3 10 ns/op"); !ok || name != "BenchmarkPlain" {
		t.Fatalf("ok=%v name=%q", ok, name)
	}

	for _, line := range []string{
		"ok  \trepro\t0.1s",
		"goos: linux",
		"PASS",
		"--- BENCH: BenchmarkX",
		"Benchmark  notanumber  1 ns/op",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Fatalf("parsed non-result line %q", line)
		}
	}
}

func TestConvert(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkA-8\t10\t100 ns/op\t32 B/op\t2 allocs/op",
		"BenchmarkB/R=3-8\t5\t200 ns/op",
		"PASS",
	}, "\n")
	var out bytes.Buffer
	parsed, err := convert(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]Result
	if err := json.Unmarshal(out.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m["BenchmarkA"].NsPerOp != 100 || m["BenchmarkB/R=3"].Iterations != 5 {
		t.Fatalf("m = %+v", m)
	}
	if len(parsed) != 2 || parsed["BenchmarkA"].AllocsPerOp != 2 {
		t.Fatalf("parsed = %+v", parsed)
	}
}

func TestCheckBudget(t *testing.T) {
	results := map[string]Result{
		"BenchmarkA":           {AllocsPerOp: 100, BytesPerOp: 4096},
		"BenchmarkB/workers=4": {AllocsPerOp: 7},
	}

	// Within budget: no violations.
	if v := checkBudget(results, map[string]Budget{
		"BenchmarkA":           {MaxAllocsPerOp: 100, MaxBytesPerOp: 4096},
		"BenchmarkB/workers=4": {MaxAllocsPerOp: 8},
	}); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}

	// Allocs and bytes ceilings are enforced independently.
	v := checkBudget(results, map[string]Budget{
		"BenchmarkA": {MaxAllocsPerOp: 99, MaxBytesPerOp: 4000},
	})
	if len(v) != 2 || !strings.Contains(v[0], "allocs/op") || !strings.Contains(v[1], "B/op") {
		t.Fatalf("violations = %v", v)
	}

	// A zero field is not checked.
	if v := checkBudget(results, map[string]Budget{"BenchmarkA": {MaxAllocsPerOp: 200}}); len(v) != 0 {
		t.Fatalf("zero bytes ceiling was enforced: %v", v)
	}

	// A budgeted benchmark missing from the run fails: renaming a
	// benchmark must not silently disable its gate.
	v = checkBudget(results, map[string]Budget{"BenchmarkGone": {MaxAllocsPerOp: 1}})
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("violations = %v", v)
	}
}

func TestCheckBudgetMinExtra(t *testing.T) {
	results := map[string]Result{
		"BenchmarkDelta": {NsPerOp: 100, Extra: map[string]float64{"cold/delta": 7.5}},
	}

	// At or above the floor: clean.
	if v := checkBudget(results, map[string]Budget{
		"BenchmarkDelta": {MinExtra: map[string]float64{"cold/delta": 5}},
	}); len(v) != 0 {
		t.Fatalf("unexpected violations: %v", v)
	}

	// Below the floor: one violation naming the unit and both numbers.
	v := checkBudget(results, map[string]Budget{
		"BenchmarkDelta": {MinExtra: map[string]float64{"cold/delta": 10}},
	})
	if len(v) != 1 || !strings.Contains(v[0], "cold/delta") || !strings.Contains(v[0], "below the floor") {
		t.Fatalf("violations = %v", v)
	}

	// A floored unit the benchmark never reported is a violation — dropping
	// the ReportMetric call must not silently disable the gate.
	v = checkBudget(results, map[string]Budget{
		"BenchmarkDelta": {MinExtra: map[string]float64{"jobs/s": 1}},
	})
	if len(v) != 1 || !strings.Contains(v[0], "missing") {
		t.Fatalf("violations = %v", v)
	}
}
