package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/canon"
	"repro/internal/delta"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/shard"
)

// postDelta sends one delta request body and returns status, body and the
// answering shard.
func (h *harness) postDelta(addr string, req *mmlp.DeltaRequest) (int, []byte, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, "", err
	}
	resp, err := h.hc.Post("http://"+addr+"/v1/delta", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header.Get("X-Mmlp-Shard"), err
}

// reweightRow builds the edit set that scales one canonical constraint row
// by factor.
func reweightRow(row []mmlp.Term, factor float64) []mmlp.RowEdit {
	nt := make([]mmlp.Term, len(row))
	for j, t := range row {
		nt[j] = mmlp.Term{Agent: t.Agent, Coef: t.Coef * factor}
	}
	return []mmlp.RowEdit{{
		Op: mmlp.EditReweight, Kind: mmlp.EditConstraint,
		Match: append([]mmlp.Term(nil), row...), Terms: nt,
	}}
}

// runDelta is the incremental re-solve scenario: a delta names its cached
// base by canonical key, so the router must route it to the shard owning
// the BASE key — the only shard whose cache can hold the record. The
// spliced answer must be bit-identical to the direct reference's cold
// solve of the edited instance, a repeated delta must be a cache hit, an
// unknown base must relay 404/base_unknown without marking the shard
// down, and a chained delta whose base landed on a different ring owner
// must follow the documented fallback: 404, full solve to seed, retry.
func (h *harness) runDelta() error {
	if err := os.MkdirAll(h.logDir, 0o755); err != nil {
		return err
	}
	if err := h.boot(); err != nil {
		return err
	}
	ring, err := shard.New(h.shardAddrs, h.replicas)
	if err != nil {
		return err
	}
	h.ring = ring

	// The base: a necklace, whose Θ(n) diameter keeps the edit's
	// radius-(4r+3) ball a strict subset of the agents, so the delta
	// provably splices instead of recomputing everything.
	in := gen.TriNecklace(40)
	baseReq := mmlp.SolveRequest{Instance: in, R: 2, DisableSpecialCases: true}
	baseKey, err := keyFor(&baseReq)
	if err != nil {
		return err
	}
	if _, cached, _, err := h.solveBothNormalized(0, &baseReq); err != nil {
		return fmt.Errorf("warm base: %w", err)
	} else if cached {
		return fmt.Errorf("base already cached on first contact")
	}

	// Client-side reference: the same edit applied to the canonical base,
	// solved cold by the direct server.
	cin := in.Canonical()
	edits := reweightRow(cin.Cons[0].Terms, 1.25)
	edited, err := delta.Apply(cin, edits)
	if err != nil {
		return err
	}
	editedReq := mmlp.SolveRequest{Instance: edited, R: 2, DisableSpecialCases: true}
	editedKey, err := keyFor(&editedReq)
	if err != nil {
		return err
	}
	dcode, dbody, _, err := h.postSolve(h.directAddr, &editedReq)
	if err != nil || dcode != http.StatusOK {
		return fmt.Errorf("direct reference solve: status %d, err %v (%s)", dcode, err, dbody)
	}
	var ref mmlp.SolveResponse
	if err := json.Unmarshal(dbody, &ref); err != nil {
		return fmt.Errorf("direct reference solve: %w", err)
	}

	// The delta through the router: owner-of-base routing, bit-identity,
	// splice accounting, and the chained-base key.
	dreq := &mmlp.DeltaRequest{Base: baseKey.String(), Edits: edits}
	code, body, member, err := h.postDelta(h.routerAddr, dreq)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("delta via router: status %d, err %v (%s)", code, err, body)
	}
	owner := ring.Owner(baseKey)
	if member != owner {
		return fmt.Errorf("delta served by shard %s, base key's ring owner is %s", member, owner)
	}
	var dresp mmlp.DeltaResponse
	if err := json.Unmarshal(body, &dresp); err != nil {
		return fmt.Errorf("bad delta response %q: %w", body, err)
	}
	if dresp.Status != ref.Status || dresp.Utility != ref.Utility || dresp.UpperBound != ref.UpperBound ||
		!bytes.Equal(mustJSON(dresp.X), mustJSON(ref.X)) {
		return fmt.Errorf("delta solution differs from the direct cold solve of the edited instance\ndelta:  %s\ndirect: %s", body, dbody)
	}
	if dresp.Key != editedKey.String() {
		return fmt.Errorf("delta key %s, want the edited instance's canonical key %s", dresp.Key, editedKey)
	}
	if dresp.Cached || !dresp.Spliced || dresp.DirtyAgents <= 0 || dresp.DirtyAgents >= dresp.TotalAgents {
		return fmt.Errorf("delta accounting: cached=%v spliced=%v dirty=%d/%d, want a fresh strict splice",
			dresp.Cached, dresp.Spliced, dresp.DirtyAgents, dresp.TotalAgents)
	}
	fmt.Printf("delta identity: spliced re-solve (%d/%d agents re-priced) bit-identical to the direct cold solve\n",
		dresp.DirtyAgents, dresp.TotalAgents)

	// The same delta again is a cache hit with the same solution bytes.
	code, body2, _, err := h.postDelta(h.routerAddr, dreq)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("repeated delta: status %d, err %v (%s)", code, err, body2)
	}
	var dresp2 mmlp.DeltaResponse
	if err := json.Unmarshal(body2, &dresp2); err != nil {
		return err
	}
	if !dresp2.Cached || !bytes.Equal(mustJSON(dresp2.X), mustJSON(dresp.X)) {
		return fmt.Errorf("repeated delta: cached=%v, want a hit with identical solution", dresp2.Cached)
	}

	// An empty edit set answers from the base's own cache line.
	code, body3, _, err := h.postDelta(h.routerAddr, &mmlp.DeltaRequest{Base: baseKey.String()})
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("empty-edit delta: status %d, err %v (%s)", code, err, body3)
	}
	var dresp3 mmlp.DeltaResponse
	if err := json.Unmarshal(body3, &dresp3); err != nil {
		return err
	}
	if !dresp3.Cached || dresp3.Key != baseKey.String() {
		return fmt.Errorf("empty-edit delta: cached=%v key=%s, want a hit on the base key", dresp3.Cached, dresp3.Key)
	}

	// An unknown base relays the shard's 404/base_unknown verbatim and the
	// shard is NOT marked down: a cold cache is an answer, not a failure.
	unknown := canon.HashBytes([]byte("fleetcheck: never solved"))
	code, body4, _, err := h.postDelta(h.routerAddr, &mmlp.DeltaRequest{Base: unknown.String(), Edits: edits})
	if err != nil {
		return err
	}
	if code != http.StatusNotFound {
		return fmt.Errorf("unknown-base delta: status %d (%s), want 404", code, body4)
	}
	var envelope mmlp.ErrorResponse
	if err := json.Unmarshal(body4, &envelope); err != nil || envelope.Error.Code != mmlp.ErrCodeBaseUnknown {
		return fmt.Errorf("unknown-base delta: body %s, want a %q envelope (err %v)", body4, mmlp.ErrCodeBaseUnknown, err)
	}

	// Chained delta: the first delta's result was stored on the BASE key's
	// owner, but the router routes the chain by its new base (the edited
	// key), whose ring owner may be a different shard. Same owner → served
	// directly; different owner → the documented fallback: 404, full solve
	// to seed the base where the ring wants it, then the delta lands.
	// The chain's base is the EDITED instance, so its edit must match the
	// already-reweighted row, not the original.
	chain := &mmlp.DeltaRequest{Base: editedKey.String(), Edits: reweightRow(edits[0].Terms, 1.5)}
	code, body5, member5, err := h.postDelta(h.routerAddr, chain)
	if err != nil {
		return err
	}
	chainOwner := ring.Owner(editedKey)
	if member5 != chainOwner {
		return fmt.Errorf("chained delta served by %s, edited key's ring owner is %s", member5, chainOwner)
	}
	if chainOwner == owner {
		if code != http.StatusOK {
			return fmt.Errorf("chained delta on the same owner: status %d (%s), want 200", code, body5)
		}
		fmt.Printf("delta chain: edited key stayed on %s, chained delta served from the stored record\n", chainOwner)
	} else {
		if code != http.StatusNotFound {
			return fmt.Errorf("chained delta on a different owner: status %d (%s), want the 404 fallback", code, body5)
		}
		if scode, sbody, _, err := h.postSolve(h.routerAddr, &editedReq); err != nil || scode != http.StatusOK {
			return fmt.Errorf("seeding solve for the chain: status %d, err %v (%s)", scode, err, sbody)
		}
		code, body5, _, err = h.postDelta(h.routerAddr, chain)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("chained delta after seeding: status %d, err %v (%s)", code, err, body5)
		}
		fmt.Printf("delta chain: edited key moved to %s, full-solve fallback re-seeded it and the chained delta landed\n", chainOwner)
	}
	var chainResp mmlp.DeltaResponse
	if err := json.Unmarshal(body5, &chainResp); err != nil {
		return err
	}
	chainEdited, err := delta.Apply(edited.Canonical(), chain.Edits)
	if err != nil {
		return err
	}
	chainReq := mmlp.SolveRequest{Instance: chainEdited, R: 2, DisableSpecialCases: true}
	ccode, cbody, _, err := h.postSolve(h.directAddr, &chainReq)
	if err != nil || ccode != http.StatusOK {
		return fmt.Errorf("direct reference for the chain: status %d, err %v (%s)", ccode, err, cbody)
	}
	var chainRef mmlp.SolveResponse
	if err := json.Unmarshal(cbody, &chainRef); err != nil {
		return err
	}
	if chainResp.Utility != chainRef.Utility || chainResp.UpperBound != chainRef.UpperBound ||
		!bytes.Equal(mustJSON(chainResp.X), mustJSON(chainRef.X)) {
		return fmt.Errorf("chained delta differs from the direct cold solve\ndelta:  %s\ndirect: %s", body5, cbody)
	}

	// The delta ledger: counters live on the shards the deltas landed on,
	// the router's fleet view sums them, and no shard was ever marked down.
	time.Sleep(100 * time.Millisecond) // let the last scrapes quiesce
	var sum mmlp.StatsRaw
	for _, addr := range h.shardAddrs {
		raw, err := h.scrapeRaw(addr)
		if err != nil {
			return err
		}
		sum.Add(raw)
	}
	if sum.DeltaMisses < 2 || sum.DeltaHits < 2 || sum.DirtyAgents <= 0 {
		return fmt.Errorf("fleet delta counters: hits=%d misses=%d dirty=%d, want ≥2 hits, ≥2 misses and a positive dirty total",
			sum.DeltaHits, sum.DeltaMisses, sum.DirtyAgents)
	}
	fleet, err := h.fleetStats()
	if err != nil {
		return err
	}
	if fleet.Fleet.DeltaHits != sum.DeltaHits || fleet.Fleet.DeltaMisses != sum.DeltaMisses || fleet.Fleet.DirtyAgents != sum.DirtyAgents {
		return fmt.Errorf("fleet view delta counters %d/%d/%d do not match the per-shard sums %d/%d/%d",
			fleet.Fleet.DeltaHits, fleet.Fleet.DeltaMisses, fleet.Fleet.DirtyAgents,
			sum.DeltaHits, sum.DeltaMisses, sum.DirtyAgents)
	}
	if fleet.Router.ShardDown != 0 || fleet.Router.Retried != 0 {
		return fmt.Errorf("delta traffic marked shards down or retried: %+v", fleet.Router)
	}
	fmt.Printf("delta ledger: hits=%d misses=%d dirty_agents=%d aggregated correctly, no shard marked down\n",
		sum.DeltaHits, sum.DeltaMisses, sum.DirtyAgents)
	return h.checkConservation(h.shardAddrs)
}
