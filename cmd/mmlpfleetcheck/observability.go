package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/obs"
	"repro/internal/shard"
)

// checkConservation is the fleet's counter-conservation invariant: every
// request the router admits (one `routed` increment per solve or batch
// job) becomes exactly one completed pool job on exactly one shard, so at
// quiescence the router's routed counter equals the shards' summed jobs
// counters. Valid only for replication-1 scenarios with a healthy fleet:
// write-through warms and truncated-stream re-forwards create shard jobs
// the router never counted as routed, so the replicated-kill scenario
// skips this check.
func (h *harness) checkConservation(addrs []string) error {
	fleet, err := h.fleetStats()
	if err != nil {
		return err
	}
	var jobs int64
	for _, addr := range addrs {
		raw, err := h.scrapeRaw(addr)
		if err != nil {
			return err
		}
		jobs += raw.Jobs
	}
	if fleet.Router.Routed != jobs {
		return fmt.Errorf("counter conservation: router routed %d jobs but the shards completed %d — requests were lost, duplicated, or counted twice",
			fleet.Router.Routed, jobs)
	}
	fmt.Printf("counter conservation: routed=%d equals the shards' summed jobs\n", jobs)
	return nil
}

// postSolveObs sends one solve with an optional query string and trace
// header, returning status, body, the answering shard, and the echoed
// X-Mmlp-Trace header.
func (h *harness) postSolveObs(addr string, req *mmlp.SolveRequest, query, traceID string) (int, []byte, string, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, "", "", err
	}
	hreq, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/solve"+query, bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if traceID != "" {
		hreq.Header.Set(obs.TraceHeader, traceID)
	}
	resp, err := h.hc.Do(hreq)
	if err != nil {
		return 0, nil, "", "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header.Get("X-Mmlp-Shard"), resp.Header.Get(obs.TraceHeader), err
}

// promLine is one parsed sample of the Prometheus text format.
type promLine struct {
	series string // name plus label block, e.g. `mmlp_jobs_total` or `x_bucket{le="0.1"}`
	value  float64
}

var promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?$`)

// parseProm parses a /metrics body, validating the exposition format line
// by line: every non-comment line must be "<series> <value>", and within
// one histogram the cumulative bucket counts must be monotone up to +Inf.
func parseProm(text string) ([]promLine, error) {
	var out []promLine
	prevBucket := ""
	prevCount := 0.0
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("malformed sample line %q", line)
		}
		if !promSampleRe.MatchString(fields[0]) {
			return nil, fmt.Errorf("malformed series name %q", fields[0])
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("malformed value in %q: %w", line, err)
		}
		if name, _, isBucket := strings.Cut(fields[0], "_bucket{"); isBucket {
			if name == prevBucket && v < prevCount {
				return nil, fmt.Errorf("histogram %s buckets not cumulative: %q < %g", name, line, prevCount)
			}
			prevBucket, prevCount = name, v
		} else {
			prevBucket, prevCount = "", 0
		}
		out = append(out, promLine{series: fields[0], value: v})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no samples")
	}
	return out, nil
}

// scrapeMetrics fetches and parses one process's /metrics.
func (h *harness) scrapeMetrics(addr string) ([]promLine, error) {
	resp, err := h.hc.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics via %s: status %d", addr, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		return nil, fmt.Errorf("metrics via %s: Content-Type %q", addr, ct)
	}
	lines, err := parseProm(string(body))
	if err != nil {
		return nil, fmt.Errorf("metrics via %s: %w", addr, err)
	}
	return lines, nil
}

// metricValue finds one exact series in a parsed scrape.
func metricValue(lines []promLine, series string) (float64, error) {
	for _, l := range lines {
		if l.series == series {
			return l.value, nil
		}
	}
	return 0, fmt.Errorf("series %q absent", series)
}

// checkSlowLogIDs polls the shard log files until every router-issued
// trace ID has surfaced in exactly one shard's slow-log. Appearing in two
// logs would mean one request ran twice; in zero, that the slow-log
// dropped a solve or the ID never propagated.
func (h *harness) checkSlowLogIDs(ids []string) error {
	logs := make([]string, h.nShards)
	deadline := time.Now().Add(15 * time.Second)
	for {
		for i := range logs {
			b, err := os.ReadFile(filepath.Join(h.logDir, fmt.Sprintf("shard%d.log", i)))
			if err != nil {
				return err
			}
			logs[i] = string(b)
		}
		allFound := true
		for _, id := range ids {
			n := 0
			for _, log := range logs {
				if strings.Contains(log, "trace="+id) {
					n++
				}
			}
			if n > 1 {
				return fmt.Errorf("trace ID %s appears in %d shard slow-logs, want exactly 1", id, n)
			}
			if n == 0 {
				allFound = false
			}
		}
		if allFound {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("some trace IDs never reached any shard's slow-log")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// runObservability is the observability scenario: with every shard booted
// at -slow-log 0, drive traced traffic through the router and assert the
// whole telemetry chain end to end — per-request trace IDs minted once and
// landing in exactly one shard's slow-log, ?trace=1 stage blocks that
// match what the solve actually did, /metrics parsing on every process
// with counters that agree with /statsz, fleet quantiles derived from the
// merged histograms, build identity on /healthz, and counter conservation
// across the routing layer.
func (h *harness) runObservability() error {
	if err := os.MkdirAll(h.logDir, 0o755); err != nil {
		return err
	}
	if err := h.boot(); err != nil {
		return err
	}
	ring, err := shard.New(h.shardAddrs, h.replicas)
	if err != nil {
		return err
	}
	h.ring = ring

	// Phase A: distinct problems with ?trace=1. Each response must echo a
	// fresh router-minted ID and carry a stage block attributing kernel
	// time; the direct reference (no tracing) must stay bit-identical.
	reqs := fastSet(h.seed+500, 8)
	ids := map[string]bool{}
	var idList []string
	ref := make([][]byte, len(reqs))
	for i := range reqs {
		code, rbody, _, id, err := h.postSolveObs(h.routerAddr, &reqs[i], "?trace=1", "")
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("traced solve %d: status %d, err %v (%s)", i, code, err, rbody)
		}
		if len(id) != 16 {
			return fmt.Errorf("traced solve %d: router echoed trace ID %q, want 16 hex chars", i, id)
		}
		if ids[id] {
			return fmt.Errorf("traced solve %d: router reused trace ID %s", i, id)
		}
		ids[id] = true
		idList = append(idList, id)

		var resp mmlp.SolveResponse
		if err := json.Unmarshal(rbody, &resp); err != nil {
			return fmt.Errorf("traced solve %d: %w", i, err)
		}
		if resp.Cached {
			return fmt.Errorf("traced solve %d cached on first contact", i)
		}
		if resp.Trace["kernel"] <= 0 {
			return fmt.Errorf("traced solve %d: cold solve's trace does not attribute kernel time: %v", i, resp.Trace)
		}
		if _, ok := resp.Trace["cache_lookup"]; !ok {
			return fmt.Errorf("traced solve %d: trace lacks the cache_lookup stage: %v", i, resp.Trace)
		}
		n, _, err := normalize(rbody)
		if err != nil {
			return err
		}
		dcode, dbody, _, err := h.postSolve(h.directAddr, &reqs[i])
		if err != nil || dcode != http.StatusOK {
			return fmt.Errorf("direct solve %d: status %d, err %v", i, dcode, err)
		}
		dn, _, err := normalize(dbody)
		if err != nil {
			return err
		}
		if !bytes.Equal(n, dn) {
			return fmt.Errorf("traced solve %d differs from the direct reference\nrouter: %s\ndirect: %s", i, n, dn)
		}
		ref[i] = n
	}

	// Phase B: permuted duplicates. A cache hit's trace must show the
	// lookup and must not claim kernel work that never ran.
	for i := range reqs {
		dup := reqs[i]
		dup.Instance = gen.Permuted(reqs[i].Instance)
		code, rbody, _, id, err := h.postSolveObs(h.routerAddr, &dup, "?trace=1", "")
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("traced dup %d: status %d, err %v (%s)", i, code, err, rbody)
		}
		if ids[id] {
			return fmt.Errorf("traced dup %d: router reused trace ID %s", i, id)
		}
		ids[id] = true
		idList = append(idList, id)
		var resp mmlp.SolveResponse
		if err := json.Unmarshal(rbody, &resp); err != nil {
			return err
		}
		if !resp.Cached {
			return fmt.Errorf("traced dup %d not cached", i)
		}
		if _, ok := resp.Trace["cache_lookup"]; !ok {
			return fmt.Errorf("traced dup %d: cached trace lacks cache_lookup: %v", i, resp.Trace)
		}
		if _, ok := resp.Trace["kernel"]; ok {
			return fmt.Errorf("traced dup %d: cached trace claims kernel time: %v", i, resp.Trace)
		}
		n, _, err := normalize(rbody)
		if err != nil {
			return err
		}
		if !bytes.Equal(n, ref[i]) {
			return fmt.Errorf("traced dup %d differs from its distinct spelling", i)
		}
	}
	fmt.Printf("trace spans: %d solves each carried a unique router ID and a stage block matching the work done\n", len(idList))

	// A client-supplied ID is adopted, not replaced.
	clientID := "feedface00000001"
	code, _, _, echoed, err := h.postSolveObs(h.routerAddr, &reqs[0], "", clientID)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("client-ID solve: status %d, err %v", code, err)
	}
	if echoed != clientID {
		return fmt.Errorf("client-supplied trace ID echoed as %q, want %q", echoed, clientID)
	}
	idList = append(idList, clientID)

	// Phase C: with -slow-log 0 every solve logs; each ID must surface in
	// exactly one shard's log.
	if err := h.checkSlowLogIDs(idList); err != nil {
		return err
	}
	fmt.Printf("slow-log: every router-issued trace ID appears in exactly one shard's log\n")

	// Phase D: /metrics on every process. Each scrape must parse, and the
	// shards' jobs and solve-histogram counts must sum to the fleet view.
	fleet, err := h.fleetStats()
	if err != nil {
		return err
	}
	var jobsSum, solveCountSum float64
	for _, addr := range h.shardAddrs {
		lines, err := h.scrapeMetrics(addr)
		if err != nil {
			return err
		}
		jobs, err := metricValue(lines, "mmlp_jobs_total")
		if err != nil {
			return fmt.Errorf("shard %s metrics: %w", addr, err)
		}
		count, err := metricValue(lines, "mmlp_solve_duration_seconds_count")
		if err != nil {
			return fmt.Errorf("shard %s metrics: %w", addr, err)
		}
		jobsSum += jobs
		solveCountSum += count
	}
	if jobsSum != float64(fleet.Fleet.Jobs) {
		return fmt.Errorf("shard /metrics jobs sum to %v, fleet view reports %d", jobsSum, fleet.Fleet.Jobs)
	}
	if fleet.Fleet.Solve == nil || float64(fleet.Fleet.Solve.Count) != solveCountSum {
		return fmt.Errorf("merged fleet histogram count %+v does not equal the per-shard /metrics sum %v", fleet.Fleet.Solve, solveCountSum)
	}
	routerLines, err := h.scrapeMetrics(h.routerAddr)
	if err != nil {
		return err
	}
	routed, err := metricValue(routerLines, "mmlp_router_routed_total")
	if err != nil {
		return fmt.Errorf("router metrics: %w", err)
	}
	if routed != float64(fleet.Router.Routed) {
		return fmt.Errorf("router /metrics routed=%v, /statsz reports %d", routed, fleet.Router.Routed)
	}
	if _, err := metricValue(routerLines, "mmlp_router_forward_duration_seconds_count"); err != nil {
		return fmt.Errorf("router metrics: %w", err)
	}
	fmt.Printf("metrics: %d shard scrapes + the router parse, and their counters equal the fleet view\n", h.nShards)

	// Phase E: fleet quantiles exist and are ordered — they can only come
	// from the merged histograms, because the per-shard raw blocks carry
	// per-process quantiles the router no longer combines.
	if fleet.Fleet.P50NS <= 0 || fleet.Fleet.P99NS < fleet.Fleet.P50NS {
		return fmt.Errorf("fleet quantiles p50=%d p99=%d, want 0 < p50 ≤ p99 from the merged histogram",
			fleet.Fleet.P50NS, fleet.Fleet.P99NS)
	}
	if fleet.Router.Forward == nil || fleet.Router.Forward.Count == 0 {
		return fmt.Errorf("router forward histogram missing from the fleet view")
	}
	fmt.Printf("fleet quantiles: p50=%s p99=%s derived from the merged solve histogram (%d samples)\n",
		time.Duration(fleet.Fleet.P50NS), time.Duration(fleet.Fleet.P99NS), fleet.Fleet.Solve.Count)

	// Phase F: /healthz build identity on the router and every shard.
	for _, addr := range append([]string{h.routerAddr}, h.shardAddrs...) {
		resp, err := h.hc.Get("http://" + addr + "/healthz")
		if err != nil {
			return err
		}
		var hz struct {
			Revision *string `json:"revision"`
			Dirty    *bool   `json:"dirty"`
		}
		err = json.NewDecoder(resp.Body).Decode(&hz)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("healthz via %s: %w", addr, err)
		}
		if hz.Revision == nil || *hz.Revision == "" || hz.Dirty == nil {
			return fmt.Errorf("healthz via %s lacks build identity", addr)
		}
	}
	fmt.Printf("healthz: build revision and dirty flag reported by the router and all %d shards\n", h.nShards)

	return h.checkConservation(h.shardAddrs)
}
