package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/obs"
	"repro/internal/shard"
)

// heavySet builds n distinct problems heavy enough (seconds each) to wedge
// a worker for longer than any deadline the overload scenario propagates,
// so a deadline'd probe queued behind one provably expires while waiting.
func heavySet(seedBase int64, n int) []mmlp.SolveRequest {
	reqs := make([]mmlp.SolveRequest, n)
	for i := range reqs {
		in := gen.Random(gen.RandomConfig{
			Agents: 700 + 10*i, MaxDegI: 3, MaxDegK: 3,
			ExtraCons: 8, ExtraObjs: 4,
		}, seedBase+int64(i))
		reqs[i] = mmlp.SolveRequest{Instance: in, Engine: mmlp.EngineDistCompact, R: 5, BinIters: 8000}
	}
	return reqs
}

// postSolveShed sends one solve with an optional X-Mmlp-Deadline-Ms header
// and returns status, body and the Retry-After header — the overload
// contract surface the plain postSolve helper does not expose.
func (h *harness) postSolveShed(addr string, req *mmlp.SolveRequest, deadlineMS string) (int, []byte, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, "", err
	}
	hreq, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if deadlineMS != "" {
		hreq.Header.Set(obs.DeadlineHeader, deadlineMS)
	}
	resp, err := h.hc.Do(hreq)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header.Get("Retry-After"), err
}

// checkConservationShed is the overload form of the counter-conservation
// invariant: with admission control on, every request the router routes is
// either completed as a pool job (solved, failed, or expired in queue) or
// refused at admission, so routed == Σ(jobs + shed) at quiescence. Nothing
// is ever silently dropped.
func (h *harness) checkConservationShed(addrs []string) error {
	fleet, err := h.fleetStats()
	if err != nil {
		return err
	}
	var jobs, shed int64
	for _, addr := range addrs {
		raw, err := h.scrapeRaw(addr)
		if err != nil {
			return err
		}
		jobs += raw.Jobs
		shed += raw.Shed
	}
	if fleet.Router.Routed != jobs+shed {
		return fmt.Errorf("admission ledger: router routed %d requests but the shards account for %d jobs + %d shed = %d — requests were lost or double-counted",
			fleet.Router.Routed, jobs, shed, jobs+shed)
	}
	fmt.Printf("admission ledger: routed=%d equals jobs=%d + shed=%d across the fleet\n", fleet.Router.Routed, jobs, shed)
	return nil
}

// runBrownout is the slow-shard chaos scenario: shard0 boots with a
// deterministic fault spec adding 800ms to every /v1/ request while the
// router runs with its retry budget armed. Slowness is not death: every
// solve and batch must stay bit-identical to the direct reference, the
// browned-out shard must keep its keys (no cooldown, no failover hops, no
// retry-budget spend), the injected-fault counter must prove the chaos
// layer fired, and the routed/jobs conservation must hold.
func (h *harness) runBrownout() error {
	if err := os.MkdirAll(h.logDir, 0o755); err != nil {
		return err
	}
	const spec = "path=/v1/ latency=800ms"
	// Record the active fault spec next to the process logs, so a CI
	// failure artifact shows exactly which chaos was injected.
	if err := os.WriteFile(filepath.Join(h.logDir, "fault-spec.txt"), []byte(spec+"\n"), 0o644); err != nil {
		return err
	}
	h.shardExtra = map[int][]string{0: {"-fault-spec", spec}}
	h.routerExtra = []string{"-retry-budget", "8"}
	if err := h.boot(); err != nil {
		return err
	}
	ring, err := shard.New(h.shardAddrs, h.replicas)
	if err != nil {
		return err
	}
	h.ring = ring

	// Assemble a workload that provably exercises the browned-out shard:
	// keep drawing problems until shard0 owns at least two keys.
	var reqs []mmlp.SolveRequest
	slowOwned := 0
	for seed := h.seed + 700; len(reqs) < 8 || slowOwned < 2; seed++ {
		if seed > h.seed+10_000 {
			return fmt.Errorf("could not assemble a workload with ≥2 keys on shard0")
		}
		req := fastSet(seed, 1)[0]
		k, err := keyFor(&req)
		if err != nil {
			return err
		}
		if ring.Owner(k) == h.shardAddrs[0] {
			slowOwned++
		}
		reqs = append(reqs, req)
	}

	// Phase A: every solve answers bit-identically despite the brownout.
	for i := range reqs {
		if _, cached, _, err := h.solveBothNormalized(i, &reqs[i]); err != nil {
			return fmt.Errorf("brownout solve pass: %w", err)
		} else if cached {
			return fmt.Errorf("brownout job %d cached on first contact", i)
		}
	}
	fmt.Printf("brownout solves: %d jobs (%d on the slow shard) bit-identical to the direct reference\n", len(reqs), slowOwned)

	// Phase B: the interleaved batch, whose shard0 sub-batch rides through
	// the fault layer, must merge bit-identically too.
	dups := make([]mmlp.SolveRequest, len(reqs))
	for i := range reqs {
		dups[i] = reqs[i]
		dups[i].Instance = gen.Permuted(reqs[i].Instance)
	}
	if err := h.checkBatchIdentity(reqs, dups); err != nil {
		return fmt.Errorf("brownout batch: %w", err)
	}

	// Phase C: the fault layer really fired, only on shard0 — and the
	// router never confused slow with dead: no cooldowns, no failover
	// hops, and the armed retry budget was never spent.
	for i, addr := range h.shardAddrs {
		raw, err := h.scrapeRaw(addr)
		if err != nil {
			return err
		}
		if i == 0 && raw.FaultsInjected == 0 {
			return fmt.Errorf("shard0 reports zero injected faults; the -fault-spec never fired")
		}
		if i != 0 && raw.FaultsInjected != 0 {
			return fmt.Errorf("shard%d reports %d injected faults without a fault spec", i, raw.FaultsInjected)
		}
	}
	fleet, err := h.fleetStats()
	if err != nil {
		return err
	}
	if fleet.Router.ShardDown != 0 || fleet.Router.Retried != 0 {
		return fmt.Errorf("router treated the slow shard as dead (shard_down=%d, retried=%d); slowness must not trigger failover",
			fleet.Router.ShardDown, fleet.Router.Retried)
	}
	if fleet.Router.RetryBudgetExhausted != 0 {
		return fmt.Errorf("retry budget exhausted %d times under a brownout that required no retries", fleet.Router.RetryBudgetExhausted)
	}
	fmt.Printf("brownout: slow shard kept its keys (shard_down=0, retried=0, budget untouched, faults_injected>0 on shard0 only)\n")
	return h.checkConservation(h.shardAddrs)
}

// runOverload is the admission-control scenario: shards boot with -queue 1
// -shed, and the router is stormed with more concurrent distinct slow keys
// than the fleet has worker+queue slots. The overflow must be refused with
// 429 + Retry-After (relayed through the router without marking the shard
// down), clients honouring the hint must eventually land every job with
// bit-identical answers, a propagated deadline expiring behind wedged
// workers must surface as 504 with the deadline_expired counter moving,
// and the admission ledger routed == jobs + shed must balance.
func (h *harness) runOverload() error {
	if err := os.MkdirAll(h.logDir, 0o755); err != nil {
		return err
	}
	h.shardExtraAll = []string{"-queue", "1", "-shed"}
	if err := h.boot(); err != nil {
		return err
	}
	ring, err := shard.New(h.shardAddrs, h.replicas)
	if err != nil {
		return err
	}
	h.ring = ring

	// Phase A: the storm. Fleet capacity is workers+1 queue slot per
	// shard; concurrency beyond it guarantees at least one shard sees a
	// fourth simultaneous request and must shed (the keys are distinct, so
	// coalescing cannot absorb the burst).
	capacity := h.nShards * (h.workers + 1)
	storm := slowSet(h.seed+800, capacity+3)
	type outcome struct {
		norm  []byte
		sheds int
		err   error
	}
	outs := make([]outcome, len(storm))
	var wg sync.WaitGroup
	for i := range storm {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			deadline := time.Now().Add(90 * time.Second)
			for {
				code, body, retryAfter, err := h.postSolveShed(h.routerAddr, &storm[i], "")
				if err != nil {
					outs[i].err = fmt.Errorf("storm job %d: %w", i, err)
					return
				}
				if code == http.StatusOK {
					n, _, nerr := normalize(body)
					if nerr != nil {
						outs[i].err = nerr
						return
					}
					outs[i].norm = n
					return
				}
				if code != http.StatusTooManyRequests {
					outs[i].err = fmt.Errorf("storm job %d: status %d (%s), want 200 or 429", i, code, body)
					return
				}
				secs, aerr := strconv.Atoi(retryAfter)
				if aerr != nil || secs < 1 {
					outs[i].err = fmt.Errorf("storm job %d: 429 carried Retry-After %q, want a positive second count", i, retryAfter)
					return
				}
				outs[i].sheds++
				if time.Now().After(deadline) {
					outs[i].err = fmt.Errorf("storm job %d: still shed after 90s of honouring Retry-After", i)
					return
				}
				time.Sleep(time.Duration(secs) * time.Second)
			}
		}(i)
	}
	wg.Wait()
	totalSheds := 0
	for i := range outs {
		if outs[i].err != nil {
			return outs[i].err
		}
		totalSheds += outs[i].sheds
	}
	if totalSheds == 0 {
		return fmt.Errorf("storm of %d concurrent jobs against %d slots was never shed; admission control did not engage", len(storm), capacity)
	}

	// Every storm answer matches the direct reference bit-for-bit: shedding
	// refused work, it never corrupted any.
	for i := range storm {
		code, body, _, err := h.postSolve(h.directAddr, &storm[i])
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("direct reference job %d: status %d, err %v", i, code, err)
		}
		dn, _, err := normalize(body)
		if err != nil {
			return err
		}
		if !bytes.Equal(outs[i].norm, dn) {
			return fmt.Errorf("storm job %d: eventual answer differs from the direct reference\nrouter: %s\ndirect: %s", i, outs[i].norm, dn)
		}
	}
	fmt.Printf("overload storm: %d jobs over %d slots, %d refusals all carried Retry-After, every retry eventually landed bit-identically\n",
		len(storm), capacity, totalSheds)

	// The clients' shed count and the shards' shed counters are the same
	// ledger seen from both ends.
	var shedSum int64
	for _, addr := range h.shardAddrs {
		raw, err := h.scrapeRaw(addr)
		if err != nil {
			return err
		}
		shedSum += raw.Shed
	}
	if shedSum != int64(totalSheds) {
		return fmt.Errorf("shards count %d sheds, clients saw %d refusals", shedSum, totalSheds)
	}

	// Phase B: the router's deadline-header surface. A generous deadline
	// rides through the whole chain and answers 200; a malformed one is the
	// client's bug and dies at the router with 400.
	probe := fastSet(h.seed+990, 1)[0]
	code, body, _, err := h.postSolveShed(h.routerAddr, &probe, "60000")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("generous-deadline solve: status %d, err %v (%s)", code, err, body)
	}
	code, body, _, err = h.postSolveShed(h.routerAddr, &probe, "soon")
	if err != nil || code != http.StatusBadRequest {
		return fmt.Errorf("malformed deadline header: status %d, err %v (%s), want 400", code, err, body)
	}
	fmt.Printf("deadline header: parsed and propagated by the router, malformed values rejected with 400\n")

	// The admission ledger balances while all traffic still flows through
	// the router (the direct-to-shard probes below are off-ledger by
	// construction, so the check comes first).
	if err := h.checkConservationShed(h.shardAddrs); err != nil {
		return err
	}

	// Phase C: queue expiry. Wedge every worker of one shard under
	// multi-second solves, then offer a job whose propagated deadline can
	// only expire while it waits in the queue: the shard must answer 504
	// without running the kernel, count a deadline_expired, and free the
	// connection as soon as a worker observes the death.
	target := h.shardAddrs[0]
	heavy := heavySet(h.seed+950, h.workers)
	var owg sync.WaitGroup
	oerrs := make([]error, len(heavy))
	for j := range heavy {
		owg.Add(1)
		go func(j int) {
			defer owg.Done()
			code, body, _, err := h.postSolveShed(target, &heavy[j], "")
			if err != nil || code != http.StatusOK {
				oerrs[j] = fmt.Errorf("occupier %d: status %d, err %v (%s)", j, code, err, body)
			}
		}(j)
	}
	time.Sleep(300 * time.Millisecond) // occupiers dequeued, workers wedged, queue empty
	expProbe := fastSet(h.seed+991, 1)[0]
	start := time.Now()
	code, body, _, err = h.postSolveShed(target, &expProbe, "250")
	elapsed := time.Since(start)
	if err != nil {
		return fmt.Errorf("deadline probe: %w", err)
	}
	if code != http.StatusGatewayTimeout {
		return fmt.Errorf("deadline probe: status %d (%s), want 504 for a deadline expired in queue", code, body)
	}
	if elapsed > 30*time.Second {
		return fmt.Errorf("deadline probe hung %v past its 250ms deadline", elapsed)
	}
	owg.Wait()
	for _, oerr := range oerrs {
		if oerr != nil {
			return oerr
		}
	}
	raw, err := h.scrapeRaw(target)
	if err != nil {
		return err
	}
	if raw.DeadlineExpired < 1 {
		return fmt.Errorf("shard answered 504 but counts %d deadline_expired", raw.DeadlineExpired)
	}
	fmt.Printf("queue expiry: deadline'd probe behind wedged workers answered 504 in %v, deadline_expired=%d\n",
		elapsed.Round(time.Millisecond), raw.DeadlineExpired)

	// Refusing and expiring work must never have looked like shard death.
	fleet, err := h.fleetStats()
	if err != nil {
		return err
	}
	if fleet.Router.ShardDown != 0 || fleet.Router.Retried != 0 {
		return fmt.Errorf("shedding marked shards down (shard_down=%d, retried=%d); a 429 is a healthy answer",
			fleet.Router.ShardDown, fleet.Router.Retried)
	}
	return nil
}
