// Command mmlpfleetcheck is the multi-process integration harness behind
// the fleet-smoke CI job. It runs eight scenarios, each against a freshly
// booted real fleet — N mmlpserve processes plus one mmlprouter — next to
// one direct mmlpserve reference process:
//
// baseline (replication 1) drives a randomized workload whose duplicate
// keys arrive in permuted spellings and asserts the three steady-state
// invariants end to end:
//
//  1. bit-identity — every response through the router (solve and batch,
//     all engines) is byte-identical to the direct single-process solve
//     after stripping the fields that legitimately differ per run
//     (latency_ms, and cached on first contact);
//  2. cache partitioning — each distinct canonical key is cached on
//     exactly one shard, the shard the ring assigns it, so the per-shard
//     /statsz?raw=1 entry counts match an independently computed ring
//     assignment and sum to the number of distinct keys (routing by
//     anything other than the canonical key — e.g. a raw body hash —
//     breaks this, because permuted spellings then land on other shards);
//  3. /statsz aggregation — the router's fleet totals equal the sum of
//     the per-shard raw counters scraped directly.
//
// replicated-kill (replication 2) warms a key set, waits until the
// write-through has placed every key on exactly its two ring replicas,
// then SIGKILLs a shard mid-batch: the batch must still produce one
// bit-identical line per job with zero failures, and every warm key must
// afterwards be answered from a surviving replica's cache — the fleet
// loses a process, not a result.
//
// cutover boots a spare shard and proposes a four-member ring through
// POST /admin/ring while a batch is streaming: the in-flight batch drains
// bit-identically on the old assignment, the drain is observable through
// GET /admin/ring, a second proposal during the drain is refused with 409
// plus a Retry-After derived from the drain's progress, and once the drain
// completes the shards prune exactly the keys whose owner moved — leaving
// the fleet a clean one-copy partition of every distinct key on the new
// ring.
//
// mixed (replication 1) runs a JSON client and a canon binary-wire client
// against one fleet: JSON solves warm the caches, then the same problems
// arrive respelled as canon payloads (solve and batch, with the binary
// result frame negotiated). Every canon answer must be a cache hit on the
// shard the ring assigns, bit-identical to the JSON reference, the fleet
// must hold exactly one cache line per problem across both encodings, and
// the router's canon_passthrough counter must account for every canon job
// — proving the router routes canon traffic by hashing bytes, without
// decoding.
//
// observability (replication 1) boots the shards with -slow-log 0 and
// drives traced traffic: every solve's router-minted X-Mmlp-Trace ID must
// be unique, echoed to the client, and surface in exactly one shard's
// slow-log; ?trace=1 stage blocks must attribute kernel time on cold
// solves and cache-lookup time (never kernel) on hits; /metrics must parse
// on every process with counters equal to /statsz; the fleet's latency
// quantiles must derive from the merged per-shard histograms; and the
// router's routed counter must equal the shards' summed jobs counters —
// the counter-conservation invariant, also checked at the end of the
// baseline, cutover and mixed scenarios.
//
// brownout (replication 1) boots shard0 with a deterministic -fault-spec
// that adds 800ms of latency to every /v1/ request and arms the router's
// retry budget: solves and batches must stay bit-identical to the direct
// reference, the slow shard must never be treated as dead (no cooldown, no
// failover hops, no budget spend), the fault counter must show the chaos
// layer actually fired, and counters must conserve.
//
// overload (replication 1) boots the shards with -queue 1 -shed and storms
// the router with more concurrent distinct slow keys than the fleet has
// worker+queue slots: admission control must answer the overflow with 429
// plus a positive Retry-After (relayed through the router, shard not
// marked down), clients that honour the hint must eventually land every
// job with answers bit-identical to the direct reference, the deadline
// header must parse at the router (and reject malformed values with 400),
// a propagated deadline that expires while a job queues behind wedged
// workers must surface as 504 with the shard's deadline_expired counter
// incremented and no connection hung, and the admission ledger must
// conserve: routed == jobs + shed across the fleet.
//
// delta (replication 1) warms a base solve, then prices an edit against it
// through POST /v1/delta: the router must route the delta to the shard
// owning the BASE key, the spliced answer must be bit-identical to the
// direct reference's cold solve of the edited instance with a strict
// subset of agents re-priced, a repeated delta must hit the cache, an
// unknown base must relay 404/base_unknown without marking the shard down,
// a chained delta whose base landed off its ring owner must follow the
// full-solve fallback, and the per-shard delta counters must aggregate
// exactly in the router's fleet view.
//
// Usage:
//
//	mmlpfleetcheck -bin ./bin [-shards 3] [-jobs 36] [-seed 1]
//	               [-replicas 64] [-workers 2] [-log-dir fleet-logs]
//
// Exit status 0 on success, 1 on any violated invariant (process logs are
// left in -log-dir for the CI artifact, one subdirectory per scenario), 2
// on bad flags.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"repro/internal/batch"
	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/shard"
)

func main() {
	bin := flag.String("bin", ".", "directory holding the mmlpserve and mmlprouter binaries")
	shards := flag.Int("shards", 3, "number of solver shards to boot")
	jobs := flag.Int("jobs", 36, "workload size (half distinct keys, half permuted duplicates)")
	seed := flag.Int64("seed", 1, "workload seed")
	replicas := flag.Int("replicas", 64, "virtual nodes per shard")
	workers := flag.Int("workers", 2, "per-shard pool size")
	logDir := flag.String("log-dir", "fleet-logs", "directory for per-process logs")
	flag.Parse()
	if *shards < 1 || *jobs < 2 || *replicas < 1 || *workers < 1 {
		fmt.Fprintln(os.Stderr, "mmlpfleetcheck: -shards, -jobs, -replicas and -workers must be positive (-jobs ≥ 2)")
		os.Exit(2)
	}

	scenarios := []struct {
		name        string
		replication int
		slowLog     bool // boot the shards with -slow-log 0
		run         func(*harness) error
	}{
		{"baseline", 1, false, (*harness).runBaseline},
		{"replicated-kill", 2, false, (*harness).runReplicatedKill},
		{"cutover", 1, false, (*harness).runCutover},
		{"mixed", 1, false, (*harness).runMixed},
		{"observability", 1, true, (*harness).runObservability},
		{"brownout", 1, false, (*harness).runBrownout},
		{"overload", 1, false, (*harness).runOverload},
		{"delta", 1, false, (*harness).runDelta},
	}
	for _, sc := range scenarios {
		fmt.Printf("=== scenario %s ===\n", sc.name)
		h := &harness{
			bin: *bin, nShards: *shards, jobs: *jobs, seed: *seed,
			replicas: *replicas, workers: *workers, replication: sc.replication,
			slowLog: sc.slowLog,
			logDir:  filepath.Join(*logDir, sc.name),
			hc:      &http.Client{Timeout: 2 * time.Minute},
		}
		err := sc.run(h)
		h.stopAll()
		if err != nil {
			fmt.Fprintf(os.Stderr, "FAIL (%s): %v\n", sc.name, err)
			fmt.Fprintf(os.Stderr, "process logs are in %s\n", h.logDir)
			os.Exit(1)
		}
		fmt.Printf("scenario %s: PASS\n", sc.name)
	}
	fmt.Println("PASS: fleet bit-identity, partitioning, aggregation, replicated kill, ring cutover, mixed-encoding serving, observability, brownout survival, overload shedding and incremental delta re-solving all hold")
}

// proc is one child process of the fleet.
type proc struct {
	name string
	cmd  *exec.Cmd
	log  *os.File
}

type harness struct {
	bin         string
	nShards     int
	jobs        int
	seed        int64
	replicas    int
	workers     int
	replication int  // router -replication; 1 = classic single-copy
	slowLog     bool // boot the shards with -slow-log 0 (log every solve)
	logDir      string
	hc          *http.Client

	// Chaos hooks, set by a scenario before boot: extra boot flags for
	// every shard (e.g. -queue 1 -shed), for one shard by index (e.g. a
	// -fault-spec brownout), and for the router (e.g. -retry-budget). The
	// direct reference server never gets them — it is the healthy control.
	shardExtraAll []string
	shardExtra    map[int][]string
	routerExtra   []string

	procs      []*proc
	shardAddrs []string
	directAddr string
	routerAddr string
	ring       *shard.Ring // the same assignment the router computes
}

func (h *harness) runBaseline() error {
	if err := os.MkdirAll(h.logDir, 0o755); err != nil {
		return err
	}
	if err := h.boot(); err != nil {
		return err
	}
	// One ring, built exactly as the router builds it: every check below
	// validates the fleet against this single independent assignment.
	ring, err := shard.New(h.shardAddrs, h.replicas)
	if err != nil {
		return err
	}
	h.ring = ring
	reqs, dups, keys, err := h.workload()
	if err != nil {
		return err
	}
	if err := h.checkSolveIdentity(reqs, dups, keys); err != nil {
		return err
	}
	if err := h.checkBatchIdentity(reqs, dups); err != nil {
		return err
	}
	if err := h.checkPartitioning(keys); err != nil {
		return err
	}
	if err := h.checkAggregation(); err != nil {
		return err
	}
	return h.checkConservation(h.shardAddrs)
}

// freePorts reserves n distinct listening ports and releases them; the gap
// before the child binds is harmless on a CI box with no other tenants.
func freePorts(n int) ([]int, error) {
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		listeners[i] = l
		ports[i] = l.Addr().(*net.TCPAddr).Port
	}
	for _, l := range listeners {
		l.Close()
	}
	return ports, nil
}

// start launches one binary with its stdout+stderr teed to a log file.
func (h *harness) start(name, binName string, args ...string) error {
	logf, err := os.Create(filepath.Join(h.logDir, name+".log"))
	if err != nil {
		return err
	}
	cmd := exec.Command(filepath.Join(h.bin, binName), args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("start %s: %w", name, err)
	}
	h.procs = append(h.procs, &proc{name: name, cmd: cmd, log: logf})
	fmt.Printf("started %s (pid %d): %s\n", name, cmd.Process.Pid, strings.Join(cmd.Args, " "))
	return nil
}

func (h *harness) stopAll() {
	for i := len(h.procs) - 1; i >= 0; i-- {
		p := h.procs[i]
		if p.cmd.Process != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
		p.log.Close()
	}
	h.procs = nil
}

// boot brings up shards, the direct reference server and the router, and
// waits until every /healthz answers.
func (h *harness) boot() error {
	ports, err := freePorts(h.nShards + 2)
	if err != nil {
		return err
	}
	cacheArgs := []string{
		"-workers", fmt.Sprint(h.workers),
		"-cache-bytes", fmt.Sprint(16 << 20),
	}
	shardArgs := cacheArgs
	if h.slowLog {
		shardArgs = append(slices.Clone(cacheArgs), "-slow-log", "0")
	}
	for i := 0; i < h.nShards; i++ {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[i])
		h.shardAddrs = append(h.shardAddrs, addr)
		args := append([]string{"-addr", addr}, shardArgs...)
		args = append(args, h.shardExtraAll...)
		args = append(args, h.shardExtra[i]...)
		if err := h.start(fmt.Sprintf("shard%d", i), "mmlpserve", args...); err != nil {
			return err
		}
	}
	h.directAddr = fmt.Sprintf("127.0.0.1:%d", ports[h.nShards])
	if err := h.start("direct", "mmlpserve",
		append([]string{"-addr", h.directAddr}, cacheArgs...)...); err != nil {
		return err
	}
	h.routerAddr = fmt.Sprintf("127.0.0.1:%d", ports[h.nShards+1])
	routerArgs := []string{
		"-addr", h.routerAddr,
		"-shards", strings.Join(h.shardAddrs, ","),
		"-replicas", fmt.Sprint(h.replicas),
	}
	if h.replication > 1 {
		routerArgs = append(routerArgs, "-replication", fmt.Sprint(h.replication))
	}
	routerArgs = append(routerArgs, h.routerExtra...)
	if err := h.start("router", "mmlprouter", routerArgs...); err != nil {
		return err
	}
	for _, addr := range append(slices.Clone(h.shardAddrs), h.directAddr, h.routerAddr) {
		if err := h.waitHealthy(addr, 15*time.Second); err != nil {
			return err
		}
	}
	return nil
}

func (h *harness) waitHealthy(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := h.hc.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// workload builds the scripted request set: jobs/2 distinct problems
// across all three engines, each paired with a permuted duplicate, plus
// the canonical key of every distinct problem.
func (h *harness) workload() (reqs, dups []mmlp.SolveRequest, keys []canon.Key, err error) {
	engines := []string{mmlp.EngineLocal, mmlp.EngineLocal, mmlp.EngineDist, mmlp.EngineDistCompact}
	n := h.jobs / 2
	for i := 0; i < n; i++ {
		eng := engines[i%len(engines)]
		agents := 8 + i%9
		if eng != mmlp.EngineLocal {
			agents = 5 + i%4 // message-passing engines carry O(N²) state; stay small
		}
		in := gen.Random(gen.RandomConfig{
			Agents: agents, MaxDegI: 3, MaxDegK: 3,
			ExtraCons: 2 + i%3, ExtraObjs: 1 + i%2,
		}, h.seed+int64(i))
		req := mmlp.SolveRequest{
			Instance:            in,
			Engine:              eng,
			R:                   2 + i%2,
			DisableSpecialCases: i%3 == 0,
		}
		job, jerr := batch.JobFromRequest(&req)
		if jerr != nil {
			return nil, nil, nil, fmt.Errorf("workload job %d invalid: %w", i, jerr)
		}
		reqs = append(reqs, req)
		keys = append(keys, engine.SolveKey(job.In, job.Opts))

		dup := req
		dup.Instance = gen.Permuted(in)
		dups = append(dups, dup)
	}
	return reqs, dups, keys, nil
}

// postSolve sends one request body and returns status, body.
func (h *harness) postSolve(addr string, req *mmlp.SolveRequest) (int, []byte, string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, "", err
	}
	resp, err := h.hc.Post("http://"+addr+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header.Get("X-Mmlp-Shard"), err
}

// normalize strips the per-run fields (latency, cached, the opt-in trace
// block) from a solve response and re-encodes it, returning the canonical
// bytes plus the stripped cached flag. Float64 values survive a JSON
// decode/encode round trip bit-exactly, so byte equality of normalized
// bodies is bit-identity of the solutions.
func normalize(body []byte) ([]byte, bool, error) {
	var resp mmlp.SolveResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, false, fmt.Errorf("bad solve response %q: %w", body, err)
	}
	cached := resp.Cached
	resp.LatencyMS, resp.Cached, resp.Trace = 0, false, nil
	out, err := json.Marshal(resp)
	return out, cached, err
}

// checkSolveIdentity drives every distinct problem, then every permuted
// duplicate, through both the router and the direct server, and asserts
// byte-identity plus the cached-flag semantics: a shard must answer a
// duplicate key from its cache, which can only happen when both spellings
// routed to the same shard.
func (h *harness) checkSolveIdentity(reqs, dups []mmlp.SolveRequest, keys []canon.Key) error {
	ring := h.ring
	solveBoth := func(i int, req *mmlp.SolveRequest, wantCached bool) error {
		rcode, rbody, member, err := h.postSolve(h.routerAddr, req)
		if err != nil {
			return fmt.Errorf("job %d via router: %w", i, err)
		}
		dcode, dbody, _, err := h.postSolve(h.directAddr, req)
		if err != nil {
			return fmt.Errorf("job %d direct: %w", i, err)
		}
		if rcode != http.StatusOK || dcode != http.StatusOK {
			return fmt.Errorf("job %d: router %d (%s), direct %d (%s)", i, rcode, rbody, dcode, dbody)
		}
		if want := ring.Owner(keys[i]); member != want {
			return fmt.Errorf("job %d served by shard %s, ring owner is %s", i, member, want)
		}
		rn, rcached, err := normalize(rbody)
		if err != nil {
			return err
		}
		dn, _, err := normalize(dbody)
		if err != nil {
			return err
		}
		if !bytes.Equal(rn, dn) {
			return fmt.Errorf("job %d: router response differs from direct solve\nrouter: %s\ndirect: %s", i, rn, dn)
		}
		if rcached != wantCached {
			return fmt.Errorf("job %d: cached=%v via router, want %v", i, rcached, wantCached)
		}
		return nil
	}
	for i := range reqs {
		if err := solveBoth(i, &reqs[i], false); err != nil {
			return fmt.Errorf("distinct pass: %w", err)
		}
	}
	// Every duplicate arrives respelled: only canonical-key routing sends
	// it to the shard that already holds the key.
	for i := range dups {
		if err := solveBoth(i, &dups[i], true); err != nil {
			return fmt.Errorf("duplicate pass: %w", err)
		}
	}
	fmt.Printf("solve identity: %d distinct + %d permuted duplicates bit-identical, duplicates cached on their owning shard\n", len(reqs), len(dups))
	return nil
}

// checkBatchIdentity sends the full interleaved workload as one batch to
// the router and the direct server and compares the streams per index.
func (h *harness) checkBatchIdentity(reqs, dups []mmlp.SolveRequest) error {
	all := make([]mmlp.SolveRequest, 0, len(reqs)+len(dups))
	for i := range reqs {
		all = append(all, reqs[i], dups[i])
	}
	body, err := json.Marshal(mmlp.BatchRequest{Jobs: all})
	if err != nil {
		return err
	}
	routerItems, err := h.fetchBatch(h.routerAddr, body)
	if err != nil {
		return err
	}
	directItems, err := h.fetchBatch(h.directAddr, body)
	if err != nil {
		return err
	}
	if len(routerItems) != len(all) || len(directItems) != len(all) {
		return fmt.Errorf("batch line counts: router %d, direct %d, want %d", len(routerItems), len(directItems), len(all))
	}
	for i := 0; i < len(all); i++ {
		rn, rok := routerItems[i]
		dn, dok := directItems[i]
		if !rok || !dok {
			return fmt.Errorf("batch index %d missing (router %v, direct %v)", i, rok, dok)
		}
		if !bytes.Equal(rn, dn) {
			return fmt.Errorf("batch index %d: router line differs from direct\nrouter: %s\ndirect: %s", i, rn, dn)
		}
	}
	fmt.Printf("batch identity: %d merged NDJSON lines bit-identical to the direct stream\n", len(all))
	return nil
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

// fetchBatch streams one batch and returns normalized per-index payloads.
func (h *harness) fetchBatch(addr string, body []byte) (map[int][]byte, error) {
	return h.streamBatch(addr, body, 0, nil)
}

// streamBatch posts one batch and reads its NDJSON stream, firing hook —
// the fault injection of the kill and cutover scenarios — once afterLines
// lines have arrived. Any error line or duplicate index fails the stream:
// the one-answer-per-job contract must hold whatever happens to the fleet
// while it streams.
func (h *harness) streamBatch(addr string, body []byte, afterLines int, hook func() error) (map[int][]byte, error) {
	resp, err := h.hc.Post("http://"+addr+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("batch via %s: status %d (%s)", addr, resp.StatusCode, b)
	}
	items := map[int][]byte{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var item mmlp.BatchItem
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			return nil, fmt.Errorf("batch via %s: bad line %q: %w", addr, sc.Text(), err)
		}
		if item.Error != "" {
			return nil, fmt.Errorf("batch via %s: job %d failed: %s", addr, item.Index, item.Error)
		}
		if _, dup := items[item.Index]; dup {
			return nil, fmt.Errorf("batch via %s: index %d emitted twice", addr, item.Index)
		}
		n, _, err := normalize(mustJSON(item.SolveResponse))
		if err != nil {
			return nil, err
		}
		items[item.Index] = n
		if hook != nil && len(items) >= afterLines {
			if err := hook(); err != nil {
				return nil, err
			}
			hook = nil
		}
	}
	return items, sc.Err()
}

// scrapeRaw fetches one process's machine stats block.
func (h *harness) scrapeRaw(addr string) (*mmlp.StatsRaw, error) {
	resp, err := h.hc.Get("http://" + addr + "/statsz?raw=1")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var raw mmlp.StatsRaw
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		return nil, fmt.Errorf("statsz?raw=1 via %s: %w", addr, err)
	}
	return &raw, nil
}

// checkPartitioning proves each distinct key is cached on exactly one
// shard — the one the ring assigns — by comparing every shard's live cache
// entry count against an independently computed ring assignment.
func (h *harness) checkPartitioning(keys []canon.Key) error {
	distinct := map[canon.Key]bool{}
	expected := map[string]int{}
	for _, k := range keys {
		if !distinct[k] {
			distinct[k] = true
			expected[h.ring.Owner(k)]++
		}
	}
	total := 0
	for _, addr := range h.shardAddrs {
		raw, err := h.scrapeRaw(addr)
		if err != nil {
			return err
		}
		if raw.Cache == nil {
			return fmt.Errorf("shard %s reports no cache block", addr)
		}
		if raw.Cache.Entries != expected[addr] {
			return fmt.Errorf("shard %s caches %d entries, ring assigns it %d of the %d distinct keys — keys are duplicated or misrouted across the fleet",
				addr, raw.Cache.Entries, expected[addr], len(distinct))
		}
		if raw.Cache.Evictions != 0 {
			return fmt.Errorf("shard %s evicted %d entries; the smoke workload must fit its cache", addr, raw.Cache.Evictions)
		}
		total += raw.Cache.Entries
	}
	if total != len(distinct) {
		return fmt.Errorf("fleet caches %d entries in total, want exactly %d distinct keys", total, len(distinct))
	}
	fmt.Printf("cache partitioning: %d distinct keys occupy exactly one shard each (per-shard counts match the ring)\n", len(distinct))
	return nil
}

// checkAggregation compares the router's fleet view against per-shard raw
// scrapes taken while the fleet is quiescent.
func (h *harness) checkAggregation() error {
	resp, err := h.hc.Get("http://" + h.routerAddr + "/statsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var fleet mmlp.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		return fmt.Errorf("router statsz: %w", err)
	}
	if fleet.Router.Shards != h.nShards || fleet.Router.Healthy != h.nShards {
		return fmt.Errorf("router reports %d/%d healthy shards, want %d/%d",
			fleet.Router.Healthy, fleet.Router.Shards, h.nShards, h.nShards)
	}
	if fleet.Router.Retried != 0 || fleet.Router.ShardDown != 0 {
		return fmt.Errorf("healthy fleet recorded retries/downs: %+v", fleet.Router)
	}
	var want mmlp.StatsRaw
	for _, addr := range h.shardAddrs {
		raw, err := h.scrapeRaw(addr)
		if err != nil {
			return err
		}
		want.Add(raw)
	}
	got := fleet.Fleet
	if got.Jobs != want.Jobs || got.Errors != want.Errors || got.Workers != want.Workers {
		return fmt.Errorf("fleet totals %+v do not match per-shard sums %+v", got, want)
	}
	if got.Cache == nil || want.Cache == nil {
		return fmt.Errorf("fleet view is missing cache totals")
	}
	if *got.Cache != *want.Cache {
		return fmt.Errorf("fleet cache totals %+v do not match per-shard sums %+v", *got.Cache, *want.Cache)
	}
	if len(fleet.Shards) != h.nShards {
		return fmt.Errorf("fleet view has %d shard blocks, want %d", len(fleet.Shards), h.nShards)
	}
	for _, ss := range fleet.Shards {
		if !ss.OK || ss.Stats == nil {
			return fmt.Errorf("shard block unhealthy in fleet view: %+v", ss)
		}
	}
	fmt.Printf("statsz aggregation: fleet totals (%d jobs, %d cache hits, %d entries) equal the per-shard sums\n",
		got.Jobs, got.Cache.Hits, got.Cache.Entries)
	return nil
}
