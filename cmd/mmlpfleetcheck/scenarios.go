package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"slices"
	"strconv"
	"time"

	"repro/internal/batch"
	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/shard"
)

// keyFor computes the canonical key the fleet routes and caches one
// request under.
func keyFor(req *mmlp.SolveRequest) (canon.Key, error) {
	job, err := batch.JobFromRequest(req)
	if err != nil {
		return canon.Key{}, err
	}
	return engine.SolveKey(job.In, job.Opts), nil
}

// fastSet builds n distinct quick problems for cache-warm phases.
func fastSet(seedBase int64, n int) []mmlp.SolveRequest {
	reqs := make([]mmlp.SolveRequest, n)
	for i := range reqs {
		in := gen.Random(gen.RandomConfig{
			Agents: 8 + i%9, MaxDegI: 3, MaxDegK: 3,
			ExtraCons: 2 + i%3, ExtraObjs: 1 + i%2,
		}, seedBase+int64(i))
		reqs[i] = mmlp.SolveRequest{Instance: in, R: 2 + i%2}
	}
	return reqs
}

// slowSet builds n compute-heavy problems (~hundreds of ms each), so a
// batch carrying them stays in flight long enough for mid-stream fault
// injection — a kill or a ring proposal — to land while lines are still
// streaming.
func slowSet(seedBase int64, n int) []mmlp.SolveRequest {
	reqs := make([]mmlp.SolveRequest, n)
	for i := range reqs {
		in := gen.Random(gen.RandomConfig{
			Agents: 300 + 10*i, MaxDegI: 3, MaxDegK: 3,
			ExtraCons: 8, ExtraObjs: 4,
		}, seedBase+int64(i))
		reqs[i] = mmlp.SolveRequest{Instance: in, Engine: mmlp.EngineDistCompact, R: 5, BinIters: 4000}
	}
	return reqs
}

func keysOf(reqs []mmlp.SolveRequest) ([]canon.Key, error) {
	keys := make([]canon.Key, len(reqs))
	for i := range reqs {
		k, err := keyFor(&reqs[i])
		if err != nil {
			return nil, fmt.Errorf("job %d invalid: %w", i, err)
		}
		keys[i] = k
	}
	return keys, nil
}

// kill SIGKILLs one child by name — no grace, the way a machine dies.
func (h *harness) kill(name string) error {
	for _, p := range h.procs {
		if p.name == name {
			if err := p.cmd.Process.Kill(); err != nil {
				return fmt.Errorf("kill %s: %w", name, err)
			}
			p.cmd.Wait()
			fmt.Printf("killed %s mid-run\n", name)
			return nil
		}
	}
	return fmt.Errorf("no process named %q", name)
}

// solveBothNormalized drives one request through the router and the direct
// reference, asserts bit-identity, and returns the normalized body plus
// the router's cached flag and answering shard.
func (h *harness) solveBothNormalized(i int, req *mmlp.SolveRequest) (norm []byte, cached bool, member string, err error) {
	rcode, rbody, member, err := h.postSolve(h.routerAddr, req)
	if err != nil {
		return nil, false, "", fmt.Errorf("job %d via router: %w", i, err)
	}
	dcode, dbody, _, err := h.postSolve(h.directAddr, req)
	if err != nil {
		return nil, false, "", fmt.Errorf("job %d direct: %w", i, err)
	}
	if rcode != http.StatusOK || dcode != http.StatusOK {
		return nil, false, "", fmt.Errorf("job %d: router %d (%s), direct %d (%s)", i, rcode, rbody, dcode, dbody)
	}
	rn, rcached, err := normalize(rbody)
	if err != nil {
		return nil, false, "", err
	}
	dn, _, err := normalize(dbody)
	if err != nil {
		return nil, false, "", err
	}
	if !bytes.Equal(rn, dn) {
		return nil, false, "", fmt.Errorf("job %d: router response differs from direct solve\nrouter: %s\ndirect: %s", i, rn, dn)
	}
	return rn, rcached, member, nil
}

// pollEntries waits until every listed shard's live cache entry count
// matches expected (missing addresses expect zero), failing after timeout
// with the last observed state. Write-through and pruning are
// asynchronous, so entry counts are awaited, never assumed.
func (h *harness) pollEntries(addrs []string, expected map[string]int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for {
		ok := true
		var state []string
		for _, addr := range addrs {
			raw, err := h.scrapeRaw(addr)
			if err != nil {
				return err
			}
			if raw.Cache == nil {
				return fmt.Errorf("shard %s reports no cache block", addr)
			}
			if raw.Cache.Evictions != 0 {
				return fmt.Errorf("shard %s evicted %d entries; the smoke workload must fit its cache", addr, raw.Cache.Evictions)
			}
			state = append(state, fmt.Sprintf("%s=%d(want %d)", addr, raw.Cache.Entries, expected[addr]))
			if raw.Cache.Entries != expected[addr] {
				ok = false
			}
		}
		last = fmt.Sprint(state)
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cache entry counts never converged: %s", last)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// sumPruned totals the shards' pruned counters.
func (h *harness) sumPruned(addrs []string) (int64, error) {
	var total int64
	for _, addr := range addrs {
		raw, err := h.scrapeRaw(addr)
		if err != nil {
			return 0, err
		}
		if raw.Cache != nil {
			total += raw.Cache.Pruned
		}
	}
	return total, nil
}

// fleetStats fetches the router's fleet view.
func (h *harness) fleetStats() (*mmlp.FleetStats, error) {
	resp, err := h.hc.Get("http://" + h.routerAddr + "/statsz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var fleet mmlp.FleetStats
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		return nil, fmt.Errorf("router statsz: %w", err)
	}
	return &fleet, nil
}

// ringStatus fetches the router's GET /admin/ring view.
func (h *harness) ringStatus() (*mmlp.RingStatus, error) {
	resp, err := h.hc.Get("http://" + h.routerAddr + "/admin/ring")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st mmlp.RingStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("admin/ring: %w", err)
	}
	return &st, nil
}

// runReplicatedKill is the replicated-kill scenario: with -replication 2,
// warm a key set, wait until every key sits on exactly its two ring
// replicas, then SIGKILL the busiest shard in the middle of a streaming
// batch. The batch must complete with one bit-identical line per job and
// zero failures, and afterwards every warm key must be answered from a
// surviving replica's cache — proving the write-through copies are real
// and the handover loses no work.
func (h *harness) runReplicatedKill() error {
	if h.nShards < 2 {
		return fmt.Errorf("replicated-kill needs at least 2 shards, have %d", h.nShards)
	}
	if err := os.MkdirAll(h.logDir, 0o755); err != nil {
		return err
	}
	if err := h.boot(); err != nil {
		return err
	}
	ring, err := shard.New(h.shardAddrs, h.replicas)
	if err != nil {
		return err
	}
	h.ring = ring

	// Phase A: warm the fleet and record the direct reference bytes.
	warm := fastSet(h.seed+100, 10)
	warmKeys, err := keysOf(warm)
	if err != nil {
		return err
	}
	ref := make([][]byte, len(warm))
	for i := range warm {
		n, cached, _, err := h.solveBothNormalized(i, &warm[i])
		if err != nil {
			return fmt.Errorf("warm pass: %w", err)
		}
		if cached {
			return fmt.Errorf("warm job %d already cached on first contact", i)
		}
		ref[i] = n
	}

	// Every key must land on exactly its two ring replicas before the kill:
	// that is the write-through contract the survival below depends on.
	expect := map[string]int{}
	for _, k := range warmKeys {
		for _, m := range ring.Successors(k, h.replication) {
			expect[m]++
		}
	}
	if err := h.pollEntries(h.shardAddrs, expect, 30*time.Second); err != nil {
		return fmt.Errorf("write-through: %w", err)
	}
	fmt.Printf("replication: %d keys each cached on exactly %d replicas\n", len(warmKeys), h.replication)

	// Phase B: a batch of slow fresh jobs plus respelled warm duplicates;
	// the shard owning the most slow jobs dies after the second line.
	slow := slowSet(h.seed+200, 6)
	slowKeys, err := keysOf(slow)
	if err != nil {
		return err
	}
	ownerCount := make([]int, h.nShards)
	for _, k := range slowKeys {
		ownerCount[slices.Index(h.shardAddrs, ring.Owner(k))]++
	}
	victim := 0
	for i, c := range ownerCount {
		if c > ownerCount[victim] {
			victim = i
		}
	}
	victimAddr := h.shardAddrs[victim]

	all := slices.Clone(slow)
	for i := range warm {
		dup := warm[i]
		dup.Instance = gen.Permuted(warm[i].Instance)
		all = append(all, dup)
	}
	body, err := json.Marshal(mmlp.BatchRequest{Jobs: all})
	if err != nil {
		return err
	}
	routerItems, err := h.streamBatch(h.routerAddr, body, 2, func() error {
		return h.kill(fmt.Sprintf("shard%d", victim))
	})
	if err != nil {
		return fmt.Errorf("batch with mid-stream kill: %w", err)
	}
	directItems, err := h.streamBatch(h.directAddr, body, 0, nil)
	if err != nil {
		return fmt.Errorf("direct reference batch: %w", err)
	}
	if len(routerItems) != len(all) || len(directItems) != len(all) {
		return fmt.Errorf("batch line counts: router %d, direct %d, want %d", len(routerItems), len(directItems), len(all))
	}
	for i := 0; i < len(all); i++ {
		if !bytes.Equal(routerItems[i], directItems[i]) {
			return fmt.Errorf("batch index %d: router line differs from direct after the kill\nrouter: %s\ndirect: %s", i, routerItems[i], directItems[i])
		}
	}
	fmt.Printf("mid-batch kill of shard%d (%s): all %d lines bit-identical, zero failed jobs\n", victim, victimAddr, len(all))

	// Phase C: every warm key is still served — from cache — by a survivor.
	for i := range warm {
		dup := warm[i]
		dup.Instance = gen.Permuted(warm[i].Instance)
		code, rbody, member, err := h.postSolve(h.routerAddr, &dup)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("post-kill solve %d: status %d, err %v (%s)", i, code, err, rbody)
		}
		n, cached, err := normalize(rbody)
		if err != nil {
			return err
		}
		if member == victimAddr {
			return fmt.Errorf("post-kill solve %d reportedly served by the dead shard %s", i, victimAddr)
		}
		if !cached {
			return fmt.Errorf("post-kill solve %d recomputed: key %x not warm on any surviving replica", i, warmKeys[i][:4])
		}
		if !bytes.Equal(n, ref[i]) {
			return fmt.Errorf("post-kill solve %d differs from the pre-kill reference\ngot:  %s\nwant: %s", i, n, ref[i])
		}
	}
	fleet, err := h.fleetStats()
	if err != nil {
		return err
	}
	if fleet.Router.ShardDown == 0 {
		return fmt.Errorf("router never marked the killed shard down: %+v", fleet.Router)
	}
	if fleet.Router.Replicated == 0 {
		return fmt.Errorf("router reports zero write-through warms: %+v", fleet.Router)
	}
	fmt.Printf("survival: %d warm keys all answered cached by surviving replicas (shard_down=%d, replicated=%d)\n",
		len(warm), fleet.Router.ShardDown, fleet.Router.Replicated)
	return nil
}

// postCanon sends one canon wire payload and returns status, body and the
// answering shard.
func (h *harness) postCanon(addr string, payload []byte) (int, []byte, string, error) {
	resp, err := h.hc.Post("http://"+addr+"/v1/solve", mmlp.ContentTypeCanon, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, resp.Header.Get("X-Mmlp-Shard"), err
}

// canonBatchResults posts a canon batch frame with the binary result
// encoding negotiated and returns the decoded records by index.
func (h *harness) canonBatchResults(addr string, frame []byte) (map[int]mmlp.BatchItem, error) {
	req, err := http.NewRequest(http.MethodPost, "http://"+addr+"/v1/batch", bytes.NewReader(frame))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", mmlp.ContentTypeCanonBatch)
	req.Header.Set("Accept", mmlp.ContentTypeCanonResults)
	resp, err := h.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("canon batch via %s: status %d (%s)", addr, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != mmlp.ContentTypeCanonResults {
		return nil, fmt.Errorf("canon batch via %s: Content-Type %q", addr, ct)
	}
	recs, err := canon.DecodeResults(body)
	if err != nil {
		return nil, fmt.Errorf("canon batch via %s: result frame did not decode: %w", addr, err)
	}
	items := map[int]mmlp.BatchItem{}
	for _, it := range recs {
		if it.Error != "" {
			return nil, fmt.Errorf("canon batch via %s: job %d failed: %s", addr, it.Index, it.Error)
		}
		if _, dup := items[it.Index]; dup {
			return nil, fmt.Errorf("canon batch via %s: index %d emitted twice", addr, it.Index)
		}
		items[it.Index] = it
	}
	return items, nil
}

// runMixed is the mixed-encoding scenario: the same problems arrive as
// JSON from one client and as canon wire payloads from another. The canon
// spelling of a JSON-warmed key must be answered from the same shard's
// cache (one cache line per problem across encodings — the ring routes
// canon jobs by hashing the payload bytes, which the injective encoding
// makes equal to the canonical key), every response must be bit-identical
// to the direct JSON reference, and the router must report the canon
// passthroughs it routed without decoding.
func (h *harness) runMixed() error {
	if err := os.MkdirAll(h.logDir, 0o755); err != nil {
		return err
	}
	if err := h.boot(); err != nil {
		return err
	}
	ring, err := shard.New(h.shardAddrs, h.replicas)
	if err != nil {
		return err
	}
	h.ring = ring
	reqs, dups, keys, err := h.workload()
	if err != nil {
		return err
	}

	// Canon payloads encode the PERMUTED duplicates: only the canonical
	// encoding makes a respelled problem hash to the warm key.
	payloads := make([][]byte, len(reqs))
	for i := range dups {
		job, err := batch.JobFromRequest(&dups[i])
		if err != nil {
			return fmt.Errorf("dup job %d invalid: %w", i, err)
		}
		payloads[i] = engine.EncodeCanon(job.In, job.Opts)
		if canon.HashBytes(payloads[i]) != keys[i] {
			return fmt.Errorf("job %d: canon payload hash differs from the canonical key — encodings diverged", i)
		}
	}

	// Phase A: the JSON client solves every distinct problem (warms the
	// fleet) with the usual bit-identity check against the direct server.
	ref := make([][]byte, len(reqs))
	for i := range reqs {
		n, cached, member, err := h.solveBothNormalized(i, &reqs[i])
		if err != nil {
			return fmt.Errorf("json pass: %w", err)
		}
		if cached {
			return fmt.Errorf("json job %d already cached on first contact", i)
		}
		if want := ring.Owner(keys[i]); member != want {
			return fmt.Errorf("json job %d served by %s, ring owner is %s", i, member, want)
		}
		ref[i] = n
	}

	// Phase B: the canon client sends the permuted duplicates as raw wire
	// payloads. Every one must hit the cache line its JSON spelling warmed,
	// on the same shard, and answer bit-identically.
	for i, payload := range payloads {
		code, rbody, member, err := h.postCanon(h.routerAddr, payload)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("canon solve %d: status %d, err %v (%s)", i, code, err, rbody)
		}
		if want := ring.Owner(keys[i]); member != want {
			return fmt.Errorf("canon solve %d served by %s, ring owner is %s", i, member, want)
		}
		n, cached, err := normalize(rbody)
		if err != nil {
			return err
		}
		if !cached {
			return fmt.Errorf("canon solve %d recomputed: the JSON-warmed cache line was not shared across encodings", i)
		}
		if !bytes.Equal(n, ref[i]) {
			return fmt.Errorf("canon solve %d differs from the JSON reference\ncanon: %s\njson:  %s", i, n, ref[i])
		}
	}
	fmt.Printf("mixed solve: %d canon payloads answered cached and bit-identical to their JSON spellings\n", len(payloads))

	// Phase C: the whole canon set again as one batch frame with the
	// binary result encoding; the merged records must match the reference.
	frame := canon.AppendBatch(nil, payloads)
	items, err := h.canonBatchResults(h.routerAddr, frame)
	if err != nil {
		return err
	}
	if len(items) != len(payloads) {
		return fmt.Errorf("canon batch: %d records, want %d", len(items), len(payloads))
	}
	for i := range payloads {
		it, ok := items[i]
		if !ok {
			return fmt.Errorf("canon batch: index %d missing", i)
		}
		if !it.Cached {
			return fmt.Errorf("canon batch job %d recomputed despite a warm fleet", i)
		}
		n, _, err := normalize(mustJSON(it.SolveResponse))
		if err != nil {
			return err
		}
		if !bytes.Equal(n, ref[i]) {
			return fmt.Errorf("canon batch job %d differs from the JSON reference\ncanon: %s\njson:  %s", i, n, ref[i])
		}
	}
	fmt.Printf("mixed batch: %d binary result records bit-identical to the JSON reference\n", len(items))

	// The canon traffic added no cache entries: one line per problem across
	// both encodings, each on the shard the ring assigns.
	if err := h.checkPartitioning(keys); err != nil {
		return fmt.Errorf("cross-encoding residency: %w", err)
	}

	// The router routed every canon job by hashing bytes, never decoding:
	// one count per solve payload plus one per batch payload.
	fleet, err := h.fleetStats()
	if err != nil {
		return err
	}
	if want := int64(2 * len(payloads)); fleet.Router.CanonPassthrough != want {
		return fmt.Errorf("router canon_passthrough = %d, want %d", fleet.Router.CanonPassthrough, want)
	}
	fmt.Printf("router: canon_passthrough=%d — every canon job routed without decoding\n", fleet.Router.CanonPassthrough)
	return h.checkConservation(h.shardAddrs)
}

// runCutover is the add-a-shard scenario: boot a spare mmlpserve off the
// ring, then propose the four-member ring through POST /admin/ring while a
// batch is streaming. The pinned batch drains bit-identically on the old
// assignment; after the drain the shards prune exactly the keys whose
// owner moved (all to the new member — the consistent-hashing guarantee),
// a re-drive recomputes exactly those and hits cache on the rest, and the
// fleet ends as a clean one-copy partition on the new ring.
func (h *harness) runCutover() error {
	if err := os.MkdirAll(h.logDir, 0o755); err != nil {
		return err
	}
	if err := h.boot(); err != nil {
		return err
	}
	oldRing, err := shard.New(h.shardAddrs, h.replicas)
	if err != nil {
		return err
	}
	h.ring = oldRing

	ports, err := freePorts(1)
	if err != nil {
		return err
	}
	spareAddr := fmt.Sprintf("127.0.0.1:%d", ports[0])
	if err := h.start("spare", "mmlpserve",
		"-addr", spareAddr, "-workers", fmt.Sprint(h.workers),
		"-cache-bytes", fmt.Sprint(16<<20)); err != nil {
		return err
	}
	if err := h.waitHealthy(spareAddr, 15*time.Second); err != nil {
		return err
	}
	newMembers := append(slices.Clone(h.shardAddrs), spareAddr)
	newRing, err := shard.New(newMembers, h.replicas)
	if err != nil {
		return err
	}

	// Phase 1: warm an initial key set on the old ring. Collect candidates
	// until at least two keys will move to the spare, so the remap below is
	// provably partial whatever the hash placement.
	var warm []mmlp.SolveRequest
	var warmKeys []canon.Key
	moved := 0
	for seed := h.seed + 300; len(warm) < 10 || moved < 2; seed++ {
		if seed > h.seed+10_000 {
			return fmt.Errorf("could not assemble a warm set with ≥2 moving keys")
		}
		req := fastSet(seed, 1)[0]
		k, err := keyFor(&req)
		if err != nil {
			return err
		}
		if newRing.Owner(k) != oldRing.Owner(k) {
			moved++
		}
		warm = append(warm, req)
		warmKeys = append(warmKeys, k)
	}
	ref := make([][]byte, len(warm))
	for i := range warm {
		n, _, _, err := h.solveBothNormalized(i, &warm[i])
		if err != nil {
			return fmt.Errorf("warm pass: %w", err)
		}
		ref[i] = n
	}

	// Phase 2: propose the new ring while a slow batch streams. The batch
	// was admitted before the flip, so it is pinned to — and must drain
	// on — the old assignment.
	slow := slowSet(h.seed+400, 6)
	slowKeys, err := keysOf(slow)
	if err != nil {
		return err
	}
	body, err := json.Marshal(mmlp.BatchRequest{Jobs: slow})
	if err != nil {
		return err
	}
	var accepted mmlp.RingStatus
	routerItems, err := h.streamBatch(h.routerAddr, body, 2, func() error {
		prop, err := json.Marshal(mmlp.RingProposal{Members: newMembers})
		if err != nil {
			return err
		}
		resp, err := h.hc.Post("http://"+h.routerAddr+"/admin/ring", "application/json", bytes.NewReader(prop))
		if err != nil {
			return fmt.Errorf("propose ring: %w", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("propose ring: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
			return err
		}
		// A second proposal while the first still drains must be refused
		// with 409 and tell the operator when to retry: the pinned batch is
		// still streaming, so the drain is provably in progress right now.
		resp2, err := h.hc.Post("http://"+h.routerAddr+"/admin/ring", "application/json", bytes.NewReader(prop))
		if err != nil {
			return fmt.Errorf("second propose: %w", err)
		}
		defer resp2.Body.Close()
		io.Copy(io.Discard, resp2.Body)
		if resp2.StatusCode != http.StatusConflict {
			return fmt.Errorf("second proposal during the drain: status %d, want 409", resp2.StatusCode)
		}
		if secs, aerr := strconv.Atoi(resp2.Header.Get("Retry-After")); aerr != nil || secs < 1 {
			return fmt.Errorf("409 during the drain carried Retry-After %q, want a positive second count", resp2.Header.Get("Retry-After"))
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("batch with mid-stream cutover: %w", err)
	}
	directItems, err := h.streamBatch(h.directAddr, body, 0, nil)
	if err != nil {
		return fmt.Errorf("direct reference batch: %w", err)
	}
	if len(routerItems) != len(slow) || len(directItems) != len(slow) {
		return fmt.Errorf("batch line counts: router %d, direct %d, want %d", len(routerItems), len(directItems), len(slow))
	}
	slowRef := make([][]byte, len(slow))
	for i := range slow {
		if !bytes.Equal(routerItems[i], directItems[i]) {
			return fmt.Errorf("batch index %d: router line differs from direct across the cutover\nrouter: %s\ndirect: %s", i, routerItems[i], directItems[i])
		}
		slowRef[i] = routerItems[i]
	}
	if accepted.Version != 2 {
		return fmt.Errorf("proposal accepted as version %d, want 2 (%+v)", accepted.Version, accepted)
	}
	if accepted.Draining == nil || accepted.Draining.FromVersion != 1 || accepted.Draining.Inflight < 1 {
		return fmt.Errorf("proposal during a streaming batch reported no drain: %+v", accepted.Draining)
	}
	fmt.Printf("cutover proposed mid-batch: version 1→2 with %d request(s) draining; batch stayed bit-identical\n", accepted.Draining.Inflight)

	// Phase 3: the drain completes once the pinned batch finishes.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := h.ringStatus()
		if err != nil {
			return err
		}
		if st.Version == 2 && st.Draining == nil {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cutover never finished draining: %+v", st)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Phase 4: shards prune exactly the keys whose owner moved. Adding a
	// member only ever reassigns keys TO it, so the expected count is
	// computable from the two rings alone.
	allKeys := append(slices.Clone(warmKeys), slowKeys...)
	movedTotal := 0
	for _, k := range allKeys {
		if newRing.Owner(k) != oldRing.Owner(k) {
			if newRing.Owner(k) != spareAddr {
				return fmt.Errorf("key %x moved between old members — consistent hashing broke", k[:4])
			}
			movedTotal++
		}
	}
	if movedTotal < 1 || movedTotal >= len(allKeys) {
		return fmt.Errorf("remap moved %d of %d keys; want a strict partial remap", movedTotal, len(allKeys))
	}
	allAddrs := append(slices.Clone(h.shardAddrs), spareAddr)
	deadline = time.Now().Add(30 * time.Second)
	for {
		pruned, err := h.sumPruned(allAddrs)
		if err != nil {
			return err
		}
		if pruned == int64(movedTotal) {
			break
		}
		if pruned > int64(movedTotal) {
			return fmt.Errorf("shards pruned %d entries, more than the %d moved keys", pruned, movedTotal)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shards pruned %d entries, want the %d moved keys", pruned, movedTotal)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("handover: %d of %d keys moved to the new member and were pruned from their old owners\n", movedTotal, len(allKeys))

	// Phase 5: re-drive every key as a permuted duplicate on the new ring.
	// Exactly the moved keys recompute (their new owner is cold); the rest
	// hit the caches the prune left intact.
	allReqs := append(slices.Clone(warm), slow...)
	allRef := append(slices.Clone(ref), slowRef...)
	recomputed := 0
	for i := range allReqs {
		dup := allReqs[i]
		dup.Instance = gen.Permuted(allReqs[i].Instance)
		code, rbody, member, err := h.postSolve(h.routerAddr, &dup)
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("re-drive %d: status %d, err %v (%s)", i, code, err, rbody)
		}
		n, cached, err := normalize(rbody)
		if err != nil {
			return err
		}
		if want := newRing.Owner(allKeys[i]); member != want {
			return fmt.Errorf("re-drive %d served by %s, new ring owner is %s", i, member, want)
		}
		keyMoved := newRing.Owner(allKeys[i]) != oldRing.Owner(allKeys[i])
		if cached == keyMoved {
			return fmt.Errorf("re-drive %d: cached=%v but key moved=%v — stale copy or lost cache", i, cached, keyMoved)
		}
		if !cached {
			recomputed++
		}
		if !bytes.Equal(n, allRef[i]) {
			return fmt.Errorf("re-drive %d differs from the pre-cutover reference\ngot:  %s\nwant: %s", i, n, allRef[i])
		}
	}
	if recomputed != movedTotal {
		return fmt.Errorf("re-drive recomputed %d keys, want exactly the %d moved ones", recomputed, movedTotal)
	}

	// Phase 6: the fleet is a clean one-copy partition on the new ring — no
	// duplicate entries survived the handover.
	expected := map[string]int{}
	for _, k := range allKeys {
		expected[newRing.Owner(k)]++
	}
	if err := h.pollEntries(allAddrs, expected, 10*time.Second); err != nil {
		return fmt.Errorf("post-cutover partition: %w", err)
	}
	fmt.Printf("post-cutover partition: %d distinct keys occupy exactly one shard each on the 4-member ring\n", len(allKeys))
	// Conservation across the cutover: the spare's jobs count toward the
	// shard sum once it joins the ring.
	return h.checkConservation(allAddrs)
}
