package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/mmlp"
)

// waitFor polls cond until it holds or the deadline lapses; background
// write-through and prune notifications are asynchronous by design, so
// their observable effects are awaited, never assumed.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ownedBatch builds a batch of n jobs all owned by addr on the router's
// current ring, so a failure of that one shard hits every job.
func ownedBatch(t *testing.T, rt *router, addr string, n int) ([]mmlp.SolveRequest, string) {
	t.Helper()
	var reqs []mmlp.SolveRequest
	for seed := int64(1); len(reqs) < n; seed++ {
		if seed > 10_000 {
			t.Fatal("could not collect enough jobs owned by one shard")
		}
		in := gen.Random(gen.RandomConfig{Agents: 5 + int(seed)%7, MaxDegI: 3, MaxDegK: 2, ExtraCons: 2, ExtraObjs: 1}, seed)
		req := mmlp.SolveRequest{Instance: in, R: 2 + int(seed)%2}
		key, err := keyOf(&req)
		if err != nil {
			t.Fatal(err)
		}
		if rt.client.Ring().Owner(key) == addr {
			reqs = append(reqs, req)
		}
	}
	raw, err := json.Marshal(mmlp.BatchRequest{Jobs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	return reqs, string(raw)
}

// TestBatchTruncatedStreamReforwards kills a shard's NDJSON stream
// mid-batch with replication enabled: the lines already emitted stand, and
// every unanswered job is re-forwarded to a replica — exactly one line per
// job, no error lines, no double answers.
func TestBatchTruncatedStreamReforwards(t *testing.T) {
	shards, rt := testFleetR(t, 3, 2, func(i int, f *fakeShard) {
		if i == 0 {
			f.dieAfter = 2
		}
	})
	const n = 12
	_, body := ownedBatch(t, rt, shards[0].addr, n)

	w := post(rt, "/v1/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	items := batchLines(t, w.Body.Bytes()) // fails on duplicate indices
	if len(items) != n {
		t.Fatalf("got %d lines, want %d", len(items), n)
	}
	for i := 0; i < n; i++ {
		item, ok := items[i]
		if !ok {
			t.Fatalf("index %d missing", i)
		}
		if item.Error != "" {
			t.Fatalf("job %d failed despite a live replica: %s", i, item.Error)
		}
	}
	st := rt.client.Stats()
	if st.Retried == 0 {
		t.Fatal("truncated stream did not trigger a re-forward")
	}
	// The dying shard answered with a valid (partial) HTTP response: that
	// proves it alive at the transport level, so it must NOT be marked down.
	if st.ShardDown != 0 {
		t.Fatalf("mid-stream truncation marked the shard down: %+v", st)
	}
	// Write-through still ran for the answered jobs.
	rt.replWG.Wait()
	if rt.replicated.Load() == 0 {
		t.Fatal("no write-through after the batch")
	}
}

// TestSolveWriteThroughWarmsReplica: with replication 2, a routed solve is
// re-POSTed in the background to the key's second replica — and only
// there — so the replica's cache holds the key before the primary dies.
func TestSolveWriteThroughWarmsReplica(t *testing.T) {
	shards, rt := testFleetR(t, 3, 2, nil)
	byAddr := map[string]*fakeShard{}
	for _, f := range shards {
		byAddr[f.addr] = f
	}
	in := gen.Random(gen.RandomConfig{Agents: 8, MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1}, 42)
	req := mmlp.SolveRequest{Instance: in, R: 3}
	key, err := keyOf(&req)
	if err != nil {
		t.Fatal(err)
	}
	set := rt.client.Ring().Successors(key, 2)
	owner, backup := set[0], set[1]

	w := post(rt, "/v1/solve", solveBody(t, in, `,"r":3`))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get("X-Mmlp-Shard"); got != owner {
		t.Fatalf("answered by %q, want owner %q", got, owner)
	}
	rt.replWG.Wait()
	if got := rt.replicated.Load(); got != 1 {
		t.Fatalf("replicated = %d, want 1", got)
	}
	solvesOf := func(addr string) []string {
		f := byAddr[addr]
		f.mu.Lock()
		defer f.mu.Unlock()
		return slices.Clone(f.solves)
	}
	ownerSolves, backupSolves := solvesOf(owner), solvesOf(backup)
	if len(ownerSolves) != 1 || len(backupSolves) != 1 {
		t.Fatalf("owner saw %d solves, backup %d, want 1 and 1", len(ownerSolves), len(backupSolves))
	}
	if ownerSolves[0] != backupSolves[0] {
		t.Fatalf("warm body differs from routed body:\n%s\nvs\n%s", ownerSolves[0], backupSolves[0])
	}
	for _, f := range shards {
		if f.addr != owner && f.addr != backup && len(solvesOf(f.addr)) != 0 {
			t.Fatalf("non-replica %s received a warm solve", f.name)
		}
	}
}

// adminGet decodes GET /admin/ring.
func adminGet(t *testing.T, rt *router) mmlp.RingStatus {
	t.Helper()
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/admin/ring", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("GET /admin/ring: %d %s", w.Code, w.Body)
	}
	var st mmlp.RingStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAdminRingCutover walks the full handover: propose a smaller member
// set while a request is pinned to the old ring, watch the drain through
// GET /admin/ring, reject a concurrent proposal with 409, and — once the
// pin releases — see every shard of either generation receive its prune
// notification, the leaver's naming a member set without it.
func TestAdminRingCutover(t *testing.T) {
	shards, rt := testFleetR(t, 3, 2, nil)

	st := adminGet(t, rt)
	if st.Version != 1 || len(st.Members) != 3 || st.Replication != 2 || st.Draining != nil {
		t.Fatalf("initial ring status = %+v", st)
	}

	// Invalid proposals are 400 before any topology change.
	if w := post(rt, "/admin/ring", `{"members":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty proposal: status %d", w.Code)
	}
	if w := post(rt, "/admin/ring", `{"members": nope}`); w.Code != http.StatusBadRequest {
		t.Fatalf("malformed proposal: status %d", w.Code)
	}

	// Pin the old generation, as an in-flight batch would.
	pin := rt.client.Acquire()

	keep := []string{shards[0].addr, shards[1].addr}
	prop, err := json.Marshal(mmlp.RingProposal{Members: keep})
	if err != nil {
		t.Fatal(err)
	}
	w := post(rt, "/admin/ring", string(prop))
	if w.Code != http.StatusOK {
		t.Fatalf("proposal: status %d: %s", w.Code, w.Body)
	}
	var accepted mmlp.RingStatus
	if err := json.Unmarshal(w.Body.Bytes(), &accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Version != 2 || accepted.Draining == nil ||
		accepted.Draining.FromVersion != 1 || accepted.Draining.Inflight != 1 {
		t.Fatalf("accepted status = %+v (draining %+v)", accepted, accepted.Draining)
	}

	// One cutover at a time.
	if w := post(rt, "/admin/ring", string(prop)); w.Code != http.StatusConflict {
		t.Fatalf("second proposal during drain: status %d, want 409", w.Code)
	}

	rt.client.Release(pin)
	waitFor(t, "drain completion", func() bool { return adminGet(t, rt).Draining == nil })

	// Every member of either generation hears about the new assignment.
	sortedKeep := slices.Clone(keep)
	slices.Sort(sortedKeep)
	for i, f := range shards {
		waitFor(t, fmt.Sprintf("prune notification to shard %d", i), func() bool {
			f.mu.Lock()
			defer f.mu.Unlock()
			return len(f.ringUpdates) > 0
		})
		f.mu.Lock()
		upd := f.ringUpdates[len(f.ringUpdates)-1]
		f.mu.Unlock()
		if upd.Self != f.addr {
			t.Fatalf("shard %d told Self=%q, is %q", i, upd.Self, f.addr)
		}
		if !slices.Equal(upd.Members, sortedKeep) {
			t.Fatalf("shard %d told members %v, want %v", i, upd.Members, sortedKeep)
		}
		if upd.Replication != 2 {
			t.Fatalf("shard %d told replication %d, want 2", i, upd.Replication)
		}
		inSet := slices.Contains(keep, f.addr)
		if inSet != (i != 2) {
			t.Fatalf("shard %d membership: in new set = %v", i, inSet)
		}
	}
	rt.replWG.Wait()

	// The fleet view reflects the new generation.
	wst := httptest.NewRecorder()
	rt.ServeHTTP(wst, httptest.NewRequest(http.MethodGet, "/statsz", nil))
	var fleet mmlp.FleetStats
	if err := json.Unmarshal(wst.Body.Bytes(), &fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Router.RingVersion != 2 || fleet.Router.Draining || fleet.Router.Replication != 2 {
		t.Fatalf("router stats after cutover = %+v", fleet.Router)
	}
	if fleet.Router.Shards != 2 {
		t.Fatalf("fleet view scraped %d shards, want the new ring's 2", fleet.Router.Shards)
	}
}
