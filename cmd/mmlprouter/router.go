package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/mmlp"
	"repro/internal/shard"
)

// statszTimeout bounds the per-shard /statsz scrape of the fleet view.
const statszTimeout = 2 * time.Second

// router terminates the serving API and forwards every job to the shard
// that owns its canonical key. It holds no solver state of its own: the
// shards' local result caches, partitioned by the ring, are the fleet's
// only cache.
type router struct {
	client  *shard.Client
	maxBody int64
	mux     *http.ServeMux
}

// newRouter wires the endpoints over a shard client.
func newRouter(client *shard.Client, maxBody int64) *router {
	rt := &router{client: client, maxBody: maxBody, mux: http.NewServeMux()}
	rt.mux.HandleFunc("POST /v1/solve", rt.handleSolve)
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /statsz", rt.handleStats)
	return rt
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// writeError matches mmlpserve's uniform error body, so clients see one
// wire contract whether they talk to a shard or the router.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(mmlp.ErrorResponse{Error: err.Error()})
}

// readBody slurps one bounded request body, mapping oversized bodies to
// 413 with mmlpserve's message.
func (rt *router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("read body: %w", err)
	}
	return body, 0, nil
}

// keyOf computes the canonical routing key of one validated request: the
// same canon.Key the owning shard's result cache will index the result
// under, so syntactic respellings of one problem (rows or terms permuted)
// all land on the same shard.
func keyOf(req *mmlp.SolveRequest) (canon.Key, error) {
	job, err := batch.JobFromRequest(req)
	if err != nil {
		return canon.Key{}, err
	}
	return engine.SolveKey(job.In, job.Opts), nil
}

// handleSolve routes one solve to its owning shard and streams the shard's
// response back verbatim: success bodies are byte-identical to what a
// direct client of that shard would have received.
func (rt *router) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, code, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, code, err)
		return
	}
	var req mmlp.SolveRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed JSON: %w", err))
		return
	}
	key, err := keyOf(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	owner := rt.client.Owner(key)
	resp, member, err := rt.client.Do(r.Context(), key, "/v1/solve", "application/json", body)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("no shard reachable (owner %s): %w", owner, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.Header().Set("X-Mmlp-Shard", member)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// group is the slice of one batch owned by a single shard.
type group struct {
	owner string
	key   canon.Key // a representative key, seeds the failover replica walk
	jobs  []mmlp.SolveRequest
	orig  []int // original indices, parallel to jobs
}

// handleBatch validates the batch, fans the jobs out to their owning
// shards as per-shard sub-batches, and re-merges the shards' NDJSON
// streams in arrival order, rewriting each line's index back to the job's
// position in the original request. The per-job contract matches
// mmlpserve's: exactly one line per job, whatever happens to the fleet.
func (rt *router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, code, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, code, err)
		return
	}
	var req mmlp.BatchRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed JSON: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch has no jobs"))
		return
	}
	// Validate everything before emitting the first byte, matching the
	// all-or-nothing 400 a single shard gives a malformed batch.
	keys := make([]canon.Key, len(req.Jobs))
	for i := range req.Jobs {
		key, err := keyOf(&req.Jobs[i])
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("job %d: %w", i, err))
			return
		}
		keys[i] = key
	}
	groups := map[string]*group{}
	for i := range req.Jobs {
		owner := rt.client.Owner(keys[i])
		g := groups[owner]
		if g == nil {
			g = &group{owner: owner, key: keys[i]}
			groups[owner] = g
		}
		g.jobs = append(g.jobs, req.Jobs[i])
		g.orig = append(g.orig, i)
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var emu sync.Mutex
	enc := json.NewEncoder(w)
	emit := func(item mmlp.BatchItem) {
		emu.Lock()
		defer emu.Unlock()
		enc.Encode(item)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			rt.forwardGroup(r.Context(), g, emit)
		}(g)
	}
	wg.Wait()
}

// forwardGroup sends one shard's slice of the batch and streams its lines
// back through emit. A transport failure advances to the next replica on
// the ring with the jobs not yet answered; jobs that no member could
// answer get error lines, honouring the one-line-per-job contract.
func (rt *router) forwardGroup(ctx context.Context, g *group, emit func(mmlp.BatchItem)) {
	jobs, orig := g.jobs, g.orig
	var body []byte // re-marshaled only when the remaining job set shrinks
	err := rt.client.DoFunc(ctx, g.key, func(member string) (bool, error) {
		if body == nil {
			var merr error
			if body, merr = json.Marshal(mmlp.BatchRequest{Jobs: jobs}); merr != nil {
				return true, merr // cannot improve on another replica
			}
		}
		resp, ferr := rt.client.Forward(ctx, member, "/v1/batch", "application/json", body)
		if ferr != nil {
			return false, ferr // nothing processed; try the next replica
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			// The shard processed and rejected the sub-batch (e.g. shutting
			// down); its verdict stands for every job in it.
			var eresp mmlp.ErrorResponse
			json.NewDecoder(resp.Body).Decode(&eresp)
			if eresp.Error == "" {
				eresp.Error = fmt.Sprintf("shard %s: status %d", member, resp.StatusCode)
			}
			for _, oi := range orig {
				emit(mmlp.BatchItem{Index: oi, Error: eresp.Error})
			}
			return true, nil
		}
		emitted := make([]bool, len(jobs))
		nEmitted := 0
		rd := bufio.NewReader(resp.Body)
		for {
			line, rerr := rd.ReadBytes('\n')
			if len(line) > 1 {
				var item mmlp.BatchItem
				if jerr := json.Unmarshal(line, &item); jerr == nil &&
					item.Index >= 0 && item.Index < len(jobs) && !emitted[item.Index] {
					sub := item.Index
					item.Index = orig[sub]
					emitted[sub] = true
					nEmitted++
					emit(item)
				}
			}
			if rerr != nil {
				break
			}
		}
		if nEmitted == len(jobs) {
			return true, nil
		}
		// The stream broke mid-way: keep the answered jobs, re-forward the
		// rest. Solves are pure functions of their requests, so re-running
		// an answered-but-lost job on another shard is safe.
		var njobs []mmlp.SolveRequest
		var norig []int
		for i := range jobs {
			if !emitted[i] {
				njobs = append(njobs, jobs[i])
				norig = append(norig, i)
			}
		}
		// Remap norig through the current orig before replacing it.
		for i, oi := range norig {
			norig[i] = orig[oi]
		}
		jobs, orig, body = njobs, norig, nil
		return false, fmt.Errorf("shard %s: response stream truncated after %d lines", member, nEmitted)
	})
	if err != nil {
		for _, oi := range orig {
			emit(mmlp.BatchItem{Index: oi, Error: fmt.Sprintf("no shard reachable: %v", err)})
		}
	}
}

// handleHealth reports router liveness and the fleet's health split.
func (rt *router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"shards\":%d,\"healthy\":%d}\n",
		len(rt.client.Ring().Members()), len(rt.client.Healthy()))
}

// handleStats scrapes every shard's /statsz?raw=1 in parallel and serves
// the fleet view: router counters, the summed fleet aggregate, and the
// per-shard blocks it was computed from. Because the ring stores each key
// on exactly one shard, the fleet's cache "entries" total counts distinct
// canonical keys cached across the whole fleet.
func (rt *router) handleStats(w http.ResponseWriter, r *http.Request) {
	members := rt.client.Ring().Members()
	out := mmlp.FleetStats{Shards: make([]mmlp.ShardStats, len(members))}

	ctx, cancel := context.WithTimeout(r.Context(), statszTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			ss := mmlp.ShardStats{Addr: m}
			resp, err := rt.client.Get(ctx, m, "/statsz?raw=1")
			if err == nil {
				defer resp.Body.Close()
				var raw mmlp.StatsRaw
				if resp.StatusCode == http.StatusOK {
					err = json.NewDecoder(resp.Body).Decode(&raw)
				} else {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
				if err == nil {
					ss.OK, ss.Stats = true, &raw
				}
			}
			if err != nil {
				ss.Error = err.Error()
			}
			out.Shards[i] = ss
		}(i, m)
	}
	wg.Wait()

	for _, ss := range out.Shards {
		if ss.OK {
			out.Fleet.Add(ss.Stats)
		}
	}
	st := rt.client.Stats()
	out.Router = mmlp.RouterStats{
		Shards:    len(members),
		Healthy:   len(rt.client.Healthy()),
		Routed:    st.Routed,
		Forwarded: st.Forwarded,
		Retried:   st.Retried,
		ShardDown: st.ShardDown,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
