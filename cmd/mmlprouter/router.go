package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/httperr"
	"repro/internal/mmlp"
	"repro/internal/obs"
	"repro/internal/shard"
)

// statszTimeout bounds the per-shard /statsz scrape of the fleet view.
const statszTimeout = 2 * time.Second

// replicateTimeout bounds one background write-through or cutover
// notification. Generous because a warm-up POST computes the solve on the
// backup replica; it exists so a hung shard cannot pin the goroutine
// forever.
const replicateTimeout = 2 * time.Minute

// router terminates the serving API and forwards every job to the shard
// that owns its canonical key. It holds no solver state of its own: the
// shards' local result caches, partitioned by the ring, are the fleet's
// only cache.
type router struct {
	client  *shard.Client
	maxBody int64
	mux     *http.ServeMux
	// handler is mux wrapped in the error-envelope layer, so the mux's own
	// 404/405 fallbacks speak the unified JSON envelope too.
	handler http.Handler

	// replicated counts write-through warms delivered to backup replicas;
	// replWG tracks the background goroutines doing them (and cutover
	// notifications), so tests and shutdown can wait for quiescence.
	replicated atomic.Int64
	replWG     sync.WaitGroup

	// canonPassthrough counts canon payloads routed by hashing the raw
	// bytes — the router never decodes them. One increment per payload, so
	// a canon batch of n jobs adds n.
	canonPassthrough atomic.Int64

	// defaultDeadline, when positive, is the deadline minted for requests
	// that arrive without an X-Mmlp-Deadline-Ms header, so every shard hop
	// carries a bound even when the client never set one. Zero preserves
	// the classic unbounded behaviour.
	defaultDeadline time.Duration
}

// newRouter wires the endpoints over a shard client.
func newRouter(client *shard.Client, maxBody int64) *router {
	rt := &router{client: client, maxBody: maxBody, mux: http.NewServeMux()}
	rt.mux.HandleFunc("POST /v1/solve", rt.handleSolve)
	rt.mux.HandleFunc("POST /v1/delta", rt.handleDelta)
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("GET /v1/capabilities", rt.handleCapabilities)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /statsz", rt.handleStats)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /admin/ring", rt.handleRingGet)
	rt.mux.HandleFunc("POST /admin/ring", rt.handleRingPost)
	rt.handler = httperr.Envelope(rt.mux)
	return rt
}

func (rt *router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.handler.ServeHTTP(w, r) }

// setDefaultDeadline arms -default-deadline. Call before serving.
func (rt *router) setDefaultDeadline(d time.Duration) { rt.defaultDeadline = d }

// deadlineCtx derives the request's working context. An X-Mmlp-Deadline-Ms
// header (the client's remaining budget in whole milliseconds) becomes a
// context deadline that shard.Client.Forward re-mints — shrunk by the time
// already spent here — on every shard hop; absent the header, the
// configured -default-deadline applies. cancel is nil when neither bounds
// the request; the error reports a malformed header (a client bug worth a
// 400, not silent unbounded work).
func (rt *router) deadlineCtx(r *http.Request) (ctx context.Context, cancel context.CancelFunc, err error) {
	ctx = r.Context()
	if h := r.Header.Get(obs.DeadlineHeader); h != "" {
		ms, perr := strconv.ParseInt(h, 10, 64)
		if perr != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("bad %s header %q: want a positive integer millisecond count", obs.DeadlineHeader, h)
		}
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		return ctx, cancel, nil
	}
	if rt.defaultDeadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, rt.defaultDeadline)
		return ctx, cancel, nil
	}
	return ctx, nil, nil
}

// writeError matches mmlpserve's unified error envelope, so clients see
// one wire contract whether they talk to a shard or the router; code is
// one of the mmlp.ErrCode* constants.
func writeError(w http.ResponseWriter, status int, code string, err error) {
	httperr.Write(w, status, code, err)
}

// readBody slurps one bounded request body, mapping oversized bodies to
// 413 with mmlpserve's message.
func (rt *router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, int, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.maxBody))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, http.StatusRequestEntityTooLarge, fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, http.StatusBadRequest, fmt.Errorf("read body: %w", err)
	}
	return body, 0, nil
}

// keyOf computes the canonical routing key of one validated request: the
// same canon.Key the owning shard's result cache will index the result
// under, so syntactic respellings of one problem (rows or terms permuted)
// all land on the same shard.
func keyOf(req *mmlp.SolveRequest) (canon.Key, error) {
	job, err := batch.JobFromRequest(req)
	if err != nil {
		return canon.Key{}, err
	}
	return engine.SolveKey(job.In, job.Opts), nil
}

// traceFor adopts the client's X-Mmlp-Trace request ID or mints one, echoes
// it on the response, and stashes it in a child of ctx (normally the
// deadline-bearing context from deadlineCtx) so Forward attaches it to
// every hop to the shards. The router is where fleet requests are born, so
// every solve ends up with exactly one ID shared by the client, the
// router, and the owning shard's trace and slow-log.
func traceFor(ctx context.Context, w http.ResponseWriter, r *http.Request) (context.Context, string) {
	id := r.Header.Get(obs.TraceHeader)
	if id == "" {
		id = obs.NewTraceID()
	}
	w.Header().Set(obs.TraceHeader, id)
	return obs.WithTraceID(ctx, id), id
}

// mediaType extracts the request's media type; an absent header means
// JSON, matching mmlpserve.
func mediaType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return mmlp.ContentTypeJSON
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return ct
	}
	return mt
}

// handleSolve routes one solve to its owning shard and streams the shard's
// response back verbatim: success bodies are byte-identical to what a
// direct client of that shard would have received. A canon request
// (Content-Type application/x-mmlp-canon) is routed by hashing the raw
// payload — the canon encoding is injective over canonical instances, so
// the hash of the bytes IS the cache key the shard will use, and the
// router never decodes the body.
func (rt *router) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, code, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, code, httperr.CodeForStatus(code), err)
		return
	}
	contentType := mediaType(r)
	var key canon.Key
	if contentType == mmlp.ContentTypeCanon {
		if !canon.SniffSolve(body) {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("canon body does not start with %q", canon.SolveMagic))
			return
		}
		key = canon.HashBytes(body)
		rt.canonPassthrough.Add(1)
	} else {
		contentType = "application/json"
		var req mmlp.SolveRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("malformed JSON: %w", err))
			return
		}
		if key, err = keyOf(&req); err != nil {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
			return
		}
	}
	rt.routeByKey(w, r, key, "/v1/solve", contentType, body, true)
}

// handleDelta routes an incremental re-solve to the shard that owns its
// BASE key — the only shard whose result cache can hold the base record
// the delta prices against. The body is relayed verbatim; a shard
// answering 404/base_unknown is relayed as-is and NOT marked down (a cold
// cache is a correct answer, not a failure), so the client can fall back
// to a full solve, which also seeds the base for the next delta. No
// write-through happens for deltas: backups lack the base record, and a
// warm that recomputes from scratch would defeat the point.
func (rt *router) handleDelta(w http.ResponseWriter, r *http.Request) {
	body, code, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, code, httperr.CodeForStatus(code), err)
		return
	}
	var req mmlp.DeltaRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("malformed JSON: %w", err))
		return
	}
	job, err := batch.JobFromDelta(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		return
	}
	rt.routeByKey(w, r, job.Delta.Base, "/v1/delta", "application/json", body, false)
}

// routeByKey forwards one request to key's owning shard and streams the
// response back verbatim: success bodies are byte-identical to what a
// direct client of that shard would have received. With writeThrough,
// a 200 also warms the key's backup replicas in the background.
func (rt *router) routeByKey(w http.ResponseWriter, r *http.Request, key canon.Key, path, contentType string, body []byte, writeThrough bool) {
	ctx, cancel, err := rt.deadlineCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		return
	}
	if cancel != nil {
		defer cancel()
	}
	ctx, _ = traceFor(ctx, w, r)
	// Propagate the query string so ?trace=1 reaches the owning shard and
	// its per-stage trace block rides back in the relayed response; warms
	// reuse the bare path so a trace request does not trace its backups.
	warmPath := path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	rv := rt.client.Acquire()
	defer rt.client.Release(rv)
	owner := rt.client.OwnerOn(rv, key)
	resp, member, err := rt.client.DoOn(ctx, rv, key, path, contentType, body)
	if err != nil {
		// A dry retry budget is the router refusing to spend more hops, not
		// the fleet being unreachable: 503 tells the client to back off and
		// retry, where 502 would read as an outage.
		status, code := http.StatusBadGateway, mmlp.ErrCodeBadGateway
		if errors.Is(err, shard.ErrRetryBudgetExhausted) {
			status, code = http.StatusServiceUnavailable, mmlp.ErrCodeUnavailable
		}
		writeError(w, status, code, fmt.Errorf("no shard reachable (owner %s): %w", owner, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	// Relay the shard's retry hint so a shed (429) or overloaded answer
	// keeps its Retry-After through the extra hop.
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Mmlp-Shard", member)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	if writeThrough && resp.StatusCode == http.StatusOK {
		for _, m := range rt.backupsFor(rv, key, member) {
			rt.replicate(m, warmPath, contentType, body)
		}
	}
}

// handleCapabilities advertises the router's serving surface — the same
// shape mmlpserve serves, so clients can feature-detect uniformly at
// either tier.
func (rt *router) handleCapabilities(w http.ResponseWriter, _ *http.Request) {
	caps := mmlp.Capabilities{
		Service: "mmlprouter",
		Endpoints: []string{
			"/v1/solve", "/v1/delta", "/v1/batch", "/v1/capabilities",
			"/healthz", "/statsz", "/metrics", "/admin/ring",
		},
		Engines: mmlp.EngineNames(),
		ContentTypes: []string{
			mmlp.ContentTypeJSON, mmlp.ContentTypeCanon, mmlp.ContentTypeCanonBatch,
			mmlp.ContentTypeCanonResults, mmlp.ContentTypeNDJSON,
		},
		MaxWireR:        mmlp.MaxWireR,
		MaxWireBinIters: mmlp.MaxWireBinIters,
		MaxWireAgents:   mmlp.MaxWireAgents,
		MaxWireEdits:    mmlp.MaxWireEdits,
		MaxBodyBytes:    rt.maxBody,
		Delta:           true,
		Replication:     rt.client.Replication(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(caps)
}

// backupsFor lists the members of k's replica set other than answered —
// the shards write-through should warm so any replica can serve k after
// the primary dies. Empty with Replication 1: single-copy semantics are
// unchanged.
func (rt *router) backupsFor(rv *shard.RingVersion, k canon.Key, answered string) []string {
	if rt.client.Replication() <= 1 {
		return nil
	}
	set := rt.client.ReplicaSet(rv, k)
	backups := make([]string, 0, len(set))
	for _, m := range set {
		if m != answered {
			backups = append(backups, m)
		}
	}
	return backups
}

// replicate POSTs body to one backup replica in the background, warming
// its cache so the replica can answer the key without a recompute once
// the primary is gone. Members inside a cooldown window are skipped — the
// warm is an optimisation, not a delivery guarantee, and the next
// write-through after recovery re-warms them.
func (rt *router) replicate(member, path, contentType string, body []byte) {
	if rt.client.Down(member) {
		return
	}
	rt.replWG.Add(1)
	go func() {
		defer rt.replWG.Done()
		ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
		defer cancel()
		resp, err := rt.client.Forward(ctx, member, path, contentType, body)
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rt.replicated.Add(1)
	}()
}

// group is the slice of one batch owned by a single shard. Exactly one of
// jobs (JSON batch) or payloads (canon batch) is populated.
type group struct {
	owner    string
	key      canon.Key // a representative key, seeds the failover replica walk
	jobs     []mmlp.SolveRequest
	payloads [][]byte
	orig     []int // original indices, parallel to jobs/payloads
}

// handleBatch validates the batch, fans the jobs out to their owning
// shards as per-shard sub-batches, and re-merges the shards' NDJSON
// streams in arrival order, rewriting each record's index back to the
// job's position in the original request. The per-job contract matches
// mmlpserve's: exactly one record per job, whatever happens to the fleet.
// A canon batch frame (Content-Type application/x-mmlp-canon-batch) is
// split at frame boundaries only: each payload is routed by its hash and
// re-framed per shard with the bytes forwarded verbatim, never decoded.
// Accept: application/x-mmlp-canon-results selects the binary result
// frame for the merged response under either request encoding.
func (rt *router) handleBatch(w http.ResponseWriter, r *http.Request) {
	body, code, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, code, httperr.CodeForStatus(code), err)
		return
	}
	var req mmlp.BatchRequest
	var payloads [][]byte
	var n int
	if mediaType(r) == mmlp.ContentTypeCanonBatch {
		if payloads, err = canon.SplitBatch(body); err != nil {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("malformed batch frame: %w", err))
			return
		}
		n = len(payloads)
	} else {
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("malformed JSON: %w", err))
			return
		}
		n = len(req.Jobs)
	}
	if n == 0 {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, errors.New("batch has no jobs"))
		return
	}
	// Validate everything before emitting the first byte, matching the
	// all-or-nothing 400 a single shard gives a malformed batch. Canon
	// payloads need no per-job validation pass here: the frame split
	// checked each payload's magic, and deeper decode errors are the
	// owning shard's per-job verdict.
	keys := make([]canon.Key, n)
	for i := range keys {
		if payloads != nil {
			keys[i] = canon.HashBytes(payloads[i])
			continue
		}
		key, err := keyOf(&req.Jobs[i])
		if err != nil {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("job %d: %w", i, err))
			return
		}
		keys[i] = key
	}
	if payloads != nil {
		rt.canonPassthrough.Add(int64(n))
	}
	ctx, cancel, err := rt.deadlineCtx(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		return
	}
	if cancel != nil {
		defer cancel()
	}
	ctx, _ = traceFor(ctx, w, r)
	// Pin one ring generation for the whole batch: grouping, forwarding and
	// straggler re-forwards all agree on a single assignment even when an
	// /admin/ring cutover lands mid-stream.
	rv := rt.client.Acquire()
	defer rt.client.Release(rv)
	groups := map[string]*group{}
	for i := 0; i < n; i++ {
		owner := rt.client.OwnerOn(rv, keys[i])
		g := groups[owner]
		if g == nil {
			g = &group{owner: owner, key: keys[i]}
			groups[owner] = g
		}
		if payloads != nil {
			g.payloads = append(g.payloads, payloads[i])
		} else {
			g.jobs = append(g.jobs, req.Jobs[i])
		}
		g.orig = append(g.orig, i)
	}

	flusher, _ := w.(http.Flusher)
	var emu sync.Mutex
	answered := make([]string, n) // member that solved each job
	var write func(mmlp.BatchItem)
	if strings.Contains(r.Header.Get("Accept"), mmlp.ContentTypeCanonResults) {
		w.Header().Set("Content-Type", mmlp.ContentTypeCanonResults)
		w.Write(canon.AppendResultsHeader(nil))
		var buf []byte
		write = func(item mmlp.BatchItem) {
			buf = canon.AppendResult(buf[:0], &item)
			w.Write(buf)
		}
	} else {
		w.Header().Set("Content-Type", mmlp.ContentTypeNDJSON)
		enc := json.NewEncoder(w)
		write = func(item mmlp.BatchItem) { enc.Encode(item) }
	}
	emit := func(item mmlp.BatchItem, member string) {
		emu.Lock()
		defer emu.Unlock()
		if item.Error == "" && item.Index >= 0 && item.Index < len(answered) {
			answered[item.Index] = member
		}
		write(item)
		if flusher != nil {
			flusher.Flush()
		}
	}

	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			rt.forwardGroup(ctx, rv, g, emit)
		}(g)
	}
	wg.Wait()

	// Write-through: regroup the answered jobs by backup replica and warm
	// each replica with one background sub-batch, so any member of a key's
	// replica set can serve it cached after the primary dies. Canon warms
	// re-frame the original payload bytes.
	if rt.client.Replication() > 1 {
		if payloads != nil {
			backups := map[string][][]byte{}
			for i := 0; i < n; i++ {
				if answered[i] == "" {
					continue
				}
				for _, m := range rt.backupsFor(rv, keys[i], answered[i]) {
					backups[m] = append(backups[m], payloads[i])
				}
			}
			for m, ps := range backups {
				rt.replicate(m, "/v1/batch", mmlp.ContentTypeCanonBatch, canon.AppendBatch(nil, ps))
			}
		} else {
			backups := map[string][]mmlp.SolveRequest{}
			for i := 0; i < n; i++ {
				if answered[i] == "" {
					continue
				}
				for _, m := range rt.backupsFor(rv, keys[i], answered[i]) {
					backups[m] = append(backups[m], req.Jobs[i])
				}
			}
			for m, jobs := range backups {
				if body, err := json.Marshal(mmlp.BatchRequest{Jobs: jobs}); err == nil {
					rt.replicate(m, "/v1/batch", "application/json", body)
				}
			}
		}
	}
}

// forwardGroup sends one shard's slice of the batch and streams its lines
// back through emit. A transport failure advances to the next replica on
// the ring with the jobs not yet answered; jobs that no member could
// answer get error lines, honouring the one-line-per-job contract. emit
// receives the member that produced each line ("" for router-synthesised
// error lines), which feeds the write-through regrouping. Shards always
// answer sub-batches as NDJSON regardless of the request encoding, so the
// merge loop below is one code path.
func (rt *router) forwardGroup(ctx context.Context, rv *shard.RingVersion, g *group, emit func(mmlp.BatchItem, string)) {
	jobs, payloads, orig := g.jobs, g.payloads, g.orig
	contentType := "application/json"
	if payloads != nil {
		contentType = mmlp.ContentTypeCanonBatch
	}
	size := func() int {
		if payloads != nil {
			return len(payloads)
		}
		return len(jobs)
	}
	var body []byte // re-marshaled only when the remaining job set shrinks
	err := rt.client.DoFuncOn(ctx, rv, g.key, func(member string) (bool, error) {
		if body == nil {
			if payloads != nil {
				body = canon.AppendBatch(nil, payloads)
			} else {
				var merr error
				if body, merr = json.Marshal(mmlp.BatchRequest{Jobs: jobs}); merr != nil {
					return true, merr // cannot improve on another replica
				}
			}
		}
		resp, ferr := rt.client.Forward(ctx, member, "/v1/batch", contentType, body)
		if ferr != nil {
			return false, ferr // nothing processed; try the next replica
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			// The shard processed and rejected the sub-batch (e.g. shutting
			// down); its verdict stands for every job in it.
			var eresp mmlp.ErrorResponse
			json.NewDecoder(resp.Body).Decode(&eresp)
			msg := eresp.Error.Message
			if msg == "" {
				msg = fmt.Sprintf("shard %s: status %d", member, resp.StatusCode)
			}
			for _, oi := range orig {
				emit(mmlp.BatchItem{Index: oi, Error: msg}, member)
			}
			return true, nil
		}
		emitted := make([]bool, size())
		nEmitted := 0
		rd := bufio.NewReader(resp.Body)
		for {
			line, rerr := rd.ReadBytes('\n')
			if len(line) > 1 {
				var item mmlp.BatchItem
				if jerr := json.Unmarshal(line, &item); jerr == nil &&
					item.Index >= 0 && item.Index < len(emitted) && !emitted[item.Index] {
					sub := item.Index
					item.Index = orig[sub]
					emitted[sub] = true
					nEmitted++
					emit(item, member)
				}
			}
			if rerr != nil {
				break
			}
		}
		if nEmitted == size() {
			return true, nil
		}
		// The stream broke mid-way: keep the answered jobs, re-forward the
		// rest. Solves are pure functions of their requests, so re-running
		// an answered-but-lost job on another shard is safe.
		var njobs []mmlp.SolveRequest
		var npayloads [][]byte
		var norig []int
		for i := range emitted {
			if !emitted[i] {
				if payloads != nil {
					npayloads = append(npayloads, payloads[i])
				} else {
					njobs = append(njobs, jobs[i])
				}
				norig = append(norig, i)
			}
		}
		// Remap norig through the current orig before replacing it.
		for i, oi := range norig {
			norig[i] = orig[oi]
		}
		jobs, payloads, orig, body = njobs, npayloads, norig, nil
		return false, fmt.Errorf("shard %s: response stream truncated after %d lines", member, nEmitted)
	})
	if err != nil {
		for _, oi := range orig {
			emit(mmlp.BatchItem{Index: oi, Error: fmt.Sprintf("no shard reachable: %v", err)}, "")
		}
	}
}

// ringStatus snapshots the topology for the admin surface.
func (rt *router) ringStatus() mmlp.RingStatus {
	st := mmlp.RingStatus{
		Version:     rt.client.Version(),
		Members:     rt.client.Ring().Members(),
		Replication: rt.client.Replication(),
	}
	if cut := rt.client.Draining(); cut != nil {
		st.Draining = &mmlp.DrainStatus{
			FromVersion: cut.From,
			FromMembers: cut.FromMembers,
			Inflight:    cut.Draining,
		}
	}
	return st
}

// handleRingGet reports the current ring generation and, while a cutover
// drains, the old generation's remaining in-flight count. Operators poll
// it after a proposal to know when the handover has completed.
func (rt *router) handleRingGet(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.ringStatus())
}

// handleRingPost proposes a new member set. On acceptance the new ring
// routes all subsequently admitted requests immediately; requests already
// pinned to the old generation drain on the old assignment, and when the
// last one finishes the router tells every affected shard to prune the
// cache entries it no longer owns. A proposal while a previous cutover is
// still draining is rejected with 409 — retry once GET /admin/ring shows
// no drain.
func (rt *router) handleRingPost(w http.ResponseWriter, r *http.Request) {
	body, code, err := rt.readBody(w, r)
	if err != nil {
		writeError(w, code, httperr.CodeForStatus(code), err)
		return
	}
	var prop mmlp.RingProposal
	if err := json.Unmarshal(body, &prop); err != nil {
		writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, fmt.Errorf("malformed JSON: %w", err))
		return
	}
	if _, err := rt.client.Propose(prop.Members); err != nil {
		if errors.Is(err, shard.ErrCutoverInProgress) {
			// Hint when to retry from the drain's progress: roughly a second
			// per in-flight request still pinned to the old ring, clamped so
			// a long drain never suggests an unbounded wait.
			secs := int64(1)
			if cut := rt.client.Draining(); cut != nil && cut.Draining > secs {
				secs = cut.Draining
			}
			if secs > 30 {
				secs = 30
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			writeError(w, http.StatusConflict, mmlp.ErrCodeConflict, err)
		} else {
			writeError(w, http.StatusBadRequest, mmlp.ErrCodeInvalidArgument, err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(rt.ringStatus())
}

// notifyCutover is the client's OnCutoverDone hook: once the old ring has
// drained, every member of either generation is told the new assignment so
// it can prune cache entries it no longer holds under the new ring. A
// member leaving the fleet gets an update whose member set excludes it and
// prunes everything. Delivery is best-effort: pruning only reclaims
// memory, and a shard that misses the update merely holds dead entries
// until its LRU evicts them.
func (rt *router) notifyCutover(old, new *shard.Ring) {
	union := map[string]bool{}
	for _, m := range old.Members() {
		union[m] = true
	}
	for _, m := range new.Members() {
		union[m] = true
	}
	upd := mmlp.ShardRingUpdate{
		Members:     new.Members(),
		Replicas:    new.Replicas(),
		Replication: rt.client.Replication(),
	}
	for m := range union {
		upd.Self = m
		body, err := json.Marshal(upd)
		if err != nil {
			continue
		}
		rt.replWG.Add(1)
		go func(m string, body []byte) {
			defer rt.replWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), replicateTimeout)
			defer cancel()
			resp, err := rt.client.Forward(ctx, m, "/admin/ring", "application/json", body)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(m, body)
	}
}

// handleHealth reports router liveness, the fleet's health split, and the
// build identity, so an operator can tell which revision a node runs
// without shelling into it.
func (rt *router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rev, dirty := obs.BuildInfo()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"shards\":%d,\"healthy\":%d,\"revision\":%q,\"dirty\":%v}\n",
		len(rt.client.Ring().Members()), len(rt.client.Healthy()), rev, dirty)
}

// handleStats scrapes every shard's /statsz?raw=1 in parallel and serves
// the fleet view: router counters, the summed fleet aggregate, and the
// per-shard blocks it was computed from. Because the ring stores each key
// on exactly one shard, the fleet's cache "entries" total counts distinct
// canonical keys cached across the whole fleet.
func (rt *router) handleStats(w http.ResponseWriter, r *http.Request) {
	members := rt.client.Ring().Members()
	out := mmlp.FleetStats{Shards: make([]mmlp.ShardStats, len(members))}

	ctx, cancel := context.WithTimeout(r.Context(), statszTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m string) {
			defer wg.Done()
			ss := mmlp.ShardStats{Addr: m}
			resp, err := rt.client.Get(ctx, m, "/statsz?raw=1")
			if err == nil {
				defer resp.Body.Close()
				var raw mmlp.StatsRaw
				if resp.StatusCode == http.StatusOK {
					err = json.NewDecoder(resp.Body).Decode(&raw)
				} else {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
				if err == nil {
					ss.OK, ss.Stats = true, &raw
				}
			}
			if err != nil {
				ss.Error = err.Error()
			}
			out.Shards[i] = ss
		}(i, m)
	}
	wg.Wait()

	for _, ss := range out.Shards {
		if ss.OK {
			out.Fleet.Add(ss.Stats)
		}
	}
	// Fleet quantiles come from the merged histogram — per-shard P50/P99
	// are process-local order statistics and cannot be combined.
	out.Fleet.DeriveQuantiles()
	st := rt.client.Stats()
	out.Router = mmlp.RouterStats{
		Shards:      len(members),
		Healthy:     len(rt.client.Healthy()),
		RingVersion: rt.client.Version(),
		Draining:    rt.client.Draining() != nil,
		Replication: rt.client.Replication(),
		Routed:      st.Routed,
		Forwarded:   st.Forwarded,
		Retried:     st.Retried,
		ShardDown:   st.ShardDown,
		Replicated:  rt.replicated.Load(),

		RetryBudgetExhausted: st.BudgetExhausted,

		CanonPassthrough: rt.canonPassthrough.Load(),
		Forward:          rt.client.ForwardHist(),
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
