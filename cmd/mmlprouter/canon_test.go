package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/canon"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/mmlp"
	"repro/internal/shard"
)

func rawPost(h http.Handler, path, contentType, accept string, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func canonPayload(t testing.TB, seed int64) []byte {
	t.Helper()
	in := gen.Random(gen.RandomConfig{Agents: 6 + int(seed%9), MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1}, seed)
	return engine.EncodeCanon(in, engine.Options{R: 3})
}

// TestSolveCanonPassthrough: canon solves route by the hash of the raw
// bytes — to the same shard the JSON spelling routes to — and the shard
// receives the payload bytes verbatim. The router's canon counter tracks
// every passthrough.
func TestSolveCanonPassthrough(t *testing.T) {
	shards, rt := testFleet(t, 3, nil)
	byAddr := map[string]*fakeShard{}
	for _, f := range shards {
		byAddr[f.addr] = f
	}
	for seed := int64(1); seed <= 12; seed++ {
		in := gen.Random(gen.RandomConfig{Agents: 6 + int(seed), MaxDegI: 3, MaxDegK: 3, ExtraCons: 2, ExtraObjs: 1}, seed)
		payload := engine.EncodeCanon(in, engine.Options{R: 3})
		// The payload's hash IS the JSON request's routing key, so both
		// encodings of one problem land on one shard.
		req := mmlp.SolveRequest{Instance: in, R: 3}
		key, err := keyOf(&req)
		if err != nil {
			t.Fatal(err)
		}
		if canon.HashBytes(payload) != key {
			t.Fatalf("seed %d: HashBytes(payload) != SolveKey — encodings diverged", seed)
		}
		owner := rt.client.Ring().Owner(key)

		w := rawPost(rt, "/v1/solve", mmlp.ContentTypeCanon, "", payload)
		if w.Code != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, w.Code, w.Body)
		}
		if got := w.Header().Get("X-Mmlp-Shard"); got != owner {
			t.Fatalf("seed %d: routed to %q, ring owner is %q", seed, got, owner)
		}
		f := byAddr[owner]
		f.mu.Lock()
		last := f.solves[len(f.solves)-1]
		f.mu.Unlock()
		if last != string(payload) {
			t.Fatalf("seed %d: shard did not receive the payload verbatim", seed)
		}
	}
	if got := rt.canonPassthrough.Load(); got != 12 {
		t.Fatalf("canonPassthrough = %d, want 12", got)
	}
}

// TestSolveCanonErrors: bodies that fail the magic sniff are rejected at
// the router without contacting any shard.
func TestSolveCanonErrors(t *testing.T) {
	shards, rt := testFleet(t, 2, nil)
	for _, body := range [][]byte{
		[]byte("not canon"),
		nil,
		[]byte(canon.SolveMagic[:5]),
	} {
		w := rawPost(rt, "/v1/solve", mmlp.ContentTypeCanon, "", body)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, w.Code)
		}
	}
	for _, f := range shards {
		f.mu.Lock()
		n := len(f.solves)
		f.mu.Unlock()
		if n != 0 {
			t.Fatalf("unsniffable canon bodies reached shard %s", f.name)
		}
	}
	if got := rt.canonPassthrough.Load(); got != 0 {
		t.Fatalf("rejected bodies counted as passthrough: %d", got)
	}
}

// TestBatchCanonFanOut: a canon batch frame is split at frame boundaries,
// each payload routed by its hash and re-framed per shard with the bytes
// forwarded untouched; the merged stream has one record per payload with
// indices remapped, under both response encodings.
func TestBatchCanonFanOut(t *testing.T) {
	shards, rt := testFleet(t, 3, nil)
	const n = 24
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = canonPayload(t, int64(i+1))
	}
	frame := canon.AppendBatch(nil, payloads)

	w := rawPost(rt, "/v1/batch", mmlp.ContentTypeCanonBatch, "", frame)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != mmlp.ContentTypeNDJSON {
		t.Fatalf("Content-Type = %q", ct)
	}
	items := batchLines(t, w.Body.Bytes())
	if len(items) != n {
		t.Fatalf("got %d lines, want %d", len(items), n)
	}
	for i := 0; i < n; i++ {
		item, ok := items[i]
		if !ok {
			t.Fatalf("index %d missing", i)
		}
		if item.Error != "" {
			t.Fatalf("job %d failed: %s", i, item.Error)
		}
		// The fake echoes the payload length as Utility: the index rewrite
		// must pair each record with its original payload.
		if item.Utility != float64(len(payloads[i])) {
			t.Fatalf("job %d: utility %v, want %v (index remap broken)", i, item.Utility, float64(len(payloads[i])))
		}
	}
	// Every payload reached exactly the shard that owns its hash, verbatim.
	byAddr := map[string]*fakeShard{}
	for _, f := range shards {
		byAddr[f.addr] = f
	}
	received := map[string]int{} // payload bytes → count across the fleet
	for _, f := range shards {
		f.mu.Lock()
		for _, p := range f.canonPayloads {
			received[string(p)]++
			owner := rt.client.Ring().Owner(canon.HashBytes(p))
			if byAddr[owner] != f {
				t.Fatalf("shard %s received a payload owned by %s", f.name, owner)
			}
		}
		f.mu.Unlock()
	}
	for i, p := range payloads {
		if received[string(p)] == 0 {
			t.Fatalf("payload %d never reached a shard", i)
		}
	}
	if got := rt.canonPassthrough.Load(); got != n {
		t.Fatalf("canonPassthrough = %d, want %d", got, n)
	}

	// Same frame with the binary result encoding negotiated.
	w = rawPost(rt, "/v1/batch", mmlp.ContentTypeCanonBatch, mmlp.ContentTypeCanonResults, frame)
	if w.Code != http.StatusOK || w.Header().Get("Content-Type") != mmlp.ContentTypeCanonResults {
		t.Fatalf("binary results: %d %q", w.Code, w.Header().Get("Content-Type"))
	}
	recs, err := canon.DecodeResults(w.Body.Bytes())
	if err != nil {
		t.Fatalf("merged binary frame did not decode: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("binary frame has %d records, want %d", len(recs), n)
	}
	if got := rt.canonPassthrough.Load(); got != 2*n {
		t.Fatalf("canonPassthrough = %d, want %d", got, 2*n)
	}
}

// TestBatchCanonErrors: malformed frames 400 before any forward.
func TestBatchCanonErrors(t *testing.T) {
	shards, rt := testFleet(t, 2, nil)
	valid := canonPayload(t, 1)
	frame := canon.AppendBatch(nil, [][]byte{valid})
	for _, c := range []struct {
		name string
		body []byte
	}{
		{"junk", []byte("junk")},
		{"empty frame", canon.AppendBatch(nil, nil)},
		{"truncated frame", frame[:len(frame)-2]},
		{"solve magic as frame", valid},
	} {
		if w := rawPost(rt, "/v1/batch", mmlp.ContentTypeCanonBatch, "", c.body); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", c.name, w.Code)
		}
	}
	for _, f := range shards {
		f.mu.Lock()
		n := f.batchCalls
		f.mu.Unlock()
		if n != 0 {
			t.Fatalf("malformed frames reached shard %s", f.name)
		}
	}
}

// TestBatchCanonReplication: with Replication 2, answered canon payloads
// are re-framed and written through to the backup replica verbatim.
func TestBatchCanonReplication(t *testing.T) {
	shards, rt := testFleetR(t, 3, 2, nil)
	const n = 12
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = canonPayload(t, int64(i+1))
	}
	frame := canon.AppendBatch(nil, payloads)
	if w := rawPost(rt, "/v1/batch", mmlp.ContentTypeCanonBatch, "", frame); w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	rt.replWG.Wait()
	if rt.replicated.Load() == 0 {
		t.Fatal("no write-through delivered")
	}
	// Every payload now sits on every member of its replica set.
	received := map[string]int{}
	for _, f := range shards {
		f.mu.Lock()
		for _, p := range f.canonPayloads {
			received[string(p)]++
		}
		f.mu.Unlock()
	}
	for i, p := range payloads {
		if received[string(p)] < 2 {
			t.Fatalf("payload %d reached %d replicas, want 2", i, received[string(p)])
		}
	}
}

// FuzzCanonSniff throws arbitrary bytes at the router's canon solve
// surface: the router must never panic, must reject everything that fails
// the magic sniff without contacting a shard, and must forward everything
// that passes it.
func FuzzCanonSniff(f *testing.F) {
	f.Add([]byte(canon.SolveMagic))
	f.Add(canonPayload(f, 1))
	f.Add([]byte("junk"))
	f.Add([]byte{})

	shard0 := &fakeShard{name: "shard0"}
	srv := httptest.NewServer(shard0.handler())
	f.Cleanup(srv.Close)
	u, err := url.Parse(srv.URL)
	if err != nil {
		f.Fatal(err)
	}
	shard0.addr = u.Host
	ring, err := shard.New([]string{u.Host}, 16)
	if err != nil {
		f.Fatal(err)
	}
	rt := newRouter(shard.NewClient(ring, shard.ClientOptions{Cooldown: time.Minute}), 1<<20)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("over the configured body limit; 413 is covered elsewhere")
		}
		before := rt.canonPassthrough.Load()
		w := rawPost(rt, "/v1/solve", mmlp.ContentTypeCanon, "", data)
		after := rt.canonPassthrough.Load()
		if canon.SniffSolve(data) {
			if w.Code != http.StatusOK {
				t.Fatalf("sniffable payload rejected: %d %s", w.Code, w.Body)
			}
			if after != before+1 {
				t.Fatalf("passthrough count %d → %d on a forwarded payload", before, after)
			}
		} else {
			if w.Code != http.StatusBadRequest {
				t.Fatalf("unsniffable payload: status %d, want 400", w.Code)
			}
			if after != before {
				t.Fatalf("rejected payload moved the passthrough count")
			}
		}
	})
}

// BenchmarkRouterCanonRoute measures the routing decision for one canon
// payload — sniff, hash, owner lookup — the work the router does per job
// before bytes move. It must stay O(1) allocations (zero: the hash and
// the ring walk are both in-place).
func BenchmarkRouterCanonRoute(b *testing.B) {
	ring, err := shard.New([]string{"10.0.0.1:9101", "10.0.0.2:9101", "10.0.0.3:9101"}, 32)
	if err != nil {
		b.Fatal(err)
	}
	payload := canonPayload(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink string
	for i := 0; i < b.N; i++ {
		if !canon.SniffSolve(payload) {
			b.Fatal("payload stopped sniffing")
		}
		sink = ring.Owner(canon.HashBytes(payload))
	}
	_ = sink
}
